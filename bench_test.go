// Reproduction benchmarks: one benchmark per table and figure of the
// paper's evaluation, plus the latency micro-benchmarks behind the
// "lightweight, low-latency" contribution claims. Each table bench
// runs the corresponding experiment end-to-end (capture synthesis,
// preprocessing, training, the three test types) and reports the
// scores as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation. EXPERIMENTS.md records the
// paper-versus-measured comparison.
package vprofile_test

import (
	"math/rand"
	"testing"

	"vprofile/internal/analog"
	"vprofile/internal/baseline"
	"vprofile/internal/canbus"
	"vprofile/internal/core"
	"vprofile/internal/edgeset"
	"vprofile/internal/experiments"
	"vprofile/internal/vehicle"
)

// benchScale keeps the full bench suite laptop-sized; the experiments
// command exposes -scale full for tighter statistics.
var benchScale = experiments.Scale{TrainMessages: 1500, TestMessages: 3000, Seed: 1}

func reportMetric(b *testing.B, res *experiments.MetricResults) {
	b.ReportMetric(res.FalsePositive.Matrix.Accuracy(), "fp-acc")
	b.ReportMetric(res.Hijack.Matrix.FScore(), "hijack-F")
	b.ReportMetric(res.Foreign.Matrix.FScore(), "foreign-F")
}

func benchMetricTable(b *testing.B, mk func() *vehicle.Vehicle, metric core.Metric) {
	b.Helper()
	var last *experiments.MetricResults
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMetric(mk(), metric, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportMetric(b, last)
}

// BenchmarkTable41 reproduces Table 4.1: Vehicle A, Euclidean distance
// (paper: FP accuracy 0.99994, hijack F 0.99989, foreign F 0.00065).
func BenchmarkTable41(b *testing.B) { benchMetricTable(b, vehicle.NewVehicleA, core.Euclidean) }

// BenchmarkTable42 reproduces Table 4.2: Vehicle B, Euclidean distance
// (paper: FP accuracy 0.88606, hijack F 0.80637, foreign F 0.42205).
func BenchmarkTable42(b *testing.B) { benchMetricTable(b, vehicle.NewVehicleB, core.Euclidean) }

// BenchmarkTable43 reproduces Table 4.3: Vehicle A, Mahalanobis
// distance (paper: 1.00000 / 0.99999 / 1.00000).
func BenchmarkTable43(b *testing.B) { benchMetricTable(b, vehicle.NewVehicleA, core.Mahalanobis) }

// BenchmarkTable44 reproduces Table 4.4: Vehicle B, Mahalanobis
// distance (paper: 1.00000 / 0.99999 / 1.00000).
func BenchmarkTable44(b *testing.B) { benchMetricTable(b, vehicle.NewVehicleB, core.Mahalanobis) }

// BenchmarkTable45 reproduces Table 4.5 / Figure 4.5: the distance
// quotient comparison (paper: Euclidean 2.21, Mahalanobis 18.48).
func BenchmarkTable45(b *testing.B) {
	var last *experiments.QuotientResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunQuotient(900, benchScale.Seed)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.EuclideanQuotient, "euclid-quot")
	b.ReportMetric(last.MahalanobisQuotient, "mahal-quot")
}

// BenchmarkTable46 reproduces Table 4.6: Vehicle A downsampled to
// {20,10,5,2.5} MS/s at {16,12,10} bits, all scores ≥ 0.999 in the
// paper with slight degradation at the lowest rates.
func BenchmarkTable46(b *testing.B) {
	var last *experiments.SweepResult
	scale := experiments.Scale{TrainMessages: 1200, TestMessages: 2400, Seed: 3}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSweep(vehicle.NewVehicleA(), []int{1, 2, 4, 8}, []int{16, 12, 10}, scale)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if c := last.Cell(2.5, 16); c != nil {
		b.ReportMetric(c.FPAccuracy, "fp-acc@2.5MS/s")
	}
	if c := last.Cell(20, 16); c != nil {
		b.ReportMetric(c.FPAccuracy, "fp-acc@20MS/s")
	}
}

// BenchmarkTable47 reproduces Table 4.7: Vehicle B downsampled to
// {10,5,2.5} MS/s at 12 bits (paper: all scores > 0.999).
func BenchmarkTable47(b *testing.B) {
	var last *experiments.SweepResult
	scale := experiments.Scale{TrainMessages: 1200, TestMessages: 2400, Seed: 4}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSweep(vehicle.NewVehicleB(), []int{1, 2, 4}, []int{12}, scale)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if c := last.Cell(2.5, 12); c != nil {
		b.ReportMetric(c.FPAccuracy, "fp-acc@2.5MS/s")
		b.ReportMetric(c.ForeignF, "foreign-F@2.5MS/s")
	}
}

// BenchmarkTable48 reproduces Table 4.8 and Figure 4.6: temperature
// variance (paper: 4 false positives out of 5.78M, all at 20–25 °C,
// removed by augmenting training; distance rises sharply for the
// engine-mounted ECUs 0 and 2).
func BenchmarkTable48(b *testing.B) {
	var last *experiments.TemperatureResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTemperature(vehicle.NewVehicleA(), 700, 11)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Matrix.FP), "fps")
	b.ReportMetric(float64(last.AugmentedMatrix.FP), "fps-augmented")
	lastBin := len(last.Delta[0]) - 1
	b.ReportMetric(last.Delta[0][lastBin].MeanPct, "ecu0-delta%@25C")
	b.ReportMetric(last.Delta[4][lastBin].MeanPct, "ecu4-delta%@25C")
}

// BenchmarkFigure46 regenerates the Figure 4.6 series in isolation.
func BenchmarkFigure46(b *testing.B) { BenchmarkTable48(b) }

// BenchmarkTable49 reproduces Table 4.9 and Figure 4.7: high-power
// vehicle functions (paper: perfect detection rate, small distance
// deltas).
func BenchmarkTable49(b *testing.B) {
	var last *experiments.VoltageResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunVoltage(vehicle.NewVehicleA(), 700, 12)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Matrix.FP), "fps")
	b.ReportMetric(last.Delta[0][len(last.Delta[0])-1].MeanPct, "ecu0-delta%")
}

// BenchmarkFigure47 regenerates the Figure 4.7 series in isolation.
func BenchmarkFigure47(b *testing.B) { BenchmarkTable49(b) }

// BenchmarkFigure48 reproduces Figure 4.8: distance drift across five
// accessory-mode trials.
func BenchmarkFigure48(b *testing.B) {
	var last *experiments.DriftResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDrift(vehicle.NewVehicleA(), 5, 600, 13)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	n := len(last.Delta[0])
	b.ReportMetric(last.Delta[0][n-1].MeanPct, "ecu0-final-delta%")
}

// BenchmarkTable51 reproduces Table 5.1: fixed versus per-cluster
// extraction thresholds (paper: small mixed-sign shifts).
func BenchmarkTable51(b *testing.B) {
	var last *experiments.EnhancementResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunClusterThresholds(vehicle.NewVehicleA(), 1800, 26)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Baseline[0].StdDev, "ecu0-sd-static")
	b.ReportMetric(last.Enhanced[0].StdDev, "ecu0-sd-cluster")
}

// BenchmarkTable52 reproduces Table 5.2: one versus three averaged
// edge sets (paper: lower standard deviation for every cluster).
func BenchmarkTable52(b *testing.B) {
	var last *experiments.EnhancementResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMultiEdgeSets(vehicle.NewVehicleA(), 1800, 27)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Baseline[0].StdDev, "ecu0-sd-1set")
	b.ReportMetric(last.Enhanced[0].StdDev, "ecu0-sd-3sets")
}

// BenchmarkFigure25 regenerates Figure 2.5: 200 edge-set traces from
// the two Sterling Acterra ECUs.
func BenchmarkFigure25(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CollectEdgeSets(vehicle.NewSterlingActerra(), 200, 21); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure31 regenerates Figure 3.1: rate and resolution
// reduction on one edge set.
func BenchmarkFigure31(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunReductionSeries(23); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure42 regenerates Figure 4.2: Vehicle A's five ECU
// voltage profiles.
func BenchmarkFigure42(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CollectEdgeSets(vehicle.NewVehicleA(), 500, 22); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure44 regenerates Figure 4.4: per-sample-index standard
// deviation of ECU 0's edge sets.
func BenchmarkFigure44(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunIndexDeviation(vehicle.NewSterlingActerra(), 0, 300, 24); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnlineUpdate measures the Section 5.3 online update under a
// 35 °C warm-up and reports both false positive rates.
func BenchmarkOnlineUpdate(b *testing.B) {
	var last *experiments.OnlineUpdateResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunOnlineUpdate(vehicle.NewVehicleA(), 2000, 35, 28)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.StaticFPRate, "static-fp-rate")
	b.ReportMetric(last.UpdatedFPRate, "updated-fp-rate")
}

// BenchmarkBaselines runs the related-work shoot-out of Section 1.2.
func BenchmarkBaselines(b *testing.B) {
	var rows []baseline.ShootoutRow
	for i := 0; i < b.N; i++ {
		v := vehicle.NewVehicleA()
		cfg := v.ExtractionConfig()
		var err error
		rows, err = baseline.Shootout(v, []baseline.Classifier{
			&baseline.VProfile{Extraction: cfg, Metric: core.Mahalanobis, Margin: 8},
			&baseline.SIMPLE{Threshold: cfg.BitThreshold, BitWidth: cfg.BitWidth},
			&baseline.Scission{Threshold: cfg.BitThreshold, BitWidth: cfg.BitWidth, Seed: 9},
			&baseline.Viden{Threshold: cfg.BitThreshold, BitWidth: cfg.BitWidth},
			&baseline.VoltageIDS{Threshold: cfg.BitThreshold, BitWidth: cfg.BitWidth, Seed: 11},
			&baseline.Choi{Threshold: cfg.BitThreshold, BitWidth: cfg.BitWidth},
			&baseline.Murvay{Threshold: cfg.BitThreshold, BitWidth: cfg.BitWidth, Mode: baseline.MurvayMSE},
		}, 1000, 1000, 77)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Hijack.FScore(), r.Name+"-hijack-F")
	}
}

// --- latency micro-benchmarks (the Section 1.3 lightweight claim) ---

// benchFixture prepares one trained model and a batch of traces.
func benchFixture(b *testing.B) (*vehicle.Vehicle, edgeset.Config, *core.Model, []analog.Trace) {
	b.Helper()
	v := vehicle.NewVehicleB()
	cfg := v.ExtractionConfig()
	var samples []core.Sample
	var traces []analog.Trace
	err := v.Stream(vehicle.GenConfig{NumMessages: 1200, Seed: 5}, func(m vehicle.Message) error {
		res, err := edgeset.Extract(m.Trace, cfg)
		if err != nil {
			return err
		}
		samples = append(samples, core.Sample{SA: res.SA, Set: res.Set})
		if len(traces) < 256 {
			traces = append(traces, m.Trace)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	model, err := core.Train(samples, core.TrainConfig{Metric: core.Mahalanobis, SAMap: v.SAMap(), Margin: 10})
	if err != nil {
		b.Fatal(err)
	}
	return v, cfg, model, traces
}

// BenchmarkExtractLatency measures Algorithm 1 per message: the
// preprocessing share of the detection pipeline.
func BenchmarkExtractLatency(b *testing.B) {
	_, cfg, _, traces := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := edgeset.Extract(traces[i%len(traces)], cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectLatency measures Algorithm 3 per message: the
// single-feature distance detection the paper calls lightweight.
func BenchmarkDetectLatency(b *testing.B) {
	_, cfg, model, traces := benchFixture(b)
	sets := make([]core.Sample, len(traces))
	for i, tr := range traces {
		res, err := edgeset.Extract(tr, cfg)
		if err != nil {
			b.Fatal(err)
		}
		sets[i] = core.Sample{SA: res.SA, Set: res.Set}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sets[i%len(sets)]
		model.Detect(s.SA, s.Set)
	}
}

// BenchmarkPipelineLatency measures the full per-message path:
// preprocessing plus detection. At a 250 kb/s bus a frame lasts
// ≥ 500 µs; staying well below that is the real-time requirement.
func BenchmarkPipelineLatency(b *testing.B) {
	_, cfg, model, traces := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := edgeset.Extract(traces[i%len(traces)], cfg)
		if err != nil {
			b.Fatal(err)
		}
		model.Detect(res.SA, res.Set)
	}
}

// BenchmarkTrain measures Algorithm 2 on 1200 preprocessed messages.
func BenchmarkTrain(b *testing.B) {
	v, cfg, _, _ := benchFixture(b)
	var samples []core.Sample
	err := v.Stream(vehicle.GenConfig{NumMessages: 1200, Seed: 6}, func(m vehicle.Message) error {
		res, err := edgeset.Extract(m.Trace, cfg)
		if err != nil {
			return err
		}
		samples = append(samples, core.Sample{SA: res.SA, Set: res.Set})
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Train(samples, core.TrainConfig{Metric: core.Mahalanobis, SAMap: v.SAMap()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUpdateLatency measures Algorithm 4 per edge set (the
// Sherman-Morrison inverse maintenance).
func BenchmarkUpdateLatency(b *testing.B) {
	_, cfg, model, traces := benchFixture(b)
	var samples []core.Sample
	for _, tr := range traces {
		res, err := edgeset.Extract(tr, cfg)
		if err != nil {
			b.Fatal(err)
		}
		samples = append(samples, core.Sample{SA: res.SA, Set: res.Set})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Update(samples[i%len(samples) : i%len(samples)+1]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthesize measures the analog substrate itself: one frame
// rendered to a 10 MS/s trace.
func BenchmarkSynthesize(b *testing.B) {
	v := vehicle.NewVehicleB()
	tx := v.ECUs[0].Transceiver
	frame, err := canbus.NewJ1939Frame(canbus.J1939ID{Priority: 3, PGN: canbus.PGNElectronicEngine1, SA: 0}, make([]byte, 8))
	if err != nil {
		b.Fatal(err)
	}
	cfg := analog.SynthConfig{ADC: v.ADC, BitRate: v.BitRate, LeadIdleBits: 3, MaxSamples: v.DefaultTraceSamples()}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analog.SynthesizeFrame(tx, frame, cfg, tx.NominalEnvironment(), rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEdges runs the edge-selection ablation (the
// DESIGN.md design-choice study: both edges versus rising/falling
// only).
func BenchmarkAblationEdges(b *testing.B) {
	var pts []experiments.AblationPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.RunEdgeAblation(vehicle.NewVehicleA(), experiments.Scale{TrainMessages: 1200, TestMessages: 2000, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		if p.Err == "" {
			b.ReportMetric(p.HijackF, p.Label+"-hijack-F")
		}
	}
}

// BenchmarkAblationMargin traces the Section 3.2.3 margin trade-off.
func BenchmarkAblationMargin(b *testing.B) {
	var pts []experiments.MarginCurvePoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.RunMarginCurve(vehicle.NewVehicleA(), []float64{0, 15, 40, 160}, experiments.Scale{TrainMessages: 1200, TestMessages: 2000, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].ForeignRecall, "recall@margin0")
	b.ReportMetric(pts[len(pts)-1].ForeignRecall, "recall@margin160")
}
