// Quickstart: train vProfile on simulated truck traffic and catch a
// hijacked ECU in a dozen lines of library use.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vprofile/internal/core"
	"vprofile/internal/edgeset"
	"vprofile/internal/vehicle"
)

func main() {
	// Vehicle B: ten ECUs on a 250 kb/s J1939 bus, sampled at 10 MS/s
	// and 12 bits — the paper's second test vehicle.
	v := vehicle.NewVehicleB()
	cfg := v.ExtractionConfig()

	// 1. Preprocess a training capture: one edge set + SA per message.
	var training []core.Sample
	err := v.Stream(vehicle.GenConfig{NumMessages: 2000, Seed: 1}, func(m vehicle.Message) error {
		res, err := edgeset.Extract(m.Trace, cfg)
		if err != nil {
			return err
		}
		training = append(training, core.Sample{SA: res.SA, Set: res.Set})
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Train with the SA→ECU database ("fortunate" clustering) and a
	// detection margin.
	model, err := core.Train(training, core.TrainConfig{
		Metric: core.Mahalanobis,
		SAMap:  v.SAMap(),
		Margin: 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d clusters over %d source addresses\n", len(model.Clusters), len(model.SALUT))

	// 3. Detect: legitimate traffic passes, a forged SA is flagged.
	legit, hijacked := 0, 0
	err = v.Stream(vehicle.GenConfig{NumMessages: 500, Seed: 2}, func(m vehicle.Message) error {
		res, err := edgeset.Extract(m.Trace, cfg)
		if err != nil {
			return err
		}
		if !model.Detect(res.SA, res.Set).Anomaly {
			legit++
		}
		// The same waveform claiming another ECU's address: ECU 0's
		// messages pretending to be the brake controller (SA 0x0B).
		if m.ECUIndex == 0 {
			if d := model.Detect(0x0B, res.Set); d.Anomaly {
				hijacked++
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("legitimate messages accepted: %d/500\n", legit)
	fmt.Printf("hijack attempts flagged: %d/%d\n", hijacked, hijacked)
}
