// Bus fault confinement: a node with a failing transceiver corrupts
// its own transmissions, marches through error-active → error-passive
// → bus-off exactly as ISO 11898-1 prescribes, then recovers after the
// mandated idle sequence — the "inherent error detection and
// retransmission features" the paper's background chapter credits for
// CAN's ubiquity, demonstrated on this repository's transfer-layer
// simulator.
//
//	go run ./examples/busfault
package main

import (
	"fmt"
	"log"

	"vprofile/internal/canbus"
)

func main() {
	ecm := &canbus.BusNode{Name: "ECM"}
	tcm := &canbus.BusNode{Name: "TCM"}
	failing := &canbus.BusNode{Name: "AuxHeater"} // damaged transceiver

	// Periodic traffic for everyone.
	for i := 0; i < 40; i++ {
		ecm.Enqueue(mustFrame(canbus.J1939ID{Priority: 3, PGN: canbus.PGNElectronicEngine1, SA: canbus.SAEngine}, byte(i)))
		tcm.Enqueue(mustFrame(canbus.J1939ID{Priority: 3, PGN: canbus.PGNTransmission1, SA: canbus.SATransmission}, byte(i)))
	}
	failing.Enqueue(mustFrame(canbus.J1939ID{Priority: 6, PGN: canbus.PGNCabMessage1, SA: 0x55}, 1))

	sim, err := canbus.NewBusSim([]*canbus.BusNode{ecm, tcm, failing}, 42)
	if err != nil {
		log.Fatal(err)
	}
	sim.CorruptProb = 1.0
	sim.TargetedNode = "AuxHeater"

	delivered, _ := sim.Run(20000)

	fmt.Printf("delivered %d healthy frames while the heater misbehaved\n\n", delivered)
	lastState := map[string]string{}
	for _, ev := range sim.Log() {
		switch ev.Type {
		case canbus.EventBusOff, canbus.EventRecovered:
			fmt.Printf("t=%7d bits: %-9s %s (TEC now %d)\n",
				ev.AtBit, ev.Node, ev.Type, sim.Node(ev.Node).Counters.TEC)
			lastState[ev.Node] = ev.Type.String()
		}
	}
	fmt.Printf("\nfinal states: ECM=%s TCM=%s AuxHeater=%s\n",
		ecm.Counters.State(), tcm.Counters.State(), failing.Counters.State())
	fmt.Println("all healthy traffic was delivered; fault confinement kept the bus alive.")
	fmt.Println("(the observers drift to error-passive from witnessing the storm — also per spec —")
	fmt.Println(" which weakens their error signalling but not their ability to transmit)")
}

func mustFrame(id canbus.J1939ID, seq byte) *canbus.ExtendedFrame {
	f, err := canbus.NewJ1939Frame(id, []byte{seq, 0, 0, 0, 0, 0, 0, 0})
	if err != nil {
		panic(err)
	}
	return f
}
