// Hijack detection with the streaming IDS: a continuous digitizer
// stream carries normal traffic interleaved with frames from a
// compromised body controller that forges the engine ECU's source
// address (the Miller-Valasek threat the paper's introduction
// motivates). The IDS segments the stream, fingerprints every frame,
// and names the true origin of each attack.
//
//	go run ./examples/hijack
package main

import (
	"fmt"
	"log"
	"math/rand"

	"vprofile/internal/analog"
	"vprofile/internal/canbus"
	"vprofile/internal/core"
	"vprofile/internal/edgeset"
	"vprofile/internal/ids"
	"vprofile/internal/vehicle"
)

func main() {
	v := vehicle.NewVehicleA()
	cfg := v.ExtractionConfig()

	// Train on clean traffic.
	var training []core.Sample
	err := v.Stream(vehicle.GenConfig{NumMessages: 2500, Seed: 10}, func(m vehicle.Message) error {
		res, err := edgeset.Extract(m.Trace, cfg)
		if err != nil {
			return err
		}
		training = append(training, core.Sample{SA: res.SA, Set: res.Set})
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	model, err := core.Train(training, core.TrainConfig{Metric: core.Mahalanobis, SAMap: v.SAMap(), Margin: 40})
	if err != nil {
		log.Fatal(err)
	}

	det, err := ids.New(model, ids.Config{Extraction: cfg})
	if err != nil {
		log.Fatal(err)
	}

	// Build a live bus stream: mostly legitimate frames, but every
	// sixth frame the body controller (ECU 3) transmits under the
	// engine ECU's SA 0x00 with forged payloads.
	rng := rand.New(rand.NewSource(11))
	synth := analog.SynthConfig{ADC: v.ADC, BitRate: v.BitRate, LeadIdleBits: 4}
	var stream analog.Trace
	attacks := 0
	for i := 0; i < 30; i++ {
		ecu := v.ECUs[i%len(v.ECUs)]
		id := ecu.Messages[0].ID
		if i%6 == 5 {
			ecu = v.ECUs[3] // the compromised node
			id = canbus.J1939ID{Priority: 3, PGN: canbus.PGNTorqueSpeedControl, SA: canbus.SAEngine}
			attacks++
		}
		data := make([]byte, 8)
		rng.Read(data)
		frame, err := canbus.NewJ1939Frame(id, data)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := analog.SynthesizeFrame(ecu.Transceiver, frame, synth, ecu.Transceiver.NominalEnvironment(), rng)
		if err != nil {
			log.Fatal(err)
		}
		stream = append(stream, tr...)
	}
	idle := make(analog.Trace, 20*cfg.BitWidth)
	rec := v.ADC.VoltsToCode(0.015)
	for i := range idle {
		idle[i] = rec
	}
	stream = append(stream, idle...)

	// Feed the stream in digitizer-sized chunks.
	caught := 0
	for off := 0; off < len(stream); off += 4096 {
		end := off + 4096
		if end > len(stream) {
			end = len(stream)
		}
		results, err := det.Push(stream[off:end])
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			if !r.Anomalous() {
				continue
			}
			caught++
			origin := "unknown"
			if r.Detection.Predict >= 0 {
				c, err := model.Cluster(r.Detection.Predict)
				if err == nil {
					origin = fmt.Sprintf("cluster %d (SAs %v)", c.ID, c.SAs)
				}
			}
			fmt.Printf("ALARM at sample %d: SA %#02x, reason %s, true origin %s\n",
				r.SOFIndex, uint8(r.SA), r.Detection.Reason, origin)
		}
	}
	st := det.Stats()
	fmt.Printf("\nprocessed %d frames, %d injected attacks, %d alarms\n", st.Frames, attacks, caught)
	if caught == attacks {
		fmt.Println("every hijacked frame was identified — and attributed to the compromised ECU")
	}
}
