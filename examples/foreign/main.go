// Foreign-device detection: an attacker clips a purpose-built node
// onto the bus and tunes it to imitate the cab controller's waveform.
// The imitation is close enough to slip under a Euclidean-distance
// detector (the edge-sampling variance dominates that threshold), yet
// the Mahalanobis detector — vProfile's headline configuration —
// rejects it through the whitened steady-state bias, reproducing the
// Table 4.1(c) vs 4.3(c) contrast on a live scenario.
//
//	go run ./examples/foreign
package main

import (
	"fmt"
	"log"

	"vprofile/internal/core"
	"vprofile/internal/edgeset"
	"vprofile/internal/vehicle"
)

func main() {
	v := vehicle.NewVehicleA()
	cfg := v.ExtractionConfig()

	var training []core.Sample
	err := v.Stream(vehicle.GenConfig{NumMessages: 3000, Seed: 20}, func(m vehicle.Message) error {
		res, err := edgeset.Extract(m.Trace, cfg)
		if err != nil {
			return err
		}
		training = append(training, core.Sample{SA: res.SA, Set: res.Set})
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	victim := v.ECUs[4] // the cab controller
	imposter := vehicle.ForeignDevice(victim.Transceiver)
	attack, err := v.GenerateForeign(imposter, victim, vehicle.GenConfig{NumMessages: 400, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}

	for _, metric := range []core.Metric{core.Euclidean, core.Mahalanobis} {
		margin := 5.0
		if metric == core.Euclidean {
			margin = 400
		}
		model, err := core.Train(training, core.TrainConfig{Metric: metric, SAMap: v.SAMap(), Margin: margin})
		if err != nil {
			log.Fatal(err)
		}
		caught := 0
		for _, m := range attack.Messages {
			res, err := edgeset.Extract(m.Trace, cfg)
			if err != nil {
				log.Fatal(err)
			}
			if model.Detect(res.SA, res.Set).Anomaly {
				caught++
			}
		}
		// Sanity: the same margin must keep legitimate traffic clean.
		fps := 0
		err = v.Stream(vehicle.GenConfig{NumMessages: 400, Seed: 22}, func(m vehicle.Message) error {
			res, err := edgeset.Extract(m.Trace, cfg)
			if err != nil {
				return err
			}
			if model.Detect(res.SA, res.Set).Anomaly {
				fps++
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s metric: flagged %3d/%d foreign frames (%d/400 false alarms on clean traffic)\n",
			metric, caught, len(attack.Messages), fps)
	}
	fmt.Println("\nthe single-feature Mahalanobis detector sees the imitation; Euclidean distance does not")
}
