// Online model update under temperature drift (Section 5.3): a model
// trained on a cold morning starts flagging legitimate traffic as the
// engine bay warms; folding accepted messages back into the model with
// Algorithm 4 keeps the false positive rate at zero without a retrain.
//
//	go run ./examples/onlineupdate
package main

import (
	"fmt"
	"log"

	"vprofile/internal/analog"
	"vprofile/internal/core"
	"vprofile/internal/edgeset"
	"vprofile/internal/vehicle"
)

func main() {
	v := vehicle.NewVehicleA()
	cfg := v.ExtractionConfig()

	// Train and pick a margin at 5 °C.
	cold := func(t float64, ecu int) analog.Environment {
		return analog.Environment{TemperatureC: 5, SupplyVolts: 13.6}
	}
	collect := func(n int, seed int64, env vehicle.EnvFunc) []core.Sample {
		var out []core.Sample
		err := v.Stream(vehicle.GenConfig{NumMessages: n, Seed: seed, Env: env}, func(m vehicle.Message) error {
			res, err := edgeset.Extract(m.Trace, cfg)
			if err != nil {
				return err
			}
			out = append(out, core.Sample{SA: res.SA, Set: res.Set})
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		return out
	}
	training := collect(5000, 30, cold)

	mkModel := func() *core.Model {
		m, err := core.Train(training, core.TrainConfig{
			Metric: core.Mahalanobis, SAMap: v.SAMap(), Margin: 10, UpdateBound: 500000,
		})
		if err != nil {
			log.Fatal(err)
		}
		return m
	}
	static := mkModel()
	adaptive := mkModel()

	// The day warms from 5 °C to 45 °C in 5 °C steps; after each step
	// the adaptive model folds the accepted messages back in.
	fmt.Printf("%6s %14s %16s\n", "temp", "static FPs", "adaptive FPs")
	for step := 0; step <= 8; step++ {
		temp := 5 + 5*float64(step)
		env := func(t float64, ecu int) analog.Environment {
			return analog.Environment{TemperatureC: temp, SupplyVolts: 13.6}
		}
		batch := collect(600, 31+int64(step), env)
		staticFPs, adaptiveFPs := 0, 0
		var accepted []core.Sample
		for _, s := range batch {
			if static.Detect(s.SA, s.Set).Anomaly {
				staticFPs++
			}
			if adaptive.Detect(s.SA, s.Set).Anomaly {
				adaptiveFPs++
			} else {
				accepted = append(accepted, s)
			}
		}
		if _, err := adaptive.Update(accepted); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4.0f°C %10d/600 %12d/600\n", temp, staticFPs, adaptiveFPs)
	}
	fmt.Println("\nthe static model degrades with the drift; Algorithm 4 tracks it")
}
