// J1939 diagnostics walkthrough: live traffic with the signal model
// and DM1 broadcasts enabled is decoded end to end — engine speed and
// coolant temperature from their SPNs, multi-packet trouble-code
// reports reassembled over TP.BAM — while every frame (diagnostic or
// not) still passes through vProfile's per-frame sender verification.
//
//	go run ./examples/diagnostics
package main

import (
	"fmt"
	"log"
	"math"

	"vprofile/internal/canbus"
	"vprofile/internal/core"
	"vprofile/internal/edgeset"
	"vprofile/internal/vehicle"
)

func main() {
	v := vehicle.NewVehicleA()
	cfg := v.ExtractionConfig()

	// Train the fingerprint model on plain traffic.
	var training []core.Sample
	err := v.Stream(vehicle.GenConfig{NumMessages: 2000, Seed: 40}, func(m vehicle.Message) error {
		res, err := edgeset.Extract(m.Trace, cfg)
		if err != nil {
			return err
		}
		training = append(training, core.Sample{SA: res.SA, Set: res.Set})
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	model, err := core.Train(training, core.TrainConfig{Metric: core.Mahalanobis, SAMap: v.SAMap(), Margin: 12})
	if err != nil {
		log.Fatal(err)
	}

	reasm := canbus.NewBAMReassembler()
	shown := map[string]bool{}
	verified, flagged := 0, 0

	err = v.Stream(vehicle.GenConfig{
		NumMessages: 1500, Seed: 41,
		RealisticPayloads: true, DiagnosticTraffic: true,
	}, func(m vehicle.Message) error {
		// Sender verification applies to every frame, diagnostics
		// included — each TP packet carries the sender's SA.
		res, err := edgeset.Extract(m.Trace, cfg)
		if err == nil {
			if model.Detect(res.SA, res.Set).Anomaly {
				flagged++
			} else {
				verified++
			}
		}

		id := m.Frame.J1939()
		// Decode the catalogued signals once per PGN for the demo.
		for _, spn := range canbus.SPNsForPGN(id.PGN) {
			key := fmt.Sprintf("spn%d", spn.Number)
			if shown[key] {
				continue
			}
			val, err := spn.Decode(m.Frame.Data)
			if err != nil || math.IsNaN(val) {
				continue
			}
			shown[key] = true
			fmt.Printf("%8.3fs  SA %#02x  %-32s %8.2f %s\n",
				m.TimeSec, uint8(id.SA), spn.Name, val, spn.Units)
		}
		// Single-frame DM1.
		if id.PGN == canbus.PGNDM1 && !shown["dm1"] {
			if lamps, dtcs, err := canbus.DecodeDM1(m.Frame.Data); err == nil {
				shown["dm1"] = true
				fmt.Printf("%8.3fs  SA %#02x  DM1: lamps=%+v, %d active codes\n",
					m.TimeSec, uint8(id.SA), lamps, len(dtcs))
			}
		}
		// Multi-packet DM1 over TP.BAM.
		if done, err := reasm.Feed(m.Frame); err == nil && done != nil && done.PGN == canbus.PGNDM1 && !shown["dm1tp"] {
			if lamps, dtcs, err := canbus.DecodeDM1(done.Payload); err == nil {
				shown["dm1tp"] = true
				fmt.Printf("%8.3fs  SA %#02x  DM1 via TP.BAM: lamps=%+v\n", m.TimeSec, uint8(done.SA), lamps)
				for _, d := range dtcs {
					fmt.Printf("%19s SPN %d FMI %d ×%d\n", "", d.SPN, d.FMI, d.OccurrenceCount)
				}
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfingerprint verification alongside: %d frames verified, %d flagged\n", verified, flagged)
}
