package vprofile_test

import (
	"bytes"
	"sync"
	"testing"

	"vprofile/internal/core"
	"vprofile/internal/experiments"
	"vprofile/internal/ids"
	"vprofile/internal/obs"
	"vprofile/internal/obs/tracing"
	"vprofile/internal/pipeline"
	"vprofile/internal/trace"
	"vprofile/internal/vehicle"
)

// The replay benchmarks compare sequential replay (Composite.Process
// in a read loop) against the concurrent pipeline at several worker
// counts, over the same ≥10k-record capture. On a multicore host the
// pipeline's throughput should scale with the pool until the serial
// record-reader stage saturates:
//
//	go test -bench Replay -benchmem
const replayRecords = 10000

var (
	replayOnce         sync.Once
	replayCapture      []byte
	replayMonitor      func(b *testing.B) *ids.Composite
	replayInstrumented func(b *testing.B, reg *obs.Registry) *ids.Composite
)

// replayFixture generates the capture and trains the model once for
// all replay benchmarks.
func replayFixture(b *testing.B) {
	replayOnce.Do(func() {
		v := vehicle.NewVehicleB()
		train, err := experiments.CollectSamples(v, 1500, 7, nil, v.ExtractionConfig())
		if err != nil {
			b.Fatal(err)
		}
		model, err := core.Train(experiments.CoreSamples(train), core.TrainConfig{
			Metric: core.Mahalanobis, SAMap: v.SAMap(),
		})
		if err != nil {
			b.Fatal(err)
		}
		val, err := experiments.CollectSamples(v, 800, 8, nil, v.ExtractionConfig())
		if err != nil {
			b.Fatal(err)
		}
		margin, _ := experiments.OptimizeMargin(experiments.FalsePositiveRecords(model, val), experiments.MaxAccuracy)
		model.Margin = margin * 1.5

		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf, trace.Header{Vehicle: v.Name, BitRate: v.BitRate, ADC: v.ADC})
		if err != nil {
			b.Fatal(err)
		}
		err = v.Stream(vehicle.GenConfig{NumMessages: replayRecords, Seed: 99, DiagnosticTraffic: true}, func(m vehicle.Message) error {
			return w.Write(&trace.Record{
				ECUIndex: int32(m.ECUIndex),
				TimeSec:  m.TimeSec,
				FrameID:  m.Frame.ID,
				Data:     m.Frame.Data,
				Trace:    m.Trace,
			})
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		replayCapture = buf.Bytes()

		replayMonitor = func(b *testing.B) *ids.Composite {
			mon, err := ids.NewComposite(model, ids.CompositeConfig{Extraction: v.ExtractionConfig()})
			if err != nil {
				b.Fatal(err)
			}
			return mon
		}
		replayInstrumented = func(b *testing.B, reg *obs.Registry) *ids.Composite {
			mon, err := ids.NewComposite(model, ids.CompositeConfig{
				Extraction: v.ExtractionConfig(), Metrics: ids.NewMetrics(reg),
			})
			if err != nil {
				b.Fatal(err)
			}
			return mon
		}
	})
	if replayCapture == nil {
		b.Fatal("replay fixture failed in an earlier benchmark")
	}
}

func benchReplay(b *testing.B, workers int) {
	replayFixture(b)
	b.ResetTimer()
	var frames int64
	for i := 0; i < b.N; i++ {
		rd, err := trace.NewReader(bytes.NewReader(replayCapture))
		if err != nil {
			b.Fatal(err)
		}
		mon := replayMonitor(b)
		var st pipeline.Stats
		if workers == 0 {
			st, err = pipeline.Sequential(rd, mon, nil)
		} else {
			st, err = pipeline.Replay(rd, mon, pipeline.Config{Workers: workers}, nil)
		}
		if err != nil {
			b.Fatal(err)
		}
		if st.RecordsOut != replayRecords {
			b.Fatalf("replayed %d of %d records", st.RecordsOut, replayRecords)
		}
		frames += st.RecordsOut
	}
	b.ReportMetric(float64(frames)/b.Elapsed().Seconds(), "frames/s")
}

// benchReplayMetrics is the instrumented twin of benchReplay: full
// observability (capture-reader, pipeline and detector metrics on one
// registry). Comparing the two quantifies the metrics overhead, which
// the acceptance bar holds under 5%.
func benchReplayMetrics(b *testing.B, workers int) {
	replayFixture(b)
	reg := obs.NewRegistry()
	pm := pipeline.NewMetrics(reg)
	tm := trace.NewMetrics(reg)
	b.ResetTimer()
	var frames int64
	for i := 0; i < b.N; i++ {
		rd, err := trace.NewReader(bytes.NewReader(replayCapture))
		if err != nil {
			b.Fatal(err)
		}
		rd.SetMetrics(tm)
		mon := replayInstrumented(b, reg)
		st, err := pipeline.Replay(rd, mon, pipeline.Config{Workers: workers, Metrics: pm}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if st.RecordsOut != replayRecords {
			b.Fatalf("replayed %d of %d records", st.RecordsOut, replayRecords)
		}
		frames += st.RecordsOut
	}
	b.ReportMetric(float64(frames)/b.Elapsed().Seconds(), "frames/s")
}

func BenchmarkReplaySequential(b *testing.B)       { benchReplay(b, 0) }
func BenchmarkReplayParallel1(b *testing.B)        { benchReplay(b, 1) }
func BenchmarkReplayParallel2(b *testing.B)        { benchReplay(b, 2) }
func BenchmarkReplayParallel4(b *testing.B)        { benchReplay(b, 4) }
func BenchmarkReplayParallel8(b *testing.B)        { benchReplay(b, 8) }
func BenchmarkReplayParallel4Metrics(b *testing.B) { benchReplayMetrics(b, 4) }
func BenchmarkReplayParallel8Metrics(b *testing.B) { benchReplayMetrics(b, 8) }

// benchReplayFlight is the forensic twin: per-frame tracing plus an
// in-memory flight recorder (no bundle directory, so the measurement
// is the steady-state span + ring-buffer cost, not disk IO).
// Comparing against benchReplay of the same worker count quantifies
// the tracing overhead, held to the same <5% bar.
func benchReplayFlight(b *testing.B, workers int) {
	replayFixture(b)
	b.ResetTimer()
	var frames int64
	for i := 0; i < b.N; i++ {
		rd, err := trace.NewReader(bytes.NewReader(replayCapture))
		if err != nil {
			b.Fatal(err)
		}
		rec, err := tracing.NewRecorder(tracing.RecorderConfig{})
		if err != nil {
			b.Fatal(err)
		}
		mon := replayMonitor(b)
		st, err := pipeline.Replay(rd, mon, pipeline.Config{Workers: workers, Recorder: rec}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := rec.Close(); err != nil {
			b.Fatal(err)
		}
		if st.RecordsOut != replayRecords {
			b.Fatalf("replayed %d of %d records", st.RecordsOut, replayRecords)
		}
		frames += st.RecordsOut
	}
	b.ReportMetric(float64(frames)/b.Elapsed().Seconds(), "frames/s")
}

func BenchmarkReplayParallel4Flight(b *testing.B) { benchReplayFlight(b, 4) }
func BenchmarkReplayParallel8Flight(b *testing.B) { benchReplayFlight(b, 8) }
