module vprofile

go 1.22
