#!/usr/bin/env bash
# Daemon-mode smoke: start vprofiled from a fleet policy, `vprofile
# attach` a bus and stream a capture into its ingest socket, require
# the daemon's tallies to match a batch `vprofile detect` of the same
# file, read them back through the status and event endpoints, then
# SIGTERM and require a clean drain (exit 0).
#
# BIN points at the directory holding tracegen/vprofile/vprofiled
# (default ./bin). The script works in a scratch directory and cleans
# up after itself, so it is safe to run from a checkout — `make
# daemon-smoke` and the CI daemon-smoke job both run it.
set -eux

BIN=${BIN:-$(pwd)/bin}
CTRL=${CTRL:-127.0.0.1:9675}
tmp=$(mktemp -d)
daemon_pid=""
cleanup() {
  if [ -n "$daemon_pid" ]; then kill -9 "$daemon_pid" 2>/dev/null || true; fi
  rm -rf "$tmp"
}
trap cleanup EXIT
cd "$tmp"

"$BIN/tracegen" -vehicle b -n 3000 -seed 51 -signals -diag -out clean.vptr
"$BIN/vprofile" train -capture clean.vptr -model m.vpm
"$BIN/tracegen" -vehicle b -n 800 -seed 52 -foreign 1 -out attack.vptr

# Batch reference: the socket-streamed daemon replay of the same file
# must land on exactly these numbers.
"$BIN/vprofile" detect -capture attack.vptr -model m.vpm | tee batch.txt
batch_frames=$(sed -nE 's/^classified ([0-9]+) messages:.*/\1/p' batch.txt)
batch_flagged=$(sed -nE 's/^classified [0-9]+ messages: ([0-9]+) flagged.*/\1/p' batch.txt)
test -n "$batch_frames"
test -n "$batch_flagged"

cat > fleet.yaml <<EOF
control: $CTRL
defaults:
  model: m.vpm
buses:
  front:
    listen: tcp://127.0.0.1:0
EOF

"$BIN/vprofiled" -policy fleet.yaml &
daemon_pid=$!
ok=""
for _ in $(seq 1 50); do
  if "$BIN/vprofile" status -control "$CTRL" >/dev/null 2>&1; then ok=1; break; fi
  sleep 0.2
done
test -n "$ok"

# Attach a second bus and stream the capture into its unix socket; the
# client waits for the daemon to finish the session and prints its
# tally, exiting non-zero if the session aborted.
"$BIN/vprofile" attach -control "$CTRL" -bus smoke \
  -listen "unix://$tmp/smoke.sock" -model m.vpm -capture attack.vptr | tee attach.txt
grep -q "attached bus smoke" attach.txt

# The status endpoint serves the same tallies: bit-identical to batch.
"$BIN/vprofile" status -control "$CTRL" -bus smoke -json | tee status.json
python3 - "$batch_frames" "$batch_flagged" <<'EOF'
import json, sys
st = json.load(open("status.json"))
t = st["tally"]
frames, flagged = int(sys.argv[1]), int(sys.argv[2])
assert st["sessions_done"] == 1 and st["sessions_aborted"] == 0, st
assert t["frames"] == frames, (t["frames"], frames)
assert t["volt_alarms"] == flagged, (t["volt_alarms"], flagged)
assert t["volt_alarms"] > 0, "attack capture produced no voltage alarms"
print(f"daemon tally matches batch detect: {frames} frames, {flagged} alarms")
EOF

# The policy bus is alive and listed alongside the attached one.
"$BIN/vprofile" status -control "$CTRL" | tee status.txt
grep -q "bus front" status.txt
grep -q "bus smoke" status.txt

# The alarm subscription replays the attack's buffered events.
"$BIN/vprofile" tail -control "$CTRL" -once | tee events.jsonl
grep -q '"bus":"smoke"' events.jsonl

# SIGTERM drains every session; a clean drain exits 0.
kill -TERM "$daemon_pid"
rc=0
wait "$daemon_pid" || rc=$?
daemon_pid=""
test "$rc" -eq 0
echo "daemon-smoke: OK"
