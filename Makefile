GO ?= go

.PHONY: build test vet race check bench-replay bench bench-go

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector; the concurrent
# replay pipeline (internal/pipeline) must stay clean here on every
# change.
race:
	$(GO) test -race ./...

# check is the PR gate: vet + race-checked tests.
check: vet race

# bench-replay compares sequential replay against the concurrent
# pipeline at 1/2/4/8 workers (plus instrumented variants) on a
# 10k-record capture.
bench-replay:
	$(GO) test -bench Replay -benchmem -run '^$$' .

# bench writes the replay benchmark sweep — sequential vs 1/2/4/8
# workers, metrics-off vs metrics-on, plus tracing+flight-recorder
# configurations, including the measured metrics and flight overheads
# — to BENCH_pipeline.json, the repository's performance trajectory
# file.
bench:
	$(GO) run ./cmd/replaybench -out BENCH_pipeline.json

bench-go:
	$(GO) test -bench . -benchmem -run '^$$' ./...
