GO ?= go

.PHONY: build test vet race check bench-replay bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector; the concurrent
# replay pipeline (internal/pipeline) must stay clean here on every
# change.
race:
	$(GO) test -race ./...

# check is the PR gate: vet + race-checked tests.
check: vet race

# bench-replay compares sequential replay against the concurrent
# pipeline at 1/2/4/8 workers on a 10k-record capture.
bench-replay:
	$(GO) test -bench Replay -benchmem -run '^$$' .

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...
