GO ?= go
FUZZTIME ?= 45s

.PHONY: build test vet race check lint fuzz bench-replay bench bench-gate bench-go arena arena-gate daemon-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector; the concurrent
# replay pipeline (internal/pipeline) must stay clean here on every
# change.
race:
	$(GO) test -race ./...

# check is the PR gate: vet + race-checked tests.
check: vet race

# lint runs the CI linter set (.golangci.yml: errcheck, govet,
# staticcheck, unused). Requires golangci-lint on PATH; CI installs it
# via the golangci-lint action.
lint:
	golangci-lint run

# fuzz runs each native fuzz target for FUZZTIME, seeded from the
# committed corpora under testdata/fuzz/. CI runs the same targets as
# separate smoke jobs.
fuzz:
	$(GO) test -fuzz '^FuzzReaderResync$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/trace
	$(GO) test -fuzz '^FuzzEdgeExtract$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/edgeset

# bench-replay compares sequential replay against the concurrent
# pipeline at 1/2/4/8 workers (plus instrumented variants) on a
# 10k-record capture.
bench-replay:
	$(GO) test -bench Replay -benchmem -run '^$$' .

# bench writes the replay benchmark sweep — sequential vs 1/2/4/8
# workers, metrics-off vs metrics-on, plus tracing+flight-recorder and
# fault-layer (recovery reader + quarantine) configurations, including
# the measured metrics, flight and fault-layer overheads — to
# BENCH_pipeline.json, the repository's performance trajectory file.
bench:
	$(GO) run ./cmd/replaybench -out BENCH_pipeline.json

# bench-gate regenerates the sweep into a scratch file and fails when
# median replay throughput dropped more than 10% against the committed
# baseline, the best plain parallel speedup fell under 1.5x (skipped
# automatically on single-core hosts), median allocs-per-frame grew
# more than 25%, or the fleet-sharing / incident-correlation /
# drift-monitor / socket-ingestion layers cost more than 5% — the
# benchmark-regression gate CI runs on every PR.
bench-gate:
	$(GO) run ./cmd/replaybench -out /tmp/bench-candidate.json -repeat 7 -gomaxprocs 4
	$(GO) run ./cmd/benchgate -baseline BENCH_pipeline.json -candidate /tmp/bench-candidate.json \
		-max-drop 10 -max-fleet-overhead 5 -max-incident-overhead 5 -max-drift-overhead 5 \
		-max-socket-overhead 5 -min-parallel-speedup 1.5 -max-allocs-growth 25

bench-go:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# daemon-smoke drives daemon mode end to end: start vprofiled from a
# fleet policy, `vprofile attach` a bus and stream a capture into its
# ingest socket, require the daemon's tallies to match a batch
# `vprofile detect` of the same file, then SIGTERM and require a clean
# drain (exit 0). CI runs the same script in its daemon-smoke job.
daemon-smoke:
	$(GO) build -o bin/ ./cmd/tracegen ./cmd/vprofile ./cmd/vprofiled
	BIN=$(CURDIR)/bin scripts/daemon-smoke.sh

# arena regenerates the committed detection baseline: every scenario
# of the attack-corpus registry (hijack, foreign, flood, suspension,
# the adaptive mimic/collusion/poison adversaries) replayed through
# the composite detector and the related-work baseline classifiers,
# with per-cell TPR/FPR written to DETECT_arena.json. Run it — and
# commit the result — whenever a detector or the corpus deliberately
# changes behaviour.
arena:
	$(GO) run ./cmd/vprofile arena -json DETECT_arena.json

# arena-gate regenerates the matrix into a scratch file and fails when
# any detector's TPR dropped more than 2 percentage points — or FPR
# rose more than 1 — on any scenario against the committed baseline:
# the detection-quality gate CI runs on every PR.
arena-gate:
	$(GO) run ./cmd/vprofile arena -json /tmp/arena-candidate.json
	$(GO) run ./cmd/benchgate detect -baseline DETECT_arena.json \
		-candidate /tmp/arena-candidate.json -max-tpr-drop 2 -max-fpr-rise 1
