// Package vprofile is the root of a from-scratch Go reproduction of
// "vProfile: Voltage-Based Anomaly Detection in Controller Area
// Networks" (DATE 2021) and its thesis extension. The implementation
// lives under internal/ (see DESIGN.md for the system inventory),
// runnable tools under cmd/, usage examples under examples/, and the
// per-table/figure reproduction benchmarks in bench_test.go.
package vprofile
