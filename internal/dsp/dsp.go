// Package dsp provides the signal-processing utilities the vProfile
// evaluation needs: integer-factor decimation and least-significant-
// bit dropping for the sampling-rate/resolution sweeps of Section 4.3
// (Tables 4.6 and 4.7, Figure 3.1), lateral rescaling for trace
// comparison, and the moving-average low-pass filter plus matching
// primitives (mean square error, convolution peak) used by the
// Murvay-Groza baseline of Section 1.2.1.
package dsp

import (
	"fmt"
	"math"
)

// Downsample decimates the trace by the integer factor, keeping every
// factor-th sample starting at index 0. This is exactly the software
// downsampling the paper applies to its 20 MS/s captures to evaluate
// 10, 5 and 2.5 MS/s operation.
func Downsample(tr []float64, factor int) ([]float64, error) {
	if factor < 1 {
		return nil, fmt.Errorf("dsp: downsample factor %d < 1", factor)
	}
	if factor == 1 {
		out := make([]float64, len(tr))
		copy(out, tr)
		return out, nil
	}
	out := make([]float64, 0, (len(tr)+factor-1)/factor)
	for i := 0; i < len(tr); i += factor {
		out = append(out, tr[i])
	}
	return out, nil
}

// ReduceResolution drops the least significant bits of ADC codes,
// going from fromBits to toBits of resolution, and keeps the result on
// the original code scale (so thresholds calibrated at fromBits remain
// meaningful). The paper does the same: "we drop the least significant
// bits for the lower resolutions".
func ReduceResolution(tr []float64, fromBits, toBits int) ([]float64, error) {
	if toBits < 1 || fromBits < toBits || fromBits > 16 {
		return nil, fmt.Errorf("dsp: cannot reduce %d-bit codes to %d bits", fromBits, toBits)
	}
	shift := float64(uint32(1) << uint(fromBits-toBits))
	out := make([]float64, len(tr))
	for i, v := range tr {
		out[i] = math.Floor(v/shift) * shift
	}
	return out, nil
}

// MovingAverage applies a length-n boxcar low-pass filter. The ends
// are handled by shrinking the window, so the output has the same
// length as the input.
func MovingAverage(tr []float64, n int) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("dsp: window %d < 1", n)
	}
	out := make([]float64, len(tr))
	var sum float64
	// Trailing window of up to n samples.
	for i, v := range tr {
		sum += v
		if i >= n {
			sum -= tr[i-n]
		}
		w := n
		if i+1 < n {
			w = i + 1
		}
		out[i] = sum / float64(w)
	}
	return out, nil
}

// ResampleTo linearly interpolates the trace onto n points spanning
// the same lateral extent — the "laterally scale the traces for easier
// comparison" operation of Figure 3.1a.
func ResampleTo(tr []float64, n int) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("dsp: resample length %d < 1", n)
	}
	if len(tr) == 0 {
		return nil, fmt.Errorf("dsp: resample of empty trace")
	}
	out := make([]float64, n)
	if len(tr) == 1 || n == 1 {
		for i := range out {
			out[i] = tr[0]
		}
		return out, nil
	}
	scale := float64(len(tr)-1) / float64(n-1)
	out[0] = tr[0]
	out[n-1] = tr[len(tr)-1] // pin endpoints against rounding drift
	for i := 1; i < n-1; i++ {
		x := float64(i) * scale
		j := int(x)
		if j >= len(tr)-1 {
			out[i] = tr[len(tr)-1]
			continue
		}
		frac := x - float64(j)
		out[i] = tr[j]*(1-frac) + tr[j+1]*frac
	}
	return out, nil
}

// MSE returns the mean square error between two equal-length traces —
// one of the Murvay-Groza matching statistics.
func MSE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("dsp: MSE length mismatch %d != %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, fmt.Errorf("dsp: MSE of empty traces")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s / float64(len(a)), nil
}

// CrossCorrelationPeak returns the maximum of the normalised cross
// correlation of a against b over all lags — the Murvay-Groza
// convolution statistic. Both traces are mean-removed first.
func CrossCorrelationPeak(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, fmt.Errorf("dsp: correlation of empty trace")
	}
	za, na := zeroMean(a)
	zb, nb := zeroMean(b)
	if na == 0 || nb == 0 {
		return 0, nil // a flat trace correlates with nothing
	}
	best := math.Inf(-1)
	for lag := -(len(zb) - 1); lag < len(za); lag++ {
		var s float64
		for i, v := range zb {
			j := lag + i
			if j < 0 || j >= len(za) {
				continue
			}
			s += v * za[j]
		}
		if c := s / (na * nb); c > best {
			best = c
		}
	}
	return best, nil
}

func zeroMean(tr []float64) ([]float64, float64) {
	var mean float64
	for _, v := range tr {
		mean += v
	}
	mean /= float64(len(tr))
	out := make([]float64, len(tr))
	var norm float64
	for i, v := range tr {
		out[i] = v - mean
		norm += out[i] * out[i]
	}
	return out, math.Sqrt(norm)
}
