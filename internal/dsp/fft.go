package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFT computes the in-order radix-2 fast Fourier transform of the
// input. The length must be a power of two; use NextPow2/ZeroPad to
// prepare arbitrary-length signals. The implementation is the
// standard iterative Cooley-Tukey with bit-reversal permutation —
// ample for the ≤4096-point spectra the frequency-domain feature
// extraction (the Choi et al. comparator) needs.
func FFT(in []complex128) ([]complex128, error) {
	n := len(in)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}
	out := make([]complex128, n)
	// Bit-reversal permutation.
	bits := 0
	for 1<<bits < n {
		bits++
	}
	for i := 0; i < n; i++ {
		rev := 0
		for b := 0; b < bits; b++ {
			if i&(1<<b) != 0 {
				rev |= 1 << (bits - 1 - b)
			}
		}
		out[rev] = in[i]
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		w := cmplx.Exp(complex(0, -2*math.Pi/float64(size)))
		for start := 0; start < n; start += size {
			wk := complex(1, 0)
			for k := 0; k < half; k++ {
				a := out[start+k]
				b := out[start+k+half] * wk
				out[start+k] = a + b
				out[start+k+half] = a - b
				wk *= w
			}
		}
	}
	return out, nil
}

// IFFT computes the inverse transform.
func IFFT(in []complex128) ([]complex128, error) {
	n := len(in)
	conj := make([]complex128, n)
	for i, v := range in {
		conj[i] = cmplx.Conj(v)
	}
	fwd, err := FFT(conj)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, n)
	for i, v := range fwd {
		out[i] = cmplx.Conj(v) / complex(float64(n), 0)
	}
	return out, nil
}

// NextPow2 returns the smallest power of two ≥ n (minimum 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// PowerSpectrum returns the one-sided power spectrum of a real signal,
// zero-padded to the next power of two and mean-removed (so the DC
// level does not dominate). The result has NextPow2(len)/2+1 bins.
func PowerSpectrum(signal []float64) ([]float64, error) {
	if len(signal) == 0 {
		return nil, fmt.Errorf("dsp: power spectrum of empty signal")
	}
	var mean float64
	for _, v := range signal {
		mean += v
	}
	mean /= float64(len(signal))
	n := NextPow2(len(signal))
	buf := make([]complex128, n)
	for i, v := range signal {
		buf[i] = complex(v-mean, 0)
	}
	spec, err := FFT(buf)
	if err != nil {
		return nil, err
	}
	half := n/2 + 1
	out := make([]float64, half)
	for i := 0; i < half; i++ {
		re, im := real(spec[i]), imag(spec[i])
		out[i] = (re*re + im*im) / float64(n)
	}
	return out, nil
}

// SpectralFeatures summarises a power spectrum with the statistics the
// frequency-domain feature selection literature favours.
type SpectralFeatures struct {
	Centroid  float64 // power-weighted mean bin
	Spread    float64 // power-weighted bin standard deviation
	Rolloff85 float64 // bin below which 85 % of the power lies
	Flatness  float64 // geometric/arithmetic mean ratio (0 tonal … 1 noisy)
	Peak      float64 // bin of the strongest component
}

// AnalyzeSpectrum computes SpectralFeatures from a power spectrum.
func AnalyzeSpectrum(ps []float64) SpectralFeatures {
	var total, weighted float64
	for i, p := range ps {
		total += p
		weighted += float64(i) * p
	}
	var f SpectralFeatures
	if total <= 0 {
		return f
	}
	f.Centroid = weighted / total
	var spread float64
	for i, p := range ps {
		d := float64(i) - f.Centroid
		spread += d * d * p
	}
	f.Spread = math.Sqrt(spread / total)
	var cum float64
	for i, p := range ps {
		cum += p
		if cum >= 0.85*total {
			f.Rolloff85 = float64(i)
			break
		}
	}
	var logSum float64
	nonzero := 0
	peakP := -1.0
	for i, p := range ps {
		if p > peakP {
			peakP = p
			f.Peak = float64(i)
		}
		if p > 0 {
			logSum += math.Log(p)
			nonzero++
		}
	}
	if nonzero > 0 {
		geo := math.Exp(logSum / float64(nonzero))
		f.Flatness = geo / (total / float64(len(ps)))
	}
	return f
}
