package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if _, err := FFT(make([]complex128, 3)); err == nil {
		t.Fatal("length 3 accepted")
	}
	if _, err := FFT(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestFFTImpulse(t *testing.T) {
	// A unit impulse transforms to an all-ones spectrum.
	in := make([]complex128, 8)
	in[0] = 1
	out, err := FFT(in)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v", i, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// cos(2π·3t/N) concentrates in bins 3 and N−3.
	const n = 64
	in := make([]complex128, n)
	for i := range in {
		in[i] = complex(math.Cos(2*math.Pi*3*float64(i)/n), 0)
	}
	out, err := FFT(in)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		mag := cmplx.Abs(v)
		if i == 3 || i == n-3 {
			if math.Abs(mag-n/2) > 1e-9 {
				t.Fatalf("tone bin %d magnitude %v", i, mag)
			}
		} else if mag > 1e-9 {
			t.Fatalf("leakage at bin %d: %v", i, mag)
		}
	}
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 8, 64, 256} {
		in := make([]complex128, n)
		for i := range in {
			in[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		fwd, err := FFT(in)
		if err != nil {
			t.Fatal(err)
		}
		back, err := IFFT(fwd)
		if err != nil {
			t.Fatal(err)
		}
		for i := range in {
			if cmplx.Abs(back[i]-in[i]) > 1e-9 {
				t.Fatalf("n=%d sample %d: %v vs %v", n, i, back[i], in[i])
			}
		}
	}
}

func TestFFTParseval(t *testing.T) {
	// Σ|x|² = (1/N)·Σ|X|².
	rng := rand.New(rand.NewSource(2))
	const n = 128
	in := make([]complex128, n)
	var timeE float64
	for i := range in {
		in[i] = complex(rng.NormFloat64(), 0)
		timeE += real(in[i]) * real(in[i])
	}
	out, err := FFT(in)
	if err != nil {
		t.Fatal(err)
	}
	var freqE float64
	for _, v := range out {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	freqE /= n
	if math.Abs(timeE-freqE) > 1e-9*timeE {
		t.Fatalf("Parseval violated: %v vs %v", timeE, freqE)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 63: 64, 64: 64, 65: 128}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestPowerSpectrumTone(t *testing.T) {
	// A tone at bin 5 of a 128-sample record dominates its spectrum.
	const n = 128
	signal := make([]float64, n)
	for i := range signal {
		signal[i] = 10 + 3*math.Sin(2*math.Pi*5*float64(i)/n)
	}
	ps, err := PowerSpectrum(signal)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != n/2+1 {
		t.Fatalf("%d bins", len(ps))
	}
	peak := 0
	for i, p := range ps {
		if p > ps[peak] {
			peak = i
		}
	}
	if peak != 5 {
		t.Fatalf("peak at bin %d", peak)
	}
	// DC was removed.
	if ps[0] > 1e-9 {
		t.Fatalf("DC bin %v", ps[0])
	}
}

func TestPowerSpectrumEmpty(t *testing.T) {
	if _, err := PowerSpectrum(nil); err == nil {
		t.Fatal("empty signal accepted")
	}
}

func TestAnalyzeSpectrum(t *testing.T) {
	// All power in one bin: centroid = that bin, zero spread, minimal
	// flatness.
	ps := make([]float64, 65)
	ps[7] = 10
	f := AnalyzeSpectrum(ps)
	if f.Centroid != 7 || f.Spread != 0 || f.Peak != 7 || f.Rolloff85 != 7 {
		t.Fatalf("tonal features %+v", f)
	}
	// Flat spectrum: flatness ≈ 1, centroid mid-band.
	for i := range ps {
		ps[i] = 1
	}
	f = AnalyzeSpectrum(ps)
	if math.Abs(f.Flatness-1) > 1e-9 {
		t.Fatalf("flat spectrum flatness %v", f.Flatness)
	}
	if f.Centroid < 30 || f.Centroid > 34 {
		t.Fatalf("flat centroid %v", f.Centroid)
	}
	// Degenerate all-zero spectrum.
	zero := AnalyzeSpectrum(make([]float64, 8))
	if zero.Centroid != 0 || zero.Flatness != 0 {
		t.Fatalf("zero spectrum %+v", zero)
	}
}
