package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDownsample(t *testing.T) {
	in := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	out, err := Downsample(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 2, 4, 6}
	if len(out) != len(want) {
		t.Fatalf("len %d", len(out))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %v", i, out[i])
		}
	}
}

func TestDownsampleFactorOneCopies(t *testing.T) {
	in := []float64{1, 2, 3}
	out, err := Downsample(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	out[0] = 99
	if in[0] != 1 {
		t.Fatal("Downsample(1) aliases input")
	}
}

func TestDownsampleErrors(t *testing.T) {
	if _, err := Downsample(nil, 0); err == nil {
		t.Fatal("factor 0 accepted")
	}
}

func TestDownsampleLengthProperty(t *testing.T) {
	f := func(n uint8, factor uint8) bool {
		fac := int(factor%7) + 1
		in := make([]float64, n)
		out, err := Downsample(in, fac)
		if err != nil {
			return false
		}
		return len(out) == (len(in)+fac-1)/fac
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReduceResolution(t *testing.T) {
	in := []float64{65535, 32768, 255, 256, 0}
	out, err := ReduceResolution(in, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{65280, 32768, 0, 256, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestReduceResolutionIdentity(t *testing.T) {
	in := []float64{12345, 678}
	out, err := ReduceResolution(in, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatal("16→16 changed the codes")
		}
	}
}

func TestReduceResolutionErrors(t *testing.T) {
	if _, err := ReduceResolution(nil, 12, 14); err == nil {
		t.Fatal("increase of resolution accepted")
	}
	if _, err := ReduceResolution(nil, 16, 0); err == nil {
		t.Fatal("0-bit target accepted")
	}
}

func TestReduceResolutionQuantisesToGrid(t *testing.T) {
	f := func(raw uint16, to uint8) bool {
		toBits := int(to%15) + 1
		out, err := ReduceResolution([]float64{float64(raw)}, 16, toBits)
		if err != nil {
			return false
		}
		step := float64(uint32(1) << uint(16-toBits))
		return math.Mod(out[0], step) == 0 && out[0] <= float64(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMovingAverageConstant(t *testing.T) {
	in := []float64{5, 5, 5, 5, 5}
	out, err := MovingAverage(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 5 {
			t.Fatalf("out[%d] = %v", i, v)
		}
	}
}

func TestMovingAverageSmoothsStep(t *testing.T) {
	in := []float64{0, 0, 0, 6, 6, 6}
	out, err := MovingAverage(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	// At the step, the window straddles: [0,0,6]/3 = 2, [0,6,6]/3 = 4.
	if out[3] != 2 || out[4] != 4 || out[5] != 6 {
		t.Fatalf("out = %v", out)
	}
}

func TestMovingAverageReducesNoiseVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := make([]float64, 4000)
	for i := range in {
		in[i] = rng.NormFloat64()
	}
	out, err := MovingAverage(in, 8)
	if err != nil {
		t.Fatal(err)
	}
	variance := func(x []float64) float64 {
		var m, s float64
		for _, v := range x {
			m += v
		}
		m /= float64(len(x))
		for _, v := range x {
			s += (v - m) * (v - m)
		}
		return s / float64(len(x))
	}
	if vo, vi := variance(out[8:]), variance(in); vo > vi/4 {
		t.Fatalf("filter barely reduced variance: %v vs %v", vo, vi)
	}
}

func TestResampleToIdentity(t *testing.T) {
	in := []float64{1, 2, 3, 4}
	out, err := ResampleTo(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("out = %v", out)
		}
	}
}

func TestResampleToUpsamplesLinearly(t *testing.T) {
	in := []float64{0, 2}
	out, err := ResampleTo(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 || out[1] != 1 || out[2] != 2 {
		t.Fatalf("out = %v", out)
	}
}

func TestResampleToPreservesEndpoints(t *testing.T) {
	f := func(vals []float64, n uint8) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		m := int(n%64) + 2
		out, err := ResampleTo(vals, m)
		if err != nil {
			return false
		}
		return out[0] == vals[0] && out[m-1] == vals[len(vals)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMSE(t *testing.T) {
	got, err := MSE([]float64{1, 2, 3}, []float64{1, 2, 6})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("MSE = %v, want 3", got)
	}
	if _, err := MSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := MSE(nil, nil); err == nil {
		t.Fatal("empty traces accepted")
	}
}

func TestCrossCorrelationPeakSelfIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := make([]float64, 64)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	c, err := CrossCorrelationPeak(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-1) > 1e-9 {
		t.Fatalf("self correlation = %v", c)
	}
}

func TestCrossCorrelationPeakFindsShiftedCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := make([]float64, 128)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	b := a[20:80] // shifted window of a
	c, err := CrossCorrelationPeak(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c < 0.6 {
		t.Fatalf("shifted copy correlation only %v", c)
	}
}

func TestCrossCorrelationFlatTrace(t *testing.T) {
	c, err := CrossCorrelationPeak([]float64{1, 1, 1}, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Fatalf("flat correlation = %v", c)
	}
}
