package engine

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"vprofile/internal/obs"
	"vprofile/internal/obs/drift"
	"vprofile/internal/obs/incident"
	"vprofile/internal/pipeline"
)

// Fleet runs one session per capture file concurrently — N buses
// monitored side by side — over a single shared worker pool, so the
// extraction/scoring concurrency is bounded fleet-wide instead of
// multiplying per bus. Sessions are fail-isolated: one bus stalling
// or hitting unrecovered corruption ends that bus's replay (its
// Summary carries the error) while the others run to completion.
//
// Shared resources are fleet-owned: the model store (so a hot swap
// reaches every bus), the metrics endpoint (per-bus registries
// grouped under a bus="name" label) and the event log (records tagged
// with their bus). Flight recording, when enabled, writes each bus's
// bundles under its own subdirectory.
type Fleet struct {
	captures []string
	buses    []string
	sessions []*Session

	proto    *Session // carries the shared option set
	store    *ModelStore
	ownStore bool
	pool     *pipeline.Pool
	ownPool  bool
	group    *obs.Group
	events   *obs.EventLog

	// inc is the fleet-wide incident correlator (nil when incidents
	// are off); every session feeds it, and cross-bus correlation is
	// what distinguishes a fleet-wide spoof from one flaky ECU.
	// incidents is its full history after Run.
	inc       *incident.Correlator
	incidents []incident.Snapshot

	// driftMons holds one drift monitor per bus (capture order, empty
	// when drift is off). Built eagerly so the fleet /drift endpoint
	// can mount before any session runs, and reset fleet-wide on model
	// swaps.
	driftMons []*drift.Monitor
}

// BusNames derives fleet bus names from capture paths: the base name
// with .vptr/.gz extensions stripped, deduplicated with -2, -3, ...
// suffixes so every session gets a distinct label.
func BusNames(captures []string) []string {
	out := make([]string, len(captures))
	seen := map[string]int{}
	for i, c := range captures {
		n := filepath.Base(c)
		n = strings.TrimSuffix(n, ".gz")
		n = strings.TrimSuffix(n, ".vptr")
		if n == "" || n == "." {
			n = fmt.Sprintf("bus%d", i)
		}
		seen[n]++
		if k := seen[n]; k > 1 {
			n = fmt.Sprintf("%s-%d", n, k)
		}
		out[i] = n
	}
	return out
}

// NewFleet builds one session per capture, wiring the shared store,
// pool, metrics group and event log. The options are the same ones a
// single Session takes; session-scoped ones (model, workers,
// quarantine, recovery, stall timeout, flight recording) apply to
// every member, while metrics serving, the event log and -model-watch
// are hoisted to the fleet.
func NewFleet(captures []string, opts ...Option) (*Fleet, error) {
	if len(captures) == 0 {
		return nil, errors.New("engine: fleet needs at least one capture")
	}
	proto := NewSession("", opts...)
	if err := proto.resolveStore(); err != nil {
		return nil, err
	}
	f := &Fleet{
		captures: captures,
		buses:    BusNames(captures),
		proto:    proto,
		store:    proto.store,
		ownStore: proto.ownStore,
		pool:     proto.pool,
	}
	if f.pool == nil {
		f.pool = pipeline.NewPool(proto.workers)
		f.ownPool = true
	}
	if proto.metricsAddr != "" || proto.eventsPath != "" || proto.incidents {
		f.group = obs.NewGroup("bus")
	}
	if proto.eventsPath != "" {
		var err error
		f.events, err = obs.CreateEventLog(proto.eventsPath)
		if err != nil {
			return nil, err
		}
		if proto.maxEvents > 0 {
			f.events.SetMaxEvents(proto.maxEvents)
		}
	}
	if proto.incidents {
		cfg := incident.Config{}
		if proto.incCfg != nil {
			cfg = *proto.incCfg
		}
		if cfg.Emit == nil && f.events != nil {
			events := f.events
			cfg.Emit = func(e obs.Event) { _ = events.Emit(e) }
		}
		f.inc = incident.New(cfg)
	}
	for i, capture := range captures {
		bus := f.buses[i]
		if proto.drift {
			cfg := drift.Config{}
			if proto.driftCfg != nil {
				cfg = *proto.driftCfg
			}
			cfg.Bus = bus
			if cfg.Emit == nil && f.events != nil {
				events := f.events
				cfg.Emit = func(e obs.Event) { _ = events.Emit(e) }
			}
			if cfg.OnTransition == nil && f.inc != nil {
				stream := f.inc.Bus(bus)
				cfg.OnTransition = func(tr drift.Transition) {
					stream.ObserveDrift(tr.SA, tr.To.String(), tr.TimeSec)
				}
			}
			f.driftMons = append(f.driftMons, drift.NewMonitor(cfg))
		}
		sopts := []Option{
			WithName(bus),
			WithStore(f.store),
			WithPool(f.pool),
			WithQuarantine(proto.quarantine),
			WithRecovery(proto.recovery),
			WithStallTimeout(proto.stall),
		}
		if f.group != nil {
			sopts = append(sopts, WithRegistry(f.group.Add(bus, nil)))
		}
		if f.events != nil {
			sopts = append(sopts, WithEventLog(f.events))
		}
		if proto.flightDir != "" {
			sopts = append(sopts, WithFlightRecorder(filepath.Join(proto.flightDir, bus), proto.flightWindow))
		}
		if f.inc != nil {
			sopts = append(sopts, withCorrelator(f.inc))
		}
		if proto.drift {
			sopts = append(sopts, withDriftMonitor(f.driftMons[i]))
		}
		if proto.logf != nil {
			logf, b := proto.logf, bus
			sopts = append(sopts, WithLogf(func(format string, args ...any) {
				logf("["+b+"] "+format, args...)
			}))
		}
		f.sessions = append(f.sessions, NewSession(capture, sopts...))
	}
	if len(f.driftMons) > 0 {
		// A hot swap on the fleet-shared store changes the distance
		// distribution on every bus at once: re-freeze every monitor's
		// baselines rather than reading the model change as drift.
		mons := f.driftMons
		f.store.OnSwap(func(StoredModel) {
			for _, m := range mons {
				m.ResetBaseline()
			}
		})
	}
	return f, nil
}

// Buses returns the derived bus names, in capture order.
func (f *Fleet) Buses() []string { return append([]string(nil), f.buses...) }

// EmitEvent appends one event to the fleet's shared log — the sink's
// outlet, like Session.EmitEvent. No-op (nil) without an event log;
// the caller sets Event.Bus (the serialised sink knows which bus a
// result came from, the fleet does not).
func (f *Fleet) EmitEvent(e obs.Event) error {
	if f.events == nil {
		return nil
	}
	return f.events.Emit(e)
}

// Run replays every bus concurrently, delivering all verdicts to one
// serialised sink (each bus's results stay in record order; buses
// interleave). It returns one Summary per capture, in capture order —
// present even for failed buses, with Summary.Err set — and the
// joined error of every failed session. errors.As still finds
// *AbortError through the join, so exit-code classification works
// unchanged on a fleet.
func (f *Fleet) Run(sink Sink) ([]Summary, error) {
	logf := f.proto.logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if f.proto.metricsAddr != "" {
		// Runtime self-telemetry lives on its own pseudo-bus member so
		// the process-wide gauges appear once, not once per bus, and
		// refresh at scrape time.
		rs := obs.NewRuntimeStats(f.group.Add("fleet", nil))
		var routes []obs.Route
		if f.inc != nil {
			routes = f.inc.Routes()
		}
		if len(f.driftMons) > 0 {
			routes = append(routes, drift.FleetRoute(f.driftMons))
		}
		srv, err := obs.Serve(f.proto.metricsAddr, obs.CollectedExporter(f.group, rs.Collect), routes...)
		if err != nil {
			return nil, err
		}
		defer func() { _ = srv.ShutdownTimeout(2 * time.Second) }()
		logf("serving fleet /metrics and /debug/pprof/ on http://%s", srv.Addr())
		if f.inc != nil {
			logf("fleet incidents live at http://%s/fleet", srv.Addr())
		}
	}

	// A fleet-owned store drives the model watch and announces swaps
	// once, fleet-wide (each session's gauge still updates itself).
	started := time.Now()
	if f.ownStore {
		if f.events != nil {
			events := f.events
			f.store.OnSwap(func(sm StoredModel) {
				_ = events.Emit(obs.Event{
					TimeSec: time.Since(started).Seconds(), Kind: obs.EventModelSwap,
					Severity: obs.SeverityInfo,
					Detail:   modelSwapDetail(sm),
				})
			})
		}
		if f.proto.watch > 0 {
			if f.proto.modelPath == "" {
				return nil, errors.New("engine: model watch needs a model path")
			}
			stop := make(chan struct{})
			defer close(stop)
			go f.store.Watch(f.proto.modelPath, f.proto.watch, stop, f.proto.logf)
		}
	}

	var sinkMu sync.Mutex
	serial := sink
	if serial != nil {
		serial = func(r Result) error {
			sinkMu.Lock()
			defer sinkMu.Unlock()
			return sink(r)
		}
	}

	summaries := make([]Summary, len(f.sessions))
	var wg sync.WaitGroup
	for i, s := range f.sessions {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sum, err := s.Run(serial)
			sum.Err = err
			summaries[i] = sum
		}()
	}
	wg.Wait()

	if f.inc != nil {
		// Resolve survivors before the log closes so every lifecycle
		// event — end-of-run resolutions included — lands in it.
		f.incidents = f.inc.CloseOut()
	}
	if f.events != nil {
		// Per-bus stats records were already contributed by the
		// sessions; nothing fleet-level left to snapshot.
		_ = f.events.Close(nil)
	}
	if f.ownPool {
		f.pool.Close()
	}
	errs := make([]error, 0, len(summaries))
	for i := range summaries {
		if summaries[i].Err != nil {
			errs = append(errs, fmt.Errorf("bus %s: %w", summaries[i].Bus, summaries[i].Err))
		}
	}
	return summaries, errors.Join(errs...)
}
