package engine_test

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"vprofile/internal/attack"
	"vprofile/internal/canbus"
	"vprofile/internal/core"
	"vprofile/internal/engine"
	"vprofile/internal/experiments"
	"vprofile/internal/ids"
	"vprofile/internal/pipeline"
	"vprofile/internal/trace"
	"vprofile/internal/vehicle"
)

var (
	modelOnce sync.Once
	testModel *core.Model
)

// sharedModel trains one Mahalanobis model for the whole test
// package — training dominates test time, and every test only needs
// a deterministic model, not a freshly trained one.
func sharedModel(t testing.TB) *core.Model {
	t.Helper()
	modelOnce.Do(func() {
		v := vehicle.NewVehicleB()
		train, err := experiments.CollectSamples(v, 1200, 7, nil, v.ExtractionConfig())
		if err != nil {
			panic(err)
		}
		m, err := core.Train(experiments.CoreSamples(train), core.TrainConfig{
			Metric: core.Mahalanobis, SAMap: v.SAMap(),
		})
		if err != nil {
			panic(err)
		}
		m.Margin = 2
		testModel = m
	})
	return testModel
}

// buildCapture renders clean traffic (covering the composite's
// warm-up) followed by a foreign-device attack segment, so replays
// exercise healthy verdicts, voltage anomalies and the timing path.
func buildCapture(t testing.TB, seed int64, cleanN, attackN int) []byte {
	t.Helper()
	v := vehicle.NewVehicleB()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Header{Vehicle: v.Name, BitRate: v.BitRate, ADC: v.ADC})
	if err != nil {
		t.Fatal(err)
	}
	last := 0.0
	write := func(m vehicle.Message, offset float64) {
		last = offset + m.TimeSec
		err := w.Write(&trace.Record{
			ECUIndex: int32(m.ECUIndex), TimeSec: last,
			FrameID: m.Frame.ID, Data: m.Frame.Data, Trace: m.Trace,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	err = v.Stream(vehicle.GenConfig{NumMessages: cleanN, Seed: seed, DiagnosticTraffic: true}, func(m vehicle.Message) error {
		write(m, 0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := attack.Run(v, attack.Scenario{Kind: attack.Foreign, VictimECU: 1, NumMessages: attackN, Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	offset := last + 0.1
	for _, m := range msgs {
		write(m.Message, offset)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func writeFile(t testing.TB, path string, data []byte) string {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// sequentialRef replays one capture on the reference sequential path
// against a fixed model and returns every composite verdict.
func sequentialRef(t testing.TB, path string, m *core.Model) []ids.CompositeResult {
	t.Helper()
	rd, closer, err := trace.OpenPath(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	mon, err := ids.NewComposite(m, ids.CompositeConfig{Extraction: engine.ExtractionFor(rd.Header())})
	if err != nil {
		t.Fatal(err)
	}
	var out []ids.CompositeResult
	_, err = pipeline.Sequential(rd, mon, func(r pipeline.Result) error {
		out = append(out, r.Verdict)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// diffResults reports the first difference between two composite
// verdicts, or "" when they match bit for bit.
func diffResults(a, b ids.CompositeResult) string {
	if a.Voltage != b.Voltage {
		return fmt.Sprintf("voltage %+v vs %+v", a.Voltage, b.Voltage)
	}
	if errText(a.ExtractErr) != errText(b.ExtractErr) {
		return fmt.Sprintf("extract err %q vs %q", errText(a.ExtractErr), errText(b.ExtractErr))
	}
	if a.Timing != b.Timing || errText(a.TimingErr) != errText(b.TimingErr) {
		return fmt.Sprintf("timing %v/%q vs %v/%q", a.Timing, errText(a.TimingErr), b.Timing, errText(b.TimingErr))
	}
	if errText(a.TransferErr) != errText(b.TransferErr) {
		return fmt.Sprintf("transfer err %q vs %q", errText(a.TransferErr), errText(b.TransferErr))
	}
	if (a.Transfer == nil) != (b.Transfer == nil) {
		return fmt.Sprintf("transfer %v vs %v", a.Transfer, b.Transfer)
	}
	return ""
}

// TestFleetDeterminism replays two buses through a fleet at several
// shared-pool widths and requires every bus's verdict stream to be
// bit-identical to its own sequential single-bus replay — the shared
// pool must never leak state or order across buses.
func TestFleetDeterminism(t *testing.T) {
	m := sharedModel(t)
	dir := t.TempDir()
	pa := writeFile(t, filepath.Join(dir, "a.vptr"), buildCapture(t, 201, 700, 250))
	pb := writeFile(t, filepath.Join(dir, "b.vptr"), buildCapture(t, 301, 650, 200))
	refs := map[string][]ids.CompositeResult{
		"a": sequentialRef(t, pa, m),
		"b": sequentialRef(t, pb, m),
	}

	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			fleet, err := engine.NewFleet([]string{pa, pb},
				engine.WithModel(m), engine.WithWorkers(workers))
			if err != nil {
				t.Fatal(err)
			}
			got := map[string][]ids.CompositeResult{}
			sums, err := fleet.Run(func(res engine.Result) error {
				if res.Index != len(got[res.Bus]) {
					return fmt.Errorf("bus %s: result %d arrived after %d results", res.Bus, res.Index, len(got[res.Bus]))
				}
				got[res.Bus] = append(got[res.Bus], res.Verdict)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(sums) != 2 || sums[0].Bus != "a" || sums[1].Bus != "b" {
				t.Fatalf("unexpected summaries: %+v", sums)
			}
			for bus, ref := range refs {
				if len(got[bus]) != len(ref) {
					t.Fatalf("bus %s: %d results, want %d", bus, len(got[bus]), len(ref))
				}
				for i := range ref {
					if d := diffResults(got[bus][i], ref[i]); d != "" {
						t.Fatalf("bus %s record %d: %s", bus, i, d)
					}
				}
			}
		})
	}
}

// TestFleetFailIsolation truncates one bus's capture mid-record: that
// bus must abort with an AbortError while the healthy bus still
// delivers its complete verdict stream.
func TestFleetFailIsolation(t *testing.T) {
	m := sharedModel(t)
	dir := t.TempDir()
	good := buildCapture(t, 201, 700, 250)
	bad := buildCapture(t, 301, 650, 200)
	pa := writeFile(t, filepath.Join(dir, "a.vptr"), good)
	pb := writeFile(t, filepath.Join(dir, "b.vptr"), bad[:len(bad)-200])
	want := len(sequentialRef(t, pa, m))

	fleet, err := engine.NewFleet([]string{pa, pb}, engine.WithModel(m), engine.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	sums, err := fleet.Run(func(res engine.Result) error {
		counts[res.Bus]++
		return nil
	})
	if err == nil {
		t.Fatal("fleet with a truncated bus returned nil error")
	}
	var abort *engine.AbortError
	if !errors.As(err, &abort) {
		t.Fatalf("fleet error %v is not an AbortError", err)
	}
	if sums[0].Err != nil {
		t.Fatalf("healthy bus failed: %v", sums[0].Err)
	}
	if counts["a"] != want {
		t.Fatalf("healthy bus delivered %d results, want %d", counts["a"], want)
	}
	if sums[1].Err == nil || !errors.As(sums[1].Err, &abort) {
		t.Fatalf("truncated bus error = %v, want AbortError", sums[1].Err)
	}
}

// cloneModel round-trips a model through its wire format.
func cloneModel(t testing.TB, m *core.Model) *core.Model {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := core.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// variantModel returns a same-dimension model that judges visibly
// differently: one known sender is deleted from its lookup table, so
// every frame from that SA flags ReasonUnknownSA.
func variantModel(t testing.TB, m *core.Model) (*core.Model, canbus.SourceAddress) {
	t.Helper()
	m2 := cloneModel(t, m)
	sas := make([]int, 0, len(m2.SALUT))
	for sa := range m2.SALUT {
		sas = append(sas, int(sa))
	}
	sort.Ints(sas)
	victim := canbus.SourceAddress(sas[0])
	delete(m2.SALUT, victim)
	return m2, victim
}

func TestModelStoreSwapValidation(t *testing.T) {
	m := sharedModel(t)
	st, err := engine.NewModelStore(m)
	if err != nil {
		t.Fatal(err)
	}
	if v := st.Version(); v != 1 {
		t.Fatalf("initial version %d, want 1", v)
	}
	if _, err := st.Swap(nil); err == nil {
		t.Fatal("nil swap accepted")
	}
	bad := cloneModel(t, m)
	bad.Dim++
	if _, err := st.Swap(bad); err == nil || !strings.Contains(err.Error(), "dimension") {
		t.Fatalf("dim-mismatch swap: err = %v", err)
	}
	if st.Version() != 1 || st.AcquireModel() != m {
		t.Fatal("rejected swap mutated the store")
	}

	var notified int
	st.OnSwap(func(sm engine.StoredModel) { notified = sm.Version })
	m2, _ := variantModel(t, m)
	v, err := st.Swap(m2)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 || st.Version() != 2 || st.AcquireModel() != m2 || notified != 2 {
		t.Fatalf("swap bookkeeping: v=%d version=%d notified=%d", v, st.Version(), notified)
	}
}

func TestLoadModelFile(t *testing.T) {
	if _, err := engine.LoadModelFile(filepath.Join(t.TempDir(), "missing.vpm")); err == nil || !strings.Contains(err.Error(), "load model") {
		t.Fatalf("missing model error = %v", err)
	}
	bad := writeFile(t, filepath.Join(t.TempDir(), "bad.vpm"), []byte("not a model"))
	if _, err := engine.LoadModelFile(bad); err == nil || !strings.Contains(err.Error(), "load model") {
		t.Fatalf("corrupt model error = %v", err)
	}
}

func TestModelStoreWatch(t *testing.T) {
	m := sharedModel(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.vpm")
	saveModel := func(mm *core.Model) {
		tmp := path + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			t.Fatal(err)
		}
		if err := mm.Save(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(tmp, path); err != nil {
			t.Fatal(err)
		}
	}
	saveModel(m)
	st, err := engine.NewModelStore(m)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	defer close(stop)
	go st.Watch(path, 5*time.Millisecond, stop, t.Logf)

	time.Sleep(20 * time.Millisecond) // let the watch record the baseline stat
	m2, _ := variantModel(t, m)
	saveModel(m2)
	deadline := time.Now().Add(10 * time.Second)
	for st.Version() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("watch never swapped the rewritten model in")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cur := st.Current()
	if cur.Version != 2 || len(cur.Model.SALUT) != len(m.SALUT)-1 {
		t.Fatalf("watch swapped wrong model: %+v", cur.Version)
	}
}

// TestHotSwapSequentialBoundary swaps the model from the sink at a
// known record index on the deterministic sequential path: every
// frame up to and including the swap index must score against v1,
// every later frame against v2 — one frame, one model version.
func TestHotSwapSequentialBoundary(t *testing.T) {
	m1 := sharedModel(t)
	m2, victim := variantModel(t, m1)
	dir := t.TempDir()
	path := writeFile(t, filepath.Join(dir, "a.vptr"), buildCapture(t, 201, 700, 250))
	ref1 := sequentialRef(t, path, m1)
	ref2 := sequentialRef(t, path, m2)

	const swapAt = 400
	differs := false
	for i := swapAt + 1; i < len(ref1); i++ {
		if ref1[i].Voltage != ref2[i].Voltage {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatalf("test is vacuous: deleting SA %#02x changed no post-swap verdict", uint8(victim))
	}

	st, err := engine.NewModelStore(m1)
	if err != nil {
		t.Fatal(err)
	}
	rd, closer, err := trace.OpenPath(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	mon, err := ids.NewComposite(nil, ids.CompositeConfig{Extraction: engine.ExtractionFor(rd.Header()), Models: st})
	if err != nil {
		t.Fatal(err)
	}
	var got []core.Detection
	_, err = pipeline.Sequential(rd, mon, func(r pipeline.Result) error {
		got = append(got, r.Verdict.Voltage)
		if r.Index == swapAt {
			if _, err := st.Swap(m2); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ref1) {
		t.Fatalf("%d results, want %d", len(got), len(ref1))
	}
	for i, d := range got {
		want := ref1[i].Voltage
		if i > swapAt {
			want = ref2[i].Voltage
		}
		if d != want {
			t.Fatalf("record %d (swap at %d): %+v, want %+v", i, swapAt, d, want)
		}
	}
}

// TestHotSwapConcurrent hammers Swap while the concurrent pipeline
// replays: under the race detector this proves the acquire/swap path
// is clean, and every frame's voltage verdict must match exactly one
// of the two model versions — never a blend.
func TestHotSwapConcurrent(t *testing.T) {
	m1 := sharedModel(t)
	m2, _ := variantModel(t, m1)
	dir := t.TempDir()
	path := writeFile(t, filepath.Join(dir, "a.vptr"), buildCapture(t, 201, 700, 250))
	ref1 := sequentialRef(t, path, m1)
	ref2 := sequentialRef(t, path, m2)

	st, err := engine.NewModelStore(m1)
	if err != nil {
		t.Fatal(err)
	}
	rd, closer, err := trace.OpenPath(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	mon, err := ids.NewComposite(nil, ids.CompositeConfig{Extraction: engine.ExtractionFor(rd.Header()), Models: st})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		next := m2
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := st.Swap(next); err != nil {
				t.Error(err)
				return
			}
			if next == m2 {
				next = m1
			} else {
				next = m2
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var got []core.Detection
	_, err = pipeline.Replay(rd, mon, pipeline.Config{Workers: 4}, func(r pipeline.Result) error {
		got = append(got, r.Verdict.Voltage)
		return nil
	})
	close(stop)
	swapper.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ref1) {
		t.Fatalf("%d results, want %d", len(got), len(ref1))
	}
	for i, d := range got {
		if d != ref1[i].Voltage && d != ref2[i].Voltage {
			t.Fatalf("record %d: %+v matches neither v1 %+v nor v2 %+v", i, d, ref1[i].Voltage, ref2[i].Voltage)
		}
	}
}

func TestBusNames(t *testing.T) {
	got := engine.BusNames([]string{"caps/a.vptr", "caps/b.vptr.gz", "other/a.vptr", "x"})
	want := []string{"a", "b", "a-2", "x"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BusNames = %v, want %v", got, want)
		}
	}
}

// TestFlagParity pins the shared CLI flag set: every replay tool
// registers exactly these session flags through engine.RegisterFlags,
// so renaming or dropping one here is renaming it everywhere.
func TestFlagParity(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	engine.RegisterFlags(fs)
	var names []string
	fs.VisitAll(func(f *flag.Flag) { names = append(names, f.Name) })
	sort.Strings(names)
	want := []string{"batch", "capture", "drift", "events", "flight", "flight-window", "incidents",
		"max-events", "metrics", "model", "model-watch", "quarantine", "recover",
		"stall-timeout", "workers"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("shared flags = %v, want %v", names, want)
	}
	// -workers follows the "0 = GOMAXPROCS" convention every tool
	// documents (vprofile faults registers its own flag set with the
	// same default); a GOMAXPROCS-valued default would bake the
	// parsing machine's core count into help text and defeat the
	// convention.
	for _, f := range []string{"workers", "batch"} {
		if def := fs.Lookup(f).DefValue; def != "0" {
			t.Fatalf("-%s default = %q, want 0", f, def)
		}
	}
}
