package engine

import (
	"fmt"
	"math"

	"vprofile/internal/attack"
	"vprofile/internal/ids"
	"vprofile/internal/stats"
)

// Scoreboard scores a labelled replay against an attack corpus's
// ground truth: each verdict is judged by whether its record was one
// the attacker injected (the labels sidecar's mask). Feed it from the
// replay sink — Observe is written for exactly that call site — and
// read the confusion matrix and rates when the stream ends.
//
// Scoring uses CompositeResult.Alarm (the post-quarantine alarm
// decision), so a run with quarantine enabled is scored on what an
// operator would actually have seen.
type Scoreboard struct {
	labels *attack.Labels
	mask   []bool

	cm           stats.ConfusionMatrix
	extractFails int
	outOfRange   int
}

// NewScoreboard builds a scoreboard over loaded corpus labels.
func NewScoreboard(l *attack.Labels) *Scoreboard {
	return &Scoreboard{labels: l, mask: l.InjectedMask()}
}

// LoadScoreboard reads a labels sidecar from disk and wraps it.
func LoadScoreboard(path string) (*Scoreboard, error) {
	l, err := attack.LoadLabels(path)
	if err != nil {
		return nil, err
	}
	return NewScoreboard(l), nil
}

// Labels exposes the ground truth the scoreboard was built from.
func (b *Scoreboard) Labels() *attack.Labels { return b.labels }

// Observe scores one verdict. index is the record's position in the
// capture (pipeline.Result.Index); verdicts for records the labels
// don't cover (a capture/sidecar mismatch) are counted in OutOfRange
// and otherwise ignored.
func (b *Scoreboard) Observe(index int, v ids.CompositeResult) {
	if index < 0 || index >= len(b.mask) {
		b.outOfRange++
		return
	}
	if v.ExtractErr != nil {
		b.extractFails++
	}
	b.cm.Add(b.mask[index], v.Alarm())
}

// Matrix returns the confusion matrix accumulated so far.
func (b *Scoreboard) Matrix() stats.ConfusionMatrix { return b.cm }

// Scored returns how many verdicts landed inside the labelled range.
func (b *Scoreboard) Scored() int { return b.cm.Total() }

// AttackFrames returns the number of labelled injected records.
func (b *Scoreboard) AttackFrames() int { return len(b.labels.Injected) }

// ExtractFails counts verdicts whose trace failed preprocessing.
func (b *Scoreboard) ExtractFails() int { return b.extractFails }

// OutOfRange counts verdicts whose index fell outside the labels —
// nonzero means the capture and sidecar do not describe the same
// stream.
func (b *Scoreboard) OutOfRange() int { return b.outOfRange }

// TPR is the true-positive rate (recall over injected frames). With
// no injected frames it degenerates the way Recall does: 1 when
// nothing false-alarmed, else 0 — compare FPR instead on clean runs.
func (b *Scoreboard) TPR() float64 { return b.cm.Recall() }

// FPR is the false-positive rate: the fraction of genuine frames that
// raised an alarm anyway. NaN when the corpus has no genuine frames.
func (b *Scoreboard) FPR() float64 {
	n := b.cm.FP + b.cm.TN
	if n == 0 {
		return math.NaN()
	}
	return float64(b.cm.FP) / float64(n)
}

// String renders the one-line summary the detect CLI prints.
func (b *Scoreboard) String() string {
	s := fmt.Sprintf("scenario %q: %d/%d frames injected, TPR %.4f FPR %.4f (tp %d fp %d fn %d tn %d)",
		b.labels.Scenario, b.AttackFrames(), b.labels.Records, b.TPR(), b.FPR(),
		b.cm.TP, b.cm.FP, b.cm.FN, b.cm.TN)
	if b.outOfRange > 0 {
		s += fmt.Sprintf(" [%d verdicts outside the labels — capture/sidecar mismatch?]", b.outOfRange)
	}
	return s
}
