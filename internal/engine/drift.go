package engine

import (
	"vprofile/internal/obs"
	"vprofile/internal/obs/drift"
	"vprofile/internal/obs/incident"
	"vprofile/internal/pipeline"
)

// WithDrift enables the drift observability layer: every scored
// frame's best-cluster distance and threshold margin feed per-SA
// streaming sketches and drift detectors (Page-Hinkley mean shift,
// windowed quantile divergence, margin-erosion trend), emitting
// drift_warn/drift_alarm events, vprofile_drift_* gauges and a /drift
// JSON endpoint next to /metrics. Baselines re-freeze on model swap.
// Verdicts are untouched — the layer only observes the stream.
func WithDrift(on bool) Option { return func(s *Session) { s.drift = on } }

// WithDriftConfig enables drift monitoring with an explicit detector
// configuration (tests tune baselines and thresholds with it; the
// CLIs use the defaults).
func WithDriftConfig(cfg drift.Config) Option {
	return func(s *Session) { s.drift = true; s.driftCfg = &cfg }
}

// withDriftMonitor points a fleet member at a fleet-owned monitor;
// the session then feeds it but neither creates it nor resets it on
// model swaps (the fleet does, for every member at once).
func withDriftMonitor(m *drift.Monitor) Option {
	return func(s *Session) { s.driftMon = m; s.drift = true }
}

// setupDrift builds (or adopts) the session's drift monitor, wiring
// events, the incident correlator hook and the vprofile_drift_*
// instruments. Called from Run after setupIncidents so a drifting SA
// can escalate the incidents layer.
func (s *Session) setupDrift(reg *obs.Registry, incStream *incident.BusStream) *drift.Monitor {
	if !s.drift {
		return nil
	}
	if s.driftMon == nil {
		cfg := drift.Config{}
		if s.driftCfg != nil {
			cfg = *s.driftCfg
		}
		if cfg.Bus == "" {
			cfg.Bus = s.name
		}
		if cfg.Emit == nil && s.events != nil {
			events := s.events
			cfg.Emit = func(e obs.Event) { _ = events.Emit(e) }
		}
		if cfg.OnTransition == nil && incStream != nil {
			// A drifting SA escalates its open incident; fleet-wide
			// drift on the same SA tags it environmental.
			stream := incStream
			cfg.OnTransition = func(tr drift.Transition) {
				stream.ObserveDrift(tr.SA, tr.To.String(), tr.TimeSec)
			}
		}
		s.driftMon = drift.NewMonitor(cfg)
		s.ownDrift = true
	}
	if reg != nil {
		s.driftMon.BindGauges(reg)
	}
	return s.driftMon
}

// observeDrift projects one verdict into the drift monitor: the
// best-cluster distance the voltage detector already computed, and
// the alarm threshold for the frame's expected sender. Pure
// observation — one sketch insert per scored frame, nothing written
// back, so verdicts stay bit-identical with the layer on.
func observeDrift(mon *drift.Monitor, store *ModelStore, r pipeline.Result) {
	v := r.Verdict
	if v.ExtractErr != nil || v.Voltage.Expected < 0 || v.Voltage.Predict < 0 {
		// Unscored frames (failed extraction, unknown SA) carry no
		// distance to sketch.
		return
	}
	m := store.AcquireModel()
	exp := int(v.Voltage.Expected)
	if exp >= len(m.Clusters) {
		return
	}
	thr := m.Clusters[exp].MaxDist + m.Margin
	mon.Observe(uint8(r.Frame.SA()), v.Voltage.MinDist, thr, r.Record.TimeSec)
}

// DriftMonitor exposes the fleet's per-bus drift monitors, in capture
// order (empty when drift is off) — tests scrape mid-run state
// through them.
func (f *Fleet) DriftMonitors() []*drift.Monitor {
	return append([]*drift.Monitor(nil), f.driftMons...)
}
