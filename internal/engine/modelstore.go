// Package engine owns the capture→verdict session lifecycle the CLIs
// used to hand-wire: source opening (plain/gzip, optional corruption
// recovery), the composite IDS, the concurrent replay pipeline,
// observability (metrics registry, event log, HTTP endpoint, flight
// recorder) and graceful shutdown. A Session is one bus; a Fleet runs
// several sessions concurrently over one shared worker pool; a
// ModelStore hot-swaps the detection model under both without a
// restart.
package engine

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"vprofile/internal/core"
)

// LoadModelFile reads a trained vProfile model from disk — the one
// model-loading helper every CLI path shares, so error wording is
// identical everywhere a model fails to load.
func LoadModelFile(path string) (*core.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("load model: %w", err)
	}
	defer f.Close()
	m, err := core.Load(f)
	if err != nil {
		return nil, fmt.Errorf("load model %s: %w", path, err)
	}
	return m, nil
}

// StoredModel is one versioned model generation held by a ModelStore.
type StoredModel struct {
	Model   *core.Model
	Version int
}

// modelSwapDetail renders the model_swap event detail. Version alone
// is not interpretable when reading drift baselines against swap
// events, so the model's shape rides along.
func modelSwapDetail(sm StoredModel) string {
	return fmt.Sprintf("model version %d (dim %d, %d clusters, margin %g)",
		sm.Version, sm.Model.Dim, len(sm.Model.Clusters), sm.Model.Margin)
}

// ModelStore is an atomic hot-swap holder for the detection model. It
// implements ids.ModelProvider, so a Composite built against a store
// re-reads the current model once per frame (the consistency boundary
// documented on ids.ModelProvider): frames in flight across a swap
// score against either the old or the new version, never a mix, and a
// frame's whole verdict comes from a single version.
//
// Swaps are validated before they land — a candidate must be non-nil
// and dimension-compatible with the current model, because the
// distance kernels assume every edge-set vector matches the model's
// Dim. A rejected swap leaves the current model untouched.
type ModelStore struct {
	cur atomic.Pointer[StoredModel]

	mu        sync.Mutex // serialises swaps and listener registration
	listeners []func(StoredModel)
}

// NewModelStore holds the initial model as version 1. The model's
// scoring factors are precomputed before it is published: the store is
// the serving boundary, and once the pointer lands verdict goroutines
// may read the model concurrently, so this is the last safe point to
// mutate derived state.
func NewModelStore(m *core.Model) (*ModelStore, error) {
	if m == nil {
		return nil, fmt.Errorf("engine: nil model")
	}
	m.Precompute()
	s := &ModelStore{}
	s.cur.Store(&StoredModel{Model: m, Version: 1})
	return s, nil
}

// AcquireModel returns the current model (ids.ModelProvider). It is a
// single atomic pointer load, safe from any goroutine.
func (s *ModelStore) AcquireModel() *core.Model { return s.cur.Load().Model }

// Current returns the current model with its version.
func (s *ModelStore) Current() StoredModel { return *s.cur.Load() }

// Version returns the current model generation (1 = initial).
func (s *ModelStore) Version() int { return s.cur.Load().Version }

// Swap validates the candidate and, if compatible, publishes it as
// the next generation, returning the new version. Verdicts already
// holding the old pointer finish against the old model.
func (s *ModelStore) Swap(m *core.Model) (int, error) {
	if m == nil {
		return 0, fmt.Errorf("engine: swap rejected: nil model")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.cur.Load()
	if m.Dim != old.Model.Dim {
		return 0, fmt.Errorf("engine: swap rejected: model dimension %d does not match running dimension %d",
			m.Dim, old.Model.Dim)
	}
	// Precompute the scoring factors before the pointer is published:
	// after the Store below the model is shared with verdict goroutines
	// and must not be mutated. This also re-establishes the fast path
	// for models that went through core.Update (which invalidates it).
	m.Precompute()
	next := StoredModel{Model: m, Version: old.Version + 1}
	s.cur.Store(&next)
	for _, fn := range s.listeners {
		fn(next)
	}
	return next.Version, nil
}

// SwapFile loads a model file and swaps it in.
func (s *ModelStore) SwapFile(path string) (int, error) {
	m, err := LoadModelFile(path)
	if err != nil {
		return 0, err
	}
	return s.Swap(m)
}

// OnSwap registers a listener called (under the swap lock, in
// registration order) after each successful swap — sessions use it to
// publish the version gauge and the model_swap event.
func (s *ModelStore) OnSwap(fn func(StoredModel)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.listeners = append(s.listeners, fn)
}

// Watch polls path every interval and swaps the model in whenever the
// file's modification time or size changes — the -model-watch mode.
// It blocks until stop closes, so run it in its own goroutine. Load
// or validation failures are logged via logf (may be nil) and do not
// stop the watch: a half-written file simply gets picked up on a
// later tick once it parses.
func (s *ModelStore) Watch(path string, interval time.Duration, stop <-chan struct{}, logf func(format string, args ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if interval <= 0 {
		interval = time.Second
	}
	var lastMod time.Time
	var lastSize int64
	if fi, err := os.Stat(path); err == nil {
		lastMod, lastSize = fi.ModTime(), fi.Size()
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		fi, err := os.Stat(path)
		if err != nil {
			continue // file mid-replace; retry next tick
		}
		if fi.ModTime().Equal(lastMod) && fi.Size() == lastSize {
			continue
		}
		lastMod, lastSize = fi.ModTime(), fi.Size()
		v, err := s.SwapFile(path)
		if err != nil {
			logf("engine: model watch: %v", err)
			continue
		}
		logf("engine: model watch: swapped in %s as version %d", path, v)
	}
}
