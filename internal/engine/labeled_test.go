package engine_test

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"vprofile/internal/attack"
	"vprofile/internal/engine"
	"vprofile/internal/ids"
	"vprofile/internal/vehicle"
)

// writeScenario renders a registry scenario to disk with its labels
// sidecar, the way tracegen -scenario does.
func writeScenario(t *testing.T, name string, n int, seed int64) (capture, sidecar string) {
	t.Helper()
	v := vehicle.NewVehicleB()
	spec, err := attack.ScenarioByName(name)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	capture = filepath.Join(dir, name+".vptr")
	f, err := os.Create(capture)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := attack.WriteCorpus(f, v, spec, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	sidecar = attack.SidecarPath(capture)
	if err := attack.WriteLabels(sidecar, labels); err != nil {
		t.Fatal(err)
	}
	return capture, sidecar
}

// A labelled hijack replay must score sanely: attacker frames mostly
// caught (the hijacker transmits with its own transceiver), genuine
// frames mostly clean, and every verdict inside the labelled range.
func TestScoreboardScoresLabeledReplay(t *testing.T) {
	capture, sidecar := writeScenario(t, "hijack", 600, 21)
	board, err := engine.LoadScoreboard(sidecar)
	if err != nil {
		t.Fatal(err)
	}
	s := engine.NewSession(capture, engine.WithModel(sharedModel(t)))
	if _, err := s.Run(func(r engine.Result) error {
		board.Observe(r.Index, r.Verdict)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if board.OutOfRange() != 0 {
		t.Fatalf("%d verdicts out of the labelled range", board.OutOfRange())
	}
	if board.Scored() != board.Labels().Records {
		t.Fatalf("scored %d of %d labelled records", board.Scored(), board.Labels().Records)
	}
	if board.AttackFrames() == 0 {
		t.Fatal("hijack corpus labelled no attack frames")
	}
	if tpr := board.TPR(); tpr < 0.5 {
		t.Fatalf("hijack TPR %.3f, want >= 0.5 (matrix: tp %d fp %d fn %d tn %d)",
			tpr, board.Matrix().TP, board.Matrix().FP, board.Matrix().FN, board.Matrix().TN)
	}
	if fpr := board.FPR(); math.IsNaN(fpr) || fpr > 0.2 {
		t.Fatalf("hijack FPR %.3f, want <= 0.2", fpr)
	}
	if board.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestScoreboardOutOfRangeAndExtractFails(t *testing.T) {
	board := engine.NewScoreboard(&attack.Labels{
		Version: attack.CorpusVersion, Scenario: "clean", Records: 2, Injected: nil,
	})
	board.Observe(0, ids.CompositeResult{})
	board.Observe(1, ids.CompositeResult{ExtractErr: os.ErrInvalid})
	board.Observe(2, ids.CompositeResult{}) // beyond the labels
	board.Observe(-1, ids.CompositeResult{})
	if board.OutOfRange() != 2 {
		t.Fatalf("OutOfRange = %d, want 2", board.OutOfRange())
	}
	if board.ExtractFails() != 1 {
		t.Fatalf("ExtractFails = %d, want 1", board.ExtractFails())
	}
	// The extract failure alarms (preprocessing failure is suspicious
	// evidence), the clean verdict does not.
	m := board.Matrix()
	if m.FP != 1 || m.TN != 1 || m.TP != 0 || m.FN != 0 {
		t.Fatalf("matrix tp %d fp %d fn %d tn %d, want fp 1 tn 1", m.TP, m.FP, m.FN, m.TN)
	}
}

// The clean scenario must score an (approximately) silent replay:
// degenerate TPR contract and a near-zero FPR.
func TestScoreboardCleanScenario(t *testing.T) {
	capture, sidecar := writeScenario(t, "clean", 400, 33)
	board, err := engine.LoadScoreboard(sidecar)
	if err != nil {
		t.Fatal(err)
	}
	if board.AttackFrames() != 0 {
		t.Fatalf("clean corpus labels %d attack frames", board.AttackFrames())
	}
	s := engine.NewSession(capture, engine.WithModel(sharedModel(t)))
	if _, err := s.Run(func(r engine.Result) error {
		board.Observe(r.Index, r.Verdict)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if fpr := board.FPR(); fpr > 0.1 {
		t.Fatalf("clean FPR %.3f, want <= 0.1", fpr)
	}
}
