package engine_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"vprofile/internal/engine"
	"vprofile/internal/ids"
	"vprofile/internal/obs/incident"
	"vprofile/internal/obs/tracing"
)

// TestFleetMasqueradeIncident is the acceptance scenario: a four-bus
// fleet where the same spoofed source address attacks every bus must
// produce exactly one fleet-correlated incident, carrying per-bus
// evidence and linked flight bundles — while the /fleet endpoints
// serve health and incidents mid-run.
func TestFleetMasqueradeIncident(t *testing.T) {
	// A wider margin than the shared test model's silences its sparse
	// single-frame false positives without touching the foreign
	// device's gross distances — the scenario needs a fleet whose only
	// sustained anomaly is the masquerade.
	m := cloneModel(t, sharedModel(t))
	m.Margin = 3
	dir := t.TempDir()
	var captures []string
	for i := 0; i < 4; i++ {
		p := filepath.Join(dir, fmt.Sprintf("bus%d.vptr", i))
		captures = append(captures, writeFile(t, p, buildCapture(t, 201+int64(i)*100, 700, 250)))
	}
	flightDir := filepath.Join(dir, "flight")
	eventsPath := filepath.Join(dir, "events.jsonl")

	// The addr arrives over logf before the buses start replaying, so
	// a blocking read from the sink cannot deadlock.
	addrCh := make(chan string, 1)
	logf := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		if i := strings.Index(msg, "http://"); i >= 0 && strings.HasSuffix(msg, "/fleet") {
			select {
			case addrCh <- strings.TrimSuffix(msg[i+len("http://"):], "/fleet"):
			default:
			}
		}
	}

	fleet, err := engine.NewFleet(captures,
		engine.WithModel(m),
		engine.WithWorkers(4),
		engine.WithQuarantine(true),
		engine.WithMetricsAddr("127.0.0.1:0"),
		engine.WithEventsPath(eventsPath),
		engine.WithFlightRecorder(flightDir, 4),
		engine.WithLogf(logf),
		// All four buses must join within a tight window for a fleet
		// incident: the masquerade alarms every few milliseconds on
		// every bus, while the model's sparse false positives on other
		// SAs are spread ~1s apart per bus — density, not mere
		// co-occurrence, is the fleet signal. The quiet window outlasts
		// the capture so the attack produces one incident, not a
		// resolve/reopen chain.
		engine.WithIncidentConfig(incident.Config{CorrelateBuses: 4, WindowSec: 0.4, QuietSec: 1000}),
	)
	if err != nil {
		t.Fatal(err)
	}

	// Scrape the live endpoints once, mid-run, from the sink.
	var scraped atomic.Bool
	var seen atomic.Int64
	scrape := func(t *testing.T) {
		addr := <-addrCh
		for _, path := range []string{"/fleet", "/fleet/incidents", "/fleet/topk"} {
			resp, err := http.Get("http://" + addr + path)
			if err != nil {
				t.Errorf("mid-run %s: %v", path, err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if !json.Valid(body) {
				t.Errorf("mid-run %s: invalid JSON", path)
			}
			if path == "/fleet" {
				var fl struct {
					Buses []incident.BusHealth `json:"buses"`
				}
				if err := json.Unmarshal(body, &fl); err != nil || len(fl.Buses) != 4 {
					t.Errorf("mid-run /fleet buses = %d, want 4 (%v)", len(fl.Buses), err)
				}
			}
		}
		scraped.Store(true)
	}
	sums, err := fleet.Run(func(res engine.Result) error {
		// Late enough that every bus has started, early enough that
		// none has finished.
		if seen.Add(1) == 2000 {
			scrape(t)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 4 {
		t.Fatalf("summaries = %d", len(sums))
	}
	if !scraped.Load() {
		t.Fatal("mid-run scrape never ran")
	}

	all := fleet.Incidents()
	var fleetIncidents []incident.Snapshot
	for _, s := range all {
		if s.Scope == incident.ScopeFleet {
			fleetIncidents = append(fleetIncidents, s)
		}
	}
	if len(fleetIncidents) != 1 {
		t.Fatalf("fleet-correlated incidents = %d, want exactly 1:\n%s",
			len(fleetIncidents), incident.FormatTable(all))
	}
	fi := fleetIncidents[0]
	if len(fi.BusEvidence) != 4 {
		t.Fatalf("fleet incident covers %d buses, want 4: %v", len(fi.BusEvidence), fi.BusNames())
	}
	bundled := 0
	for _, e := range fi.BusEvidence {
		if e.Alarms == 0 {
			t.Fatalf("bus %s contributed no alarms", e.Bus)
		}
		bundled += len(e.Bundles)
	}
	if bundled == 0 {
		t.Fatal("fleet incident has no linked flight bundles")
	}
	// The sustained masquerade degrades the spoofed SA, which must
	// have escalated the incident.
	if fi.Severity != "critical" {
		t.Fatalf("fleet incident severity = %s, want critical", fi.Severity)
	}

	// A linked bundle's on-disk metadata carries the incident id.
	var ref string
	var refBus string
	for _, e := range fi.BusEvidence {
		if len(e.Bundles) > 0 {
			ref, refBus = e.Bundles[0], e.Bus
			break
		}
	}
	b, err := tracing.ReadBundle(filepath.Join(flightDir, refBus, ref))
	if err != nil {
		t.Fatalf("linked bundle unreadable: %v", err)
	}
	// The bundle may have been stamped before correlation tripped, in
	// which case its id is the single-bus incident that merged into the
	// fleet one — the join chain must still land on fi.
	if b.Incident != fi.ID {
		joined := false
		for _, s := range all {
			if s.ID == b.Incident && s.Resolution == "correlated into "+fi.ID {
				joined = true
				break
			}
		}
		if !joined {
			t.Fatalf("bundle incident %q joins neither %q nor a merged predecessor", b.Incident, fi.ID)
		}
	}

	// The shared event log carries the lifecycle: exactly one
	// fleet-scoped open, and at least matching resolves.
	data, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	opens, resolves := 0, 0
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var e struct {
			Kind     string `json:"kind"`
			Scope    string `json:"scope"`
			Incident string `json:"incident"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad event line: %v", err)
		}
		switch e.Kind {
		case "incident_open":
			if e.Scope == incident.ScopeFleet {
				opens++
				if e.Incident != fi.ID {
					t.Fatalf("fleet open for %q, want %q", e.Incident, fi.ID)
				}
			}
		case "incident_resolve":
			resolves++
		}
	}
	if opens != 1 {
		t.Fatalf("fleet incident_open events = %d, want exactly 1", opens)
	}
	if resolves == 0 {
		t.Fatal("no incident_resolve events in the log")
	}
}

// TestIncidentsDoNotPerturbVerdicts replays a two-bus fleet with the
// full incident layer on, at several worker counts, and requires every
// verdict to stay bit-identical to the sequential reference — the
// observability layer observes, it never steers.
func TestIncidentsDoNotPerturbVerdicts(t *testing.T) {
	m := sharedModel(t)
	dir := t.TempDir()
	pa := writeFile(t, filepath.Join(dir, "a.vptr"), buildCapture(t, 201, 700, 250))
	pb := writeFile(t, filepath.Join(dir, "b.vptr"), buildCapture(t, 301, 650, 200))
	refs := map[string][]ids.CompositeResult{
		"a": sequentialRef(t, pa, m),
		"b": sequentialRef(t, pb, m),
	}

	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			fleet, err := engine.NewFleet([]string{pa, pb},
				engine.WithModel(m), engine.WithWorkers(workers),
				engine.WithIncidentConfig(incident.Config{CorrelateBuses: 2}))
			if err != nil {
				t.Fatal(err)
			}
			got := map[string][]ids.CompositeResult{}
			if _, err := fleet.Run(func(res engine.Result) error {
				got[res.Bus] = append(got[res.Bus], res.Verdict)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for bus, ref := range refs {
				if len(got[bus]) != len(ref) {
					t.Fatalf("bus %s: %d results, want %d", bus, len(got[bus]), len(ref))
				}
				for i := range ref {
					if d := diffResults(got[bus][i], ref[i]); d != "" {
						t.Fatalf("bus %s record %d: %s", bus, i, d)
					}
				}
			}
			if fleet.Incidents() == nil {
				t.Fatal("incident layer produced no history on an attacked fleet")
			}
		})
	}
}

// TestSessionIncidents runs a standalone (non-fleet) session with the
// incident layer: the attack shows up as a single-bus incident in
// Summary.Incidents.
func TestSessionIncidents(t *testing.T) {
	m := sharedModel(t)
	dir := t.TempDir()
	path := writeFile(t, filepath.Join(dir, "solo.vptr"), buildCapture(t, 201, 700, 250))
	s := engine.NewSession(path,
		engine.WithModel(m),
		engine.WithIncidentConfig(incident.Config{QuietSec: 1000}))
	sum, err := s.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Incidents) == 0 {
		t.Fatal("standalone session recorded no incidents over an attacked capture")
	}
	for _, in := range sum.Incidents {
		if in.Scope != incident.ScopeSingleBus {
			t.Fatalf("standalone session produced a %s incident", in.Scope)
		}
		if got := in.BusNames(); len(got) != 1 || got[0] != "solo" {
			t.Fatalf("incident bus = %v, want [solo]", got)
		}
	}
}
