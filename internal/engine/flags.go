package engine

import (
	"flag"
	"time"
)

// Flags is the session flag set shared by every replay-driving CLI
// (busmon, vprofile detect, vprofile fleet). Registering it through
// RegisterFlags gives the tools identical names, defaults and help
// text by construction — flag parity is structural, not copied.
type Flags struct {
	Capture      string
	Model        string
	Workers      int
	Batch        int
	MetricsAddr  string
	EventsPath   string
	FlightDir    string
	FlightWindow int
	Quarantine   bool
	Recover      bool
	Stall        time.Duration
	ModelWatch   time.Duration
	Incidents    bool
	MaxEvents    int
	Drift        bool
}

// RegisterFlags registers the shared session flags on fs and returns
// the struct they fill after fs.Parse.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Capture, "capture", "", "capture file (plain or gzip); comma-separate several for fleet mode")
	fs.StringVar(&f.Model, "model", "", "trained vProfile model")
	fs.IntVar(&f.Workers, "workers", 0, "extraction worker pool size, 0 = GOMAXPROCS (fleet mode shares one pool of this size across buses)")
	fs.IntVar(&f.Batch, "batch", 0, "records per pipeline batch, 0 = the pipeline default, 1 = per-record handoff")
	fs.StringVar(&f.MetricsAddr, "metrics", "", "serve /metrics, /debug/pprof/ (and /debug/flight with -flight) on this address during the replay (e.g. :9090)")
	fs.StringVar(&f.EventsPath, "events", "", "write a JSONL event log (plus end-of-run stats snapshot) to this file")
	fs.StringVar(&f.FlightDir, "flight", "", "trace every frame and write forensic bundles around alarms into this directory")
	fs.IntVar(&f.FlightWindow, "flight-window", 8, "frames of pre/post context frozen around each alarm")
	fs.BoolVar(&f.Quarantine, "quarantine", false, "enable per-SA quarantine: senders with sustained voltage anomalies degrade and their alarms coalesce")
	fs.BoolVar(&f.Recover, "recover", false, "tolerate capture corruption: resync past damaged records instead of aborting")
	fs.DurationVar(&f.Stall, "stall-timeout", 0, "abort the replay if the verdict stream stalls this long (0 disables the watchdog)")
	fs.DurationVar(&f.ModelWatch, "model-watch", 0, "poll the model file at this interval and hot-swap it when rewritten (0 disables)")
	fs.BoolVar(&f.Incidents, "incidents", false, "correlate alarms into lifecycle-managed incidents (served on /fleet* with -metrics, tabulated at end of run)")
	fs.IntVar(&f.MaxEvents, "max-events", 1000000, "cap the events written to the -events log; past it events are dropped and counted (0 = unlimited)")
	fs.BoolVar(&f.Drift, "drift", false, "watch per-SA distance distributions for profile drift: baselines freeze at model load/swap, drift_warn/drift_alarm events fire on sustained shift, state served on /drift with -metrics")
	return f
}

// Options translates the parsed flags into session options. Capture
// is excluded — it names the session (or fleet) rather than
// configuring it.
func (f *Flags) Options() []Option {
	opts := []Option{
		WithModelPath(f.Model),
		WithWorkers(f.Workers),
		WithBatch(f.Batch),
		WithMetricsAddr(f.MetricsAddr),
		WithEventsPath(f.EventsPath),
		WithQuarantine(f.Quarantine),
		WithRecovery(f.Recover),
		WithStallTimeout(f.Stall),
		WithModelWatch(f.ModelWatch),
		WithIncidents(f.Incidents),
		WithMaxEvents(f.MaxEvents),
		WithDrift(f.Drift),
	}
	if f.FlightDir != "" {
		opts = append(opts, WithFlightRecorder(f.FlightDir, f.FlightWindow))
	}
	return opts
}
