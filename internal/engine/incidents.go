package engine

import (
	"vprofile/internal/ids"
	"vprofile/internal/obs"
	"vprofile/internal/obs/incident"
	"vprofile/internal/pipeline"
)

// WithIncidents enables the fleet-observability incident layer: every
// verdict feeds a streaming correlator that turns raw alarms into
// lifecycle-managed incidents (single-bus or fleet-correlated),
// maintains per-bus health scores, and serves /fleet, /fleet/incidents
// and /fleet/topk next to /metrics. Verdicts are untouched — the layer
// only observes the stream.
func WithIncidents(on bool) Option { return func(s *Session) { s.incidents = on } }

// WithIncidentConfig enables incidents with an explicit correlator
// configuration (tests and benchmarks tune windows with it; the CLIs
// use the defaults).
func WithIncidentConfig(cfg incident.Config) Option {
	return func(s *Session) { s.incidents = true; s.incCfg = &cfg }
}

// WithMaxEvents caps the JSONL event log the session (or fleet) owns:
// past the cap, events are dropped and counted instead of written, so
// a pathological alarm flood cannot fill the disk (0 = unlimited).
// Ignored for an externally-owned log (WithEventLog).
func WithMaxEvents(n int) Option { return func(s *Session) { s.maxEvents = n } }

// withCorrelator points a fleet member at the fleet-owned correlator;
// the session then feeds it but neither creates nor closes it.
func withCorrelator(c *incident.Correlator) Option {
	return func(s *Session) { s.inc = c; s.incidents = true }
}

// incidentBusName is the name the session's evidence is filed under:
// the bus name on a fleet, the capture's derived name standalone.
func (s *Session) incidentBusName() string {
	if s.name != "" {
		return s.name
	}
	return BusNames([]string{s.capture})[0]
}

// setupIncidents builds (or adopts) the correlator and registers this
// session's bus stream, binding the health gauge and the recovering
// reader's corruption counter when a registry exists. Called from Run
// after the event log exists, so a session-owned correlator can emit
// lifecycle events into it.
func (s *Session) setupIncidents(reg *obs.Registry) *incident.BusStream {
	if !s.incidents {
		return nil
	}
	if s.inc == nil {
		cfg := incident.Config{}
		if s.incCfg != nil {
			cfg = *s.incCfg
		}
		if cfg.Emit == nil && s.events != nil {
			events := s.events
			cfg.Emit = func(e obs.Event) { _ = events.Emit(e) }
		}
		s.inc = incident.New(cfg)
		s.ownInc = true
	}
	stream := s.inc.Bus(s.incidentBusName())
	if reg != nil {
		stream.BindHealthGauge(reg.Gauge("vprofile_bus_health_score",
			"Composite bus health 0-100 (100 = healthy): decayed alarm, extract-failure and corruption-recovery rates plus quarantine occupancy."))
		stream.BindCorruptionCounter(reg.Counter("vprofile_capture_corruptions_recovered_total",
			"Corrupted stretches the recovering reader re-synchronised past."))
	}
	return stream
}

// incidentEvidence translates one pipeline verdict into the
// correlator's evidence shape. Pure projection — reading it cannot
// perturb the verdict stream.
func incidentEvidence(r pipeline.Result) incident.Evidence {
	v := r.Verdict
	return incident.Evidence{
		SA:         uint8(r.Frame.SA()),
		T:          r.Record.TimeSec,
		Voltage:    v.ExtractErr == nil && v.Voltage.Anomaly,
		Preprocess: v.ExtractErr != nil,
		Timing:     v.Timing == ids.PeriodTooEarly,
		Transport:  v.TransferErr != nil,
		Suppressed: v.Suppressed,
	}
}

// Incidents returns the fleet's full incident history (open incidents
// resolved as "end-of-run"), available after Run.
func (f *Fleet) Incidents() []incident.Snapshot { return f.incidents }

// Correlator exposes the fleet's live correlator (nil when incidents
// are off) — tests scrape health and top-K through it mid-run.
func (f *Fleet) Correlator() *incident.Correlator { return f.inc }
