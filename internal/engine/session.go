package engine

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"vprofile/internal/core"
	"vprofile/internal/edgeset"
	"vprofile/internal/ids"
	"vprofile/internal/obs"
	"vprofile/internal/obs/drift"
	"vprofile/internal/obs/incident"
	"vprofile/internal/obs/tracing"
	"vprofile/internal/pipeline"
	"vprofile/internal/trace"
)

// AbortError marks a replay that died mid-stream — the verdict stream
// is incomplete, as opposed to a configuration error that prevented
// it from starting. The CLIs map it to a distinct exit code (3) so
// scripts can tell "the capture went bad under us" (stall watchdog,
// unrecovered corruption) from ordinary usage errors.
type AbortError struct{ Err error }

func (e *AbortError) Error() string { return "replay aborted: " + e.Err.Error() }
func (e *AbortError) Unwrap() error { return e.Err }

// classify wraps mid-stream death in AbortError and passes everything
// else through.
func classify(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, pipeline.ErrStalled) || errors.Is(err, trace.ErrCorrupt) {
		return &AbortError{Err: err}
	}
	return err
}

// ExtractionFor derives the edge-set extraction parameters from a
// capture header, scaling the paper's 10 MS/s reference values to the
// capture's actual sample rate.
func ExtractionFor(h trace.Header) edgeset.Config {
	perBit := int(h.ADC.SamplesPerBit(h.BitRate))
	scale := float64(perBit) / 40.0
	prefix := int(2 * scale)
	if prefix < 1 {
		prefix = 1
	}
	suffix := int(14 * scale)
	if suffix < 3 {
		suffix = 3
	}
	return edgeset.Config{
		BitWidth:     perBit,
		BitThreshold: h.ADC.VoltsToCode(1.0),
		PrefixLen:    prefix,
		SuffixLen:    suffix,
	}
}

// Result is one record's verdict tagged with the bus it came from
// (empty on single-bus runs).
type Result struct {
	Bus string
	pipeline.Result
}

// Sink receives results in record order (per bus). A non-nil error
// stops that bus's replay. A fleet serialises the calls, so one sink
// may be shared across buses without locking.
type Sink func(Result) error

// Summary is everything a session learned by the end of its replay —
// the data the CLIs print after the verdict stream finishes.
type Summary struct {
	Bus     string
	Capture string
	Header  trace.Header
	Stats   pipeline.Stats
	// Corruptions lists the damaged stretches a recovery-enabled reader
	// resynced past.
	Corruptions []trace.RecoveredCorruption
	// SilentStreams and DegradedSAs snapshot the stateful detectors at
	// end of capture.
	SilentStreams []uint32
	DegradedSAs   int
	// Flight is the flight recorder's accounting (nil when off).
	Flight *tracing.Stats
	// ModelVersion is the model generation at end of replay;
	// ModelSwaps counts hot swaps observed during it.
	ModelVersion int
	ModelSwaps   int
	// Incidents is the incident history of a standalone session that
	// ran with WithIncidents (nil otherwise; fleet members report
	// through Fleet.Incidents instead).
	Incidents []incident.Snapshot
	// Drift is the end-of-run drift-detector snapshot (nil when the
	// drift layer is off).
	Drift *drift.Snapshot
	// Gaps is the datagram sequence-gap accounting for lossy (UDP)
	// stream sources; nil for files and lossless sockets.
	Gaps *trace.GapStats
	// Live is true on a mid-stream Snapshot — the replay is still
	// running and end-of-run-only fields (SilentStreams, Incidents,
	// Flight) are not populated yet.
	Live bool
	// Err is the session's replay error — populated on fleet runs,
	// where one bus's failure must not hide the others' summaries.
	Err error
}

// Session is one capture→verdict run: it owns opening the source,
// building the composite IDS, wiring observability and running the
// concurrent replay. Build with NewSession + options, run once with
// Run. The zero value is not usable.
type Session struct {
	capture string
	name    string
	// source, when set, replaces opening the capture file: the session
	// streams records from it instead (live ingestion).
	source *StreamSource

	model     *core.Model
	modelPath string
	store     *ModelStore
	ownStore  bool

	workers int
	batch   int
	pool    *pipeline.Pool

	metricsAddr  string
	registry     *obs.Registry
	events       *obs.EventLog
	ownEvents    bool
	eventsPath   string
	flightDir    string
	flightWindow int

	quarantine bool
	quarCfg    *ids.QuarantineConfig
	recovery   bool
	stall      time.Duration
	watch      time.Duration

	// Incident-layer state (see incidents.go): incidents turns the
	// layer on, incCfg optionally tunes it, inc is the correlator (a
	// fleet injects a shared one; a standalone session builds and
	// closes its own — ownInc), maxEvents caps an owned event log.
	incidents bool
	incCfg    *incident.Config
	inc       *incident.Correlator
	ownInc    bool
	maxEvents int

	// Drift-layer state (see drift.go): drift turns the layer on,
	// driftCfg optionally tunes the detectors, driftMon is the monitor
	// (a fleet injects a shared-lifecycle one per bus; a standalone
	// session builds its own — ownDrift).
	drift    bool
	driftCfg *drift.Config
	driftMon *drift.Monitor
	ownDrift bool

	logf func(format string, args ...any)

	// live is the state a mid-stream Snapshot reads while Run is in
	// flight: everything in it is either immutable after Run's setup
	// (src, store, startVersion), internally synchronised
	// (pipeline.Replayer.Stats, drift.Monitor.Status,
	// trace.Reader.Corruptions), or written exactly once at the end
	// (final). degraded is kept separately by the sink wrapper so the
	// snapshot never touches the composite's unsynchronised quarantine
	// state.
	live struct {
		mu           sync.Mutex
		src          *StreamSource
		rep          *pipeline.Replayer
		driftMon     *drift.Monitor
		store        *ModelStore
		startVersion int
		started      bool
		stopEarly    bool
		final        *Summary
	}
	degraded atomic.Int64
}

// Option configures a Session (and, via NewFleet, every session of a
// fleet).
type Option func(*Session)

// WithName tags the session's results, events and metrics with a bus
// name. Fleets derive names from capture filenames automatically.
func WithName(name string) Option { return func(s *Session) { s.name = name } }

// WithModelPath lazily loads the model from disk (LoadModelFile).
func WithModelPath(path string) Option { return func(s *Session) { s.modelPath = path } }

// WithModel supplies an already-loaded model.
func WithModel(m *core.Model) Option { return func(s *Session) { s.model = m } }

// WithStore runs the session against an externally-owned hot-swap
// store (shared across a fleet). The session then neither creates a
// store nor drives -model-watch itself.
func WithStore(st *ModelStore) Option { return func(s *Session) { s.store = st } }

// WithWorkers sets the extraction pool size (0 = GOMAXPROCS).
func WithWorkers(n int) Option { return func(s *Session) { s.workers = n } }

// WithBatch sets the records-per-batch granularity of the replay
// pipeline (0 = pipeline.DefaultBatch, 1 = per-record handoff).
// Verdicts are identical at every batch size.
func WithBatch(n int) Option { return func(s *Session) { s.batch = n } }

// WithPool runs the hot path on a shared worker pool instead of a
// private one; the pool must outlive the session.
func WithPool(p *pipeline.Pool) Option { return func(s *Session) { s.pool = p } }

// WithMetricsAddr serves /metrics, /metrics.json, /debug/pprof/ (and
// /debug/flight when flight recording) for the replay's duration.
func WithMetricsAddr(addr string) Option { return func(s *Session) { s.metricsAddr = addr } }

// WithRegistry mounts the session's instruments on an external
// registry (a fleet's per-bus group member) instead of a private one.
func WithRegistry(reg *obs.Registry) Option { return func(s *Session) { s.registry = reg } }

// WithEventsPath writes a JSONL event log (plus an end-of-run stats
// snapshot) to path.
func WithEventsPath(path string) Option { return func(s *Session) { s.eventsPath = path } }

// WithEventLog emits events to an externally-owned log (a fleet's
// shared log). The session tags its records with its bus name and
// does not close the log.
func WithEventLog(l *obs.EventLog) Option { return func(s *Session) { s.events = l } }

// WithFlightRecorder traces every frame and freezes forensic bundles
// around alarms into dir, with window frames of pre/post context.
func WithFlightRecorder(dir string, window int) Option {
	return func(s *Session) { s.flightDir, s.flightWindow = dir, window }
}

// WithQuarantine enables the per-SA degradation state machine.
func WithQuarantine(on bool) Option { return func(s *Session) { s.quarantine = on } }

// WithQuarantineConfig enables quarantine with explicit thresholds
// (the fleet policy's per-bus tuning); zero fields take the defaults.
func WithQuarantineConfig(cfg ids.QuarantineConfig) Option {
	return func(s *Session) { s.quarantine, s.quarCfg = true, &cfg }
}

// WithSource streams records from an already-attached source instead
// of opening a capture file — the daemon's live-ingestion path. The
// session takes ownership (Run closes it).
func WithSource(src *StreamSource) Option { return func(s *Session) { s.source = src } }

// WithRecovery tolerates capture corruption: the reader resyncs past
// damaged records instead of aborting.
func WithRecovery(on bool) Option { return func(s *Session) { s.recovery = on } }

// WithStallTimeout arms the slow-sink watchdog (0 disables).
func WithStallTimeout(d time.Duration) Option { return func(s *Session) { s.stall = d } }

// WithModelWatch polls the model file every interval and hot-swaps
// the model when it changes (0 disables). Requires WithModelPath and
// a session-owned store.
func WithModelWatch(interval time.Duration) Option { return func(s *Session) { s.watch = interval } }

// WithLogf routes the session's informational messages (serving
// addresses, model swaps); nil silences them.
func WithLogf(fn func(format string, args ...any)) Option { return func(s *Session) { s.logf = fn } }

// NewSession builds a session over one capture file.
func NewSession(capture string, opts ...Option) *Session {
	s := &Session{capture: capture, flightWindow: 8}
	for _, o := range opts {
		o(s)
	}
	return s
}

// EmitEvent appends one event to the session's log, tagged with the
// session's bus name. It is a no-op (nil) without an event log. Call
// it from the Run sink — the log exists for exactly that window.
func (s *Session) EmitEvent(e obs.Event) error {
	if s.events == nil {
		return nil
	}
	if e.Bus == "" {
		e.Bus = s.name
	}
	return s.events.Emit(e)
}

// resolveStore produces the session's model provider, loading the
// model from disk when only a path was given.
func (s *Session) resolveStore() error {
	if s.store != nil {
		return nil
	}
	m := s.model
	if m == nil {
		if s.modelPath == "" {
			return errors.New("engine: session needs a model (WithModel, WithModelPath or WithStore)")
		}
		var err error
		m, err = LoadModelFile(s.modelPath)
		if err != nil {
			return err
		}
	}
	st, err := NewModelStore(m)
	if err != nil {
		return err
	}
	s.store, s.ownStore = st, true
	return nil
}

// Run replays the capture to completion (or first error), delivering
// verdicts to sink in record order. It may be called once; the
// returned Summary is valid even on error (with the fields reached so
// far). Mid-stream death (stall watchdog, unrecovered corruption)
// comes back wrapped in *AbortError.
func (s *Session) Run(sink Sink) (Summary, error) {
	logf := s.logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	sum := Summary{Bus: s.name, Capture: s.capture}
	if err := s.resolveStore(); err != nil {
		return sum, err
	}
	startVersion := s.store.Version()

	var err error
	rd := s.source
	if rd == nil {
		rd, err = OpenCaptureSource(s.capture)
		if err != nil {
			return sum, err
		}
	}
	defer rd.Close()
	if sum.Capture == "" {
		sum.Capture = rd.Name()
	}
	if s.recovery {
		rd.EnableRecovery()
	}
	h := rd.Header()
	sum.Header = h

	s.live.mu.Lock()
	s.live.src = rd
	s.live.store = s.store
	s.live.startVersion = startVersion
	s.live.started = true
	if s.live.stopEarly {
		// Stop raced ahead of Run: honour it before the first record.
		rd.Stop()
	}
	s.live.mu.Unlock()

	// Observability: one registry feeds the live HTTP endpoint, the
	// instrumented pipeline/detector stack, and the end-of-run
	// snapshot in the event log. A fleet injects the registry (a group
	// member) and the shared event log; a standalone session owns both.
	reg := s.registry
	wantObs := s.metricsAddr != "" || s.eventsPath != "" || s.events != nil || s.incidents || s.drift
	if reg == nil && wantObs {
		reg = obs.NewRegistry()
	}
	var pm *pipeline.Metrics
	var im *ids.Metrics
	if reg != nil {
		pm = pipeline.NewMetrics(reg)
		im = ids.NewMetrics(reg)
		rd.SetMetrics(trace.NewMetrics(reg))
	}
	if s.events == nil && s.eventsPath != "" {
		s.events, err = obs.CreateEventLog(s.eventsPath)
		if err != nil {
			return sum, err
		}
		s.ownEvents = true
		if s.maxEvents > 0 {
			s.events.SetMaxEvents(s.maxEvents)
		}
	}
	incStream := s.setupIncidents(reg)
	driftMon := s.setupDrift(reg, incStream)
	if driftMon != nil {
		s.live.mu.Lock()
		s.live.driftMon = driftMon
		s.live.mu.Unlock()
	}
	var recorder *tracing.Recorder
	if s.flightDir != "" {
		rcfg := tracing.RecorderConfig{
			Window: s.flightWindow, Dir: s.flightDir, Header: h, Events: s.events,
		}
		if incStream != nil {
			// Stamp each finished bundle with the incident that was open
			// for its (bus, SA) — and file the bundle as incident
			// evidence — before it hits disk, so bundle.json carries the
			// join key.
			stream := incStream
			rcfg.Tag = func(b *tracing.Bundle) {
				b.Incident = stream.LinkBundle(b.SA, b.DirName())
			}
		}
		recorder, err = tracing.NewRecorder(rcfg)
		if err != nil {
			return sum, err
		}
	}
	if s.metricsAddr != "" {
		var routes []obs.Route
		if recorder != nil {
			routes = append(routes, obs.Route{Pattern: "/debug/flight", Handler: recorder})
		}
		var exp obs.Exporter = reg
		if reg != nil {
			// Self-telemetry refreshes at scrape time, on the same
			// registry the replay instruments.
			rs := obs.NewRuntimeStats(reg)
			exp = obs.CollectedExporter(reg, rs.Collect)
		}
		if s.ownInc {
			routes = append(routes, s.inc.Routes()...)
		}
		if driftMon != nil {
			routes = append(routes, driftMon.Route())
		}
		srv, err := obs.Serve(s.metricsAddr, exp, routes...)
		if err != nil {
			return sum, err
		}
		// Drain in-flight scrapes briefly instead of cutting them off
		// mid-response.
		defer func() { _ = srv.ShutdownTimeout(2 * time.Second) }()
		logf("serving /metrics and /debug/pprof/ on http://%s", srv.Addr())
		if recorder != nil {
			logf("flight recorder live at http://%s/debug/flight", srv.Addr())
		}
	}

	// Model hot-swap surfacing: the version gauge tracks swaps on this
	// session's registry; a session that owns its store also emits the
	// model_swap event and drives the file watch (a fleet does both
	// fleet-wide instead).
	started := time.Now()
	if reg != nil {
		g := reg.Gauge("vprofile_engine_model_version",
			"current hot-swap model generation (1 = the model loaded at start)")
		g.Set(int64(startVersion))
		s.store.OnSwap(func(sm StoredModel) { g.Set(int64(sm.Version)) })
	}
	if driftMon != nil && s.ownDrift {
		// A hot swap changes the distribution distances are drawn from:
		// drift baselines re-freeze against the new model instead of
		// reading the model change itself as drift. (Fleet-injected
		// monitors are reset fleet-wide by the fleet instead.)
		mon := driftMon
		s.store.OnSwap(func(StoredModel) { mon.ResetBaseline() })
	}
	if s.ownStore {
		if s.events != nil {
			events := s.events
			bus := s.name
			s.store.OnSwap(func(sm StoredModel) {
				_ = events.Emit(obs.Event{
					TimeSec: time.Since(started).Seconds(), Kind: obs.EventModelSwap,
					Bus: bus, Severity: obs.SeverityInfo,
					Detail: modelSwapDetail(sm),
				})
			})
		}
		if s.watch > 0 {
			if s.modelPath == "" {
				return sum, errors.New("engine: model watch needs a model path")
			}
			stop := make(chan struct{})
			defer close(stop)
			go s.store.Watch(s.modelPath, s.watch, stop, s.logf)
		}
	}

	mcfg := ids.CompositeConfig{Extraction: ExtractionFor(h), Models: s.store, Metrics: im}
	if s.quarantine {
		mcfg.Quarantine = &ids.QuarantineConfig{}
		if s.quarCfg != nil {
			mcfg.Quarantine = s.quarCfg
		}
		if incStream != nil {
			// Quarantine transitions reach the incident layer as
			// structured notifications, not by polling: degradation
			// escalates the covering incident and counts toward the
			// bus's health occupancy. Sequence runs single-goroutine, in
			// record order — exactly the order the correlator wants.
			stream := incStream
			mcfg.OnQuarantine = func(ch ids.QuarantineChange) {
				stream.ObserveQuarantine(ch.SA, ch.To.String(), ch.AtSec)
			}
		}
	}
	mon, err := ids.NewComposite(nil, mcfg)
	if err != nil {
		return sum, err
	}

	var pfn pipeline.Sink
	if sink != nil {
		bus := s.name
		pfn = func(r pipeline.Result) error { return sink(Result{Bus: bus, Result: r}) }
	}
	if s.quarantine {
		// Track the degraded-SA population on an atomic so a mid-stream
		// Snapshot never reads the composite's quarantine map while the
		// sequencer is writing it. Wrapped innermost: the count is
		// updated even when drift/incident wrappers or the user sink
		// error out later in the chain.
		deg, inner := &s.degraded, pfn
		pfn = func(r pipeline.Result) error {
			if r.Verdict.QuarantineChanged() {
				if r.Verdict.SAState == ids.SADegraded {
					deg.Add(1)
				} else if r.Verdict.PrevSAState == ids.SADegraded {
					deg.Add(-1)
				}
			}
			if inner != nil {
				return inner(r)
			}
			return nil
		}
	}
	if driftMon != nil {
		// Scored frames feed the drift sketches. Wrapped before the
		// incident layer so per frame the correlator sees alarm evidence
		// first and drift transitions second (the correlator re-checks
		// standing drift on every alarm anyway).
		mon, store, inner := driftMon, s.store, pfn
		pfn = func(r pipeline.Result) error {
			observeDrift(mon, store, r)
			if inner != nil {
				return inner(r)
			}
			return nil
		}
	}
	if incStream != nil {
		// Every verdict feeds the correlator, before the user sink, so
		// a mid-run /fleet scrape is never behind the verdict stream.
		// The wrapper exists even with no user sink — incidents are a
		// consumer in their own right.
		stream, inner := incStream, pfn
		pfn = func(r pipeline.Result) error {
			stream.Observe(incidentEvidence(r))
			if inner != nil {
				return inner(r)
			}
			return nil
		}
	}
	rep, err := pipeline.New(mon, pipeline.Config{
		Workers: s.workers, Batch: s.batch, Pool: s.pool, Metrics: pm, Recorder: recorder, StallTimeout: s.stall,
	})
	if err != nil {
		return sum, err
	}
	s.live.mu.Lock()
	s.live.rep = rep
	s.live.mu.Unlock()
	err = rep.Run(rd, pfn)
	sum.Stats = rep.Stats()
	if recorder != nil {
		// Close before the event log: flushing truncated capture
		// windows emits their flight events.
		if cerr := recorder.Close(); cerr != nil && err == nil {
			err = cerr
		}
		fs := recorder.Stats()
		sum.Flight = &fs
	}
	if s.ownInc {
		// Close after the recorder (bundle tags emit their update
		// events) and before the event log (resolve events must land in
		// it).
		sum.Incidents = s.inc.CloseOut()
	}
	if s.events != nil {
		if s.ownEvents {
			// Close even on a failed replay so the partial event stream
			// and its stats snapshot survive for diagnosis.
			if cerr := s.events.Close(reg); cerr != nil && err == nil {
				err = cerr
			}
		} else if reg != nil {
			// Shared (fleet) log: contribute a per-bus stats record; the
			// fleet closes the log after every bus has.
			_ = s.events.Emit(obs.Event{Kind: obs.EventStats, Bus: s.name, Stats: reg.Snapshot()})
		}
	}
	if driftMon != nil {
		snap := driftMon.Status()
		sum.Drift = &snap
	}
	sum.Corruptions = rd.Corruptions()
	sum.SilentStreams = mon.SilentStreams()
	sum.DegradedSAs = mon.DegradedSAs()
	sum.ModelVersion = s.store.Version()
	sum.ModelSwaps = sum.ModelVersion - startVersion
	sum.Gaps = rd.Gaps()
	err = classify(err)
	s.live.mu.Lock()
	final := sum
	s.live.final = &final
	s.live.mu.Unlock()
	return sum, err
}

// Stop asks a running session to drain: the stream source ends at the
// next record boundary (interrupting a blocked transport read), the
// pipeline flushes, and Run returns with a complete Summary. Calling
// Stop before Run makes Run drain immediately after setup; calling it
// after Run returned is a no-op.
func (s *Session) Stop() {
	s.live.mu.Lock()
	src := s.live.src
	if src == nil {
		s.live.stopEarly = true
	}
	s.live.mu.Unlock()
	if src != nil {
		src.Stop()
	}
}

// Snapshot returns the session's state as of now, safe to call from
// any goroutine at any time. Before Run starts streaming it returns a
// zero summary; while the replay is live it returns a mid-stream view
// (Live=true) with Stats, Corruptions, DegradedSAs, model versioning,
// drift status and datagram gaps populated — SilentStreams, Incidents
// and Flight are end-of-run analyses and stay empty; after Run it
// returns the final Summary.
func (s *Session) Snapshot() Summary {
	s.live.mu.Lock()
	if s.live.final != nil {
		sum := *s.live.final
		s.live.mu.Unlock()
		return sum
	}
	src, rep, driftMon, store, startVersion, started :=
		s.live.src, s.live.rep, s.live.driftMon, s.live.store, s.live.startVersion, s.live.started
	s.live.mu.Unlock()

	sum := Summary{Bus: s.name, Capture: s.capture}
	if !started {
		return sum
	}
	sum.Live = true
	if sum.Capture == "" {
		sum.Capture = src.Name()
	}
	sum.Header = src.Header()
	if rep != nil {
		sum.Stats = rep.Stats()
	}
	sum.Corruptions = src.Corruptions()
	sum.DegradedSAs = int(s.degraded.Load())
	if store != nil {
		sum.ModelVersion = store.Version()
		sum.ModelSwaps = sum.ModelVersion - startVersion
	}
	if driftMon != nil {
		snap := driftMon.Status()
		sum.Drift = &snap
	}
	sum.Gaps = src.Gaps()
	return sum
}
