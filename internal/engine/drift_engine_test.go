package engine_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"vprofile/internal/attack"
	"vprofile/internal/engine"
	"vprofile/internal/faults"
	"vprofile/internal/ids"
	"vprofile/internal/obs"
	"vprofile/internal/obs/drift"
	"vprofile/internal/trace"
	"vprofile/internal/vehicle"
)

// buildHijackForeignCapture renders clean traffic followed by a hijack
// segment and then a foreign-device segment — both attack families the
// paper distinguishes — so the drift determinism test replays the full
// verdict surface (healthy, same-hardware spoof, foreign hardware).
func buildHijackForeignCapture(t testing.TB, seed int64, cleanN, hijackN, foreignN int) []byte {
	t.Helper()
	v := vehicle.NewVehicleB()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Header{Vehicle: v.Name, BitRate: v.BitRate, ADC: v.ADC})
	if err != nil {
		t.Fatal(err)
	}
	last := 0.0
	write := func(m vehicle.Message, offset float64) {
		last = offset + m.TimeSec
		err := w.Write(&trace.Record{
			ECUIndex: int32(m.ECUIndex), TimeSec: last,
			FrameID: m.Frame.ID, Data: m.Frame.Data, Trace: m.Trace,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	err = v.Stream(vehicle.GenConfig{NumMessages: cleanN, Seed: seed, DiagnosticTraffic: true}, func(m vehicle.Message) error {
		write(m, 0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	hijack, err := attack.Run(v, attack.Scenario{
		Kind: attack.Hijack, AttackerECU: 7, VictimECU: 2, NumMessages: hijackN, Seed: seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	offset := last + 0.1
	for _, m := range hijack {
		write(m.Message, offset)
	}
	foreign, err := attack.Run(v, attack.Scenario{
		Kind: attack.Foreign, VictimECU: 1, NumMessages: foreignN, Seed: seed + 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	offset = last + 0.1
	for _, m := range foreign {
		write(m.Message, offset)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDriftDeterminism pins the tentpole invariant: the drift layer is
// pure observation, so a replay with -drift produces verdicts
// bit-identical to the sequential no-drift reference at every worker
// count. The capture covers healthy, hijack and foreign traffic.
func TestDriftDeterminism(t *testing.T) {
	m := sharedModel(t)
	dir := t.TempDir()
	path := writeFile(t, filepath.Join(dir, "hf.vptr"), buildHijackForeignCapture(t, 401, 700, 200, 200))
	ref := sequentialRef(t, path, m)

	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			s := engine.NewSession(path,
				engine.WithModel(m), engine.WithWorkers(workers), engine.WithDrift(true))
			var got []ids.CompositeResult
			sum, err := s.Run(func(res engine.Result) error {
				got = append(got, res.Verdict)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(ref) {
				t.Fatalf("%d results, want %d", len(got), len(ref))
			}
			for i := range ref {
				if d := diffResults(got[i], ref[i]); d != "" {
					t.Fatalf("record %d: %s", i, d)
				}
			}
			if sum.Drift == nil {
				t.Fatal("summary carries no drift snapshot with drift on")
			}
			if len(sum.Drift.SAs) == 0 {
				t.Fatal("drift snapshot observed no SAs")
			}
		})
	}
}

// buildDriftRampCapture renders clean traffic where exactly one ECU's
// analog profile drifts: the first rampAfter messages are untouched
// (the baseline), then the injector's temperature-style mean shift
// ramps up on the target ECU only, on an accelerated clock so the
// shift develops within the capture.
func buildDriftRampCapture(t testing.TB, seed int64, n, rampAfter, targetECU int) []byte {
	t.Helper()
	v := vehicle.NewVehicleB()
	spec, err := faults.ParseSpec("drift=1")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.NewInjector(spec, seed+9, v.ADC)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Header{Vehicle: v.Name, BitRate: v.BitRate, ADC: v.ADC})
	if err != nil {
		t.Fatal(err)
	}
	idx := 0
	err = v.Stream(vehicle.GenConfig{NumMessages: n, Seed: seed}, func(m vehicle.Message) error {
		if m.ECUIndex == targetECU && idx >= rampAfter {
			// Pseudo-time drives the injector's ramp; decoupling it from
			// the capture clock makes the shift's growth rate a test
			// parameter instead of a schedule artifact.
			inj.Apply(idx, m.ECUIndex, float64(idx-rampAfter)*0.1, m.Trace)
		}
		idx++
		return w.Write(&trace.Record{
			ECUIndex: int32(m.ECUIndex), TimeSec: m.TimeSec,
			FrameID: m.Frame.ID, Data: m.Frame.Data, Trace: m.Trace,
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// saForECU inverts the vehicle's SA map.
func saForECU(t testing.TB, v *vehicle.Vehicle, ecu int) uint8 {
	t.Helper()
	for sa, idx := range v.SAMap() {
		if idx == ecu {
			return uint8(sa)
		}
	}
	t.Fatalf("no SA maps to ECU %d", ecu)
	return 0
}

// TestDriftWarnBeforeQuarantine replays a capture where one ECU's
// profile slowly drifts toward the alarm threshold and requires the
// early-warning contract: drift_warn fires for that SA — and no other —
// before any quarantine transition, and the verdict stream stays
// bit-identical to the sequential no-drift reference.
func TestDriftWarnBeforeQuarantine(t *testing.T) {
	m := sharedModel(t)
	v := vehicle.NewVehicleB()
	const targetECU = 2
	targetSA := saForECU(t, v, targetECU)
	dir := t.TempDir()
	path := writeFile(t, filepath.Join(dir, "ramp.vptr"), buildDriftRampCapture(t, 501, 2600, 1200, targetECU))
	ref := sequentialRef(t, path, m)

	var events []obs.Event
	s := engine.NewSession(path,
		engine.WithModel(m), engine.WithWorkers(4),
		engine.WithQuarantine(true),
		engine.WithDriftConfig(drift.Config{
			BaselineFrames: 50,
			WindowFrames:   32,
			TrendFrames:    128,
			Emit:           func(e obs.Event) { events = append(events, e) },
		}))
	var got []ids.CompositeResult
	firstQuarantine := -1.0
	sum, err := s.Run(func(res engine.Result) error {
		got = append(got, res.Verdict)
		if res.Verdict.QuarantineChanged() && firstQuarantine < 0 {
			firstQuarantine = res.Record.TimeSec
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(got) != len(ref) {
		t.Fatalf("%d results, want %d", len(got), len(ref))
	}
	for i := range ref {
		if d := diffResults(got[i], ref[i]); d != "" {
			t.Fatalf("record %d: %s", i, d)
		}
	}

	firstWarn := -1.0
	for _, e := range events {
		if e.SA == nil {
			t.Fatalf("drift event without SA: %+v", e)
		}
		if *e.SA != targetSA {
			t.Fatalf("drift event for SA %#02x, only %#02x is ramped (%s)", *e.SA, targetSA, e.Detail)
		}
		if e.Kind == obs.EventDriftWarn && firstWarn < 0 {
			firstWarn = e.TimeSec
		}
	}
	if firstWarn < 0 {
		t.Fatalf("ramped SA %#02x never produced drift_warn (events: %d, snapshot: %+v)",
			targetSA, len(events), sum.Drift)
	}
	if firstQuarantine >= 0 && firstWarn >= firstQuarantine {
		t.Fatalf("drift_warn at %.3fs did not precede quarantine transition at %.3fs",
			firstWarn, firstQuarantine)
	}

	if sum.Drift == nil {
		t.Fatal("summary carries no drift snapshot")
	}
	for _, st := range sum.Drift.SAs {
		if st.SA == targetSA {
			if st.State == "ok" {
				t.Fatalf("ramped SA %#02x ended in state ok: %+v", targetSA, st)
			}
		} else if st.State != "ok" {
			t.Fatalf("stable SA %#02x ended in state %s", st.SA, st.State)
		}
	}
}
