package engine

import (
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"

	"vprofile/internal/trace"
)

// StreamSource adapts any capture byte stream — a file, a TCP or unix
// socket connection, a reassembled datagram stream — into the record
// source a Session replays. It is the contract change that turns
// batch replay into live ingestion: the session no longer opens a
// file itself, it consumes whatever stream is attached, indefinitely,
// until the stream ends or Stop asks for a drain.
//
// StreamSource implements the pipeline's Source, RawSource and
// NextRawInto refinements, so the zero-allocation batched hot path is
// identical for a socket feed and a file replay — backpressure falls
// out of the blocking Read: when the pipeline is saturated the source
// simply reads the transport slower.
type StreamSource struct {
	name    string
	rd      *trace.Reader
	closer  io.Closer
	sr      *stopReader
	gaps    func() trace.GapStats
	stopped atomic.Bool
}

// readDeadliner is the optional transport hook a drain uses to
// unblock a pending Read: net.Conn, *trace.DatagramReader and
// *os.File all provide it.
type readDeadliner interface{ SetReadDeadline(time.Time) error }

// stopReader wraps the transport under the capture reader so a drain
// can end the stream without tearing down the connection mid-read.
// Stop sets a flag and fires an immediate read deadline; the blocked
// Read returns its deadline error, which the wrapper rewrites to
// io.EOF. Where that EOF lands decides the drain's verdict: between
// records it is a clean end of stream, inside a record it surfaces as
// ErrUnexpectedEOF → ErrCorrupt → AbortError — an honest "this
// session did not finish cleanly".
type stopReader struct {
	r        io.Reader
	deadline readDeadliner
	stopped  atomic.Bool
}

func (sr *stopReader) Read(p []byte) (int, error) {
	if sr.stopped.Load() {
		return 0, io.EOF
	}
	n, err := sr.r.Read(p)
	if err != nil && sr.stopped.Load() {
		return n, io.EOF
	}
	return n, err
}

func (sr *stopReader) stop() {
	sr.stopped.Store(true)
	if sr.deadline != nil {
		// A deadline in the past unblocks a Read currently parked in
		// the transport.
		_ = sr.deadline.SetReadDeadline(time.Unix(0, 1))
	}
}

// NewStreamSource reads the capture header off rc and returns a
// source streaming records from it. It blocks until the header
// arrives (or rc fails). The source owns rc: Close closes it. When rc
// supports read deadlines (net.Conn, *trace.DatagramReader), Stop can
// interrupt a blocked read; otherwise Stop takes effect at the next
// record boundary.
func NewStreamSource(name string, rc io.ReadCloser) (*StreamSource, error) {
	sr := &stopReader{r: rc}
	if d, ok := rc.(readDeadliner); ok {
		sr.deadline = d
	}
	rd, err := trace.OpenReader(sr)
	if err != nil {
		rc.Close()
		return nil, fmt.Errorf("stream %s: %w", name, err)
	}
	return &StreamSource{name: name, rd: rd, closer: rc, sr: sr}, nil
}

// OpenCaptureSource opens a capture file (gzip transparently) as a
// stream source — the batch-replay case expressed through the same
// abstraction.
func OpenCaptureSource(path string) (*StreamSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	src, err := NewStreamSource(path, f)
	if err != nil {
		return nil, fmt.Errorf("open capture: %w", err)
	}
	return src, nil
}

// Name identifies the stream (a file path, or a peer description for
// socket feeds).
func (s *StreamSource) Name() string { return s.name }

// Header returns the capture header read at attach time.
func (s *StreamSource) Header() trace.Header { return s.rd.Header() }

// EnableRecovery switches the underlying reader into
// corruption-tolerant mode (see trace.Reader.EnableRecovery).
func (s *StreamSource) EnableRecovery() { s.rd.EnableRecovery() }

// SetMetrics forwards reader instrumentation.
func (s *StreamSource) SetMetrics(m *trace.Metrics) { s.rd.SetMetrics(m) }

// Corruptions snapshots the recovered-corruption reports; safe to
// call mid-stream from another goroutine.
func (s *StreamSource) Corruptions() []trace.RecoveredCorruption { return s.rd.Corruptions() }

// SetGapStats attaches a datagram-loss accountant (for UDP feeds);
// Gaps then reports it.
func (s *StreamSource) SetGapStats(fn func() trace.GapStats) { s.gaps = fn }

// Gaps returns the datagram sequence-gap accounting, or nil for
// lossless transports.
func (s *StreamSource) Gaps() *trace.GapStats {
	if s.gaps == nil {
		return nil
	}
	g := s.gaps()
	return &g
}

// Stop asks the stream to end: the next record boundary reads as
// io.EOF, and a read blocked in the transport is interrupted via its
// read deadline. The replay then drains normally — pipeline flush,
// summary, event-log close — exactly as if the capture had ended.
func (s *StreamSource) Stop() {
	s.stopped.Store(true)
	s.sr.stop()
}

// Stopped reports whether Stop has been called.
func (s *StreamSource) Stopped() bool { return s.stopped.Load() }

// Close releases the transport.
func (s *StreamSource) Close() error { return s.closer.Close() }

// Next implements pipeline.Source.
func (s *StreamSource) Next() (*trace.Record, error) {
	if s.stopped.Load() {
		return nil, io.EOF
	}
	return s.rd.Next()
}

// NextRaw implements pipeline.RawSource.
func (s *StreamSource) NextRaw() (*trace.RawRecord, error) {
	if s.stopped.Load() {
		return nil, io.EOF
	}
	return s.rd.NextRaw()
}

// NextRawInto implements the pipeline's zero-allocation refinement,
// keeping Config.PoolBuffers effective over socket feeds.
func (s *StreamSource) NextRawInto(rec *trace.RawRecord) error {
	if s.stopped.Load() {
		return io.EOF
	}
	return s.rd.NextRawInto(rec)
}
