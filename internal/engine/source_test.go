package engine_test

import (
	"io"
	"sync/atomic"
	"testing"
	"time"

	"vprofile/internal/engine"
)

// TestSessionSnapshotMidStream streams a capture through a pipe,
// pauses the feed halfway, and snapshots the live session from
// another goroutine — the daemon's status path. The snapshot must
// show progress mid-stream and settle to the final summary once the
// run completes.
func TestSessionSnapshotMidStream(t *testing.T) {
	m := sharedModel(t)
	data := buildCapture(t, 201, 700, 250)

	pr, pw := io.Pipe()
	resume := make(chan struct{})
	go func() {
		half := len(data) / 2
		if _, err := pw.Write(data[:half]); err != nil {
			return
		}
		<-resume
		_, _ = pw.Write(data[half:])
		pw.Close()
	}()

	src, err := engine.NewStreamSource("pipe", pr)
	if err != nil {
		t.Fatal(err)
	}
	sess := engine.NewSession("",
		engine.WithSource(src),
		engine.WithModel(m),
		engine.WithQuarantine(true),
	)
	var frames atomic.Int64
	type runResult struct {
		sum engine.Summary
		err error
	}
	done := make(chan runResult, 1)
	go func() {
		sum, err := sess.Run(func(res engine.Result) error {
			frames.Add(1)
			return nil
		})
		done <- runResult{sum, err}
	}()

	// The feed is stalled at the half-way mark, so a live snapshot
	// with partial progress is guaranteed to be observable.
	deadline := time.Now().Add(20 * time.Second)
	var mid engine.Summary
	for {
		mid = sess.Snapshot()
		if mid.Live && mid.Stats.RecordsOut > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never observed a live snapshot with progress: %+v", mid)
		}
		time.Sleep(time.Millisecond)
	}
	if mid.ModelVersion != 1 {
		t.Errorf("mid-stream model version = %d", mid.ModelVersion)
	}

	close(resume)
	r := <-done
	if r.err != nil {
		t.Fatalf("run failed: %v", r.err)
	}
	if mid.Stats.RecordsOut >= r.sum.Stats.RecordsOut {
		t.Errorf("mid-stream snapshot saw %d records, final %d — snapshot was not mid-stream",
			mid.Stats.RecordsOut, r.sum.Stats.RecordsOut)
	}
	if int64(r.sum.Stats.RecordsOut) != frames.Load() {
		t.Errorf("sink got %d results, stats say %d", frames.Load(), r.sum.Stats.RecordsOut)
	}

	// After completion the snapshot is the final summary, not live.
	final := sess.Snapshot()
	if final.Live {
		t.Error("completed session still reports live")
	}
	if final.Stats.RecordsOut != r.sum.Stats.RecordsOut ||
		final.DegradedSAs != r.sum.DegradedSAs ||
		final.ModelVersion != r.sum.ModelVersion {
		t.Errorf("final snapshot differs from the returned summary:\nsnap %+v\nsum  %+v", final, r.sum)
	}
	if r.sum.DegradedSAs == 0 {
		t.Error("attack capture with quarantine degraded no SAs")
	}
}

// TestStreamSourceStopBeforeRun: a session whose source is stopped
// before Run begins drains immediately with an empty summary instead
// of blocking on the feed.
func TestStreamSourceStopBeforeRun(t *testing.T) {
	m := sharedModel(t)
	data := buildCapture(t, 201, 120, 10)
	pr, pw := io.Pipe()
	go func() {
		_, _ = pw.Write(data)
		// Feed stays open: only the Stop ends the session.
	}()
	src, err := engine.NewStreamSource("pipe", pr)
	if err != nil {
		t.Fatal(err)
	}
	src.Stop()
	sess := engine.NewSession("", engine.WithSource(src), engine.WithModel(m))
	sum, err := sess.Run(nil)
	if err != nil {
		t.Fatalf("stopped source aborted the run: %v", err)
	}
	if sum.Stats.RecordsOut != 0 {
		t.Fatalf("stopped source still replayed %d records", sum.Stats.RecordsOut)
	}
	pw.Close()
}
