package engine

import (
	"fmt"
	"sort"
	"strings"

	"vprofile/internal/canbus"
	"vprofile/internal/ids"
	"vprofile/internal/obs"
	"vprofile/internal/obs/drift"
	"vprofile/internal/obs/tracing"
	"vprofile/internal/pipeline"
)

// saTally is one row of the per-SA table. Alarms are split by
// detector family so the table reconciles exactly with the summary
// totals: voltage covers vProfile anomalies and preprocess failures,
// timing covers early arrivals, transport covers malformed transfers.
type saTally struct {
	frames     int
	voltAlarms int
	timeAlarms int
	tpAlarms   int
	lastSeen   float64
	// Quarantine bookkeeping (zero / SAHealthy unless quarantine is
	// on): suppressed counts coalesced voltage alarms, state tracks
	// the SA's latest quarantine state.
	suppressed int
	state      ids.SAState
	// drift is the SA's end-of-run drift state ("" unless -drift).
	drift string
}

// Tally accumulates one session's summary counters, the per-SA
// table, and the structured event stream that feeds both the human
// timeline and the JSONL event log. It lives in the engine rather
// than the CLIs so every replay tool derives the identical event
// stream from a verdict — severities, trace ids and quarantine
// transitions included.
type Tally struct {
	perSA map[uint8]*saTally

	VoltAlarms    int
	PreprocFailed int
	PeriodAlarms  int
	TPTransfers   int
	TPErrors      int
	TimingFaults  int
	DM1Reports    int
	Suppressed    int
	Quarantined   bool
	Drifting      bool
	LastAt        float64
}

func NewTally() *Tally { return &Tally{perSA: map[uint8]*saTally{}} }

// Observe folds one replay result into the tally and returns the
// structured events it produced (nil for an unremarkable frame).
// Alarm events are severity-tagged, and on a traced replay every
// event carries the frame's TraceID so event lines join against the
// flight recorder's decision records.
func (t *Tally) Observe(res pipeline.Result) []obs.Event {
	rec, r := res.Record, res.Verdict
	t.LastAt = rec.TimeSec
	sa := uint8(res.Frame.SA())
	c := t.perSA[sa]
	if c == nil {
		c = &saTally{}
		t.perSA[sa] = c
	}
	c.frames++
	c.lastSeen = rec.TimeSec

	traceID := ""
	if res.Trace != nil {
		traceID = res.Trace.ID.String()
	}
	var events []obs.Event
	switch {
	case r.ExtractErr != nil:
		// The voltage verdict is the zero value here — reporting it
		// would claim "ok, dist 0.00" for a frame that never made it
		// through preprocessing. Report the real failure.
		t.PreprocFailed++
		c.voltAlarms++
		if r.Suppressed {
			// The sender is quarantined: count the evidence, skip the
			// per-frame event — that's the alarm spam quarantine exists
			// to coalesce.
			t.Suppressed++
			c.suppressed++
		} else {
			events = append(events, obs.Event{
				TimeSec: rec.TimeSec, Kind: obs.EventPreprocess,
				Severity: tracing.SeverityFor(obs.EventPreprocess), Trace: traceID,
				SA: obs.U8(sa), FrameID: obs.U32(rec.FrameID),
				Detail: r.ExtractErr.Error(),
			})
		}
	case r.Voltage.Anomaly:
		t.VoltAlarms++
		c.voltAlarms++
		if r.Suppressed {
			t.Suppressed++
			c.suppressed++
		} else {
			events = append(events, VoltageEvent(res))
		}
	}
	c.state = r.SAState
	if r.SAState != ids.SAHealthy || r.QuarantineChanged() {
		t.Quarantined = true
	}
	if r.QuarantineChanged() {
		sev := obs.SeverityInfo
		if r.SAState == ids.SADegraded {
			sev = tracing.SeverityFor(obs.EventQuarantine)
		}
		events = append(events, obs.Event{
			TimeSec: rec.TimeSec, Kind: obs.EventQuarantine,
			Severity: sev, Trace: traceID,
			SA: obs.U8(sa), FrameID: obs.U32(rec.FrameID),
			Detail: fmt.Sprintf("%s->%s", r.PrevSAState, r.SAState),
		})
	}
	if r.Timing == ids.PeriodTooEarly {
		t.PeriodAlarms++
		c.timeAlarms++
		events = append(events, obs.Event{
			TimeSec: rec.TimeSec, Kind: obs.EventTiming,
			Severity: tracing.SeverityFor(obs.EventTiming), Trace: traceID,
			SA: obs.U8(sa), FrameID: obs.U32(rec.FrameID),
		})
	}
	if r.TimingErr != nil {
		t.TimingFaults++
	}
	if r.TransferErr != nil {
		t.TPErrors++
		c.tpAlarms++
		events = append(events, obs.Event{
			TimeSec: rec.TimeSec, Kind: obs.EventTransport,
			Severity: tracing.SeverityFor(obs.EventTransport), Trace: traceID,
			SA: obs.U8(sa), FrameID: obs.U32(rec.FrameID),
			Detail: r.TransferErr.Error(),
		})
	}
	if r.Transfer != nil {
		t.TPTransfers++
		if r.Transfer.PGN == canbus.PGNDM1 {
			if lamps, dtcs, err := canbus.DecodeDM1(r.Transfer.Payload); err == nil {
				t.DM1Reports++
				events = append(events, obs.Event{
					TimeSec: rec.TimeSec, Kind: obs.EventDM1,
					Severity: obs.SeverityInfo, Trace: traceID,
					SA: obs.U8(uint8(r.Transfer.SA)), FrameID: obs.U32(rec.FrameID),
					PGN: uint32(r.Transfer.PGN), DTCs: len(dtcs),
					Detail: fmt.Sprintf("lamps=%+v", lamps),
				})
			}
		}
	}
	return events
}

// VoltageEvent renders one voltage verdict as its structured event —
// the shared shape behind busmon's timeline and vprofile's detect and
// fleet logs.
func VoltageEvent(res pipeline.Result) obs.Event {
	d := res.Verdict.Voltage
	traceID := ""
	if res.Trace != nil {
		traceID = res.Trace.ID.String()
	}
	return obs.Event{
		TimeSec: res.Record.TimeSec, Kind: obs.EventVoltage,
		Severity: tracing.SeverityFor(obs.EventVoltage), Trace: traceID,
		SA: obs.U8(uint8(res.Frame.SA())), FrameID: obs.U32(res.Record.FrameID),
		Reason: d.Reason.String(), Dist: d.MinDist, Predict: int(d.Predict),
	}
}

// SetDrift folds an end-of-run drift snapshot into the table. Each SA
// the monitor observed gets its final drift state; SAs the monitor
// never scored (all frames failed preprocessing, say) show "-". A nil
// snapshot (drift off) is a no-op, so callers can pass Summary.Drift
// unconditionally.
func (t *Tally) SetDrift(snap *drift.Snapshot) {
	if snap == nil {
		return
	}
	t.Drifting = true
	for _, st := range snap.SAs {
		c := t.perSA[st.SA]
		if c == nil {
			c = &saTally{}
			t.perSA[st.SA] = c
		}
		c.drift = st.State
	}
}

// TallyRow is one SA's accounting in exportable form — the control
// API's per-SA table. Field meanings match Table's columns.
type TallyRow struct {
	SA         uint8   `json:"sa"`
	Frames     int     `json:"frames"`
	VoltAlarms int     `json:"volt_alarms"`
	TimeAlarms int     `json:"time_alarms"`
	TPAlarms   int     `json:"tp_alarms"`
	Suppressed int     `json:"suppressed,omitempty"`
	State      string  `json:"state,omitempty"`
	Drift      string  `json:"drift,omitempty"`
	LastSeen   float64 `json:"last_seen"`
}

// Rows exports the per-SA table sorted by source address. State is
// populated only on quarantined replays, Drift only when the drift
// layer ran.
func (t *Tally) Rows() []TallyRow {
	sas := make([]int, 0, len(t.perSA))
	for sa := range t.perSA {
		sas = append(sas, int(sa))
	}
	sort.Ints(sas)
	rows := make([]TallyRow, 0, len(sas))
	for _, sa := range sas {
		c := t.perSA[uint8(sa)]
		row := TallyRow{
			SA: uint8(sa), Frames: c.frames,
			VoltAlarms: c.voltAlarms, TimeAlarms: c.timeAlarms, TPAlarms: c.tpAlarms,
			Suppressed: c.suppressed, LastSeen: c.lastSeen,
		}
		if t.Quarantined {
			row.State = c.state.String()
		}
		if t.Drifting {
			row.Drift = c.drift
		}
		rows = append(rows, row)
	}
	return rows
}

// Frames is the total frame count across all SAs.
func (t *Tally) Frames() int {
	n := 0
	for _, c := range t.perSA {
		n += c.frames
	}
	return n
}

// Table renders the per-SA accounting. Every alarm family the summary
// counts is attributed to a source address, so each column sums to
// its summary total: volt = voltage alarms + preprocess failures,
// timing = timing alarms, tp = transport errors. On a quarantined
// replay two more columns appear: supp (coalesced voltage alarms, a
// subset of volt) and the SA's final quarantine state. On a -drift
// replay a drift column carries each SA's final drift state.
func (t *Tally) Table() string {
	sas := make([]int, 0, len(t.perSA))
	for sa := range t.perSA {
		sas = append(sas, int(sa))
	}
	sort.Ints(sas)
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %8s %8s %8s %8s", "SA", "frames", "volt", "timing", "tp")
	if t.Quarantined {
		fmt.Fprintf(&b, " %8s %10s", "supp", "state")
	}
	if t.Drifting {
		fmt.Fprintf(&b, " %7s", "drift")
	}
	fmt.Fprintf(&b, " %10s\n", "last seen")
	for _, sa := range sas {
		c := t.perSA[uint8(sa)]
		fmt.Fprintf(&b, "  %#02x %8d %8d %8d %8d", sa, c.frames, c.voltAlarms, c.timeAlarms, c.tpAlarms)
		if t.Quarantined {
			fmt.Fprintf(&b, " %8d %10s", c.suppressed, c.state)
		}
		if t.Drifting {
			ds := c.drift
			if ds == "" {
				ds = "-"
			}
			fmt.Fprintf(&b, " %7s", ds)
		}
		fmt.Fprintf(&b, " %9.2fs\n", c.lastSeen)
	}
	return b.String()
}
