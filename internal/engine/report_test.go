package engine

import (
	"errors"
	"strings"
	"testing"

	"vprofile/internal/canbus"
	"vprofile/internal/core"
	"vprofile/internal/ids"
	"vprofile/internal/obs"
	"vprofile/internal/pipeline"
	"vprofile/internal/trace"
)

// result builds a synthetic pipeline result for SA sa at time t.
func result(sa uint8, t float64, v ids.CompositeResult) pipeline.Result {
	id := uint32(0x18FEF100) | uint32(sa)
	return pipeline.Result{
		Record:  &trace.Record{TimeSec: t, FrameID: id},
		Frame:   &canbus.ExtendedFrame{ID: id},
		Verdict: v,
	}
}

// TestTallyTableMatchesSummary is the per-SA accounting contract:
// every alarm family the summary counts — voltage anomalies,
// preprocess failures, timing alarms AND transport errors — is
// attributed to a source address, so the table columns sum exactly to
// the summary totals.
func TestTallyTableMatchesSummary(t *testing.T) {
	dm1, err := canbus.EncodeDM1(canbus.LampStatus{AmberWarning: true},
		[]canbus.DTC{{SPN: 100, FMI: 3, OccurrenceCount: 1}})
	if err != nil {
		t.Fatal(err)
	}

	ta := NewTally()
	var events []obs.Event
	feed := func(r pipeline.Result) { events = append(events, ta.Observe(r)...) }

	feed(result(0x10, 1.0, ids.CompositeResult{})) // clean
	feed(result(0x10, 1.1, ids.CompositeResult{
		Voltage: core.Detection{Anomaly: true, Reason: core.ReasonClusterMismatch, Predict: 2, MinDist: 42.5},
	}))
	feed(result(0x20, 1.2, ids.CompositeResult{ExtractErr: errors.New("garbled trace")}))
	feed(result(0x20, 1.3, ids.CompositeResult{Timing: ids.PeriodTooEarly}))
	feed(result(0x30, 1.4, ids.CompositeResult{TransferErr: errors.New("unexpected DT")}))
	feed(result(0x30, 1.5, ids.CompositeResult{TimingErr: errors.New("no training data")}))
	feed(result(0x30, 1.6, ids.CompositeResult{
		Transfer: &canbus.Completed{SA: 0x30, PGN: canbus.PGNDM1, Payload: dm1},
	}))
	// A frame that trips timing and transport at once: both columns
	// must account it.
	feed(result(0x40, 1.7, ids.CompositeResult{
		Timing: ids.PeriodTooEarly, TransferErr: errors.New("length mismatch"),
	}))

	if ta.VoltAlarms != 1 || ta.PreprocFailed != 1 || ta.PeriodAlarms != 2 ||
		ta.TPErrors != 2 || ta.TimingFaults != 1 || ta.TPTransfers != 1 || ta.DM1Reports != 1 {
		t.Fatalf("summary totals wrong: %+v", ta)
	}

	var volt, timing, tp, frames int
	for _, c := range ta.perSA {
		volt += c.voltAlarms
		timing += c.timeAlarms
		tp += c.tpAlarms
		frames += c.frames
	}
	if frames != 8 {
		t.Fatalf("per-SA frames = %d, want 8", frames)
	}
	if want := ta.VoltAlarms + ta.PreprocFailed; volt != want {
		t.Fatalf("per-SA voltage alarms = %d, summary says %d", volt, want)
	}
	if timing != ta.PeriodAlarms {
		t.Fatalf("per-SA timing alarms = %d, summary says %d", timing, ta.PeriodAlarms)
	}
	if tp != ta.TPErrors {
		t.Fatalf("per-SA transport alarms = %d, summary says %d", tp, ta.TPErrors)
	}

	// One event per timeline-worthy occurrence: voltage, preprocess,
	// 2× timing, 2× transport, dm1.
	kinds := map[string]int{}
	for _, e := range events {
		kinds[e.Kind]++
		if e.SA == nil {
			t.Fatalf("event %+v has no SA", e)
		}
	}
	want := map[string]int{
		obs.EventVoltage: 1, obs.EventPreprocess: 1, obs.EventTiming: 2,
		obs.EventTransport: 2, obs.EventDM1: 1,
	}
	for k, n := range want {
		if kinds[k] != n {
			t.Fatalf("event kinds = %v, want %v", kinds, want)
		}
	}
	if len(events) != 7 {
		t.Fatalf("got %d events, want 7", len(events))
	}

	table := ta.Table()
	for _, row := range []string{"0x10", "0x20", "0x30", "0x40"} {
		if !strings.Contains(table, row) {
			t.Fatalf("table missing row %s:\n%s", row, table)
		}
	}
}
