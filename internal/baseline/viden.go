package baseline

import (
	"errors"
	"math"
	"sort"

	"vprofile/internal/analog"
	"vprofile/internal/canbus"
)

// Viden reimplements the attacker-identification scheme of Cho & Shin
// (Section 1.2.1): from each message's non-ACK voltage samples it
// derives *tracking points* — high percentiles of the dominant-state
// voltages — and maintains per-sender voltage profiles from their
// cumulative averages. Classification attributes a message to the
// profile whose tracking points sit closest.
//
// As the paper notes, Viden is an attacker *identifier* layered on an
// existing IDS rather than a detector; Verify therefore accepts a
// message when the nearest profile belongs to the claimed sender and
// its tracking points sit within the profile's trained spread.
type Viden struct {
	Threshold float64 // bus-state threshold in code units
	BitWidth  int
	// Percentiles are the tracking-point quantiles of the dominant
	// voltage distribution (defaults 0.75 and 0.9, Viden's "most
	// frequently measured" upper range).
	Percentiles []float64
	// SpreadK scales the acceptance bound: a message is consistent
	// with a profile when each tracking point is within SpreadK
	// trained standard deviations (default 6).
	SpreadK float64

	saToECU  map[canbus.SourceAddress]int
	profiles [][]float64 // per ECU: mean tracking points
	spreads  [][]float64 // per ECU: tracking-point standard deviations
}

// Name implements Classifier.
func (v *Viden) Name() string { return "Viden" }

// trackingPoints measures the message's dominant-state voltage
// quantiles, excluding the trailing part of the trace where the ACK
// slot (driven by a different ECU) would contaminate the profile —
// Viden's "non-ACK voltage samples".
func (v *Viden) trackingPoints(tr analog.Trace) ([]float64, error) {
	ps := v.Percentiles
	if len(ps) == 0 {
		ps = []float64{0.75, 0.9}
	}
	// First half of the trace only: same ACK-avoidance the paper's
	// Section 5.1 uses.
	half := tr[:len(tr)/2]
	var dom []float64
	for _, s := range half {
		if s >= v.Threshold {
			dom = append(dom, s)
		}
	}
	if len(dom) < 8 {
		return nil, ErrNoStates
	}
	sort.Float64s(dom)
	out := make([]float64, len(ps))
	for i, p := range ps {
		idx := int(p * float64(len(dom)-1))
		out[i] = dom[idx]
	}
	return out, nil
}

// Train implements Classifier.
func (v *Viden) Train(samples []TraceSample, saMap map[canbus.SourceAddress]int) error {
	nClass := 0
	for _, c := range saMap {
		if c+1 > nClass {
			nClass = c + 1
		}
	}
	if nClass < 2 {
		return errors.New("baseline: Viden needs at least two ECUs")
	}
	if v.SpreadK <= 0 {
		v.SpreadK = 6
	}
	nPts := len(v.Percentiles)
	if nPts == 0 {
		nPts = 2
	}
	sums := make([][]float64, nClass)
	sqs := make([][]float64, nClass)
	counts := make([]int, nClass)
	for i := range sums {
		sums[i] = make([]float64, nPts)
		sqs[i] = make([]float64, nPts)
	}
	for _, smp := range samples {
		c, okSA := saMap[smp.SA]
		if !okSA {
			continue
		}
		pts, err := v.trackingPoints(smp.Trace)
		if err != nil {
			return err
		}
		for j, p := range pts {
			sums[c][j] += p
			sqs[c][j] += p * p
		}
		counts[c]++
	}
	v.saToECU = saMap
	v.profiles = make([][]float64, nClass)
	v.spreads = make([][]float64, nClass)
	for c := 0; c < nClass; c++ {
		if counts[c] < 2 {
			return errors.New("baseline: Viden class without enough samples")
		}
		n := float64(counts[c])
		v.profiles[c] = make([]float64, nPts)
		v.spreads[c] = make([]float64, nPts)
		for j := 0; j < nPts; j++ {
			mean := sums[c][j] / n
			variance := sqs[c][j]/n - mean*mean
			if variance < 0 {
				variance = 0
			}
			sd := math.Sqrt(variance)
			if sd < 1e-6 {
				sd = 1e-6
			}
			v.profiles[c][j] = mean
			v.spreads[c][j] = sd
		}
	}
	return nil
}

// Verify implements Classifier.
func (v *Viden) Verify(tr analog.Trace, claimed canbus.SourceAddress) (bool, int, error) {
	if v.profiles == nil {
		return false, -1, errors.New("baseline: Viden not trained")
	}
	c, okSA := v.saToECU[claimed]
	if !okSA {
		return false, -1, nil
	}
	pts, err := v.trackingPoints(tr)
	if err != nil {
		return false, -1, err
	}
	best, bestDist := -1, math.Inf(1)
	for k := range v.profiles {
		var d float64
		for j, p := range pts {
			dz := (p - v.profiles[k][j]) / v.spreads[k][j]
			d += dz * dz
		}
		if d < bestDist {
			best, bestDist = k, d
		}
	}
	// Consistency with the claimed profile.
	within := true
	for j, p := range pts {
		if math.Abs(p-v.profiles[c][j]) > v.SpreadK*v.spreads[c][j] {
			within = false
			break
		}
	}
	return best == c && within, best, nil
}
