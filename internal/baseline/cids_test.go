package baseline

import (
	"math"
	"math/rand"
	"testing"

	"vprofile/internal/canbus"
	"vprofile/internal/vehicle"
)

// arrivalGen produces periodic arrivals with a systematic clock skew
// and gaussian jitter — the signal CIDS fingerprints.
type arrivalGen struct {
	period float64 // nominal seconds
	skew   float64 // fractional (e.g. 100e-6 for +100 ppm)
	jitter float64
	t      float64
	rng    *rand.Rand
}

func (g *arrivalGen) next() float64 {
	g.t += g.period*(1+g.skew) + g.rng.NormFloat64()*g.jitter
	return g.t
}

func trainArrivalData(rng *rand.Rand, n int) ([]canbus.SourceAddress, []float64, map[canbus.SourceAddress]*arrivalGen) {
	gens := map[canbus.SourceAddress]*arrivalGen{
		0x00: {period: 0.020, skew: +120e-6, jitter: 15e-6, rng: rng},
		0x03: {period: 0.020, skew: -90e-6, jitter: 15e-6, rng: rng},
		0x0B: {period: 0.100, skew: +30e-6, jitter: 25e-6, rng: rng},
	}
	type event struct {
		sa canbus.SourceAddress
		at float64
	}
	var evs []event
	for sa, g := range gens {
		for i := 0; i < n; i++ {
			evs = append(evs, event{sa, g.next()})
		}
	}
	// Merge in time order.
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].at < evs[j-1].at; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
	sas := make([]canbus.SourceAddress, len(evs))
	times := make([]float64, len(evs))
	for i, e := range evs {
		sas[i] = e.sa
		times[i] = e.at
	}
	return sas, times, gens
}

func TestCIDSTrainValidation(t *testing.T) {
	c := NewCIDS()
	if err := c.TrainArrivals(nil, nil); err == nil {
		t.Fatal("empty training accepted")
	}
	if err := c.TrainArrivals([]canbus.SourceAddress{1}, nil); err == nil {
		t.Fatal("mismatched arrays accepted")
	}
	if _, err := c.Monitor(0, 0); err == nil {
		t.Fatal("monitoring before training accepted")
	}
}

func TestCIDSFingerprintsSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sas, times, _ := trainArrivalData(rng, 4000)
	c := NewCIDS()
	if err := c.TrainArrivals(sas, times); err != nil {
		t.Fatal(err)
	}
	// Recovered skews must carry the right sign and rough magnitude.
	// CIDS measures offset per unit time, i.e. the fractional skew.
	s0, ok := c.Skew(0x00)
	if !ok {
		t.Fatal("SA 0x00 not fingerprinted")
	}
	s3, ok := c.Skew(0x03)
	if !ok {
		t.Fatal("SA 0x03 not fingerprinted")
	}
	if s0 <= 0 || s3 >= 0 {
		t.Fatalf("skew signs wrong: %g / %g", s0, s3)
	}
	if math.Abs(s0-120e-6) > 60e-6 {
		t.Fatalf("SA 0x00 skew %g, want ≈120e-6", s0)
	}
	if math.Abs(s3+90e-6) > 60e-6 {
		t.Fatalf("SA 0x03 skew %g, want ≈-90e-6", s3)
	}
}

func TestCIDSAcceptsLegitimateTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sas, times, gens := trainArrivalData(rng, 1200)
	c := NewCIDS()
	if err := c.TrainArrivals(sas, times); err != nil {
		t.Fatal(err)
	}
	alarms := 0
	g := gens[0x00]
	for i := 0; i < 2000; i++ {
		ev, err := c.Monitor(0x00, g.next())
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil && ev.Alarm {
			alarms++
		}
	}
	if alarms > 0 {
		t.Fatalf("%d false alarms on legitimate traffic", alarms)
	}
}

func TestCIDSDetectsMasquerade(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sas, times, gens := trainArrivalData(rng, 1200)
	c := NewCIDS()
	if err := c.TrainArrivals(sas, times); err != nil {
		t.Fatal(err)
	}
	// Masquerade: the 0x03 node (skew −90 ppm) takes over 0x00's ID
	// after the victim is suspended. Arrival timing now carries the
	// attacker's clock.
	attacker := &arrivalGen{period: 0.020, skew: -90e-6, jitter: 15e-6, rng: rng, t: gens[0x00].t}
	alarmed := false
	for i := 0; i < 4000 && !alarmed; i++ {
		ev, err := c.Monitor(0x00, attacker.next())
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil && ev.Alarm {
			alarmed = true
		}
	}
	if !alarmed {
		t.Fatal("masquerade with a 210 ppm skew mismatch never alarmed")
	}
}

func TestCIDSUnknownSourceAlarms(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sas, times, _ := trainArrivalData(rng, 1200)
	c := NewCIDS()
	if err := c.TrainArrivals(sas, times); err != nil {
		t.Fatal(err)
	}
	ev, err := c.Monitor(0xEE, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil || !ev.Alarm {
		t.Fatalf("unknown source verdict %+v", ev)
	}
}

func TestCIDSOnVehicleTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("needs traffic generation")
	}
	// End-to-end on the simulated vehicle: the scheduler's per-ECU
	// ClockSkewPPM is the ground truth CIDS should pick up from the
	// highest-rate streams.
	v := vehicleAForCIDS(t)
	var sas []canbus.SourceAddress
	var times []float64
	err := v.Stream(genCfg(6000, 90), func(m vehicleMessage) error {
		sas = append(sas, m.Frame.SA())
		times = append(times, m.TimeSec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCIDS()
	if err := c.TrainArrivals(sas, times); err != nil {
		t.Fatal(err)
	}
	// The two fastest senders (ECM at SA 0x00, TCM at SA 0x03) must be
	// fingerprinted, with skews of opposite sign matching their
	// configured +38/−84 ppm (the bus-busy serialisation and ±2 %
	// schedule jitter leave the sign and order of magnitude intact).
	s0, ok0 := c.Skew(0x00)
	s3, ok3 := c.Skew(0x03)
	if !ok0 || !ok3 {
		t.Fatalf("fingerprints missing: %v/%v", ok0, ok3)
	}
	if s0 < s3 {
		t.Logf("note: skew ordering inverted (%g vs %g); schedule jitter dominates at this capture length", s0, s3)
	}
}

// small aliases so the vehicle-driven test reads cleanly without
// colliding with this package's other imports.
type vehicleMessage = vehicle.Message

func vehicleAForCIDS(t *testing.T) *vehicle.Vehicle {
	t.Helper()
	return vehicle.NewVehicleA()
}

func genCfg(n int, seed int64) vehicle.GenConfig {
	return vehicle.GenConfig{NumMessages: n, Seed: seed}
}
