package baseline

import (
	"errors"
	"math"

	"vprofile/internal/analog"
	"vprofile/internal/dsp"
	"vprofile/internal/linalg"
)

// ErrNoStates is returned when a trace has too few dominant or
// recessive stretches to featurise.
var ErrNoStates = errors.New("baseline: trace has too few bus states")

// stateRuns splits a trace into maximal runs at or above (dominant)
// and below (recessive) the threshold. Runs shorter than minLen
// samples (edge transition residue) are dropped.
func stateRuns(tr analog.Trace, threshold float64, minLen int) (dom, rec [][]float64) {
	i := 0
	for i < len(tr) {
		j := i
		above := tr[i] >= threshold
		for j < len(tr) && (tr[j] >= threshold) == above {
			j++
		}
		if j-i >= minLen {
			run := []float64(tr[i:j])
			if above {
				dom = append(dom, run)
			} else {
				rec = append(rec, run)
			}
		}
		i = j
	}
	return dom, rec
}

// simpleFeatures computes SIMPLE's 16 features: every dominant and
// every recessive state resampled to eight points, then averaged
// sample-wise across states of each polarity.
func simpleFeatures(tr analog.Trace, threshold float64, bitWidth int) (linalg.Vector, error) {
	dom, rec := stateRuns(tr, threshold, bitWidth/2)
	if len(dom) == 0 || len(rec) == 0 {
		return nil, ErrNoStates
	}
	out := make(linalg.Vector, 16)
	for _, runs := range []struct {
		states [][]float64
		offset int
	}{{dom, 0}, {rec, 8}} {
		for _, run := range runs.states {
			pts, err := dsp.ResampleTo(run, 8)
			if err != nil {
				return nil, err
			}
			for k, v := range pts {
				out[runs.offset+k] += v / float64(len(runs.states))
			}
		}
	}
	return out, nil
}

// sectionStats computes the Scission-style statistical features of one
// waveform section: mean, standard deviation, peak-to-peak, energy and
// skewness.
func sectionStats(sec []float64) []float64 {
	n := float64(len(sec))
	if n == 0 {
		return []float64{0, 0, 0, 0, 0}
	}
	var mean float64
	for _, v := range sec {
		mean += v
	}
	mean /= n
	var m2, m3, mn, mx, energy float64
	mn, mx = sec[0], sec[0]
	for _, v := range sec {
		d := v - mean
		m2 += d * d
		m3 += d * d * d
		energy += v * v
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	m2 /= n
	m3 /= n
	sd := math.Sqrt(m2)
	skew := 0.0
	if sd > 0 {
		skew = m3 / (sd * sd * sd)
	}
	return []float64{mean, sd, mx - mn, energy / n, skew}
}

// scissionFeatures derives 15 features from an edge-set-like window:
// five statistics for each of the rising edge, the dominant plateau,
// and the falling edge. The window is located the same way vProfile's
// extractor works, so the comparison isolates the classification
// method.
func scissionFeatures(tr analog.Trace, threshold float64, bitWidth int) (linalg.Vector, error) {
	dom, _ := stateRuns(tr, threshold, bitWidth/2)
	if len(dom) == 0 {
		return nil, ErrNoStates
	}
	// Use the first dominant run after the initial SOF run when
	// available, mirroring "first stable region" extraction.
	run := dom[0]
	if len(dom) > 1 {
		run = dom[1]
	}
	third := len(run) / 3
	if third == 0 {
		third = 1
	}
	rising := run[:third]
	plateau := run[third : len(run)-third]
	if len(plateau) == 0 {
		plateau = run
	}
	falling := run[len(run)-third:]
	var out linalg.Vector
	out = append(out, sectionStats(rising)...)
	out = append(out, sectionStats(plateau)...)
	out = append(out, sectionStats(falling)...)
	return out, nil
}
