// Package baseline implements the voltage-based sender-identification
// methods vProfile is compared against in Section 1.2.1 of the paper:
//
//   - SIMPLE (Foruhandeh et al.): sixteen sample-wise-average features
//     from the dominant and recessive states, Fisher discriminant
//     dimensionality reduction, and per-ECU Mahalanobis thresholds
//     found by binary search for the equal error rate.
//
//   - Scission-style (Kneib & Huth): per-section statistical features
//     (rising edge, dominant plateau, falling edge) classified by
//     multinomial logistic regression.
//
//   - Murvay & Groza: a low-pass-filtered reference fingerprint per
//     ECU, matched by mean square error or by the normalised
//     cross-correlation peak.
//
// All three consume the same preprocessed traces as vProfile so the
// shoot-out in the benchmark harness is apples-to-apples.
package baseline

import (
	"vprofile/internal/analog"
	"vprofile/internal/canbus"
)

// TraceSample is one captured message handed to a classifier: the raw
// code trace, the claimed source address and the ground-truth ECU.
type TraceSample struct {
	Trace analog.Trace
	SA    canbus.SourceAddress
	ECU   int
}

// Classifier is the interface all comparators implement.
type Classifier interface {
	// Name identifies the method in reports.
	Name() string
	// Train fits the classifier. saMap maps source addresses to ECU
	// indices (the "fortunate" clustering database every method in
	// the literature assumes).
	Train(samples []TraceSample, saMap map[canbus.SourceAddress]int) error
	// Verify decides whether a message claiming the given source
	// address is authentic, and reports the predicted sender.
	Verify(tr analog.Trace, claimed canbus.SourceAddress) (ok bool, predictedECU int, err error)
}
