package baseline

import (
	"errors"
	"fmt"
	"math"

	"vprofile/internal/analog"
	"vprofile/internal/canbus"
	"vprofile/internal/linalg"
)

// SIMPLE reimplements the Foruhandeh et al. comparator (Section 1.2.1):
// 16 sample-wise state-average features, Fisher discriminant analysis
// for dimensionality reduction, and per-ECU Mahalanobis distance
// thresholds located by binary search for the equal error rate.
type SIMPLE struct {
	Threshold float64 // bus-state threshold in code units
	BitWidth  int
	// Components caps the Fisher projection dimensionality
	// (default: number of classes − 1).
	Components int

	proj       *linalg.Matrix // FDA projection, components × 16
	saToECU    map[canbus.SourceAddress]int
	means      []linalg.Vector // per-ECU template in projected space
	invCov     *linalg.Matrix  // pooled within-class covariance inverse
	thresholds []float64       // per-ECU EER thresholds
}

// Name implements Classifier.
func (s *SIMPLE) Name() string { return "SIMPLE" }

// Train implements Classifier.
func (s *SIMPLE) Train(samples []TraceSample, saMap map[canbus.SourceAddress]int) error {
	feats, classes, nClass, err := s.featurise(samples, saMap)
	if err != nil {
		return err
	}
	s.saToECU = saMap
	comps := s.Components
	if comps <= 0 || comps > nClass-1 {
		comps = nClass - 1
	}
	if comps < 1 {
		comps = 1
	}
	proj, err := fisherProjection(feats, classes, nClass, comps)
	if err != nil {
		return err
	}
	s.proj = proj

	// Project, then build per-ECU templates and the pooled
	// within-class covariance.
	projected := make([]linalg.Vector, len(feats))
	for i, f := range feats {
		projected[i] = proj.MulVec(f)
	}
	byClass := make([][]linalg.Vector, nClass)
	for i, c := range classes {
		byClass[c] = append(byClass[c], projected[i])
	}
	s.means = make([]linalg.Vector, nClass)
	pooled := linalg.NewMatrix(comps, comps)
	total := 0
	for c, group := range byClass {
		if len(group) == 0 {
			return fmt.Errorf("baseline: SIMPLE class %d has no samples", c)
		}
		s.means[c] = linalg.Mean(group)
		cov := linalg.Covariance(group)
		for i := range pooled.Data {
			pooled.Data[i] += cov.Data[i] * float64(len(group))
		}
		total += len(group)
	}
	pooled.ScaleInPlace(1 / float64(total))
	inv, err := pooled.AddScaledIdentity(1e-9 * math.Max(pooled.SymmetricMaxAbs(), 1)).Inverse()
	if err != nil {
		return fmt.Errorf("baseline: SIMPLE pooled covariance: %w", err)
	}
	s.invCov = inv

	// Per-ECU threshold by binary search for the equal error rate:
	// genuine distances (class c) versus impostor distances (all other
	// classes measured against c's template).
	s.thresholds = make([]float64, nClass)
	for c := range byClass {
		var genuine, impostor []float64
		for i, p := range projected {
			d := linalg.Mahalanobis(p, s.means[c], s.invCov)
			if classes[i] == c {
				genuine = append(genuine, d)
			} else {
				impostor = append(impostor, d)
			}
		}
		s.thresholds[c] = eerThreshold(genuine, impostor)
	}
	return nil
}

// featurise extracts SIMPLE features for every sample with a mapped SA.
func (s *SIMPLE) featurise(samples []TraceSample, saMap map[canbus.SourceAddress]int) ([]linalg.Vector, []int, int, error) {
	if len(samples) == 0 {
		return nil, nil, 0, errors.New("baseline: no training samples")
	}
	nClass := 0
	for _, c := range saMap {
		if c+1 > nClass {
			nClass = c + 1
		}
	}
	if nClass < 2 {
		return nil, nil, 0, errors.New("baseline: SIMPLE needs at least two ECUs")
	}
	var feats []linalg.Vector
	var classes []int
	for _, smp := range samples {
		c, okSA := saMap[smp.SA]
		if !okSA {
			continue
		}
		f, err := simpleFeatures(smp.Trace, s.Threshold, s.BitWidth)
		if err != nil {
			return nil, nil, 0, err
		}
		feats = append(feats, f)
		classes = append(classes, c)
	}
	if len(feats) == 0 {
		return nil, nil, 0, errors.New("baseline: no mapped training samples")
	}
	return feats, classes, nClass, nil
}

// Verify implements Classifier.
func (s *SIMPLE) Verify(tr analog.Trace, claimed canbus.SourceAddress) (bool, int, error) {
	if s.proj == nil {
		return false, -1, errors.New("baseline: SIMPLE not trained")
	}
	c, okSA := s.saToECU[claimed]
	if !okSA {
		return false, -1, nil
	}
	f, err := simpleFeatures(tr, s.Threshold, s.BitWidth)
	if err != nil {
		return false, -1, err
	}
	p := s.proj.MulVec(f)
	best, bestDist := -1, math.Inf(1)
	for k, mean := range s.means {
		if d := linalg.Mahalanobis(p, mean, s.invCov); d < bestDist {
			best, bestDist = k, d
		}
	}
	d := linalg.Mahalanobis(p, s.means[c], s.invCov)
	return d <= s.thresholds[c], best, nil
}

// eerThreshold binary-searches the threshold where the false reject
// rate of genuine distances equals the false accept rate of impostor
// distances.
func eerThreshold(genuine, impostor []float64) float64 {
	if len(genuine) == 0 {
		return 0
	}
	if len(impostor) == 0 {
		return maxOf(genuine)
	}
	lo, hi := 0.0, math.Max(maxOf(genuine), maxOf(impostor))
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		frr := rateAbove(genuine, mid)    // genuine rejected
		far := rateBelowEq(impostor, mid) // impostors accepted
		if frr > far {
			lo = mid // raise threshold to reject fewer genuine
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func rateAbove(xs []float64, t float64) float64 {
	n := 0
	for _, x := range xs {
		if x > t {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

func rateBelowEq(xs []float64, t float64) float64 {
	n := 0
	for _, x := range xs {
		if x <= t {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// fisherProjection computes a multi-class Fisher discriminant
// projection: the top eigenvectors of Sw⁻¹·Sb found by power iteration
// with deflation.
func fisherProjection(feats []linalg.Vector, classes []int, nClass, comps int) (*linalg.Matrix, error) {
	dim := len(feats[0])
	grand := linalg.Mean(feats)
	byClass := make([][]linalg.Vector, nClass)
	for i, c := range classes {
		byClass[c] = append(byClass[c], feats[i])
	}
	sw := linalg.NewMatrix(dim, dim)
	sb := linalg.NewMatrix(dim, dim)
	for _, group := range byClass {
		if len(group) == 0 {
			continue
		}
		mean := linalg.Mean(group)
		cov := linalg.Covariance(group)
		for i := range sw.Data {
			sw.Data[i] += cov.Data[i] * float64(len(group))
		}
		d := mean.Sub(grand)
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				sb.Data[i*dim+j] += float64(len(group)) * d[i] * d[j]
			}
		}
	}
	swInv, err := sw.AddScaledIdentity(1e-9 * math.Max(sw.SymmetricMaxAbs(), 1)).Inverse()
	if err != nil {
		return nil, fmt.Errorf("baseline: within-class scatter: %w", err)
	}
	m := swInv.Mul(sb)

	proj := linalg.NewMatrix(comps, dim)
	deflated := m.Clone()
	for k := 0; k < comps; k++ {
		vec, val := powerIteration(deflated, 300)
		if val <= 0 {
			// Remaining directions carry no between-class scatter.
			for j := 0; j < dim; j++ {
				proj.Set(k, j, 0)
			}
			continue
		}
		for j := 0; j < dim; j++ {
			proj.Set(k, j, vec[j])
		}
		// Deflate: M ← M − λ·v·vᵀ (v normalised).
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				deflated.Data[i*dim+j] -= val * vec[i] * vec[j]
			}
		}
	}
	return proj, nil
}

// powerIteration finds the dominant eigenpair of m.
func powerIteration(m *linalg.Matrix, iters int) (linalg.Vector, float64) {
	dim := m.Rows
	v := make(linalg.Vector, dim)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(dim))
	}
	var val float64
	for it := 0; it < iters; it++ {
		next := m.MulVec(v)
		norm := next.Norm()
		if norm == 0 || math.IsNaN(norm) || math.IsInf(norm, 0) {
			return v, 0
		}
		v = next.Scale(1 / norm)
		val = norm
	}
	return v, val
}
