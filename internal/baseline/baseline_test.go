package baseline

import (
	"testing"

	"vprofile/internal/canbus"
	"vprofile/internal/core"
	"vprofile/internal/vehicle"
)

func vehicleAConfig() (threshold float64, bitWidth int) {
	v := vehicle.NewVehicleA()
	cfg := v.ExtractionConfig()
	return cfg.BitThreshold, cfg.BitWidth
}

func collectA(t *testing.T, n int, seed int64) []TraceSample {
	t.Helper()
	v := vehicle.NewVehicleA()
	samples, err := collect(v, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

func TestStateRuns(t *testing.T) {
	tr := make([]float64, 0, 40)
	for i := 0; i < 10; i++ {
		tr = append(tr, 0)
	}
	for i := 0; i < 12; i++ {
		tr = append(tr, 100)
	}
	for i := 0; i < 10; i++ {
		tr = append(tr, 0)
	}
	dom, rec := stateRuns(tr, 50, 4)
	if len(dom) != 1 || len(dom[0]) != 12 {
		t.Fatalf("dominant runs %v", dom)
	}
	if len(rec) != 2 {
		t.Fatalf("recessive runs %d", len(rec))
	}
	// Short glitches below minLen are dropped.
	dom, _ = stateRuns([]float64{0, 0, 100, 0, 0}, 50, 2)
	if len(dom) != 0 {
		t.Fatalf("glitch not dropped: %v", dom)
	}
}

func TestSimpleFeaturesShape(t *testing.T) {
	th, bw := vehicleAConfig()
	samples := collectA(t, 5, 41)
	f, err := simpleFeatures(samples[0].Trace, th, bw)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 16 {
		t.Fatalf("%d features", len(f))
	}
	// Dominant averages (first 8) must sit above recessive (last 8).
	for i := 0; i < 8; i++ {
		if f[i] <= f[8+i] {
			t.Fatalf("dominant feature %d (%v) not above recessive (%v)", i, f[i], f[8+i])
		}
	}
	if _, err := simpleFeatures(make([]float64, 100), th, bw); err == nil {
		t.Fatal("flat trace accepted")
	}
}

func TestScissionFeaturesShape(t *testing.T) {
	th, bw := vehicleAConfig()
	samples := collectA(t, 3, 42)
	f, err := scissionFeatures(samples[0].Trace, th, bw)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 15 {
		t.Fatalf("%d features", len(f))
	}
}

func classifierSuite(t *testing.T, c Classifier) {
	t.Helper()
	v := vehicle.NewVehicleA()
	train := collectA(t, 900, 43)
	if err := c.Train(train, v.SAMap()); err != nil {
		t.Fatalf("%s: %v", c.Name(), err)
	}
	test := collectA(t, 400, 44)

	// Identification: the predicted ECU should usually match the
	// ground truth on this easy, well-separated vehicle.
	correct, accepted := 0, 0
	for _, smp := range test {
		ok, pred, err := c.Verify(smp.Trace, smp.SA)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if pred == smp.ECU {
			correct++
		}
		if ok {
			accepted++
		}
	}
	if frac := float64(correct) / float64(len(test)); frac < 0.90 {
		t.Errorf("%s identification rate %.3f", c.Name(), frac)
	}
	if frac := float64(accepted) / float64(len(test)); frac < 0.80 {
		t.Errorf("%s acceptance rate %.3f on legitimate traffic", c.Name(), frac)
	}

	// Hijack: ECU 0's waveform claiming ECU 2's SA must be rejected
	// most of the time (those two are far apart on Vehicle A).
	sa2 := v.ECUs[2].SAs()[0]
	rejected := 0
	nAttack := 0
	for _, smp := range test {
		if smp.ECU != 0 {
			continue
		}
		nAttack++
		ok, _, err := c.Verify(smp.Trace, sa2)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			rejected++
		}
	}
	if nAttack == 0 {
		t.Fatal("no ECU 0 traffic in the test capture")
	}
	if frac := float64(rejected) / float64(nAttack); frac < 0.90 {
		t.Errorf("%s hijack rejection rate %.3f", c.Name(), frac)
	}

	// Unknown SA is never accepted.
	if ok, _, err := c.Verify(test[0].Trace, 0xEE); err != nil || ok {
		t.Errorf("%s accepted an unknown SA (ok=%v err=%v)", c.Name(), ok, err)
	}
}

func TestSIMPLEClassifier(t *testing.T) {
	if testing.Short() {
		t.Skip("classifier suites need traffic")
	}
	th, bw := vehicleAConfig()
	classifierSuite(t, &SIMPLE{Threshold: th, BitWidth: bw})
}

func TestScissionClassifier(t *testing.T) {
	if testing.Short() {
		t.Skip("classifier suites need traffic")
	}
	th, bw := vehicleAConfig()
	classifierSuite(t, &Scission{Threshold: th, BitWidth: bw, Seed: 5})
}

func TestMurvayMSEClassifier(t *testing.T) {
	if testing.Short() {
		t.Skip("classifier suites need traffic")
	}
	th, bw := vehicleAConfig()
	classifierSuite(t, &Murvay{Threshold: th, BitWidth: bw, Mode: MurvayMSE})
}

func TestVProfileAdapter(t *testing.T) {
	if testing.Short() {
		t.Skip("classifier suites need traffic")
	}
	v := vehicle.NewVehicleA()
	classifierSuite(t, &VProfile{Extraction: v.ExtractionConfig(), Metric: core.Mahalanobis, Margin: 40})
}

func TestClassifiersRejectUntrainedUse(t *testing.T) {
	th, bw := vehicleAConfig()
	for _, c := range []Classifier{
		&SIMPLE{Threshold: th, BitWidth: bw},
		&Scission{Threshold: th, BitWidth: bw},
		&Murvay{Threshold: th, BitWidth: bw},
		&VProfile{},
	} {
		if _, _, err := c.Verify(make([]float64, 10), 0); err == nil {
			t.Errorf("%s allowed Verify before Train", c.Name())
		}
	}
}

func TestClassifiersRejectDegenerateTraining(t *testing.T) {
	th, bw := vehicleAConfig()
	single := map[canbus.SourceAddress]int{0: 0}
	for _, c := range []Classifier{
		&SIMPLE{Threshold: th, BitWidth: bw},
		&Scission{Threshold: th, BitWidth: bw},
		&Murvay{Threshold: th, BitWidth: bw},
	} {
		if err := c.Train(nil, single); err == nil {
			t.Errorf("%s accepted a single-class problem", c.Name())
		}
	}
}
