package baseline

import (
	"errors"
	"fmt"
	"math"

	"vprofile/internal/analog"
	"vprofile/internal/canbus"
	"vprofile/internal/dsp"
	"vprofile/internal/linalg"
)

// Choi reimplements the method of Choi, Jo, Woo, Chun & Park
// (Section 1.2.1): per-message features in both the time domain and —
// uniquely among the comparators — the frequency domain, ranked and
// combined into a 17-feature vector for a supervised classifier. The
// paper criticises its per-message feature extraction cost (1.02 ms,
// during which two frames pass); BenchmarkBaselines shows the same
// relative cost ordering here, since the FFT dominates.
//
// Classification uses per-class Gaussian templates with a pooled
// diagonal covariance (a supervised quadratic-discriminant
// simplification); a message is accepted when the claimed class is
// the likeliest and its Mahalanobis-like score clears the trained
// per-class bound.
type Choi struct {
	Threshold float64
	BitWidth  int
	// BoundK scales the per-class acceptance bound in standard
	// deviations of training scores (default 4).
	BoundK float64

	saToECU map[canbus.SourceAddress]int
	means   []linalg.Vector
	invVar  linalg.Vector // pooled inverse variances (diagonal)
	bounds  []float64
}

// Name implements Classifier.
func (c *Choi) Name() string { return "Choi-TimeFreq" }

// features computes 8 time-domain and 9 frequency-domain statistics of
// the first stable dominant region — 17 features, as in the original.
func (c *Choi) features(tr analog.Trace) (linalg.Vector, error) {
	dom, _ := stateRuns(tr, c.Threshold, c.BitWidth/2)
	if len(dom) == 0 {
		return nil, ErrNoStates
	}
	run := dom[0]
	if len(dom) > 1 {
		run = dom[1]
	}

	// Time domain (8): mean, stddev, peak-to-peak, energy, skewness,
	// RMS of the first difference, max of |first difference|, length.
	st := sectionStats(run)
	var diffRMS, diffMax float64
	for i := 1; i < len(run); i++ {
		d := run[i] - run[i-1]
		diffRMS += d * d
		if a := math.Abs(d); a > diffMax {
			diffMax = a
		}
	}
	if len(run) > 1 {
		diffRMS = math.Sqrt(diffRMS / float64(len(run)-1))
	}
	out := linalg.Vector{st[0], st[1], st[2], st[3], st[4], diffRMS, diffMax, float64(len(run))}

	// Frequency domain (9): total power, centroid, spread, rolloff,
	// flatness, peak bin, peak power, low-band and high-band shares.
	ps, err := dsp.PowerSpectrum(run)
	if err != nil {
		return nil, err
	}
	f := dsp.AnalyzeSpectrum(ps)
	var total, low, high, peakP float64
	for i, p := range ps {
		total += p
		if i < len(ps)/4 {
			low += p
		} else if i >= len(ps)/2 {
			high += p
		}
		if p > peakP {
			peakP = p
		}
	}
	if total <= 0 {
		total = 1
	}
	out = append(out, total, f.Centroid, f.Spread, f.Rolloff85, f.Flatness, f.Peak, peakP, low/total, high/total)
	return out, nil
}

// Train implements Classifier.
func (c *Choi) Train(samples []TraceSample, saMap map[canbus.SourceAddress]int) error {
	if c.BoundK <= 0 {
		c.BoundK = 4
	}
	nClass := 0
	for _, cl := range saMap {
		if cl+1 > nClass {
			nClass = cl + 1
		}
	}
	if nClass < 2 {
		return errors.New("baseline: Choi needs at least two ECUs")
	}
	byClass := make([][]linalg.Vector, nClass)
	for _, smp := range samples {
		cl, okSA := saMap[smp.SA]
		if !okSA {
			continue
		}
		f, err := c.features(smp.Trace)
		if err != nil {
			return err
		}
		byClass[cl] = append(byClass[cl], f)
	}
	c.saToECU = saMap
	c.means = make([]linalg.Vector, nClass)
	var dim int
	for cl, group := range byClass {
		if len(group) < 2 {
			return fmt.Errorf("baseline: Choi class %d has %d samples", cl, len(group))
		}
		c.means[cl] = linalg.Mean(group)
		dim = len(c.means[cl])
	}
	// Pooled diagonal variances.
	pooled := make(linalg.Vector, dim)
	total := 0
	for cl, group := range byClass {
		for _, f := range group {
			for j := range f {
				d := f[j] - c.means[cl][j]
				pooled[j] += d * d
			}
		}
		total += len(group)
	}
	c.invVar = make(linalg.Vector, dim)
	for j := range pooled {
		v := pooled[j] / float64(total)
		if v < 1e-12 {
			v = 1e-12
		}
		c.invVar[j] = 1 / v
	}
	// Per-class score bounds from training scores.
	c.bounds = make([]float64, nClass)
	for cl, group := range byClass {
		var scores []float64
		for _, f := range group {
			scores = append(scores, c.score(f, cl))
		}
		mean, sd := meanStd(scores)
		c.bounds[cl] = mean + c.BoundK*sd
	}
	return nil
}

// score is the whitened squared distance to a class template.
func (c *Choi) score(f linalg.Vector, class int) float64 {
	var s float64
	for j := range f {
		d := f[j] - c.means[class][j]
		s += d * d * c.invVar[j]
	}
	return s
}

func meanStd(xs []float64) (mean, sd float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= n
	var v float64
	for _, x := range xs {
		d := x - mean
		v += d * d
	}
	return mean, math.Sqrt(v / n)
}

// Verify implements Classifier.
func (c *Choi) Verify(tr analog.Trace, claimed canbus.SourceAddress) (bool, int, error) {
	if c.means == nil {
		return false, -1, errors.New("baseline: Choi not trained")
	}
	cl, okSA := c.saToECU[claimed]
	if !okSA {
		return false, -1, nil
	}
	f, err := c.features(tr)
	if err != nil {
		return false, -1, err
	}
	best, bestScore := -1, math.Inf(1)
	for k := range c.means {
		if s := c.score(f, k); s < bestScore {
			best, bestScore = k, s
		}
	}
	return best == cl && c.score(f, cl) <= c.bounds[cl], best, nil
}
