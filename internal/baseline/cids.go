package baseline

import (
	"errors"
	"fmt"
	"math"

	"vprofile/internal/canbus"
)

// CIDS implements the clock-based intrusion detection of Cho & Shin
// (Section 1.2.2): periodic messages arrive with deviations that
// accumulate into a per-sender clock offset; the offset's slope — the
// sender's clock skew — is estimated with recursive least squares and
// fingerprints the transmitter. A masquerading node cannot reproduce
// the victim's skew, so the identification error jumps and a CUSUM
// detector raises an alarm.
//
// CIDS consumes message timestamps, not voltage traces; it is the
// timing-domain counterpart the paper contrasts vProfile against.
type CIDS struct {
	// BatchSize is the number of inter-arrival samples per offset
	// estimate (the paper's N, 20 by default).
	BatchSize int
	// Lambda is the RLS forgetting factor (default 0.9995).
	Lambda float64
	// Kappa and Threshold parameterise the two-sided CUSUM on the
	// normalised identification error (defaults 0.5 and 10): a small
	// reference drift accumulates the sub-sigma per-batch shift a
	// masquerading clock produces.
	Kappa     float64
	Threshold float64

	streams map[canbus.SourceAddress]*cidsStream
}

// cidsStream is the per-source tracking state.
type cidsStream struct {
	period float64 // nominal period (snapped to the schedule grid)

	lastArrival float64
	firstGaps   []float64 // gaps collected before the period locks
	batch       []float64 // inter-arrival gaps of the current batch

	elapsed float64 // time since tracking started
	accOff  float64 // accumulated clock offset (seconds)

	// RLS state for the scalar regression accOff ≈ skew · elapsed.
	skew float64
	p    float64

	// Training history for frozen residual statistics.
	history []batchPoint

	// Fingerprint captured at the end of training.
	refSkew float64
	sigma   float64 // residual std-dev, frozen at training
	trained bool
	batches int

	cusumPos float64
	cusumNeg float64
}

type batchPoint struct {
	offInc float64
	span   float64
}

// CIDSEvent is the verdict for one batch of messages from one source.
type CIDSEvent struct {
	SA       canbus.SourceAddress
	Skew     float64 // current RLS skew estimate (fractional)
	Alarm    bool
	CUSUMPos float64
	CUSUMNeg float64
}

// NewCIDS returns a detector with usable defaults.
func NewCIDS() *CIDS {
	return &CIDS{BatchSize: 20, Lambda: 0.9995, Kappa: 0.5, Threshold: 10}
}

// TrainArrivals fits per-source skew fingerprints from timestamped
// legitimate traffic: (sa, arrival seconds) pairs in time order.
func (c *CIDS) TrainArrivals(sas []canbus.SourceAddress, times []float64) error {
	if len(sas) != len(times) {
		return errors.New("baseline: CIDS arrival arrays differ in length")
	}
	if len(sas) == 0 {
		return errors.New("baseline: CIDS needs training arrivals")
	}
	c.streams = make(map[canbus.SourceAddress]*cidsStream)
	for i := range sas {
		c.observe(sas[i], times[i], nil)
	}
	trained := 0
	for _, st := range c.streams {
		if st.batches < 4 {
			continue
		}
		st.refSkew = st.skew
		// Frozen residual statistics against the final fingerprint.
		var sum, sumSq float64
		for _, h := range st.history {
			r := h.offInc - st.refSkew*h.span
			sum += r
			sumSq += r * r
		}
		n := float64(len(st.history))
		mean := sum / n
		st.sigma = math.Sqrt(sumSq/n - mean*mean)
		if st.sigma < 1e-9 {
			st.sigma = 1e-9
		}
		st.trained = true
		trained++
	}
	if trained == 0 {
		return fmt.Errorf("baseline: CIDS saw no source often enough to fingerprint (batch size %d)", c.BatchSize)
	}
	return nil
}

// Monitor feeds one live message and reports a batch verdict when a
// batch completes (nil otherwise). Unknown sources return an immediate
// alarm event.
func (c *CIDS) Monitor(sa canbus.SourceAddress, at float64) (*CIDSEvent, error) {
	if c.streams == nil {
		return nil, errors.New("baseline: CIDS not trained")
	}
	if _, known := c.streams[sa]; !known {
		return &CIDSEvent{SA: sa, Alarm: true}, nil
	}
	var ev *CIDSEvent
	c.observe(sa, at, &ev)
	return ev, nil
}

// snapPeriod rounds an observed average gap onto the 1/2/2.5/5 ×10^k
// scheduling grid the receiver knows from the message catalogue
// (periodic CAN traffic is scheduled at round intervals; the real CIDS
// likewise assumes the nominal period is known).
func snapPeriod(avg float64) float64 {
	if avg <= 0 {
		return avg
	}
	exp := math.Floor(math.Log10(avg))
	base := math.Pow(10, exp)
	best, bestDiff := avg, math.Inf(1)
	for _, m := range []float64{1, 2, 2.5, 5, 10} {
		cand := m * base
		if d := math.Abs(cand - avg); d < bestDiff {
			best, bestDiff = cand, d
		}
	}
	return best
}

// observe updates the per-source stream; when monitoring (evOut
// non-nil) it also drives the CUSUM.
func (c *CIDS) observe(sa canbus.SourceAddress, at float64, evOut **CIDSEvent) {
	st, ok := c.streams[sa]
	if !ok {
		st = &cidsStream{p: 1e6, lastArrival: at}
		c.streams[sa] = st
		return
	}
	gap := at - st.lastArrival
	st.lastArrival = at
	if gap <= 0 {
		return
	}
	if st.period == 0 {
		// Lock the nominal period from the first batch of gaps.
		st.firstGaps = append(st.firstGaps, gap)
		if len(st.firstGaps) < c.BatchSize {
			return
		}
		var sum float64
		for _, g := range st.firstGaps {
			sum += g
		}
		st.period = snapPeriod(sum / float64(len(st.firstGaps)))
		st.firstGaps = nil
		return
	}
	st.batch = append(st.batch, gap)
	if len(st.batch) < c.BatchSize {
		return
	}

	// Batch complete: the average deviation from the nominal period is
	// this batch's clock-offset increment.
	var sum float64
	for _, g := range st.batch {
		sum += g
	}
	mean := sum / float64(len(st.batch))
	span := sum
	offInc := (mean - st.period) * float64(len(st.batch))
	st.batch = st.batch[:0]
	st.elapsed += span
	st.accOff += offInc
	st.batches++

	// RLS update of accOff ≈ skew·elapsed.
	x := st.elapsed
	e := st.accOff - st.skew*x
	den := c.Lambda + x*st.p*x
	g := st.p * x / den
	st.skew += g * e
	st.p = (st.p - g*x*st.p) / c.Lambda

	if !st.trained {
		st.history = append(st.history, batchPoint{offInc: offInc, span: span})
		if len(st.history) > 512 {
			st.history = st.history[1:]
		}
		return
	}
	if evOut == nil {
		return
	}
	// Identification error: deviation of the batch offset increment
	// from what the fingerprinted skew predicts, normalised by the
	// frozen training residual spread.
	ident := offInc - st.refSkew*span
	z := ident / st.sigma
	st.cusumPos = math.Max(0, st.cusumPos+z-c.Kappa)
	st.cusumNeg = math.Max(0, st.cusumNeg-z-c.Kappa)
	alarm := st.cusumPos > c.Threshold || st.cusumNeg > c.Threshold
	*evOut = &CIDSEvent{SA: sa, Skew: st.skew, Alarm: alarm, CUSUMPos: st.cusumPos, CUSUMNeg: st.cusumNeg}
}

// Skew returns the current skew estimate for a source (after training
// this is its fingerprint).
func (c *CIDS) Skew(sa canbus.SourceAddress) (float64, bool) {
	st, ok := c.streams[sa]
	if !ok {
		return 0, false
	}
	return st.skew, st.trained
}
