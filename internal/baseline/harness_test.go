package baseline

import (
	"testing"

	"vprofile/internal/core"
	"vprofile/internal/vehicle"
)

func TestShootoutComparesMethods(t *testing.T) {
	if testing.Short() {
		t.Skip("shoot-out needs traffic")
	}
	v := vehicle.NewVehicleA()
	cfg := v.ExtractionConfig()
	classifiers := []Classifier{
		&VProfile{Extraction: cfg, Metric: core.Mahalanobis, Margin: 8},
		&SIMPLE{Threshold: cfg.BitThreshold, BitWidth: cfg.BitWidth},
		&Scission{Threshold: cfg.BitThreshold, BitWidth: cfg.BitWidth, Seed: 9},
		&Murvay{Threshold: cfg.BitThreshold, BitWidth: cfg.BitWidth, Mode: MurvayMSE},
	}
	rows, err := Shootout(v, classifiers, 1200, 1200, 77)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(classifiers) {
		t.Fatalf("%d rows", len(rows))
	}
	var vprofileF, murvayF float64
	for _, r := range rows {
		t.Logf("%-22s FP acc=%.5f hijack F=%.5f foreign recall=%.5f", r.Name, r.FP.Accuracy(), r.Hijack.FScore(), r.Foreign.Recall())
		if r.FP.Total() != 1200 || r.Hijack.Total() != 1200 {
			t.Fatalf("%s totals wrong: %d/%d", r.Name, r.FP.Total(), r.Hijack.Total())
		}
		switch r.Name {
		case "vProfile-mahalanobis":
			vprofileF = r.Hijack.FScore()
		case "Murvay-MSE":
			murvayF = r.Hijack.FScore()
		}
	}
	// The paper's qualitative claim: vProfile beats the earliest
	// fingerprinting method (Murvay & Groza's high misclassification
	// rates) and is at least competitive overall.
	if vprofileF < 0.99 {
		t.Errorf("vProfile hijack F %.4f below 0.99", vprofileF)
	}
	if vprofileF < murvayF {
		t.Errorf("vProfile (%.4f) does not beat Murvay (%.4f)", vprofileF, murvayF)
	}
}
