package baseline

import (
	"fmt"
	"math/rand"

	"vprofile/internal/analog"
	"vprofile/internal/canbus"
	"vprofile/internal/core"
	"vprofile/internal/edgeset"
	"vprofile/internal/stats"
	"vprofile/internal/vehicle"
)

// VProfile adapts the paper's own detector to the Classifier interface
// so the shoot-out compares it directly against the related work.
type VProfile struct {
	Extraction edgeset.Config
	Metric     core.Metric
	Margin     float64

	model *core.Model
}

// Name implements Classifier.
func (v *VProfile) Name() string { return "vProfile-" + v.Metric.String() }

// Train implements Classifier.
func (v *VProfile) Train(samples []TraceSample, saMap map[canbus.SourceAddress]int) error {
	var cs []core.Sample
	for _, smp := range samples {
		res, err := edgeset.Extract(smp.Trace, v.Extraction)
		if err != nil {
			return err
		}
		cs = append(cs, core.Sample{SA: res.SA, Set: res.Set})
	}
	m, err := core.Train(cs, core.TrainConfig{Metric: v.Metric, SAMap: saMap, Margin: v.Margin})
	if err != nil {
		return err
	}
	v.model = m
	return nil
}

// Verify implements Classifier.
func (v *VProfile) Verify(tr analog.Trace, claimed canbus.SourceAddress) (bool, int, error) {
	if v.model == nil {
		return false, -1, fmt.Errorf("baseline: vProfile not trained")
	}
	res, err := edgeset.Extract(tr, v.Extraction)
	if err != nil {
		return false, -1, err
	}
	d := v.model.Detect(claimed, res.Set)
	return !d.Anomaly, int(d.Predict), nil
}

// ShootoutRow is one classifier's scores in a comparison run.
type ShootoutRow struct {
	Name    string
	FP      stats.ConfusionMatrix // unmodified traffic
	Hijack  stats.ConfusionMatrix // 20 % forged source addresses
	Foreign stats.ConfusionMatrix // foreign-device injections
}

// Shootout trains every classifier on the same capture and evaluates
// the false positive and hijack tests on a shared test capture — the
// cross-method comparison the related-work section motivates.
func Shootout(v *vehicle.Vehicle, classifiers []Classifier, nTrain, nTest int, seed int64) ([]ShootoutRow, error) {
	saMap := v.SAMap()
	train, err := collect(v, nTrain, seed)
	if err != nil {
		return nil, err
	}
	test, err := collect(v, nTest, seed+1)
	if err != nil {
		return nil, err
	}

	// Pre-compute the hijack relabelling once so every classifier sees
	// the identical attack stream.
	rng := rand.New(rand.NewSource(seed + 2))
	forged := make([]canbus.SourceAddress, len(test))
	isAttack := make([]bool, len(test))
	allSAs := make([]canbus.SourceAddress, 0, len(saMap))
	for sa := range saMap {
		allSAs = append(allSAs, sa)
	}
	for i := range test {
		forged[i] = test[i].SA
		if rng.Float64() < 0.20 {
			own := saMap[test[i].SA]
			var cands []canbus.SourceAddress
			for _, sa := range allSAs {
				if saMap[sa] != own {
					cands = append(cands, sa)
				}
			}
			if len(cands) > 0 {
				forged[i] = cands[rng.Intn(len(cands))]
				isAttack[i] = true
			}
		}
	}

	// Foreign test stream: a device imitating ECU 0, injected among
	// clean traffic (shared across classifiers).
	foreign, err := foreignStream(v, nTest/4, seed+3)
	if err != nil {
		return nil, err
	}

	var rows []ShootoutRow
	for _, c := range classifiers {
		if err := c.Train(train, saMap); err != nil {
			return nil, fmt.Errorf("baseline: training %s: %w", c.Name(), err)
		}
		row := ShootoutRow{Name: c.Name()}
		for i := range test {
			ok, _, err := c.Verify(test[i].Trace, test[i].SA)
			if err != nil {
				return nil, fmt.Errorf("baseline: %s verify: %w", c.Name(), err)
			}
			row.FP.Add(false, !ok)
			okH, _, err := c.Verify(test[i].Trace, forged[i])
			if err != nil {
				return nil, err
			}
			row.Hijack.Add(isAttack[i], !okH)
		}
		for _, f := range foreign {
			ok, _, err := c.Verify(f.Trace, f.SA)
			if err != nil {
				return nil, err
			}
			row.Foreign.Add(true, !ok)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// foreignStream renders frames from a device imitating ECU 0's
// identity with attacker-grade hardware: the best-effort clone plus
// ordinary COTS tolerance, matching the attack package's scenario.
func foreignStream(v *vehicle.Vehicle, n int, seed int64) ([]TraceSample, error) {
	victim := v.ECUs[0]
	imposter := vehicle.ForeignDevice(victim.Transceiver)
	imposter.VDom += 0.04
	imposter.TauRise *= 1.05
	cap, err := v.GenerateForeign(imposter, victim, vehicle.GenConfig{NumMessages: n, Seed: seed})
	if err != nil {
		return nil, err
	}
	out := make([]TraceSample, 0, n)
	for _, m := range cap.Messages {
		out = append(out, TraceSample{Trace: m.Trace, SA: m.Frame.SA(), ECU: -1})
	}
	return out, nil
}

// collect renders traffic into TraceSamples.
func collect(v *vehicle.Vehicle, n int, seed int64) ([]TraceSample, error) {
	out := make([]TraceSample, 0, n)
	err := v.Stream(vehicle.GenConfig{NumMessages: n, Seed: seed}, func(m vehicle.Message) error {
		out = append(out, TraceSample{Trace: m.Trace, SA: m.Frame.SA(), ECU: m.ECUIndex})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
