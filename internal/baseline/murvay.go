package baseline

import (
	"errors"
	"math"

	"vprofile/internal/analog"
	"vprofile/internal/canbus"
	"vprofile/internal/dsp"
	"vprofile/internal/linalg"
)

// MurvayMode selects which of Murvay & Groza's matching statistics is
// used for classification.
type MurvayMode int

// Matching statistics from the original paper.
const (
	MurvayMSE MurvayMode = iota
	MurvayConvolution
	MurvayMeanValue
)

// Murvay reimplements the earliest voltage fingerprinting comparator
// (Section 1.2.1): a low-pass-filtered reference waveform per ECU,
// matched by mean square error, by the normalised cross-correlation
// ("convolution") peak, or by the mean value.
type Murvay struct {
	Threshold float64 // bus-state threshold in code units
	BitWidth  int
	Mode      MurvayMode
	// FilterLen is the moving-average low-pass length (default 4).
	FilterLen int
	// FingerprintLen standardises reference lengths (default 64).
	FingerprintLen int

	saToECU      map[canbus.SourceAddress]int
	fingerprints []linalg.Vector
	meanValues   []float64
	accept       []float64 // per-ECU acceptance bound on the statistic
}

// Name implements Classifier.
func (m *Murvay) Name() string {
	switch m.Mode {
	case MurvayConvolution:
		return "Murvay-Conv"
	case MurvayMeanValue:
		return "Murvay-Mean"
	default:
		return "Murvay-MSE"
	}
}

// fingerprintOf extracts the filtered, length-normalised waveform of
// the first dominant stretch after SOF.
func (m *Murvay) fingerprintOf(tr analog.Trace) (linalg.Vector, float64, error) {
	fl := m.FilterLen
	if fl <= 0 {
		fl = 4
	}
	fpLen := m.FingerprintLen
	if fpLen <= 0 {
		fpLen = 64
	}
	filtered, err := dsp.MovingAverage(tr, fl)
	if err != nil {
		return nil, 0, err
	}
	dom, _ := stateRuns(filtered, m.Threshold, m.BitWidth/2)
	if len(dom) == 0 {
		return nil, 0, ErrNoStates
	}
	run := dom[0]
	fp, err := dsp.ResampleTo(run, fpLen)
	if err != nil {
		return nil, 0, err
	}
	var mean float64
	for _, v := range run {
		mean += v
	}
	mean /= float64(len(run))
	return fp, mean, nil
}

// Train implements Classifier.
func (m *Murvay) Train(samples []TraceSample, saMap map[canbus.SourceAddress]int) error {
	nClass := 0
	for _, c := range saMap {
		if c+1 > nClass {
			nClass = c + 1
		}
	}
	if nClass < 2 {
		return errors.New("baseline: Murvay needs at least two ECUs")
	}
	sums := make([]linalg.Vector, nClass)
	meanSums := make([]float64, nClass)
	counts := make([]int, nClass)
	var perSample []struct {
		class int
		fp    linalg.Vector
		mean  float64
	}
	for _, smp := range samples {
		c, okSA := saMap[smp.SA]
		if !okSA {
			continue
		}
		fp, mv, err := m.fingerprintOf(smp.Trace)
		if err != nil {
			return err
		}
		if sums[c] == nil {
			sums[c] = make(linalg.Vector, len(fp))
		}
		for j, v := range fp {
			sums[c][j] += v
		}
		meanSums[c] += mv
		counts[c]++
		perSample = append(perSample, struct {
			class int
			fp    linalg.Vector
			mean  float64
		}{c, fp, mv})
	}
	m.saToECU = saMap
	m.fingerprints = make([]linalg.Vector, nClass)
	m.meanValues = make([]float64, nClass)
	for c := 0; c < nClass; c++ {
		if counts[c] == 0 {
			return errors.New("baseline: Murvay class without samples")
		}
		m.fingerprints[c] = sums[c].Scale(1 / float64(counts[c]))
		m.meanValues[c] = meanSums[c] / float64(counts[c])
	}
	// Acceptance bound per class: the worst genuine training statistic
	// (largest MSE / mean deviation, smallest correlation).
	m.accept = make([]float64, nClass)
	for c := range m.accept {
		if m.Mode == MurvayConvolution {
			m.accept[c] = math.Inf(1)
		}
	}
	for _, ps := range perSample {
		stat, err := m.statistic(ps.fp, ps.mean, ps.class)
		if err != nil {
			return err
		}
		switch m.Mode {
		case MurvayConvolution:
			if stat < m.accept[ps.class] {
				m.accept[ps.class] = stat
			}
		default:
			if stat > m.accept[ps.class] {
				m.accept[ps.class] = stat
			}
		}
	}
	return nil
}

// statistic evaluates the matching statistic of a fingerprint against
// one class reference. Lower is better for MSE and mean value; higher
// is better for correlation.
func (m *Murvay) statistic(fp linalg.Vector, meanVal float64, class int) (float64, error) {
	switch m.Mode {
	case MurvayConvolution:
		return dsp.CrossCorrelationPeak(m.fingerprints[class], fp)
	case MurvayMeanValue:
		return math.Abs(meanVal - m.meanValues[class]), nil
	default:
		return dsp.MSE(fp, m.fingerprints[class])
	}
}

// Verify implements Classifier.
func (m *Murvay) Verify(tr analog.Trace, claimed canbus.SourceAddress) (bool, int, error) {
	if m.fingerprints == nil {
		return false, -1, errors.New("baseline: Murvay not trained")
	}
	c, okSA := m.saToECU[claimed]
	if !okSA {
		return false, -1, nil
	}
	fp, mv, err := m.fingerprintOf(tr)
	if err != nil {
		return false, -1, err
	}
	best := -1
	bestStat := math.Inf(1)
	if m.Mode == MurvayConvolution {
		bestStat = math.Inf(-1)
	}
	for k := range m.fingerprints {
		stat, err := m.statistic(fp, mv, k)
		if err != nil {
			return false, -1, err
		}
		better := stat < bestStat
		if m.Mode == MurvayConvolution {
			better = stat > bestStat
		}
		if better {
			best, bestStat = k, stat
		}
	}
	claimStat, err := m.statistic(fp, mv, c)
	if err != nil {
		return false, -1, err
	}
	var within bool
	if m.Mode == MurvayConvolution {
		within = claimStat >= m.accept[c]
	} else {
		within = claimStat <= m.accept[c]
	}
	return best == c && within, best, nil
}
