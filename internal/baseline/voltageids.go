package baseline

import (
	"errors"
	"math"
	"math/rand"

	"vprofile/internal/analog"
	"vprofile/internal/canbus"
	"vprofile/internal/linalg"
)

// VoltageIDS reimplements the Choi, Joo, Jo, Park & Lee method of
// Section 1.2.1: per-message features computed over the dominant-bit
// steady states and the rising and falling edges (up to 20 statistics
// per section, 60 total in the original; a dozen here), classified by
// linear support vector machines — the variant the authors found to
// outperform bagged decision trees — trained one-versus-rest with
// stochastic subgradient descent on the hinge loss.
type VoltageIDS struct {
	Threshold float64
	BitWidth  int
	// Epochs, LearningRate and C drive the SVM training (defaults 40,
	// 0.05 and 1).
	Epochs       int
	LearningRate float64
	C            float64
	Seed         int64
	// Margin is the minimum winning score gap over the runner-up for
	// acceptance (default 0).
	Margin float64

	saToECU map[canbus.SourceAddress]int
	weights *linalg.Matrix // nClass × (nFeat+1)
	featMu  linalg.Vector
	featSd  linalg.Vector
}

// Name implements Classifier.
func (v *VoltageIDS) Name() string { return "VoltageIDS-SVM" }

// features extracts the three-section statistics: steady state, rising
// edge, falling edge — mean, stddev, peak-to-peak and energy per
// section plus rise/fall sample counts.
func (v *VoltageIDS) features(tr analog.Trace) (linalg.Vector, error) {
	dom, _ := stateRuns(tr, v.Threshold, v.BitWidth/2)
	if len(dom) == 0 {
		return nil, ErrNoStates
	}
	run := dom[0]
	if len(dom) > 1 {
		run = dom[1]
	}
	edge := v.BitWidth / 8
	if edge < 2 {
		edge = 2
	}
	if len(run) < 3*edge {
		edge = len(run) / 3
		if edge < 1 {
			edge = 1
		}
	}
	rising := run[:edge]
	steady := run[edge : len(run)-edge]
	if len(steady) == 0 {
		steady = run
	}
	falling := run[len(run)-edge:]
	var out linalg.Vector
	for _, sec := range [][]float64{steady, rising, falling} {
		st := sectionStats(sec)
		out = append(out, st[0], st[1], st[2], st[3])
	}
	return out, nil
}

// Train implements Classifier.
func (v *VoltageIDS) Train(samples []TraceSample, saMap map[canbus.SourceAddress]int) error {
	if v.Epochs <= 0 {
		v.Epochs = 40
	}
	if v.LearningRate <= 0 {
		v.LearningRate = 0.05
	}
	if v.C <= 0 {
		v.C = 1
	}
	nClass := 0
	for _, c := range saMap {
		if c+1 > nClass {
			nClass = c + 1
		}
	}
	if nClass < 2 {
		return errors.New("baseline: VoltageIDS needs at least two ECUs")
	}
	var feats []linalg.Vector
	var classes []int
	for _, smp := range samples {
		c, okSA := saMap[smp.SA]
		if !okSA {
			continue
		}
		f, err := v.features(smp.Trace)
		if err != nil {
			return err
		}
		feats = append(feats, f)
		classes = append(classes, c)
	}
	if len(feats) == 0 {
		return errors.New("baseline: no mapped training samples")
	}
	v.saToECU = saMap
	v.standardise(feats)
	nFeat := len(feats[0])
	v.weights = linalg.NewMatrix(nClass, nFeat+1)

	rng := rand.New(rand.NewSource(v.Seed + 7))
	order := rng.Perm(len(feats))
	lambda := 1 / (v.C * float64(len(feats)))
	for epoch := 0; epoch < v.Epochs; epoch++ {
		lr := v.LearningRate / (1 + 0.1*float64(epoch))
		for _, idx := range order {
			x := feats[idx]
			for c := 0; c < nClass; c++ {
				y := -1.0
				if c == classes[idx] {
					y = 1
				}
				row := v.weights.Data[c*(nFeat+1):]
				var score float64
				for j, xv := range x {
					score += row[j] * xv
				}
				score += row[nFeat]
				// Pegasos-style subgradient: regularise always, add the
				// data term only inside the margin.
				for j := 0; j <= nFeat; j++ {
					if j < nFeat {
						row[j] -= lr * lambda * row[j]
					}
				}
				if y*score < 1 {
					for j, xv := range x {
						row[j] += lr * y * xv
					}
					row[nFeat] += lr * y
				}
			}
		}
	}
	return nil
}

func (v *VoltageIDS) standardise(feats []linalg.Vector) {
	dim := len(feats[0])
	v.featMu = make(linalg.Vector, dim)
	v.featSd = make(linalg.Vector, dim)
	n := float64(len(feats))
	for j := 0; j < dim; j++ {
		var mu float64
		for _, f := range feats {
			mu += f[j]
		}
		mu /= n
		var s float64
		for _, f := range feats {
			d := f[j] - mu
			s += d * d
		}
		sd := math.Sqrt(s / n)
		if sd == 0 {
			sd = 1
		}
		v.featMu[j], v.featSd[j] = mu, sd
	}
	for _, f := range feats {
		for j := range f {
			f[j] = (f[j] - v.featMu[j]) / v.featSd[j]
		}
	}
}

// Verify implements Classifier.
func (v *VoltageIDS) Verify(tr analog.Trace, claimed canbus.SourceAddress) (bool, int, error) {
	if v.weights == nil {
		return false, -1, errors.New("baseline: VoltageIDS not trained")
	}
	c, okSA := v.saToECU[claimed]
	if !okSA {
		return false, -1, nil
	}
	f, err := v.features(tr)
	if err != nil {
		return false, -1, err
	}
	for j := range f {
		f[j] = (f[j] - v.featMu[j]) / v.featSd[j]
	}
	nFeat := len(f)
	best, second := -1, -1
	bestScore, secondScore := math.Inf(-1), math.Inf(-1)
	for k := 0; k < v.weights.Rows; k++ {
		row := v.weights.Data[k*(nFeat+1):]
		var score float64
		for j, xv := range f {
			score += row[j] * xv
		}
		score += row[nFeat]
		if score > bestScore {
			second, secondScore = best, bestScore
			best, bestScore = k, score
		} else if score > secondScore {
			second, secondScore = k, score
		}
	}
	_ = second
	ok := best == c && bestScore-secondScore >= v.Margin
	return ok, best, nil
}
