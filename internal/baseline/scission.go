package baseline

import (
	"errors"
	"math"
	"math/rand"

	"vprofile/internal/analog"
	"vprofile/internal/canbus"
	"vprofile/internal/linalg"
)

// Scission reimplements the classification approach of Kneib & Huth's
// Scission (Section 1.2.1): statistical features per waveform section
// fed to a (multinomial) logistic regression classifier. A message is
// accepted when the predicted class matches the claimed sender and the
// winning probability clears a confidence threshold.
type Scission struct {
	Threshold float64 // bus-state threshold in code units
	BitWidth  int
	// Confidence is the minimum winning class probability to accept a
	// message (default 0.5).
	Confidence float64
	// Epochs and LearningRate drive the gradient training
	// (defaults 60 and 0.1).
	Epochs       int
	LearningRate float64
	Seed         int64

	saToECU map[canbus.SourceAddress]int
	weights *linalg.Matrix // nClass × (nFeat+1), last column is bias
	featMu  linalg.Vector  // feature standardisation
	featSd  linalg.Vector
}

// Name implements Classifier.
func (s *Scission) Name() string { return "Scission-LR" }

// Train implements Classifier.
func (s *Scission) Train(samples []TraceSample, saMap map[canbus.SourceAddress]int) error {
	if s.Confidence <= 0 {
		s.Confidence = 0.5
	}
	if s.Epochs <= 0 {
		s.Epochs = 60
	}
	if s.LearningRate <= 0 {
		s.LearningRate = 0.1
	}
	nClass := 0
	for _, c := range saMap {
		if c+1 > nClass {
			nClass = c + 1
		}
	}
	if nClass < 2 {
		return errors.New("baseline: Scission needs at least two ECUs")
	}
	var feats []linalg.Vector
	var classes []int
	for _, smp := range samples {
		c, okSA := saMap[smp.SA]
		if !okSA {
			continue
		}
		f, err := scissionFeatures(smp.Trace, s.Threshold, s.BitWidth)
		if err != nil {
			return err
		}
		feats = append(feats, f)
		classes = append(classes, c)
	}
	if len(feats) == 0 {
		return errors.New("baseline: no mapped training samples")
	}
	s.saToECU = saMap
	s.standardise(feats)
	nFeat := len(feats[0])
	s.weights = linalg.NewMatrix(nClass, nFeat+1)

	rng := rand.New(rand.NewSource(s.Seed + 1))
	order := rng.Perm(len(feats))
	for epoch := 0; epoch < s.Epochs; epoch++ {
		lr := s.LearningRate / (1 + 0.05*float64(epoch))
		for _, idx := range order {
			x := feats[idx]
			probs := s.softmax(x)
			for c := 0; c < nClass; c++ {
				grad := probs[c]
				if c == classes[idx] {
					grad -= 1
				}
				row := s.weights.Data[c*(nFeat+1):]
				for j, xv := range x {
					row[j] -= lr * grad * xv
				}
				row[nFeat] -= lr * grad // bias
			}
		}
	}
	return nil
}

// standardise fits per-feature mean/stddev and applies them in place.
func (s *Scission) standardise(feats []linalg.Vector) {
	dim := len(feats[0])
	s.featMu = make(linalg.Vector, dim)
	s.featSd = make(linalg.Vector, dim)
	for j := 0; j < dim; j++ {
		var mu float64
		for _, f := range feats {
			mu += f[j]
		}
		mu /= float64(len(feats))
		var v float64
		for _, f := range feats {
			d := f[j] - mu
			v += d * d
		}
		sd := math.Sqrt(v / float64(len(feats)))
		if sd == 0 {
			sd = 1
		}
		s.featMu[j], s.featSd[j] = mu, sd
	}
	for _, f := range feats {
		for j := range f {
			f[j] = (f[j] - s.featMu[j]) / s.featSd[j]
		}
	}
}

// softmax evaluates the class probabilities of a standardised feature
// vector.
func (s *Scission) softmax(x linalg.Vector) []float64 {
	nClass := s.weights.Rows
	nFeat := len(x)
	logits := make([]float64, nClass)
	mx := math.Inf(-1)
	for c := 0; c < nClass; c++ {
		row := s.weights.Data[c*(nFeat+1):]
		var z float64
		for j, xv := range x {
			z += row[j] * xv
		}
		z += row[nFeat]
		logits[c] = z
		if z > mx {
			mx = z
		}
	}
	var sum float64
	for c := range logits {
		logits[c] = math.Exp(logits[c] - mx)
		sum += logits[c]
	}
	for c := range logits {
		logits[c] /= sum
	}
	return logits
}

// Verify implements Classifier.
func (s *Scission) Verify(tr analog.Trace, claimed canbus.SourceAddress) (bool, int, error) {
	if s.weights == nil {
		return false, -1, errors.New("baseline: Scission not trained")
	}
	c, okSA := s.saToECU[claimed]
	if !okSA {
		return false, -1, nil
	}
	f, err := scissionFeatures(tr, s.Threshold, s.BitWidth)
	if err != nil {
		return false, -1, err
	}
	for j := range f {
		f[j] = (f[j] - s.featMu[j]) / s.featSd[j]
	}
	probs := s.softmax(f)
	best, bestP := -1, 0.0
	for k, p := range probs {
		if p > bestP {
			best, bestP = k, p
		}
	}
	return best == c && bestP >= s.Confidence, best, nil
}
