package baseline

import (
	"testing"

	"vprofile/internal/canbus"
)

func TestVidenClassifier(t *testing.T) {
	if testing.Short() {
		t.Skip("classifier suites need traffic")
	}
	th, bw := vehicleAConfig()
	classifierSuite(t, &Viden{Threshold: th, BitWidth: bw})
}

func TestVoltageIDSClassifier(t *testing.T) {
	if testing.Short() {
		t.Skip("classifier suites need traffic")
	}
	th, bw := vehicleAConfig()
	classifierSuite(t, &VoltageIDS{Threshold: th, BitWidth: bw, Seed: 3})
}

func TestVidenTrackingPointsShape(t *testing.T) {
	th, bw := vehicleAConfig()
	v := &Viden{Threshold: th, BitWidth: bw}
	samples := collectA(t, 3, 51)
	pts, err := v.trackingPoints(samples[0].Trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d tracking points", len(pts))
	}
	// Both quantiles live in the dominant-voltage region and are
	// ordered.
	if pts[0] < th || pts[1] < pts[0] {
		t.Fatalf("tracking points %v (threshold %v)", pts, th)
	}
	// An idle trace has no tracking points.
	if _, err := v.trackingPoints(make([]float64, 500)); err == nil {
		t.Fatal("idle trace produced tracking points")
	}
}

func TestNewBaselinesRejectDegenerateTraining(t *testing.T) {
	th, bw := vehicleAConfig()
	single := map[canbus.SourceAddress]int{0: 0}
	for _, c := range []Classifier{
		&Viden{Threshold: th, BitWidth: bw},
		&VoltageIDS{Threshold: th, BitWidth: bw},
	} {
		if err := c.Train(nil, single); err == nil {
			t.Errorf("%s accepted a single-class problem", c.Name())
		}
		if _, _, err := c.Verify(make([]float64, 10), 0); err == nil {
			t.Errorf("%s allowed Verify before Train", c.Name())
		}
	}
}

func TestChoiClassifier(t *testing.T) {
	if testing.Short() {
		t.Skip("classifier suites need traffic")
	}
	th, bw := vehicleAConfig()
	classifierSuite(t, &Choi{Threshold: th, BitWidth: bw})
}

func TestChoiFeaturesShape(t *testing.T) {
	th, bw := vehicleAConfig()
	c := &Choi{Threshold: th, BitWidth: bw}
	samples := collectA(t, 3, 52)
	f, err := c.features(samples[0].Trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 17 {
		t.Fatalf("%d features, want 17 (8 time + 9 frequency)", len(f))
	}
	if _, err := c.features(make([]float64, 200)); err == nil {
		t.Fatal("flat trace featurised")
	}
}

func TestChoiRejectsDegenerate(t *testing.T) {
	th, bw := vehicleAConfig()
	c := &Choi{Threshold: th, BitWidth: bw}
	if err := c.Train(nil, map[canbus.SourceAddress]int{0: 0}); err == nil {
		t.Fatal("single-class accepted")
	}
	if _, _, err := c.Verify(make([]float64, 10), 0); err == nil {
		t.Fatal("verify before train accepted")
	}
}
