package trace

import (
	"bytes"
	"math/rand"
	"testing"

	"vprofile/internal/analog"
	"vprofile/internal/vehicle"
)

func TestCompressedRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, closeFn, err := NewCompressedWriter(&buf, sampleHeader())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var want []*Record
	for i := 0; i < 20; i++ {
		tr := make(analog.Trace, 300)
		for j := range tr {
			tr[j] = float64(rng.Intn(4096))
		}
		rec := &Record{ECUIndex: int32(i % 3), TimeSec: float64(i), FrameID: uint32(i), Trace: tr}
		want = append(want, rec)
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	rd, err := OpenReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		rec, err := rd.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.FrameID != want[i].FrameID || len(rec.Trace) != len(want[i].Trace) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestOpenReaderAutoDetectsPlain(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCapture(&buf, vehicle.NewVehicleB(), vehicle.GenConfig{NumMessages: 5, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	rd, err := OpenReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Header().Vehicle != "vehicle-b" {
		t.Fatalf("header %+v", rd.Header())
	}
}

func TestCompressedCaptureSmaller(t *testing.T) {
	v := vehicle.NewVehicleB()
	var plain bytes.Buffer
	if err := WriteCapture(&plain, v, vehicle.GenConfig{NumMessages: 30, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	var comp bytes.Buffer
	w, closeFn, err := NewCompressedWriter(&comp, Header{Vehicle: v.Name, BitRate: v.BitRate, ADC: v.ADC})
	if err != nil {
		t.Fatal(err)
	}
	err = v.Stream(vehicle.GenConfig{NumMessages: 30, Seed: 3}, func(m vehicle.Message) error {
		return w.Write(&Record{ECUIndex: int32(m.ECUIndex), TimeSec: m.TimeSec, FrameID: m.Frame.ID, Data: m.Frame.Data, Trace: m.Trace})
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	if comp.Len() >= plain.Len()/2 {
		t.Fatalf("compression ineffective: %d vs %d bytes", comp.Len(), plain.Len())
	}
}

func TestOpenReaderRejectsTinyInput(t *testing.T) {
	if _, err := OpenReader(bytes.NewReader([]byte{0x1f})); err == nil {
		t.Fatal("1-byte input accepted")
	}
}

func TestReaderSurvivesRandomBytes(t *testing.T) {
	// Fuzz-flavoured: arbitrary byte soup must produce typed errors,
	// never panics or huge allocations.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(400)
		junk := make([]byte, n)
		rng.Read(junk)
		rd, err := OpenReader(bytes.NewReader(junk))
		if err != nil {
			continue
		}
		for i := 0; i < 10; i++ {
			if _, err := rd.Next(); err != nil {
				break
			}
		}
	}
}

func TestReaderSurvivesCorruptedValidCapture(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCapture(&buf, vehicle.NewVehicleB(), vehicle.GenConfig{NumMessages: 3, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	base := buf.Bytes()
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		mut := make([]byte, len(base))
		copy(mut, base)
		for k := 0; k < 3; k++ {
			mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		}
		rd, err := OpenReader(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		for i := 0; i < 10; i++ {
			if _, err := rd.Next(); err != nil {
				break
			}
		}
	}
}
