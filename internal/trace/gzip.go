package trace

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
)

// Captures compress extremely well (idle samples and steady states
// dominate), so the tools support transparent gzip: tracegen -gzip
// writes ~10× smaller files and every reader auto-detects the format.

// NewCompressedWriter wraps the capture writer in gzip. The returned
// close function flushes the capture and terminates the gzip stream;
// call it exactly once after the last record.
func NewCompressedWriter(w io.Writer, h Header) (*Writer, func() error, error) {
	gz := gzip.NewWriter(w)
	tw, err := NewWriter(gz, h)
	if err != nil {
		_ = gz.Close()
		return nil, nil, err
	}
	closeFn := func() error {
		if err := tw.Flush(); err != nil {
			_ = gz.Close()
			return err
		}
		return gz.Close()
	}
	return tw, closeFn, nil
}

// OpenReader returns a capture reader for plain or gzip-compressed
// input, auto-detected from the stream's first bytes.
func OpenReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(2)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if head[0] == 0x1F && head[1] == 0x8B {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: gzip: %w", err)
		}
		return NewReader(gz)
	}
	return NewReader(br)
}

// OpenPath opens a capture file (plain or gzip, auto-detected) and
// returns the reader plus a closer for the underlying file. On error
// the file is already closed.
func OpenPath(path string) (*Reader, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	r, err := OpenReader(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, f, nil
}
