package trace

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"vprofile/internal/analog"
	"vprofile/internal/edgeset"
	"vprofile/internal/vehicle"
)

func sampleHeader() Header {
	return Header{
		Vehicle: "test-vehicle",
		BitRate: 250e3,
		ADC:     analog.ADC{SampleRate: 10e6, Bits: 12, MinVolts: -5, MaxVolts: 5},
	}
}

func TestRoundTripEmptyCapture(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, sampleHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	h, recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("%d records in empty capture", len(recs))
	}
	if h != sampleHeader() {
		t.Fatalf("header mismatch: %+v", h)
	}
}

func TestRoundTripRecords(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, sampleHeader())
	if err != nil {
		t.Fatal(err)
	}
	want := []*Record{
		{ECUIndex: 0, TimeSec: 0.25, FrameID: 0x0CF00400, Data: []byte{1, 2, 3}, Trace: analog.Trace{100, 200, 300}},
		{ECUIndex: -1, TimeSec: 1.5, FrameID: 0x18FEF117, Data: nil, Trace: analog.Trace{4095, 0}},
		{ECUIndex: 3, TimeSec: 2, FrameID: 0x18FEF121, Data: []byte{9, 8, 7, 6, 5, 4, 3, 2}, Trace: nil},
	}
	for _, r := range want {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	_, got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d records, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.ECUIndex != w.ECUIndex || g.TimeSec != w.TimeSec || g.FrameID != w.FrameID {
			t.Fatalf("record %d header mismatch: %+v vs %+v", i, g, w)
		}
		if string(g.Data) != string(w.Data) {
			t.Fatalf("record %d data mismatch", i)
		}
		if len(g.Trace) != len(w.Trace) {
			t.Fatalf("record %d trace length %d vs %d", i, len(g.Trace), len(w.Trace))
		}
		for j := range w.Trace {
			if g.Trace[j] != w.Trace[j] {
				t.Fatalf("record %d sample %d: %v vs %v", i, j, g.Trace[j], w.Trace[j])
			}
		}
	}
}

func TestWriteRejectsOversizeData(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, sampleHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(&Record{Data: make([]byte, 9)}); err == nil {
		t.Fatal("9-byte payload accepted")
	}
}

func TestWriteRejectsUnencodableTraces(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, sampleHeader())
	if err != nil {
		t.Fatal(err)
	}
	// A record the writer must accept, written before and after each
	// rejection to prove rejected records leave the stream intact.
	good := &Record{FrameID: 0x0CF00400, Data: []byte{1}, Trace: analog.Trace{0, 65535, 1234}}
	if err := w.Write(good); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		rec  *Record
		want error
	}{
		// uint16(c) used to wrap these silently: -1 became 65535 and
		// 65536 became 0, so the file read back with corrupt samples.
		{"negative code", &Record{Trace: analog.Trace{100, -1}}, ErrCodeRange},
		{"oversized code", &Record{Trace: analog.Trace{65536}}, ErrCodeRange},
		{"huge code", &Record{Trace: analog.Trace{1e30}}, ErrCodeRange},
		{"nan code", &Record{Trace: analog.Trace{math.NaN()}}, ErrCodeRange},
		{"oversize trace", &Record{Trace: make(analog.Trace, maxSaneSamples+1)}, ErrTraceLength},
	}
	for _, tc := range cases {
		if err := w.Write(tc.rec); !errors.Is(err, tc.want) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}

	if err := w.Write(good); err != nil {
		t.Fatalf("writer unusable after rejection: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Round trip: only the two good records exist, byte-exact.
	_, recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records survived, want 2", len(recs))
	}
	for i, rec := range recs {
		if len(rec.Trace) != len(good.Trace) {
			t.Fatalf("record %d trace length %d", i, len(rec.Trace))
		}
		for j := range good.Trace {
			if rec.Trace[j] != good.Trace[j] {
				t.Fatalf("record %d sample %d: %v vs %v", i, j, rec.Trace[j], good.Trace[j])
			}
		}
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("XXXX????"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReaderRejectsBadVersion(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, sampleHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 0xFF // corrupt the version field
	if _, err := NewReader(bytes.NewReader(b)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v", err)
	}
}

func TestReaderDetectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, sampleHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(&Record{Trace: make(analog.Trace, 100)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	rd, err := NewReader(bytes.NewReader(full[:len(full)-10]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteCaptureRoundTripsVehicleTraffic(t *testing.T) {
	v := vehicle.NewVehicleB()
	var buf bytes.Buffer
	if err := WriteCapture(&buf, v, vehicle.GenConfig{NumMessages: 40, Seed: 17}); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h := rd.Header()
	if h.Vehicle != v.Name || h.ADC.Bits != v.ADC.Bits {
		t.Fatalf("header %+v", h)
	}
	// The replayed traces must preprocess exactly like live traffic.
	cfg := v.ExtractionConfig()
	n := 0
	for {
		rec, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		res, err := edgeset.Extract(rec.Trace, cfg)
		if err != nil {
			t.Fatalf("record %d: %v", n, err)
		}
		if uint32(res.SA) != rec.FrameID&0xFF {
			t.Fatalf("record %d: SA %#x vs frame %#x", n, res.SA, rec.FrameID&0xFF)
		}
		n++
	}
	if n != 40 {
		t.Fatalf("%d records", n)
	}
}
