package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"vprofile/internal/analog"
)

// reuseFixture writes a capture whose records shrink and grow so the
// reused buffers are exercised in both directions (stale-tail reuse
// and regrowth).
func reuseFixture(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, sampleHeader())
	if err != nil {
		t.Fatal(err)
	}
	recs := []*Record{
		{ECUIndex: 0, TimeSec: 0.1, FrameID: 0x0CF00400, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}, Trace: analog.Trace{100, 200, 300, 400, 500}},
		{ECUIndex: 1, TimeSec: 0.2, FrameID: 0x18FEF117, Data: []byte{9}, Trace: analog.Trace{7}},
		{ECUIndex: -1, TimeSec: 0.3, FrameID: 0x18FEF121, Data: nil, Trace: nil},
		{ECUIndex: 2, TimeSec: 0.4, FrameID: 0x0CF00401, Data: []byte{4, 4}, Trace: analog.Trace{65535, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestNextRawIntoMatchesNextRaw reads the same capture through the
// allocating and the buffer-reusing paths — one RawRecord and one
// Record reused across the whole stream — and requires identical
// records, including after shrink/regrow transitions.
func TestNextRawIntoMatchesNextRaw(t *testing.T) {
	data := reuseFixture(t)

	ra, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}

	var raw RawRecord
	var rec Record
	for i := 0; ; i++ {
		want, wantErr := ra.NextRaw()
		gotErr := rb.NextRawInto(&raw)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("record %d: NextRaw err %v, NextRawInto err %v", i, wantErr, gotErr)
		}
		if wantErr != nil {
			if !errors.Is(wantErr, io.EOF) || !errors.Is(gotErr, io.EOF) {
				t.Fatalf("record %d: non-EOF end: %v / %v", i, wantErr, gotErr)
			}
			return
		}
		if raw.ECUIndex != want.ECUIndex || raw.TimeSec != want.TimeSec || raw.FrameID != want.FrameID {
			t.Fatalf("record %d header mismatch: %+v vs %+v", i, raw, *want)
		}
		if !bytes.Equal(raw.Data, want.Data) {
			t.Fatalf("record %d data %v, want %v", i, raw.Data, want.Data)
		}
		if !bytes.Equal(raw.Codes, want.Codes) {
			t.Fatalf("record %d codes mismatch (len %d vs %d)", i, len(raw.Codes), len(want.Codes))
		}

		wantRec := want.Decode()
		raw.DecodeInto(&rec)
		if rec.ECUIndex != wantRec.ECUIndex || rec.TimeSec != wantRec.TimeSec || rec.FrameID != wantRec.FrameID {
			t.Fatalf("record %d decoded header mismatch", i)
		}
		if !bytes.Equal(rec.Data, wantRec.Data) {
			t.Fatalf("record %d decoded data mismatch", i)
		}
		if len(rec.Trace) != len(wantRec.Trace) {
			t.Fatalf("record %d trace length %d vs %d", i, len(rec.Trace), len(wantRec.Trace))
		}
		for j := range wantRec.Trace {
			if rec.Trace[j] != wantRec.Trace[j] {
				t.Fatalf("record %d sample %d: %v vs %v", i, j, rec.Trace[j], wantRec.Trace[j])
			}
		}
	}
}

// TestDecodeIntoCopiesData pins the recycling contract: the decoded
// Record must not alias the RawRecord's buffers, because the raw
// record is returned to a pool as soon as DecodeInto returns.
func TestDecodeIntoCopiesData(t *testing.T) {
	raw := RawRecord{Data: []byte{1, 2, 3}, Codes: []byte{0x10, 0x00, 0x20, 0x00}}
	var rec Record
	raw.DecodeInto(&rec)
	raw.Data[0] = 0xFF
	raw.Codes[0] = 0xFF
	if rec.Data[0] != 1 {
		t.Fatal("DecodeInto aliased the raw Data buffer")
	}
	if rec.Trace[0] != 0x10 {
		t.Fatalf("Trace[0] = %v, want 16", rec.Trace[0])
	}
}
