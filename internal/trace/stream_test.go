package trace_test

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"vprofile/internal/trace"
)

// pktSink collects each Write as one datagram, like a packet socket
// would.
type pktSink struct{ pkts [][]byte }

func (s *pktSink) Write(p []byte) (int, error) {
	s.pkts = append(s.pkts, append([]byte(nil), p...))
	return len(p), nil
}

func TestStreamDatagramsChunksAndSequences(t *testing.T) {
	data, _, _ := resyncFixture(t, 8)
	var sink pktSink
	n, err := trace.StreamDatagrams(&sink, bytes.NewReader(data), trace.DatagramConfig{ChunkSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(data)) {
		t.Fatalf("streamed %d bytes, capture is %d", n, len(data))
	}
	wantPkts := (len(data) + 511) / 512
	if len(sink.pkts) != wantPkts {
		t.Fatalf("sent %d datagrams, want %d", len(sink.pkts), wantPkts)
	}
	// Reassembling the payloads in order must reproduce the capture
	// byte stream exactly.
	var rebuilt []byte
	for i, pkt := range sink.pkts {
		if len(pkt) < 10 || string(pkt[:4]) != "VPDG" {
			t.Fatalf("datagram %d has a bad header: % x", i, pkt[:10])
		}
		rebuilt = append(rebuilt, pkt[10:]...)
	}
	if !bytes.Equal(rebuilt, data) {
		t.Fatal("reassembled payloads differ from the capture stream")
	}
}

func TestStreamDatagramsDropLeavesSequenceHole(t *testing.T) {
	data, _, _ := resyncFixture(t, 8)
	var sink pktSink
	_, err := trace.StreamDatagrams(&sink, bytes.NewReader(data), trace.DatagramConfig{
		ChunkSize: 256,
		Drop:      func(seq uint32) bool { return seq == 2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	// The dropped chunk must consume its sequence number so the
	// receiver sees a hole, not a renumbered contiguous stream.
	var seqs []uint32
	for _, pkt := range sink.pkts {
		seqs = append(seqs, uint32(pkt[6])|uint32(pkt[7])<<8|uint32(pkt[8])<<16|uint32(pkt[9])<<24)
	}
	for i, s := range seqs {
		want := uint32(i)
		if i >= 2 {
			want++
		}
		if s != want {
			t.Fatalf("datagram %d carries seq %d, want %d (seqs %v)", i, s, want, seqs)
		}
	}
}

// datagramPair binds a loopback UDP listener wrapped in a
// DatagramReader and returns it with the address to feed.
func datagramPair(t *testing.T) (*trace.DatagramReader, string) {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dr := trace.NewDatagramReader(pc)
	t.Cleanup(func() { dr.Close() })
	return dr, pc.LocalAddr().String()
}

func TestDatagramRoundTripLossless(t *testing.T) {
	data, recs, _ := resyncFixture(t, 30)
	dr, addr := datagramPair(t)
	n, err := trace.DialDatagramFeed(addr, bytes.NewReader(data), trace.DatagramConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(data)) {
		t.Fatalf("fed %d bytes, capture is %d", n, len(data))
	}
	rd, err := trace.OpenReader(dr)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range recs {
		rec, err := rd.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.TimeSec != want.TimeSec || rec.FrameID != want.FrameID {
			t.Fatalf("record %d differs: t=%g id=%#x", i, rec.TimeSec, rec.FrameID)
		}
	}
	gaps := dr.Gaps()
	if gaps.LostChunks != 0 || gaps.LateChunks != 0 || gaps.Rejected != 0 {
		t.Fatalf("lossless loopback stream reported damage: %+v", gaps)
	}
	// Close ends the stream; the reader sits at a record boundary so
	// the EOF is clean.
	dr.Close()
	if _, err := rd.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("Next after Close = %v, want io.EOF", err)
	}
}

func TestDatagramLossRecovers(t *testing.T) {
	data, recs, _ := resyncFixture(t, 40)
	dr, addr := datagramPair(t)

	const chunk = 512
	dropped := map[uint32]bool{5: true, 13: true}
	_, err := trace.DialDatagramFeed(addr, bytes.NewReader(data), trace.DatagramConfig{
		ChunkSize: chunk,
		Drop:      func(seq uint32) bool { return dropped[seq] },
	})
	if err != nil {
		t.Fatal(err)
	}
	totalChunks := (len(data) + chunk - 1) / chunk

	rd, err := trace.OpenReader(dr)
	if err != nil {
		t.Fatal(err)
	}
	rd.EnableRecovery()
	var got []*trace.Record
	done := make(chan error, 1)
	go func() {
		for {
			rec, err := rd.Next()
			if err != nil {
				done <- err
				return
			}
			got = append(got, rec)
		}
	}()

	// Wait until every sent datagram has been accepted, then close the
	// feed: buffered bytes drain, the holes resync, EOF ends the loop.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if dr.Gaps().Datagrams == int64(totalChunks-len(dropped)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("accepted %d datagrams, want %d", dr.Gaps().Datagrams, totalChunks-len(dropped))
		}
		time.Sleep(5 * time.Millisecond)
	}
	dr.Close()
	select {
	case err := <-done:
		if !errors.Is(err, io.EOF) {
			t.Fatalf("stream ended with %v, want io.EOF", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader did not finish after Close — wedged pipeline")
	}

	gaps := dr.Gaps()
	if gaps.LostChunks != int64(len(dropped)) {
		t.Fatalf("LostChunks = %d, want %d", gaps.LostChunks, len(dropped))
	}
	if len(rd.Corruptions()) < 2 {
		t.Fatalf("two separate holes produced %d corruption reports", len(rd.Corruptions()))
	}
	// Each 512-byte hole can destroy at most three 270-byte records.
	if len(got) < len(recs)-8 {
		t.Fatalf("recovered only %d of %d records", len(got), len(recs))
	}
	// The stream must have resynced: the tail records are intact.
	tail := got[len(got)-5:]
	for i, rec := range tail {
		want := recs[len(recs)-5+i]
		if rec.TimeSec != want.TimeSec || rec.FrameID != want.FrameID {
			t.Fatalf("tail record %d wrong after loss resync: t=%g want %g", i, rec.TimeSec, want.TimeSec)
		}
	}
}

func TestDatagramReaderLateAndRejected(t *testing.T) {
	dr, addr := datagramPair(t)
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	pkt := func(seq uint32, payload string) []byte {
		b := []byte("VPDG\x01\x00????")
		b[6], b[7], b[8], b[9] = byte(seq), byte(seq>>8), byte(seq>>16), byte(seq>>24)
		return append(b, payload...)
	}
	send := func(b []byte) {
		t.Helper()
		if _, err := conn.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	send(pkt(0, "aaaa"))
	send(pkt(1, "bbbb"))
	send(pkt(1, "dup!")) // already passed → late
	send([]byte("nope")) // bad magic → rejected
	send(pkt(2, "cccc"))
	send(pkt(5, "ffff")) // hole: 3 and 4 never sent

	var out []byte
	buf := make([]byte, 64)
	dr.SetReadDeadline(time.Now().Add(5 * time.Second))
	for len(out) < 16 {
		n, err := dr.Read(buf)
		if err != nil {
			t.Fatalf("read after %q: %v", out, err)
		}
		out = append(out, buf[:n]...)
	}
	if string(out) != "aaaabbbbccccffff" {
		t.Fatalf("reassembled %q", out)
	}
	gaps := dr.Gaps()
	if gaps.Datagrams != 4 || gaps.LateChunks != 1 || gaps.Rejected != 1 || gaps.LostChunks != 2 {
		t.Fatalf("gap accounting wrong: %+v", gaps)
	}
	dr.Close()
	if _, err := dr.Read(buf); !errors.Is(err, io.EOF) {
		t.Fatalf("Read after Close = %v, want io.EOF", err)
	}
}

func TestDatagramReaderCloseUnblocksRead(t *testing.T) {
	dr, _ := datagramPair(t)
	done := make(chan error, 1)
	go func() {
		_, err := dr.Read(make([]byte, 64))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	dr.Close()
	select {
	case err := <-done:
		if !errors.Is(err, io.EOF) {
			t.Fatalf("blocked Read returned %v, want io.EOF", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock the Read")
	}
}
