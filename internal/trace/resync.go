package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"math"
)

// RecoveredCorruption is one corrupt stretch the recovering reader
// skipped: where it was detected, how many bytes were discarded
// before the stream re-synchronised, and the parse error that exposed
// it. "Recovered" is literal — the reader kept going; the report
// exists so callers can account for the loss instead of silently
// absorbing it.
type RecoveredCorruption struct {
	// Offset is the byte position in the uncompressed stream at which
	// the corruption was detected (i.e. where the failing parse
	// stopped consuming).
	Offset int64
	// Skipped is the number of bytes discarded while scanning for the
	// next plausible record boundary. Zero means the very next byte
	// already re-synchronised.
	Skipped int64
	// Err is the parse failure that triggered recovery.
	Err error
}

// resyncWindow is the look-ahead the recovering reader scans for a
// record boundary before giving up on that stretch and sliding
// forward. It comfortably covers a dozen typical records.
const resyncWindow = 64 << 10

// minHeaderLen is the fixed-field prefix of a record: ECU (4) +
// time (8) + frame id (4) + data length (2); the sample count (4)
// follows the variable-length data.
const minHeaderLen = 18

// EnableRecovery switches the reader into degraded-tolerant mode:
// instead of aborting on the first corrupt record, NextRaw (and Next)
// scans forward for the next plausible record boundary, resumes
// there, and files a RecoveredCorruption report. Mid-record EOF is
// reported and then surfaced as a clean io.EOF, so a truncated
// capture yields every record before the cut.
//
// Recovery is heuristic — the format carries no per-record sync
// marker — so a boundary is accepted only when the candidate record's
// fields all pass sanity bounds and, when the look-ahead window
// allows, the following record header is plausible too.
func (r *Reader) EnableRecovery() {
	r.recover = true
	// Peek-based scanning needs a window-sized buffer; wrapping the
	// existing bufio reader is copy-through and keeps already-buffered
	// bytes.
	if r.r.Size() < resyncWindow {
		r.r = bufio.NewReaderSize(r.r, resyncWindow)
	}
}

// Corruptions returns a copy of the corrupt stretches recovered so
// far. It is safe to call from another goroutine while the stream is
// still being read — status snapshots of a live session do exactly
// that.
func (r *Reader) Corruptions() []RecoveredCorruption {
	r.repMu.Lock()
	defer r.repMu.Unlock()
	if len(r.reports) == 0 {
		return nil
	}
	out := make([]RecoveredCorruption, len(r.reports))
	copy(out, r.reports)
	return out
}

// nextRawRecovering is NextRaw in recovery mode: parse, and on
// corruption record the damage, resync, retry.
func (r *Reader) nextRawRecovering() (*RawRecord, error) {
	for {
		rec := new(RawRecord)
		err := r.nextRawOnceInto(rec)
		if err == nil {
			return rec, nil
		}
		if errors.Is(err, io.EOF) {
			return nil, err
		}
		report := RecoveredCorruption{Offset: r.off, Err: err}
		// A parse that died on end-of-stream is a truncated capture:
		// nothing to scan for, so report it and end cleanly.
		if truncated(err) {
			r.fileReport(report)
			return nil, io.EOF
		}
		skipped, found := r.resync()
		report.Skipped = skipped
		r.fileReport(report)
		if !found {
			return nil, io.EOF
		}
	}
}

// truncated reports whether a record parse failed because the stream
// ended inside the record.
func truncated(err error) bool {
	return errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF)
}

// fileReport records one corruption in the reader's report list and
// its metrics.
func (r *Reader) fileReport(report RecoveredCorruption) {
	r.repMu.Lock()
	r.reports = append(r.reports, report)
	r.repMu.Unlock()
	if m := r.metrics; m != nil && m.Corruptions != nil {
		m.Corruptions.Inc()
		m.ResyncBytes.Add(report.Skipped)
	}
}

// resync discards bytes until the stream front looks like a record
// boundary. It returns the bytes skipped and whether a boundary was
// found before the stream ran out.
func (r *Reader) resync() (skipped int64, found bool) {
	for {
		buf, _ := r.r.Peek(resyncWindow)
		if len(buf) < minHeaderLen+4 {
			n, _ := r.r.Discard(len(buf))
			r.off += int64(n)
			return skipped + int64(n), false
		}
		limit := len(buf) - (minHeaderLen + 4)
		for k := 0; k <= limit; k++ {
			if plausibleRecord(buf[k:], true) {
				n, _ := r.r.Discard(k)
				r.off += int64(n)
				return skipped + int64(n), true
			}
		}
		// No boundary in this window: slide forward, keeping a header's
		// worth of tail so a boundary straddling the window edge is
		// still seen next round.
		n, _ := r.r.Discard(limit + 1)
		r.off += int64(n)
		skipped += int64(n)
		if n < limit+1 {
			return skipped, false
		}
	}
}

// Plausibility bounds for record fields. They are deliberately loose —
// their job is to reject random bytes (which they do with high
// probability, mostly on the data-length and sample-count fields),
// not to validate semantics.
const (
	plausibleMaxECU     = 1 << 12 // far above any roster, far below random int32
	plausibleMaxTimeSec = 1e7     // ~115 days of capture
	plausibleMaxFrameID = 1 << 29 // 29-bit extended CAN identifier
)

// plausibleRecord reports whether b starts with a believable record.
// When the full record fits in b, the header of the following record
// is checked too (one level deep — deep=false stops the recursion).
func plausibleRecord(b []byte, deep bool) bool {
	if len(b) < minHeaderLen+4 {
		return false
	}
	ecu := int32(binary.LittleEndian.Uint32(b[0:4]))
	if ecu < -2 || ecu >= plausibleMaxECU {
		return false
	}
	t := math.Float64frombits(binary.LittleEndian.Uint64(b[4:12]))
	if math.IsNaN(t) || t < 0 || t > plausibleMaxTimeSec {
		return false
	}
	if binary.LittleEndian.Uint32(b[12:16]) >= plausibleMaxFrameID {
		return false
	}
	dataLen := int(binary.LittleEndian.Uint16(b[16:18]))
	if dataLen > 8 {
		return false
	}
	if len(b) < minHeaderLen+dataLen+4 {
		return false
	}
	n := binary.LittleEndian.Uint32(b[minHeaderLen+dataLen:])
	if n > maxSaneSamples {
		return false
	}
	if !deep {
		return true
	}
	end := minHeaderLen + dataLen + 4 + 2*int(n)
	if end > len(b) {
		// Record runs past the window: the header alone has to carry
		// the decision.
		return true
	}
	rest := b[end:]
	if len(rest) < minHeaderLen+4 {
		// Too little left to verify a follower either way — a clean
		// final record at EOF, or a follower straddling the window
		// edge mid-stream. The candidate itself parses; accept it and
		// let any trailing garbage report as its own corruption.
		return true
	}
	return plausibleRecord(rest, false)
}
