package trace

import "vprofile/internal/obs"

// Metrics counts what a capture reader has consumed: records decoded
// and their exact on-wire bytes (after any gzip layer). Attach to a
// Reader with SetMetrics; a nil Metrics keeps reading uninstrumented.
type Metrics struct {
	Records *obs.Counter
	Bytes   *obs.Counter
	// Corruptions counts corrupt stretches the recovering reader
	// skipped (EnableRecovery); ResyncBytes is the bytes discarded
	// while scanning back to a record boundary. Both stay zero on a
	// clean capture or a strict (non-recovering) reader.
	Corruptions *obs.Counter
	ResyncBytes *obs.Counter
}

// NewMetrics registers the capture-reader instruments on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Records: reg.Counter("vprofile_capture_records_read_total",
			"Capture records decoded from the stream."),
		Bytes: reg.Counter("vprofile_capture_bytes_read_total",
			"Uncompressed record bytes decoded from the stream (header excluded)."),
		Corruptions: reg.Counter("vprofile_capture_corruptions_recovered_total",
			"Corrupt stretches skipped by the recovering reader."),
		ResyncBytes: reg.Counter("vprofile_capture_resync_bytes_total",
			"Bytes discarded while re-synchronising past corruption."),
	}
}

// SetMetrics attaches instrumentation to the reader; every subsequent
// record read updates the counters.
func (r *Reader) SetMetrics(m *Metrics) { r.metrics = m }
