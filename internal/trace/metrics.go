package trace

import "vprofile/internal/obs"

// Metrics counts what a capture reader has consumed: records decoded
// and their exact on-wire bytes (after any gzip layer). Attach to a
// Reader with SetMetrics; a nil Metrics keeps reading uninstrumented.
type Metrics struct {
	Records *obs.Counter
	Bytes   *obs.Counter
}

// NewMetrics registers the capture-reader instruments on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Records: reg.Counter("vprofile_capture_records_read_total",
			"Capture records decoded from the stream."),
		Bytes: reg.Counter("vprofile_capture_bytes_read_total",
			"Uncompressed record bytes decoded from the stream (header excluded)."),
	}
}

// SetMetrics attaches instrumentation to the reader; every subsequent
// record read updates the counters.
func (r *Reader) SetMetrics(m *Metrics) { r.metrics = m }
