package trace_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"vprofile/internal/faults"
	"vprofile/internal/trace"
)

// FuzzReaderResync throws arbitrary bytes at both reader modes. The
// strict reader may reject the stream however it likes but must never
// panic; the recovering reader must additionally never surface any
// error other than io.EOF — corruption is its job to absorb — and its
// corruption reports must stay internally consistent.
func FuzzReaderResync(f *testing.F) {
	clean, _, _ := resyncFixture(f, 6)
	f.Add(clean)
	for seed := int64(1); seed <= 3; seed++ {
		hurt, _ := faults.CorruptStream(clean, faults.StreamSpec{Flips: 4, Garbage: 2, Chops: 2, Truncate: seed == 2}, seed)
		f.Add(hurt)
	}
	f.Add([]byte("VPTR"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Strict mode: errors are fine, panics are not.
		if rd, err := trace.NewReader(bytes.NewReader(data)); err == nil {
			for {
				if _, err := rd.NextRaw(); err != nil {
					break
				}
			}
		}

		rd, err := trace.NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		rd.EnableRecovery()
		records := 0
		for {
			rec, err := rd.NextRaw()
			if err != nil {
				if !errors.Is(err, io.EOF) {
					t.Fatalf("recovering reader surfaced %v", err)
				}
				break
			}
			if rec == nil {
				t.Fatal("recovering reader returned nil record without error")
			}
			records++
			if records > len(data) {
				t.Fatalf("decoded %d records from %d bytes", records, len(data))
			}
		}
		var skipped int64
		for _, rep := range rd.Corruptions() {
			if rep.Skipped < 0 || rep.Offset < 0 {
				t.Fatalf("negative accounting in report %+v", rep)
			}
			skipped += rep.Skipped
		}
		if skipped > int64(len(data)) {
			t.Fatalf("reports claim %d bytes skipped from a %d-byte stream", skipped, len(data))
		}
	})
}
