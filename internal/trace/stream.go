package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Datagram transport for capture streams.
//
// TCP and unix-socket feeds need no framing of their own: the capture
// format is already a self-delimiting byte stream, so a feed simply
// writes the capture bytes down the connection and the receiver hands
// the connection to a Reader. UDP is different — datagrams can be
// lost, duplicated or reordered — so each datagram carries a small
// header (magic + sequence number) in front of a chunk of the
// canonical capture byte stream. The receiver reassembles the stream
// in sequence order, counts the holes, and leaves them as literal
// gaps in the byte stream: a recovery-enabled Reader then resyncs
// past each hole through the same corruption path that handles a
// damaged file, and the loss shows up as RecoveredCorruption reports
// plus GapStats — never as a wedged pipeline.

// dgMagic distinguishes capture datagrams from stray traffic on the
// port; dgVersion versions the header layout.
const (
	dgMagic   = "VPDG"
	dgVersion = 1
	// dgHeaderLen is magic (4) + version (2) + sequence (4).
	dgHeaderLen = 10
	// maxDatagram bounds a single receive; UDP payloads cannot exceed
	// 64 KiB anyway.
	maxDatagram = 64 << 10
)

// DefaultChunkSize is the per-datagram payload when DatagramConfig
// leaves ChunkSize zero: comfortably under a 1500-byte MTU after
// IP/UDP/VPDG headers, so chunks are not fragmented on real networks.
const DefaultChunkSize = 1200

// GapStats accounts for datagram-stream damage observed by a
// DatagramReader.
type GapStats struct {
	// Datagrams is the number of in-order datagrams accepted into the
	// byte stream.
	Datagrams int64 `json:"datagrams"`
	// LostChunks is the number of sequence numbers that never arrived
	// (holes left in the byte stream for the recovery reader).
	LostChunks int64 `json:"lost_chunks"`
	// LateChunks is the number of datagrams dropped because their
	// sequence number had already been passed (reordered past the
	// reassembly point, or duplicated).
	LateChunks int64 `json:"late_chunks"`
	// Rejected is the number of datagrams discarded for a bad magic or
	// version — stray traffic, not capture stream.
	Rejected int64 `json:"rejected,omitempty"`
}

// DatagramConfig tunes the sending side of a datagram capture stream.
type DatagramConfig struct {
	// ChunkSize is the capture-stream payload per datagram; 0 means
	// DefaultChunkSize.
	ChunkSize int
	// Drop, when non-nil, is consulted before each send and suppresses
	// the datagram when it returns true. It exists for loss-injection
	// tests; production feeds leave it nil and let the network do the
	// dropping.
	Drop func(seq uint32) bool
}

// StreamDatagrams chunks the capture byte stream r into sequenced
// datagrams and writes one per Write call to w (typically a connected
// UDP socket). It returns the number of capture bytes consumed.
// Chunk 0 carries the capture header, so a feed whose first datagram
// is lost cannot be attached — start streaming before walking away.
func StreamDatagrams(w io.Writer, r io.Reader, cfg DatagramConfig) (int64, error) {
	chunk := cfg.ChunkSize
	if chunk <= 0 {
		chunk = DefaultChunkSize
	}
	if chunk > maxDatagram-dgHeaderLen {
		chunk = maxDatagram - dgHeaderLen
	}
	buf := make([]byte, dgHeaderLen+chunk)
	copy(buf, dgMagic)
	binary.LittleEndian.PutUint16(buf[4:6], dgVersion)
	var seq uint32
	var total int64
	for {
		n, err := io.ReadFull(r, buf[dgHeaderLen:])
		if n > 0 {
			total += int64(n)
			if cfg.Drop == nil || !cfg.Drop(seq) {
				binary.LittleEndian.PutUint32(buf[6:10], seq)
				if _, werr := w.Write(buf[:dgHeaderLen+n]); werr != nil {
					return total, werr
				}
			}
			seq++
		}
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

// DatagramReader reassembles a sequenced datagram stream back into a
// capture byte stream. It implements io.Reader so trace.OpenReader
// (and through it an engine session) can consume it like any other
// stream; lost chunks become byte-stream holes counted in GapStats,
// and Close makes a concurrent or subsequent Read return io.EOF.
type DatagramReader struct {
	pc     net.PacketConn
	buf    [maxDatagram]byte
	pend   []byte // unconsumed payload of the last accepted datagram
	next   uint32
	closed atomic.Bool

	mu    sync.Mutex
	stats GapStats
}

// NewDatagramReader wraps a packet socket. The reader owns pc: Close
// closes it.
func NewDatagramReader(pc net.PacketConn) *DatagramReader {
	return &DatagramReader{pc: pc}
}

// Read yields reassembled capture bytes, blocking until a datagram
// arrives. After Close it returns io.EOF.
func (d *DatagramReader) Read(p []byte) (int, error) {
	for len(d.pend) == 0 {
		if d.closed.Load() {
			return 0, io.EOF
		}
		n, _, err := d.pc.ReadFrom(d.buf[:])
		if err != nil {
			if d.closed.Load() {
				return 0, io.EOF
			}
			return 0, err
		}
		d.accept(d.buf[:n])
	}
	n := copy(p, d.pend)
	d.pend = d.pend[n:]
	return n, nil
}

// accept validates one datagram and, if it advances the stream, makes
// its payload the pending read buffer.
func (d *DatagramReader) accept(pkt []byte) {
	if len(pkt) < dgHeaderLen || string(pkt[:4]) != dgMagic ||
		binary.LittleEndian.Uint16(pkt[4:6]) != dgVersion {
		d.mu.Lock()
		d.stats.Rejected++
		d.mu.Unlock()
		return
	}
	seq := binary.LittleEndian.Uint32(pkt[6:10])
	d.mu.Lock()
	switch {
	case seq == d.next:
		d.stats.Datagrams++
	case seq > d.next:
		// A hole: everything between the reassembly point and this
		// datagram is gone. Accept the payload and let the recovery
		// reader resync across the discontinuity.
		d.stats.LostChunks += int64(seq - d.next)
		d.stats.Datagrams++
	default:
		d.stats.LateChunks++
		d.mu.Unlock()
		return
	}
	d.next = seq + 1
	d.mu.Unlock()
	d.pend = pkt[dgHeaderLen:]
}

// Gaps returns a snapshot of the loss accounting. Safe to call from
// any goroutine while the stream is live.
func (d *DatagramReader) Gaps() GapStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// SetReadDeadline forwards to the underlying socket, so a drain can
// unblock a Read that is waiting for a datagram.
func (d *DatagramReader) SetReadDeadline(t time.Time) error {
	return d.pc.SetReadDeadline(t)
}

// Close makes Read return io.EOF (including a Read currently blocked
// on the socket) and closes the socket.
func (d *DatagramReader) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	return d.pc.Close()
}

// DialDatagramFeed connects a UDP feed to addr ("host:port") and
// streams the capture from r through StreamDatagrams.
func DialDatagramFeed(addr string, r io.Reader, cfg DatagramConfig) (int64, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return 0, fmt.Errorf("datagram feed: %w", err)
	}
	defer conn.Close()
	return StreamDatagrams(conn, r, cfg)
}
