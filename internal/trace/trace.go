// Package trace implements the capture file format vProfile uses for
// test repeatability: the paper records each vehicle's bus traffic
// once and replays it into the detector. A capture file carries the
// digitizer configuration followed by a stream of per-message records
// (ground-truth sender, timestamp, frame, and the raw ADC code trace).
//
// The format is a compact little-endian binary stream: codes are
// stored as uint16 (they are integral ADC codes of at most 16 bits),
// so a 5,000-sample message costs ~10 KB on disk.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"vprofile/internal/analog"
	"vprofile/internal/canbus"
	"vprofile/internal/vehicle"
)

// Errors reported by the package.
var (
	ErrBadMagic   = errors.New("trace: not a vProfile capture file")
	ErrBadVersion = errors.New("trace: unsupported capture version")
	ErrCorrupt    = errors.New("trace: corrupt record")
	// ErrTraceLength reports a record whose trace exceeds the bound
	// the reader enforces; writing it would produce a file no reader
	// accepts.
	ErrTraceLength = errors.New("trace: trace exceeds maximum sample count")
	// ErrCodeRange reports an ADC code that does not fit the on-disk
	// uint16 representation (negative, above 65535, or NaN).
	ErrCodeRange = errors.New("trace: ADC code outside uint16 range")
)

const (
	magic   = "VPTR"
	version = 1
	// maxSaneSamples bounds a single record so corrupt length fields
	// fail fast instead of attempting enormous allocations.
	maxSaneSamples = 1 << 24
)

// Header describes the capture: which vehicle, bus rate and digitizer.
type Header struct {
	Vehicle string
	BitRate float64
	ADC     analog.ADC
}

// Record is one captured message.
type Record struct {
	ECUIndex int32 // ground-truth sender; −1 for a foreign device
	TimeSec  float64
	FrameID  uint32
	Data     []byte
	Trace    analog.Trace
}

// Writer streams records to a capture file.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter writes the header and returns a record writer.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	out := &Writer{w: bw}
	out.u16(version)
	out.str(h.Vehicle)
	out.f64(h.BitRate)
	out.f64(h.ADC.SampleRate)
	out.u16(uint16(h.ADC.Bits))
	out.f64(h.ADC.MinVolts)
	out.f64(h.ADC.MaxVolts)
	if out.err != nil {
		return nil, out.err
	}
	return out, nil
}

// Write appends one record. Records that cannot round-trip — data
// longer than a CAN frame, traces beyond the reader's sanity bound,
// or ADC codes outside the on-disk uint16 representation — are
// rejected before any bytes are emitted, leaving the writer usable.
func (w *Writer) Write(r *Record) error {
	if w.err != nil {
		return w.err
	}
	if len(r.Data) > 8 {
		return canbus.ErrDataLength
	}
	if len(r.Trace) > maxSaneSamples {
		return fmt.Errorf("%w: %d samples (max %d)", ErrTraceLength, len(r.Trace), maxSaneSamples)
	}
	for i, c := range r.Trace {
		// uint16(c) would silently wrap negative or oversized codes
		// (and NaN, which fails every comparison, converts to an
		// unspecified value); reject instead of corrupting the file.
		if !(c >= 0 && c <= math.MaxUint16) {
			return fmt.Errorf("%w: sample %d = %g", ErrCodeRange, i, c)
		}
	}
	w.u32(uint32(int32(r.ECUIndex)))
	w.f64(r.TimeSec)
	w.u32(r.FrameID)
	w.u16(uint16(len(r.Data)))
	if w.err == nil {
		_, w.err = w.w.Write(r.Data)
	}
	w.u32(uint32(len(r.Trace)))
	for _, c := range r.Trace {
		w.u16(uint16(c))
	}
	return w.err
}

// Flush commits buffered data. Call once after the last record.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

func (w *Writer) u16(v uint16) {
	if w.err == nil {
		var b [2]byte
		binary.LittleEndian.PutUint16(b[:], v)
		_, w.err = w.w.Write(b[:])
	}
}

func (w *Writer) u32(v uint32) {
	if w.err == nil {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		_, w.err = w.w.Write(b[:])
	}
}

func (w *Writer) f64(v float64) {
	if w.err == nil {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		_, w.err = w.w.Write(b[:])
	}
}

func (w *Writer) str(s string) {
	w.u16(uint16(len(s)))
	if w.err == nil {
		_, w.err = w.w.WriteString(s)
	}
}

// Reader streams records from a capture file.
type Reader struct {
	r       *bufio.Reader
	header  Header
	metrics *Metrics

	// off is the byte offset into the (uncompressed) stream, used to
	// locate corruption reports.
	off int64
	// recovery state; see EnableRecovery in resync.go. reports is the
	// one piece of reader state read from other goroutines (mid-stream
	// status snapshots), so it gets its own mutex; everything else is
	// owned by the reading goroutine.
	recover bool
	repMu   sync.Mutex
	reports []RecoveredCorruption
	scratch []byte
}

// NewReader validates the header and returns a record reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if string(got) != magic {
		return nil, ErrBadMagic
	}
	rd := &Reader{r: br}
	v, err := rd.u16()
	if err != nil {
		return nil, err
	}
	if v != version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	if rd.header.Vehicle, err = rd.str(); err != nil {
		return nil, err
	}
	if rd.header.BitRate, err = rd.f64(); err != nil {
		return nil, err
	}
	if rd.header.ADC.SampleRate, err = rd.f64(); err != nil {
		return nil, err
	}
	bits, err := rd.u16()
	if err != nil {
		return nil, err
	}
	rd.header.ADC.Bits = int(bits)
	if rd.header.ADC.MinVolts, err = rd.f64(); err != nil {
		return nil, err
	}
	if rd.header.ADC.MaxVolts, err = rd.f64(); err != nil {
		return nil, err
	}
	if err := rd.header.ADC.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return rd, nil
}

// Header returns the capture metadata.
func (r *Reader) Header() Header { return r.header }

// RawRecord is a record whose sample codes are still in their packed
// on-disk form: two little-endian bytes per sample. Reading raw
// records keeps the (inherently serial) stream-decoding stage of a
// concurrent replay cheap — the float64 expansion, the bulk of the
// per-record decode cost, moves into Decode, which any worker
// goroutine can run.
type RawRecord struct {
	ECUIndex int32
	TimeSec  float64
	FrameID  uint32
	Data     []byte
	Codes    []byte // 2 bytes per sample, little-endian uint16
}

// Decode expands the packed sample codes into a full Record.
func (rr *RawRecord) Decode() *Record {
	rec := new(Record)
	rr.DecodeInto(rec)
	return rec
}

// DecodeInto is Decode over a caller-owned Record, reusing its Data
// and Trace capacity. Every field of rec is overwritten; the Data
// bytes are copied (not aliased) so the RawRecord's buffers can be
// recycled the moment this returns.
func (rr *RawRecord) DecodeInto(rec *Record) {
	rec.ECUIndex = rr.ECUIndex
	rec.TimeSec = rr.TimeSec
	rec.FrameID = rr.FrameID
	rec.Data = append(rec.Data[:0], rr.Data...)
	n := len(rr.Codes) / 2
	if cap(rec.Trace) < n {
		rec.Trace = make(analog.Trace, n)
	}
	rec.Trace = rec.Trace[:n]
	for i := range rec.Trace {
		rec.Trace[i] = float64(binary.LittleEndian.Uint16(rr.Codes[2*i:]))
	}
}

// NextRaw reads the next record without decoding its samples, or
// io.EOF at the end of the capture. With EnableRecovery, corrupt
// stretches are skipped (and reported through Corruptions) instead of
// ending the read.
func (r *Reader) NextRaw() (*RawRecord, error) {
	if !r.recover {
		rec := new(RawRecord)
		if err := r.nextRawOnceInto(rec); err != nil {
			return nil, err
		}
		return rec, nil
	}
	return r.nextRawRecovering()
}

// NextRawInto is NextRaw over a caller-owned RawRecord, reusing its
// Data and Codes capacity so a steady-state replay loop stops
// allocating per record. Every field of rec is overwritten. The
// recovery path (EnableRecovery) keeps its allocating resynchroniser —
// corruption is the cold path — and copies the result into rec.
func (r *Reader) NextRawInto(rec *RawRecord) error {
	if !r.recover {
		return r.nextRawOnceInto(rec)
	}
	raw, err := r.nextRawRecovering()
	if err != nil {
		return err
	}
	rec.ECUIndex = raw.ECUIndex
	rec.TimeSec = raw.TimeSec
	rec.FrameID = raw.FrameID
	rec.Data = append(rec.Data[:0], raw.Data...)
	rec.Codes = append(rec.Codes[:0], raw.Codes...)
	return nil
}

// codesChunk bounds a single sample-payload allocation: payload
// buffers grow as bytes actually arrive, so a corrupt length field
// costs at most one chunk of memory before the stream runs dry — not
// the 32 MiB a hostile 24-bit count would otherwise reserve upfront.
const codesChunk = 64 << 10

// nextRawOnceInto is the strict single-record parse, overwriting every
// field of rec and reusing its buffer capacity.
func (r *Reader) nextRawOnceInto(rec *RawRecord) error {
	ecuRaw, err := r.u32()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	rec.ECUIndex = int32(ecuRaw)
	if rec.TimeSec, err = r.f64(); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if rec.FrameID, err = r.u32(); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	dataLen, err := r.u16()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if dataLen > 8 {
		return fmt.Errorf("%w: data length %d", ErrCorrupt, dataLen)
	}
	if cap(rec.Data) < int(dataLen) {
		rec.Data = make([]byte, dataLen)
	}
	rec.Data = rec.Data[:dataLen]
	if err := r.read(rec.Data); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	n, err := r.u32()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if n > maxSaneSamples {
		return fmt.Errorf("%w: %d samples", ErrCorrupt, n)
	}
	total := 2 * int(n)
	if total <= codesChunk {
		if cap(rec.Codes) < total {
			rec.Codes = make([]byte, total)
		}
		rec.Codes = rec.Codes[:total]
		if err := r.read(rec.Codes); err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	} else {
		// Chunked path for large counts: a length field is untrusted
		// input, so memory grows only as payload bytes actually
		// arrive instead of reserving the full claimed size upfront.
		if r.scratch == nil {
			r.scratch = make([]byte, codesChunk)
		}
		rec.Codes = rec.Codes[:0]
		for read := 0; read < total; {
			chunk := total - read
			if chunk > codesChunk {
				chunk = codesChunk
			}
			if err := r.read(r.scratch[:chunk]); err != nil {
				return fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			rec.Codes = append(rec.Codes, r.scratch[:chunk]...)
			read += chunk
		}
	}
	if m := r.metrics; m != nil {
		m.Records.Inc()
		// Fixed fields (ECU 4 + time 8 + id 4 + data len 2 + sample
		// count 4) plus the variable payloads.
		m.Bytes.Add(int64(22 + len(rec.Data) + len(rec.Codes)))
	}
	return nil
}

// Next reads the next record, or io.EOF at the end of the capture.
func (r *Reader) Next() (*Record, error) {
	raw, err := r.NextRaw()
	if err != nil {
		return nil, err
	}
	return raw.Decode(), nil
}

// read fills b from the stream and advances the corruption-report
// offset by the bytes actually consumed.
func (r *Reader) read(b []byte) error {
	n, err := io.ReadFull(r.r, b)
	r.off += int64(n)
	return err
}

func (r *Reader) u16() (uint16, error) {
	var b [2]byte
	if err := r.read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

func (r *Reader) u32() (uint32, error) {
	var b [4]byte
	if err := r.read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (r *Reader) f64() (float64, error) {
	var b [8]byte
	if err := r.read(b[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
}

func (r *Reader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	b := make([]byte, n)
	if err := r.read(b); err != nil {
		return "", err
	}
	return string(b), nil
}

// WriteCapture streams a vehicle's generated traffic straight to a
// capture file without holding it in memory.
func WriteCapture(w io.Writer, v *vehicle.Vehicle, cfg vehicle.GenConfig) error {
	tw, err := NewWriter(w, Header{Vehicle: v.Name, BitRate: v.BitRate, ADC: v.ADC})
	if err != nil {
		return err
	}
	err = v.Stream(cfg, func(m vehicle.Message) error {
		return tw.Write(&Record{
			ECUIndex: int32(m.ECUIndex),
			TimeSec:  m.TimeSec,
			FrameID:  m.Frame.ID,
			Data:     m.Frame.Data,
			Trace:    m.Trace,
		})
	})
	if err != nil {
		return err
	}
	return tw.Flush()
}

// ReadAll loads an entire capture into memory (small captures only).
func ReadAll(r io.Reader) (Header, []*Record, error) {
	rd, err := NewReader(r)
	if err != nil {
		return Header{}, nil, err
	}
	var recs []*Record
	for {
		rec, err := rd.Next()
		if errors.Is(err, io.EOF) {
			return rd.Header(), recs, nil
		}
		if err != nil {
			return rd.Header(), recs, err
		}
		recs = append(recs, rec)
	}
}
