package trace_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"

	"vprofile/internal/analog"
	"vprofile/internal/obs"
	"vprofile/internal/trace"
)

// resyncFixture builds a capture of nRecords records with fixed
// geometry (8 data bytes, 120 samples each) and returns the encoded
// bytes, the records, and each record's byte offset in the file.
// Sample codes are kept ≥ 16 so a misaligned parse can never satisfy
// the data-length sanity bound with sample bytes — resync in these
// tests either finds a true boundary or none at all.
func resyncFixture(t testing.TB, nRecords int) ([]byte, []*trace.Record, []int) {
	t.Helper()
	adc := analog.ADC{SampleRate: 10e6, Bits: 12, MinVolts: -1, MaxVolts: 4}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Header{Vehicle: "t", BitRate: 250e3, ADC: adc})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var recs []*trace.Record
	var offsets []int
	const recordSize = 22 + 8 + 2*120
	headerSize := 4 + 2 + (2 + 1) + 8 + 8 + 2 + 8 + 8
	for i := 0; i < nRecords; i++ {
		tr := make(analog.Trace, 120)
		for j := range tr {
			tr[j] = float64(600 + rng.Intn(1800))
		}
		rec := &trace.Record{
			ECUIndex: int32(i % 5),
			TimeSec:  float64(i) * 0.01,
			FrameID:  0x18FEF100 | uint32(i%5),
			Data:     []byte{1, 2, 3, 4, 5, 6, 7, byte(i)},
			Trace:    tr,
		}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, headerSize+i*recordSize)
		recs = append(recs, rec)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != headerSize+nRecords*recordSize {
		t.Fatalf("fixture geometry drifted: %d bytes, expected %d", buf.Len(), headerSize+nRecords*recordSize)
	}
	return buf.Bytes(), recs, offsets
}

// readRecovering drains a recovering reader and returns everything it
// produced.
func readRecovering(t *testing.T, data []byte, m *trace.Metrics) (*trace.Reader, []*trace.Record) {
	t.Helper()
	rd, err := trace.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		rd.SetMetrics(m)
	}
	rd.EnableRecovery()
	var out []*trace.Record
	for {
		rec, err := rd.Next()
		if errors.Is(err, io.EOF) {
			return rd, out
		}
		if err != nil {
			t.Fatalf("recovering reader surfaced error: %v", err)
		}
		out = append(out, rec)
	}
}

func TestRecoveryCorruptLengthField(t *testing.T) {
	data, recs, offsets := resyncFixture(t, 12)
	// Blow up record 5's sample count (offset +22 within the record:
	// 18 fixed header bytes + 8 data bytes... the count sits after the
	// data, at +18+8).
	countAt := offsets[5] + 18 + 8
	binary.LittleEndian.PutUint32(data[countAt:], 0xFFFFFFFF)

	// Strict reader: first five records, then a corruption error.
	rd, err := trace.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := rd.Next(); err != nil {
			t.Fatalf("strict reader failed on clean record %d: %v", i, err)
		}
	}
	if _, err := rd.Next(); !errors.Is(err, trace.ErrCorrupt) {
		t.Fatalf("strict reader returned %v, want ErrCorrupt", err)
	}

	// Recovering reader: loses record 5, recovers everything after.
	reg := obs.NewRegistry()
	m := trace.NewMetrics(reg)
	rrd, got := readRecovering(t, data, m)
	if len(got) != len(recs)-1 {
		t.Fatalf("recovered %d records, want %d", len(got), len(recs)-1)
	}
	for i, rec := range got[5:] {
		want := recs[6+i]
		if rec.TimeSec != want.TimeSec || rec.FrameID != want.FrameID {
			t.Fatalf("post-corruption record %d resynced wrong: t=%g id=%#x", i, rec.TimeSec, rec.FrameID)
		}
	}
	reports := rrd.Corruptions()
	if len(reports) != 1 {
		t.Fatalf("got %d corruption reports, want 1", len(reports))
	}
	if reports[0].Err == nil || !errors.Is(reports[0].Err, trace.ErrCorrupt) {
		t.Errorf("report error = %v, want ErrCorrupt", reports[0].Err)
	}
	if m.Corruptions.Value() != 1 {
		t.Errorf("corruption counter = %d, want 1", m.Corruptions.Value())
	}
	if m.ResyncBytes.Value() != reports[0].Skipped {
		t.Errorf("resync bytes counter = %d, report says %d", m.ResyncBytes.Value(), reports[0].Skipped)
	}
}

func TestRecoveryChoppedBytes(t *testing.T) {
	data, recs, offsets := resyncFixture(t, 12)
	// Delete 10 bytes inside record 4's sample payload: record 4 then
	// swallows part of record 5 and the stream comes up misaligned.
	cut := offsets[4] + 60
	data = append(data[:cut], data[cut+10:]...)

	rrd, got := readRecovering(t, data, nil)
	if len(rrd.Corruptions()) == 0 {
		t.Fatal("chop produced no corruption report")
	}
	// Records 0–3 are untouched; whatever the chop destroyed, every
	// record from 6 on must be back (the chop region spans 4 and 5).
	if len(got) < len(recs)-2 {
		t.Fatalf("recovered %d records, want ≥ %d", len(got), len(recs)-2)
	}
	tail := got[len(got)-6:]
	for i, rec := range tail {
		want := recs[6+i]
		if rec.TimeSec != want.TimeSec || rec.FrameID != want.FrameID {
			t.Fatalf("tail record %d wrong after resync: t=%g want %g", i, rec.TimeSec, want.TimeSec)
		}
	}
}

func TestRecoveryMidRecordEOF(t *testing.T) {
	data, _, offsets := resyncFixture(t, 8)
	data = data[:offsets[6]+30] // cut inside record 6

	rrd, got := readRecovering(t, data, nil)
	if len(got) != 6 {
		t.Fatalf("recovered %d records before the cut, want 6", len(got))
	}
	reports := rrd.Corruptions()
	if len(reports) != 1 {
		t.Fatalf("got %d corruption reports, want 1", len(reports))
	}
}

func TestRecoveryFlippedHeaderByte(t *testing.T) {
	data, recs, offsets := resyncFixture(t, 10)
	// Flip record 2's data-length high byte: 8 becomes 0xFF08, far
	// over the 8-byte CAN bound.
	data[offsets[2]+17] = 0xFF

	rrd, got := readRecovering(t, data, nil)
	if len(got) != len(recs)-1 {
		t.Fatalf("recovered %d records, want %d", len(got), len(recs)-1)
	}
	for i, rec := range got[2:] {
		want := recs[3+i]
		if rec.TimeSec != want.TimeSec {
			t.Fatalf("record %d after flip resynced wrong", i)
		}
	}
	if len(rrd.Corruptions()) != 1 {
		t.Fatalf("got %d corruption reports, want 1", len(rrd.Corruptions()))
	}
}

func TestRecoveryCleanCaptureUntouched(t *testing.T) {
	data, recs, _ := resyncFixture(t, 10)
	rrd, got := readRecovering(t, data, nil)
	if len(got) != len(recs) {
		t.Fatalf("clean capture: %d records, want %d", len(got), len(recs))
	}
	if len(rrd.Corruptions()) != 0 {
		t.Fatalf("clean capture produced corruption reports: %+v", rrd.Corruptions())
	}
	for i, rec := range got {
		if rec.TimeSec != recs[i].TimeSec {
			t.Fatalf("clean record %d differs", i)
		}
	}
}

// TestRecoveryGarbageRun smears random garbage over two whole records
// and checks the reader comes back on its feet afterwards.
func TestRecoveryGarbageRun(t *testing.T) {
	data, recs, offsets := resyncFixture(t, 14)
	rng := rand.New(rand.NewSource(77))
	for i := offsets[6]; i < offsets[8]; i++ {
		data[i] = byte(rng.Intn(256))
	}
	rrd, got := readRecovering(t, data, nil)
	if len(rrd.Corruptions()) == 0 {
		t.Fatal("garbage run produced no corruption report")
	}
	// Everything after the smear must be recovered.
	if len(got) < 6 {
		t.Fatalf("recovered only %d records", len(got))
	}
	tail := got[len(got)-6:]
	for i, rec := range tail {
		want := recs[8+i]
		if rec.TimeSec != want.TimeSec || rec.FrameID != want.FrameID {
			t.Fatalf("tail record %d wrong after garbage: t=%g want %g", i, rec.TimeSec, want.TimeSec)
		}
	}
}
