package control

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vprofile/internal/control/controlapi"
)

// policyDir builds a directory containing a stand-in model file so
// model-existence validation has something to find.
func policyDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "model.vpm"), []byte("stub"), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func parseIn(t *testing.T, dir, text string) (*Policy, error) {
	t.Helper()
	return ParsePolicy(filepath.Join(dir, "fleet.yaml"), []byte(text))
}

func TestParsePolicyGood(t *testing.T) {
	dir := policyDir(t)
	p, err := parseIn(t, dir, `
# fleet policy
control: 127.0.0.1:9620
alarms:
  events: alarms.jsonl
  buffer: 128
defaults:
  model: model.vpm
  quarantine: true
  workers: 2
buses:
  front:
    listen: tcp://127.0.0.1:9700
  cabin:
    listen: udp://127.0.0.1:9701
    recover: true
    workers: 4
    quarantine:
      suspect_after: 2
      degrade_after: 6
      recover_after: 32
  trailer:
    listen: unix:///tmp/trailer.sock
    model: model.vpm
    quarantine: false
    stall_timeout: 30s
    flight_dir: forensics
    flight_window: 16
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Control != "127.0.0.1:9620" {
		t.Errorf("control = %q", p.Control)
	}
	if p.Alarms.Events != "alarms.jsonl" || p.Alarms.Buffer != 128 {
		t.Errorf("alarms = %+v", p.Alarms)
	}
	if len(p.Buses) != 3 {
		t.Fatalf("parsed %d buses, want 3", len(p.Buses))
	}
	front := p.Bus("front")
	if front == nil {
		t.Fatal("bus front missing")
	}
	// Defaults merged: model, quarantine and workers flow in; listen is
	// the bus's own.
	if front.Model != "model.vpm" || !front.Quarantine || front.Workers != 2 {
		t.Errorf("defaults did not merge into front: %+v", front)
	}
	if front.Listen != "tcp://127.0.0.1:9700" {
		t.Errorf("front.listen = %q", front.Listen)
	}
	cabin := p.Bus("cabin")
	// Per-bus override wins over the default.
	if cabin.Workers != 4 {
		t.Errorf("cabin.workers = %d, want 4 (override)", cabin.Workers)
	}
	if !cabin.Recover {
		t.Error("cabin.recover not set")
	}
	if cabin.QuarantineSuspectAfter != 2 || cabin.QuarantineDegradeAfter != 6 || cabin.QuarantineRecoverAfter != 32 {
		t.Errorf("cabin quarantine tuning = %+v", cabin)
	}
	if !cabin.Quarantine {
		t.Error("a quarantine tuning map must imply quarantine: true")
	}
	trailer := p.Bus("trailer")
	if trailer.Quarantine {
		t.Error("trailer.quarantine override to false did not take")
	}
	if trailer.StallTimeout != "30s" || trailer.FlightDir != "forensics" || trailer.FlightWindow != 16 {
		t.Errorf("trailer settings = %+v", trailer)
	}
}

func TestParsePolicyErrors(t *testing.T) {
	dir := policyDir(t)
	cases := []struct {
		name string
		text string
		want []string // substrings that must all appear in the error
	}{
		{
			name: "missing model file",
			text: "buses:\n  a:\n    listen: tcp://127.0.0.1:1\n    model: nope.vpm\n",
			want: []string{"buses.a.model", "nope.vpm"},
		},
		{
			name: "unknown top-level key",
			text: "busses:\n  a:\n    listen: tcp://127.0.0.1:1\n",
			want: []string{"fleet.yaml:1", "busses", "unknown key"},
		},
		{
			name: "unknown bus key",
			text: "buses:\n  a:\n    listen: tcp://127.0.0.1:1\n    model: model.vpm\n    quarantene: true\n",
			want: []string{"fleet.yaml:5", "buses.a.quarantene", "unknown key"},
		},
		{
			name: "missing listen",
			text: "buses:\n  a:\n    model: model.vpm\n",
			want: []string{"buses.a.listen", "required"},
		},
		{
			name: "missing model",
			text: "buses:\n  a:\n    listen: tcp://127.0.0.1:1\n",
			want: []string{"buses.a.model", "required"},
		},
		{
			name: "no buses",
			text: "control: 127.0.0.1:9620\n",
			want: []string{"buses", "at least one bus"},
		},
		{
			name: "bad listen scheme",
			text: "buses:\n  a:\n    listen: ftp://127.0.0.1:1\n    model: model.vpm\n",
			want: []string{"buses.a.listen", "ftp"},
		},
		{
			name: "udp without recover",
			text: "buses:\n  a:\n    listen: udp://127.0.0.1:1\n    model: model.vpm\n",
			want: []string{"buses.a.recover", "udp listeners require recover: true"},
		},
		{
			name: "quarantine zero",
			text: "buses:\n  a:\n    listen: tcp://127.0.0.1:1\n    model: model.vpm\n    quarantine:\n      suspect_after: 0\n",
			want: []string{"fleet.yaml:6", "buses.a.quarantine.suspect_after", "out of range"},
		},
		{
			name: "quarantine huge",
			text: "buses:\n  a:\n    listen: tcp://127.0.0.1:1\n    model: model.vpm\n    quarantine:\n      recover_after: 999999999\n",
			want: []string{"buses.a.quarantine.recover_after", "out of range"},
		},
		{
			name: "degrade not after suspect",
			text: "buses:\n  a:\n    listen: tcp://127.0.0.1:1\n    model: model.vpm\n    quarantine:\n      suspect_after: 6\n      degrade_after: 3\n",
			want: []string{"buses.a.quarantine.degrade_after", "must be > suspect_after (6)"},
		},
		{
			name: "negative workers",
			text: "buses:\n  a:\n    listen: tcp://127.0.0.1:1\n    model: model.vpm\n    workers: -2\n",
			want: []string{"buses.a.workers", "must be >= 0"},
		},
		{
			name: "bad stall timeout",
			text: "buses:\n  a:\n    listen: tcp://127.0.0.1:1\n    model: model.vpm\n    stall_timeout: whenever\n",
			want: []string{"buses.a.stall_timeout"},
		},
		{
			name: "bad bus name",
			text: "buses:\n  a/b:\n    listen: tcp://127.0.0.1:1\n    model: model.vpm\n",
			want: []string{"buses.a/b", "may only contain"},
		},
		{
			name: "duplicate listen",
			text: "defaults:\n  model: model.vpm\nbuses:\n  a:\n    listen: tcp://127.0.0.1:7\n  b:\n    listen: tcp://127.0.0.1:7\n",
			want: []string{"buses.b.listen", "duplicate listen address"},
		},
		{
			name: "non-integer workers",
			text: "buses:\n  a:\n    listen: tcp://127.0.0.1:1\n    model: model.vpm\n    workers: lots\n",
			want: []string{"buses.a.workers", `expected an integer, got "lots"`},
		},
		{
			name: "non-bool quarantine",
			text: "buses:\n  a:\n    listen: tcp://127.0.0.1:1\n    model: model.vpm\n    quarantine: yes\n",
			want: []string{"buses.a.quarantine", "expected true or false"},
		},
		{
			name: "yaml list rejected",
			text: "buses:\n  - a\n",
			want: []string{"YAML lists are not supported"},
		},
		{
			name: "yaml tab rejected",
			text: "buses:\n\ta:\n",
			want: []string{"tab"},
		},
		{
			name: "duplicate key",
			text: "control: a\ncontrol: b\nbuses:\n  a:\n    listen: tcp://127.0.0.1:1\n    model: model.vpm\n",
			want: []string{"fleet.yaml:2", "duplicate key"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseIn(t, dir, tc.text)
			if err == nil {
				t.Fatalf("policy accepted:\n%s", tc.text)
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q\nmissing substring %q", err, want)
				}
			}
		})
	}
}

// TestParsePolicyReportsAllErrors: validation collects every problem
// in one pass instead of stopping at the first.
func TestParsePolicyReportsAllErrors(t *testing.T) {
	dir := policyDir(t)
	_, err := parseIn(t, dir, `
buses:
  a:
    model: model.vpm
    workers: -1
  b:
    listen: tcp://127.0.0.1:1
`)
	if err == nil {
		t.Fatal("policy accepted")
	}
	for _, want := range []string{"buses.a.listen", "buses.a.workers", "buses.b.model"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("combined error missing %q:\n%v", want, err)
		}
	}
}

func TestValidateSpecAttachPath(t *testing.T) {
	dir := policyDir(t)
	good := controlapi.BusSpec{Bus: "front", Listen: "tcp://127.0.0.1:0", Model: filepath.Join(dir, "model.vpm")}
	if err := ValidateSpec(&good, ""); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	bad := controlapi.BusSpec{Bus: "front door", Listen: "udp://127.0.0.1:0", Model: "gone.vpm"}
	err := ValidateSpec(&bad, dir)
	if err == nil {
		t.Fatal("bad spec accepted")
	}
	for _, want := range []string{"may only contain", "recover", "gone.vpm"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("attach error missing %q: %v", want, err)
		}
	}
}

func TestDiffPolicies(t *testing.T) {
	spec := func(bus, listen, model string, workers int) controlapi.BusSpec {
		return controlapi.BusSpec{Bus: bus, Listen: listen, Model: model, Workers: workers}
	}
	old := &Policy{Buses: []controlapi.BusSpec{
		spec("same", "tcp://h:1", "m.vpm", 2),
		spec("swap", "tcp://h:2", "m.vpm", 2),
		spec("restart", "tcp://h:3", "m.vpm", 2),
		spec("gone", "tcp://h:4", "m.vpm", 2),
	}}
	new := &Policy{Buses: []controlapi.BusSpec{
		spec("same", "tcp://h:1", "m.vpm", 2),
		spec("swap", "tcp://h:2", "m2.vpm", 2),   // model only → hot swap
		spec("restart", "tcp://h:3", "m.vpm", 8), // workers changed → restart
		spec("fresh", "tcp://h:5", "m.vpm", 2),
	}}
	d := DiffPolicies(old, new)
	check := func(name string, got []string, want ...string) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s = %v, want %v", name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s = %v, want %v", name, got, want)
			}
		}
	}
	check("Unchanged", d.Unchanged, "same")
	check("Swapped", d.Swapped, "swap")
	check("Restarted", d.Restarted, "restart")
	check("Added", d.Added, "fresh")
	check("Removed", d.Removed, "gone")

	// First load: everything is new.
	first := DiffPolicies(nil, new)
	if len(first.Added) != len(new.Buses) {
		t.Fatalf("nil old: Added = %v", first.Added)
	}
}
