package controlserver

import (
	"sync"
	"time"

	"vprofile/internal/control/controlapi"
	"vprofile/internal/obs"
)

// eventHub is the daemon's alarm fan-out: a bounded sequence-numbered
// ring every published event lands in, read by any number of
// long-polling subscribers through a cursor (controlapi.PathEvents).
// Slow or absent clients never apply backpressure to the data plane —
// a publisher only rotates the ring — and a client that falls behind
// learns exactly how many events it lost (Dropped) instead of
// silently missing them.
type eventHub struct {
	mu    sync.Mutex
	ring  []controlapi.EventRecord
	next  uint64 // sequence number of the next event published
	start uint64 // sequence number of the oldest retained event
	wake  chan struct{}
}

func newEventHub(capacity int) *eventHub {
	if capacity <= 0 {
		capacity = 1
	}
	return &eventHub{
		ring: make([]controlapi.EventRecord, 0, capacity),
		wake: make(chan struct{}),
	}
}

// Publish appends one event and wakes every waiting poller.
func (h *eventHub) Publish(e obs.Event) {
	h.mu.Lock()
	rec := controlapi.EventRecord{Seq: h.next, Event: e}
	if len(h.ring) < cap(h.ring) {
		h.ring = append(h.ring, rec)
	} else {
		copy(h.ring, h.ring[1:])
		h.ring[len(h.ring)-1] = rec
		h.start++
	}
	h.next++
	close(h.wake)
	h.wake = make(chan struct{})
	h.mu.Unlock()
}

// since returns retained events with Seq >= after (capped at max),
// the cursor for the following poll, and how many requested events
// had already rotated out of the ring.
func (h *eventHub) since(after uint64, max int) (events []controlapi.EventRecord, next uint64, dropped uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if after < h.start {
		dropped = h.start - after
		after = h.start
	}
	if after >= h.next {
		return nil, h.next, dropped
	}
	i := int(after - h.start)
	out := h.ring[i:]
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	events = make([]controlapi.EventRecord, len(out))
	copy(events, out)
	return events, events[len(events)-1].Seq + 1, dropped
}

// waiter returns the channel closed by the next Publish.
func (h *eventHub) waiter() <-chan struct{} {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.wake
}

// Poll is the long-poll read: it returns immediately when events past
// the cursor exist, otherwise blocks up to wait for one to arrive.
func (h *eventHub) Poll(after uint64, max int, wait time.Duration) controlapi.EventsResponse {
	deadline := time.Now().Add(wait)
	for {
		w := h.waiter()
		events, next, dropped := h.since(after, max)
		if len(events) > 0 || wait <= 0 {
			return controlapi.EventsResponse{Events: events, Next: next, Dropped: dropped}
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return controlapi.EventsResponse{Events: events, Next: next, Dropped: dropped}
		}
		t := time.NewTimer(remain)
		select {
		case <-w:
		case <-t.C:
		}
		t.Stop()
	}
}
