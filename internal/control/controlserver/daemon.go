// Package controlserver hosts the vprofiled runtime: the set of
// attached buses (each a listener feeding engine sessions), the fleet
// policy lifecycle (load, hot reload, diff application), the alarm
// hub behind the event subscription, and the HTTP control API on top
// (server.go). The split from controlapi/controlclient keeps the
// daemon the only place with engine wiring; clients speak wire types
// only.
package controlserver

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"vprofile/internal/control"
	"vprofile/internal/control/controlapi"
	"vprofile/internal/engine"
	"vprofile/internal/ids"
	"vprofile/internal/obs"
	"vprofile/internal/obs/drift"
	"vprofile/internal/trace"
)

// Config configures a Daemon.
type Config struct {
	// Policy is the initial fleet policy (nil starts an empty daemon
	// that buses are attached to via the API).
	Policy *control.Policy
	// Logf receives the daemon's log lines; nil silences them.
	Logf func(format string, args ...any)
	// BaseDir anchors relative model paths on API attach/swap when no
	// policy directory applies (default ".").
	BaseDir string
}

// Daemon is the control-plane root: bus registry, policy state, alarm
// hub. All methods are safe for concurrent use — the HTTP layer calls
// straight in.
type Daemon struct {
	logf    func(format string, args ...any)
	baseDir string
	hub     *eventHub
	mirror  *obs.EventLog // optional JSONL alarm mirror (policy alarms.events)

	mu        sync.Mutex
	buses     map[string]*busRun
	order     []string
	policy    *control.Policy
	policyGen int
	draining  bool
}

// New builds the daemon and attaches every bus of the initial policy.
// On error the partially attached buses are torn down.
func New(cfg Config) (*Daemon, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	baseDir := cfg.BaseDir
	if baseDir == "" {
		baseDir = "."
	}
	buffer := control.DefaultEventBuffer
	if cfg.Policy != nil && cfg.Policy.Alarms.Buffer > 0 {
		buffer = cfg.Policy.Alarms.Buffer
	}
	d := &Daemon{
		logf:    logf,
		baseDir: baseDir,
		hub:     newEventHub(buffer),
		buses:   map[string]*busRun{},
	}
	if cfg.Policy != nil {
		if cfg.Policy.Alarms.Events != "" {
			mirror, err := obs.CreateEventLog(cfg.Policy.Alarms.Events)
			if err != nil {
				return nil, fmt.Errorf("alarms.events: %w", err)
			}
			d.mirror = mirror
		}
		if _, err := d.ApplyPolicy(cfg.Policy); err != nil {
			d.Drain(2 * time.Second)
			return nil, err
		}
	}
	return d, nil
}

// publish fans one event out to the subscription hub and the optional
// JSONL mirror.
func (d *Daemon) publish(e obs.Event) {
	d.hub.Publish(e)
	if d.mirror != nil {
		_ = d.mirror.Emit(e)
	}
}

// Events is the long-poll subscription read (see eventHub.Poll).
func (d *Daemon) Events(after uint64, max int, wait time.Duration) controlapi.EventsResponse {
	return d.hub.Poll(after, max, wait)
}

// resolvePath anchors a relative path against the policy directory
// (when a policy is loaded) or the daemon's base directory.
func (d *Daemon) resolvePath(p string) string {
	if p == "" || filepath.IsAbs(p) {
		return p
	}
	d.mu.Lock()
	dir := d.baseDir
	if d.policy != nil && d.policy.Dir != "" {
		dir = d.policy.Dir
	}
	d.mu.Unlock()
	return filepath.Join(dir, p)
}

// Attach brings one bus up: validate the spec, load its model, bind
// its ingest listener, start its accept loop.
func (d *Daemon) Attach(spec controlapi.BusSpec) (controlapi.BusStatus, error) {
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		return controlapi.BusStatus{}, errors.New("daemon is draining")
	}
	if _, dup := d.buses[spec.Bus]; dup {
		d.mu.Unlock()
		return controlapi.BusStatus{}, fmt.Errorf("bus %q is already attached", spec.Bus)
	}
	d.mu.Unlock()

	dir := d.baseDir
	d.mu.Lock()
	if d.policy != nil && d.policy.Dir != "" {
		dir = d.policy.Dir
	}
	d.mu.Unlock()
	if err := control.ValidateSpec(&spec, dir); err != nil {
		return controlapi.BusStatus{}, err
	}

	b, err := d.startBus(spec)
	if err != nil {
		return controlapi.BusStatus{}, err
	}
	d.mu.Lock()
	if _, dup := d.buses[spec.Bus]; dup {
		d.mu.Unlock()
		b.stop()
		<-b.loopDone
		return controlapi.BusStatus{}, fmt.Errorf("bus %q is already attached", spec.Bus)
	}
	d.buses[spec.Bus] = b
	d.order = append(d.order, spec.Bus)
	d.mu.Unlock()
	d.logf("bus %s: attached, ingest %s://%s", spec.Bus, b.scheme, b.ingest)
	return b.status(), nil
}

// Detach stops a bus: close its listener, drain its live session (up
// to timeout, then hard-close the feed), remove it from the registry.
func (d *Daemon) Detach(bus string, timeout time.Duration) (controlapi.BusStatus, error) {
	d.mu.Lock()
	b, ok := d.buses[bus]
	if ok {
		delete(d.buses, bus)
		for i, n := range d.order {
			if n == bus {
				d.order = append(d.order[:i], d.order[i+1:]...)
				break
			}
		}
	}
	d.mu.Unlock()
	if !ok {
		return controlapi.BusStatus{}, fmt.Errorf("bus %q is not attached", bus)
	}
	b.drain(timeout)
	st := b.status()
	st.State = controlapi.BusDetached
	d.logf("bus %s: detached (%d sessions, %d aborted)", bus, st.Sessions, st.SessionsAborted)
	return st, nil
}

// Swap hot-swaps one bus's model mid-stream through its ModelStore;
// in-flight frames score against old or new, never a mix, and no
// frame is dropped.
func (d *Daemon) Swap(bus, model string) (controlapi.SwapResponse, error) {
	d.mu.Lock()
	b, ok := d.buses[bus]
	d.mu.Unlock()
	if !ok {
		return controlapi.SwapResponse{}, fmt.Errorf("bus %q is not attached", bus)
	}
	path := d.resolvePath(model)
	m, err := engine.LoadModelFile(path)
	if err != nil {
		return controlapi.SwapResponse{}, err
	}
	v, err := b.store.Swap(m)
	if err != nil {
		return controlapi.SwapResponse{}, err
	}
	b.mu.Lock()
	b.spec.Model = model
	b.mu.Unlock()
	d.logf("bus %s: model swapped to %s (version %d)", bus, model, v)
	return controlapi.SwapResponse{Bus: bus, Model: model, Version: v}, nil
}

// ApplyPolicy applies a validated policy as a diff against the
// current one: unchanged buses are not touched (their listeners stay
// bound and their detector state survives), model-only changes
// hot-swap in place, everything else restarts just that bus.
func (d *Daemon) ApplyPolicy(p *control.Policy) (controlapi.ReloadResponse, error) {
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		return controlapi.ReloadResponse{}, errors.New("daemon is draining")
	}
	old := d.policy
	d.mu.Unlock()

	diff := control.DiffPolicies(old, p)
	// Install the policy before applying the diff so relative model
	// paths in Attach/Swap resolve against the new policy's directory.
	d.mu.Lock()
	d.policy = p
	d.mu.Unlock()
	var errs []error
	for _, bus := range diff.Removed {
		if _, err := d.Detach(bus, 5*time.Second); err != nil {
			errs = append(errs, err)
		}
	}
	for _, bus := range diff.Restarted {
		if _, err := d.Detach(bus, 5*time.Second); err != nil {
			errs = append(errs, err)
		}
	}
	for _, bus := range diff.Swapped {
		if _, err := d.Swap(bus, p.Bus(bus).Model); err != nil {
			errs = append(errs, fmt.Errorf("swap %s: %w", bus, err))
		}
	}
	for _, bus := range append(append([]string{}, diff.Restarted...), diff.Added...) {
		if _, err := d.Attach(*p.Bus(bus)); err != nil {
			errs = append(errs, fmt.Errorf("attach %s: %w", bus, err))
		}
	}
	d.mu.Lock()
	d.policyGen++
	gen := d.policyGen
	d.mu.Unlock()
	resp := controlapi.ReloadResponse{
		PolicyGen: gen,
		Added:     diff.Added, Removed: diff.Removed,
		Swapped: diff.Swapped, Restarted: diff.Restarted, Unchanged: diff.Unchanged,
	}
	if len(errs) > 0 {
		return resp, errors.Join(errs...)
	}
	d.logf("policy applied (gen %d): %d added, %d removed, %d swapped, %d restarted, %d unchanged",
		gen, len(diff.Added), len(diff.Removed), len(diff.Swapped), len(diff.Restarted), len(diff.Unchanged))
	return resp, nil
}

// Reload re-reads the policy file the daemon was started with and
// applies the diff. Validation failures leave the running state
// untouched.
func (d *Daemon) Reload() (controlapi.ReloadResponse, error) {
	d.mu.Lock()
	var path string
	if d.policy != nil {
		path = d.policy.Path
	}
	d.mu.Unlock()
	if path == "" {
		return controlapi.ReloadResponse{}, errors.New("daemon was started without a policy file")
	}
	p, err := control.LoadPolicy(path)
	if err != nil {
		return controlapi.ReloadResponse{}, err
	}
	return d.ApplyPolicy(p)
}

// Status is the daemon-wide view, buses in attach order.
func (d *Daemon) Status() controlapi.StatusResponse {
	d.mu.Lock()
	var resp controlapi.StatusResponse
	if d.policy != nil {
		resp.PolicyPath = d.policy.Path
	}
	resp.PolicyGen = d.policyGen
	resp.Draining = d.draining
	runs := make([]*busRun, 0, len(d.order))
	for _, name := range d.order {
		runs = append(runs, d.buses[name])
	}
	d.mu.Unlock()
	for _, b := range runs {
		resp.Buses = append(resp.Buses, b.status())
	}
	return resp
}

// BusStatus is one bus's view.
func (d *Daemon) BusStatus(bus string) (controlapi.BusStatus, error) {
	d.mu.Lock()
	b, ok := d.buses[bus]
	d.mu.Unlock()
	if !ok {
		return controlapi.BusStatus{}, fmt.Errorf("bus %q is not attached", bus)
	}
	return b.status(), nil
}

// Flight lists a bus's finished flight bundles, or opens one bundle
// file for download.
func (d *Daemon) Flight(bus string) (controlapi.FlightList, error) {
	d.mu.Lock()
	b, ok := d.buses[bus]
	d.mu.Unlock()
	if !ok {
		return controlapi.FlightList{}, fmt.Errorf("bus %q is not attached", bus)
	}
	dir := b.flightDir()
	if dir == "" {
		return controlapi.FlightList{}, fmt.Errorf("bus %q has no flight recorder", bus)
	}
	list := controlapi.FlightList{Bus: bus}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return list, nil // recorder enabled, no bundles yet
		}
		return list, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		fb := controlapi.FlightBundle{Bus: bus, Bundle: e.Name()}
		files, err := os.ReadDir(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if !f.IsDir() {
				fb.Files = append(fb.Files, f.Name())
			}
		}
		list.Bundles = append(list.Bundles, fb)
	}
	sort.Slice(list.Bundles, func(i, j int) bool { return list.Bundles[i].Bundle < list.Bundles[j].Bundle })
	return list, nil
}

// FlightFile opens one file of one bundle for streaming to a client.
// The bundle and file names are validated as single path segments so
// the API cannot read outside the bus's flight directory.
func (d *Daemon) FlightFile(bus, bundle, file string) (io.ReadCloser, error) {
	d.mu.Lock()
	b, ok := d.buses[bus]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("bus %q is not attached", bus)
	}
	dir := b.flightDir()
	if dir == "" {
		return nil, fmt.Errorf("bus %q has no flight recorder", bus)
	}
	for _, seg := range []string{bundle, file} {
		if seg == "" || seg != filepath.Base(seg) || strings.HasPrefix(seg, ".") {
			return nil, fmt.Errorf("invalid bundle path segment %q", seg)
		}
	}
	return os.Open(filepath.Join(dir, bundle, file))
}

// Drain is the graceful shutdown: every bus's listener closes, every
// live session is asked to stop at its next record boundary, event
// logs flush, flight bundles close, and final tallies are logged. The
// returned exit code follows the CLI convention — 0 on a clean drain,
// 3 when any session aborted mid-stream (over the daemon's whole
// life, not just the drain).
func (d *Daemon) Drain(timeout time.Duration) int {
	d.mu.Lock()
	d.draining = true
	runs := make([]*busRun, 0, len(d.order))
	for _, name := range d.order {
		runs = append(runs, d.buses[name])
	}
	d.mu.Unlock()

	for _, b := range runs {
		b.stop()
	}
	deadline := time.Now().Add(timeout)
	aborted := 0
	for _, b := range runs {
		b.waitDone(time.Until(deadline))
		st := b.status()
		aborted += st.SessionsAborted
		if t := st.Tally; t != nil {
			d.logf("bus %s: final tally: %d frames, %d voltage alarms, %d timing alarms, %d suppressed, %d corruption stretches",
				st.Bus, t.Frames, t.VoltAlarms+t.PreprocFailed, t.PeriodAlarms, t.Suppressed, t.Corruptions)
			if t.Gaps != nil {
				d.logf("bus %s: datagram gaps: %d lost, %d late, %d accepted",
					st.Bus, t.Gaps.LostChunks, t.Gaps.LateChunks, t.Gaps.Datagrams)
			}
		} else {
			d.logf("bus %s: final tally: no frames ingested", st.Bus)
		}
	}
	if d.mirror != nil {
		_ = d.mirror.Close(nil)
	}
	if aborted > 0 {
		d.logf("drain complete: %d session(s) aborted", aborted)
		return 3
	}
	d.logf("drain complete: all sessions flushed cleanly")
	return 0
}

// busRun is one attached bus: its ingest listener, model store, and
// the engine session currently streaming (at most one feed at a time;
// later feeds queue on the listener's accept backlog).
type busRun struct {
	d         *Daemon
	scheme    string
	ingest    string
	modelPath string
	store     *engine.ModelStore
	ln        net.Listener          // tcp/unix
	dg        *trace.DatagramReader // udp
	loopDone  chan struct{}

	mu       sync.Mutex
	spec     controlapi.BusSpec
	state    controlapi.BusState
	stopping bool
	sessions int
	done     int
	aborted  int
	lastErr  string
	sess     *engine.Session
	feed     io.Closer
	tally    *engine.Tally
	lastSum  *engine.Summary
}

// startBus loads the model, binds the listener and starts the accept
// loop. The spec is assumed validated.
func (d *Daemon) startBus(spec controlapi.BusSpec) (*busRun, error) {
	scheme, addr, err := controlapi.ParseListen(spec.Listen)
	if err != nil {
		return nil, err
	}
	modelPath := d.resolvePath(spec.Model)
	m, err := engine.LoadModelFile(modelPath)
	if err != nil {
		return nil, err
	}
	store, err := engine.NewModelStore(m)
	if err != nil {
		return nil, err
	}
	b := &busRun{
		d: d, scheme: scheme, modelPath: modelPath, store: store,
		spec: spec, state: controlapi.BusWaiting, loopDone: make(chan struct{}),
	}
	bus := spec.Bus
	store.OnSwap(func(sm engine.StoredModel) {
		d.publish(obs.Event{
			Kind: obs.EventModelSwap, Bus: bus, Severity: obs.SeverityInfo,
			Detail: fmt.Sprintf("model version %d", sm.Version),
		})
	})
	switch scheme {
	case controlapi.SchemeUDP:
		pc, err := net.ListenPacket("udp", addr)
		if err != nil {
			return nil, err
		}
		b.dg = trace.NewDatagramReader(pc)
		b.ingest = pc.LocalAddr().String()
	case controlapi.SchemeUnix:
		cleanStaleSocket(addr)
		ln, err := net.Listen("unix", addr)
		if err != nil {
			return nil, err
		}
		b.ln = ln
		b.ingest = addr
	default:
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, err
		}
		b.ln = ln
		b.ingest = ln.Addr().String()
	}
	go b.loop()
	return b, nil
}

// cleanStaleSocket removes a unix socket file left behind by a dead
// daemon — but only when nothing answers on it.
func cleanStaleSocket(path string) {
	if _, err := os.Stat(path); err != nil {
		return
	}
	if conn, err := net.DialTimeout("unix", path, 100*time.Millisecond); err == nil {
		conn.Close() // something is live on it; let Listen fail loudly
		return
	}
	_ = os.Remove(path)
}

// loop accepts feeds one at a time (tcp/unix) or serves the single
// datagram stream (udp) until the bus stops.
func (b *busRun) loop() {
	defer close(b.loopDone)
	if b.dg != nil {
		b.serveStream("udp:"+b.ingest, b.dg, b.dg.Gaps)
		return
	}
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			return // listener closed: detach or drain
		}
		name := b.scheme + ":" + b.ingest
		if ra := conn.RemoteAddr(); ra != nil && ra.String() != "" {
			name = b.scheme + ":" + ra.String()
		}
		b.serveStream(name, conn, nil)
	}
}

// serveStream runs one feed through an engine session until the feed
// ends (EOF, error, or a stop at the next record boundary).
func (b *busRun) serveStream(name string, rc io.ReadCloser, gaps func() trace.GapStats) {
	src, err := engine.NewStreamSource(name, rc)
	if err != nil {
		b.mu.Lock()
		stopping := b.stopping
		if !stopping {
			b.lastErr = err.Error()
		}
		b.mu.Unlock()
		if !stopping {
			b.d.logf("bus %s: feed %s rejected: %v", b.busName(), name, err)
		}
		return
	}
	if gaps != nil {
		src.SetGapStats(gaps)
	}
	tally := engine.NewTally()
	sess := engine.NewSession("", b.sessionOptions(src)...)

	b.mu.Lock()
	if b.stopping {
		b.mu.Unlock()
		src.Close()
		return
	}
	b.sessions++
	b.sess = sess
	b.feed = rc
	b.tally = tally
	b.state = controlapi.BusStreaming
	b.mu.Unlock()
	b.d.logf("bus %s: feed %s streaming", b.busName(), name)

	sum, err := sess.Run(b.sink(tally))

	b.mu.Lock()
	b.sess = nil
	b.feed = nil
	b.done++
	b.lastSum = &sum
	if !b.stopping {
		b.state = controlapi.BusWaiting
	}
	var abort *engine.AbortError
	if err != nil {
		b.lastErr = err.Error()
		if errors.As(err, &abort) {
			b.aborted++
		}
	}
	b.mu.Unlock()
	if err != nil {
		b.d.logf("bus %s: feed %s ended with error: %v", b.busName(), name, err)
	} else {
		b.d.logf("bus %s: feed %s done: %d records in %.2fs",
			b.busName(), name, sum.Stats.RecordsOut, sum.Stats.WallTime.Seconds())
	}
}

func (b *busRun) busName() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spec.Bus
}

// sessionOptions translates the bus spec into engine options around
// the attached source.
func (b *busRun) sessionOptions(src *engine.StreamSource) []engine.Option {
	b.mu.Lock()
	spec := b.spec
	b.mu.Unlock()
	d := b.d
	bus := spec.Bus
	opts := []engine.Option{
		engine.WithName(bus),
		engine.WithSource(src),
		engine.WithStore(b.store),
		engine.WithWorkers(spec.Workers),
		engine.WithBatch(spec.Batch),
		engine.WithLogf(func(format string, args ...any) {
			d.logf("bus "+bus+": "+format, args...)
		}),
	}
	// UDP loss surfaces as stream corruption; recovery is mandatory
	// there (validation enforces it on the spec too).
	if spec.Recover || b.dg != nil {
		opts = append(opts, engine.WithRecovery(true))
	}
	if spec.Quarantine {
		if spec.QuarantineSuspectAfter > 0 || spec.QuarantineDegradeAfter > 0 || spec.QuarantineRecoverAfter > 0 {
			opts = append(opts, engine.WithQuarantineConfig(ids.QuarantineConfig{
				SuspectAfter: spec.QuarantineSuspectAfter,
				DegradeAfter: spec.QuarantineDegradeAfter,
				RecoverAfter: spec.QuarantineRecoverAfter,
			}))
		} else {
			opts = append(opts, engine.WithQuarantine(true))
		}
	}
	if spec.Drift {
		opts = append(opts, engine.WithDriftConfig(drift.Config{
			Bus:  bus,
			Emit: func(e obs.Event) { d.publish(e) },
		}))
	}
	if spec.StallTimeout != "" {
		if dur, err := time.ParseDuration(spec.StallTimeout); err == nil && dur > 0 {
			opts = append(opts, engine.WithStallTimeout(dur))
		}
	}
	if dir := b.flightDir(); dir != "" {
		window := spec.FlightWindow
		if window <= 0 {
			window = 8
		}
		opts = append(opts, engine.WithFlightRecorder(dir, window))
	}
	return opts
}

// flightDir is the bus's bundle directory ("" when the recorder is
// off).
func (b *busRun) flightDir() string {
	b.mu.Lock()
	spec := b.spec
	b.mu.Unlock()
	if spec.FlightDir == "" {
		return ""
	}
	return filepath.Join(b.d.resolvePath(spec.FlightDir), spec.Bus)
}

// sink folds every verdict into the bus tally and publishes the
// derived events — the same event derivation batch replay uses, so
// the daemon's alarm stream and a CLI replay of the same capture are
// one and the same.
func (b *busRun) sink(t *engine.Tally) engine.Sink {
	bus := b.busName()
	return func(res engine.Result) error {
		b.mu.Lock()
		events := t.Observe(res.Result)
		b.mu.Unlock()
		for i := range events {
			if events[i].Bus == "" {
				events[i].Bus = bus
			}
			b.d.publish(events[i])
		}
		return nil
	}
}

// drain is stop + wait: the detach path.
func (b *busRun) drain(timeout time.Duration) {
	b.stop()
	b.waitDone(timeout)
}

// stop closes the listener and asks the live session to drain at its
// next record boundary.
func (b *busRun) stop() {
	b.mu.Lock()
	b.stopping = true
	b.state = controlapi.BusDetached
	ln, dg, sess := b.ln, b.dg, b.sess
	b.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	if sess != nil {
		sess.Stop()
	}
	if dg != nil {
		// Unblocks a read waiting for the next datagram; a session
		// mid-record drains through the recovery path.
		dg.Close()
	}
}

// waitDone waits for the accept loop (and with it the live session)
// to finish, hard-closing the feed when the timeout expires.
func (b *busRun) waitDone(timeout time.Duration) {
	if timeout < 0 {
		timeout = 0
	}
	select {
	case <-b.loopDone:
		return
	case <-time.After(timeout):
	}
	b.mu.Lock()
	feed := b.feed
	b.mu.Unlock()
	if feed != nil {
		b.d.logf("bus %s: drain timeout, closing feed", b.busName())
		feed.Close()
	}
	select {
	case <-b.loopDone:
	case <-time.After(2 * time.Second):
		b.d.logf("bus %s: session did not stop after feed close", b.busName())
	}
}

// status builds the bus's control-plane view: registry counters plus
// either the live session's mid-stream snapshot or the last completed
// session's summary.
func (b *busRun) status() controlapi.BusStatus {
	b.mu.Lock()
	st := controlapi.BusStatus{
		Bus: b.spec.Bus, State: b.state, Listen: b.spec.Listen,
		Ingest: b.scheme + "://" + b.ingest, Model: b.spec.Model,
		ModelVersion: b.store.Version(),
		Sessions:     b.sessions, SessionsDone: b.done, SessionsAborted: b.aborted,
		LastError: b.lastErr, Live: b.sess != nil,
	}
	sess := b.sess
	var snap *controlapi.TallySnapshot
	if b.tally != nil {
		t := b.tally
		snap = &controlapi.TallySnapshot{
			Frames: t.Frames(), VoltAlarms: t.VoltAlarms, PreprocFailed: t.PreprocFailed,
			PeriodAlarms: t.PeriodAlarms, TPErrors: t.TPErrors, Suppressed: t.Suppressed,
			LastAt: t.LastAt, SAs: t.Rows(),
		}
	}
	lastSum := b.lastSum
	b.mu.Unlock()

	if snap != nil {
		var sum engine.Summary
		switch {
		case sess != nil:
			sum = sess.Snapshot()
		case lastSum != nil:
			sum = *lastSum
		}
		snap.Gaps = sum.Gaps
		snap.Corruptions = len(sum.Corruptions)
		snap.DegradedSAs = sum.DegradedSAs
		st.Tally = snap
	}
	return st
}
