package controlserver_test

import (
	"bytes"
	"io"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"vprofile/internal/attack"
	"vprofile/internal/control"
	"vprofile/internal/control/controlapi"
	"vprofile/internal/control/controlclient"
	"vprofile/internal/control/controlserver"
	"vprofile/internal/core"
	"vprofile/internal/engine"
	"vprofile/internal/experiments"
	"vprofile/internal/trace"
	"vprofile/internal/vehicle"
)

var (
	modelOnce sync.Once
	testModel *core.Model
)

// sharedModel trains one Mahalanobis model for the whole package,
// mirroring the engine test fixture: training dominates test time and
// determinism is all these tests need.
func sharedModel(t testing.TB) *core.Model {
	t.Helper()
	modelOnce.Do(func() {
		v := vehicle.NewVehicleB()
		train, err := experiments.CollectSamples(v, 1200, 7, nil, v.ExtractionConfig())
		if err != nil {
			panic(err)
		}
		m, err := core.Train(experiments.CoreSamples(train), core.TrainConfig{
			Metric: core.Mahalanobis, SAMap: v.SAMap(),
		})
		if err != nil {
			panic(err)
		}
		m.Margin = 2
		testModel = m
	})
	return testModel
}

// buildCapture renders clean traffic followed by a foreign-device
// attack segment — healthy verdicts, voltage alarms and timing all
// exercised.
func buildCapture(t testing.TB, seed int64, cleanN, attackN int) []byte {
	t.Helper()
	v := vehicle.NewVehicleB()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Header{Vehicle: v.Name, BitRate: v.BitRate, ADC: v.ADC})
	if err != nil {
		t.Fatal(err)
	}
	last := 0.0
	write := func(m vehicle.Message, offset float64) {
		last = offset + m.TimeSec
		err := w.Write(&trace.Record{
			ECUIndex: int32(m.ECUIndex), TimeSec: last,
			FrameID: m.Frame.ID, Data: m.Frame.Data, Trace: m.Trace,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	err = v.Stream(vehicle.GenConfig{NumMessages: cleanN, Seed: seed, DiagnosticTraffic: true}, func(m vehicle.Message) error {
		write(m, 0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := attack.Run(v, attack.Scenario{Kind: attack.Foreign, VictimECU: 1, NumMessages: attackN, Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	offset := last + 0.1
	for _, m := range msgs {
		write(m.Message, offset)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fixtureDir writes the shared model and a capture into a temp dir.
func fixtureDir(t *testing.T) (dir, modelPath, capturePath string, capture []byte) {
	t.Helper()
	dir = t.TempDir()
	modelPath = filepath.Join(dir, "model.vpm")
	f, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := sharedModel(t).Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	capture = buildCapture(t, 201, 700, 250)
	capturePath = filepath.Join(dir, "test.vptr")
	if err := os.WriteFile(capturePath, capture, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, modelPath, capturePath, capture
}

// batchTally replays the capture through a plain batch session with
// the same settings the daemon buses use and returns the reference
// tally.
func batchTally(t *testing.T, capturePath, modelPath string) *engine.Tally {
	t.Helper()
	tally := engine.NewTally()
	s := engine.NewSession(capturePath,
		engine.WithModelPath(modelPath),
		engine.WithQuarantine(true),
		engine.WithWorkers(2),
	)
	if _, err := s.Run(func(res engine.Result) error {
		tally.Observe(res.Result)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return tally
}

func waitBusDone(t *testing.T, d *controlserver.Daemon, bus string, n int) controlapi.BusStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := d.BusStatus(bus)
		if err != nil {
			t.Fatal(err)
		}
		if st.SessionsDone >= n {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("bus %s never finished: %+v", bus, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// checkTallyMatches asserts the daemon's snapshot equals the batch
// reference, counter for counter and row for row.
func checkTallyMatches(t *testing.T, got *controlapi.TallySnapshot, want *engine.Tally) {
	t.Helper()
	if got == nil {
		t.Fatal("daemon reported no tally")
	}
	if got.Frames != want.Frames() {
		t.Errorf("frames: daemon %d, batch %d", got.Frames, want.Frames())
	}
	if got.VoltAlarms != want.VoltAlarms || got.PreprocFailed != want.PreprocFailed ||
		got.PeriodAlarms != want.PeriodAlarms || got.TPErrors != want.TPErrors ||
		got.Suppressed != want.Suppressed {
		t.Errorf("counters differ:\ndaemon %+v\nbatch volt=%d preproc=%d period=%d tp=%d supp=%d",
			got, want.VoltAlarms, want.PreprocFailed, want.PeriodAlarms, want.TPErrors, want.Suppressed)
	}
	if !reflect.DeepEqual(got.SAs, want.Rows()) {
		t.Errorf("per-SA tables differ:\ndaemon %+v\nbatch  %+v", got.SAs, want.Rows())
	}
}

// TestStreamMatchesBatch is the determinism cornerstone: a capture
// streamed into the daemon over a socket must tally bit-identically
// to the same capture replayed in batch mode.
func TestStreamMatchesBatch(t *testing.T) {
	dir, modelPath, capturePath, _ := fixtureDir(t)
	want := batchTally(t, capturePath, modelPath)

	cases := []struct {
		name   string
		listen string
	}{
		{"tcp", "tcp://127.0.0.1:0"},
		{"unix", "unix://" + filepath.Join(dir, "ingest.sock")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := controlserver.New(controlserver.Config{BaseDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			defer d.Drain(5 * time.Second)
			st, err := d.Attach(controlapi.BusSpec{
				Bus: "b1", Listen: tc.listen, Model: "model.vpm",
				Workers: 2, Quarantine: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := controlclient.StreamCapture(st.Ingest, capturePath, controlclient.StreamConfig{}); err != nil {
				t.Fatal(err)
			}
			st = waitBusDone(t, d, "b1", 1)
			if st.SessionsAborted != 0 {
				t.Fatalf("streamed session aborted: %s", st.LastError)
			}
			checkTallyMatches(t, st.Tally, want)
			if st.Tally.Corruptions != 0 {
				t.Errorf("clean socket stream reported %d corruptions", st.Tally.Corruptions)
			}
			// The attack segment must have produced alarms on the daemon's
			// event stream, tagged with the bus name.
			ev := d.Events(0, 1000, 0)
			if len(ev.Events) == 0 {
				t.Fatal("no events published for an attack capture")
			}
			for _, e := range ev.Events {
				if e.Bus != "b1" {
					t.Fatalf("event without bus label: %+v", e)
				}
			}
			if code := d.Drain(5 * time.Second); code != 0 {
				t.Fatalf("clean drain exited %d", code)
			}
		})
	}
}

// TestUDPLossTolerated injects datagram drops and asserts the gap
// accounting shows up, the recovery path resyncs, and the pipeline
// still completes instead of wedging.
func TestUDPLossTolerated(t *testing.T) {
	dir, _, capturePath, capture := fixtureDir(t)
	d, err := controlserver.New(controlserver.Config{BaseDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Drain(5 * time.Second)
	st, err := d.Attach(controlapi.BusSpec{
		Bus: "udp1", Listen: "udp://127.0.0.1:0", Model: "model.vpm",
		Recover: true, Quarantine: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, addr, err := controlapi.ParseListen(st.Ingest)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	f, err := os.Open(capturePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Pace the feed: an unthrottled loopback blast overflows the UDP
	// receive buffer and every loss would be the kernel's, not ours.
	dropped := map[uint32]bool{4: true, 9: true}
	if _, err := trace.StreamDatagrams(&pacedWriter{w: conn}, f, trace.DatagramConfig{
		ChunkSize: 1024,
		Drop:      func(seq uint32) bool { return dropped[seq] },
	}); err != nil {
		t.Fatal(err)
	}
	// A datagram feed has no EOF: wait until the frame count stops
	// moving, then detach to drain the session.
	total := len(capture)
	deadline := time.Now().Add(30 * time.Second)
	lastFrames, stable := -1, 0
	for stable < 20 {
		st, err := d.BusStatus("udp1")
		if err != nil {
			t.Fatal(err)
		}
		frames := 0
		if st.Tally != nil {
			frames = st.Tally.Frames
		}
		if frames > 0 && frames == lastFrames {
			stable++
		} else {
			stable = 0
		}
		lastFrames = frames
		if time.Now().After(deadline) {
			t.Fatalf("udp ingestion never settled (frames %d of ~%d bytes)", frames, total)
		}
		time.Sleep(10 * time.Millisecond)
	}
	st, err = d.Detach("udp1", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.SessionsDone != 1 || st.SessionsAborted != 0 {
		t.Fatalf("udp session did not drain cleanly: %+v", st)
	}
	if st.Tally == nil || st.Tally.Gaps == nil {
		t.Fatalf("no gap accounting on a udp bus: %+v", st.Tally)
	}
	if st.Tally.Gaps.LostChunks < int64(len(dropped)) {
		t.Errorf("LostChunks = %d, want >= %d", st.Tally.Gaps.LostChunks, len(dropped))
	}
	if st.Tally.Corruptions == 0 {
		t.Error("dropped chunks produced no corruption-recovery reports")
	}
	// Two 1 KiB holes destroy a handful of records at most; the rest
	// of the stream must have made it through.
	if st.Tally.Frames < 900 {
		t.Errorf("only %d frames survived the lossy stream", st.Tally.Frames)
	}
}

// TestHotReloadKeepsUnchangedBus swaps one bus's model via a policy
// reload while another bus is mid-stream, and asserts the streaming
// bus neither restarts nor drops a frame.
func TestHotReloadKeepsUnchangedBus(t *testing.T) {
	dir, modelPath, capturePath, capture := fixtureDir(t)
	// A second model file for the swap.
	if err := os.WriteFile(filepath.Join(dir, "model2.vpm"), mustRead(t, modelPath), 0o644); err != nil {
		t.Fatal(err)
	}
	sockB := filepath.Join(dir, "b.sock")
	policyPath := filepath.Join(dir, "fleet.yaml")
	writePolicy := func(modelB string) {
		text := "defaults:\n  quarantine: true\n  workers: 2\nbuses:\n" +
			"  a:\n    listen: tcp://127.0.0.1:0\n    model: model.vpm\n" +
			"  b:\n    listen: unix://" + sockB + "\n    model: " + modelB + "\n"
		if err := os.WriteFile(policyPath, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writePolicy("model.vpm")
	policy, err := control.LoadPolicy(policyPath)
	if err != nil {
		t.Fatal(err)
	}
	d, err := controlserver.New(controlserver.Config{Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Drain(5 * time.Second)

	stA, err := d.BusStatus("a")
	if err != nil {
		t.Fatal(err)
	}
	_, addr, err := controlapi.ParseListen(stA.Ingest)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// First half of the capture in; bus a is now mid-stream.
	half := len(capture) / 2
	if _, err := conn.Write(capture[:half]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := d.BusStatus("a")
		if err != nil {
			t.Fatal(err)
		}
		if st.Tally != nil && st.Tally.Frames > 0 && st.Live {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bus a never started streaming: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Reload with bus b's model changed: b hot-swaps, a is untouched.
	writePolicy("model2.vpm")
	resp, err := d.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Swapped) != 1 || resp.Swapped[0] != "b" {
		t.Fatalf("Swapped = %v, want [b]", resp.Swapped)
	}
	if len(resp.Unchanged) != 1 || resp.Unchanged[0] != "a" {
		t.Fatalf("Unchanged = %v, want [a]", resp.Unchanged)
	}
	stB, err := d.BusStatus("b")
	if err != nil {
		t.Fatal(err)
	}
	if stB.ModelVersion != 2 || stB.Model != "model2.vpm" {
		t.Fatalf("bus b after swap: version %d model %s", stB.ModelVersion, stB.Model)
	}
	stA, err = d.BusStatus("a")
	if err != nil {
		t.Fatal(err)
	}
	if !stA.Live || stA.Sessions != 1 {
		t.Fatalf("reload disturbed the streaming bus: %+v", stA)
	}

	// Finish the stream; the tally must equal an uninterrupted batch
	// replay — the reload dropped nothing.
	if _, err := conn.Write(capture[half:]); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	st := waitBusDone(t, d, "a", 1)
	if st.Sessions != 1 {
		t.Fatalf("bus a restarted during reload: %d sessions", st.Sessions)
	}
	if st.SessionsAborted != 0 {
		t.Fatalf("bus a aborted: %s", st.LastError)
	}
	checkTallyMatches(t, st.Tally, batchTally(t, capturePath, modelPath))
}

// TestDrainAbortExitCode: a feed cut mid-record (no recovery) aborts
// its session, and the daemon's drain reports it via exit code 3.
func TestDrainAbortExitCode(t *testing.T) {
	dir, _, _, capture := fixtureDir(t)
	d, err := controlserver.New(controlserver.Config{BaseDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st, err := d.Attach(controlapi.BusSpec{
		Bus: "frag", Listen: "tcp://127.0.0.1:0", Model: "model.vpm",
	})
	if err != nil {
		t.Fatal(err)
	}
	_, addr, err := controlapi.ParseListen(st.Ingest)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// Everything but the last few bytes: EOF lands mid-record.
	if _, err := conn.Write(capture[:len(capture)-7]); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	st = waitBusDone(t, d, "frag", 1)
	if st.SessionsAborted != 1 {
		t.Fatalf("truncated feed did not abort: %+v", st)
	}
	if code := d.Drain(5 * time.Second); code != 3 {
		t.Fatalf("drain after an aborted session exited %d, want 3", code)
	}
}

func TestAttachValidation(t *testing.T) {
	dir, _, _, _ := fixtureDir(t)
	d, err := controlserver.New(controlserver.Config{BaseDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Drain(2 * time.Second)
	if _, err := d.Attach(controlapi.BusSpec{Bus: "x", Listen: "udp://127.0.0.1:0", Model: "model.vpm"}); err == nil {
		t.Error("udp attach without recover accepted")
	}
	if _, err := d.Attach(controlapi.BusSpec{Bus: "x", Listen: "tcp://127.0.0.1:0", Model: "missing.vpm"}); err == nil {
		t.Error("attach with a missing model accepted")
	}
	if _, err := d.Attach(controlapi.BusSpec{Bus: "x", Listen: "tcp://127.0.0.1:0", Model: "model.vpm"}); err != nil {
		t.Fatalf("good attach rejected: %v", err)
	}
	if _, err := d.Attach(controlapi.BusSpec{Bus: "x", Listen: "tcp://127.0.0.1:0", Model: "model.vpm"}); err == nil {
		t.Error("duplicate attach accepted")
	}
}

// pacedWriter sleeps briefly every few writes so a datagram burst
// stays within the receiver's socket buffer.
type pacedWriter struct {
	w io.Writer
	n int
}

func (p *pacedWriter) Write(b []byte) (int, error) {
	p.n++
	if p.n%16 == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	return p.w.Write(b)
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
