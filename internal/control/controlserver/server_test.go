package controlserver_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"vprofile/internal/control/controlapi"
	"vprofile/internal/control/controlclient"
	"vprofile/internal/control/controlserver"
)

// TestControlAPIEndToEnd drives the daemon through the HTTP server
// with the thin client — the exact path the vprofile attach/detach/
// status/tail subcommands use.
func TestControlAPIEndToEnd(t *testing.T) {
	dir, _, capturePath, _ := fixtureDir(t)
	d, err := controlserver.New(controlserver.Config{BaseDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Drain(5 * time.Second)
	srv, err := controlserver.Serve("127.0.0.1:0", d)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := controlclient.New(srv.Addr())
	ctx := context.Background()

	// Attach over HTTP, with validation errors surfacing as client
	// errors.
	if _, err := c.Attach(ctx, controlapi.BusSpec{Bus: "x", Listen: "tcp://127.0.0.1:0", Model: "gone.vpm"}); err == nil {
		t.Fatal("attach with missing model accepted over HTTP")
	} else if !strings.Contains(err.Error(), "gone.vpm") {
		t.Fatalf("validation error lost its detail over the wire: %v", err)
	}
	st, err := c.Attach(ctx, controlapi.BusSpec{
		Bus: "api1", Listen: "tcp://127.0.0.1:0", Model: "model.vpm", Quarantine: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != controlapi.BusWaiting {
		t.Fatalf("fresh bus state = %s", st.State)
	}

	// Stream a capture into the advertised ingest endpoint and wait
	// for the daemon to chew through it.
	if _, err := controlclient.StreamCapture(st.Ingest, capturePath, controlclient.StreamConfig{}); err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	st, err = c.WaitBusDone(wctx, "api1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tally == nil || st.Tally.Frames == 0 {
		t.Fatalf("no tally over HTTP: %+v", st)
	}

	// Daemon-wide status shows the bus.
	resp, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Buses) != 1 || resp.Buses[0].Bus != "api1" {
		t.Fatalf("status buses = %+v", resp.Buses)
	}

	// The event subscription pages through the attack's alarms; a
	// follow-up poll from the cursor with no new events returns empty.
	ev, err := c.Events(ctx, 0, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Events) == 0 {
		t.Fatal("no events over the subscription")
	}
	if ev.Next != ev.Events[len(ev.Events)-1].Seq+1 {
		t.Fatalf("cursor %d does not follow the last event seq %d", ev.Next, ev.Events[len(ev.Events)-1].Seq)
	}
	// Page to the tail, then a long-poll from there comes back empty.
	cursor := ev.Next
	for {
		page, err := c.Events(ctx, cursor, 100, 0)
		if err != nil {
			t.Fatal(err)
		}
		cursor = page.Next
		if len(page.Events) == 0 {
			break
		}
	}
	again, err := c.Events(ctx, cursor, 100, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Events) != 0 {
		t.Fatalf("long-poll from the tail returned %d stale events", len(again.Events))
	}

	// Model hot-swap over HTTP bumps the version.
	sw, err := c.Swap(ctx, "api1", "model.vpm")
	if err != nil {
		t.Fatal(err)
	}
	if sw.Version != 2 {
		t.Fatalf("swap version = %d, want 2", sw.Version)
	}

	// Detach removes the bus; a second detach 404s.
	st, err = c.Detach(ctx, "api1")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != controlapi.BusDetached {
		t.Fatalf("detached state = %s", st.State)
	}
	if _, err := c.Detach(ctx, "api1"); err == nil {
		t.Fatal("double detach accepted")
	}
}
