package controlserver

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"vprofile/internal/control/controlapi"
)

// maxRequestBody bounds control-request bodies; specs are tiny.
const maxRequestBody = 1 << 20

// maxEventWait caps the long-poll hold so a dead client's request
// does not pin a handler goroutine forever.
const maxEventWait = 60 * time.Second

// Server is the HTTP+JSON control listener in front of a Daemon.
type Server struct {
	d   *Daemon
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr and serves the control API until Shutdown.
func Serve(addr string, d *Daemon) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("control listen %s: %w", addr, err)
	}
	s := &Server{d: d, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc(controlapi.PathHealth, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc(controlapi.PathStatus, s.handleStatus)
	mux.HandleFunc(controlapi.PathBus, s.handleBus)
	mux.HandleFunc(controlapi.PathAttach, s.handleAttach)
	mux.HandleFunc(controlapi.PathDetach, s.handleDetach)
	mux.HandleFunc(controlapi.PathSwap, s.handleSwap)
	mux.HandleFunc(controlapi.PathReload, s.handleReload)
	mux.HandleFunc(controlapi.PathEvents, s.handleEvents)
	mux.HandleFunc(controlapi.PathFlight, s.handleFlight)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr is the bound control address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the control listener down immediately.
func (s *Server) Close() error { return s.srv.Close() }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, controlapi.Error{Error: err.Error()})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("%s requires POST", r.URL.Path))
		return false
	}
	body := io.LimitReader(r.Body, maxRequestBody)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return false
	}
	return true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.d.Status())
}

func (s *Server) handleBus(w http.ResponseWriter, r *http.Request) {
	st, err := s.d.BusStatus(r.URL.Query().Get("bus"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleAttach(w http.ResponseWriter, r *http.Request) {
	var spec controlapi.BusSpec
	if !decodeBody(w, r, &spec) {
		return
	}
	st, err := s.d.Attach(spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleDetach(w http.ResponseWriter, r *http.Request) {
	var req controlapi.DetachRequest
	if !decodeBody(w, r, &req) {
		return
	}
	st, err := s.d.Detach(req.Bus, 10*time.Second)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	var req controlapi.SwapRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := s.d.Swap(req.Bus, req.Model)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("%s requires POST", r.URL.Path))
		return
	}
	resp, err := s.d.Reload()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	after, _ := strconv.ParseUint(q.Get("after"), 10, 64)
	max, _ := strconv.Atoi(q.Get("max"))
	if max <= 0 || max > 1000 {
		max = 1000
	}
	var wait time.Duration
	if v := q.Get("wait"); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			wait = d
		}
	}
	if wait > maxEventWait {
		wait = maxEventWait
	}
	writeJSON(w, http.StatusOK, s.d.Events(after, max, wait))
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	bus, bundle, file := q.Get("bus"), q.Get("bundle"), q.Get("file")
	if bundle == "" && file == "" {
		list, err := s.d.Flight(bus)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, list)
		return
	}
	rc, err := s.d.FlightFile(bus, bundle, file)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = io.Copy(w, rc)
}
