// Package controlapi defines the wire types and endpoint paths of the
// vprofiled control API. It is the contract between controlserver
// (the daemon side) and controlclient (the CLI side): pure data, JSON
// tags, no behaviour — so a client build does not drag the engine in,
// and the two halves can only drift apart by changing this package.
package controlapi

import (
	"fmt"
	"strings"

	"vprofile/internal/engine"
	"vprofile/internal/obs"
	"vprofile/internal/trace"
)

// Endpoint paths. All bodies are JSON; errors come back as an Error
// envelope with a non-2xx status.
const (
	PathStatus = "/v1/status" // GET  → StatusResponse
	PathBus    = "/v1/bus"    // GET ?bus= → BusStatus
	PathAttach = "/v1/attach" // POST BusSpec → BusStatus
	PathDetach = "/v1/detach" // POST DetachRequest → BusStatus
	PathSwap   = "/v1/swap"   // POST SwapRequest → SwapResponse
	PathReload = "/v1/reload" // POST → ReloadResponse
	PathEvents = "/v1/events" // GET ?after=&max=&wait= → EventsResponse
	PathFlight = "/v1/flight" // GET ?bus=[&bundle=&file=] → FlightList | raw file
	PathHealth = "/healthz"   // GET → 200 "ok"
)

// Error is the JSON error envelope.
type Error struct {
	Error string `json:"error"`
}

// BusSpec declares one monitored bus: where its feed listens and how
// its session is configured. It is both the YAML fleet-policy bus
// entry (after defaults merge) and the attach request body.
type BusSpec struct {
	// Bus is the bus name — result/event/metric label and API key.
	Bus string `json:"bus"`
	// Listen is the ingest endpoint the daemon accepts the feed on:
	// "tcp://host:port", "unix:///path.sock" or "udp://host:port".
	Listen string `json:"listen"`
	// Model is the detection model path (resolved against the policy
	// file's directory when relative).
	Model string `json:"model"`

	Workers int  `json:"workers,omitempty"`
	Batch   int  `json:"batch,omitempty"`
	Recover bool `json:"recover,omitempty"`

	Quarantine bool `json:"quarantine,omitempty"`
	// Quarantine thresholds; zero takes the engine defaults.
	QuarantineSuspectAfter int `json:"quarantine_suspect_after,omitempty"`
	QuarantineDegradeAfter int `json:"quarantine_degrade_after,omitempty"`
	QuarantineRecoverAfter int `json:"quarantine_recover_after,omitempty"`

	Drift bool `json:"drift,omitempty"`
	// StallTimeout arms the slow-sink watchdog, as a Go duration
	// string ("30s"); empty disables.
	StallTimeout string `json:"stall_timeout,omitempty"`

	// FlightDir enables the flight recorder, writing forensic bundles
	// under dir/<bus>/; FlightWindow is the pre/post context in frames
	// (0 = engine default).
	FlightDir    string `json:"flight_dir,omitempty"`
	FlightWindow int    `json:"flight_window,omitempty"`
}

// SchemeTCP, SchemeUnix and SchemeUDP are the ingest transports.
const (
	SchemeTCP  = "tcp"
	SchemeUnix = "unix"
	SchemeUDP  = "udp"
)

// ParseListen splits a listen URL into transport scheme and address.
// It accepts exactly the three ingest schemes.
func ParseListen(s string) (scheme, addr string, err error) {
	scheme, addr, ok := strings.Cut(s, "://")
	if !ok {
		return "", "", fmt.Errorf("%q is not scheme://address", s)
	}
	switch scheme {
	case SchemeTCP, SchemeUDP:
		if !strings.Contains(addr, ":") {
			return "", "", fmt.Errorf("%s address %q needs host:port", scheme, addr)
		}
	case SchemeUnix:
		if addr == "" {
			return "", "", fmt.Errorf("unix listener needs a socket path")
		}
	default:
		return "", "", fmt.Errorf("unsupported scheme %q (tcp, unix, udp)", scheme)
	}
	return scheme, addr, nil
}

// BusState is a bus's ingest lifecycle state.
type BusState string

const (
	// BusWaiting: listener up, no feed connected.
	BusWaiting BusState = "waiting"
	// BusStreaming: a feed is connected and records are flowing.
	BusStreaming BusState = "streaming"
	// BusDetached: the bus has been detached; terminal.
	BusDetached BusState = "detached"
)

// TallySnapshot is a bus's verdict accounting: the summary counters
// plus the per-SA table, exactly the numbers batch `vprofile detect`
// prints — stream-vs-batch determinism is asserted against this.
type TallySnapshot struct {
	Frames        int               `json:"frames"`
	VoltAlarms    int               `json:"volt_alarms"`
	PreprocFailed int               `json:"preproc_failed"`
	PeriodAlarms  int               `json:"period_alarms"`
	TPErrors      int               `json:"tp_errors"`
	Suppressed    int               `json:"suppressed"`
	LastAt        float64           `json:"last_at"`
	SAs           []engine.TallyRow `json:"sas,omitempty"`
	Gaps          *trace.GapStats   `json:"gaps,omitempty"`
	Corruptions   int               `json:"corruptions"`
	DegradedSAs   int               `json:"degraded_sas"`
}

// BusStatus is one bus's full control-plane view.
type BusStatus struct {
	Bus    string   `json:"bus"`
	State  BusState `json:"state"`
	Listen string   `json:"listen"`
	// Ingest is the resolved feed address (useful when Listen bound
	// port 0).
	Ingest string `json:"ingest"`
	Model  string `json:"model"`
	// ModelVersion is the store's current hot-swap generation.
	ModelVersion int `json:"model_version"`
	// Sessions counts feeds served so far (including the live one);
	// SessionsDone counts completed ones, SessionsAborted those that
	// died mid-stream.
	Sessions        int    `json:"sessions"`
	SessionsDone    int    `json:"sessions_done"`
	SessionsAborted int    `json:"sessions_aborted"`
	LastError       string `json:"last_error,omitempty"`
	// Live is true while a feed is streaming; Tally then reflects the
	// in-flight session (mid-stream snapshot), otherwise the last
	// completed one.
	Live  bool           `json:"live"`
	Tally *TallySnapshot `json:"tally,omitempty"`
}

// StatusResponse is the daemon-wide view.
type StatusResponse struct {
	// PolicyPath is the loaded fleet policy file ("" when the daemon
	// runs without one); PolicyGen counts applied policies (1 = the
	// one loaded at startup).
	PolicyPath string      `json:"policy_path,omitempty"`
	PolicyGen  int         `json:"policy_gen"`
	Draining   bool        `json:"draining"`
	Buses      []BusStatus `json:"buses"`
}

// DetachRequest asks the daemon to stop a bus. Drain waits for the
// live session to flush before returning.
type DetachRequest struct {
	Bus string `json:"bus"`
}

// SwapRequest hot-swaps one bus's model mid-stream.
type SwapRequest struct {
	Bus   string `json:"bus"`
	Model string `json:"model"`
}

// SwapResponse reports the store generation after the swap.
type SwapResponse struct {
	Bus     string `json:"bus"`
	Model   string `json:"model"`
	Version int    `json:"version"`
}

// ReloadResponse is the hot-reload diff: which buses were added,
// removed, model-swapped in place, restarted (listener or session
// config changed), or left untouched.
type ReloadResponse struct {
	PolicyGen int      `json:"policy_gen"`
	Added     []string `json:"added,omitempty"`
	Removed   []string `json:"removed,omitempty"`
	Swapped   []string `json:"swapped,omitempty"`
	Restarted []string `json:"restarted,omitempty"`
	Unchanged []string `json:"unchanged,omitempty"`
}

// EventRecord is one alarm/incident event with its position in the
// daemon's event sequence — the long-poll cursor.
type EventRecord struct {
	Seq uint64 `json:"seq"`
	obs.Event
}

// EventsResponse is one page of the event subscription. Next is the
// cursor to pass as ?after= on the following poll; Dropped counts
// events that aged out of the ring before this client saw them.
type EventsResponse struct {
	Events  []EventRecord `json:"events"`
	Next    uint64        `json:"next"`
	Dropped uint64        `json:"dropped,omitempty"`
}

// FlightBundle describes one forensic bundle available for download.
type FlightBundle struct {
	Bus    string   `json:"bus"`
	Bundle string   `json:"bundle"`
	Files  []string `json:"files"`
}

// FlightList is the flight-bundle index for a bus.
type FlightList struct {
	Bus     string         `json:"bus"`
	Bundles []FlightBundle `json:"bundles"`
}
