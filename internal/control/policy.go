// Package control implements the vprofiled fleet policy: a
// declarative YAML description of which buses the daemon monitors,
// how each bus's session is configured, and where alarms go. Parsing
// is strict — unknown keys, bad values and missing model files are
// rejected with file:line field-path errors — because the policy is
// the daemon's entire configuration surface and a silently ignored
// typo is a bus that never gets monitored.
package control

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"vprofile/internal/control/controlapi"
)

// Policy is one parsed and validated fleet policy.
type Policy struct {
	// Path is the file the policy was loaded from ("" for in-memory
	// policies); Dir anchors relative model paths.
	Path string
	Dir  string

	// Control is the daemon's control-API listen address
	// ("host:port"); empty defers to the -control flag.
	Control string

	// Alarms routes the daemon-wide alarm stream.
	Alarms AlarmPolicy

	// Buses, in file order.
	Buses []controlapi.BusSpec
}

// AlarmPolicy configures alarm routing: an optional JSONL event-log
// mirror on disk, and the size of the in-memory ring the control
// API's event subscription reads from.
type AlarmPolicy struct {
	// Events is a JSONL file every published event is appended to
	// ("" disables the mirror).
	Events string
	// Buffer is the event-ring capacity (0 = DefaultEventBuffer).
	Buffer int
}

// DefaultEventBuffer is the alarm ring capacity when the policy
// leaves it unset: enough that a tailing client several seconds
// behind a noisy bus still misses nothing.
const DefaultEventBuffer = 4096

// Bus returns the spec for name, or nil.
func (p *Policy) Bus(name string) *controlapi.BusSpec {
	for i := range p.Buses {
		if p.Buses[i].Bus == name {
			return &p.Buses[i]
		}
	}
	return nil
}

// errs collects field-path validation errors for one policy load so
// an operator sees every problem in one pass, not one per run.
type errs struct {
	file string
	list []error
}

func (e *errs) add(line int, path, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if line > 0 {
		e.list = append(e.list, fmt.Errorf("%s:%d: %s: %s", e.file, line, path, msg))
	} else {
		e.list = append(e.list, fmt.Errorf("%s: %s: %s", e.file, path, msg))
	}
}

func (e *errs) err() error { return errors.Join(e.list...) }

// LoadPolicy reads, parses and validates a policy file. Model paths
// are checked for existence (relative to the policy file's
// directory) — a daemon must not come up half-configured.
func LoadPolicy(path string) (*Policy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := ParsePolicy(path, data)
	if err != nil {
		return nil, err
	}
	p.Path = path
	return p, nil
}

// ParsePolicy parses and validates policy text. name tags errors
// (usually the file path); relative model paths resolve against its
// directory.
func ParsePolicy(name string, data []byte) (*Policy, error) {
	root, err := parseYAML(name, data)
	if err != nil {
		return nil, err
	}
	p := &Policy{Path: name, Dir: filepath.Dir(name)}
	e := &errs{file: name}

	known := map[string]bool{"control": true, "defaults": true, "alarms": true, "buses": true}
	for _, k := range root.keys {
		if !known[k] {
			e.add(root.children[k].line, k, "unknown key (control, defaults, alarms, buses)")
		}
	}

	p.Control = bindString(e, root.child("control"), "control")

	if a := root.child("alarms"); a != nil {
		if a.isScalar {
			e.add(a.line, "alarms", "expected a map (events, buffer)")
		} else {
			for _, k := range a.keys {
				switch k {
				case "events":
					p.Alarms.Events = bindString(e, a.child(k), "alarms.events")
				case "buffer":
					p.Alarms.Buffer = bindInt(e, a.child(k), "alarms.buffer")
				default:
					e.add(a.children[k].line, "alarms."+k, "unknown key (events, buffer)")
				}
			}
		}
	}
	if p.Alarms.Buffer < 0 {
		e.add(0, "alarms.buffer", "must be >= 0, got %d", p.Alarms.Buffer)
	}

	var defaults controlapi.BusSpec
	var defaultKeys map[string]bool
	if d := root.child("defaults"); d != nil {
		if d.isScalar {
			e.add(d.line, "defaults", "expected a map of bus settings")
		} else {
			defaultKeys = map[string]bool{}
			bindBusSettings(e, d, "defaults", &defaults, defaultKeys)
		}
	}

	buses := root.child("buses")
	if buses == nil || len(buses.keys) == 0 {
		e.add(root.line, "buses", "at least one bus is required")
	} else if buses.isScalar {
		e.add(buses.line, "buses", "expected a map of bus name -> settings")
	} else {
		for _, busName := range buses.keys {
			bn := buses.children[busName]
			path := "buses." + busName
			if err := validBusName(busName); err != nil {
				e.add(bn.line, path, "%v", err)
			}
			if bn.isScalar {
				e.add(bn.line, path, "expected a map of bus settings")
				continue
			}
			spec := defaults // start from defaults, overridden per key
			spec.Bus = busName
			seen := map[string]bool{}
			bindBusSettings(e, bn, path, &spec, seen)
			if !seen["listen"] && spec.Listen == "" {
				e.add(bn.line, path+".listen", "required (tcp://host:port, unix:///path.sock or udp://host:port)")
			}
			if !seen["model"] && spec.Model == "" {
				e.add(bn.line, path+".model", "required")
			}
			validateSpec(e, bn.line, path, &spec, p.Dir)
			p.Buses = append(p.Buses, spec)
		}
	}
	// Duplicate listen addresses cannot both bind; catch it at
	// validation time.
	byListen := map[string]string{}
	for _, b := range p.Buses {
		if b.Listen == "" {
			continue
		}
		if prev, dup := byListen[b.Listen]; dup {
			e.add(0, "buses."+b.Bus+".listen", "duplicate listen address %q (also used by buses.%s)", b.Listen, prev)
		}
		byListen[b.Listen] = b.Bus
	}
	if err := e.err(); err != nil {
		return nil, err
	}
	return p, nil
}

// busSettingKeys is the per-bus (and defaults) key set.
var busSettingKeys = []string{
	"listen", "model", "workers", "batch", "recover", "quarantine",
	"drift", "stall_timeout", "flight_dir", "flight_window",
}

// bindBusSettings binds one settings map (a bus entry or the defaults
// block) into spec, recording which keys appeared in seen.
func bindBusSettings(e *errs, n *node, path string, spec *controlapi.BusSpec, seen map[string]bool) {
	for _, k := range n.keys {
		c := n.children[k]
		kp := path + "." + k
		seen[k] = true
		switch k {
		case "listen":
			spec.Listen = bindString(e, c, kp)
		case "model":
			spec.Model = bindString(e, c, kp)
		case "workers":
			spec.Workers = bindInt(e, c, kp)
		case "batch":
			spec.Batch = bindInt(e, c, kp)
		case "recover":
			spec.Recover = bindBool(e, c, kp)
		case "drift":
			spec.Drift = bindBool(e, c, kp)
		case "stall_timeout":
			spec.StallTimeout = bindDuration(e, c, kp)
		case "flight_dir":
			spec.FlightDir = bindString(e, c, kp)
		case "flight_window":
			spec.FlightWindow = bindInt(e, c, kp)
		case "quarantine":
			// Either a bare bool (`quarantine: true`) or a tuning map.
			if c.isScalar {
				spec.Quarantine = bindBool(e, c, kp)
				continue
			}
			spec.Quarantine = true
			for _, qk := range c.keys {
				qc := c.children[qk]
				qp := kp + "." + qk
				switch qk {
				case "suspect_after":
					spec.QuarantineSuspectAfter = bindRangedInt(e, qc, qp, 1, 1<<20)
				case "degrade_after":
					spec.QuarantineDegradeAfter = bindRangedInt(e, qc, qp, 1, 1<<20)
				case "recover_after":
					spec.QuarantineRecoverAfter = bindRangedInt(e, qc, qp, 1, 1<<24)
				default:
					e.add(qc.line, qp, "unknown key (suspect_after, degrade_after, recover_after)")
				}
			}
		default:
			e.add(c.line, kp, "unknown key (%s)", strings.Join(busSettingKeys, ", "))
		}
	}
}

// validBusName keeps bus names safe as metric labels, path segments
// and API keys.
func validBusName(name string) error {
	if name == "" {
		return errors.New("bus name must not be empty")
	}
	for _, r := range name {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '-' || r == '_' || r == '.' {
			continue
		}
		return fmt.Errorf("bus name %q may only contain letters, digits, '-', '_' and '.'", name)
	}
	return nil
}

// validateSpec checks one merged bus spec's semantic constraints.
// line anchors errors for constraints that span keys.
func validateSpec(e *errs, line int, path string, spec *controlapi.BusSpec, dir string) {
	scheme := ""
	if spec.Listen != "" {
		var err error
		scheme, _, err = controlapi.ParseListen(spec.Listen)
		if err != nil {
			e.add(line, path+".listen", "%v", err)
		}
	}
	if scheme == controlapi.SchemeUDP && !spec.Recover {
		e.add(line, path+".recover", "udp listeners require recover: true (datagram loss surfaces as stream corruption)")
	}
	if spec.Model != "" {
		mp := spec.Model
		if !filepath.IsAbs(mp) && dir != "" {
			mp = filepath.Join(dir, mp)
		}
		if _, err := os.Stat(mp); err != nil {
			e.add(line, path+".model", "model file %s: %v", spec.Model, errors.Unwrap(err))
		}
	}
	if spec.Workers < 0 {
		e.add(line, path+".workers", "must be >= 0, got %d", spec.Workers)
	}
	if spec.Batch < 0 {
		e.add(line, path+".batch", "must be >= 0, got %d", spec.Batch)
	}
	if spec.FlightWindow < 0 {
		e.add(line, path+".flight_window", "must be >= 0, got %d", spec.FlightWindow)
	}
	// 0 means "engine default" for every quarantine threshold; an
	// explicit value must be in range (YAML binding already rejected
	// explicit zeros with a line number, this also covers API attach).
	q := spec
	if q.QuarantineSuspectAfter < 0 || q.QuarantineSuspectAfter > 1<<20 {
		e.add(line, path+".quarantine.suspect_after", "out of range: must be in [1, %d] (0 = default), got %d", 1<<20, q.QuarantineSuspectAfter)
	}
	if q.QuarantineDegradeAfter < 0 || q.QuarantineDegradeAfter > 1<<20 {
		e.add(line, path+".quarantine.degrade_after", "out of range: must be in [1, %d] (0 = default), got %d", 1<<20, q.QuarantineDegradeAfter)
	}
	if q.QuarantineRecoverAfter < 0 || q.QuarantineRecoverAfter > 1<<24 {
		e.add(line, path+".quarantine.recover_after", "out of range: must be in [1, %d] (0 = default), got %d", 1<<24, q.QuarantineRecoverAfter)
	}
	if q.QuarantineSuspectAfter > 0 && q.QuarantineDegradeAfter > 0 &&
		q.QuarantineDegradeAfter <= q.QuarantineSuspectAfter {
		e.add(line, path+".quarantine.degrade_after", "must be > suspect_after (%d), got %d",
			q.QuarantineSuspectAfter, q.QuarantineDegradeAfter)
	}
	if spec.StallTimeout != "" {
		if d, err := time.ParseDuration(spec.StallTimeout); err != nil {
			e.add(line, path+".stall_timeout", "%v", err)
		} else if d < 0 {
			e.add(line, path+".stall_timeout", "must be >= 0, got %s", d)
		}
	}
}

// ValidateSpec checks a single bus spec outside a policy file — the
// control API's attach path. dir anchors relative model paths.
func ValidateSpec(spec *controlapi.BusSpec, dir string) error {
	e := &errs{file: "attach"}
	if err := validBusName(spec.Bus); err != nil {
		e.add(0, "bus", "%v", err)
	}
	if spec.Listen == "" {
		e.add(0, "listen", "required (tcp://host:port, unix:///path.sock or udp://host:port)")
	}
	if spec.Model == "" {
		e.add(0, "model", "required")
	}
	validateSpec(e, 0, "bus "+spec.Bus, spec, dir)
	return e.err()
}

// bind helpers: each reports a typed value or records a field-path
// error and returns the zero value.

func bindString(e *errs, n *node, path string) string {
	if n == nil {
		return ""
	}
	if !n.isScalar {
		e.add(n.line, path, "expected a string value")
		return ""
	}
	return n.scalar
}

func bindInt(e *errs, n *node, path string) int {
	if n == nil {
		return 0
	}
	if !n.isScalar {
		e.add(n.line, path, "expected an integer value")
		return 0
	}
	v, err := strconv.Atoi(n.scalar)
	if err != nil {
		e.add(n.line, path, "expected an integer, got %q", n.scalar)
		return 0
	}
	return v
}

func bindBool(e *errs, n *node, path string) bool {
	if n == nil {
		return false
	}
	if !n.isScalar {
		e.add(n.line, path, "expected true or false")
		return false
	}
	switch n.scalar {
	case "true":
		return true
	case "false":
		return false
	}
	e.add(n.line, path, "expected true or false, got %q", n.scalar)
	return false
}

// bindRangedInt is bindInt plus an inclusive range check — for keys
// where an explicit value outside [min, max] is a configuration bug.
func bindRangedInt(e *errs, n *node, path string, min, max int) int {
	v := bindInt(e, n, path)
	if n != nil && n.isScalar && (v < min || v > max) {
		e.add(n.line, path, "out of range: must be in [%d, %d], got %d", min, max, v)
	}
	return v
}

func bindDuration(e *errs, n *node, path string) string {
	if n == nil {
		return ""
	}
	if !n.isScalar {
		e.add(n.line, path, "expected a duration (e.g. 30s)")
		return ""
	}
	return n.scalar // range/format checked in validateSpec
}

// Diff classifies every bus across a policy reload. The daemon
// applies it without touching unchanged buses: a model-only change
// hot-swaps through the bus's ModelStore mid-stream (no frames
// dropped), anything else restarts that bus's listener and session.
type Diff struct {
	Added     []string
	Removed   []string
	Swapped   []string // only Model changed
	Restarted []string // other settings changed
	Unchanged []string
}

// DiffPolicies compares old and new bus sets by bus name.
func DiffPolicies(old, new *Policy) Diff {
	var d Diff
	oldBy := map[string]controlapi.BusSpec{}
	if old != nil {
		for _, b := range old.Buses {
			oldBy[b.Bus] = b
		}
	}
	seen := map[string]bool{}
	for _, nb := range new.Buses {
		seen[nb.Bus] = true
		ob, ok := oldBy[nb.Bus]
		if !ok {
			d.Added = append(d.Added, nb.Bus)
			continue
		}
		if ob == nb {
			d.Unchanged = append(d.Unchanged, nb.Bus)
			continue
		}
		// Same spec apart from the model path → hot-swap in place.
		swapped := ob
		swapped.Model = nb.Model
		if swapped == nb {
			d.Swapped = append(d.Swapped, nb.Bus)
		} else {
			d.Restarted = append(d.Restarted, nb.Bus)
		}
	}
	if old != nil {
		for _, ob := range old.Buses {
			if !seen[ob.Bus] {
				d.Removed = append(d.Removed, ob.Bus)
			}
		}
	}
	return d
}
