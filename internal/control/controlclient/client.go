// Package controlclient is the thin client side of the vprofiled
// control API: HTTP+JSON calls speaking controlapi wire types, plus
// the feed helpers that push a capture into a daemon's ingest
// listener. The vprofile CLI subcommands (attach/detach/status/tail)
// are built entirely on this package.
package controlclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"vprofile/internal/control/controlapi"
	"vprofile/internal/trace"
)

// Client talks to one daemon's control listener.
type Client struct {
	base string
	hc   *http.Client
}

// New builds a client for a control address ("host:port" or a full
// http:// URL).
func New(addr string) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	return &Client{base: base, hc: &http.Client{}}
}

// call performs one JSON round trip. out may be nil.
func (c *Client) call(ctx context.Context, method, path string, query url.Values, in, out any) error {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e controlapi.Error
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("daemon: %s", e.Error)
		}
		return fmt.Errorf("daemon: %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Status fetches the daemon-wide view.
func (c *Client) Status(ctx context.Context) (controlapi.StatusResponse, error) {
	var out controlapi.StatusResponse
	err := c.call(ctx, http.MethodGet, controlapi.PathStatus, nil, nil, &out)
	return out, err
}

// Bus fetches one bus's view.
func (c *Client) Bus(ctx context.Context, bus string) (controlapi.BusStatus, error) {
	var out controlapi.BusStatus
	err := c.call(ctx, http.MethodGet, controlapi.PathBus, url.Values{"bus": {bus}}, nil, &out)
	return out, err
}

// Attach asks the daemon to bring a bus up.
func (c *Client) Attach(ctx context.Context, spec controlapi.BusSpec) (controlapi.BusStatus, error) {
	var out controlapi.BusStatus
	err := c.call(ctx, http.MethodPost, controlapi.PathAttach, nil, spec, &out)
	return out, err
}

// Detach drains and removes a bus.
func (c *Client) Detach(ctx context.Context, bus string) (controlapi.BusStatus, error) {
	var out controlapi.BusStatus
	err := c.call(ctx, http.MethodPost, controlapi.PathDetach, nil, controlapi.DetachRequest{Bus: bus}, &out)
	return out, err
}

// Swap hot-swaps a bus's model.
func (c *Client) Swap(ctx context.Context, bus, model string) (controlapi.SwapResponse, error) {
	var out controlapi.SwapResponse
	err := c.call(ctx, http.MethodPost, controlapi.PathSwap, nil, controlapi.SwapRequest{Bus: bus, Model: model}, &out)
	return out, err
}

// Reload re-reads and applies the daemon's policy file.
func (c *Client) Reload(ctx context.Context) (controlapi.ReloadResponse, error) {
	var out controlapi.ReloadResponse
	err := c.call(ctx, http.MethodPost, controlapi.PathReload, nil, nil, &out)
	return out, err
}

// Events long-polls the alarm subscription: events after the cursor,
// held up to wait when none are pending.
func (c *Client) Events(ctx context.Context, after uint64, max int, wait time.Duration) (controlapi.EventsResponse, error) {
	q := url.Values{"after": {fmt.Sprint(after)}}
	if max > 0 {
		q.Set("max", fmt.Sprint(max))
	}
	if wait > 0 {
		q.Set("wait", wait.String())
	}
	var out controlapi.EventsResponse
	err := c.call(ctx, http.MethodGet, controlapi.PathEvents, q, nil, &out)
	return out, err
}

// Flight lists a bus's flight bundles.
func (c *Client) Flight(ctx context.Context, bus string) (controlapi.FlightList, error) {
	var out controlapi.FlightList
	err := c.call(ctx, http.MethodGet, controlapi.PathFlight, url.Values{"bus": {bus}}, nil, &out)
	return out, err
}

// FlightFile streams one bundle file.
func (c *Client) FlightFile(ctx context.Context, bus, bundle, file string) (io.ReadCloser, error) {
	q := url.Values{"bus": {bus}, "bundle": {bundle}, "file": {file}}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+controlapi.PathFlight+"?"+q.Encode(), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		var e controlapi.Error
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("daemon: %s", e.Error)
		}
		return nil, fmt.Errorf("daemon: %s", resp.Status)
	}
	return resp.Body, nil
}

// WaitBusDone polls a bus until at least n sessions have completed
// (the attach-and-stream workflow's "my feed was fully processed").
func (c *Client) WaitBusDone(ctx context.Context, bus string, n int) (controlapi.BusStatus, error) {
	for {
		st, err := c.Bus(ctx, bus)
		if err != nil {
			return st, err
		}
		if st.SessionsDone >= n {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// StreamConfig tunes StreamCapture.
type StreamConfig struct {
	// Datagram applies to udp:// ingest endpoints.
	Datagram trace.DatagramConfig
}

// StreamCapture pushes a capture file into a daemon ingest endpoint
// ("tcp://host:port", "unix:///path.sock" or "udp://host:port") and
// returns the number of capture bytes sent. For tcp/unix the capture
// bytes go down the connection as-is — the format is self-delimiting;
// for udp they are chunked into sequenced datagrams.
func StreamCapture(ingest, capturePath string, cfg StreamConfig) (int64, error) {
	scheme, addr, err := controlapi.ParseListen(ingest)
	if err != nil {
		return 0, err
	}
	f, err := os.Open(capturePath)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if scheme == controlapi.SchemeUDP {
		return trace.DialDatagramFeed(addr, f, cfg.Datagram)
	}
	conn, err := net.Dial(scheme, addr)
	if err != nil {
		return 0, fmt.Errorf("dial %s: %w", ingest, err)
	}
	defer conn.Close()
	return io.Copy(conn, f)
}
