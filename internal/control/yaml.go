package control

import (
	"fmt"
	"strings"
)

// The fleet policy is YAML for operator familiarity, but this repo
// takes no external dependencies, so the daemon parses a strict,
// deliberately small YAML subset: nested maps of scalars, indented
// with spaces, with `#` comments and single- or double-quoted
// strings. Anchors, lists, multi-line scalars and flow syntax are
// rejected loudly — a policy file is configuration, and configuration
// that parses by luck is worse than configuration that fails with a
// line number.

// node is one parsed YAML value: a scalar leaf or a map of named
// children. Every node remembers its source line so validation errors
// can point at the file.
type node struct {
	line     int
	scalar   string
	isScalar bool
	keys     []string // child order, for deterministic iteration
	children map[string]*node
	// childIndent is the column shared by this map's children; 0 until
	// the first child arrives.
	childIndent int
}

func (n *node) child(key string) *node {
	if n == nil || n.children == nil {
		return nil
	}
	return n.children[key]
}

// parseYAML parses the subset described above. name tags error
// messages (usually the policy file path).
func parseYAML(name string, data []byte) (*node, error) {
	root := &node{line: 0, children: map[string]*node{}}
	// stack[i] is the innermost open map at indent depths[i].
	stack := []*node{root}
	depths := []int{-1}

	lines := strings.Split(string(data), "\n")
	for i, raw := range lines {
		lineNo := i + 1
		line := stripComment(raw)
		if strings.TrimSpace(line) == "" {
			continue
		}
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return nil, fmt.Errorf("%s:%d: tab in indentation (use spaces)", name, lineNo)
		}
		content := line[indent:]
		if strings.HasPrefix(content, "- ") || content == "-" {
			return nil, fmt.Errorf("%s:%d: YAML lists are not supported in policy files", name, lineNo)
		}

		// Pop to the map this line belongs to.
		for len(stack) > 1 && indent <= depths[len(depths)-1] {
			stack = stack[:len(stack)-1]
			depths = depths[:len(depths)-1]
		}
		parent := stack[len(stack)-1]
		if parent.isScalar {
			return nil, fmt.Errorf("%s:%d: unexpected indentation under a scalar value", name, lineNo)
		}

		key, val, hasVal, err := splitKeyValue(content)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", name, lineNo, err)
		}
		if parent.children == nil {
			parent.children = map[string]*node{}
		}
		if _, dup := parent.children[key]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate key %q", name, lineNo, key)
		}
		// Enforce sibling alignment: all children of one map share the
		// same indent.
		if len(parent.keys) == 0 {
			parent.childIndent = indent
		} else if indent != parent.childIndent {
			return nil, fmt.Errorf("%s:%d: inconsistent indentation for key %q (got %d spaces, siblings use %d)",
				name, lineNo, key, indent, parent.childIndent)
		}

		child := &node{line: lineNo}
		parent.children[key] = child
		parent.keys = append(parent.keys, key)
		if hasVal {
			child.isScalar = true
			child.scalar = val
			continue
		}
		// `key:` with nothing after — an (initially empty) nested map.
		stack = append(stack, child)
		depths = append(depths, indent)
	}
	return root, nil
}

// stripComment removes a trailing `# ...` comment, respecting quoted
// strings.
func stripComment(line string) string {
	inSingle, inDouble := false, false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle && (i == 0 || line[i-1] != '\\') {
				inDouble = !inDouble
			}
		case '#':
			if !inSingle && !inDouble && (i == 0 || line[i-1] == ' ' || line[i-1] == '\t') {
				return line[:i]
			}
		}
	}
	return line
}

// splitKeyValue parses `key:` or `key: value` and unquotes value.
// hasVal distinguishes a map intro (`key:`) from an explicit empty
// scalar (`key: ""`).
func splitKeyValue(content string) (key, val string, hasVal bool, err error) {
	idx := strings.Index(content, ":")
	if idx <= 0 {
		return "", "", false, fmt.Errorf("expected `key:` or `key: value`, got %q", strings.TrimSpace(content))
	}
	key = strings.TrimSpace(content[:idx])
	if strings.ContainsAny(key, "\"'{}[]") {
		return "", "", false, fmt.Errorf("unsupported key syntax %q", key)
	}
	rest := strings.TrimSpace(content[idx+1:])
	if rest == "" {
		return key, "", false, nil
	}
	if strings.HasPrefix(rest, "|") || strings.HasPrefix(rest, ">") {
		return "", "", false, fmt.Errorf("multi-line scalars (|, >) are not supported in policy files")
	}
	if strings.HasPrefix(rest, "{") || strings.HasPrefix(rest, "[") {
		return "", "", false, fmt.Errorf("flow syntax ({...}, [...]) is not supported in policy files")
	}
	if strings.HasPrefix(rest, "&") || strings.HasPrefix(rest, "*") {
		return "", "", false, fmt.Errorf("YAML anchors/aliases are not supported in policy files")
	}
	val, err = unquote(rest)
	if err != nil {
		return "", "", false, err
	}
	return key, val, true, nil
}

// unquote strips one level of single or double quotes; unquoted
// values pass through trimmed.
func unquote(s string) (string, error) {
	if len(s) >= 2 && s[0] == '\'' {
		if s[len(s)-1] != '\'' {
			return "", fmt.Errorf("unterminated single-quoted string %q", s)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	}
	if len(s) >= 2 && s[0] == '"' {
		if s[len(s)-1] != '"' {
			return "", fmt.Errorf("unterminated double-quoted string %q", s)
		}
		body := s[1 : len(s)-1]
		body = strings.ReplaceAll(body, `\"`, `"`)
		body = strings.ReplaceAll(body, `\\`, `\`)
		return body, nil
	}
	return s, nil
}
