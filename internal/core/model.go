package core

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"vprofile/internal/canbus"
	"vprofile/internal/linalg"
)

// Metric selects the distance function of Section 2.2.2.
type Metric int

// Supported distance metrics.
const (
	Euclidean Metric = iota
	Mahalanobis
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case Euclidean:
		return "euclidean"
	case Mahalanobis:
		return "mahalanobis"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// ClusterID indexes a cluster (one per physical ECU) within a model.
type ClusterID int

// Errors reported by the package.
var (
	ErrNoSamples      = errors.New("core: no training samples")
	ErrDimMismatch    = errors.New("core: edge set dimensionality mismatch")
	ErrSingularCov    = errors.New("core: singular covariance matrix (resolution or sample count too low)")
	ErrUnknownSA      = errors.New("core: source address not in model")
	ErrUnknownCluster = errors.New("core: cluster id out of range")
)

// Cluster holds the trained statistics of one ECU: everything the
// model of Algorithm 2 stores per cluster, extended with the counters
// Algorithm 4 needs for online updates.
type Cluster struct {
	ID   ClusterID
	SAs  []canbus.SourceAddress // source addresses this ECU transmits
	Mean linalg.Vector
	// Cov and InvCov are populated for the Mahalanobis metric; both
	// stay nil under Euclidean where Σ is implicitly the identity.
	Cov     *linalg.Matrix
	InvCov  *linalg.Matrix
	MaxDist float64 // largest training-sample distance to the mean
	N       int     // number of edge sets folded into the statistics
}

// Model is a trained vProfile instance: the cluster↔SA lookup table,
// per-cluster statistics and the detection margin.
type Model struct {
	Metric Metric
	Dim    int

	SALUT    map[canbus.SourceAddress]ClusterID
	Clusters []*Cluster

	// Margin is added to each cluster's MaxDist threshold during
	// detection (Section 3.2.3): too small inflates false positives,
	// too large inflates false negatives.
	Margin float64

	// UpdateBound is the Section 5.3 upper bound M on a cluster's N
	// beyond which online updates have negligible effect and a full
	// retrain is recommended. Zero disables the recommendation.
	UpdateBound int

	// chol is the precomputed per-cluster Cholesky scoring state (see
	// Precompute): derived from the covariances, never serialised, nil
	// until Precompute runs or after Update invalidates it.
	chol []*linalg.CholFactor
}

// Cluster returns the cluster with the given id.
func (m *Model) Cluster(id ClusterID) (*Cluster, error) {
	if id < 0 || int(id) >= len(m.Clusters) {
		return nil, ErrUnknownCluster
	}
	return m.Clusters[id], nil
}

// ClusterForSA resolves a source address through the lookup table.
func (m *Model) ClusterForSA(sa canbus.SourceAddress) (*Cluster, error) {
	id, ok := m.SALUT[sa]
	if !ok {
		return nil, fmt.Errorf("%w: %#02x", ErrUnknownSA, uint8(sa))
	}
	return m.Clusters[id], nil
}

// Distance returns the distance from an edge set to the cluster under
// the model's metric. With a precomputed factor (Precompute) the
// Mahalanobis case runs a triangular solve over the packed Cholesky
// factor — no inverse multiply, no allocation; without one it falls
// back to the inverse-covariance form. Train and Load precompute, so
// every trained or deserialised model takes the fast path, and the
// threshold (MaxDist) and detection distances always come from the
// same arithmetic.
func (m *Model) Distance(c *Cluster, set linalg.Vector) float64 {
	if len(set) != m.Dim {
		panic(ErrDimMismatch)
	}
	if m.Metric == Mahalanobis {
		if f := m.cholFor(c); f != nil {
			return linalg.MahalanobisChol(set, c.Mean, f)
		}
		return linalg.Mahalanobis(set, c.Mean, c.InvCov)
	}
	return linalg.Euclidean(set, c.Mean)
}

// InterClusterDistance returns the distance from cluster a's mean to
// cluster b (to b's distribution under Mahalanobis, to b's mean under
// Euclidean). The evaluation uses it to pick the two most similar ECUs
// for the foreign-device imitation test.
func (m *Model) InterClusterDistance(a, b ClusterID) (float64, error) {
	ca, err := m.Cluster(a)
	if err != nil {
		return 0, err
	}
	cb, err := m.Cluster(b)
	if err != nil {
		return 0, err
	}
	return m.Distance(cb, ca.Mean), nil
}

// ClosestClusterPair returns the pair of distinct clusters with the
// smallest inter-cluster distance (symmetrised as the min of the two
// directed distances) along with that distance.
func (m *Model) ClosestClusterPair() (a, b ClusterID, dist float64, err error) {
	if len(m.Clusters) < 2 {
		return 0, 0, 0, errors.New("core: need at least two clusters")
	}
	best := -1.0
	for i := range m.Clusters {
		for j := i + 1; j < len(m.Clusters); j++ {
			dij, err := m.InterClusterDistance(ClusterID(i), ClusterID(j))
			if err != nil {
				return 0, 0, 0, err
			}
			dji, err := m.InterClusterDistance(ClusterID(j), ClusterID(i))
			if err != nil {
				return 0, 0, 0, err
			}
			d := dij
			if dji < d {
				d = dji
			}
			if best < 0 || d < best {
				best = d
				a, b = ClusterID(i), ClusterID(j)
			}
		}
	}
	return a, b, best, nil
}

// Model file format identification: a magic string and version
// precede the gob payload so stale or foreign files fail loudly
// instead of decoding into garbage.
const (
	modelMagic   = "VPMDL"
	modelVersion = 1
)

// ErrModelFormat reports an unrecognised or incompatible model file.
var ErrModelFormat = errors.New("core: not a compatible vProfile model file")

// modelWire is the gob-encoded form of a Model.
type modelWire struct {
	Metric      Metric
	Dim         int
	Margin      float64
	UpdateBound int
	SALUT       map[uint8]int
	Clusters    []clusterWire
}

type clusterWire struct {
	SAs     []uint8
	Mean    []float64
	Cov     []float64 // Dim×Dim row-major, empty for Euclidean
	InvCov  []float64
	MaxDist float64
	N       int
}

// Save serialises the model.
func (m *Model) Save(w io.Writer) error {
	if _, err := io.WriteString(w, modelMagic); err != nil {
		return err
	}
	if _, err := w.Write([]byte{modelVersion}); err != nil {
		return err
	}
	wire := modelWire{
		Metric: m.Metric, Dim: m.Dim, Margin: m.Margin, UpdateBound: m.UpdateBound,
		SALUT: make(map[uint8]int, len(m.SALUT)),
	}
	for sa, id := range m.SALUT {
		wire.SALUT[uint8(sa)] = int(id)
	}
	for _, c := range m.Clusters {
		cw := clusterWire{Mean: c.Mean, MaxDist: c.MaxDist, N: c.N}
		for _, sa := range c.SAs {
			cw.SAs = append(cw.SAs, uint8(sa))
		}
		if c.Cov != nil {
			cw.Cov = c.Cov.Data
		}
		if c.InvCov != nil {
			cw.InvCov = c.InvCov.Data
		}
		wire.Clusters = append(wire.Clusters, cw)
	}
	return gob.NewEncoder(w).Encode(wire)
}

// Load deserialises a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	head := make([]byte, len(modelMagic)+1)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrModelFormat, err)
	}
	if string(head[:len(modelMagic)]) != modelMagic {
		return nil, ErrModelFormat
	}
	if head[len(modelMagic)] != modelVersion {
		return nil, fmt.Errorf("%w: version %d (this build reads %d)", ErrModelFormat, head[len(modelMagic)], modelVersion)
	}
	var wire modelWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	m := &Model{
		Metric: wire.Metric, Dim: wire.Dim, Margin: wire.Margin,
		UpdateBound: wire.UpdateBound,
		SALUT:       make(map[canbus.SourceAddress]ClusterID, len(wire.SALUT)),
	}
	for sa, id := range wire.SALUT {
		m.SALUT[canbus.SourceAddress(sa)] = ClusterID(id)
	}
	for i, cw := range wire.Clusters {
		c := &Cluster{ID: ClusterID(i), Mean: cw.Mean, MaxDist: cw.MaxDist, N: cw.N}
		for _, sa := range cw.SAs {
			c.SAs = append(c.SAs, canbus.SourceAddress(sa))
		}
		if len(cw.Cov) > 0 {
			c.Cov = &linalg.Matrix{Rows: wire.Dim, Cols: wire.Dim, Data: cw.Cov}
		}
		if len(cw.InvCov) > 0 {
			c.InvCov = &linalg.Matrix{Rows: wire.Dim, Cols: wire.Dim, Data: cw.InvCov}
		}
		m.Clusters = append(m.Clusters, c)
	}
	for sa, id := range m.SALUT {
		if id < 0 || int(id) >= len(m.Clusters) {
			return nil, fmt.Errorf("core: model LUT maps SA %#02x to cluster %d of %d", uint8(sa), id, len(m.Clusters))
		}
	}
	// The scoring factors are derived state: recompute rather than
	// serialise them. Covariances round-trip bit-exactly and the
	// factorisation is deterministic, so a loaded model scores
	// identically to the model that was saved.
	m.Precompute()
	return m, nil
}
