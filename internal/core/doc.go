// Package core implements the vProfile sender-identification system —
// the paper's primary contribution. It covers the three operational
// stages built on top of the preprocessing in package edgeset:
//
//   - Training (Algorithm 2): cluster edge sets by the ECU that sent
//     them, either through a known SA→ECU lookup table (the
//     "fortunate" case) or by agglomerative distance clustering of
//     per-SA means; store each cluster's mean, covariance matrix (for
//     the Mahalanobis metric), inverse covariance and maximum
//     intra-cluster distance.
//
//   - Detection (Algorithm 3): map the claimed source address to its
//     expected cluster, predict the nearest cluster by distance,
//     and raise an anomaly on unknown SA, cluster mismatch, or
//     distance beyond the trained threshold plus a configurable
//     margin.
//
//   - Online model update (Algorithm 4 / Equation 5.1): fold new edge
//     sets into a cluster's count, mean, covariance and maximum
//     distance without retraining, maintaining the inverse covariance
//     incrementally with a Sherman-Morrison rank-1 update so detection
//     latency is unaffected.
//
// Both distance metrics of Section 2.2.2 are supported; the paper's
// headline results use Mahalanobis distance, with Euclidean retained
// as the in-paper baseline (Tables 4.1–4.4).
package core
