package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"vprofile/internal/linalg"
)

// ClusterSummary is one cluster's row in a model report.
type ClusterSummary struct {
	ID      ClusterID
	SAs     []string
	N       int
	MaxDist float64
	// MeanLevel and LevelSpread summarise the stored mean waveform
	// (code units) for quick eyeballing.
	MeanLevel   float64
	LevelSpread float64
	// NearestID and NearestDist locate the most confusable peer under
	// the model's metric.
	NearestID   ClusterID
	NearestDist float64
	// EffectiveDims estimates the covariance's participation ratio
	// (Σλ)²/Σλ² — how many directions actually carry the cluster's
	// variance. Only populated for Mahalanobis models.
	EffectiveDims float64
}

// Report summarises a trained model for operators: per-cluster
// statistics, the inter-cluster distance structure, and global
// separation health.
type Report struct {
	Metric   Metric
	Dim      int
	Margin   float64
	Clusters []ClusterSummary
	// MinSeparation is the smallest nearest-neighbour distance — the
	// model's weakest link (the foreign-imitation candidate pair).
	MinSeparation float64
	// SeparationRatio divides MinSeparation by the largest cluster
	// threshold: below ~1 the weakest pair sits inside a detection
	// threshold and foreign imitation of that pair will go unseen.
	SeparationRatio float64
}

// BuildReport derives the report from a trained model.
func (m *Model) BuildReport() (*Report, error) {
	if len(m.Clusters) == 0 {
		return nil, ErrNoSamples
	}
	r := &Report{Metric: m.Metric, Dim: m.Dim, Margin: m.Margin, MinSeparation: math.Inf(1)}
	maxThreshold := 0.0
	for _, c := range m.Clusters {
		cs := ClusterSummary{ID: c.ID, N: c.N, MaxDist: c.MaxDist, NearestID: -1, NearestDist: math.Inf(1)}
		for _, sa := range c.SAs {
			cs.SAs = append(cs.SAs, fmt.Sprintf("%#02x", uint8(sa)))
		}
		sort.Strings(cs.SAs)
		var sum, sumSq float64
		for _, v := range c.Mean {
			sum += v
			sumSq += v * v
		}
		n := float64(len(c.Mean))
		cs.MeanLevel = sum / n
		cs.LevelSpread = math.Sqrt(math.Max(0, sumSq/n-cs.MeanLevel*cs.MeanLevel))
		for _, o := range m.Clusters {
			if o.ID == c.ID {
				continue
			}
			d, err := m.InterClusterDistance(c.ID, o.ID)
			if err != nil {
				return nil, err
			}
			if d < cs.NearestDist {
				cs.NearestDist = d
				cs.NearestID = o.ID
			}
		}
		if len(m.Clusters) == 1 {
			cs.NearestDist = math.NaN()
		}
		if c.Cov != nil {
			vals, _, err := linalg.SymmetricEigen(c.Cov)
			if err == nil {
				var s, s2 float64
				for _, v := range vals {
					if v > 0 {
						s += v
						s2 += v * v
					}
				}
				if s2 > 0 {
					cs.EffectiveDims = s * s / s2
				}
			}
		}
		if cs.NearestDist < r.MinSeparation {
			r.MinSeparation = cs.NearestDist
		}
		if t := c.MaxDist + m.Margin; t > maxThreshold {
			maxThreshold = t
		}
		r.Clusters = append(r.Clusters, cs)
	}
	if maxThreshold > 0 && !math.IsInf(r.MinSeparation, 1) && !math.IsNaN(r.MinSeparation) {
		r.SeparationRatio = r.MinSeparation / maxThreshold
	}
	return r, nil
}

// String renders the report as a fixed-width table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "metric=%s dim=%d margin=%g  min-separation=%.3f separation-ratio=%.2f\n",
		r.Metric, r.Dim, r.Margin, r.MinSeparation, r.SeparationRatio)
	fmt.Fprintf(&b, "%4s %6s %9s %10s %11s %8s %9s %8s  %s\n",
		"id", "N", "maxdist", "meanlvl", "spread", "nearest", "near-d", "effdims", "SAs")
	for _, c := range r.Clusters {
		fmt.Fprintf(&b, "%4d %6d %9.3f %10.1f %11.1f %8d %9.2f %8.1f  %s\n",
			c.ID, c.N, c.MaxDist, c.MeanLevel, c.LevelSpread,
			c.NearestID, c.NearestDist, c.EffectiveDims, strings.Join(c.SAs, ","))
	}
	return b.String()
}
