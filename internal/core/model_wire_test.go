package core

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
)

// encodeWire builds a model file byte-for-byte the way Save does, but
// from an arbitrary wire struct, so tests can craft payloads Save
// would never produce.
func encodeWire(t *testing.T, wire modelWire) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(modelMagic)
	buf.WriteByte(modelVersion)
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadRejectsOutOfRangeLUT(t *testing.T) {
	base := func() modelWire {
		return modelWire{
			Metric: Euclidean,
			Dim:    1,
			SALUT:  map[uint8]int{0x10: 0},
			Clusters: []clusterWire{
				{SAs: []uint8{0x10}, Mean: []float64{1.5}, MaxDist: 0.5, N: 8},
			},
		}
	}

	// Sanity: the well-formed payload loads and detects without issue.
	m, err := Load(bytes.NewReader(encodeWire(t, base())))
	if err != nil {
		t.Fatalf("well-formed payload rejected: %v", err)
	}
	if d := m.Detect(0x10, []float64{1.5}); d.Anomaly {
		t.Fatalf("clean sample flagged: %+v", d)
	}

	cases := []struct {
		name string
		id   int
	}{
		// A negative cluster id used to pass the >= len check and
		// panic later inside Detect via m.Clusters[expID].
		{"negative", -1},
		{"very negative", -1 << 30},
		{"past end", 1},
		{"far past end", 1 << 30},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wire := base()
			wire.SALUT[0x10] = tc.id
			m, err := Load(bytes.NewReader(encodeWire(t, wire)))
			if err == nil {
				// Before the fix this is where the corrupt model would
				// escape validation; Detect then panicked.
				t.Fatalf("LUT cluster id %d accepted", tc.id)
			}
			if !strings.Contains(err.Error(), "cluster") {
				t.Fatalf("unhelpful error: %v", err)
			}
			if m != nil {
				t.Fatal("corrupt load returned a model")
			}
		})
	}
}
