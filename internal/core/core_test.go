package core

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"vprofile/internal/canbus"
	"vprofile/internal/linalg"
)

// synthetic cluster generator: ECU k has mean base+k·sep in every
// dimension with per-dimension noise.
type synthECU struct {
	sas   []canbus.SourceAddress
	mean  linalg.Vector
	sigma linalg.Vector
}

func makeECUs(dim int, seps []float64) []synthECU {
	out := make([]synthECU, len(seps))
	sa := canbus.SourceAddress(0)
	for k, sep := range seps {
		mean := make(linalg.Vector, dim)
		sigma := make(linalg.Vector, dim)
		for i := range mean {
			mean[i] = 1000 + sep + 10*float64(i)
			sigma[i] = 1 + 0.2*float64(i%5)
		}
		out[k] = synthECU{
			sas:   []canbus.SourceAddress{sa, sa + 1},
			mean:  mean,
			sigma: sigma,
		}
		sa += 2
	}
	return out
}

func (e *synthECU) sample(rng *rand.Rand) Sample {
	set := make(linalg.Vector, len(e.mean))
	for i := range set {
		set[i] = e.mean[i] + rng.NormFloat64()*e.sigma[i]
	}
	return Sample{SA: e.sas[rng.Intn(len(e.sas))], Set: set}
}

func trainingData(rng *rand.Rand, ecus []synthECU, perECU int) []Sample {
	var out []Sample
	for k := range ecus {
		for i := 0; i < perECU; i++ {
			out = append(out, ecus[k].sample(rng))
		}
	}
	return out
}

func trainTest(t *testing.T, metric Metric, cfg TrainConfig) (*Model, []synthECU, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	ecus := makeECUs(8, []float64{0, 200, 400, 600})
	cfg.Metric = metric
	m, err := Train(trainingData(rng, ecus, 120), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, ecus, rng
}

func TestTrainEmptyInput(t *testing.T) {
	if _, err := Train(nil, TrainConfig{}); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Train([]Sample{{SA: 0, Set: nil}}, TrainConfig{}); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("zero-dim err = %v", err)
	}
}

func TestTrainDimensionMismatch(t *testing.T) {
	samples := []Sample{
		{SA: 0, Set: linalg.Vector{1, 2}},
		{SA: 0, Set: linalg.Vector{1, 2, 3}},
	}
	if _, err := Train(samples, TrainConfig{}); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestTrainByDistanceClustersSAsOfSameECU(t *testing.T) {
	m, ecus, _ := trainTest(t, Euclidean, TrainConfig{TargetClusters: 4})
	if len(m.Clusters) != 4 {
		t.Fatalf("%d clusters, want 4", len(m.Clusters))
	}
	// Both SAs of each synthetic ECU must map to the same cluster.
	for _, e := range ecus {
		c0, err := m.ClusterForSA(e.sas[0])
		if err != nil {
			t.Fatal(err)
		}
		c1, err := m.ClusterForSA(e.sas[1])
		if err != nil {
			t.Fatal(err)
		}
		if c0.ID != c1.ID {
			t.Fatalf("SAs %v split across clusters %d and %d", e.sas, c0.ID, c1.ID)
		}
	}
}

func TestTrainByMergeThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ecus := makeECUs(8, []float64{0, 500})
	samples := trainingData(rng, ecus, 80)
	// Intra-ECU SA means are a few units apart, inter-ECU ~500·√8.
	m, err := Train(samples, TrainConfig{Metric: Euclidean, MergeThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Clusters) != 2 {
		t.Fatalf("%d clusters, want 2", len(m.Clusters))
	}
}

func TestTrainByLUT(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ecus := makeECUs(8, []float64{0, 300, 600})
	samples := trainingData(rng, ecus, 60)
	saMap := make(map[canbus.SourceAddress]int)
	for k, e := range ecus {
		for _, sa := range e.sas {
			saMap[sa] = k
		}
	}
	m, err := Train(samples, TrainConfig{Metric: Mahalanobis, SAMap: saMap})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Clusters) != 3 {
		t.Fatalf("%d clusters, want 3", len(m.Clusters))
	}
	for _, c := range m.Clusters {
		if len(c.SAs) != 2 {
			t.Fatalf("cluster %d has SAs %v", c.ID, c.SAs)
		}
		if c.InvCov == nil || c.Cov == nil {
			t.Fatalf("cluster %d missing covariance", c.ID)
		}
		if c.MaxDist <= 0 {
			t.Fatalf("cluster %d MaxDist %v", c.ID, c.MaxDist)
		}
	}
}

func TestTrainMahalanobisSingularWithoutVariance(t *testing.T) {
	samples := make([]Sample, 50)
	for i := range samples {
		samples[i] = Sample{SA: 1, Set: linalg.Vector{1, 2, 3, 4}}
	}
	_, err := Train(samples, TrainConfig{Metric: Mahalanobis, TargetClusters: 1})
	if !errors.Is(err, ErrSingularCov) {
		t.Fatalf("err = %v", err)
	}
	// Ridge regularisation rescues it.
	if _, err := Train(samples, TrainConfig{Metric: Mahalanobis, TargetClusters: 1, Ridge: 1e-3}); err != nil {
		t.Fatalf("ridge: %v", err)
	}
}

func TestDetectLegitimateTraffic(t *testing.T) {
	for _, metric := range []Metric{Euclidean, Mahalanobis} {
		m, ecus, rng := trainTest(t, metric, TrainConfig{TargetClusters: 4, Margin: 1})
		fp := 0
		const n = 400
		for i := 0; i < n; i++ {
			e := &ecus[i%len(ecus)]
			s := e.sample(rng)
			if d := m.Detect(s.SA, s.Set); d.Anomaly {
				fp++
			}
		}
		if fp > n/100 {
			t.Fatalf("%v: %d/%d false positives", metric, fp, n)
		}
	}
}

func TestDetectUnknownSA(t *testing.T) {
	m, _, rng := trainTest(t, Mahalanobis, TrainConfig{TargetClusters: 4})
	set := make(linalg.Vector, 8)
	for i := range set {
		set[i] = rng.NormFloat64()
	}
	d := m.Detect(0xEE, set)
	if !d.Anomaly || d.Reason != ReasonUnknownSA {
		t.Fatalf("detection %+v", d)
	}
}

func TestDetectHijack(t *testing.T) {
	// A message whose waveform comes from ECU 0 but claims ECU 2's SA
	// must be flagged as a cluster mismatch.
	for _, metric := range []Metric{Euclidean, Mahalanobis} {
		m, ecus, rng := trainTest(t, metric, TrainConfig{TargetClusters: 4, Margin: 1})
		caught := 0
		const n = 300
		for i := 0; i < n; i++ {
			s := ecus[0].sample(rng)
			s.SA = ecus[2].sas[0] // forged SA
			d := m.Detect(s.SA, s.Set)
			if d.Anomaly && d.Reason == ReasonClusterMismatch {
				caught++
			}
		}
		if caught < n*99/100 {
			t.Fatalf("%v: only %d/%d hijacks caught", metric, caught, n)
		}
	}
}

func TestDetectForeignDeviceOverThreshold(t *testing.T) {
	// A foreign device imitating ECU 0's mean but with a systematic
	// offset must trip the threshold check under Mahalanobis.
	m, ecus, rng := trainTest(t, Mahalanobis, TrainConfig{TargetClusters: 4, Margin: 1})
	caught := 0
	const n = 300
	for i := 0; i < n; i++ {
		s := ecus[0].sample(rng)
		for j := range s.Set {
			s.Set[j] += 12 // foreign hardware bias, small vs the 200-unit cluster gap
		}
		s.SA = ecus[0].sas[0]
		if d := m.Detect(s.SA, s.Set); d.Anomaly {
			caught++
		}
	}
	if caught < n*95/100 {
		t.Fatalf("only %d/%d foreign messages caught", caught, n)
	}
}

func TestDetectMarginTradeoff(t *testing.T) {
	// A huge margin must accept everything near the cluster, including
	// mild foreign bias (false negatives) — the Section 3.2.3 tradeoff.
	m, ecus, rng := trainTest(t, Mahalanobis, TrainConfig{TargetClusters: 4, Margin: 1e6})
	s := ecus[0].sample(rng)
	for j := range s.Set {
		s.Set[j] += 12
	}
	if d := m.Detect(ecus[0].sas[0], s.Set); d.Anomaly {
		t.Fatalf("huge margin still flagged: %+v", d)
	}
}

func TestNearestIdentifiesOrigin(t *testing.T) {
	// Section 3.2.3: the predicted cluster identifies the attack's
	// origin for in-model ECUs.
	m, ecus, rng := trainTest(t, Mahalanobis, TrainConfig{TargetClusters: 4})
	for k := range ecus {
		s := ecus[k].sample(rng)
		want, err := m.ClusterForSA(ecus[k].sas[0])
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := m.Nearest(s.Set); got != want.ID {
			t.Fatalf("ECU %d predicted cluster %d want %d", k, got, want.ID)
		}
	}
}

func TestInterClusterDistanceAndClosestPair(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Three ECUs: 0 and 1 close (sep 60), 2 far.
	ecus := makeECUs(8, []float64{0, 60, 900})
	m, err := Train(trainingData(rng, ecus, 150), TrainConfig{Metric: Mahalanobis, TargetClusters: 3})
	if err != nil {
		t.Fatal(err)
	}
	a, b, dist, err := m.ClosestClusterPair()
	if err != nil {
		t.Fatal(err)
	}
	ca, _ := m.ClusterForSA(ecus[0].sas[0])
	cb, _ := m.ClusterForSA(ecus[1].sas[0])
	if !((a == ca.ID && b == cb.ID) || (a == cb.ID && b == ca.ID)) {
		t.Fatalf("closest pair (%d,%d), want {%d,%d}", a, b, ca.ID, cb.ID)
	}
	if dist <= 0 || math.IsInf(dist, 0) {
		t.Fatalf("distance %v", dist)
	}
}

func TestDistancePanicsOnDimMismatch(t *testing.T) {
	m, _, _ := trainTest(t, Euclidean, TrainConfig{TargetClusters: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Distance(m.Clusters[0], linalg.Vector{1})
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	for _, metric := range []Metric{Euclidean, Mahalanobis} {
		m, ecus, rng := trainTest(t, metric, TrainConfig{TargetClusters: 4, Margin: 2.5})
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Metric != m.Metric || got.Dim != m.Dim || got.Margin != m.Margin {
			t.Fatalf("header mismatch: %+v", got)
		}
		if len(got.Clusters) != len(m.Clusters) || len(got.SALUT) != len(m.SALUT) {
			t.Fatalf("shape mismatch")
		}
		// Loaded model must produce identical detections.
		for i := 0; i < 100; i++ {
			e := &ecus[i%len(ecus)]
			s := e.sample(rng)
			d1 := m.Detect(s.SA, s.Set)
			d2 := got.Detect(s.SA, s.Set)
			if d1 != d2 {
				t.Fatalf("detection diverged after reload: %+v vs %+v", d1, d2)
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestUpdateFoldsNewSamples(t *testing.T) {
	m, ecus, rng := trainTest(t, Mahalanobis, TrainConfig{TargetClusters: 4, Margin: 1})
	c0, _ := m.ClusterForSA(ecus[0].sas[0])
	nBefore := c0.N
	meanBefore := c0.Mean.Clone()

	// Drifted ECU 0 samples: +8 on every dimension.
	var drifted []Sample
	for i := 0; i < 200; i++ {
		s := ecus[0].sample(rng)
		for j := range s.Set {
			s.Set[j] += 8
		}
		drifted = append(drifted, s)
	}
	res, err := m.Update(drifted)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 200 || res.Skipped != 0 {
		t.Fatalf("result %+v", res)
	}
	if c0.N != nBefore+200 {
		t.Fatalf("N = %d, want %d", c0.N, nBefore+200)
	}
	// Mean must have moved toward the drifted data.
	if c0.Mean[0] <= meanBefore[0] {
		t.Fatalf("mean did not move: %v -> %v", meanBefore[0], c0.Mean[0])
	}
}

func TestUpdateKeepsInverseConsistent(t *testing.T) {
	m, ecus, rng := trainTest(t, Mahalanobis, TrainConfig{TargetClusters: 4})
	var fresh []Sample
	for i := 0; i < 100; i++ {
		fresh = append(fresh, ecus[1].sample(rng))
	}
	if _, err := m.Update(fresh); err != nil {
		t.Fatal(err)
	}
	c, _ := m.ClusterForSA(ecus[1].sas[0])
	// InvCov maintained by Sherman-Morrison must match a direct
	// inversion of the updated covariance.
	direct, err := c.Cov.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	var maxDiff float64
	for i := range direct.Data {
		if d := math.Abs(direct.Data[i] - c.InvCov.Data[i]); d > maxDiff {
			maxDiff = d
		}
	}
	scale := direct.SymmetricMaxAbs()
	if maxDiff > 1e-6*scale {
		t.Fatalf("incremental inverse off by %g (scale %g)", maxDiff, scale)
	}
}

func TestUpdateAdaptsToDrift(t *testing.T) {
	// The Section 5.3 motivation: after environmental drift the old
	// model starts flagging legitimate traffic; updating with accepted
	// messages restores detection.
	m, ecus, rng := trainTest(t, Mahalanobis, TrainConfig{TargetClusters: 4, Margin: 1})
	drift := func(s Sample, amt float64) Sample {
		for j := range s.Set {
			s.Set[j] += amt
		}
		return s
	}
	// Severe drift on ECU 3: mostly rejected before update.
	rejectedBefore := 0
	for i := 0; i < 100; i++ {
		s := drift(ecus[3].sample(rng), 15)
		if m.Detect(s.SA, s.Set).Anomaly {
			rejectedBefore++
		}
	}
	if rejectedBefore < 50 {
		t.Fatalf("drift not severe enough to matter: %d rejections", rejectedBefore)
	}
	// Gradual adaptation: update with mildly drifted accepted data.
	for step := 1; step <= 15; step++ {
		var batch []Sample
		for i := 0; i < 60; i++ {
			batch = append(batch, drift(ecus[3].sample(rng), float64(step)))
		}
		if _, err := m.Update(batch); err != nil {
			t.Fatal(err)
		}
	}
	rejectedAfter := 0
	for i := 0; i < 100; i++ {
		s := drift(ecus[3].sample(rng), 15)
		if m.Detect(s.SA, s.Set).Anomaly {
			rejectedAfter++
		}
	}
	if rejectedAfter >= rejectedBefore/2 {
		t.Fatalf("update did not adapt: %d before, %d after", rejectedBefore, rejectedAfter)
	}
}

func TestUpdateSkipsUnknownSA(t *testing.T) {
	m, _, rng := trainTest(t, Mahalanobis, TrainConfig{TargetClusters: 4})
	set := make(linalg.Vector, m.Dim)
	for i := range set {
		set[i] = rng.NormFloat64()
	}
	res, err := m.Update([]Sample{{SA: 0xEE, Set: set}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 0 || res.Skipped != 1 {
		t.Fatalf("result %+v", res)
	}
}

func TestUpdateRecommendsRetrain(t *testing.T) {
	m, ecus, rng := trainTest(t, Mahalanobis, TrainConfig{TargetClusters: 4, UpdateBound: 130})
	var batch []Sample
	for i := 0; i < 20; i++ {
		batch = append(batch, ecus[0].sample(rng))
	}
	res, err := m.Update(batch)
	if err != nil {
		t.Fatal(err)
	}
	// Training used 120 samples per ECU; +20 pushes ECU 0's cluster
	// over the bound of 130.
	c0, _ := m.ClusterForSA(ecus[0].sas[0])
	found := false
	for _, id := range res.RetrainRecommended {
		if id == c0.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("retrain not recommended for cluster %d: %+v", c0.ID, res)
	}
}

func TestUpdateDimensionMismatch(t *testing.T) {
	m, _, _ := trainTest(t, Mahalanobis, TrainConfig{TargetClusters: 4})
	_, err := m.Update([]Sample{{SA: 0, Set: linalg.Vector{1}}})
	if !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestMetricString(t *testing.T) {
	if Euclidean.String() != "euclidean" || Mahalanobis.String() != "mahalanobis" {
		t.Fatal("metric names wrong")
	}
	if Metric(9).String() == "" {
		t.Fatal("unknown metric renders empty")
	}
}

func TestReasonString(t *testing.T) {
	for r, want := range map[Reason]string{
		ReasonNone:            "ok",
		ReasonUnknownSA:       "unknown-sa",
		ReasonClusterMismatch: "cluster-mismatch",
		ReasonOverThreshold:   "over-threshold",
	} {
		if r.String() != want {
			t.Errorf("%d renders %q", r, r.String())
		}
	}
}
