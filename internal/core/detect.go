package core

import (
	"fmt"
	"math"

	"vprofile/internal/canbus"
	"vprofile/internal/linalg"
)

// Reason explains why a message was flagged.
type Reason int

// Detection reasons, in the order Algorithm 3 checks them.
const (
	ReasonNone            Reason = iota // message accepted
	ReasonUnknownSA                     // claimed SA absent from the LUT
	ReasonClusterMismatch               // nearest cluster differs from the claimed one
	ReasonOverThreshold                 // distance exceeds MaxDist + margin
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "ok"
	case ReasonUnknownSA:
		return "unknown-sa"
	case ReasonClusterMismatch:
		return "cluster-mismatch"
	case ReasonOverThreshold:
		return "over-threshold"
	default:
		return fmt.Sprintf("reason(%d)", int(r))
	}
}

// Detection is the outcome of classifying one message.
type Detection struct {
	Anomaly  bool
	Reason   Reason
	Expected ClusterID // cluster the claimed SA maps to (−1 if unknown)
	Predict  ClusterID // nearest cluster by distance (−1 if unknown SA)
	MinDist  float64   // distance to the nearest cluster
}

// Detect classifies an edge set claiming to originate from sa, per
// Algorithm 3. The model's Margin widens each cluster's trained
// MaxDist threshold.
func (m *Model) Detect(sa canbus.SourceAddress, set linalg.Vector) Detection {
	expID, ok := m.SALUT[sa]
	if !ok {
		return Detection{Anomaly: true, Reason: ReasonUnknownSA, Expected: -1, Predict: -1}
	}
	pred, minDist := m.Nearest(set)
	if pred != expID {
		return Detection{Anomaly: true, Reason: ReasonClusterMismatch, Expected: expID, Predict: pred, MinDist: minDist}
	}
	if minDist > m.Clusters[expID].MaxDist+m.Margin {
		return Detection{Anomaly: true, Reason: ReasonOverThreshold, Expected: expID, Predict: pred, MinDist: minDist}
	}
	return Detection{Expected: expID, Predict: pred, MinDist: minDist}
}

// Nearest returns the cluster whose distance to the edge set is
// smallest, together with that distance.
func (m *Model) Nearest(set linalg.Vector) (ClusterID, float64) {
	best := ClusterID(-1)
	minDist := math.Inf(1)
	for _, c := range m.Clusters {
		if d := m.Distance(c, set); d < minDist {
			best, minDist = c.ID, d
		}
	}
	return best, minDist
}
