package core

import (
	"fmt"
	"math"

	"vprofile/internal/canbus"
	"vprofile/internal/linalg"
)

// Reason explains why a message was flagged.
type Reason int

// Detection reasons, in the order Algorithm 3 checks them.
const (
	ReasonNone            Reason = iota // message accepted
	ReasonUnknownSA                     // claimed SA absent from the LUT
	ReasonClusterMismatch               // nearest cluster differs from the claimed one
	ReasonOverThreshold                 // distance exceeds MaxDist + margin
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "ok"
	case ReasonUnknownSA:
		return "unknown-sa"
	case ReasonClusterMismatch:
		return "cluster-mismatch"
	case ReasonOverThreshold:
		return "over-threshold"
	default:
		return fmt.Sprintf("reason(%d)", int(r))
	}
}

// Detection is the outcome of classifying one message.
type Detection struct {
	Anomaly  bool
	Reason   Reason
	Expected ClusterID // cluster the claimed SA maps to (−1 if unknown)
	Predict  ClusterID // nearest cluster by distance (−1 if unknown SA)
	MinDist  float64   // distance to the nearest cluster
}

// Detect classifies an edge set claiming to originate from sa, per
// Algorithm 3. The model's Margin widens each cluster's trained
// MaxDist threshold.
func (m *Model) Detect(sa canbus.SourceAddress, set linalg.Vector) Detection {
	expID, ok := m.SALUT[sa]
	if !ok {
		return Detection{Anomaly: true, Reason: ReasonUnknownSA, Expected: -1, Predict: -1}
	}
	pred, minDist := m.Nearest(set)
	if pred != expID {
		return Detection{Anomaly: true, Reason: ReasonClusterMismatch, Expected: expID, Predict: pred, MinDist: minDist}
	}
	if minDist > m.Clusters[expID].MaxDist+m.Margin {
		return Detection{Anomaly: true, Reason: ReasonOverThreshold, Expected: expID, Predict: pred, MinDist: minDist}
	}
	return Detection{Expected: expID, Predict: pred, MinDist: minDist}
}

// Nearest returns the cluster whose distance to the edge set is
// smallest, together with that distance.
func (m *Model) Nearest(set linalg.Vector) (ClusterID, float64) {
	best := ClusterID(-1)
	minDist := math.Inf(1)
	for _, c := range m.Clusters {
		if d := m.Distance(c, set); d < minDist {
			best, minDist = c.ID, d
		}
	}
	return best, minDist
}

// ClusterDistance is one cluster's distance to an edge set. The JSON
// tags are for the flight recorder, whose decision records carry the
// slice DetectExplain built without converting or copying it.
type ClusterDistance struct {
	ID   ClusterID `json:"cluster"`
	Dist float64   `json:"dist"`
}

// Explanation is the full evidence behind a Detection: the distance
// to every cluster (not just the nearest), and the threshold and
// margin the verdict was judged against. It exists for forensics —
// an alarm is only actionable if the numbers that produced it
// survive the moment.
type Explanation struct {
	// Distances holds one entry per cluster, in cluster order. Empty
	// when the claimed SA is unknown (Algorithm 3 rejects before any
	// distance is computed).
	Distances []ClusterDistance
	// Threshold is the expected cluster's trained MaxDist (zero when
	// the SA is unknown); Margin is the model's detection margin. The
	// over-threshold rule is MinDist > Threshold + Margin.
	Threshold float64
	Margin    float64
}

// DetectExplain is Detect with its evidence preserved. The Detection
// it returns is bit-for-bit identical to Detect's — the same
// distances are computed in the same order with the same arithmetic —
// so instrumented and uninstrumented runs cannot diverge.
func (m *Model) DetectExplain(sa canbus.SourceAddress, set linalg.Vector) (Detection, Explanation) {
	return m.DetectExplainInto(sa, set, nil)
}

// DetectExplainInto is DetectExplain appending the per-cluster
// distances to buf, which may be nil. The flight recorder hands in
// per-frame inline storage here, so explaining a verdict allocates
// nothing on the replay hot path.
func (m *Model) DetectExplainInto(sa canbus.SourceAddress, set linalg.Vector, buf []ClusterDistance) (Detection, Explanation) {
	expID, ok := m.SALUT[sa]
	if !ok {
		return Detection{Anomaly: true, Reason: ReasonUnknownSA, Expected: -1, Predict: -1},
			Explanation{Margin: m.Margin}
	}
	if buf == nil {
		buf = make([]ClusterDistance, 0, len(m.Clusters))
	}
	ex := Explanation{Distances: buf, Margin: m.Margin}
	pred := ClusterID(-1)
	minDist := math.Inf(1)
	for _, c := range m.Clusters {
		d := m.Distance(c, set)
		ex.Distances = append(ex.Distances, ClusterDistance{ID: c.ID, Dist: d})
		if d < minDist {
			pred, minDist = c.ID, d
		}
	}
	ex.Threshold = m.Clusters[expID].MaxDist
	if pred != expID {
		return Detection{Anomaly: true, Reason: ReasonClusterMismatch, Expected: expID, Predict: pred, MinDist: minDist}, ex
	}
	if minDist > m.Clusters[expID].MaxDist+m.Margin {
		return Detection{Anomaly: true, Reason: ReasonOverThreshold, Expected: expID, Predict: pred, MinDist: minDist}, ex
	}
	return Detection{Expected: expID, Predict: pred, MinDist: minDist}, ex
}
