package core

import "vprofile/internal/linalg"

// Precompute builds the model's flat Cholesky scoring state: one
// packed lower-triangular factor per Mahalanobis cluster, so the hot
// detection path scores by forward substitution instead of the full
// inverse-covariance multiply. It is idempotent and deterministic (the
// factors are a pure function of each cluster's covariance), cheap
// relative to training, and safe to call on any well-formed model:
// clusters whose covariance is absent or not positive definite simply
// keep the inverse-covariance fallback path.
//
// The factors are derived state — never serialised (Save/Load and the
// wire format are unchanged; Load recomputes them) and invalidated by
// Update, which mutates the covariances they were computed from. Call
// sites that serve a model concurrently (engine.ModelStore) precompute
// before publishing, which is also the only safe place to do it: a
// model being read by verdict goroutines must never be mutated.
//
// A no-op when the factors already exist: non-nil factors are always
// current (every mutation path resets them to nil), and skipping the
// rebuild means re-publishing an already-served model — ModelStore
// swapping back to a previous version — performs no write that could
// race the verdict goroutines still reading it.
func (m *Model) Precompute() {
	if m.Metric != Mahalanobis {
		m.chol = nil
		return
	}
	if m.chol != nil {
		return
	}
	chol := make([]*linalg.CholFactor, len(m.Clusters))
	for i, c := range m.Clusters {
		if c.Cov == nil {
			continue
		}
		if f, err := linalg.PackCholesky(c.Cov); err == nil {
			chol[i] = f
		}
	}
	m.chol = chol
}

// cholFor returns cluster c's precomputed factor, or nil when the
// model has none (not precomputed, invalidated by Update, or the
// cluster's covariance would not factor).
func (m *Model) cholFor(c *Cluster) *linalg.CholFactor {
	if id := int(c.ID); id >= 0 && id < len(m.chol) {
		return m.chol[id]
	}
	return nil
}
