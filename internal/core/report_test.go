package core

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestBuildReport(t *testing.T) {
	m, ecus, _ := trainTest(t, Mahalanobis, TrainConfig{TargetClusters: 4, Margin: 2})
	r, err := m.BuildReport()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Clusters) != 4 {
		t.Fatalf("%d cluster rows", len(r.Clusters))
	}
	if r.Metric != Mahalanobis || r.Dim != m.Dim || r.Margin != 2 {
		t.Fatalf("header %+v", r)
	}
	for _, c := range r.Clusters {
		if c.N <= 0 || c.MaxDist <= 0 {
			t.Fatalf("cluster %d degenerate: %+v", c.ID, c)
		}
		if c.NearestID < 0 || c.NearestID == c.ID {
			t.Fatalf("cluster %d nearest %d", c.ID, c.NearestID)
		}
		if math.IsInf(c.NearestDist, 0) || c.NearestDist <= 0 {
			t.Fatalf("cluster %d nearest distance %v", c.ID, c.NearestDist)
		}
		if len(c.SAs) != 2 {
			t.Fatalf("cluster %d SAs %v", c.ID, c.SAs)
		}
		if c.EffectiveDims <= 0 || c.EffectiveDims > float64(m.Dim) {
			t.Fatalf("cluster %d effective dims %v (dim %d)", c.ID, c.EffectiveDims, m.Dim)
		}
	}
	if r.MinSeparation <= 0 || math.IsInf(r.MinSeparation, 0) {
		t.Fatalf("min separation %v", r.MinSeparation)
	}
	if r.SeparationRatio <= 0 {
		t.Fatalf("separation ratio %v", r.SeparationRatio)
	}
	// The synthetic ECUs are well separated: separation must exceed
	// the thresholds.
	if r.SeparationRatio < 1 {
		t.Errorf("separation ratio %v < 1 on well-separated data", r.SeparationRatio)
	}
	_ = ecus

	s := r.String()
	if !strings.Contains(s, "min-separation") || !strings.Contains(s, "0x00") {
		t.Fatalf("render incomplete:\n%s", s)
	}
}

func TestBuildReportEuclideanHasNoEffDims(t *testing.T) {
	m, _, _ := trainTest(t, Euclidean, TrainConfig{TargetClusters: 4})
	r, err := m.BuildReport()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Clusters {
		if c.EffectiveDims != 0 {
			t.Fatalf("Euclidean cluster %d reports effective dims %v", c.ID, c.EffectiveDims)
		}
	}
}

func TestBuildReportEmptyModel(t *testing.T) {
	if _, err := (&Model{}).BuildReport(); err == nil {
		t.Fatal("empty model produced a report")
	}
}

func TestLoadRejectsWrongMagicAndVersion(t *testing.T) {
	m, _, _ := trainTest(t, Euclidean, TrainConfig{TargetClusters: 4})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	// Wrong magic.
	bad := append([]byte{}, good...)
	bad[0] = 'X'
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, ErrModelFormat) {
		t.Fatalf("wrong magic: %v", err)
	}
	// Wrong version.
	bad = append([]byte{}, good...)
	bad[5] = 99
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, ErrModelFormat) {
		t.Fatalf("wrong version: %v", err)
	}
	// Pristine file still loads.
	if _, err := Load(bytes.NewReader(good)); err != nil {
		t.Fatal(err)
	}
}
