package core

import (
	"fmt"
	"sort"

	"vprofile/internal/canbus"
	"vprofile/internal/linalg"
)

// Sample is one preprocessed training observation: a claimed source
// address paired with its extracted edge set.
type Sample struct {
	SA  canbus.SourceAddress
	Set linalg.Vector
}

// TrainConfig parameterises Algorithm 2.
type TrainConfig struct {
	Metric Metric

	// SAMap, when non-nil, is the "fortunate" case of Algorithm 2: a
	// database mapping each source address to an ECU index, used as
	// the clustering lookup table directly.
	SAMap map[canbus.SourceAddress]int

	// Without SAMap, per-SA groups are clustered agglomeratively on
	// the Euclidean distance between their mean edge sets.
	// TargetClusters stops merging at that cluster count; if zero,
	// merging continues while the closest pair is nearer than
	// MergeThreshold.
	TargetClusters int
	MergeThreshold float64

	// Margin is stored into the model (Section 3.2.3).
	Margin float64

	// Ridge, when positive, is added to the covariance diagonal before
	// inversion. Zero keeps the paper's behaviour where degenerate
	// (low-resolution) data surfaces ErrSingularCov.
	Ridge float64

	// UpdateBound is copied into the model for Section 5.3.
	UpdateBound int
}

// Train builds a model from labelled edge sets per Algorithm 2.
func Train(samples []Sample, cfg TrainConfig) (*Model, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	dim := len(samples[0].Set)
	if dim == 0 {
		return nil, ErrNoSamples
	}
	for i := range samples {
		if len(samples[i].Set) != dim {
			return nil, fmt.Errorf("%w: sample %d has %d dims, want %d", ErrDimMismatch, i, len(samples[i].Set), dim)
		}
	}

	bySA := groupBySA(samples)
	var groups []saGroup
	if cfg.SAMap != nil {
		groups = clusterByLUT(bySA, cfg.SAMap)
	} else {
		groups = clusterByDistance(bySA, cfg.TargetClusters, cfg.MergeThreshold)
	}

	m := &Model{
		Metric: cfg.Metric, Dim: dim, Margin: cfg.Margin, UpdateBound: cfg.UpdateBound,
		SALUT: make(map[canbus.SourceAddress]ClusterID),
	}
	for i, g := range groups {
		c := &Cluster{ID: ClusterID(i), SAs: g.sas, N: len(g.sets)}
		c.Mean = linalg.Mean(g.sets)
		if cfg.Metric == Mahalanobis {
			cov := linalg.Covariance(g.sets)
			if cfg.Ridge > 0 {
				cov = cov.AddScaledIdentity(cfg.Ridge)
			}
			inv, err := cov.Inverse()
			if err != nil {
				return nil, fmt.Errorf("%w: cluster %d (SAs %v): %v", ErrSingularCov, i, g.sas, err)
			}
			c.Cov = cov
			c.InvCov = inv
		}
		m.Clusters = append(m.Clusters, c)
		for _, sa := range g.sas {
			m.SALUT[sa] = c.ID
		}
	}
	// Precompute BEFORE the threshold pass: MaxDist must come from the
	// same arithmetic detection will use, or training samples could sit
	// epsilon outside their own cluster's threshold.
	m.Precompute()
	for i, g := range groups {
		c := m.Clusters[i]
		for _, s := range g.sets {
			if d := m.Distance(c, s); d > c.MaxDist {
				c.MaxDist = d
			}
		}
	}
	return m, nil
}

// saGroup is a set of edge sets belonging to one eventual cluster.
type saGroup struct {
	sas  []canbus.SourceAddress
	sets []linalg.Vector
}

// groupBySA splits samples into per-SA groups, ordered by SA for
// determinism.
func groupBySA(samples []Sample) map[canbus.SourceAddress][]linalg.Vector {
	out := make(map[canbus.SourceAddress][]linalg.Vector)
	for _, s := range samples {
		out[s.SA] = append(out[s.SA], s.Set)
	}
	return out
}

func sortedSAs(bySA map[canbus.SourceAddress][]linalg.Vector) []canbus.SourceAddress {
	sas := make([]canbus.SourceAddress, 0, len(bySA))
	for sa := range bySA {
		sas = append(sas, sa)
	}
	sort.Slice(sas, func(i, j int) bool { return sas[i] < sas[j] })
	return sas
}

// clusterByLUT is the fortunate case: the caller supplied the SA→ECU
// database. SAs missing from the map each form their own cluster.
func clusterByLUT(bySA map[canbus.SourceAddress][]linalg.Vector, saMap map[canbus.SourceAddress]int) []saGroup {
	byECU := make(map[int]*saGroup)
	var order []int
	next := 1 << 20 // synthetic ECU ids for unmapped SAs
	for _, sa := range sortedSAs(bySA) {
		ecu, ok := saMap[sa]
		if !ok {
			ecu = next
			next++
		}
		g, ok := byECU[ecu]
		if !ok {
			g = &saGroup{}
			byECU[ecu] = g
			order = append(order, ecu)
		}
		g.sas = append(g.sas, sa)
		g.sets = append(g.sets, bySA[sa]...)
	}
	out := make([]saGroup, 0, len(order))
	for _, ecu := range order {
		out = append(out, *byECU[ecu])
	}
	return out
}

// clusterByDistance implements the unfortunate case of Algorithm 2:
// group by SA, compute each group's mean, and agglomeratively merge
// the closest pair of groups (Euclidean distance between means) until
// either targetClusters remain or the closest pair is farther apart
// than mergeThreshold.
func clusterByDistance(bySA map[canbus.SourceAddress][]linalg.Vector, targetClusters int, mergeThreshold float64) []saGroup {
	groups := make([]saGroup, 0, len(bySA))
	means := make([]linalg.Vector, 0, len(bySA))
	for _, sa := range sortedSAs(bySA) {
		groups = append(groups, saGroup{sas: []canbus.SourceAddress{sa}, sets: bySA[sa]})
		means = append(means, linalg.Mean(bySA[sa]))
	}
	for len(groups) > 1 {
		if targetClusters > 0 && len(groups) <= targetClusters {
			break
		}
		bi, bj, best := -1, -1, 0.0
		for i := range groups {
			for j := i + 1; j < len(groups); j++ {
				d := linalg.Euclidean(means[i], means[j])
				if bi < 0 || d < best {
					bi, bj, best = i, j, d
				}
			}
		}
		if targetClusters <= 0 && best > mergeThreshold {
			break
		}
		// Merge j into i; recompute the merged mean sample-weighted.
		ni := float64(len(groups[bi].sets))
		nj := float64(len(groups[bj].sets))
		merged := means[bi].Scale(ni / (ni + nj)).Add(means[bj].Scale(nj / (ni + nj)))
		groups[bi].sas = append(groups[bi].sas, groups[bj].sas...)
		groups[bi].sets = append(groups[bi].sets, groups[bj].sets...)
		means[bi] = merged
		groups = append(groups[:bj], groups[bj+1:]...)
		means = append(means[:bj], means[bj+1:]...)
	}
	for i := range groups {
		sort.Slice(groups[i].sas, func(a, b int) bool { return groups[i].sas[a] < groups[i].sas[b] })
	}
	return groups
}
