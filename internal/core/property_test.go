package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vprofile/internal/canbus"
	"vprofile/internal/linalg"
)

// Property-based tests of detection invariants on randomly trained
// models and random observations.

// randomModel trains a small Mahalanobis model from a seed.
func randomModel(seed int64) (*Model, []synthECU, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	nECU := 2 + rng.Intn(4)
	seps := make([]float64, nECU)
	for i := range seps {
		seps[i] = float64(i) * (150 + rng.Float64()*200)
	}
	ecus := makeECUs(4+rng.Intn(6), seps)
	var samples []Sample
	for k := range ecus {
		for i := 0; i < 80; i++ {
			samples = append(samples, ecus[k].sample(rng))
		}
	}
	m, err := Train(samples, TrainConfig{Metric: Mahalanobis, TargetClusters: nECU, Margin: rng.Float64() * 5})
	if err != nil {
		return nil, nil, nil
	}
	return m, ecus, rng
}

func TestPropertyNearestIsArgmin(t *testing.T) {
	f := func(seed int64) bool {
		m, ecus, rng := randomModel(seed)
		if m == nil {
			return true
		}
		s := ecus[rng.Intn(len(ecus))].sample(rng)
		pred, minDist := m.Nearest(s.Set)
		// Brute-force argmin must agree.
		best, bestD := ClusterID(-1), math.Inf(1)
		for _, c := range m.Clusters {
			if d := m.Distance(c, s.Set); d < bestD {
				best, bestD = c.ID, d
			}
		}
		return pred == best && minDist == bestD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDetectConsistency(t *testing.T) {
	// Invariants of Algorithm 3's outcome space:
	//   unknown SA ⇒ anomaly with no prediction;
	//   mismatch   ⇒ Predict ≠ Expected;
	//   threshold  ⇒ Predict == Expected and MinDist > MaxDist+Margin;
	//   ok         ⇒ Predict == Expected and MinDist ≤ MaxDist+Margin.
	f := func(seed int64, saRaw uint8) bool {
		m, ecus, rng := randomModel(seed)
		if m == nil {
			return true
		}
		s := ecus[rng.Intn(len(ecus))].sample(rng)
		sa := canbus.SourceAddress(saRaw)
		d := m.Detect(sa, s.Set)
		switch d.Reason {
		case ReasonUnknownSA:
			_, known := m.SALUT[sa]
			return d.Anomaly && !known && d.Predict == -1
		case ReasonClusterMismatch:
			return d.Anomaly && d.Predict != d.Expected
		case ReasonOverThreshold:
			c := m.Clusters[d.Expected]
			return d.Anomaly && d.Predict == d.Expected && d.MinDist > c.MaxDist+m.Margin
		case ReasonNone:
			c := m.Clusters[d.Expected]
			return !d.Anomaly && d.Predict == d.Expected && d.MinDist <= c.MaxDist+m.Margin
		default:
			return false
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMarginMonotone(t *testing.T) {
	// Raising the margin can only turn anomalies into accepts, never
	// the reverse, and only via the threshold path.
	f := func(seed int64) bool {
		m, ecus, rng := randomModel(seed)
		if m == nil {
			return true
		}
		s := ecus[rng.Intn(len(ecus))].sample(rng)
		m.Margin = 0
		d0 := m.Detect(s.SA, s.Set)
		m.Margin = 1e9
		d1 := m.Detect(s.SA, s.Set)
		if !d0.Anomaly && d1.Anomaly {
			return false // widening the margin created an anomaly
		}
		if d1.Anomaly && d1.Reason == ReasonOverThreshold {
			return false // nothing exceeds an enormous margin
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTrainingSamplesWithinThreshold(t *testing.T) {
	// Every training sample sits within its own cluster's MaxDist by
	// construction (Algorithm 2's threshold definition).
	rng := rand.New(rand.NewSource(77))
	ecus := makeECUs(6, []float64{0, 250, 500})
	var samples []Sample
	for k := range ecus {
		for i := 0; i < 100; i++ {
			samples = append(samples, ecus[k].sample(rng))
		}
	}
	m, err := Train(samples, TrainConfig{Metric: Mahalanobis, TargetClusters: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range samples {
		c, err := m.ClusterForSA(s.SA)
		if err != nil {
			t.Fatal(err)
		}
		if d := m.Distance(c, s.Set); d > c.MaxDist*(1+1e-9) {
			t.Fatalf("training sample %d at distance %v exceeds its threshold %v", i, d, c.MaxDist)
		}
	}
}

func TestPropertyUpdateMeanConverges(t *testing.T) {
	// Feeding a constant vector repeatedly drags the cluster mean
	// toward it (Algorithm 4's mean update is a running average).
	m, ecus, rng := randomModel(3)
	if m == nil {
		t.Skip("random model degenerate")
	}
	target := ecus[0].sample(rng)
	for j := range target.Set {
		target.Set[j] += 25
	}
	c, err := m.ClusterForSA(target.SA)
	if err != nil {
		t.Fatal(err)
	}
	before := linalg.Euclidean(c.Mean, target.Set)
	for i := 0; i < 400; i++ {
		if _, err := m.Update([]Sample{{SA: target.SA, Set: target.Set.Clone()}}); err != nil {
			t.Fatal(err)
		}
	}
	after := linalg.Euclidean(c.Mean, target.Set)
	if after >= before/2 {
		t.Fatalf("mean did not converge: %v -> %v", before, after)
	}
}
