package core

import (
	"fmt"

	"vprofile/internal/linalg"
)

// UpdateResult summarises one online model update.
type UpdateResult struct {
	Applied int // edge sets folded into clusters
	Skipped int // edge sets whose SA is not in the model
	// RetrainRecommended lists clusters whose N reached the model's
	// UpdateBound, the Section 5.3 criterion for training a fresh
	// model instead of continuing to dilute updates.
	RetrainRecommended []ClusterID
}

// Update implements Algorithm 4 (the Section 5.3 online model update):
// new edge sets are grouped through the cluster-SA lookup table, and
// each cluster's edge-set count, mean, covariance (Equation 5.1),
// inverse covariance and maximum distance are updated per sample.
//
// The inverse covariance is maintained with a Sherman-Morrison rank-1
// update rather than re-inversion, keeping the per-sample cost at
// O(dim²). Samples with unknown SAs are skipped and counted — the
// caller should only feed messages the detector accepted.
//
// Update invalidates the precomputed Cholesky scoring state (it
// mutates the covariances the factors were derived from), so distances
// fall back to the maintained inverse covariance — consistently for
// both the per-sample MaxDist maintenance below and any detection that
// follows. Call Precompute before serving the updated model on the hot
// path (engine.ModelStore.Swap does this when the model is published).
func (m *Model) Update(samples []Sample) (UpdateResult, error) {
	var res UpdateResult
	m.chol = nil
	for _, s := range samples {
		if len(s.Set) != m.Dim {
			return res, fmt.Errorf("%w: got %d dims, want %d", ErrDimMismatch, len(s.Set), m.Dim)
		}
		id, ok := m.SALUT[s.SA]
		if !ok {
			res.Skipped++
			continue
		}
		if err := m.Clusters[id].push(m, s.Set); err != nil {
			return res, fmt.Errorf("core: updating cluster %d: %w", id, err)
		}
		res.Applied++
	}
	if m.UpdateBound > 0 {
		for _, c := range m.Clusters {
			if c.N >= m.UpdateBound {
				res.RetrainRecommended = append(res.RetrainRecommended, c.ID)
			}
		}
	}
	return res, nil
}

// push folds one edge set into the cluster statistics.
func (c *Cluster) push(m *Model, set linalg.Vector) error {
	nPrev := float64(c.N)
	c.N++
	n := float64(c.N)

	// d = x − mean_{n−1}; mean_n = mean_{n−1} + d/n.
	d := set.Sub(c.Mean)
	for i := range c.Mean {
		c.Mean[i] += d[i] / n
	}

	if m.Metric == Mahalanobis && c.Cov != nil {
		// Equation 5.1 in N-normalised form:
		//   Σ_n = (N_{n−1}/N_n)·Σ_{n−1} + ((n−1)/n²)·d·dᵀ
		// which is a scale plus a symmetric rank-1 update, so the
		// inverse follows by Sherman-Morrison.
		alpha := nPrev / n
		beta := nPrev / (n * n)
		if nPrev == 0 {
			// First sample of a cluster trained empty: covariance
			// stays zero; nothing to invert.
			return nil
		}
		dim := m.Dim
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				c.Cov.Data[i*dim+j] = alpha*c.Cov.Data[i*dim+j] + beta*d[i]*d[j]
			}
		}
		if c.InvCov != nil {
			// inv(α·Σ) = invΣ/α, then rank-1 correct with u = β·d, v = d.
			c.InvCov.ScaleInPlace(1 / alpha)
			if err := linalg.ShermanMorrisonUpdate(c.InvCov, d.Scale(beta), d); err != nil {
				// Fall back to a full inversion; the covariance itself
				// may still be well conditioned.
				inv, ierr := c.Cov.Inverse()
				if ierr != nil {
					return ErrSingularCov
				}
				c.InvCov = inv
			}
		}
	}

	if dist := m.Distance(c, set); dist > c.MaxDist {
		c.MaxDist = dist
	}
	return nil
}
