package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// TestDistancePrecomputedMatchesFallback pins the precomputed Cholesky
// scoring path against the inverse-covariance fallback on a trained
// model: clearing the factors must not change any distance beyond
// floating-point noise, near the mean or far from it.
func TestDistancePrecomputedMatchesFallback(t *testing.T) {
	m, ecus, rng := trainTest(t, Mahalanobis, TrainConfig{Ridge: 1e-6})
	if m.chol == nil {
		t.Fatal("trained Mahalanobis model has no precomputed factors")
	}
	for _, c := range m.Clusters {
		if m.cholFor(c) == nil {
			t.Fatalf("cluster %d has no factor", c.ID)
		}
	}
	for trial := 0; trial < 200; trial++ {
		s := ecus[trial%len(ecus)].sample(rng)
		c, err := m.ClusterForSA(s.SA)
		if err != nil {
			t.Fatal(err)
		}
		fast := m.Distance(c, s.Set)
		saved := m.chol
		m.chol = nil
		slow := m.Distance(c, s.Set)
		m.chol = saved
		if tol := 1e-8 * math.Max(1, slow); math.Abs(fast-slow) > tol {
			t.Fatalf("trial %d: Cholesky distance %v, inverse-covariance %v (diff %g)",
				trial, fast, slow, fast-slow)
		}
	}
}

// TestUpdateInvalidatesPrecompute verifies Update drops the factors
// (they were derived from the covariances it mutates) and that the
// fallback path then serves consistent distances until Precompute
// re-establishes the fast path.
func TestUpdateInvalidatesPrecompute(t *testing.T) {
	m, ecus, rng := trainTest(t, Mahalanobis, TrainConfig{Ridge: 1e-6})
	if m.chol == nil {
		t.Fatal("trained model not precomputed")
	}
	var batch []Sample
	for i := 0; i < 10; i++ {
		batch = append(batch, ecus[0].sample(rng))
	}
	if _, err := m.Update(batch); err != nil {
		t.Fatal(err)
	}
	if m.chol != nil {
		t.Fatal("Update left stale precomputed factors in place")
	}
	s := ecus[0].sample(rng)
	c, err := m.ClusterForSA(s.SA)
	if err != nil {
		t.Fatal(err)
	}
	slow := m.Distance(c, s.Set)
	m.Precompute()
	if m.chol == nil {
		t.Fatal("Precompute after Update did not rebuild factors")
	}
	fast := m.Distance(c, s.Set)
	if tol := 1e-8 * math.Max(1, slow); math.Abs(fast-slow) > tol {
		t.Fatalf("post-update distance %v precomputed vs %v fallback (diff %g)", fast, slow, fast-slow)
	}
}

// TestLoadScoresIdentically round-trips a model through Save/Load and
// requires bit-identical distances: the covariances serialise exactly
// and Load's Precompute is deterministic, so a deserialised model must
// score exactly like the one that was saved.
func TestLoadScoresIdentically(t *testing.T) {
	m, ecus, _ := trainTest(t, Mahalanobis, TrainConfig{Ridge: 1e-6})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.chol == nil {
		t.Fatal("Load did not precompute scoring factors")
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		s := ecus[trial%len(ecus)].sample(rng)
		c1, err := m.ClusterForSA(s.SA)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := loaded.ClusterForSA(s.SA)
		if err != nil {
			t.Fatal(err)
		}
		if d1, d2 := m.Distance(c1, s.Set), loaded.Distance(c2, s.Set); d1 != d2 {
			t.Fatalf("trial %d: loaded model scores %v, original %v", trial, d2, d1)
		}
	}
}
