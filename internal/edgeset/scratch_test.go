package edgeset

import (
	"math/rand"
	"testing"

	"vprofile/internal/canbus"
)

// TestExtractIntoMatchesExtract reuses one Scratch across many frames
// and requires bit-identical results against the allocating Extract —
// the contract the batched pipeline's determinism guarantee rests on.
// Multi-edge-set averaging is included because it is the one place the
// scratch path scales in place instead of allocating a scaled copy.
func TestExtractIntoMatchesExtract(t *testing.T) {
	for _, cfg := range []Config{
		testCfg(),
		func() Config {
			c := testCfg()
			c.NumEdgeSets, c.EdgeSetGap = 3, 250
			return c
		}(),
		func() Config {
			c := testCfg()
			c.Edges = EdgesRising
			return c
		}(),
	} {
		scratch := new(Scratch)
		rng := rand.New(rand.NewSource(31))
		for trial := 0; trial < 40; trial++ {
			sa := canbus.SourceAddress(rng.Intn(200))
			f := frameWithSA(t, sa, []byte{byte(trial), 0xA5, byte(trial * 3)})
			tr := synthesize(t, f, rng.Int63())

			want, wantErr := Extract(tr, cfg)
			got, gotErr := ExtractInto(tr, cfg, scratch)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("cfg %v trial %d: Extract err %v, ExtractInto err %v", cfg.Edges, trial, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if got.SA != want.SA || got.SetAt != want.SetAt || got.BitsSOF != want.BitsSOF {
				t.Fatalf("cfg %v trial %d: scalar fields differ: got %+v want %+v", cfg.Edges, trial, got, want)
			}
			if len(got.Set) != len(want.Set) {
				t.Fatalf("cfg %v trial %d: set length %d vs %d", cfg.Edges, trial, len(got.Set), len(want.Set))
			}
			for i := range want.Set {
				if got.Set[i] != want.Set[i] {
					t.Fatalf("cfg %v trial %d: Set[%d] = %v via scratch, %v via Extract",
						cfg.Edges, trial, i, got.Set[i], want.Set[i])
				}
			}
			if len(got.Bits) != len(want.Bits) {
				t.Fatalf("cfg %v trial %d: bits length %d vs %d", cfg.Edges, trial, len(got.Bits), len(want.Bits))
			}
			for i := range want.Bits {
				if got.Bits[i] != want.Bits[i] {
					t.Fatalf("cfg %v trial %d: Bits[%d] differs", cfg.Edges, trial, i)
				}
			}
		}
	}
}

// TestExtractIntoSteadyStateAllocs verifies a warmed-up Scratch stops
// allocating — the whole point of the type.
func TestExtractIntoSteadyStateAllocs(t *testing.T) {
	cfg := testCfg()
	f := frameWithSA(t, 0x42, []byte{1, 2, 3})
	tr := synthesize(t, f, 9)
	scratch := new(Scratch)
	if _, err := ExtractInto(tr, cfg, scratch); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := ExtractInto(tr, cfg, scratch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed ExtractInto allocates %v objects per call, want 0", allocs)
	}
}
