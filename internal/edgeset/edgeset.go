// Package edgeset implements vProfile's preprocessing stage
// (Section 3.2.1, Algorithm 1): walking the sampled voltage trace of a
// CAN frame bit by bit, staying synchronised by re-centring on every
// observed edge, skipping stuff bits, decoding the J1939 source
// address from bits 24–31, and extracting the first edge set (rising
// edge, intervening steady state, falling edge) after the arbitration
// field.
//
// It also implements the two Chapter 5 preprocessing enhancements:
// per-cluster extraction thresholds (Section 5.1) and averaging
// multiple edge sets taken from later parts of the same message
// (Section 5.2).
package edgeset

import (
	"errors"
	"fmt"

	"vprofile/internal/analog"
	"vprofile/internal/canbus"
	"vprofile/internal/linalg"
)

// Errors reported by extraction.
var (
	ErrNoSOF      = errors.New("edgeset: no start-of-frame found")
	ErrTruncated  = errors.New("edgeset: trace ends before the edge set")
	ErrLostSync   = errors.New("edgeset: lost bit synchronisation")
	ErrBadConfig  = errors.New("edgeset: invalid extractor configuration")
	ErrStuffError = errors.New("edgeset: stuff bit has same polarity as preceding run")
)

// Config parameterises extraction. The paper's reference values for a
// 250 kb/s bus sampled at 10 MS/s are BitWidth 40, PrefixLen 2 and
// SuffixLen 14; BitThreshold should roughly horizontally bisect the
// rising edge (38,000 for 16-bit codes on the test captures).
type Config struct {
	BitWidth     int     // samples per bit
	BitThreshold float64 // code level separating dominant from recessive
	PrefixLen    int     // samples kept before each threshold crossing
	SuffixLen    int     // samples kept after each threshold crossing

	// NumEdgeSets > 1 enables the Section 5.2 enhancement: that many
	// edge sets are extracted, each search starting EdgeSetGap samples
	// after the previous extraction point, and averaged element-wise.
	NumEdgeSets int // default 1
	EdgeSetGap  int // default 250 samples, the paper's spacing

	// Edges selects which transitions enter the vector; the default
	// EdgesBoth is the paper's edge set (rising + steady + falling).
	// The single-edge variants exist for the ablation study of the
	// design choice.
	Edges EdgeSelection
}

// EdgeSelection picks which transitions form the feature vector.
type EdgeSelection int

// Edge selections.
const (
	EdgesBoth EdgeSelection = iota
	EdgesRising
	EdgesFalling
)

// String names the selection.
func (e EdgeSelection) String() string {
	switch e {
	case EdgesRising:
		return "rising-only"
	case EdgesFalling:
		return "falling-only"
	default:
		return "both-edges"
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.BitWidth < 4 {
		return fmt.Errorf("%w: bit width %d too small", ErrBadConfig, c.BitWidth)
	}
	if c.PrefixLen < 0 || c.SuffixLen <= 0 {
		return fmt.Errorf("%w: window %d+%d", ErrBadConfig, c.PrefixLen, c.SuffixLen)
	}
	if c.PrefixLen+c.SuffixLen > 4*c.BitWidth {
		return fmt.Errorf("%w: window longer than four bits", ErrBadConfig)
	}
	if c.NumEdgeSets < 0 || (c.NumEdgeSets > 1 && c.EdgeSetGap < 1) {
		return fmt.Errorf("%w: %d edge sets with gap %d", ErrBadConfig, c.NumEdgeSets, c.EdgeSetGap)
	}
	return nil
}

// numSets returns the effective edge-set count (≥ 1).
func (c Config) numSets() int {
	if c.NumEdgeSets < 1 {
		return 1
	}
	return c.NumEdgeSets
}

// Dim returns the dimensionality of extracted edge-set vectors:
// (prefix+suffix) samples per selected edge.
func (c Config) Dim() int {
	if c.Edges == EdgesBoth {
		return 2 * (c.PrefixLen + c.SuffixLen)
	}
	return c.PrefixLen + c.SuffixLen
}

// Result is one preprocessed message: the decoded source address
// paired with its edge-set vector, which together feed training and
// detection.
type Result struct {
	SA      canbus.SourceAddress
	Set     linalg.Vector
	SetAt   int              // sample index where the first edge window begins
	BitsSOF int              // sample index of the SOF threshold crossing
	Bits    canbus.BitString // decoded (destuffed) bits 0–33
}

// Extract runs Algorithm 1 on a trace that contains one frame preceded
// by recessive bus idle. Every call allocates a fresh Result whose
// buffers the caller may retain indefinitely; hot paths that process
// one frame at a time should prefer ExtractInto with a reused Scratch.
func Extract(tr analog.Trace, cfg Config) (*Result, error) {
	return ExtractInto(tr, cfg, new(Scratch))
}

// Scratch holds the working buffers of one extraction so repeated
// calls on the same Scratch stop allocating once the buffers reach
// steady-state capacity. A Scratch is not safe for concurrent use; use
// one per goroutine (ids.Composite keeps them in a sync.Pool).
type Scratch struct {
	bits canbus.BitString
	set  linalg.Vector // accumulated/averaged edge-set vector
	tmp  linalg.Vector // one edge-set window, reused across the averaging loop
	res  Result
}

// ExtractInto is Extract over caller-owned buffers. The returned
// Result — including its Set and Bits slices — aliases the Scratch and
// is valid only until the next ExtractInto call with the same Scratch;
// callers that need to retain it must copy. The arithmetic is
// identical to Extract's, so the two produce bit-identical vectors.
func ExtractInto(tr analog.Trace, cfg Config, s *Scratch) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dec, err := walkBits(tr, cfg, canbus.BitR1, s.bits[:0])
	if err != nil {
		return nil, err
	}
	s.bits = dec.bits
	sa := canbus.SourceAddress(dec.bits[canbus.SABitFirst : canbus.SABitLast+1].Uint())

	set, setAt, err := extractSetsInto(tr, dec.pos, cfg, s)
	if err != nil {
		return nil, err
	}
	s.res = Result{SA: sa, Set: set, SetAt: setAt, BitsSOF: dec.sof, Bits: dec.bits}
	return &s.res, nil
}

// decodeState is the traversal outcome of walkBits.
type decodeState struct {
	bits canbus.BitString
	pos  int // sample index of the centre of the last decoded bit
	sof  int
}

// walkBits ingests the trace from SOF through (and including) the
// destuffed bit lastBit, re-aligning to the centre of every edge it
// crosses and skipping stuff bits, exactly as the EXTRACT procedure of
// Algorithm 1 does. The decoded bits are appended to buf (normally a
// reused buffer truncated to length zero) and returned in the state.
func walkBits(tr analog.Trace, cfg Config, lastBit int, buf canbus.BitString) (decodeState, error) {
	var none decodeState
	sof := findSOF(tr, cfg.BitThreshold)
	if sof < 0 {
		return none, ErrNoSOF
	}
	pos := sof + cfg.BitWidth/2
	if pos >= len(tr) {
		return none, ErrTruncated
	}
	bits := buf
	if cap(bits) < lastBit+1 {
		bits = make(canbus.BitString, 0, lastBit+1)
	}
	bits = append(bits, bitAt(tr, pos, cfg.BitThreshold))
	if bits[0] != canbus.Dominant {
		return none, fmt.Errorf("%w: SOF centre not dominant", ErrLostSync)
	}
	prev := bits[0]
	run := 1 // consecutive equal wire bits, stuff bits included
	for len(bits) <= lastBit {
		pos += cfg.BitWidth
		if pos >= len(tr) {
			return none, ErrTruncated
		}
		b := bitAt(tr, pos, cfg.BitThreshold)
		if b != prev {
			edge := alignToEdgeCentre(tr, pos, cfg)
			if edge < 0 {
				return none, ErrLostSync
			}
			pos = edge + cfg.BitWidth/2
			if pos >= len(tr) {
				return none, ErrTruncated
			}
			run = 1
		} else {
			run++
		}
		bits = append(bits, b)
		prev = b
		if run == canbus.StuffLimit {
			// Consume the stuff bit: advance one bit time, verify the
			// polarity flip, realign on its edge, and do not append.
			pos += cfg.BitWidth
			if pos >= len(tr) {
				return none, ErrTruncated
			}
			sb := bitAt(tr, pos, cfg.BitThreshold)
			if sb == prev {
				return none, ErrStuffError
			}
			edge := alignToEdgeCentre(tr, pos, cfg)
			if edge < 0 {
				return none, ErrLostSync
			}
			pos = edge + cfg.BitWidth/2
			if pos >= len(tr) {
				return none, ErrTruncated
			}
			prev = sb
			run = 1
		}
	}
	return decodeState{bits: bits, pos: pos, sof: sof}, nil
}

// findSOF returns the index of the first dominant sample — the
// idle→dominant SOF transition — or −1 if none exists.
func findSOF(tr analog.Trace, threshold float64) int {
	for i, v := range tr {
		if v >= threshold {
			return i
		}
	}
	return -1
}

// bitAt applies the GetBitValue rule: at or above the threshold the
// bus is dominant ('0'), below it recessive ('1').
func bitAt(tr analog.Trace, pos int, threshold float64) canbus.Bit {
	if tr[pos] >= threshold {
		return canbus.Dominant
	}
	return canbus.Recessive
}

// alignToEdgeCentre locates the threshold crossing that produced the
// polarity change observed at pos by scanning backwards up to a little
// over one bit width. It returns the crossing index (first sample on
// the new polarity) or −1.
func alignToEdgeCentre(tr analog.Trace, pos int, cfg Config) int {
	cur := bitAt(tr, pos, cfg.BitThreshold)
	limit := pos - cfg.BitWidth - cfg.BitWidth/2
	if limit < 0 {
		limit = 0
	}
	for i := pos; i > limit; i-- {
		if bitAt(tr, i-1, cfg.BitThreshold) != cur {
			return i
		}
	}
	return -1
}

// extractSetsInto extracts cfg.numSets() edge sets beginning at pos
// (the centre of the first bit after the arbitration field) and
// returns their element-wise mean together with the sample index of
// the first window. The returned vector is s.set, resized and reused;
// the averaging divides in place by the same factor the allocating
// path used, so the values are bit-identical.
func extractSetsInto(tr analog.Trace, pos int, cfg Config, s *Scratch) (linalg.Vector, int, error) {
	n := cfg.numSets()
	dim := cfg.Dim()
	if cap(s.set) < dim {
		s.set = make(linalg.Vector, dim)
	}
	sum := s.set[:dim]
	clear(sum)
	firstAt := -1
	searchFrom := pos
	for k := 0; k < n; k++ {
		set, at, err := extractOneSetInto(tr, searchFrom, cfg, s.tmp[:0])
		s.tmp = set[:0]
		if err != nil {
			return nil, 0, err
		}
		if k == 0 {
			firstAt = at
		}
		for i, v := range set {
			sum[i] += v
		}
		searchFrom = at + cfg.EdgeSetGap
		if searchFrom >= len(tr) {
			if k+1 < n {
				return nil, 0, ErrTruncated
			}
		}
	}
	if n > 1 {
		inv := 1 / float64(n)
		for i := range sum {
			sum[i] *= inv
		}
	}
	return sum, firstAt, nil
}

// extractOneSetInto implements the EXTRACTEDGESET procedure: advance
// to the next rising threshold crossing, window it, advance past half
// a bit and to the next falling crossing, window that, and
// concatenate. The window is appended to out (normally a reused buffer
// truncated to length zero).
func extractOneSetInto(tr analog.Trace, pos int, cfg Config, out linalg.Vector) (linalg.Vector, int, error) {
	th := cfg.BitThreshold
	// If we start inside a dominant stretch, first reach recessive so
	// the next crossing is genuinely a rising edge.
	for pos < len(tr) && tr[pos] >= th {
		pos++
	}
	// Rising edge: first sample at or above the threshold.
	for pos < len(tr) && tr[pos] < th {
		pos++
	}
	if pos >= len(tr) || pos-cfg.PrefixLen < 0 || pos+cfg.SuffixLen > len(tr) {
		return out, 0, ErrTruncated
	}
	setAt := pos - cfg.PrefixLen
	if cfg.Edges != EdgesFalling {
		out = append(out, tr[pos-cfg.PrefixLen:pos+cfg.SuffixLen]...)
	}
	if cfg.Edges == EdgesRising {
		return out, setAt, nil
	}

	// Falling edge: step into the dominant region, then take the first
	// sample below the threshold.
	pos += cfg.BitWidth / 2
	for pos < len(tr) && tr[pos] >= th {
		pos++
	}
	if pos >= len(tr) || pos+cfg.SuffixLen > len(tr) {
		return out, 0, ErrTruncated
	}
	out = append(out, tr[pos-cfg.PrefixLen:pos+cfg.SuffixLen]...)
	return out, setAt, nil
}

// ClusterThreshold computes the Section 5.1 per-cluster extraction
// threshold: the midpoint of the maximum and minimum sample values in
// the first half of the message, which stays clear of the ACK slot
// whose level can deviate from the rest of the frame.
func ClusterThreshold(tr analog.Trace) float64 {
	half := tr[:len(tr)/2]
	if len(half) == 0 {
		half = tr
	}
	mn, mx := half[0], half[0]
	for _, v := range half {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return (mn + mx) / 2
}
