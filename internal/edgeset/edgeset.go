// Package edgeset implements vProfile's preprocessing stage
// (Section 3.2.1, Algorithm 1): walking the sampled voltage trace of a
// CAN frame bit by bit, staying synchronised by re-centring on every
// observed edge, skipping stuff bits, decoding the J1939 source
// address from bits 24–31, and extracting the first edge set (rising
// edge, intervening steady state, falling edge) after the arbitration
// field.
//
// It also implements the two Chapter 5 preprocessing enhancements:
// per-cluster extraction thresholds (Section 5.1) and averaging
// multiple edge sets taken from later parts of the same message
// (Section 5.2).
package edgeset

import (
	"errors"
	"fmt"

	"vprofile/internal/analog"
	"vprofile/internal/canbus"
	"vprofile/internal/linalg"
)

// Errors reported by extraction.
var (
	ErrNoSOF      = errors.New("edgeset: no start-of-frame found")
	ErrTruncated  = errors.New("edgeset: trace ends before the edge set")
	ErrLostSync   = errors.New("edgeset: lost bit synchronisation")
	ErrBadConfig  = errors.New("edgeset: invalid extractor configuration")
	ErrStuffError = errors.New("edgeset: stuff bit has same polarity as preceding run")
)

// Config parameterises extraction. The paper's reference values for a
// 250 kb/s bus sampled at 10 MS/s are BitWidth 40, PrefixLen 2 and
// SuffixLen 14; BitThreshold should roughly horizontally bisect the
// rising edge (38,000 for 16-bit codes on the test captures).
type Config struct {
	BitWidth     int     // samples per bit
	BitThreshold float64 // code level separating dominant from recessive
	PrefixLen    int     // samples kept before each threshold crossing
	SuffixLen    int     // samples kept after each threshold crossing

	// NumEdgeSets > 1 enables the Section 5.2 enhancement: that many
	// edge sets are extracted, each search starting EdgeSetGap samples
	// after the previous extraction point, and averaged element-wise.
	NumEdgeSets int // default 1
	EdgeSetGap  int // default 250 samples, the paper's spacing

	// Edges selects which transitions enter the vector; the default
	// EdgesBoth is the paper's edge set (rising + steady + falling).
	// The single-edge variants exist for the ablation study of the
	// design choice.
	Edges EdgeSelection
}

// EdgeSelection picks which transitions form the feature vector.
type EdgeSelection int

// Edge selections.
const (
	EdgesBoth EdgeSelection = iota
	EdgesRising
	EdgesFalling
)

// String names the selection.
func (e EdgeSelection) String() string {
	switch e {
	case EdgesRising:
		return "rising-only"
	case EdgesFalling:
		return "falling-only"
	default:
		return "both-edges"
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.BitWidth < 4 {
		return fmt.Errorf("%w: bit width %d too small", ErrBadConfig, c.BitWidth)
	}
	if c.PrefixLen < 0 || c.SuffixLen <= 0 {
		return fmt.Errorf("%w: window %d+%d", ErrBadConfig, c.PrefixLen, c.SuffixLen)
	}
	if c.PrefixLen+c.SuffixLen > 4*c.BitWidth {
		return fmt.Errorf("%w: window longer than four bits", ErrBadConfig)
	}
	if c.NumEdgeSets < 0 || (c.NumEdgeSets > 1 && c.EdgeSetGap < 1) {
		return fmt.Errorf("%w: %d edge sets with gap %d", ErrBadConfig, c.NumEdgeSets, c.EdgeSetGap)
	}
	return nil
}

// numSets returns the effective edge-set count (≥ 1).
func (c Config) numSets() int {
	if c.NumEdgeSets < 1 {
		return 1
	}
	return c.NumEdgeSets
}

// Dim returns the dimensionality of extracted edge-set vectors:
// (prefix+suffix) samples per selected edge.
func (c Config) Dim() int {
	if c.Edges == EdgesBoth {
		return 2 * (c.PrefixLen + c.SuffixLen)
	}
	return c.PrefixLen + c.SuffixLen
}

// Result is one preprocessed message: the decoded source address
// paired with its edge-set vector, which together feed training and
// detection.
type Result struct {
	SA      canbus.SourceAddress
	Set     linalg.Vector
	SetAt   int              // sample index where the first edge window begins
	BitsSOF int              // sample index of the SOF threshold crossing
	Bits    canbus.BitString // decoded (destuffed) bits 0–33
}

// Extract runs Algorithm 1 on a trace that contains one frame preceded
// by recessive bus idle.
func Extract(tr analog.Trace, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dec, err := walkBits(tr, cfg, canbus.BitR1)
	if err != nil {
		return nil, err
	}
	sa := canbus.SourceAddress(dec.bits[canbus.SABitFirst : canbus.SABitLast+1].Uint())

	set, setAt, err := extractSets(tr, dec.pos, cfg)
	if err != nil {
		return nil, err
	}
	return &Result{SA: sa, Set: set, SetAt: setAt, BitsSOF: dec.sof, Bits: dec.bits}, nil
}

// decodeState is the traversal outcome of walkBits.
type decodeState struct {
	bits canbus.BitString
	pos  int // sample index of the centre of the last decoded bit
	sof  int
}

// walkBits ingests the trace from SOF through (and including) the
// destuffed bit lastBit, re-aligning to the centre of every edge it
// crosses and skipping stuff bits, exactly as the EXTRACT procedure of
// Algorithm 1 does.
func walkBits(tr analog.Trace, cfg Config, lastBit int) (*decodeState, error) {
	sof := findSOF(tr, cfg.BitThreshold)
	if sof < 0 {
		return nil, ErrNoSOF
	}
	pos := sof + cfg.BitWidth/2
	if pos >= len(tr) {
		return nil, ErrTruncated
	}
	bits := make(canbus.BitString, 0, lastBit+1)
	bits = append(bits, bitAt(tr, pos, cfg.BitThreshold))
	if bits[0] != canbus.Dominant {
		return nil, fmt.Errorf("%w: SOF centre not dominant", ErrLostSync)
	}
	prev := bits[0]
	run := 1 // consecutive equal wire bits, stuff bits included
	for len(bits) <= lastBit {
		pos += cfg.BitWidth
		if pos >= len(tr) {
			return nil, ErrTruncated
		}
		b := bitAt(tr, pos, cfg.BitThreshold)
		if b != prev {
			edge := alignToEdgeCentre(tr, pos, cfg)
			if edge < 0 {
				return nil, ErrLostSync
			}
			pos = edge + cfg.BitWidth/2
			if pos >= len(tr) {
				return nil, ErrTruncated
			}
			run = 1
		} else {
			run++
		}
		bits = append(bits, b)
		prev = b
		if run == canbus.StuffLimit {
			// Consume the stuff bit: advance one bit time, verify the
			// polarity flip, realign on its edge, and do not append.
			pos += cfg.BitWidth
			if pos >= len(tr) {
				return nil, ErrTruncated
			}
			sb := bitAt(tr, pos, cfg.BitThreshold)
			if sb == prev {
				return nil, ErrStuffError
			}
			edge := alignToEdgeCentre(tr, pos, cfg)
			if edge < 0 {
				return nil, ErrLostSync
			}
			pos = edge + cfg.BitWidth/2
			if pos >= len(tr) {
				return nil, ErrTruncated
			}
			prev = sb
			run = 1
		}
	}
	return &decodeState{bits: bits, pos: pos, sof: sof}, nil
}

// findSOF returns the index of the first dominant sample — the
// idle→dominant SOF transition — or −1 if none exists.
func findSOF(tr analog.Trace, threshold float64) int {
	for i, v := range tr {
		if v >= threshold {
			return i
		}
	}
	return -1
}

// bitAt applies the GetBitValue rule: at or above the threshold the
// bus is dominant ('0'), below it recessive ('1').
func bitAt(tr analog.Trace, pos int, threshold float64) canbus.Bit {
	if tr[pos] >= threshold {
		return canbus.Dominant
	}
	return canbus.Recessive
}

// alignToEdgeCentre locates the threshold crossing that produced the
// polarity change observed at pos by scanning backwards up to a little
// over one bit width. It returns the crossing index (first sample on
// the new polarity) or −1.
func alignToEdgeCentre(tr analog.Trace, pos int, cfg Config) int {
	cur := bitAt(tr, pos, cfg.BitThreshold)
	limit := pos - cfg.BitWidth - cfg.BitWidth/2
	if limit < 0 {
		limit = 0
	}
	for i := pos; i > limit; i-- {
		if bitAt(tr, i-1, cfg.BitThreshold) != cur {
			return i
		}
	}
	return -1
}

// extractSets extracts cfg.numSets() edge sets beginning at pos (the
// centre of the first bit after the arbitration field) and returns
// their element-wise mean together with the sample index of the first
// window.
func extractSets(tr analog.Trace, pos int, cfg Config) (linalg.Vector, int, error) {
	n := cfg.numSets()
	sum := make(linalg.Vector, cfg.Dim())
	firstAt := -1
	searchFrom := pos
	for k := 0; k < n; k++ {
		set, at, err := extractOneSet(tr, searchFrom, cfg)
		if err != nil {
			return nil, 0, err
		}
		if k == 0 {
			firstAt = at
		}
		for i, v := range set {
			sum[i] += v
		}
		searchFrom = at + cfg.EdgeSetGap
		if searchFrom >= len(tr) {
			if k+1 < n {
				return nil, 0, ErrTruncated
			}
		}
	}
	if n > 1 {
		sum = sum.Scale(1 / float64(n))
	}
	return sum, firstAt, nil
}

// extractOneSet implements the EXTRACTEDGESET procedure: advance to
// the next rising threshold crossing, window it, advance past half a
// bit and to the next falling crossing, window that, and concatenate.
func extractOneSet(tr analog.Trace, pos int, cfg Config) (linalg.Vector, int, error) {
	th := cfg.BitThreshold
	// If we start inside a dominant stretch, first reach recessive so
	// the next crossing is genuinely a rising edge.
	for pos < len(tr) && tr[pos] >= th {
		pos++
	}
	// Rising edge: first sample at or above the threshold.
	for pos < len(tr) && tr[pos] < th {
		pos++
	}
	if pos >= len(tr) || pos-cfg.PrefixLen < 0 || pos+cfg.SuffixLen > len(tr) {
		return nil, 0, ErrTruncated
	}
	out := make(linalg.Vector, 0, cfg.Dim())
	setAt := pos - cfg.PrefixLen
	if cfg.Edges != EdgesFalling {
		out = append(out, tr[pos-cfg.PrefixLen:pos+cfg.SuffixLen]...)
	}
	if cfg.Edges == EdgesRising {
		return out, setAt, nil
	}

	// Falling edge: step into the dominant region, then take the first
	// sample below the threshold.
	pos += cfg.BitWidth / 2
	for pos < len(tr) && tr[pos] >= th {
		pos++
	}
	if pos >= len(tr) || pos+cfg.SuffixLen > len(tr) {
		return nil, 0, ErrTruncated
	}
	out = append(out, tr[pos-cfg.PrefixLen:pos+cfg.SuffixLen]...)
	return out, setAt, nil
}

// ClusterThreshold computes the Section 5.1 per-cluster extraction
// threshold: the midpoint of the maximum and minimum sample values in
// the first half of the message, which stays clear of the ACK slot
// whose level can deviate from the rest of the frame.
func ClusterThreshold(tr analog.Trace) float64 {
	half := tr[:len(tr)/2]
	if len(half) == 0 {
		half = tr
	}
	mn, mx := half[0], half[0]
	for _, v := range half {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return (mn + mx) / 2
}
