package edgeset

import (
	"math/rand"
	"testing"

	"vprofile/internal/analog"
	"vprofile/internal/canbus"
)

// FuzzExtract drives Algorithm 1 with arbitrary byte soup interpreted
// as a code trace: extraction must never panic, and any frame it does
// decode must report an in-range source address.
func FuzzExtract(f *testing.F) {
	// Seed with a genuine trace so the fuzzer starts from the happy
	// path.
	tx := testTx()
	frame, err := canbus.NewJ1939Frame(canbus.J1939ID{Priority: 3, PGN: canbus.PGNElectronicEngine1, SA: 0x42}, []byte{1, 2})
	if err == nil {
		cfg := analog.SynthConfig{ADC: testADC(), BitRate: 250e3, LeadIdleBits: 3, MaxSamples: 2200}
		if tr, err := analog.SynthesizeFrame(tx, frame, cfg, tx.NominalEnvironment(), testRNG()); err == nil {
			seed := make([]byte, 0, len(tr)*2)
			for _, c := range tr {
				v := uint16(c)
				seed = append(seed, byte(v), byte(v>>8))
			}
			f.Add(seed)
		}
	}
	f.Add([]byte{0xFF, 0xFF, 0x00, 0x00})

	cfg := testCfgForFuzz()
	f.Fuzz(func(t *testing.T, raw []byte) {
		tr := make(analog.Trace, len(raw)/2)
		for i := range tr {
			tr[i] = float64(uint16(raw[2*i]) | uint16(raw[2*i+1])<<8)
		}
		res, err := Extract(tr, cfg)
		if err != nil {
			return
		}
		if len(res.Set) != cfg.Dim() {
			t.Fatalf("edge set has %d dims, config says %d", len(res.Set), cfg.Dim())
		}
		if res.SetAt < 0 || res.SetAt >= len(tr) {
			t.Fatalf("edge set at impossible index %d of %d", res.SetAt, len(tr))
		}
	})
}

// helpers shared with the fuzz target (the main test file's helpers
// take *testing.T, which fuzz seeding cannot supply).
func testRNG() *rand.Rand { return rand.New(rand.NewSource(99)) }

func testCfgForFuzz() Config {
	adc := testADC()
	return Config{BitWidth: 40, BitThreshold: adc.VoltsToCode(1.0), PrefixLen: 2, SuffixLen: 14}
}
