package edgeset

import (
	"encoding/binary"
	"math"
	"testing"

	"vprofile/internal/analog"
	"vprofile/internal/canbus"
)

// FuzzEdgeExtract complements FuzzExtract by feeding Algorithm 1 raw
// float64 sample vectors rather than ADC codes — NaN, infinities and
// wild magnitudes included. Extraction must never panic, and results
// must stay structurally sound.
func FuzzEdgeExtract(f *testing.F) {
	tx := testTx()
	frame, err := canbus.NewJ1939Frame(canbus.J1939ID{Priority: 3, PGN: canbus.PGNElectronicEngine1, SA: 0x42}, []byte{1, 2})
	if err == nil {
		cfg := analog.SynthConfig{ADC: testADC(), BitRate: 250e3, LeadIdleBits: 3, MaxSamples: 2200}
		if tr, err := analog.SynthesizeFrame(tx, frame, cfg, tx.NominalEnvironment(), testRNG()); err == nil {
			seed := make([]byte, 8*len(tr))
			for i, c := range tr {
				binary.LittleEndian.PutUint64(seed[8*i:], math.Float64bits(c))
			}
			f.Add(seed)
		}
	}
	nan := make([]byte, 8*64)
	for i := 0; i < 64; i++ {
		binary.LittleEndian.PutUint64(nan[8*i:], math.Float64bits(math.NaN()))
	}
	f.Add(nan)
	f.Add([]byte{})

	cfg := testCfgForFuzz()
	f.Fuzz(func(t *testing.T, raw []byte) {
		tr := make(analog.Trace, len(raw)/8)
		for i := range tr {
			tr[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		}
		res, err := Extract(tr, cfg)
		if err != nil {
			return
		}
		if len(res.Set) != cfg.Dim() {
			t.Fatalf("edge set has %d dims, config says %d", len(res.Set), cfg.Dim())
		}
		if res.SetAt < 0 || res.SetAt >= len(tr) {
			t.Fatalf("edge set at impossible index %d of %d", res.SetAt, len(tr))
		}
	})
}
