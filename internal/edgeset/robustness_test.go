package edgeset

import (
	"math/rand"
	"testing"

	"vprofile/internal/analog"
	"vprofile/internal/canbus"
)

// Failure-injection suite: the extractor runs against hostile input —
// glitches, saturation, DC drift, chopped traces — and must either
// recover (the trace is still decodable) or fail loudly with a typed
// error, never panic or return a silently wrong SA.

func cleanTrace(t *testing.T, seed int64) (analog.Trace, canbus.SourceAddress) {
	t.Helper()
	sa := canbus.SourceAddress(0x4D)
	f := frameWithSA(t, sa, []byte{1, 2, 3, 4})
	return synthesize(t, f, seed), sa
}

func TestExtractSurvivesSingleSampleGlitches(t *testing.T) {
	tr, sa := cleanTrace(t, 301)
	cfg := testCfg()
	rng := rand.New(rand.NewSource(302))
	ok, wrong := 0, 0
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		mut := make(analog.Trace, len(tr))
		copy(mut, tr)
		// One sample forced to an extreme value (EMI spike).
		idx := rng.Intn(len(mut))
		if rng.Intn(2) == 0 {
			mut[idx] = 65535
		} else {
			mut[idx] = 0
		}
		res, err := Extract(mut, cfg)
		if err != nil {
			continue // loud failure is acceptable
		}
		if res.SA == sa {
			ok++
		} else {
			wrong++
		}
	}
	// Silently wrong SAs are the dangerous outcome: a glitch flipping
	// a decoded bit mid-ID. A single-sample spike sits nowhere near a
	// bit-centre majority, so misdecodes must stay rare.
	if wrong > trials/10 {
		t.Fatalf("%d/%d glitched traces silently misdecoded", wrong, trials)
	}
	if ok < trials/2 {
		t.Fatalf("only %d/%d glitched traces recovered", ok, trials)
	}
}

func TestExtractHandlesADCSaturation(t *testing.T) {
	// The whole trace clipped at 90% of its dynamic range: edges
	// flatten but the threshold crossings survive.
	tr, sa := cleanTrace(t, 303)
	clip := 0.9 * 46000.0
	mut := make(analog.Trace, len(tr))
	for i, v := range tr {
		if v > clip {
			v = clip
		}
		mut[i] = v
	}
	res, err := Extract(mut, testCfg())
	if err != nil {
		t.Fatalf("clipped trace: %v", err)
	}
	if res.SA != sa {
		t.Fatalf("clipped trace decoded SA %#x, want %#x", res.SA, sa)
	}
}

func TestExtractHandlesDCOffset(t *testing.T) {
	// A ground-potential shift moves every sample by a few hundred
	// codes. The fixed threshold still bisects the edge, so decoding
	// survives; larger shifts require the Section 5.1 per-cluster
	// thresholds.
	tr, sa := cleanTrace(t, 304)
	for _, offset := range []float64{-800, -300, 300, 800} {
		mut := make(analog.Trace, len(tr))
		for i, v := range tr {
			mut[i] = v + offset
		}
		res, err := Extract(mut, testCfg())
		if err != nil {
			t.Fatalf("offset %v: %v", offset, err)
		}
		if res.SA != sa {
			t.Fatalf("offset %v decoded SA %#x, want %#x", offset, res.SA, sa)
		}
	}
}

func TestExtractRejectsSevereDCOffsetLoudly(t *testing.T) {
	// An offset that pushes the recessive level above the threshold
	// destroys the bit semantics; the extractor must error, not
	// fabricate an SA.
	tr, _ := cleanTrace(t, 305)
	cfg := testCfg()
	mut := make(analog.Trace, len(tr))
	for i, v := range tr {
		mut[i] = v + 8000 // recessive ≈32900 + 8000 > threshold ≈39321
	}
	if res, err := Extract(mut, cfg); err == nil {
		// If it decodes at all the SA will be garbage; that is the
		// failure mode this test guards against.
		t.Fatalf("severely offset trace decoded SA %#x without error", res.SA)
	}
}

func TestExtractTruncationAtEveryLength(t *testing.T) {
	// Chopping the trace at any point must yield a typed error or a
	// correct result — never a panic.
	tr, sa := cleanTrace(t, 306)
	cfg := testCfg()
	for cut := 0; cut < len(tr); cut += 97 {
		res, err := Extract(tr[:cut], cfg)
		if err != nil {
			continue
		}
		if res.SA != sa {
			t.Fatalf("cut %d silently misdecoded SA %#x", cut, res.SA)
		}
	}
}

func TestExtractBurstNoiseTrace(t *testing.T) {
	// A burst-scaled frame (the transient model at 2.5× noise) still
	// preprocesses; its edge set is merely farther from the mean.
	tx := testTx()
	tx.BurstProb = 1
	tx.BurstScale = 2.5
	cfg := analog.SynthConfig{ADC: testADC(), BitRate: 250e3, LeadIdleBits: 3, MaxSamples: 2600}
	f := frameWithSA(t, 0x2C, []byte{5, 6})
	tr, err := analog.SynthesizeFrame(tx, f, cfg, tx.NominalEnvironment(), rand.New(rand.NewSource(307)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Extract(tr, testCfg())
	if err != nil {
		t.Fatalf("burst trace: %v", err)
	}
	if res.SA != 0x2C {
		t.Fatalf("burst trace decoded SA %#x", res.SA)
	}
}

func TestExtractAllDominantTraceFailsLoudly(t *testing.T) {
	// A stuck-dominant bus (shorted CAN_H): SOF is found but no valid
	// frame follows.
	stuck := make(analog.Trace, 4000)
	for i := range stuck {
		stuck[i] = 46000
	}
	if _, err := Extract(stuck, testCfg()); err == nil {
		t.Fatal("stuck-dominant bus decoded a frame")
	}
}

func TestExtractAlternatingNoiseFailsLoudly(t *testing.T) {
	// Pure noise around the threshold: synchronisation cannot hold.
	rng := rand.New(rand.NewSource(308))
	noise := make(analog.Trace, 4000)
	for i := range noise {
		noise[i] = 39321 + rng.NormFloat64()*4000
	}
	if res, err := Extract(noise, testCfg()); err == nil {
		// Statistically a noise trace can decode; the SA is then
		// meaningless but the detector's unknown-SA path handles it.
		t.Logf("noise trace decoded SA %#x (unknown-SA path will catch it)", res.SA)
	}
}
