package edgeset

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"vprofile/internal/analog"
	"vprofile/internal/canbus"
)

func testADC() analog.ADC {
	return analog.ADC{SampleRate: 10e6, Bits: 16, MinVolts: -5, MaxVolts: 5}
}

func testTx() *analog.Transceiver {
	return &analog.Transceiver{
		Name: "tx", VDom: 2.0, VRec: 0.02,
		TauRise: 60e-9, TauFall: 80e-9,
		OvershootAmp: 0.15, UndershootAmp: 0.10,
		RingFreq: 2.5e6, RingTau: 250e-9,
		NoiseSigma: 0.004, EdgeJitterSigma: 2e-9,
		NominalTempC: 25, NominalSupplyV: 12.6,
	}
}

func testCfg() Config {
	adc := testADC()
	return Config{
		BitWidth:     40,
		BitThreshold: adc.VoltsToCode(1.0), // bisects the 0→2 V rising edge
		PrefixLen:    2,
		SuffixLen:    14,
	}
}

func synthesize(t *testing.T, f *canbus.ExtendedFrame, seed int64) analog.Trace {
	t.Helper()
	cfg := analog.SynthConfig{ADC: testADC(), BitRate: 250e3, LeadIdleBits: 3, MaxSamples: 2600}
	tx := testTx()
	tr, err := analog.SynthesizeFrame(tx, f, cfg, tx.NominalEnvironment(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func frameWithSA(t *testing.T, sa canbus.SourceAddress, data []byte) *canbus.ExtendedFrame {
	t.Helper()
	f, err := canbus.NewJ1939Frame(canbus.J1939ID{Priority: 3, PGN: canbus.PGNElectronicEngine1, SA: sa}, data)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestConfigValidate(t *testing.T) {
	if err := testCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testCfg()
	bad.BitWidth = 2
	if bad.Validate() == nil {
		t.Error("tiny bit width accepted")
	}
	bad = testCfg()
	bad.SuffixLen = 0
	if bad.Validate() == nil {
		t.Error("zero suffix accepted")
	}
	bad = testCfg()
	bad.NumEdgeSets = 3
	bad.EdgeSetGap = 0
	if bad.Validate() == nil {
		t.Error("multi-set with zero gap accepted")
	}
	bad = testCfg()
	bad.PrefixLen = 100
	bad.SuffixLen = 100
	if bad.Validate() == nil {
		t.Error("window longer than four bits accepted")
	}
}

func TestConfigDim(t *testing.T) {
	if got := testCfg().Dim(); got != 32 {
		t.Fatalf("Dim = %d, want 32 (2·(2+14))", got)
	}
}

func TestExtractDecodesSA(t *testing.T) {
	// The decoded SA must match the frame's SA for a variety of
	// addresses (the stuffing patterns differ considerably).
	for _, sa := range []canbus.SourceAddress{0x00, 0x03, 0x0B, 0x17, 0x21, 0x31, 0x55, 0xAA, 0xF0, 0xFF} {
		f := frameWithSA(t, sa, []byte{0xDE, 0xAD})
		tr := synthesize(t, f, int64(sa)+1)
		res, err := Extract(tr, testCfg())
		if err != nil {
			t.Fatalf("sa %#x: %v", sa, err)
		}
		if res.SA != sa {
			t.Fatalf("decoded SA %#x, want %#x", res.SA, sa)
		}
	}
}

func TestExtractDecodedBitsMatchFrame(t *testing.T) {
	f := frameWithSA(t, 0x42, []byte{1, 2, 3})
	tr := synthesize(t, f, 7)
	res, err := Extract(tr, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.UnstuffedBits()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bits) < canbus.BitR1+1 {
		t.Fatalf("only %d bits decoded", len(res.Bits))
	}
	for i := 0; i <= canbus.BitR1; i++ {
		if res.Bits[i] != want[i] {
			t.Fatalf("bit %d decoded %v want %v (bits %s vs %s)", i, res.Bits[i], want[i], res.Bits, want[:canbus.BitR1+1])
		}
	}
}

func TestExtractManySAsUnderNoise(t *testing.T) {
	// Stress synchronisation: random SAs, data and seeds.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		sa := canbus.SourceAddress(rng.Intn(256))
		data := make([]byte, rng.Intn(9))
		rng.Read(data)
		f := frameWithSA(t, sa, data)
		tr := synthesize(t, f, rng.Int63())
		res, err := Extract(tr, testCfg())
		if err != nil {
			t.Fatalf("trial %d sa %#x: %v", trial, sa, err)
		}
		if res.SA != sa {
			t.Fatalf("trial %d: decoded %#x want %#x", trial, res.SA, sa)
		}
	}
}

func TestExtractVectorShape(t *testing.T) {
	f := frameWithSA(t, 0x11, []byte{0xFF})
	tr := synthesize(t, f, 3)
	cfg := testCfg()
	res, err := Extract(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != cfg.Dim() {
		t.Fatalf("edge set has %d samples, want %d", len(res.Set), cfg.Dim())
	}
	// The rising-edge window must straddle the threshold: prefix below,
	// some suffix above.
	if res.Set[0] >= cfg.BitThreshold {
		t.Errorf("first prefix sample %v already above threshold", res.Set[0])
	}
	if res.Set[cfg.PrefixLen] < cfg.BitThreshold {
		t.Errorf("first suffix sample %v below threshold", res.Set[cfg.PrefixLen])
	}
	// The falling-edge window starts above (prefix) and crosses below.
	fall := res.Set[cfg.PrefixLen+cfg.SuffixLen:]
	if fall[0] < cfg.BitThreshold {
		t.Errorf("falling prefix %v below threshold", fall[0])
	}
	if fall[cfg.PrefixLen] >= cfg.BitThreshold {
		t.Errorf("falling crossing sample %v not below threshold", fall[cfg.PrefixLen])
	}
}

func TestExtractEdgeSetAfterArbitrationField(t *testing.T) {
	f := frameWithSA(t, 0x00, []byte{0, 0})
	tr := synthesize(t, f, 5)
	res, err := Extract(tr, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Bit 33 starts 33 bit-times after SOF; the edge set must begin at
	// or after that point.
	minAt := res.BitsSOF + 33*testCfg().BitWidth
	if res.SetAt < minAt {
		t.Fatalf("edge set at sample %d, inside the arbitration field (SOF %d)", res.SetAt, res.BitsSOF)
	}
}

func TestExtractStableAcrossMessages(t *testing.T) {
	// Edge sets from the same ECU must be close to each other, far
	// from a different ECU's (Figure 2.5). Compare mean waveforms.
	cfg := testCfg()
	synthCfg := analog.SynthConfig{ADC: testADC(), BitRate: 250e3, LeadIdleBits: 3, MaxSamples: 2600}
	txA := testTx()
	txB := testTx()
	txB.VDom = 2.15
	txB.TauRise = 90e-9
	rng := rand.New(rand.NewSource(1234))
	meanOf := func(tx *analog.Transceiver) []float64 {
		sum := make([]float64, cfg.Dim())
		const n = 30
		for i := 0; i < n; i++ {
			f := frameWithSA(t, 0x10, []byte{byte(i), 0x55})
			tr, err := analog.SynthesizeFrame(tx, f, synthCfg, tx.NominalEnvironment(), rng)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Extract(tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for j, v := range res.Set {
				sum[j] += v / n
			}
		}
		return sum
	}
	mA1 := meanOf(txA)
	mA2 := meanOf(txA)
	mB := meanOf(txB)
	dist := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	same := dist(mA1, mA2)
	diff := dist(mA1, mB)
	if diff < 5*same {
		t.Fatalf("inter-ECU distance %v not well above intra-ECU %v", diff, same)
	}
}

func TestExtractMultipleEdgeSets(t *testing.T) {
	cfg := testCfg()
	cfg.NumEdgeSets = 3
	cfg.EdgeSetGap = 250
	f := frameWithSA(t, 0x21, []byte{0xA5, 0x5A, 0xA5, 0x5A, 0xA5, 0x5A, 0xA5, 0x5A})
	synthCfg := analog.SynthConfig{ADC: testADC(), BitRate: 250e3, LeadIdleBits: 3, MaxSamples: 4200}
	tx := testTx()
	tr, err := analog.SynthesizeFrame(tx, f, synthCfg, tx.NominalEnvironment(), rand.New(rand.NewSource(55)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Extract(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != cfg.Dim() {
		t.Fatalf("averaged set has %d samples", len(res.Set))
	}
	// The averaged set must still look like an edge set: rising window
	// crosses the threshold.
	if res.Set[0] >= cfg.BitThreshold || res.Set[cfg.PrefixLen+2] < cfg.BitThreshold {
		t.Fatalf("averaged set lost its edge shape: %v", res.Set[:cfg.PrefixLen+3])
	}
}

func TestExtractErrors(t *testing.T) {
	cfg := testCfg()
	// All-recessive trace: no SOF.
	idle := make(analog.Trace, 2000)
	if _, err := Extract(idle, cfg); !errors.Is(err, ErrNoSOF) {
		t.Errorf("idle trace: %v", err)
	}
	// Truncated right after SOF.
	f := frameWithSA(t, 0x20, nil)
	tr := synthesize(t, f, 8)
	if _, err := Extract(tr[:200], cfg); err == nil {
		t.Error("truncated trace accepted")
	}
	// Bad config surfaces.
	bad := cfg
	bad.BitWidth = 0
	if _, err := Extract(tr, bad); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad config: %v", err)
	}
}

func TestExtractSurvivesStuffBitsInArbitration(t *testing.T) {
	// PGN 0 / SA 0 with priority 0 puts long dominant runs in the ID,
	// forcing stuff bits inside the region we must stay synchronised
	// through.
	f, err := canbus.NewJ1939Frame(canbus.J1939ID{Priority: 0, PGN: 0, SA: 0}, []byte{0})
	if err != nil {
		t.Fatal(err)
	}
	tr := synthesize(t, f, 77)
	res, err := Extract(tr, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.SA != 0 {
		t.Fatalf("decoded SA %#x, want 0", res.SA)
	}
}

func TestExtractAllRecessiveSA(t *testing.T) {
	// SA 0xFF maximises recessive runs (stuff bits of the opposite
	// flavour).
	f := frameWithSA(t, 0xFF, []byte{0xFF, 0xFF})
	tr := synthesize(t, f, 13)
	res, err := Extract(tr, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.SA != 0xFF {
		t.Fatalf("decoded SA %#x, want 0xFF", res.SA)
	}
}

func TestClusterThreshold(t *testing.T) {
	tr := analog.Trace{0, 0, 100, 100, 50, 999, 999, 999}
	// First half = {0, 0, 100, 100} → (0+100)/2 = 50.
	if got := ClusterThreshold(tr); got != 50 {
		t.Fatalf("ClusterThreshold = %v, want 50", got)
	}
	single := analog.Trace{42}
	if got := ClusterThreshold(single); got != 42 {
		t.Fatalf("single-sample threshold = %v", got)
	}
}

func TestExtractAt20MSPerSecond(t *testing.T) {
	// Vehicle A's digitizer: 20 MS/s, 80 samples/bit, doubled window.
	adc := analog.ADC{SampleRate: 20e6, Bits: 16, MinVolts: -5, MaxVolts: 5}
	cfg := Config{BitWidth: 80, BitThreshold: adc.VoltsToCode(1.0), PrefixLen: 4, SuffixLen: 28}
	synthCfg := analog.SynthConfig{ADC: adc, BitRate: 250e3, LeadIdleBits: 3, MaxSamples: 5200}
	tx := testTx()
	f := frameWithSA(t, 0x3D, []byte{9, 9})
	tr, err := analog.SynthesizeFrame(tx, f, synthCfg, tx.NominalEnvironment(), rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Extract(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SA != 0x3D {
		t.Fatalf("SA %#x", res.SA)
	}
	if len(res.Set) != 64 {
		t.Fatalf("dim %d", len(res.Set))
	}
}
