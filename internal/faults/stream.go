package faults

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// StreamSpec parameterises byte-level corruption of an encoded .vptr
// capture. Each field is the number of corruption sites of that
// shape; Truncate additionally cuts the file mid-record. The zero
// value corrupts nothing.
type StreamSpec struct {
	// Flips inverts single bytes in place — the classic bit-rot /
	// flipped-header-byte corruption.
	Flips int
	// Garbage overwrites short runs with random bytes, the shape a
	// partially overwritten sector or a DMA race leaves behind.
	Garbage int
	// Chops deletes short runs entirely, leaving the stream misaligned
	// (a truncated record spliced against the next one's middle).
	Chops int
	// Truncate cuts the file somewhere in its final quarter, producing
	// a mid-record EOF.
	Truncate bool
}

// Empty reports whether the spec corrupts nothing.
func (s StreamSpec) Empty() bool {
	return s.Flips == 0 && s.Garbage == 0 && s.Chops == 0 && !s.Truncate
}

// ParseStreamSpec parses the CLI spec syntax, a comma-separated list
// of site counts: "flips=4,garbage=2,chops=1,truncate". A bare
// "flips" (or "garbage"/"chops") means one site; "truncate" takes no
// count. An empty string is the empty spec.
func ParseStreamSpec(s string) (StreamSpec, error) {
	var out StreamSpec
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, hasVal := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		n := 1
		if hasVal {
			parsed, err := strconv.Atoi(strings.TrimSpace(val))
			if err != nil || parsed < 0 {
				return StreamSpec{}, fmt.Errorf("faults: bad count %q for stream fault %q", val, name)
			}
			n = parsed
		}
		switch name {
		case "flips":
			out.Flips = n
		case "garbage":
			out.Garbage = n
		case "chops":
			out.Chops = n
		case "truncate":
			if hasVal {
				return StreamSpec{}, fmt.Errorf("faults: truncate takes no count")
			}
			out.Truncate = true
		default:
			return StreamSpec{}, fmt.Errorf("%w: stream fault %q (want flips, garbage, chops or truncate)", ErrUnknownKind, name)
		}
	}
	return out, nil
}

// headerLen returns the byte length of a v1 capture header, or −1
// when data is too short to hold one. Layout: magic(4) version(2)
// vehicle(2+n) bitrate(8) samplerate(8) bits(2) min(8) max(8).
func headerLen(data []byte) int {
	if len(data) < 8 {
		return -1
	}
	n := int(binary.LittleEndian.Uint16(data[6:8]))
	total := 4 + 2 + 2 + n + 8 + 8 + 2 + 8 + 8
	if len(data) < total {
		return -1
	}
	return total
}

// CorruptStream returns a damaged copy of an encoded capture. The
// file header is left intact — resync recovery presumes the capture
// opened — and every corruption lands in the record stream at
// positions drawn from the seed, so a given (spec, seed, input)
// triple always produces identical damage. The second return value
// is the number of corruption sites actually applied.
func CorruptStream(data []byte, spec StreamSpec, seed int64) ([]byte, int) {
	out := make([]byte, len(data))
	copy(out, data)
	hdr := headerLen(out)
	if hdr < 0 || hdr >= len(out) || spec.Empty() {
		return out, 0
	}
	rng := rand.New(rand.NewSource(mix(seed, 0x57eea)))
	body := func() int { return hdr + rng.Intn(len(out)-hdr) }
	sites := 0

	for i := 0; i < spec.Flips; i++ {
		at := body()
		out[at] ^= byte(1 + rng.Intn(255)) // never a no-op flip
		sites++
	}
	for i := 0; i < spec.Garbage; i++ {
		at := body()
		run := 1 + rng.Intn(64)
		for j := at; j < at+run && j < len(out); j++ {
			out[j] = byte(rng.Intn(256))
		}
		sites++
	}
	for i := 0; i < spec.Chops; i++ {
		if len(out) <= hdr+2 {
			break
		}
		at := hdr + rng.Intn(len(out)-hdr-1)
		run := 1 + rng.Intn(32)
		if at+run > len(out) {
			run = len(out) - at
		}
		out = append(out[:at], out[at+run:]...)
		sites++
	}
	if spec.Truncate && len(out) > hdr+4 {
		// Cut in the final quarter so most of the stream survives.
		span := len(out) - hdr
		cut := hdr + span*3/4 + rng.Intn(span/4)
		if cut < len(out) {
			out = out[:cut]
			sites++
		}
	}
	return out, sites
}
