package faults

import (
	"math"
	"math/rand"

	"vprofile/internal/analog"
)

// Injector composes analog faults onto synthesised code traces. It is
// deterministic: the faults applied to message i depend only on the
// spec, the injector seed, the message index and the message's
// metadata (ECU index, timestamp) — never on call order or wall
// clock — so two generations from the same seed are bit-identical.
//
// An Injector is not safe for concurrent use; traffic generation is
// sequential, which is where it is meant to sit.
type Injector struct {
	spec Spec
	seed int64
	adc  analog.ADC

	// Per-ECU drift personality, derived lazily from the seed: drift
	// direction and relative magnitude differ per ECU the way
	// engine-bay and cabin mounts heat differently.
	driftGain map[int]float64
}

// NewInjector builds an injector for the capture's digitizer. The ADC
// matters because fault magnitudes are physical (volts) while traces
// carry ADC codes.
func NewInjector(spec Spec, seed int64, adc analog.ADC) (*Injector, error) {
	if err := adc.Validate(); err != nil {
		return nil, err
	}
	return &Injector{spec: spec, seed: seed, adc: adc, driftGain: map[int]float64{}}, nil
}

// Spec returns the injector's fault specification.
func (in *Injector) Spec() Spec { return in.spec }

// Magnitude ceilings at intensity 1. Voltages are differential; the
// nominal dominant level is ~2 V, so these are large-but-physical
// degradations at full severity.
const (
	maxSagFrac    = 0.30 // fraction of the differential level lost
	maxDriftVolts = 0.35 // asymptotic mean shift
	driftRampSec  = 20.0 // time constant of the drift ramp
	ringAmpVolts  = 0.9  // ghost-edge burst amplitude
)

// Apply mutates one message's trace in place. msgIndex is the
// message's position in the capture stream (the determinism anchor);
// ecuIndex is the ground-truth sender (−1 for a foreign device);
// timeSec is the message timestamp, which drives the drift ramp.
func (in *Injector) Apply(msgIndex, ecuIndex int, timeSec float64, tr analog.Trace) {
	if in.spec.Empty() || len(tr) == 0 {
		return
	}
	rng := rand.New(rand.NewSource(mix(in.seed, int64(msgIndex))))

	// Level faults first (they act on the undamaged waveform), then
	// additive bursts, then sample-level damage: the composition order
	// mirrors the physical chain supply → bus → digitizer.
	if k := in.spec.Intensity(KindSag); k > 0 {
		// Sag wanders per message: a cranking engine pulls the rail in
		// bursts, not as a constant offset.
		frac := maxSagFrac * k * (0.6 + 0.4*rng.Float64())
		in.scaleLevels(tr, 1-frac)
	}
	if k := in.spec.Intensity(KindDrift); k > 0 {
		ramp := timeSec / (timeSec + driftRampSec)
		shift := maxDriftVolts * k * ramp * in.driftGainFor(ecuIndex)
		in.shiftLevels(tr, shift)
	}
	if k := in.spec.Intensity(KindRinging); k > 0 {
		bursts := rng.Intn(3) // 0–2 candidate bursts per message
		for b := 0; b < bursts; b++ {
			if rng.Float64() > k {
				continue
			}
			in.injectRing(tr, rng, ringAmpVolts*k)
		}
	}
	if k := in.spec.Intensity(KindGlitch); k > 0 {
		// Expected glitches grow with both intensity and trace length;
		// at intensity 1 roughly one sample in 500 is hit.
		mean := k * float64(len(tr)) / 500
		n := int(mean)
		if rng.Float64() < mean-float64(n) {
			n++
		}
		fs := in.adc.FullScale()
		for g := 0; g < n; g++ {
			tr[rng.Intn(len(tr))] = math.Floor(rng.Float64() * (fs + 1))
		}
	}
	if k := in.spec.Intensity(KindDropout); k > 0 {
		if rng.Float64() < k {
			// One dropout run, up to ~2 % of the trace at full severity.
			maxRun := 1 + int(0.02*k*float64(len(tr)))
			run := 1 + rng.Intn(maxRun)
			at := rng.Intn(len(tr))
			for i := at; i < at+run && i < len(tr); i++ {
				tr[i] = 0 // digitizer emits the rail code for missed samples
			}
		}
	}
}

// scaleLevels multiplies the differential voltage of every sample by
// f, re-quantising through the ADC so codes stay integral and in
// range.
func (in *Injector) scaleLevels(tr analog.Trace, f float64) {
	for i, c := range tr {
		tr[i] = in.adc.VoltsToCode(in.adc.CodeToVolts(c) * f)
	}
}

// shiftLevels adds dv volts to every sample.
func (in *Injector) shiftLevels(tr analog.Trace, dv float64) {
	for i, c := range tr {
		tr[i] = in.adc.VoltsToCode(in.adc.CodeToVolts(c) + dv)
	}
}

// injectRing adds one damped-sinusoid burst — a ghost edge — at a
// random position.
func (in *Injector) injectRing(tr analog.Trace, rng *rand.Rand, amp float64) {
	at := rng.Intn(len(tr))
	// Period of a few samples and a decay of a few tens: fast ringing
	// relative to a bit time at any supported sample rate.
	period := 4 + rng.Float64()*8
	decay := 10 + rng.Float64()*30
	span := int(4 * decay)
	for i := at; i < at+span && i < len(tr); i++ {
		d := float64(i - at)
		dv := amp * math.Exp(-d/decay) * math.Sin(2*math.Pi*d/period)
		tr[i] = in.adc.VoltsToCode(in.adc.CodeToVolts(tr[i]) + dv)
	}
}

// driftGainFor returns the ECU's drift personality in [−1, 1]: a
// deterministic function of the injector seed and the ECU index, so
// some ECUs drift up, some down, some barely at all.
func (in *Injector) driftGainFor(ecu int) float64 {
	if g, ok := in.driftGain[ecu]; ok {
		return g
	}
	rng := rand.New(rand.NewSource(mix(in.seed^0x5eed, int64(ecu))))
	g := 2*rng.Float64() - 1
	// Keep every ECU at least mildly affected so drift=1 visibly
	// degrades the whole vehicle, not a lucky subset.
	if g >= 0 && g < 0.3 {
		g = 0.3
	}
	if g < 0 && g > -0.3 {
		g = -0.3
	}
	in.driftGain[ecu] = g
	return g
}

// mix folds a seed and an index into a well-spread 63-bit value
// (splitmix64 finaliser) for per-message RNG derivation.
func mix(seed, idx int64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(idx)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z &^ (1 << 63))
}
