package faults

import (
	"bytes"
	"testing"
)

// fakeCapture builds a byte blob shaped like a v1 capture header
// followed by a record stream (content is irrelevant to the
// corruptor, which only parses the header length).
func fakeCapture(body int) []byte {
	var b bytes.Buffer
	b.WriteString("VPTR")
	b.Write([]byte{1, 0})       // version
	b.Write([]byte{3, 0})       // vehicle name length
	b.WriteString("veh")        // vehicle name
	b.Write(make([]byte, 34))   // bitrate + samplerate + bits + min + max
	for i := 0; i < body; i++ { // record stream stand-in
		b.WriteByte(byte(i))
	}
	return b.Bytes()
}

func TestCorruptStreamDeterministicAndHeaderSafe(t *testing.T) {
	in := fakeCapture(4096)
	spec := StreamSpec{Flips: 3, Garbage: 2, Chops: 1, Truncate: true}
	a, na := CorruptStream(in, spec, 11)
	b, nb := CorruptStream(in, spec, 11)
	if na != nb || !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corruption")
	}
	if na != 3+2+1+1 {
		t.Errorf("applied %d sites, want 7", na)
	}
	hdr := headerLen(in)
	if hdr <= 0 {
		t.Fatal("fixture header did not parse")
	}
	if !bytes.Equal(a[:hdr], in[:hdr]) {
		t.Error("corruption touched the file header")
	}
	if len(a) >= len(in) {
		t.Error("chop+truncate did not shorten the stream")
	}
	c, _ := CorruptStream(in, spec, 12)
	if bytes.Equal(a, c) {
		t.Error("different seeds produced identical corruption")
	}
}

func TestCorruptStreamEmptySpecIsCopy(t *testing.T) {
	in := fakeCapture(128)
	out, n := CorruptStream(in, StreamSpec{}, 5)
	if n != 0 || !bytes.Equal(in, out) {
		t.Fatal("empty spec corrupted the stream")
	}
	out[0] ^= 0xFF
	if in[0] == out[0] {
		t.Fatal("CorruptStream returned the input slice, not a copy")
	}
}

func TestParseStreamSpec(t *testing.T) {
	s, err := ParseStreamSpec(" flips=4, garbage=2,chops=1,truncate ")
	if err != nil {
		t.Fatal(err)
	}
	want := StreamSpec{Flips: 4, Garbage: 2, Chops: 1, Truncate: true}
	if s != want {
		t.Fatalf("parsed %+v, want %+v", s, want)
	}
	if s, err := ParseStreamSpec("flips"); err != nil || s.Flips != 1 {
		t.Fatalf("bare flips: %+v, %v", s, err)
	}
	if s, err := ParseStreamSpec(""); err != nil || !s.Empty() {
		t.Fatalf("empty spec: %+v, %v", s, err)
	}
	for _, bad := range []string{"nonsense=1", "flips=-2", "flips=x", "truncate=3"} {
		if _, err := ParseStreamSpec(bad); err == nil {
			t.Errorf("ParseStreamSpec(%q) accepted", bad)
		}
	}
}

func TestCorruptStreamTooShortForHeader(t *testing.T) {
	in := []byte{1, 2, 3}
	out, n := CorruptStream(in, StreamSpec{Flips: 5}, 1)
	if n != 0 || !bytes.Equal(in, out) {
		t.Fatal("header-less blob should be returned untouched")
	}
}
