// Package faults is the repository's fault-injection layer: a
// deterministic, seedable source of the degradations a voltage-based
// IDS meets in the field but a clean simulation never produces.
//
// It has two halves. The analog half (Injector) composes physical
// faults onto synthesised traces — supply-voltage sag, slow
// temperature-style profile drift, ringing/ghost edges, ADC glitches
// and sample dropouts — so tracegen can emit degraded captures and
// the accuracy-versus-severity sweep of `vprofile faults` has a
// controllable severity axis. The robustness literature motivates
// exactly this: Kneib & Schell show voltage fingerprints drift with
// temperature and battery state, and Viden ships profile-update
// machinery because profiles in the field do not stand still.
//
// The stream half (CorruptStream) damages the encoded byte stream of
// a .vptr capture — truncated records, flipped header bytes,
// mid-record EOF, garbage runs — and exists to exercise the hardened
// trace.Reader resync path (trace.Reader.EnableRecovery).
//
// Everything is driven by explicit seeds: the same spec and seed
// produce bit-identical faulted output on every run, which is what
// lets CI assert on degraded-mode behaviour.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind names one analog fault family.
type Kind string

// Analog fault kinds.
const (
	// KindSag scales the whole differential level toward zero, the way
	// a sagging battery (cranking, failing alternator) pulls the
	// transceiver's driven dominant level down.
	KindSag Kind = "sag"
	// KindDrift adds a slowly growing per-ECU mean shift — the
	// temperature-style profile drift of Section 4.4 / Kneib & Schell —
	// so early frames are clean and late frames sit off-profile.
	KindDrift Kind = "drift"
	// KindRinging injects decaying-sinusoid bursts (ghost edges) at
	// random points of the trace, imitating reflections and EMI that
	// can cross the bit threshold and fake transitions.
	KindRinging Kind = "ringing"
	// KindGlitch replaces isolated samples with random codes — ADC
	// conversion glitches and metastability hits.
	KindGlitch Kind = "glitch"
	// KindDropout zeroes short runs of samples, the shape a digitizer
	// buffer underrun or connector microcut leaves behind.
	KindDropout Kind = "dropout"
)

// analogKinds lists every analog fault in canonical order.
var analogKinds = []Kind{KindSag, KindDrift, KindRinging, KindGlitch, KindDropout}

// ErrUnknownKind marks a spec that names a fault this package does
// not implement — a usage error (the caller typoed a key), distinct
// from a malformed intensity. The wrapping error lists the known
// names; CLIs match on this sentinel to exit with a usage status.
var ErrUnknownKind = errors.New("faults: unknown fault kind")

// KindNames returns the analog fault names in canonical order.
func KindNames() []string {
	names := make([]string, len(analogKinds))
	for i, k := range analogKinds {
		names[i] = string(k)
	}
	return names
}

// Spec is a parsed fault specification: each named fault with its
// intensity in [0, 1]. The zero Spec injects nothing.
type Spec struct {
	intensity map[Kind]float64
}

// ParseSpec parses the CLI fault syntax: a comma-separated list of
// name=intensity pairs, e.g. "sag=0.3,glitch=0.1". A bare name means
// intensity 1. "all=x" sets every analog fault to x.
func ParseSpec(s string) (Spec, error) {
	out := Spec{intensity: map[Kind]float64{}}
	s = strings.TrimSpace(s)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val := part, 1.0
		if i := strings.IndexByte(part, '='); i >= 0 {
			name = strings.TrimSpace(part[:i])
			v, err := strconv.ParseFloat(strings.TrimSpace(part[i+1:]), 64)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: bad intensity in %q: %v", part, err)
			}
			val = v
		}
		if val < 0 || val > 1 {
			return Spec{}, fmt.Errorf("faults: intensity %g for %q outside [0, 1]", val, name)
		}
		if name == "all" {
			for _, k := range analogKinds {
				out.intensity[k] = val
			}
			continue
		}
		k := Kind(name)
		if !validKind(k) {
			return Spec{}, fmt.Errorf("%w: %q (want %s or all)", ErrUnknownKind, name, kindList())
		}
		out.intensity[k] = val
	}
	return out, nil
}

func validKind(k Kind) bool {
	for _, v := range analogKinds {
		if v == k {
			return true
		}
	}
	return false
}

func kindList() string {
	names := make([]string, len(analogKinds))
	for i, k := range analogKinds {
		names[i] = string(k)
	}
	return strings.Join(names, ", ")
}

// Intensity returns the configured intensity for a fault kind (zero
// when unset).
func (s Spec) Intensity(k Kind) float64 { return s.intensity[k] }

// Scale returns a copy of the spec with every intensity multiplied by
// f (clamped to [0, 1]) — the severity axis of the sweep command.
func (s Spec) Scale(f float64) Spec {
	out := Spec{intensity: make(map[Kind]float64, len(s.intensity))}
	for k, v := range s.intensity {
		v *= f
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		out.intensity[k] = v
	}
	return out
}

// Empty reports whether the spec injects nothing (every intensity
// zero or no faults configured).
func (s Spec) Empty() bool {
	for _, v := range s.intensity {
		if v > 0 {
			return false
		}
	}
	return true
}

// String renders the spec back in the CLI syntax, kinds in canonical
// order, so sweeps print reproducible labels.
func (s Spec) String() string {
	if len(s.intensity) == 0 {
		return "none"
	}
	keys := make([]string, 0, len(s.intensity))
	for k := range s.intensity {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%.4g", k, s.intensity[Kind(k)]))
	}
	return strings.Join(parts, ",")
}
