package faults

import (
	"testing"

	"vprofile/internal/analog"
)

func testADC() analog.ADC {
	return analog.ADC{SampleRate: 10e6, Bits: 12, MinVolts: -1, MaxVolts: 4}
}

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("sag=0.3, glitch=0.1,dropout")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Intensity(KindSag); got != 0.3 {
		t.Errorf("sag intensity = %g, want 0.3", got)
	}
	if got := s.Intensity(KindGlitch); got != 0.1 {
		t.Errorf("glitch intensity = %g, want 0.1", got)
	}
	if got := s.Intensity(KindDropout); got != 1 {
		t.Errorf("bare dropout intensity = %g, want 1", got)
	}
	if got := s.Intensity(KindDrift); got != 0 {
		t.Errorf("unset drift intensity = %g, want 0", got)
	}
	if s.Empty() {
		t.Error("spec with non-zero intensities reports Empty")
	}
	if got := s.String(); got != "dropout=1,glitch=0.1,sag=0.3" {
		t.Errorf("String() = %q", got)
	}
}

func TestParseSpecAllAndErrors(t *testing.T) {
	s, err := ParseSpec("all=0.5")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range analogKinds {
		if s.Intensity(k) != 0.5 {
			t.Errorf("all=0.5: %s intensity = %g", k, s.Intensity(k))
		}
	}
	for _, bad := range []string{"nonsense=1", "sag=2", "sag=-0.1", "sag=x"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
	empty, err := ParseSpec("")
	if err != nil {
		t.Fatal(err)
	}
	if !empty.Empty() || empty.String() != "none" {
		t.Errorf("empty spec: Empty=%v String=%q", empty.Empty(), empty.String())
	}
}

func TestSpecScale(t *testing.T) {
	s, _ := ParseSpec("sag=0.8,glitch=0.4")
	half := s.Scale(0.5)
	if got := half.Intensity(KindSag); got != 0.4 {
		t.Errorf("scaled sag = %g, want 0.4", got)
	}
	over := s.Scale(10)
	if got := over.Intensity(KindSag); got != 1 {
		t.Errorf("over-scaled sag = %g, want clamp to 1", got)
	}
	if !s.Scale(0).Empty() {
		t.Error("zero-scaled spec not empty")
	}
}

// flatTrace builds a synthetic trace alternating recessive and
// dominant stretches, in ADC codes.
func flatTrace(adc analog.ADC, n int) analog.Trace {
	tr := make(analog.Trace, n)
	for i := range tr {
		v := 0.1 // recessive
		if (i/40)%2 == 1 {
			v = 2.0 // dominant
		}
		tr[i] = adc.VoltsToCode(v)
	}
	return tr
}

func TestInjectorDeterministic(t *testing.T) {
	spec, _ := ParseSpec("all=0.7")
	adc := testADC()
	mk := func(seed int64) []analog.Trace {
		in, err := NewInjector(spec, seed, adc)
		if err != nil {
			t.Fatal(err)
		}
		var out []analog.Trace
		for i := 0; i < 20; i++ {
			tr := flatTrace(adc, 400)
			in.Apply(i, i%3, float64(i)*0.5, tr)
			out = append(out, tr)
		}
		return out
	}
	a, b := mk(42), mk(42)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("message %d sample %d differs across identical seeds: %g vs %g", i, j, a[i][j], b[i][j])
			}
		}
	}
	c := mk(43)
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical faulted traces")
	}
}

func TestInjectorZeroIntensityIsNoop(t *testing.T) {
	adc := testADC()
	spec, _ := ParseSpec("all=0")
	in, err := NewInjector(spec, 1, adc)
	if err != nil {
		t.Fatal(err)
	}
	tr := flatTrace(adc, 200)
	ref := append(analog.Trace(nil), tr...)
	in.Apply(0, 0, 1.0, tr)
	for i := range tr {
		if tr[i] != ref[i] {
			t.Fatalf("zero-intensity injector changed sample %d", i)
		}
	}
}

func TestSagPullsDominantDown(t *testing.T) {
	adc := testADC()
	spec, _ := ParseSpec("sag=1")
	in, _ := NewInjector(spec, 7, adc)
	tr := flatTrace(adc, 400)
	ref := append(analog.Trace(nil), tr...)
	in.Apply(0, 0, 0, tr)
	var refDom, sagDom float64
	var n int
	for i := range tr {
		if ref[i] > adc.VoltsToCode(1.0) {
			refDom += ref[i]
			sagDom += tr[i]
			n++
		}
	}
	if n == 0 {
		t.Fatal("no dominant samples in fixture")
	}
	if sagDom >= refDom {
		t.Errorf("full sag did not reduce dominant level: %g vs %g", sagDom/float64(n), refDom/float64(n))
	}
}

func TestDriftGrowsWithTime(t *testing.T) {
	adc := testADC()
	spec, _ := ParseSpec("drift=1")
	in, _ := NewInjector(spec, 7, adc)
	shift := func(at float64) float64 {
		tr := flatTrace(adc, 400)
		ref := append(analog.Trace(nil), tr...)
		in.Apply(0, 0, at, tr)
		var d float64
		for i := range tr {
			d += tr[i] - ref[i]
		}
		if d < 0 {
			d = -d
		}
		return d
	}
	early, late := shift(0.1), shift(120)
	if late <= early {
		t.Errorf("drift at t=120s (%g) not beyond t=0.1s (%g)", late, early)
	}
}

func TestGlitchAndDropoutDamageSamples(t *testing.T) {
	adc := testADC()
	spec, _ := ParseSpec("glitch=1,dropout=1")
	in, _ := NewInjector(spec, 3, adc)
	changed := 0
	zeroRun := false
	for msg := 0; msg < 10; msg++ {
		tr := flatTrace(adc, 2000)
		ref := append(analog.Trace(nil), tr...)
		in.Apply(msg, 0, 0, tr)
		run := 0
		for i := range tr {
			if tr[i] != ref[i] {
				changed++
			}
			if tr[i] == 0 && ref[i] != 0 {
				run++
				if run >= 3 {
					zeroRun = true
				}
			} else {
				run = 0
			}
		}
	}
	if changed == 0 {
		t.Error("full-intensity glitch+dropout left every sample intact")
	}
	if !zeroRun {
		t.Error("no dropout run observed across 10 messages at intensity 1")
	}
}
