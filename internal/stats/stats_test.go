package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfusionMatrixAdd(t *testing.T) {
	var c ConfusionMatrix
	c.Add(true, true)   // TP
	c.Add(true, false)  // FN
	c.Add(false, true)  // FP
	c.Add(false, false) // TN
	if c.TP != 1 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Fatalf("counts %+v", c)
	}
	if c.Total() != 4 {
		t.Fatalf("total %d", c.Total())
	}
}

func TestConfusionMatrixMerge(t *testing.T) {
	a := ConfusionMatrix{TP: 1, FN: 2, FP: 3, TN: 4}
	b := ConfusionMatrix{TP: 10, FN: 20, FP: 30, TN: 40}
	a.Merge(b)
	if a.TP != 11 || a.FN != 22 || a.FP != 33 || a.TN != 44 {
		t.Fatalf("merged %+v", a)
	}
}

func TestScoresKnownValues(t *testing.T) {
	// Table 4.1(b)-like shape: TP=168151, FN=6, FP=31, TN=673073.
	c := ConfusionMatrix{TP: 168151, FN: 6, FP: 31, TN: 673073}
	if got := c.Precision(); math.Abs(got-float64(168151)/float64(168151+31)) > 1e-12 {
		t.Errorf("precision %v", got)
	}
	if got := c.Recall(); math.Abs(got-float64(168151)/float64(168151+6)) > 1e-12 {
		t.Errorf("recall %v", got)
	}
	f := c.FScore()
	if f < 0.9998 || f > 1 {
		t.Errorf("F-score %v", f)
	}
	acc := c.Accuracy()
	want := float64(168151+673073) / float64(c.Total())
	if math.Abs(acc-want) > 1e-12 {
		t.Errorf("accuracy %v", acc)
	}
}

func TestScoresDegenerateCases(t *testing.T) {
	var empty ConfusionMatrix
	if !math.IsNaN(empty.Accuracy()) {
		t.Error("empty accuracy not NaN")
	}
	// All-normal test with no false alarms: precision/recall define to 1.
	clean := ConfusionMatrix{TN: 100}
	if clean.Precision() != 1 || clean.Recall() != 1 {
		t.Errorf("clean run p=%v r=%v", clean.Precision(), clean.Recall())
	}
	// Missed every attack, predicted nothing positive.
	missed := ConfusionMatrix{FN: 5, TN: 5}
	if missed.Precision() != 0 {
		t.Errorf("missed-attack precision %v", missed.Precision())
	}
	if missed.FScore() != 0 {
		t.Errorf("missed-attack F %v", missed.FScore())
	}
	// Only false alarms.
	alarms := ConfusionMatrix{FP: 5}
	if alarms.Recall() != 0 {
		t.Errorf("false-alarm recall %v", alarms.Recall())
	}
}

func TestScoresBoundedProperty(t *testing.T) {
	f := func(tp, fn, fp, tn uint16) bool {
		c := ConfusionMatrix{TP: int(tp), FN: int(fn), FP: int(fp), TN: int(tn)}
		if c.Total() == 0 {
			return true
		}
		for _, v := range []float64{c.Accuracy(), c.Precision(), c.Recall(), c.FScore()} {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean %v", m)
	}
	if s := StdDev(xs); s != 2 {
		t.Errorf("stddev %v", s)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(StdDev(nil)) {
		t.Error("empty mean/stddev not NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Max(xs) != 7 || Min(xs) != -1 {
		t.Fatalf("min/max wrong")
	}
	if !math.IsInf(Max(nil), -1) || !math.IsInf(Min(nil), 1) {
		t.Fatal("empty min/max not infinite")
	}
}

func TestConfidenceInterval99(t *testing.T) {
	if ConfidenceInterval99([]float64{1}) != 0 {
		t.Error("single sample CI not 0")
	}
	// For xs with sample stddev 1 and n=4, CI = 2.5758/2.
	xs := []float64{-1, -1, 1, 1} // sample var = 4/3... use direct check
	n := float64(len(xs))
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	sd := math.Sqrt(s / (n - 1))
	want := 2.575829303549 * sd / math.Sqrt(n)
	if got := ConfidenceInterval99(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("CI %v want %v", got, want)
	}
	// More samples with the same spread tighten the interval.
	wide := []float64{0, 10}
	narrow := []float64{0, 10, 0, 10, 0, 10, 0, 10}
	if ConfidenceInterval99(narrow) >= ConfidenceInterval99(wide) {
		t.Error("CI did not shrink with more samples")
	}
}

func TestPercentDelta(t *testing.T) {
	if got := PercentDelta(100, 150); got != 50 {
		t.Errorf("delta %v", got)
	}
	if got := PercentDelta(200, 100); got != -50 {
		t.Errorf("delta %v", got)
	}
	if !math.IsNaN(PercentDelta(0, 1)) {
		t.Error("zero base not NaN")
	}
}

func TestConfusionMatrixString(t *testing.T) {
	c := ConfusionMatrix{TP: 1, FN: 2, FP: 3, TN: 4}
	s := c.String()
	if len(s) == 0 {
		t.Fatal("empty render")
	}
}
