// Package stats provides the evaluation statistics the vProfile paper
// reports: binary confusion matrices with accuracy, precision, recall
// and F-score; descriptive statistics; normal-theory confidence
// intervals (the 99 % intervals of Figures 4.6–4.8); and percent
// deltas between training and test conditions.
package stats

import (
	"fmt"
	"math"
)

// ConfusionMatrix counts binary detection outcomes. "Positive" is an
// anomaly verdict, matching the paper's tables where rows are actual
// and columns are predicted {Anomaly, Normal}.
type ConfusionMatrix struct {
	TP int // actual anomaly predicted anomaly
	FN int // actual anomaly predicted normal (missed attack)
	FP int // actual normal predicted anomaly (false alarm)
	TN int // actual normal predicted normal
}

// Add records one outcome.
func (c *ConfusionMatrix) Add(actualAnomaly, predictedAnomaly bool) {
	switch {
	case actualAnomaly && predictedAnomaly:
		c.TP++
	case actualAnomaly && !predictedAnomaly:
		c.FN++
	case !actualAnomaly && predictedAnomaly:
		c.FP++
	default:
		c.TN++
	}
}

// Merge accumulates another matrix into c.
func (c *ConfusionMatrix) Merge(o ConfusionMatrix) {
	c.TP += o.TP
	c.FN += o.FN
	c.FP += o.FP
	c.TN += o.TN
}

// Total returns the number of recorded outcomes.
func (c ConfusionMatrix) Total() int { return c.TP + c.FN + c.FP + c.TN }

// Accuracy returns (TP+TN)/total, or NaN for an empty matrix.
func (c ConfusionMatrix) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return math.NaN()
	}
	return float64(c.TP+c.TN) / float64(t)
}

// Precision returns TP/(TP+FP). With no positive predictions it
// returns 1 if there were also no actual positives, else 0.
func (c ConfusionMatrix) Precision() float64 {
	if c.TP+c.FP == 0 {
		if c.FN == 0 {
			return 1
		}
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN). With no actual positives it returns 1 if
// nothing was (falsely) predicted positive, else 0.
func (c ConfusionMatrix) Recall() float64 {
	if c.TP+c.FN == 0 {
		if c.FP == 0 {
			return 1
		}
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FScore returns the harmonic mean of precision and recall (F1).
func (c ConfusionMatrix) FScore() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the matrix in the paper's table layout.
func (c ConfusionMatrix) String() string {
	return fmt.Sprintf("            Predicted\n            Anomaly  Normal\nAnomaly  %10d %8d\nNormal   %10d %8d",
		c.TP, c.FN, c.FP, c.TN)
}

// Mean returns the arithmetic mean of xs, or NaN when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation (normalised by N,
// consistent with the covariance convention of Equation 5.1).
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Max returns the maximum of xs, or -Inf when empty.
func Max(xs []float64) float64 {
	mx := math.Inf(-1)
	for _, x := range xs {
		if x > mx {
			mx = x
		}
	}
	return mx
}

// Min returns the minimum of xs, or +Inf when empty.
func Min(xs []float64) float64 {
	mn := math.Inf(1)
	for _, x := range xs {
		if x < mn {
			mn = x
		}
	}
	return mn
}

// z99 is the two-sided 99 % standard normal quantile (z_{0.995}).
const z99 = 2.575829303549

// ConfidenceInterval99 returns the normal-theory 99 % confidence
// interval half-width for the mean of xs: z·s/√n with the sample
// (n−1) standard deviation. It returns 0 for fewer than two samples.
func ConfidenceInterval99(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	sd := math.Sqrt(s / float64(n-1))
	return z99 * sd / math.Sqrt(float64(n))
}

// PercentDelta returns 100·(test−base)/base, the percent-change
// statistic of Figures 4.6–4.8. It returns NaN for a zero base.
func PercentDelta(base, test float64) float64 {
	if base == 0 {
		return math.NaN()
	}
	return 100 * (test - base) / base
}
