package pipeline_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"vprofile/internal/pipeline"
	"vprofile/internal/trace"
	"vprofile/internal/vehicle"
)

// TestWatchdogAbortsWedgedSink wedges the sink behind a channel that
// only the watchdog firing will release: the replay must abort with
// ErrStalled instead of deadlocking behind its bounded queues.
func TestWatchdogAbortsWedgedSink(t *testing.T) {
	v := vehicle.NewVehicleB()
	model := buildModel(t, v)
	capture := buildCapture(t, v)
	rd, err := trace.NewReader(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	mon := newMonitor(t, v, model)

	delivered := 0
	done := make(chan error, 1)
	go func() {
		_, err := pipeline.Replay(rd, mon, pipeline.Config{Workers: 2, StallTimeout: 50 * time.Millisecond},
			func(r pipeline.Result) error {
				delivered++
				if delivered == 5 {
					// Wedge well past the stall window; the watchdog fires
					// while this call is in flight.
					time.Sleep(400 * time.Millisecond)
				}
				return nil
			})
		done <- err
	}()

	select {
	case err := <-done:
		if !errors.Is(err, pipeline.ErrStalled) {
			t.Fatalf("err = %v, want ErrStalled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("replay did not abort; watchdog never fired")
	}
	if delivered < 5 {
		t.Fatalf("sink ran %d times before the stall", delivered)
	}
}

// TestWatchdogQuietOnHealthyReplay sets an aggressive stall timeout on
// a replay whose sink keeps up: the watchdog must stay silent and the
// verdict stream must be complete.
func TestWatchdogQuietOnHealthyReplay(t *testing.T) {
	v := vehicle.NewVehicleB()
	model := buildModel(t, v)
	capture := buildCapture(t, v)
	rd, err := trace.NewReader(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	mon := newMonitor(t, v, model)
	delivered := 0
	st, err := pipeline.Replay(rd, mon, pipeline.Config{Workers: 4, StallTimeout: 2 * time.Second},
		func(r pipeline.Result) error {
			delivered++
			return nil
		})
	if err != nil {
		t.Fatalf("healthy replay aborted: %v", err)
	}
	if int64(delivered) != st.RecordsIn || st.RecordsOut != st.RecordsIn {
		t.Fatalf("delivered %d of %d records", delivered, st.RecordsIn)
	}
}
