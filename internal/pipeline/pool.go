package pipeline

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is the extraction/scoring worker pool, split out of the
// Replayer so several concurrent replays can share one bounded set of
// goroutines instead of each spawning its own (fleet mode: N buses,
// one pool). A Replayer with no Pool configured still creates a
// private one per Run, so single-replay behaviour is unchanged.
//
// Sharing never changes verdicts: the hot path a pool runs is
// stateless (VoltageVerdict touches no mutable detector state), and
// each replay re-sequences its own results by record index before the
// stateful stage — which worker ran which frame, or which session a
// worker served last, is invisible in the output.
//
// Fail isolation falls out of the same structure: a task belonging to
// a stalled or aborted replay parks on that replay's bounded output
// channel and is released the moment the replay's abandon channel
// closes, so one bus's failure occupies at most its in-flight tasks
// for an instant rather than wedging the shared pool.
type Pool struct {
	tasks   chan func()
	wg      sync.WaitGroup
	workers int
	closed  atomic.Bool
}

// NewPool starts a pool of the given size; zero or negative means
// runtime.GOMAXPROCS(0). Close it when every replay using it is done.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{tasks: make(chan func()), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				task()
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// submit blocks until a worker accepts the task, or until abandon
// closes (the submitting replay aborted); it reports whether the task
// was accepted. The task channel is unbuffered on purpose:
// backpressure reaches the submitting replay's reader immediately
// instead of queueing unboundedly in the pool.
func (p *Pool) submit(task func(), abandon <-chan struct{}) bool {
	select {
	case p.tasks <- task:
		return true
	case <-abandon:
		return false
	}
}

// Close stops the workers after in-flight tasks finish. Submitting
// after Close panics (it is a lifecycle bug: the pool must outlive
// every replay that uses it); a second Close is a no-op.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.tasks)
	p.wg.Wait()
}
