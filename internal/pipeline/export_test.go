package pipeline

// OutstandingBuffers exposes the recycler's get/put imbalance for leak
// tests: after Run returns — cleanly, on error, or abandoned — every
// pooled buffer must be back, so the count must be zero.
func (p *Replayer) OutstandingBuffers() int64 {
	if p.rc == nil {
		return 0
	}
	return p.rc.outstanding.Load()
}
