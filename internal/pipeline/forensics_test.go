package pipeline_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"vprofile/internal/canbus"
	"vprofile/internal/core"
	"vprofile/internal/ids"
	"vprofile/internal/obs/tracing"
	"vprofile/internal/pipeline"
	"vprofile/internal/trace"
	"vprofile/internal/vehicle"
)

// sequentialVerdicts replays the capture through Composite.Process in
// arrival order — the reference stream every traced run must match.
func sequentialVerdicts(t *testing.T, v *vehicle.Vehicle, model *core.Model, capture []byte) []ids.CompositeResult {
	t.Helper()
	rd, err := trace.NewReader(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	mon := newMonitor(t, v, model)
	var want []ids.CompositeResult
	for {
		rec, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frame := &canbus.ExtendedFrame{ID: rec.FrameID, Data: rec.Data}
		want = append(want, mon.Process(frame, rec.Trace, rec.TimeSec))
	}
	return want
}

// TestFlightRecorderDeterminism is the tentpole's overhead-free-path
// guarantee from the other side: with tracing and the flight recorder
// ON, the verdict stream must still be bit-for-bit identical to the
// sequential uninstrumented run, at every worker count — and every
// result must carry a deterministic trace with the pipeline's spans.
func TestFlightRecorderDeterminism(t *testing.T) {
	v := vehicle.NewVehicleB()
	model := buildModel(t, v)
	capture := buildCapture(t, v)
	want := sequentialVerdicts(t, v, model, capture)

	wantAlarms := int64(0)
	for _, r := range want {
		if r.Anomalous() {
			wantAlarms++
		}
	}
	if wantAlarms == 0 {
		t.Fatal("capture produced no alarms; the test proves nothing")
	}

	for _, workers := range []int{1, 4, 8} {
		t.Run(string(rune('0'+workers)), func(t *testing.T) {
			rd, err := trace.NewReader(bytes.NewReader(capture))
			if err != nil {
				t.Fatal(err)
			}
			rec, err := tracing.NewRecorder(tracing.RecorderConfig{Window: 6})
			if err != nil {
				t.Fatal(err)
			}
			mon := newMonitor(t, v, model)
			idx := 0
			_, err = pipeline.Replay(rd, mon, pipeline.Config{Workers: workers, Recorder: rec}, func(r pipeline.Result) error {
				if d := diffResults(want[r.Index], r.Verdict); d != "" {
					t.Fatalf("record %d diverges with flight recorder on: %s", r.Index, d)
				}
				if r.Trace == nil {
					t.Fatalf("record %d has no trace", r.Index)
				}
				if got := r.Trace.ID; got != tracing.TraceID(r.Index+1) {
					t.Fatalf("record %d trace id %d: ids must be deterministic", r.Index, got)
				}
				names := map[string]bool{}
				for _, sp := range r.Trace.Spans {
					names[sp.Name] = true
					if sp.EndNS < sp.StartNS {
						t.Fatalf("record %d span %s never ended", r.Index, sp.Name)
					}
				}
				wantSpans := []string{"pipeline.read", "pipeline.decode", "pipeline.sequence"}
				if want[r.Index].ExtractErr == nil {
					wantSpans = append(wantSpans, "ids.extract", "ids.score")
				}
				for _, n := range wantSpans {
					if !names[n] {
						t.Fatalf("record %d trace missing span %s (has %v)", r.Index, n, names)
					}
				}
				idx++
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if idx != len(want) {
				t.Fatalf("delivered %d of %d records", idx, len(want))
			}
			if err := rec.Close(); err != nil {
				t.Fatal(err)
			}
			st := rec.Stats()
			if st.Frames != int64(len(want)) {
				t.Fatalf("recorder saw %d frames, want %d", st.Frames, len(want))
			}
			if st.Alarms != wantAlarms {
				t.Fatalf("recorder counted %d alarms, sequential run had %d", st.Alarms, wantAlarms)
			}
		})
	}
}

// TestFlightBundleReproducesAlarm replays the hijack capture with a
// bundle directory and checks each persisted bundle against the
// sequential reference: the decision record must reproduce the
// alarm's Mahalanobis distances exactly — both as stored and when
// re-scored from the record's own edge set.
func TestFlightBundleReproducesAlarm(t *testing.T) {
	v := vehicle.NewVehicleB()
	model := buildModel(t, v)
	capture := buildCapture(t, v)
	want := sequentialVerdicts(t, v, model, capture)

	dir := t.TempDir()
	rd, err := trace.NewReader(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := tracing.NewRecorder(tracing.RecorderConfig{
		Window: 4, Keep: 1 << 20, Dir: dir,
		Header: trace.Header{Vehicle: v.Name, BitRate: v.BitRate, ADC: v.ADC},
	})
	if err != nil {
		t.Fatal(err)
	}
	mon := newMonitor(t, v, model)
	_, err = pipeline.Replay(rd, mon, pipeline.Config{Workers: 4, Recorder: rec}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	bundles := rec.Bundles()
	if len(bundles) == 0 {
		t.Fatal("hijack replay produced no bundles")
	}

	voltageChecked := 0
	for _, meta := range bundles {
		if meta.Path == "" {
			t.Fatalf("bundle %d was not persisted", meta.Seq)
		}
		b, err := tracing.ReadBundle(meta.Path)
		if err != nil {
			t.Fatal(err)
		}
		alarm := b.Alarm()
		if alarm == nil {
			t.Fatalf("bundle %d has no alarm decision", b.Seq)
		}
		ref := want[alarm.Index]
		if alarm.Anomaly != ref.Anomalous() {
			t.Fatalf("bundle %d alarm flag %v, sequential %v", b.Seq, alarm.Anomaly, ref.Anomalous())
		}
		if ref.ExtractErr != nil || !ref.Voltage.Anomaly {
			continue // timing/transport alarm: no voltage evidence to check
		}
		voltageChecked++
		d := ref.Voltage
		if alarm.MinDist != d.MinDist || alarm.Expected != int(d.Expected) || alarm.Predicted != int(d.Predict) {
			t.Fatalf("bundle %d records dist %v cluster %d→%d, sequential %v %d→%d",
				b.Seq, alarm.MinDist, alarm.Expected, alarm.Predicted, d.MinDist, d.Expected, d.Predict)
		}
		if alarm.Margin != model.Margin {
			t.Fatalf("bundle %d margin %v, model %v", b.Seq, alarm.Margin, model.Margin)
		}
		if len(alarm.Distances) != len(model.Clusters) {
			t.Fatalf("bundle %d has %d cluster distances, model has %d", b.Seq, len(alarm.Distances), len(model.Clusters))
		}
		// Re-score the persisted edge set: the JSON round trip is exact,
		// so the model must land on the identical distances.
		_, ex := model.DetectExplain(canbus.SourceAddress(alarm.SA), alarm.EdgeSet)
		for i, cd := range ex.Distances {
			got := alarm.Distances[i]
			if got.ID != cd.ID || got.Dist != cd.Dist {
				t.Fatalf("bundle %d cluster %d distance %v, re-scored %v", b.Seq, got.ID, got.Dist, cd.Dist)
			}
		}
		if ex.Threshold != alarm.Threshold {
			t.Fatalf("bundle %d threshold %v, re-scored %v", b.Seq, alarm.Threshold, ex.Threshold)
		}
		if len(alarm.Samples) == 0 {
			t.Fatalf("bundle %d alarm has no waveform samples", b.Seq)
		}
	}
	if voltageChecked == 0 {
		t.Fatal("no voltage-alarm bundle was verified")
	}
}

// TestRecorderOffFastPath pins the uninstrumented contract: with no
// recorder configured, results carry no trace and no spans are built.
func TestRecorderOffFastPath(t *testing.T) {
	v := vehicle.NewVehicleB()
	model := buildModel(t, v)
	capture := buildCapture(t, v)
	rd, err := trace.NewReader(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	mon := newMonitor(t, v, model)
	_, err = pipeline.Replay(rd, mon, pipeline.Config{Workers: 4}, func(r pipeline.Result) error {
		if r.Trace != nil {
			t.Fatalf("record %d carries a trace on the fast path", r.Index)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
