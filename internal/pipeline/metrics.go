package pipeline

import "vprofile/internal/obs"

// Metrics is the replay pipeline's instrument set: throughput
// counters for the reader and sink stages, a decode-latency histogram
// for the sample-inflation step the workers run, a latency histogram
// for the sequential stage (stateful detectors plus the sink), and a
// gauge tracking the reorder queue's depth. Build one with NewMetrics
// and pass it through Config; nil leaves the pipeline exactly as
// cheap as the uninstrumented build.
//
// These instruments accumulate across replays when several runs share
// one registry — the per-run view stays available through Stats.
type Metrics struct {
	RecordsIn       *obs.Counter
	RecordsOut      *obs.Counter
	ExtractFailures *obs.Counter
	DecodeSeconds   *obs.Histogram
	SequenceSeconds *obs.Histogram
	QueueDepth      *obs.Gauge
	// PoolOutstanding mirrors the buffer recycler's gets-minus-puts
	// balance (see recycle.go): buffers checked out of the pools and
	// not yet returned. Refreshed at batch boundaries in the
	// reordering stage, alongside QueueDepth, so the hot path pays no
	// extra atomics; a value that keeps climbing between scrapes means
	// buffers are leaking out of the recycler.
	PoolOutstanding *obs.Gauge
}

// NewMetrics registers the pipeline instruments on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		RecordsIn: reg.Counter("vprofile_pipeline_records_in_total",
			"Records the reader stage pulled off the capture source."),
		RecordsOut: reg.Counter("vprofile_pipeline_records_out_total",
			"Verdicts delivered, in record order, to the sink."),
		ExtractFailures: reg.Counter("vprofile_pipeline_extract_failures_total",
			"Records whose trace failed preprocessing (delivered with ExtractErr set)."),
		DecodeSeconds: reg.Histogram("vprofile_pipeline_decode_seconds",
			"Per-record sample decode latency in the worker pool.", obs.LatencyBuckets()),
		SequenceSeconds: reg.Histogram("vprofile_pipeline_sequence_seconds",
			"Per-record stateful-detector + sink latency in the reordering stage.", obs.LatencyBuckets()),
		QueueDepth: reg.Gauge("vprofile_pipeline_reorder_queue_depth",
			"Out-of-order results parked in the reordering stage."),
		PoolOutstanding: reg.Gauge("pool_outstanding_buffers",
			"Pooled record/batch buffers checked out of the pipeline recycler and not yet returned."),
	}
}
