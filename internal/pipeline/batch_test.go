package pipeline_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"vprofile/internal/canbus"
	"vprofile/internal/ids"
	"vprofile/internal/pipeline"
	"vprofile/internal/trace"
	"vprofile/internal/vehicle"
)

// TestBatchedPipelineMatchesSequential is the determinism contract of
// the batched transport: for every worker count × batch size — batch 1
// (per-record degenerate case), a ragged size that never divides the
// record count evenly, and the default — with buffer pooling on, the
// verdict stream must be bit-identical to sequential Process, in
// order, with nothing dropped.
func TestBatchedPipelineMatchesSequential(t *testing.T) {
	v := vehicle.NewVehicleB()
	model := buildModel(t, v)
	capture := buildCapture(t, v)

	rd, err := trace.NewReader(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	seqMon := newMonitor(t, v, model)
	var want []ids.CompositeResult
	anomalies := 0
	for {
		rec, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frame := &canbus.ExtendedFrame{ID: rec.FrameID, Data: rec.Data}
		r := seqMon.Process(frame, rec.Trace, rec.TimeSec)
		if r.Anomalous() {
			anomalies++
		}
		want = append(want, r)
	}
	if anomalies == 0 {
		t.Fatal("capture produced no anomalies; the comparison proves nothing")
	}

	for _, workers := range []int{1, 4, 8} {
		for _, batch := range []int{1, 3, pipeline.DefaultBatch} {
			t.Run(fmt.Sprintf("workers=%d/batch=%d", workers, batch), func(t *testing.T) {
				rd, err := trace.NewReader(bytes.NewReader(capture))
				if err != nil {
					t.Fatal(err)
				}
				mon := newMonitor(t, v, model)
				p, err := pipeline.New(mon, pipeline.Config{Workers: workers, Batch: batch, PoolBuffers: true})
				if err != nil {
					t.Fatal(err)
				}
				idx := 0
				err = p.Run(rd, func(r pipeline.Result) error {
					if r.Index != idx {
						t.Fatalf("result %d arrived out of order (expected %d)", r.Index, idx)
					}
					if idx >= len(want) {
						t.Fatalf("extra result %d", idx)
					}
					if d := diffResults(want[idx], r.Verdict); d != "" {
						t.Fatalf("record %d diverges from sequential: %s", idx, d)
					}
					idx++
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				if idx != len(want) {
					t.Fatalf("pipeline delivered %d of %d records", idx, len(want))
				}
				if n := p.OutstandingBuffers(); n != 0 {
					t.Fatalf("%d pooled buffers still outstanding after a clean run", n)
				}
			})
		}
	}
}

// TestAbandonedBatchReleasesBuffers audits the abandon path under
// batching on a shared pool: a sink failure mid-replay abandons
// batches at every stage — queued, in a worker, parked on the out
// channel, and held in the reorder map — and none of them may leak a
// pooled buffer or strand the shared pool's worker slots. The second
// replay over the same pool is the stranded-slot check: it only
// completes if every slot came back.
func TestAbandonedBatchReleasesBuffers(t *testing.T) {
	v := vehicle.NewVehicleB()
	model := buildModel(t, v)
	capture := buildCapture(t, v)

	pool := pipeline.NewPool(4)
	defer pool.Close()

	sinkErr := errors.New("sink exploded")
	rd, err := trace.NewReader(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	mon := newMonitor(t, v, model)
	p, err := pipeline.New(mon, pipeline.Config{Pool: pool, Batch: 7, PoolBuffers: true})
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	err = p.Run(rd, func(r pipeline.Result) error {
		delivered++
		if delivered == 10 {
			return sinkErr
		}
		return nil
	})
	if !errors.Is(err, sinkErr) {
		t.Fatalf("err = %v, want the sink error", err)
	}
	if delivered != 10 {
		t.Fatalf("sink saw %d results, want 10", delivered)
	}
	if n := p.OutstandingBuffers(); n != 0 {
		t.Fatalf("%d pooled buffers leaked by the abandoned replay", n)
	}

	// Stranded-slot check: the same shared pool must still have all
	// its workers, or this replay wedges (watchdogless, it would hang
	// the test run — loudly).
	rd2, err := trace.NewReader(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	mon2 := newMonitor(t, v, model)
	p2, err := pipeline.New(mon2, pipeline.Config{Pool: pool, Batch: 7, PoolBuffers: true})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := p2.Run(rd2, func(pipeline.Result) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("second replay on the shared pool delivered nothing")
	}
	if n := p2.OutstandingBuffers(); n != 0 {
		t.Fatalf("%d pooled buffers outstanding after the clean second replay", n)
	}
}

// TestSourceErrorFlushesPrefixUnderBatching pins the source-error
// contract with batching on: every record read before the error —
// including the partial batch in the reader's hand — reaches the sink,
// in order, before the error surfaces, and nothing leaks.
func TestSourceErrorFlushesPrefixUnderBatching(t *testing.T) {
	v := vehicle.NewVehicleB()
	model := buildModel(t, v)
	capture := buildCapture(t, v)

	srcErr := errors.New("source corrupted")
	src := &errorSource{src: newReaderFor(t, capture), n: 25, err: srcErr}
	mon := newMonitor(t, v, model)
	p, err := pipeline.New(mon, pipeline.Config{Workers: 4, Batch: 8, PoolBuffers: true})
	if err != nil {
		t.Fatal(err)
	}
	idx := 0
	err = p.Run(src, func(r pipeline.Result) error {
		if r.Index != idx {
			t.Fatalf("result %d out of order (expected %d)", r.Index, idx)
		}
		idx++
		return nil
	})
	if !errors.Is(err, srcErr) {
		t.Fatalf("err = %v, want the source error", err)
	}
	if idx != 25 {
		t.Fatalf("sink saw %d records before the error, want the full 25-record prefix", idx)
	}
	if n := p.OutstandingBuffers(); n != 0 {
		t.Fatalf("%d pooled buffers leaked on the source-error path", n)
	}
}

func newReaderFor(t *testing.T, capture []byte) *trace.Reader {
	t.Helper()
	rd, err := trace.NewReader(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	return rd
}
