package pipeline

import (
	"sync"
	"sync/atomic"

	"vprofile/internal/trace"
)

// recycler pools the pipeline's per-batch and per-record buffers so
// the steady-state hot path stops allocating. Batch slices are always
// pooled; raw/decoded record buffers only when records is true (the
// Config.PoolBuffers opt-in, and never on traced replays, whose
// forensic bundles retain record internals past the sink call).
//
// outstanding counts gets minus puts across every pooled object kind.
// It exists for leak accounting in tests: a replay that ends — cleanly,
// on a sink error, or abandoned mid-batch — must return every buffer
// it took, or an abandoned batch would strand its buffers (and, before
// this accounting existed, silently mask a stranded worker slot).
type recycler struct {
	batch   int
	records bool

	jobBatches    sync.Pool
	scoredBatches sync.Pool
	raws          sync.Pool
	recs          sync.Pool

	outstanding atomic.Int64
}

func newRecycler(batch int, records bool) *recycler {
	rc := &recycler{batch: batch, records: records}
	rc.jobBatches.New = func() any { return make([]job, 0, batch) }
	rc.scoredBatches.New = func() any { return make([]scored, 0, batch) }
	rc.raws.New = func() any { return new(trace.RawRecord) }
	rc.recs.New = func() any { return new(trace.Record) }
	return rc
}

func (rc *recycler) getJobBatch() []job {
	rc.outstanding.Add(1)
	return rc.jobBatches.Get().([]job)[:0]
}

func (rc *recycler) putJobBatch(b []job) {
	rc.outstanding.Add(-1)
	clear(b) // drop record/trace pointers so the pool retains nothing
	rc.jobBatches.Put(b[:0])
}

func (rc *recycler) getScoredBatch() []scored {
	rc.outstanding.Add(1)
	return rc.scoredBatches.Get().([]scored)[:0]
}

func (rc *recycler) putScoredBatch(b []scored) {
	rc.outstanding.Add(-1)
	clear(b)
	rc.scoredBatches.Put(b[:0])
}

func (rc *recycler) getRaw() *trace.RawRecord {
	rc.outstanding.Add(1)
	return rc.raws.Get().(*trace.RawRecord)
}

func (rc *recycler) putRaw(r *trace.RawRecord) {
	if r == nil {
		return
	}
	rc.outstanding.Add(-1)
	rc.raws.Put(r)
}

func (rc *recycler) getRec() *trace.Record {
	rc.outstanding.Add(1)
	return rc.recs.Get().(*trace.Record)
}

func (rc *recycler) putRec(r *trace.Record) {
	if r == nil {
		return
	}
	rc.outstanding.Add(-1)
	rc.recs.Put(r)
}

// releaseJobs returns an abandoned job batch and, in record-pooling
// mode, every record buffer still travelling in it.
func (rc *recycler) releaseJobs(b []job) {
	if rc.records {
		for i := range b {
			rc.putRaw(b[i].raw)
			rc.putRec(b[i].rec)
		}
	}
	rc.putJobBatch(b)
}

// releaseScored returns an abandoned scored batch and its record
// buffers (raw is nil by this stage; the decoded record may be pooled).
func (rc *recycler) releaseScored(b []scored) {
	rc.releaseScoredEntries(b)
	rc.putScoredBatch(b)
}

// releaseScoredEntries returns only the record buffers of entries that
// were copied out of their batch (the reorder stage's pending map).
func (rc *recycler) releaseScoredEntries(b []scored) {
	if rc.records {
		for i := range b {
			rc.putRaw(b[i].raw)
			rc.putRec(b[i].rec)
		}
	}
}

// releaseScoredEntry is releaseScoredEntries for one map-held entry.
func (rc *recycler) releaseScoredEntry(s scored) {
	if rc.records {
		rc.putRaw(s.raw)
		rc.putRec(s.rec)
	}
}
