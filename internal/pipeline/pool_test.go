package pipeline_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"vprofile/internal/ids"
	"vprofile/internal/pipeline"
	"vprofile/internal/trace"
	"vprofile/internal/vehicle"
)

func TestPoolDefaults(t *testing.T) {
	p := pipeline.NewPool(0)
	if p.Workers() <= 0 {
		t.Fatalf("NewPool(0).Workers() = %d, want > 0", p.Workers())
	}
	p.Close()
	p.Close() // idempotent
	if p2 := pipeline.NewPool(3); p2.Workers() != 3 {
		t.Fatalf("NewPool(3).Workers() = %d", p2.Workers())
	} else {
		p2.Close()
	}
}

// TestSharedPoolReplays runs two concurrent replays of one capture on
// a single shared pool: both verdict streams must be bit-identical to
// the sequential reference — sharing workers across replays must not
// leak order or state between them.
func TestSharedPoolReplays(t *testing.T) {
	v := vehicle.NewVehicleB()
	model := buildModel(t, v)
	data := buildCapture(t, v)

	newReader := func() *trace.Reader {
		rd, err := trace.OpenReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		return rd
	}
	var ref []ids.CompositeResult
	_, err := pipeline.Sequential(newReader(), newMonitor(t, v, model), func(r pipeline.Result) error {
		ref = append(ref, r.Verdict)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	pool := pipeline.NewPool(4)
	defer pool.Close()
	const replays = 2
	results := make([][]ids.CompositeResult, replays)
	errs := make([]error, replays)
	var wg sync.WaitGroup
	for k := 0; k < replays; k++ {
		mon := newMonitor(t, v, model)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[k] = pipeline.Replay(newReader(), mon, pipeline.Config{Pool: pool}, func(r pipeline.Result) error {
				if r.Index != len(results[k]) {
					return fmt.Errorf("replay %d: result %d out of order", k, r.Index)
				}
				results[k] = append(results[k], r.Verdict)
				return nil
			})
		}()
	}
	wg.Wait()
	for k := 0; k < replays; k++ {
		if errs[k] != nil {
			t.Fatalf("replay %d: %v", k, errs[k])
		}
		if len(results[k]) != len(ref) {
			t.Fatalf("replay %d: %d results, want %d", k, len(results[k]), len(ref))
		}
		for i := range ref {
			if d := diffResults(results[k][i], ref[i]); d != "" {
				t.Fatalf("replay %d record %d: %s", k, i, d)
			}
		}
	}
}
