package pipeline

import (
	"math"

	"vprofile/internal/ids"
	"vprofile/internal/obs/tracing"
)

// buildDecision flattens one frame's verdict, evidence and detector
// state into the flight recorder's record. Every slice handed over is
// either freshly allocated here or owned exclusively by this frame
// (the record's payload and trace, the extracted edge set), honouring
// the recorder's immutability contract.
func buildDecision(idx int, cur scored, verdict ids.CompositeResult, state ids.SequenceState) *tracing.Decision {
	// The record lives in the FrameTrace's own allocation — the trace,
	// its spans and the decision are one per-frame object.
	d := cur.ft.DecisionSlot()
	*d = tracing.Decision{
		Trace:    cur.ft.ID,
		Index:    idx,
		TimeSec:  cur.rec.TimeSec,
		FrameID:  cur.rec.FrameID,
		SA:       uint8(cur.frame.SA()),
		Data:     cur.rec.Data,
		ECUIndex: cur.rec.ECUIndex,
		Spans:    cur.ft.Spans,
		Samples:  cur.rec.Trace,
	}

	if verdict.ExtractErr != nil {
		d.ExtractErr = verdict.ExtractErr.Error()
		// A Suppressed verdict's voltage evidence is coalesced into the
		// sender's Degraded quarantine state: the record keeps the
		// evidence, but no alarm fires (so the flight recorder does not
		// freeze a bundle per spammed frame).
		if !verdict.Suppressed {
			d.Alarms = append(d.Alarms, tracing.AlarmPreprocess)
		}
		d.Expected, d.Predicted = -1, -1
	} else {
		v := verdict.Voltage
		d.Reason = v.Reason.String()
		d.Expected = int(v.Expected)
		d.Predicted = int(v.Predict)
		d.MinDist = v.MinDist
		ex := cur.forensics.Explain
		d.Threshold = ex.Threshold
		d.Margin = ex.Margin
		d.EdgeSet = cur.forensics.EdgeSet
		// The distance slice lives in this frame's own trace storage and
		// the detector never touches it again, so the record owns it.
		d.Distances = ex.Distances
		if v.Anomaly && !verdict.Suppressed {
			d.Alarms = append(d.Alarms, tracing.AlarmVoltage)
		}
	}
	if verdict.SAState != ids.SAHealthy {
		d.Quarantine = verdict.SAState.String()
	}
	d.Suppressed = verdict.Suppressed
	if verdict.QuarantineChanged() && verdict.SAState == ids.SADegraded {
		// The transition itself is the coalesced alarm: one bundle marks
		// the moment a sender degraded.
		d.Alarms = append(d.Alarms, tracing.AlarmQuarantine)
	}

	d.Timing = verdict.Timing.String()
	if verdict.TimingErr != nil {
		d.TimingErr = verdict.TimingErr.Error()
	}
	if verdict.Timing == ids.PeriodTooEarly {
		d.Alarms = append(d.Alarms, tracing.AlarmTiming)
	}
	if verdict.TransferErr != nil {
		d.TransferErr = verdict.TransferErr.Error()
		d.Alarms = append(d.Alarms, tracing.AlarmTransport)
	}

	d.Detector = tracing.DetectorState{
		Seen:      state.Seen,
		Warmup:    state.Warmup,
		Finalized: state.Finalized,
	}
	if state.PeriodKnown {
		p := state.Period
		d.Detector.PeriodKnown = true
		d.Detector.PeriodEnforced = p.Enforced
		d.Detector.PeriodMean = p.Mean
		d.Detector.PeriodTolerance = p.Tolerance
		// The monitor parks reset stream clocks at NaN, which JSON
		// cannot carry; omit the field for those frames.
		if !math.IsNaN(p.Last) {
			d.Detector.PeriodLast = p.Last
		}
		d.Detector.PeriodSamples = p.Samples
	}
	return d
}
