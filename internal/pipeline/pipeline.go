// Package pipeline replays capture files through the composite IDS
// concurrently while producing verdicts bit-for-bit identical to the
// sequential path.
//
// The replay is a three-stage pipeline:
//
//  1. a reader goroutine pulls records off the capture stream in
//     order and tags each with its index — kept deliberately thin
//     (raw, undecoded records when the source supports it) because
//     stream decoding is the one inherently serial stage;
//  2. a worker pool fans out the stateless hot path — sample
//     decoding, edge-set extraction and vProfile scoring
//     (Composite.VoltageVerdict) — across GOMAXPROCS goroutines;
//  3. a reordering stage re-sequences results by record index and
//     runs the stateful detectors (period monitor, transport
//     reassembly) in arrival order via Composite.Sequence.
//
// Stages exchange batches of records (Config.Batch, default 64) so
// channel operations, pool submissions and scheduler wakeups amortise
// over many frames — at ~100 µs of scoring work per frame, per-record
// handoffs cost more in synchronisation than they buy in overlap.
// Batching changes only the transport granularity: records keep their
// stream indices and the reordering stage still delivers strictly in
// index order, so verdicts remain bit-identical to the sequential path
// at any batch size.
//
// All channels are bounded, so a slow sink backpressures the reader
// instead of ballooning memory; the first error from any stage stops
// the whole pipeline cleanly. Per-stage counters are readable at any
// time through Stats.
package pipeline

import (
	"errors"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vprofile/internal/canbus"
	"vprofile/internal/core"
	"vprofile/internal/ids"
	"vprofile/internal/obs/tracing"
	"vprofile/internal/trace"
)

// Source yields capture records in order. *trace.Reader implements
// it; so does any in-memory record queue.
type Source interface {
	Next() (*trace.Record, error)
}

// RawSource is the fast path: sources that can hand out records with
// still-packed sample codes let the pipeline move the float64
// expansion into the worker pool. *trace.Reader implements it.
type RawSource interface {
	NextRaw() (*trace.RawRecord, error)
}

// rawIntoSource is the zero-allocation refinement of RawSource:
// sources that can refill a caller-owned raw record (*trace.Reader)
// enable Config.PoolBuffers to recycle record buffers end to end.
type rawIntoSource interface {
	NextRawInto(*trace.RawRecord) error
}

// DefaultBatch is the records-per-batch default (Config.Batch = 0):
// large enough to amortise channel and pool synchronisation, small
// enough that a batch stays resident in cache through scoring.
const DefaultBatch = 64

// Config parameterises a replay.
type Config struct {
	// Workers is the extraction/scoring pool size; zero or negative
	// means runtime.GOMAXPROCS(0). Ignored when Pool is set.
	Workers int
	// Pool, when non-nil, runs the hot path on a shared worker pool
	// instead of a private one — several concurrent replays (fleet
	// mode) then contend for one bounded set of goroutines. The pool
	// must outlive the replay; the replay does not close it.
	Pool *Pool
	// Batch is the number of records exchanged per channel operation
	// between stages. Zero means DefaultBatch; one degenerates to
	// per-record handoff (useful for latency-sensitive live feeds and
	// for determinism tests). Verdicts and their order are identical at
	// every batch size.
	Batch int
	// Depth is the capacity of each inter-stage channel in batches,
	// bounding how far the reader may run ahead of the sink (roughly
	// Depth×Batch records per channel); zero means 4×Workers.
	Depth int
	// PoolBuffers recycles record buffers (raw byte payloads and
	// decoded traces) through sync.Pools instead of allocating per
	// frame — at replay rates the per-frame trace alone is tens of
	// kilobytes, enough to make the allocator and GC the bottleneck.
	// The cost is an aliasing contract: a Result's Record (its Data and
	// Trace) is valid only for the duration of the sink call and must
	// be copied if retained. Ignored on traced replays (Recorder set),
	// whose forensic bundles retain record internals indefinitely, and
	// on sources that cannot refill caller-owned records (anything but
	// a trace.Reader-style RawSource).
	PoolBuffers bool
	// Metrics, when non-nil, makes the pipeline publish per-stage
	// counters, latency histograms and the reorder-queue depth gauge
	// (see NewMetrics). Instrumentation is atomic-only on the hot path
	// and never changes verdicts or their order.
	Metrics *Metrics
	// Recorder, when non-nil, turns on per-frame tracing and flight
	// recording: every record gets a deterministic TraceID and a span
	// per pipeline stage, and its full decision context — raw
	// samples, edge set, per-cluster distances, detector state — is
	// pushed into the recorder's ring, where alarms freeze forensic
	// bundles. Tracing never changes verdicts or their order; nil
	// keeps the replay on the uninstrumented fast path.
	Recorder *tracing.Recorder
	// StallTimeout arms the slow-sink watchdog: if the pipeline makes
	// no progress — no record scored by a worker and no verdict
	// delivered to the sink — for this long while records are pending,
	// the replay aborts with ErrStalled instead of sitting wedged
	// behind its (deliberately bounded) queues. Scoring counts as
	// progress so that a large Batch being worked on does not read as
	// a stall; a wedged sink still fires the watchdog because the
	// workers block once the bounded queues fill and all progress
	// stops. The watchdog unblocks every pipeline goroutine; a sink
	// call that never returns still holds Run until it does. Zero
	// disables.
	StallTimeout time.Duration
}

// ErrStalled is returned by Run when the slow-sink watchdog fires:
// records were pending but none reached the sink within
// Config.StallTimeout.
var ErrStalled = errors.New("pipeline: replay stalled (sink made no progress within StallTimeout)")

// Result is one record's verdict, delivered to the sink in record
// order.
type Result struct {
	Index   int
	Record  *trace.Record
	Frame   *canbus.ExtendedFrame
	Verdict ids.CompositeResult
	// Trace is the frame's span trace on a traced replay (Config has a
	// Recorder), nil otherwise. Sinks may read it — e.g. to join event
	// lines to flight-recorder decisions by TraceID — but must not
	// mutate it.
	Trace *tracing.FrameTrace
}

// Sink receives results in record order. A non-nil error stops the
// replay. A nil Sink discards results (useful for benchmarks).
type Sink func(Result) error

// Stats is a snapshot of the pipeline's per-stage counters. It may be
// taken while the replay is still running.
type Stats struct {
	Workers int
	// RecordsIn counts records the reader stage pulled off the
	// source; RecordsOut counts verdicts delivered to the sink.
	RecordsIn  int64
	RecordsOut int64
	// ExtractFailures counts records whose trace would not
	// preprocess (they still produce a Result, with ExtractErr set).
	ExtractFailures int64
	// WallTime is the elapsed replay time; WorkerBusy is the summed
	// time workers spent extracting and scoring.
	WallTime   time.Duration
	WorkerBusy time.Duration
}

// Utilization is the fraction of total worker capacity spent doing
// work: WorkerBusy / (WallTime × Workers).
func (s Stats) Utilization() float64 {
	if s.WallTime <= 0 || s.Workers <= 0 {
		return 0
	}
	return float64(s.WorkerBusy) / (float64(s.WallTime) * float64(s.Workers))
}

// Replayer drives one capture replay. Create with New, run with Run,
// observe with Stats.
type Replayer struct {
	mon      *ids.Composite
	pool     *Pool // shared pool; nil means Run creates a private one
	workers  int
	batch    int
	depth    int
	metrics  *Metrics
	recorder *tracing.Recorder
	stall    time.Duration

	// poolBuffers is the Config.PoolBuffers request; rc is the buffer
	// recycler Run builds once it knows whether the source supports
	// record refilling (rc.records is the effective decision).
	poolBuffers bool
	rc          *recycler

	ran             atomic.Bool
	recordsIn       atomic.Int64
	recordsOut      atomic.Int64
	recordsScored   atomic.Int64
	extractFailures atomic.Int64
	busyNanos       atomic.Int64
	startNanos      atomic.Int64
	wallNanos       atomic.Int64
}

// New builds a replayer around a composite monitor. The monitor must
// not be used by anyone else while Run is in flight.
func New(mon *ids.Composite, cfg Config) (*Replayer, error) {
	if mon == nil {
		return nil, errors.New("pipeline: nil monitor")
	}
	workers := cfg.Workers
	if cfg.Pool != nil {
		workers = cfg.Pool.Workers()
	} else if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	batch := cfg.Batch
	if batch == 0 {
		batch = DefaultBatch
	}
	if batch < 1 {
		batch = 1
	}
	depth := cfg.Depth
	if depth <= 0 {
		depth = 4 * workers
	}
	return &Replayer{
		mon: mon, pool: cfg.Pool, workers: workers, batch: batch, depth: depth,
		metrics: cfg.Metrics, recorder: cfg.Recorder, stall: cfg.StallTimeout,
		poolBuffers: cfg.PoolBuffers,
	}, nil
}

// Stats returns a snapshot of the per-stage counters.
func (p *Replayer) Stats() Stats {
	wall := time.Duration(p.wallNanos.Load())
	if wall == 0 {
		if start := p.startNanos.Load(); start != 0 {
			wall = time.Duration(time.Now().UnixNano() - start)
		}
	}
	return Stats{
		Workers:         p.workers,
		RecordsIn:       p.recordsIn.Load(),
		RecordsOut:      p.recordsOut.Load(),
		ExtractFailures: p.extractFailures.Load(),
		WallTime:        wall,
		WorkerBusy:      time.Duration(p.busyNanos.Load()),
	}
}

// job is a record travelling between stages. The FrameTrace (traced
// replays only) travels with the job and is only ever touched by the
// goroutine currently holding it.
type job struct {
	idx   int
	raw   *trace.RawRecord // nil once decoded
	rec   *trace.Record
	frame *canbus.ExtendedFrame
	ft    *tracing.FrameTrace
}

// scored is a job annotated with its stateless verdict.
type scored struct {
	job
	det        core.Detection
	forensics  ids.Forensics
	extractErr error
}

// processBatch is the stateless hot path one pool task runs: decode
// each raw record if needed, extract and score it, then hand the whole
// scored batch to the reordering stage in one channel operation. It
// parks on this replay's bounded out channel and is released by
// abandon — releasing the batch's pooled buffers on that path — so a
// stalled replay never wedges a shared pool beyond its in-flight tasks
// and an abandoned batch never strands a buffer.
func (p *Replayer) processBatch(jobs []job, out chan<- []scored, abandon <-chan struct{}) {
	m := p.metrics
	rc := p.rc
	start := time.Now()
	sb := rc.getScoredBatch()
	for _, j := range jobs {
		var t0 time.Time
		if m != nil {
			t0 = time.Now()
		}
		if j.raw != nil {
			sp := j.ft.StartSpan("pipeline.decode")
			if rc.records {
				rec := rc.getRec()
				j.raw.DecodeInto(rec)
				rc.putRaw(j.raw)
				j.rec = rec
			} else {
				j.rec = j.raw.Decode()
			}
			j.raw = nil
			sp.End()
			if m != nil {
				m.DecodeSeconds.Observe(time.Since(t0).Seconds())
			}
		}
		j.frame = &canbus.ExtendedFrame{ID: j.rec.FrameID, Data: j.rec.Data}
		var det core.Detection
		var forensics ids.Forensics
		var err error
		if j.ft != nil {
			det, forensics, err = p.mon.VoltageVerdictTraced(j.frame, j.rec.Trace, j.ft)
		} else {
			det, err = p.mon.VoltageVerdict(j.frame, j.rec.Trace)
		}
		if err != nil {
			p.extractFailures.Add(1)
			if m != nil {
				m.ExtractFailures.Inc()
			}
		}
		sb = append(sb, scored{job: j, det: det, forensics: forensics, extractErr: err})
		// Per-record, not per-batch: the stall watchdog reads this as
		// its liveness signal, and a large batch mid-scoring must look
		// like progress, not a wedge.
		p.recordsScored.Add(1)
	}
	rc.putJobBatch(jobs)
	// One busy-time add per batch: the whole loop is work, and a single
	// atomic add amortises the accounting the way the batch amortises
	// the channel operations.
	p.busyNanos.Add(int64(time.Since(start)))
	select {
	case out <- sb:
	case <-abandon:
		rc.releaseScored(sb)
	}
}

// Run replays the source to completion (or first error). Results
// reach the sink in record order. Run may be called once per
// Replayer: the composite monitor it wraps is stateful, so a second
// replay needs a fresh monitor and replayer.
func (p *Replayer) Run(src Source, fn Sink) error {
	if p.ran.Swap(true) {
		return errors.New("pipeline: Run called twice on one Replayer")
	}
	if fn == nil {
		fn = func(Result) error { return nil }
	}
	p.startNanos.Store(time.Now().UnixNano())
	defer func() {
		p.wallNanos.Store(time.Now().UnixNano() - p.startNanos.Load())
	}()

	// Record-buffer recycling needs a source that can refill
	// caller-owned records and a sink path that retains nothing past
	// the sink call — traced replays retain forensics, so they keep
	// allocating regardless of the request.
	intoSrc, _ := src.(rawIntoSource)
	p.rc = newRecycler(p.batch, p.poolBuffers && p.recorder == nil && intoSrc != nil)
	rc := p.rc

	jobs := make(chan []job, p.depth)
	out := make(chan []scored, p.depth)
	// abandon is closed only when the sink fails and stage 3 stops
	// draining; it unblocks upstream sends that would otherwise hang.
	// A source error does NOT close it — the records already read
	// drain through normally, so the sink sees the complete prefix
	// before the error surfaces.
	abandon := make(chan struct{})
	var abortOnce sync.Once
	abort := func() {
		abortOnce.Do(func() { close(abandon) })
	}
	// The error slot is mutex-guarded rather than Once-guarded: the
	// watchdog goroutine can set it at any moment — including while
	// stage 3 is returning — so every read needs the same lock.
	var errMu sync.Mutex
	var firstErr error
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	getErr := func() error {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr
	}

	// Slow-sink watchdog: while records are pending (read but not yet
	// delivered), the pipeline must make progress every StallTimeout
	// or the replay aborts. Progress is sink deliveries plus worker
	// scorings — the sum is monotonic, and counting scoring keeps a
	// large batch mid-flight from reading as a wedge while still
	// catching a stuck sink: workers block once the bounded queues
	// fill and the sum stops moving. Closing abandon unwedges every
	// stage; stage 3 checks the flag between sink calls.
	var stalled atomic.Bool
	if p.stall > 0 {
		stopWatch := make(chan struct{})
		defer close(stopWatch)
		go func() {
			interval := p.stall / 8
			if interval < time.Millisecond {
				interval = time.Millisecond
			}
			tick := time.NewTicker(interval)
			defer tick.Stop()
			last := p.recordsOut.Load() + p.recordsScored.Load()
			lastProgress := time.Now()
			for {
				select {
				case <-stopWatch:
					return
				case <-tick.C:
				}
				cur := p.recordsOut.Load() + p.recordsScored.Load()
				if cur != last {
					last, lastProgress = cur, time.Now()
					continue
				}
				if p.recordsIn.Load() > p.recordsOut.Load() && time.Since(lastProgress) >= p.stall {
					stalled.Store(true)
					setErr(ErrStalled)
					abort()
					return
				}
			}
		}()
	}

	// Stage 1: the reader tags records with their stream index and
	// accumulates them into batches. With a RawSource the samples stay
	// packed here and inflate in the workers, keeping the serial stage
	// as thin as the format allows; with buffer recycling on, the raw
	// records themselves come from the pool. A source error does not
	// abandon the replay: the partial batch already read is flushed so
	// the sink sees the complete prefix before the error surfaces.
	rawSrc, _ := src.(RawSource)
	go func() {
		defer close(jobs)
		batch := rc.getJobBatch()
		// flush hands the accumulated batch to stage 2, returning false
		// when the replay has been abandoned (the batch is released, not
		// leaked). The empty batch is returned to the pool, never sent.
		flush := func() bool {
			if len(batch) == 0 {
				return true
			}
			select {
			case jobs <- batch:
				batch = rc.getJobBatch()
				return true
			case <-abandon:
				rc.releaseJobs(batch)
				batch = nil
				return false
			}
		}
		for idx := 0; ; idx++ {
			var j job
			var sp *tracing.Span
			if p.recorder != nil {
				// TraceIDs are the 1-based record index: deterministic, so
				// two replays of one capture produce identical forensics.
				j.ft = tracing.NewFrameTrace(tracing.TraceID(idx) + 1)
				sp = j.ft.StartSpan("pipeline.read")
			}
			if rc.records {
				raw := rc.getRaw()
				err := intoSrc.NextRawInto(raw)
				if err != nil {
					rc.putRaw(raw)
					if !errors.Is(err, io.EOF) {
						setErr(err)
					}
					flush()
					if batch != nil {
						rc.putJobBatch(batch)
					}
					return
				}
				j.idx, j.raw = idx, raw
			} else if rawSrc != nil {
				raw, err := rawSrc.NextRaw()
				if err != nil {
					if !errors.Is(err, io.EOF) {
						setErr(err)
					}
					flush()
					if batch != nil {
						rc.putJobBatch(batch)
					}
					return
				}
				j.idx, j.raw = idx, raw
			} else {
				rec, err := src.Next()
				if err != nil {
					if !errors.Is(err, io.EOF) {
						setErr(err)
					}
					flush()
					if batch != nil {
						rc.putJobBatch(batch)
					}
					return
				}
				j.idx, j.rec = idx, rec
			}
			sp.End()
			p.recordsIn.Add(1)
			if m := p.metrics; m != nil {
				m.RecordsIn.Inc()
			}
			batch = append(batch, j)
			if len(batch) >= p.batch {
				if !flush() {
					return
				}
			}
		}
	}()

	// Stage 2: the worker pool runs the stateless hot path. With no
	// shared pool configured the replay owns a private one, so the
	// single-replay shape (N dedicated goroutines draining jobs) is
	// preserved; in fleet mode the dispatcher below feeds this
	// replay's jobs into the shared pool, where they interleave with
	// other buses' work. Either way a per-replay WaitGroup tracks the
	// in-flight tasks so out closes exactly when the last one lands.
	pool := p.pool
	private := pool == nil
	if private {
		pool = NewPool(p.workers)
	}
	// Run must not return before the dispatcher stops submitting: a
	// private pool is closed here, and a shared pool may be closed by
	// its owner the moment every replay using it has returned.
	dispatcherDone := make(chan struct{})
	defer func() {
		<-dispatcherDone
		if private {
			pool.Close()
		}
	}()
	var wg sync.WaitGroup
	go func() {
		defer close(dispatcherDone)
		for b := range jobs {
			wg.Add(1)
			b := b
			accepted := pool.submit(func() {
				defer wg.Done()
				p.processBatch(b, out, abandon)
			}, abandon)
			if !accepted {
				// The submission was abandoned: the batch never reached a
				// worker, so its buffers (and the worker slot the Add
				// reserved) are released here, then the channel drains so
				// batches the reader already queued are released too.
				wg.Done()
				rc.releaseJobs(b)
				for b := range jobs {
					rc.releaseJobs(b)
				}
				break
			}
		}
		wg.Wait()
		close(out)
	}()

	// Stage 3: re-sequence by index, then run the stateful detectors
	// in arrival order. The pending map is bounded by the records in
	// flight (≤ Batch×(2×Depth + workers)), so memory stays flat even
	// when one slow record holds up its successors. On an aborted
	// replay the deferred cleanup drains out (the dispatcher closes it
	// once the workers unwedge via abandon) and releases both the
	// drained batches and the undelivered pending entries, so no pooled
	// buffer is stranded on any exit path.
	next := 0
	m := p.metrics
	pending := make(map[int]scored, p.depth*p.batch)
	defer func() {
		for sb := range out {
			rc.releaseScored(sb)
		}
		for idx, s := range pending {
			rc.releaseScoredEntry(s)
			delete(pending, idx)
		}
	}()
	for sb := range out {
		for _, s := range sb {
			pending[s.idx] = s
		}
		rc.putScoredBatch(sb)
		for {
			cur, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			var t0 time.Time
			if m != nil {
				t0 = time.Now()
			}
			var state ids.SequenceState
			if cur.ft != nil {
				// Snapshot the stateful detectors BEFORE Sequence mutates
				// them: the decision record must hold the state the
				// verdict was judged against.
				state = p.mon.StateFor(cur.frame.ID)
			}
			sp := cur.ft.StartSpan("pipeline.sequence")
			verdict := p.mon.Sequence(cur.frame, cur.rec.TimeSec, cur.det, cur.extractErr)
			sp.End()
			p.recordsOut.Add(1)
			if p.recorder != nil {
				p.recorder.Record(buildDecision(next, cur, verdict, state))
			}
			err := fn(Result{Index: next, Record: cur.rec, Frame: cur.frame, Verdict: verdict, Trace: cur.ft})
			if rc.records {
				// The sink call is over; the PoolBuffers contract says the
				// record may now be recycled.
				rc.putRec(cur.rec)
			}
			if m != nil {
				m.SequenceSeconds.Observe(time.Since(t0).Seconds())
				m.RecordsOut.Inc()
			}
			if err != nil {
				setErr(err)
				abort()
				return getErr()
			}
			if stalled.Load() {
				// The watchdog fired while this sink call was in flight;
				// stop delivering rather than racing the draining stages.
				return getErr()
			}
			next++
		}
		if m != nil {
			m.QueueDepth.Set(int64(len(pending)))
			m.PoolOutstanding.Set(rc.outstanding.Load())
		}
	}
	if m != nil {
		m.QueueDepth.Set(0)
		m.PoolOutstanding.Set(rc.outstanding.Load())
	}
	return getErr()
}

// Replay is the one-shot convenience wrapper: build a replayer, run
// it, return the final stats.
func Replay(src Source, mon *ids.Composite, cfg Config, fn Sink) (Stats, error) {
	p, err := New(mon, cfg)
	if err != nil {
		return Stats{}, err
	}
	err = p.Run(src, fn)
	return p.Stats(), err
}

// Sequential replays the source on the calling goroutine through
// Composite.Process — the reference path the pipeline must match
// bit-for-bit, and the baseline its benchmarks compare against. It
// fills the same Stats (WorkerBusy covers the extract+score step so
// utilisation remains comparable).
func Sequential(src Source, mon *ids.Composite, fn Sink) (Stats, error) {
	if mon == nil {
		return Stats{}, errors.New("pipeline: nil monitor")
	}
	if fn == nil {
		fn = func(Result) error { return nil }
	}
	stats := Stats{Workers: 1}
	start := time.Now()
	for idx := 0; ; idx++ {
		rec, err := src.Next()
		if errors.Is(err, io.EOF) {
			stats.WallTime = time.Since(start)
			return stats, nil
		}
		if err != nil {
			stats.WallTime = time.Since(start)
			return stats, err
		}
		stats.RecordsIn++
		frame := &canbus.ExtendedFrame{ID: rec.FrameID, Data: rec.Data}
		t0 := time.Now()
		det, extractErr := mon.VoltageVerdict(frame, rec.Trace)
		stats.WorkerBusy += time.Since(t0)
		if extractErr != nil {
			stats.ExtractFailures++
		}
		verdict := mon.Sequence(frame, rec.TimeSec, det, extractErr)
		stats.RecordsOut++
		if err := fn(Result{Index: idx, Record: rec, Frame: frame, Verdict: verdict}); err != nil {
			stats.WallTime = time.Since(start)
			return stats, err
		}
	}
}
