package pipeline_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"vprofile/internal/attack"
	"vprofile/internal/canbus"
	"vprofile/internal/core"
	"vprofile/internal/experiments"
	"vprofile/internal/ids"
	"vprofile/internal/obs"
	"vprofile/internal/pipeline"
	"vprofile/internal/trace"
	"vprofile/internal/vehicle"
)

// buildModel trains a Mahalanobis model on Vehicle B traffic.
func buildModel(t testing.TB, v *vehicle.Vehicle) *core.Model {
	t.Helper()
	train, err := experiments.CollectSamples(v, 1500, 7, nil, v.ExtractionConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Train(experiments.CoreSamples(train), core.TrainConfig{
		Metric: core.Mahalanobis, SAMap: v.SAMap(),
	})
	if err != nil {
		t.Fatal(err)
	}
	val, err := experiments.CollectSamples(v, 800, 8, nil, v.ExtractionConfig())
	if err != nil {
		t.Fatal(err)
	}
	margin, _ := experiments.OptimizeMargin(experiments.FalsePositiveRecords(m, val), experiments.MaxAccuracy)
	m.Margin = margin * 1.5
	return m
}

// buildCapture writes a three-segment capture: clean traffic with
// diagnostic TP.BAM transfers (covering the composite's warm-up), a
// hijack segment where ECU 7's hardware transmits under ECU 2's
// address, and a foreign-device segment — a second vehicle's
// transceiver imitating ECU 1 — so the determinism comparison covers
// voltage anomalies, timing, transfer completions and extract paths.
func buildCapture(t testing.TB, v *vehicle.Vehicle) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Header{Vehicle: v.Name, BitRate: v.BitRate, ADC: v.ADC})
	if err != nil {
		t.Fatal(err)
	}
	offset := 0.0
	last := 0.0
	write := func(m vehicle.Message) {
		last = offset + m.TimeSec
		err := w.Write(&trace.Record{
			ECUIndex: int32(m.ECUIndex),
			TimeSec:  last,
			FrameID:  m.Frame.ID,
			Data:     m.Frame.Data,
			Trace:    m.Trace,
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	err = v.Stream(vehicle.GenConfig{NumMessages: 1000, Seed: 101, DiagnosticTraffic: true}, func(m vehicle.Message) error {
		write(m)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	scenarios := []attack.Scenario{
		{Kind: attack.Hijack, AttackerECU: 7, VictimECU: 2, NumMessages: 400, Seed: 102},
		{Kind: attack.Foreign, VictimECU: 1, NumMessages: 300, Seed: 103},
	}
	for _, sc := range scenarios {
		offset = last + 0.1
		msgs, err := attack.Run(v, sc)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range msgs {
			write(m.Message)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newMonitor(t testing.TB, v *vehicle.Vehicle, m *core.Model) *ids.Composite {
	t.Helper()
	mon, err := ids.NewComposite(m, ids.CompositeConfig{Extraction: v.ExtractionConfig(), Warmup: 500})
	if err != nil {
		t.Fatal(err)
	}
	return mon
}

// errText folds an error to a comparable string ("" when nil).
func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// diffResults reports the first difference between two composite
// verdicts, or "" when they match bit for bit.
func diffResults(a, b ids.CompositeResult) string {
	if a.Voltage != b.Voltage {
		return fmt.Sprintf("voltage %+v vs %+v", a.Voltage, b.Voltage)
	}
	if errText(a.ExtractErr) != errText(b.ExtractErr) {
		return fmt.Sprintf("extract err %q vs %q", errText(a.ExtractErr), errText(b.ExtractErr))
	}
	if a.Timing != b.Timing || errText(a.TimingErr) != errText(b.TimingErr) {
		return fmt.Sprintf("timing %v/%q vs %v/%q", a.Timing, errText(a.TimingErr), b.Timing, errText(b.TimingErr))
	}
	if errText(a.TransferErr) != errText(b.TransferErr) {
		return fmt.Sprintf("transfer err %q vs %q", errText(a.TransferErr), errText(b.TransferErr))
	}
	if a.SAState != b.SAState || a.PrevSAState != b.PrevSAState || a.Suppressed != b.Suppressed {
		return fmt.Sprintf("quarantine %v<-%v/%v vs %v<-%v/%v",
			a.SAState, a.PrevSAState, a.Suppressed, b.SAState, b.PrevSAState, b.Suppressed)
	}
	switch {
	case (a.Transfer == nil) != (b.Transfer == nil):
		return fmt.Sprintf("transfer %v vs %v", a.Transfer, b.Transfer)
	case a.Transfer != nil:
		if a.Transfer.SA != b.Transfer.SA || a.Transfer.PGN != b.Transfer.PGN ||
			!bytes.Equal(a.Transfer.Payload, b.Transfer.Payload) {
			return fmt.Sprintf("transfer %+v vs %+v", a.Transfer, b.Transfer)
		}
	}
	return ""
}

// TestPipelineMatchesSequential is the determinism guarantee: the
// concurrent pipeline's per-record verdict stream — and the silent
// stream sweep at end of capture — must be identical to sequential
// Composite.Process, for any worker count.
func TestPipelineMatchesSequential(t *testing.T) {
	v := vehicle.NewVehicleB()
	model := buildModel(t, v)
	capture := buildCapture(t, v)

	rd, err := trace.NewReader(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	seqMon := newMonitor(t, v, model)
	var want []ids.CompositeResult
	seqAnomalies := 0
	seqTransfers := 0
	for {
		rec, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frame := &canbus.ExtendedFrame{ID: rec.FrameID, Data: rec.Data}
		r := seqMon.Process(frame, rec.Trace, rec.TimeSec)
		if r.Anomalous() {
			seqAnomalies++
		}
		if r.Transfer != nil {
			seqTransfers++
		}
		want = append(want, r)
	}
	seqSilent := seqMon.SilentStreams()

	// The capture must actually exercise the interesting paths, or
	// the equality below proves nothing.
	if seqAnomalies == 0 {
		t.Fatal("capture produced no anomalies")
	}
	if seqTransfers == 0 {
		t.Fatal("capture completed no transport transfers")
	}

	for _, tc := range []struct {
		workers int
		metrics bool
	}{{1, false}, {4, false}, {8, false}, {1, true}, {8, true}} {
		workers := tc.workers
		name := fmt.Sprintf("workers=%d", workers)
		if tc.metrics {
			name += "/metrics"
		}
		t.Run(name, func(t *testing.T) {
			rd, err := trace.NewReader(bytes.NewReader(capture))
			if err != nil {
				t.Fatal(err)
			}
			// The instrumented runs exercise the full observability
			// stack — capture-reader, pipeline and detector metrics —
			// and must still match the sequential verdict stream bit
			// for bit: instrumentation may observe, never perturb.
			var reg *obs.Registry
			cfg := pipeline.Config{Workers: workers}
			var im *ids.Metrics
			if tc.metrics {
				reg = obs.NewRegistry()
				cfg.Metrics = pipeline.NewMetrics(reg)
				im = ids.NewMetrics(reg)
				rd.SetMetrics(trace.NewMetrics(reg))
			}
			mon, err := ids.NewComposite(model, ids.CompositeConfig{Extraction: v.ExtractionConfig(), Warmup: 500, Metrics: im})
			if err != nil {
				t.Fatal(err)
			}
			idx := 0
			st, err := pipeline.Replay(rd, mon, cfg, func(r pipeline.Result) error {
				if r.Index != idx {
					t.Fatalf("result %d arrived out of order (expected %d)", r.Index, idx)
				}
				if idx >= len(want) {
					t.Fatalf("extra result %d", idx)
				}
				if d := diffResults(want[idx], r.Verdict); d != "" {
					t.Fatalf("record %d diverges from sequential: %s", idx, d)
				}
				idx++
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if idx != len(want) {
				t.Fatalf("pipeline delivered %d of %d records", idx, len(want))
			}
			silent := mon.SilentStreams()
			if len(silent) != len(seqSilent) {
				t.Fatalf("silent sweep %v vs sequential %v", silent, seqSilent)
			}
			seen := make(map[uint32]bool, len(seqSilent))
			for _, id := range seqSilent {
				seen[id] = true
			}
			for _, id := range silent {
				if !seen[id] {
					t.Fatalf("silent id %#x not in sequential sweep %v", id, seqSilent)
				}
			}
			if st.RecordsIn != int64(len(want)) || st.RecordsOut != int64(len(want)) {
				t.Fatalf("stats in/out %d/%d, want %d", st.RecordsIn, st.RecordsOut, len(want))
			}
			if st.Workers != workers {
				t.Fatalf("stats workers %d, want %d", st.Workers, workers)
			}
			if st.WallTime <= 0 {
				t.Fatal("stats missing wall time")
			}
			if tc.metrics {
				snap := reg.Snapshot()
				n := int64(len(want))
				if got := snap["vprofile_pipeline_records_in_total"]; got != n {
					t.Fatalf("metrics records_in = %v, want %d", got, n)
				}
				if got := snap["vprofile_pipeline_records_out_total"]; got != n {
					t.Fatalf("metrics records_out = %v, want %d", got, n)
				}
				if got := snap["vprofile_capture_records_read_total"]; got != n {
					t.Fatalf("metrics capture records = %v, want %d", got, n)
				}
				saFrames := snap["vprofile_ids_sa_frames_total"].(map[string]int64)
				var total int64
				for _, c := range saFrames {
					total += c
				}
				if total != n {
					t.Fatalf("per-SA frame counts sum to %d, want %d", total, n)
				}
				dist := snap["vprofile_ids_voltage_distance"].(obs.HistogramSnapshot)
				if dist.Count == 0 {
					t.Fatal("distance histogram saw no observations")
				}
			}
		})
	}
}

// TestStatsMidRun snapshots a replay's Stats while it is in flight: a
// sink blocks at a known record, so the pipeline is frozen with work
// in every stage. Counters must be monotonic between snapshots, the
// wall clock must advance, and utilization must stay a sane fraction
// of worker capacity.
func TestStatsMidRun(t *testing.T) {
	v := vehicle.NewVehicleB()
	model := buildModel(t, v)
	capture := buildCapture(t, v)
	rd, err := trace.NewReader(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	mon := newMonitor(t, v, model)
	p, err := pipeline.New(mon, pipeline.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	const blockAt = 40
	reached := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	total := 0
	go func() {
		done <- p.Run(rd, func(r pipeline.Result) error {
			if r.Index == blockAt {
				close(reached)
				<-release
			}
			total++
			return nil
		})
	}()

	<-reached
	s1 := p.Stats()
	// The sink is parked inside record blockAt's delivery, which is
	// counted before the sink runs.
	if s1.RecordsOut != blockAt+1 {
		t.Fatalf("mid-run RecordsOut = %d, want %d", s1.RecordsOut, blockAt+1)
	}
	if s1.RecordsIn < s1.RecordsOut {
		t.Fatalf("RecordsIn %d < RecordsOut %d", s1.RecordsIn, s1.RecordsOut)
	}
	if s1.WallTime <= 0 {
		t.Fatal("mid-run snapshot has no wall time")
	}
	if u := s1.Utilization(); u < 0 || u > 1.5 {
		t.Fatalf("mid-run utilization %v outside sane bounds", u)
	}
	time.Sleep(5 * time.Millisecond)
	s2 := p.Stats()
	if s2.WallTime <= s1.WallTime {
		t.Fatalf("wall clock did not advance: %v then %v", s1.WallTime, s2.WallTime)
	}
	if s2.RecordsIn < s1.RecordsIn || s2.RecordsOut < s1.RecordsOut || s2.WorkerBusy < s1.WorkerBusy {
		t.Fatalf("counters regressed: %+v then %+v", s1, s2)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	final := p.Stats()
	if final.RecordsOut != final.RecordsIn || int(final.RecordsOut) != total {
		t.Fatalf("final stats %+v after %d deliveries", final, total)
	}
	if final.WallTime < s2.WallTime {
		t.Fatalf("final wall time %v below mid-run %v", final.WallTime, s2.WallTime)
	}
	if u := final.Utilization(); u <= 0 || u > 1.5 {
		t.Fatalf("final utilization %v outside (0, 1.5]", u)
	}
}

// errorSource fails after yielding n records.
type errorSource struct {
	src pipeline.Source
	n   int
	err error
}

func (s *errorSource) Next() (*trace.Record, error) {
	if s.n <= 0 {
		return nil, s.err
	}
	s.n--
	return s.src.Next()
}

func TestPipelineStopsOnSourceError(t *testing.T) {
	v := vehicle.NewVehicleB()
	model := buildModel(t, v)
	capture := buildCapture(t, v)
	rd, err := trace.NewReader(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("digitizer unplugged")
	src := &errorSource{src: rd, n: 25, err: boom}
	mon := newMonitor(t, v, model)
	delivered := 0
	st, err := pipeline.Replay(src, mon, pipeline.Config{Workers: 4}, func(r pipeline.Result) error {
		delivered++
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// Every record read before the fault still gets its verdict, in
	// order, before the error surfaces.
	if delivered != 25 || st.RecordsOut != 25 {
		t.Fatalf("delivered %d (stats %d), want 25", delivered, st.RecordsOut)
	}
}

func TestPipelineStopsOnSinkError(t *testing.T) {
	v := vehicle.NewVehicleB()
	model := buildModel(t, v)
	capture := buildCapture(t, v)
	rd, err := trace.NewReader(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("sink full")
	mon := newMonitor(t, v, model)
	delivered := 0
	_, err = pipeline.Replay(rd, mon, pipeline.Config{Workers: 4}, func(r pipeline.Result) error {
		delivered++
		if delivered == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if delivered != 10 {
		t.Fatalf("sink ran %d times after failing at 10", delivered)
	}
}

func TestReplayerSingleUse(t *testing.T) {
	v := vehicle.NewVehicleB()
	model := buildModel(t, v)
	mon := newMonitor(t, v, model)
	p, err := pipeline.New(mon, pipeline.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	empty := func() pipeline.Source {
		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf, trace.Header{Vehicle: v.Name, BitRate: v.BitRate, ADC: v.ADC})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		rd, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return rd
	}
	if err := p.Run(empty(), nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(empty(), nil); err == nil {
		t.Fatal("second Run accepted")
	}
	if _, err := pipeline.New(nil, pipeline.Config{}); err == nil {
		t.Fatal("nil monitor accepted")
	}
}
