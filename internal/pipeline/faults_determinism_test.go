package pipeline_test

import (
	"bytes"
	"testing"

	"vprofile/internal/analog"
	"vprofile/internal/faults"
	"vprofile/internal/ids"
	"vprofile/internal/pipeline"
	"vprofile/internal/trace"
	"vprofile/internal/vehicle"
)

// buildFaultedCapture renders Vehicle B traffic with moderate analog
// faults composed on every trace, then damages the encoded byte
// stream — the degraded capture a hardened replay has to survive.
// Everything derives from fixed seeds, so two calls must produce
// byte-identical output.
func buildFaultedCapture(t testing.TB, v *vehicle.Vehicle) []byte {
	t.Helper()
	spec, err := faults.ParseSpec("sag=0.35,glitch=0.2,dropout=0.15")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.NewInjector(spec, 42, v.ADC)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Header{Vehicle: v.Name, BitRate: v.BitRate, ADC: v.ADC})
	if err != nil {
		t.Fatal(err)
	}
	idx := 0
	err = v.Stream(vehicle.GenConfig{NumMessages: 1500, Seed: 201, DiagnosticTraffic: true}, func(m vehicle.Message) error {
		tr := append(analog.Trace(nil), m.Trace...)
		inj.Apply(idx, m.ECUIndex, m.TimeSec, tr)
		idx++
		return w.Write(&trace.Record{
			ECUIndex: int32(m.ECUIndex),
			TimeSec:  m.TimeSec,
			FrameID:  m.Frame.ID,
			Data:     m.Frame.Data,
			Trace:    tr,
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	out, sites := faults.CorruptStream(buf.Bytes(), faults.StreamSpec{Flips: 3, Chops: 2}, 7)
	if sites == 0 {
		t.Fatal("stream corruption placed no damage")
	}
	return out
}

// TestFaultedReplayDeterminism extends the pipeline's determinism
// guarantee to the degraded path: with analog faults in the traces,
// corruption in the byte stream, the reader in recovery mode and
// quarantine enabled, the verdict stream — including quarantine
// states, suppression flags and the reader's corruption reports —
// must be bit-identical across worker counts and across repeated runs
// from the same fault seed.
func TestFaultedReplayDeterminism(t *testing.T) {
	v := vehicle.NewVehicleB()
	model := buildModel(t, v)
	capture := buildFaultedCapture(t, v)
	if again := buildFaultedCapture(t, v); !bytes.Equal(capture, again) {
		t.Fatal("faulted capture generation is not reproducible from its seeds")
	}

	run := func(t *testing.T, workers int) ([]ids.CompositeResult, []trace.RecoveredCorruption) {
		rd, err := trace.NewReader(bytes.NewReader(capture))
		if err != nil {
			t.Fatal(err)
		}
		rd.EnableRecovery()
		mon, err := ids.NewComposite(model, ids.CompositeConfig{
			Extraction: v.ExtractionConfig(), Warmup: 500,
			Quarantine: &ids.QuarantineConfig{},
		})
		if err != nil {
			t.Fatal(err)
		}
		var out []ids.CompositeResult
		sink := func(r pipeline.Result) error {
			out = append(out, r.Verdict)
			return nil
		}
		if workers == 0 {
			_, err = pipeline.Sequential(rd, mon, sink)
		} else {
			_, err = pipeline.Replay(rd, mon, pipeline.Config{Workers: workers}, sink)
		}
		if err != nil {
			t.Fatal(err)
		}
		return out, rd.Corruptions()
	}

	want, wantCorr := run(t, 0)
	if len(want) == 0 {
		t.Fatal("faulted capture replayed no records")
	}
	if len(wantCorr) == 0 {
		t.Fatal("recovery reader reported no corruption on a corrupted capture")
	}
	anomalies, suppressed := 0, 0
	for _, r := range want {
		if r.Anomalous() {
			anomalies++
		}
		if r.Suppressed {
			suppressed++
		}
	}
	// The comparison below proves nothing unless the fault machinery
	// actually engaged.
	if anomalies == 0 {
		t.Fatal("analog faults produced no anomalies")
	}
	if suppressed == 0 {
		t.Fatal("quarantine never suppressed an alarm")
	}

	for _, workers := range []int{1, 4, 8, 4} {
		got, gotCorr := run(t, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d delivered %d of %d records", workers, len(got), len(want))
		}
		for i := range want {
			if d := diffResults(want[i], got[i]); d != "" {
				t.Fatalf("workers=%d record %d diverges from sequential: %s", workers, i, d)
			}
		}
		if len(gotCorr) != len(wantCorr) {
			t.Fatalf("workers=%d recovered %d corruptions, sequential %d", workers, len(gotCorr), len(wantCorr))
		}
		for i := range wantCorr {
			if gotCorr[i].Offset != wantCorr[i].Offset || gotCorr[i].Skipped != wantCorr[i].Skipped {
				t.Fatalf("workers=%d corruption %d at offset %d (skipped %d), sequential offset %d (skipped %d)",
					workers, i, gotCorr[i].Offset, gotCorr[i].Skipped, wantCorr[i].Offset, wantCorr[i].Skipped)
			}
		}
	}
}
