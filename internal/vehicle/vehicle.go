// Package vehicle simulates the two production vehicles of the
// vProfile evaluation: their ECU rosters, per-ECU analog transmitter
// electronics, periodic J1939 traffic schedules, and the attack and
// environment scenarios of Chapter 4.
//
// Vehicle A stands in for the 2016 Peterbilt 579 (five ECUs with
// visually distinct voltage profiles, sampled at 20 MS/s and 16 bits);
// Vehicle B stands in for the confidential partner vehicle (ten ECUs
// with far less distinct profiles, sampled at 10 MS/s and 12 bits).
// Both run a 250 kb/s J1939 bus. Transceiver parameters are calibrated
// so the paper's qualitative results carry over: ECUs 1 and 4 of
// Vehicle A are the closest pair, Vehicle B's tighter profile spread
// degrades the Euclidean metric, and ECUs 0 and 2 of Vehicle A react
// strongly to temperature (Figure 4.6) because they are mounted on the
// engine block.
package vehicle

import (
	"fmt"
	"math/rand"

	"vprofile/internal/analog"
	"vprofile/internal/canbus"
)

// MessageSpec is one periodic broadcast an ECU emits.
type MessageSpec struct {
	ID       canbus.J1939ID
	PeriodMS float64
	DataLen  int
}

// ECU is one node on the simulated bus.
type ECU struct {
	Name        string
	Transceiver *analog.Transceiver
	Messages    []MessageSpec

	// ClockSkewPPM is the systematic deviation of the ECU's local
	// oscillator from nominal, in parts per million. Every period the
	// ECU schedules stretches by (1 + ppm·1e−6) — the fingerprint that
	// clock-based intrusion detection (CIDS, Section 1.2.2) exploits.
	ClockSkewPPM float64
}

// SAs returns the source addresses the ECU transmits under.
func (e *ECU) SAs() []canbus.SourceAddress {
	seen := make(map[canbus.SourceAddress]bool)
	var out []canbus.SourceAddress
	for _, m := range e.Messages {
		if !seen[m.ID.SA] {
			seen[m.ID.SA] = true
			out = append(out, m.ID.SA)
		}
	}
	return out
}

// Vehicle is a complete simulated test vehicle.
type Vehicle struct {
	Name    string
	ECUs    []*ECU
	BitRate float64
	ADC     analog.ADC

	// LeadIdleBits of recessive idle precede each rendered frame.
	LeadIdleBits int
}

// SAMap returns the SA→ECU-index database — the "fortunate" clustering
// input of Algorithm 2.
func (v *Vehicle) SAMap() map[canbus.SourceAddress]int {
	out := make(map[canbus.SourceAddress]int)
	for i, e := range v.ECUs {
		for _, sa := range e.SAs() {
			out[sa] = i
		}
	}
	return out
}

// ECUForSA returns the index of the ECU owning sa, or −1.
func (v *Vehicle) ECUForSA(sa canbus.SourceAddress) int {
	for i, e := range v.ECUs {
		for _, s := range e.SAs() {
			if s == sa {
				return i
			}
		}
	}
	return -1
}

// DefaultTraceSamples returns a per-message sample budget that covers
// the lead-in, the arbitration field, and enough of the frame for
// three spaced edge sets (Section 5.2).
func (v *Vehicle) DefaultTraceSamples() int {
	perBit := int(v.ADC.SamplesPerBit(v.BitRate))
	gap := 250 * perBit / 40 // Section 5.2 spacing at the native rate
	// Bit 34 onwards, plus two inter-set gaps, plus generous slack for
	// data-dependent bit runs between each gap and its edge pair.
	return (v.LeadIdleBits+46)*perBit + 2*gap + 14*perBit
}

// EnvFunc supplies the operating environment of an ECU at a simulated
// time. A nil EnvFunc means every ECU stays at its nominal conditions.
type EnvFunc func(timeSec float64, ecuIndex int) analog.Environment

// Message is one captured bus transmission with ground truth attached.
type Message struct {
	ECUIndex int // index into Vehicle.ECUs; -1 for a foreign device
	TimeSec  float64
	Frame    *canbus.ExtendedFrame
	Trace    analog.Trace
}

// Capture is a recorded stretch of bus traffic, the unit the paper
// records once per vehicle and replays into vProfile for
// repeatability.
type Capture struct {
	Vehicle  string
	Messages []Message
}

// GenConfig parameterises traffic generation.
type GenConfig struct {
	NumMessages int
	Seed        int64
	Env         EnvFunc
	// MaxSamplesPerMessage truncates each rendered trace; zero uses
	// Vehicle.DefaultTraceSamples.
	MaxSamplesPerMessage int
	// RealisticPayloads fills data fields from the J1939 signal model
	// (decodable engine speed, wheel speed, coolant temperature, …)
	// instead of random bytes.
	RealisticPayloads bool
	// DiagnosticTraffic adds the once-per-second DM1 broadcast every
	// J1939 controller emits (J1939-73), including multi-packet
	// TP.BAM transfers when an ECU reports several trouble codes.
	DiagnosticTraffic bool
}

// Generate simulates the vehicle's periodic traffic and renders each
// frame's analog trace, retaining every message in memory. For large
// runs prefer Stream, which hands each message to a callback without
// retaining its trace.
func (v *Vehicle) Generate(cfg GenConfig) (*Capture, error) {
	cap := &Capture{Vehicle: v.Name}
	err := v.Stream(cfg, func(m Message) error {
		cap.Messages = append(cap.Messages, m)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cap, nil
}

// Stream simulates the vehicle's periodic traffic and renders each
// frame's analog trace, invoking fn once per message in transmission
// order. Transmissions whose nominal start times collide within one
// frame duration are serialised, mirroring wired-AND arbitration (the
// lower ID wins the bus and the loser retransmits immediately after).
// Stream stops early and returns fn's error if it is non-nil.
func (v *Vehicle) Stream(cfg GenConfig, fn func(Message) error) error {
	if cfg.NumMessages <= 0 {
		return fmt.Errorf("vehicle: NumMessages %d", cfg.NumMessages)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	maxSamples := cfg.MaxSamplesPerMessage
	if maxSamples <= 0 {
		maxSamples = v.DefaultTraceSamples()
	}
	synthCfg := analog.SynthConfig{
		ADC: v.ADC, BitRate: v.BitRate,
		LeadIdleBits: v.LeadIdleBits, MaxSamples: maxSamples,
	}

	sched := newSchedule(v, rng)
	if cfg.DiagnosticTraffic {
		sched.addDiagnostics(rng)
	}
	var signals *signalModel
	if cfg.RealisticPayloads {
		signals = newSignalModel()
	}
	busFreeAt := 0.0
	sent := 0
	for sent < cfg.NumMessages {
		ev := sched.next()
		t := ev.at
		if t < busFreeAt {
			// Bus still busy: this transmission starts as soon as the
			// bus frees (it would win or queue behind arbitration).
			t = busFreeAt
		}
		ecu := v.ECUs[ev.ecu]
		var frames []*canbus.ExtendedFrame
		if ev.diag {
			var err error
			frames, err = diagnosticFrames(ev.ecu, ecu)
			if err != nil {
				return err
			}
		} else {
			frame, err := v.makeFrame(ev.spec, t, signals, rng)
			if err != nil {
				return err
			}
			frames = []*canbus.ExtendedFrame{frame}
		}
		env := ecu.Transceiver.NominalEnvironment()
		if cfg.Env != nil {
			env = cfg.Env(t, ev.ecu)
		}
		for _, frame := range frames {
			if sent >= cfg.NumMessages {
				break
			}
			tr, err := analog.SynthesizeFrame(ecu.Transceiver, frame, synthCfg, env, rng)
			if err != nil {
				return err
			}
			if err := fn(Message{ECUIndex: ev.ecu, TimeSec: t, Frame: frame, Trace: tr}); err != nil {
				return err
			}
			sent++
			frameDur := float64(canbus.FrameBitLength(len(frame.Data))+canbus.IntermissionLength) / v.BitRate
			busFreeAt = t + frameDur
			t = busFreeAt
		}
	}
	return nil
}

// diagnosticFrames builds an ECU's DM1 broadcast. Fault states are
// deterministic per ECU index: most controllers report no active
// codes (a single frame); every third reports enough trouble codes to
// force a TP.BAM multi-packet transfer.
func diagnosticFrames(idx int, ecu *ECU) ([]*canbus.ExtendedFrame, error) {
	sa := ecu.SAs()[0]
	switch idx % 3 {
	case 0:
		return canbus.DM1Frames(canbus.LampStatus{}, nil, sa)
	case 1:
		return canbus.DM1Frames(canbus.LampStatus{AmberWarning: true},
			[]canbus.DTC{{SPN: 110, FMI: 3, OccurrenceCount: 1}}, sa)
	default:
		return canbus.DM1Frames(canbus.LampStatus{AmberWarning: true, MalfunctionIndicator: true},
			[]canbus.DTC{
				{SPN: 110, FMI: 3, OccurrenceCount: 2},
				{SPN: 190, FMI: 8, OccurrenceCount: 1},
				{SPN: 84, FMI: 2, OccurrenceCount: 4},
			}, sa)
	}
}

// makeFrame builds the next frame for a spec: random payload bytes by
// default, or decodable J1939 signals when a signal model is supplied.
func (v *Vehicle) makeFrame(spec MessageSpec, t float64, signals *signalModel, rng *rand.Rand) (*canbus.ExtendedFrame, error) {
	if signals != nil {
		data, err := signals.payload(spec, t, rng)
		if err != nil {
			return nil, err
		}
		return canbus.NewJ1939Frame(spec.ID, data)
	}
	data := make([]byte, spec.DataLen)
	rng.Read(data)
	return canbus.NewJ1939Frame(spec.ID, data)
}

// schedule is a tiny event queue over the vehicle's periodic specs.
type schedule struct {
	v       *Vehicle
	rng     *rand.Rand
	pending []schedEvent
}

type schedEvent struct {
	at     float64
	ecu    int
	spec   MessageSpec
	period float64
	diag   bool
}

func newSchedule(v *Vehicle, rng *rand.Rand) *schedule {
	s := &schedule{v: v, rng: rng}
	for i, e := range v.ECUs {
		skew := 1 + e.ClockSkewPPM*1e-6
		for _, spec := range e.Messages {
			period := spec.PeriodMS / 1000 * skew
			s.pending = append(s.pending, schedEvent{
				at:     rng.Float64() * period, // random initial phase
				ecu:    i,
				spec:   spec,
				period: period,
			})
		}
	}
	return s
}

// addDiagnostics schedules the once-per-second DM1 broadcast of every
// controller (J1939-73).
func (s *schedule) addDiagnostics(rng *rand.Rand) {
	for i := range s.v.ECUs {
		s.pending = append(s.pending, schedEvent{
			at:     rng.Float64(),
			ecu:    i,
			period: 1.0,
			diag:   true,
		})
	}
}

// next pops the earliest pending transmission and reschedules its
// spec one period (with ±2 % jitter) later.
func (s *schedule) next() schedEvent {
	best := 0
	for i := 1; i < len(s.pending); i++ {
		if s.pending[i].at < s.pending[best].at {
			best = i
		}
	}
	ev := s.pending[best]
	jitter := 1 + 0.04*(s.rng.Float64()-0.5)
	s.pending[best].at += ev.period * jitter
	return ev
}
