package vehicle

import (
	"vprofile/internal/analog"
	"vprofile/internal/canbus"
	"vprofile/internal/edgeset"
)

// BitRate250k is the 250 kb/s J1939 bus rate of both test vehicles.
const BitRate250k = 250e3

// NewVehicleA builds the Vehicle A stand-in: five ECUs with visually
// distinct voltage profiles (Figure 4.2), captured at 20 MS/s and
// 16 bits. ECUs 1 and 4 are the closest pair — the paper's foreign-
// imitation candidates — with ECUs 0 and 1 the next closest under
// Euclidean distance. ECUs 0 (the engine-mounted ECM) and 2 carry
// strong temperature coefficients, reproducing the sharp distance
// growth of Figure 4.6.
func NewVehicleA() *Vehicle {
	adc := analog.ADC{SampleRate: 20e6, Bits: 16, MinVolts: -5, MaxVolts: 5}
	mk := func(name string, vDom, tauRise, tauFall, overshoot, ringFreq, tempCoV, tempCoTau float64) *analog.Transceiver {
		return &analog.Transceiver{
			Name: name, VDom: vDom, VRec: 0.015,
			TauRise: tauRise, TauFall: tauFall,
			OvershootAmp: overshoot, UndershootAmp: overshoot * 0.7,
			RingFreq: ringFreq, RingTau: 550e-9,
			NoiseSigma: 0.005, EdgeJitterSigma: 3e-9,
			BurstProb: 0.01, BurstScale: 2.5,
			TempCoVDom: tempCoV, TempCoTau: tempCoTau, SupplyCoVDom: 0.004,
			NominalTempC: 25, NominalSupplyV: 12.6,
		}
	}
	spec := func(prio uint8, pgn canbus.PGN, sa canbus.SourceAddress, periodMS float64, n int) MessageSpec {
		return MessageSpec{ID: canbus.J1939ID{Priority: prio, PGN: pgn, SA: sa}, PeriodMS: periodMS, DataLen: n}
	}
	return &Vehicle{
		Name: "vehicle-a", BitRate: BitRate250k, ADC: adc, LeadIdleBits: 3,
		ECUs: []*ECU{
			{
				Name:         "ECU0-ECM",
				ClockSkewPPM: 38,
				Transceiver:  mk("A/ECM", 1.90, 110e-9, 135e-9, 0.28, 2.2e6, -0.60e-3, 0.8e-3),
				Messages: []MessageSpec{
					spec(3, canbus.PGNElectronicEngine1, canbus.SAEngine, 20, 8),
					spec(3, canbus.PGNElectronicEngine2, canbus.SAEngine, 50, 8),
					spec(6, canbus.PGNEngineTemperature, canbus.SAEngine, 1000, 8),
					spec(6, canbus.PGNFuelEconomy, canbus.SAEngine, 100, 8),
				},
			},
			{
				Name:         "ECU1-Transmission",
				ClockSkewPPM: -84,
				Transceiver:  mk("A/TCM", 2.000, 100e-9, 120e-9, 0.30, 2.60e6, -0.10e-3, 0.15e-3),
				Messages: []MessageSpec{
					spec(3, canbus.PGNTransmission1, canbus.SATransmission, 20, 8),
					spec(6, canbus.PGNVehicleWeight, canbus.SATransmission, 1000, 8),
				},
			},
			{
				Name:         "ECU2-Brakes",
				ClockSkewPPM: 122,
				Transceiver:  mk("A/EBC", 2.45, 150e-9, 180e-9, 0.34, 1.8e6, -0.50e-3, 0.7e-3),
				Messages: []MessageSpec{
					spec(6, canbus.PGNBrakes, canbus.SABrakes, 100, 8),
					spec(6, canbus.PGNCruiseControl, canbus.SABrakes, 100, 8),
				},
			},
			{
				Name:         "ECU3-Body",
				ClockSkewPPM: -15,
				Transceiver:  mk("A/BCM", 2.25, 120e-9, 145e-9, 0.26, 3.1e6, -0.12e-3, 0.15e-3),
				Messages: []MessageSpec{
					spec(6, canbus.PGNDashDisplay, canbus.SABodyController, 200, 8),
					spec(6, canbus.PGNAmbientConditions, canbus.SABodyController, 500, 8),
					spec(6, canbus.PGNCabMessage1, canbus.SABodyController, 50, 8),
				},
			},
			{
				Name:         "ECU4-Cab",
				ClockSkewPPM: 67,
				Transceiver:  mk("A/CAB", 2.060, 100e-9, 120e-9, 0.30, 2.60e6, -0.08e-3, 0.12e-3),
				Messages: []MessageSpec{
					spec(6, canbus.PGNCabMessage1, canbus.SACabController, 50, 8),
					spec(6, canbus.PGNDashDisplay, canbus.SACabController, 200, 8),
				},
			},
		},
	}
}

// NewVehicleB builds the Vehicle B stand-in: ten ECUs whose voltage
// profiles were drawn from a much tighter distribution than Vehicle
// A's, captured at 10 MS/s and 12 bits. Several pairs differ by only a
// few millivolts of dominant level and a few nanoseconds of rise time,
// which is what degrades the Euclidean metric in Table 4.2 while
// Mahalanobis distance (Table 4.4) still separates them through the
// edge-shape correlations.
func NewVehicleB() *Vehicle {
	adc := analog.ADC{SampleRate: 10e6, Bits: 12, MinVolts: -5, MaxVolts: 5}
	mk := func(name string, vDom, vRec, tauRise, ringFreq float64) *analog.Transceiver {
		return &analog.Transceiver{
			Name: name, VDom: vDom, VRec: vRec,
			TauRise: tauRise, TauFall: tauRise * 1.25,
			OvershootAmp: 0.13, UndershootAmp: 0.09,
			RingFreq: ringFreq, RingTau: 240e-9,
			NoiseSigma: 0.005, EdgeJitterSigma: 3e-9,
			BurstProb: 0.01, BurstScale: 2.5,
			TempCoVDom: -0.15e-3, TempCoTau: 0.2e-3, SupplyCoVDom: 0.004,
			NominalTempC: 25, NominalSupplyV: 12.6,
		}
	}
	spec := func(prio uint8, pgn canbus.PGN, sa canbus.SourceAddress, periodMS float64, n int) MessageSpec {
		return MessageSpec{ID: canbus.J1939ID{Priority: prio, PGN: pgn, SA: sa}, PeriodMS: periodMS, DataLen: n}
	}
	ecu := func(name string, tx *analog.Transceiver, specs ...MessageSpec) *ECU {
		return &ECU{Name: name, Transceiver: tx, Messages: specs}
	}
	return &Vehicle{
		Name: "vehicle-b", BitRate: BitRate250k, ADC: adc, LeadIdleBits: 3,
		ECUs: []*ECU{
			ecu("B0", mk("B/0", 2.000, 0.010, 300e-9, 2.4e6),
				spec(3, canbus.PGNElectronicEngine1, 0x00, 20, 8),
				spec(6, canbus.PGNEngineTemperature, 0x00, 1000, 8)),
			ecu("B1", mk("B/1", 2.016, 0.016, 340e-9, 2.4e6), // 16 mV from B0: first tight pair
				spec(3, canbus.PGNTransmission1, 0x03, 25, 8)),
			ecu("B2", mk("B/2", 2.055, 0.011, 285e-9, 2.7e6),
				spec(6, canbus.PGNBrakes, 0x0B, 40, 8)),
			ecu("B3", mk("B/3", 2.088, 0.013, 352e-9, 2.1e6), // well separated from B2
				spec(6, canbus.PGNCruiseControl, 0x13, 40, 8)),
			ecu("B4", mk("B/4", 2.124, 0.012, 322e-9, 2.5e6),
				spec(6, canbus.PGNDashDisplay, 0x17, 40, 8)),
			ecu("B5", mk("B/5", 2.140, 0.018, 360e-9, 2.5e6), // 16 mV from B4: second tight pair
				spec(6, canbus.PGNCabMessage1, 0x21, 40, 8)),
			ecu("B6", mk("B/6", 2.178, 0.010, 295e-9, 2.8e6),
				spec(6, canbus.PGNAmbientConditions, 0x19, 80, 8),
				spec(6, canbus.PGNVehicleWeight, 0x19, 200, 8)),
			ecu("B7", mk("B/7", 2.210, 0.014, 368e-9, 2.0e6),
				spec(6, canbus.PGNFuelEconomy, 0x31, 40, 8)),
			ecu("B8", mk("B/8", 2.262, 0.012, 315e-9, 2.6e6),
				spec(3, canbus.PGNElectronicEngine2, 0x2A, 40, 8)),
			ecu("B9", mk("B/9", 2.296, 0.011, 303e-9, 2.6e6), // well separated from B8
				spec(6, canbus.PGNCabMessage1, 0x35, 40, 8)),
		},
	}
}

// NewSterlingActerra builds the two-ECU 2006 Sterling Acterra stand-in
// used by the paper's illustrative figures: Figure 2.5 (two visibly
// distinct edge-set bundles), Figure 3.1 (rate/resolution reduction on
// one edge set), Figure 4.4 (per-sample-index standard deviation) and
// Figure 4.5 / Table 4.5 (distance quotient comparison). 250 kb/s bus
// sampled at 10 MS/s and 16 bits.
func NewSterlingActerra() *Vehicle {
	adc := analog.ADC{SampleRate: 10e6, Bits: 16, MinVolts: -5, MaxVolts: 5}
	mk := func(name string, vDom, tauRise, overshoot, ringFreq float64) *analog.Transceiver {
		return &analog.Transceiver{
			Name: name, VDom: vDom, VRec: 0.014,
			TauRise: tauRise, TauFall: tauRise * 1.2,
			OvershootAmp: overshoot, UndershootAmp: overshoot * 0.7,
			RingFreq: ringFreq, RingTau: 550e-9,
			NoiseSigma: 0.005, EdgeJitterSigma: 3e-9,
			BurstProb: 0.01, BurstScale: 2.5,
			TempCoVDom: -0.3e-3, TempCoTau: 0.4e-3, SupplyCoVDom: 0.004,
			NominalTempC: 25, NominalSupplyV: 12.6,
		}
	}
	spec := func(prio uint8, pgn canbus.PGN, sa canbus.SourceAddress, periodMS float64, n int) MessageSpec {
		return MessageSpec{ID: canbus.J1939ID{Priority: prio, PGN: pgn, SA: sa}, PeriodMS: periodMS, DataLen: n}
	}
	return &Vehicle{
		Name: "sterling-acterra", BitRate: BitRate250k, ADC: adc, LeadIdleBits: 3,
		ECUs: []*ECU{
			{
				Name:         "ECU0-ECM",
				ClockSkewPPM: 38,
				Transceiver:  mk("S/ECM", 2.05, 180e-9, 0.30, 2.3e6),
				Messages: []MessageSpec{
					spec(3, canbus.PGNElectronicEngine1, canbus.SAEngine, 20, 8),
					spec(6, canbus.PGNEngineTemperature, canbus.SAEngine, 100, 8),
				},
			},
			{
				Name:        "ECU1-Body",
				Transceiver: mk("S/BCM", 2.28, 260e-9, 0.18, 3.0e6),
				Messages: []MessageSpec{
					spec(6, canbus.PGNCabMessage1, canbus.SABodyController, 25, 8),
					spec(6, canbus.PGNDashDisplay, canbus.SABodyController, 100, 8),
				},
			},
		},
	}
}

// ExtractionConfig returns the edge-set extraction parameters matched
// to the vehicle's digitizer, scaled from the paper's 10 MS/s
// reference values (bit width 40, prefix 2, suffix 14, threshold
// bisecting the rising edge).
func (v *Vehicle) ExtractionConfig() edgeset.Config {
	perBit := int(v.ADC.SamplesPerBit(v.BitRate))
	scale := float64(perBit) / 40.0
	prefix := int(2 * scale)
	if prefix < 1 {
		prefix = 1
	}
	suffix := int(14 * scale)
	if suffix < 3 {
		suffix = 3
	}
	return edgeset.Config{
		BitWidth:     perBit,
		BitThreshold: v.ADC.VoltsToCode(1.0),
		PrefixLen:    prefix,
		SuffixLen:    suffix,
	}
}

// ForeignDevice returns a transceiver for the foreign-intruder threat
// model: an attacker-built node tuned to imitate the victim ECU's
// waveform. Matching within a few percent of level and rise time is
// about the best an attacker can do with off-the-shelf hardware
// (Section 2.2.1: the manufacturing variation is "practically
// impossible ... to imitate"); the residual mismatch sits well inside
// the victim's Euclidean threshold — which edge-sampling variance
// dominates — yet stands out by many whitened standard deviations
// under Mahalanobis distance, the Table 4.1(c) versus Table 4.3(c)
// contrast.
func ForeignDevice(victim *analog.Transceiver) *analog.Transceiver {
	clone := *victim
	clone.Name = victim.Name + "/foreign"
	clone.VDom += 0.008 // 8 mV steady-state bias
	clone.VRec += 0.003
	clone.TauRise *= 1.06 // 6 % slower edge
	clone.TauFall *= 1.05
	clone.OvershootAmp *= 0.9
	clone.EdgeJitterSigma *= 1.3
	return &clone
}

// GenerateForeign renders traffic from a foreign device that claims
// the source addresses of the imitated ECU. The messages carry
// ECUIndex −1 (ground-truth foreign).
func (v *Vehicle) GenerateForeign(imposter *analog.Transceiver, imitated *ECU, cfg GenConfig) (*Capture, error) {
	fake := &Vehicle{
		Name: v.Name + "/foreign", BitRate: v.BitRate, ADC: v.ADC, LeadIdleBits: v.LeadIdleBits,
		ECUs: []*ECU{{Name: imposter.Name, Transceiver: imposter, Messages: imitated.Messages}},
	}
	cap, err := fake.Generate(cfg)
	if err != nil {
		return nil, err
	}
	for i := range cap.Messages {
		cap.Messages[i].ECUIndex = -1
	}
	cap.Vehicle = v.Name
	return cap, nil
}
