package vehicle

import (
	"testing"

	"vprofile/internal/analog"
	"vprofile/internal/edgeset"
)

func TestVehicleRosters(t *testing.T) {
	a := NewVehicleA()
	if len(a.ECUs) != 5 {
		t.Fatalf("Vehicle A has %d ECUs, want 5", len(a.ECUs))
	}
	b := NewVehicleB()
	if len(b.ECUs) != 10 {
		t.Fatalf("Vehicle B has %d ECUs, want 10", len(b.ECUs))
	}
	for _, v := range []*Vehicle{a, b} {
		if err := v.ADC.Validate(); err != nil {
			t.Fatalf("%s ADC: %v", v.Name, err)
		}
		for _, e := range v.ECUs {
			if err := e.Transceiver.Validate(); err != nil {
				t.Fatalf("%s %s: %v", v.Name, e.Name, err)
			}
			if len(e.Messages) == 0 {
				t.Fatalf("%s %s has no message specs", v.Name, e.Name)
			}
		}
	}
}

func TestSAMapBijectiveOverECUs(t *testing.T) {
	for _, v := range []*Vehicle{NewVehicleA(), NewVehicleB()} {
		m := v.SAMap()
		if len(m) == 0 {
			t.Fatalf("%s: empty SA map", v.Name)
		}
		// Every SA maps to the ECU that declares it, and no SA is
		// shared between two ECUs (each ID maps to a single ECU).
		for sa, idx := range m {
			if got := v.ECUForSA(sa); got != idx {
				t.Fatalf("%s: SA %#x maps to ECU %d but ECUForSA says %d", v.Name, sa, idx, got)
			}
		}
	}
}

func TestECUForSAUnknown(t *testing.T) {
	if got := NewVehicleA().ECUForSA(0xEE); got != -1 {
		t.Fatalf("unknown SA resolved to %d", got)
	}
}

func TestGenerateProducesDecodableTraffic(t *testing.T) {
	for _, v := range []*Vehicle{NewVehicleA(), NewVehicleB()} {
		cap, err := v.Generate(GenConfig{NumMessages: 120, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if len(cap.Messages) != 120 {
			t.Fatalf("%s: %d messages", v.Name, len(cap.Messages))
		}
		cfg := v.ExtractionConfig()
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		seenECU := make(map[int]bool)
		prevTime := -1.0
		for i, msg := range cap.Messages {
			if msg.TimeSec < prevTime {
				t.Fatalf("%s: message %d goes back in time", v.Name, i)
			}
			prevTime = msg.TimeSec
			res, err := edgeset.Extract(msg.Trace, cfg)
			if err != nil {
				t.Fatalf("%s: message %d: %v", v.Name, i, err)
			}
			if res.SA != msg.Frame.SA() {
				t.Fatalf("%s: message %d decoded SA %#x, frame SA %#x", v.Name, i, res.SA, msg.Frame.SA())
			}
			if got := v.ECUForSA(res.SA); got != msg.ECUIndex {
				t.Fatalf("%s: message %d SA %#x belongs to ECU %d, ground truth %d", v.Name, i, res.SA, got, msg.ECUIndex)
			}
			seenECU[msg.ECUIndex] = true
		}
		// Fast-period ECUs must all appear within 120 messages.
		if len(seenECU) < 3 {
			t.Fatalf("%s: only ECUs %v transmitted", v.Name, seenECU)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	v := NewVehicleA()
	a, err := v.Generate(GenConfig{NumMessages: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := v.Generate(GenConfig{NumMessages: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Messages {
		if a.Messages[i].Frame.ID != b.Messages[i].Frame.ID {
			t.Fatalf("message %d frame differs", i)
		}
		ta, tb := a.Messages[i].Trace, b.Messages[i].Trace
		if len(ta) != len(tb) {
			t.Fatalf("message %d trace length differs", i)
		}
		for j := range ta {
			if ta[j] != tb[j] {
				t.Fatalf("message %d sample %d differs", i, j)
			}
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := NewVehicleA().Generate(GenConfig{NumMessages: 0}); err == nil {
		t.Fatal("zero messages accepted")
	}
}

func TestGenerateForeign(t *testing.T) {
	v := NewVehicleA()
	victim := v.ECUs[4]
	imposter := ForeignDevice(v.ECUs[1].Transceiver)
	cap, err := v.GenerateForeign(imposter, victim, GenConfig{NumMessages: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	cfg := v.ExtractionConfig()
	victimSAs := make(map[uint8]bool)
	for _, sa := range victim.SAs() {
		victimSAs[uint8(sa)] = true
	}
	for i, msg := range cap.Messages {
		if msg.ECUIndex != -1 {
			t.Fatalf("message %d ground truth %d, want -1", i, msg.ECUIndex)
		}
		res, err := edgeset.Extract(msg.Trace, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !victimSAs[uint8(res.SA)] {
			t.Fatalf("message %d claims SA %#x, not one of the victim's", i, res.SA)
		}
	}
}

func TestForeignDeviceDiffersButResembles(t *testing.T) {
	victim := NewVehicleA().ECUs[4].Transceiver
	f := ForeignDevice(victim)
	if f.VDom == victim.VDom || f.TauRise == victim.TauRise {
		t.Fatal("foreign device identical to the victim")
	}
	if d := f.VDom - victim.VDom; d > 0.05 || d < -0.05 {
		t.Fatalf("foreign bias %v too large to count as imitation", d)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// The victim is untouched.
	if victim.Name == f.Name {
		t.Fatal("victim mutated")
	}
}

func TestEnvFuncReachesSynthesis(t *testing.T) {
	v := NewVehicleA()
	// Generate at nominal and at +60 °C; ECU0's steady level must
	// drop measurably (temp coefficient −2.5 mV/°C).
	nom, err := v.Generate(GenConfig{NumMessages: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	hotCap, err := v.Generate(GenConfig{NumMessages: 60, Seed: 3, Env: func(_ float64, ecu int) analog.Environment {
		e := v.ECUs[ecu].Transceiver.NominalEnvironment()
		e.TemperatureC += 60
		return e
	}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := v.ExtractionConfig()
	var nomLevel, hotLevel, n float64
	for i := range nom.Messages {
		if nom.Messages[i].ECUIndex != 0 {
			continue
		}
		rn, err := edgeset.Extract(nom.Messages[i].Trace, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rh, err := edgeset.Extract(hotCap.Messages[i].Trace, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Compare the settled suffix of the rising edge.
		nomLevel += rn.Set[cfg.PrefixLen+cfg.SuffixLen-1]
		hotLevel += rh.Set[cfg.PrefixLen+cfg.SuffixLen-1]
		n++
	}
	if n == 0 {
		t.Fatal("no ECU0 messages in the capture")
	}
	if hotLevel/n >= nomLevel/n-100 {
		t.Fatalf("+60°C did not lower ECU0's level: %v vs %v", hotLevel/n, nomLevel/n)
	}
}

func TestDefaultTraceSamplesCoversExtraction(t *testing.T) {
	for _, v := range []*Vehicle{NewVehicleA(), NewVehicleB()} {
		perBit := int(v.ADC.SamplesPerBit(v.BitRate))
		min := (v.LeadIdleBits + 36) * perBit
		if got := v.DefaultTraceSamples(); got < min {
			t.Fatalf("%s: %d samples cannot cover bit 33 (+%d lead)", v.Name, got, v.LeadIdleBits)
		}
	}
}

func TestExtractionConfigScalesWithRate(t *testing.T) {
	a := NewVehicleA().ExtractionConfig() // 20 MS/s → 80 samples/bit
	if a.BitWidth != 80 || a.PrefixLen != 4 || a.SuffixLen != 28 {
		t.Fatalf("Vehicle A config %+v", a)
	}
	b := NewVehicleB().ExtractionConfig() // 10 MS/s → the paper's reference
	if b.BitWidth != 40 || b.PrefixLen != 2 || b.SuffixLen != 14 {
		t.Fatalf("Vehicle B config %+v", b)
	}
}
