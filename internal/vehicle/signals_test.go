package vehicle

import (
	"math"
	"math/rand"
	"testing"

	"vprofile/internal/analog"
	"vprofile/internal/canbus"
	"vprofile/internal/edgeset"
)

func TestSignalModelRanges(t *testing.T) {
	m := newSignalModel()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		tm := float64(i) * 0.5
		m.step(rng)
		if rpm := m.engineRPM(tm); rpm < 600 || rpm > 2100 {
			t.Fatalf("rpm %v at t=%v", rpm, tm)
		}
		if v := m.wheelSpeed(tm); v < 0 || v > 120 {
			t.Fatalf("speed %v at t=%v", v, tm)
		}
		if c := m.coolantTemp(tm); c < 19 || c > 89 {
			t.Fatalf("coolant %v at t=%v", c, tm)
		}
		if f := m.fuelRate(tm); f < 0 || f > 50 {
			t.Fatalf("fuel %v at t=%v", f, tm)
		}
		if m.pedalPos < 0 || m.pedalPos > 90 {
			t.Fatalf("pedal %v", m.pedalPos)
		}
	}
}

func TestSignalCoolantWarmsMonotonically(t *testing.T) {
	m := newSignalModel()
	prev := m.coolantTemp(0)
	for tm := 30.0; tm < 1800; tm += 30 {
		c := m.coolantTemp(tm)
		if c < prev {
			t.Fatalf("coolant fell %v -> %v at t=%v", prev, c, tm)
		}
		prev = c
	}
	if prev < 75 {
		t.Fatalf("coolant only reached %v after 30 minutes", prev)
	}
}

func TestRealisticPayloadsDecode(t *testing.T) {
	v := NewVehicleA()
	sawEngine := false
	err := v.Stream(GenConfig{NumMessages: 200, Seed: 4, RealisticPayloads: true}, func(m Message) error {
		id := m.Frame.J1939()
		for _, spn := range canbus.SPNsForPGN(id.PGN) {
			val, err := spn.Decode(m.Frame.Data)
			if err != nil {
				t.Fatalf("PGN %#x SPN %d: %v", uint32(id.PGN), spn.Number, err)
			}
			if math.IsNaN(val) {
				t.Fatalf("PGN %#x SPN %d decoded not-available", uint32(id.PGN), spn.Number)
			}
			if val < spn.Min()-1e-9 || val > spn.Max()+1e-9 {
				t.Fatalf("SPN %d value %v outside [%v, %v]", spn.Number, val, spn.Min(), spn.Max())
			}
			if spn.Number == canbus.SPNEngineSpeed.Number {
				sawEngine = true
				if val < 500 || val > 2200 {
					t.Fatalf("implausible engine speed %v", val)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawEngine {
		t.Fatal("no EEC1 engine speed seen in 200 messages")
	}
}

func TestRealisticPayloadsPadWithFF(t *testing.T) {
	v := NewVehicleA()
	err := v.Stream(GenConfig{NumMessages: 80, Seed: 5, RealisticPayloads: true}, func(m Message) error {
		id := m.Frame.J1939()
		covered := make([]bool, len(m.Frame.Data))
		for _, spn := range canbus.SPNsForPGN(id.PGN) {
			for b := spn.StartByte; b < spn.StartByte+spn.Length; b++ {
				covered[b] = true
			}
		}
		for i, b := range m.Frame.Data {
			if !covered[i] && b != 0xFF {
				t.Fatalf("PGN %#x byte %d = %#x, want 0xFF padding", uint32(id.PGN), i, b)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRealisticPayloadsStillFingerprint(t *testing.T) {
	// The payload mode must not disturb preprocessing: SAs decode and
	// edge sets extract exactly as with random payloads.
	v := NewVehicleB()
	cfg := v.ExtractionConfig()
	err := v.Stream(GenConfig{NumMessages: 100, Seed: 6, RealisticPayloads: true}, func(m Message) error {
		res, err := extractForTest(m.Trace, cfg)
		if err != nil {
			return err
		}
		if res != m.Frame.SA() {
			t.Fatalf("SA %#x decoded as %#x", m.Frame.SA(), res)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// extractForTest decodes a trace's source address through the normal
// preprocessing pipeline.
func extractForTest(tr analog.Trace, cfg edgeset.Config) (canbus.SourceAddress, error) {
	res, err := edgeset.Extract(tr, cfg)
	if err != nil {
		return 0, err
	}
	return res.SA, nil
}

func TestDiagnosticTrafficCarriesDM1(t *testing.T) {
	v := NewVehicleA()
	reasm := canbus.NewBAMReassembler()
	single, transfers := 0, 0
	err := v.Stream(GenConfig{NumMessages: 1500, Seed: 8, DiagnosticTraffic: true}, func(m Message) error {
		id := m.Frame.J1939()
		if id.PGN == canbus.PGNDM1 {
			single++
			if _, _, err := canbus.DecodeDM1(m.Frame.Data); err != nil {
				t.Fatalf("bad single-frame DM1: %v", err)
			}
		}
		if done, err := reasm.Feed(m.Frame); err == nil && done != nil {
			if done.PGN != canbus.PGNDM1 {
				t.Fatalf("unexpected transfer PGN %#x", uint32(done.PGN))
			}
			if _, dtcs, err := canbus.DecodeDM1(done.Payload); err != nil || len(dtcs) != 3 {
				t.Fatalf("multi-packet DM1: %v (%d DTCs)", err, len(dtcs))
			}
			transfers++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if single == 0 {
		t.Fatal("no single-frame DM1 broadcasts seen")
	}
	if transfers == 0 {
		t.Fatal("no multi-packet DM1 transfers completed")
	}
	// Diagnostic frames still fingerprint: every DM1/TP frame's SA
	// resolves to a real ECU.
	// (covered implicitly: Stream labels each with its ECU index.)
}

func TestDiagnosticTrafficOffByDefault(t *testing.T) {
	v := NewVehicleA()
	err := v.Stream(GenConfig{NumMessages: 400, Seed: 9}, func(m Message) error {
		if m.Frame.J1939().PGN == canbus.PGNDM1 {
			t.Fatal("DM1 appeared without DiagnosticTraffic")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
