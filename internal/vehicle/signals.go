package vehicle

import (
	"math"
	"math/rand"

	"vprofile/internal/canbus"
)

// signalModel evolves the physical quantities the J1939 parameter
// groups broadcast, so captures generated with RealisticPayloads carry
// decodable, physically coherent signals instead of random bytes:
// the engine idles and revs on a slow cycle, wheel speed follows it
// through the driveline, coolant warms toward thermostat temperature,
// and the pedal wanders the way a driver's foot does.
type signalModel struct {
	pedalPos float64 // %
}

// newSignalModel returns the cold-start state.
func newSignalModel() *signalModel { return &signalModel{pedalPos: 10} }

// engineRPM follows a slow acceleration/deceleration cycle around the
// pedal position.
func (m *signalModel) engineRPM(t float64) float64 {
	base := 650 + 14*m.pedalPos
	sway := 180 * math.Sin(2*math.Pi*t/37)
	rpm := base + sway
	if rpm < 600 {
		rpm = 600
	}
	if rpm > 2100 {
		rpm = 2100
	}
	return rpm
}

// wheelSpeed gears the engine speed down through a fixed driveline
// ratio (top gear, ~0.04 km/h per rpm).
func (m *signalModel) wheelSpeed(t float64) float64 {
	v := (m.engineRPM(t) - 600) * 0.055
	if v < 0 {
		return 0
	}
	return v
}

// coolantTemp warms from ambient toward the 88 °C thermostat point
// with a ten-minute time constant.
func (m *signalModel) coolantTemp(t float64) float64 {
	const ambient, regulated, tau = 20.0, 88.0, 600.0
	return regulated + (ambient-regulated)*math.Exp(-t/tau)
}

// fuelRate tracks load: litres per hour roughly proportional to rpm
// above idle plus a pedal term.
func (m *signalModel) fuelRate(t float64) float64 {
	return 2 + 0.01*(m.engineRPM(t)-600) + 0.15*m.pedalPos
}

// step advances driver behaviour (a bounded random walk on the pedal).
func (m *signalModel) step(rng *rand.Rand) {
	m.pedalPos += rng.NormFloat64() * 2
	if m.pedalPos < 0 {
		m.pedalPos = 0
	}
	if m.pedalPos > 90 {
		m.pedalPos = 90
	}
}

// payload fills a parameter group's data field from the signal state.
// Bytes not covered by a catalogued SPN carry the J1939 padding value
// 0xFF. PGNs without catalogued signals get 0xFF padding throughout.
func (m *signalModel) payload(spec MessageSpec, t float64, rng *rand.Rand) ([]byte, error) {
	m.step(rng)
	data := make([]byte, spec.DataLen)
	for i := range data {
		data[i] = 0xFF
	}
	for _, spn := range canbus.SPNsForPGN(spec.ID.PGN) {
		var value float64
		switch spn.Number {
		case canbus.SPNEngineSpeed.Number:
			value = m.engineRPM(t)
		case canbus.SPNAccelPedal.Number:
			value = m.pedalPos
		case canbus.SPNCoolantTemp.Number:
			value = m.coolantTemp(t)
		case canbus.SPNWheelSpeed.Number:
			value = m.wheelSpeed(t)
		case canbus.SPNFuelRate.Number:
			value = m.fuelRate(t)
		case canbus.SPNOutputShaftSpeed.Number:
			value = m.engineRPM(t) * 0.7
		case canbus.SPNBrakePedal.Number:
			value = 0
			if m.pedalPos < 5 && rng.Float64() < 0.3 {
				value = 20 + rng.Float64()*40
			}
		case canbus.SPNAmbientTemp.Number:
			value = 20 + rng.NormFloat64()*0.2
		default:
			continue
		}
		// Clamp into the SPN's encodable range.
		if value < spn.Min() {
			value = spn.Min()
		}
		if value > spn.Max() {
			value = spn.Max()
		}
		if err := spn.Encode(data, value); err != nil {
			return nil, err
		}
	}
	return data, nil
}
