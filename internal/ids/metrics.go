package ids

import (
	"fmt"

	"vprofile/internal/obs"
)

// Metrics is the detector stack's instrument set. Build one with
// NewMetrics and pass it through CompositeConfig; a nil Metrics keeps
// every detector path completely uninstrumented (no atomic traffic,
// no clock reads).
//
// The voltage-path instruments (ExtractSeconds, ScoreSeconds,
// Distance and the voltage verdict counters) are updated from
// VoltageVerdict, which the replay pipeline calls concurrently — they
// are all lock-free. The per-SA and sequential-detector counters are
// updated from Sequence on the single reordering goroutine.
type Metrics struct {
	// ExtractSeconds and ScoreSeconds split the stateless hot path:
	// edge-set extraction versus model classification.
	ExtractSeconds *obs.Histogram
	ScoreSeconds   *obs.Histogram
	// Distance observes the per-frame distance to the nearest cluster
	// (Mahalanobis under the default metric). Its distribution drifts
	// upward long before frames cross the alarm threshold, which makes
	// it the early-warning signal for fingerprint drift from
	// temperature or bus-load changes.
	Distance *obs.Histogram

	// Verdicts splits outcomes by detector family; SAFrames/SAAlarms
	// are the per-sender bookkeeping (Viden-style attacker
	// identification needs exactly this split).
	Verdicts *obs.CounterVec
	SAFrames *obs.CounterVec
	SAAlarms *obs.CounterVec

	// Quarantine instrumentation: state transitions by destination
	// state, and how many SAs are Degraded right now. Both stay zero
	// unless CompositeConfig.Quarantine is set.
	QuarantineTransitions *obs.CounterVec
	DegradedSAs           *obs.Gauge

	// Pre-resolved Verdicts children so the hot path never takes the
	// vector lock.
	voltageOK, voltageAnomaly, extractFailed *obs.Counter
	timingOK, timingEarly, timingFault       *obs.Counter
	transportCompleted, transportError       *obs.Counter
	alarmSuppressed                          *obs.Counter
}

// NewMetrics registers the detector-stack instruments on reg. Calling
// it twice with the same registry returns handles to the same
// underlying metrics.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{
		ExtractSeconds: reg.Histogram("vprofile_ids_extract_seconds",
			"Edge-set extraction latency per frame.", obs.LatencyBuckets()),
		ScoreSeconds: reg.Histogram("vprofile_ids_score_seconds",
			"Model classification latency per frame.", obs.LatencyBuckets()),
		Distance: reg.Histogram("vprofile_ids_voltage_distance",
			"Distance from each frame's edge set to its nearest cluster (Mahalanobis by default).",
			obs.DistanceBuckets()),
		Verdicts: reg.CounterVec("vprofile_ids_verdicts_total",
			"Verdicts by detector family and outcome.", "verdict"),
		SAFrames: reg.CounterVec("vprofile_ids_sa_frames_total",
			"Frames seen per claimed source address.", "sa"),
		SAAlarms: reg.CounterVec("vprofile_ids_sa_alarms_total",
			"Anomalous frames per claimed source address.", "sa"),
		QuarantineTransitions: reg.CounterVec("vprofile_ids_quarantine_transitions_total",
			"Per-SA quarantine state transitions by destination state.", "to"),
		DegradedSAs: reg.Gauge("vprofile_ids_quarantined_sas",
			"Source addresses currently in the Degraded quarantine state."),
	}
	m.voltageOK = m.Verdicts.With("voltage_ok")
	m.voltageAnomaly = m.Verdicts.With("voltage_anomaly")
	m.extractFailed = m.Verdicts.With("extract_failed")
	m.timingOK = m.Verdicts.With("timing_ok")
	m.timingEarly = m.Verdicts.With("timing_early")
	m.timingFault = m.Verdicts.With("timing_fault")
	m.transportCompleted = m.Verdicts.With("transport_completed")
	m.transportError = m.Verdicts.With("transport_error")
	m.alarmSuppressed = m.Verdicts.With("alarm_suppressed")
	return m
}

// SALabel formats a source address the way the per-SA metrics label
// it.
func SALabel(sa uint8) string { return saLabels[sa] }

// saLabels precomputes every source-address label: SALabel runs per
// frame on the instrumented paths, where a fmt.Sprintf would be a
// measurable slice of the replay budget.
var saLabels = func() (t [256]string) {
	for i := range t {
		t[i] = fmt.Sprintf("0x%02x", i)
	}
	return
}()
