package ids

import "sort"

// SAState is a source address's quarantine health. The composite
// tracks one per claimed SA when quarantine is enabled: sustained
// voltage-side anomalies walk a sender Healthy → Suspect → Degraded,
// and once Degraded its voltage alarms are coalesced into the state
// itself instead of being raised per frame — a sagging supply or a
// cooked transceiver would otherwise bury real alarms in spam.
type SAState uint8

const (
	SAHealthy SAState = iota
	SASuspect
	SADegraded
)

// String renders the state the way metrics labels and event details
// spell it.
func (s SAState) String() string {
	switch s {
	case SASuspect:
		return "suspect"
	case SADegraded:
		return "degraded"
	default:
		return "healthy"
	}
}

// QuarantineConfig parameterises the per-SA degradation state
// machine. The score in question is a leaky anomaly counter: each
// voltage-suspicious frame (vProfile anomaly or preprocess failure)
// adds one, each clean frame subtracts one, so isolated alarms decay
// away while sustained degradation accumulates.
type QuarantineConfig struct {
	// SuspectAfter is the score at which an SA turns Suspect
	// (default 3).
	SuspectAfter int
	// DegradeAfter is the score at which it turns Degraded and its
	// voltage alarms start coalescing (default 8; forced above
	// SuspectAfter).
	DegradeAfter int
	// RecoverAfter is the clean-frame streak that returns a Degraded
	// SA to Healthy (default 64).
	RecoverAfter int
}

func (c QuarantineConfig) withDefaults() QuarantineConfig {
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3
	}
	if c.DegradeAfter <= 0 {
		c.DegradeAfter = 8
	}
	if c.DegradeAfter <= c.SuspectAfter {
		c.DegradeAfter = c.SuspectAfter + 1
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 64
	}
	return c
}

// saQuarantine is one SA's slot in the machine.
type saQuarantine struct {
	state       SAState
	score       int
	cleanStreak int
	suppressed  int64
	transitions int
	lastChange  float64
	seen        bool
}

// quarantine is the machine itself. It is only ever touched from
// Sequence, which runs on a single goroutine, so no locking.
type quarantine struct {
	cfg      QuarantineConfig
	states   [256]saQuarantine
	degraded int
}

func newQuarantine(cfg QuarantineConfig) *quarantine {
	return &quarantine{cfg: cfg.withDefaults()}
}

// observe folds one frame's voltage-side evidence into the SA's state
// and reports the transition (prev ≠ cur when one happened) plus
// whether this frame's alarm should be suppressed. The frame that
// *causes* the Degraded transition is never suppressed — it is the
// coalesced alarm — only frames arriving while already Degraded are.
func (q *quarantine) observe(sa uint8, suspicious bool, at float64) (prev, cur SAState, suppressed bool) {
	s := &q.states[sa]
	s.seen = true
	prev = s.state
	if suspicious {
		s.cleanStreak = 0
		if s.score < q.cfg.DegradeAfter {
			s.score++
		}
		switch {
		case s.score >= q.cfg.DegradeAfter:
			s.state = SADegraded
		case s.state != SADegraded && s.score >= q.cfg.SuspectAfter:
			// Never a downgrade: Degraded is sticky until a clean streak
			// recovers it, even when the leaky score has decayed.
			s.state = SASuspect
		}
		if prev == SADegraded {
			suppressed = true
			s.suppressed++
		}
	} else {
		s.cleanStreak++
		if s.score > 0 {
			s.score--
		}
		switch s.state {
		case SADegraded:
			if s.cleanStreak >= q.cfg.RecoverAfter {
				s.state = SAHealthy
				s.score = 0
			}
		case SASuspect:
			if s.score < q.cfg.SuspectAfter {
				s.state = SAHealthy
			}
		}
	}
	if s.state != prev {
		s.transitions++
		s.lastChange = at
		switch {
		case s.state == SADegraded:
			q.degraded++
		case prev == SADegraded:
			q.degraded--
		}
	}
	return prev, s.state, suppressed
}

// QuarantineReport is one SA's quarantine bookkeeping, for end-of-run
// tables and the faults sweep.
type QuarantineReport struct {
	SA          uint8
	State       SAState
	Score       int
	CleanStreak int
	// Suppressed counts voltage alarms coalesced while Degraded.
	Suppressed int64
	// Transitions counts state changes; LastChangeSec is when the most
	// recent one happened (capture time).
	Transitions   int
	LastChangeSec float64
}

// QuarantineReports lists every SA the machine has judged that is
// either currently non-Healthy or has transitioned at least once,
// sorted by SA. Nil when quarantine is disabled or nothing happened.
func (c *Composite) QuarantineReports() []QuarantineReport {
	if c.quar == nil {
		return nil
	}
	var out []QuarantineReport
	for sa := 0; sa < 256; sa++ {
		s := &c.quar.states[sa]
		if !s.seen || (s.state == SAHealthy && s.transitions == 0) {
			continue
		}
		out = append(out, QuarantineReport{
			SA: uint8(sa), State: s.state, Score: s.score,
			CleanStreak: s.cleanStreak, Suppressed: s.suppressed,
			Transitions: s.transitions, LastChangeSec: s.lastChange,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SA < out[j].SA })
	return out
}

// DegradedSAs reports how many source addresses are currently
// quarantined (zero when quarantine is disabled).
func (c *Composite) DegradedSAs() int {
	if c.quar == nil {
		return 0
	}
	return c.quar.degraded
}
