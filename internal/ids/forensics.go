package ids

import (
	"time"

	"vprofile/internal/analog"
	"vprofile/internal/canbus"
	"vprofile/internal/core"
	"vprofile/internal/edgeset"
	"vprofile/internal/linalg"
	"vprofile/internal/obs/tracing"
)

// Forensics is the evidence VoltageVerdictTraced preserves beyond the
// verdict itself: the extracted edge-set vector and the full distance
// explanation. Both are owned exclusively by the frame (freshly
// allocated, or living in the frame's own trace storage) and never
// touched again by the detector, so the flight recorder may retain
// them without copying.
type Forensics struct {
	EdgeSet linalg.Vector
	Explain core.Explanation
}

// VoltageVerdictTraced is VoltageVerdict with spans and evidence: it
// opens "ids.extract" and "ids.score" spans on the frame's trace and
// returns the edge set and per-cluster distances alongside the
// verdict. The Detection is bit-for-bit identical to VoltageVerdict's
// (DetectExplain shares Detect's arithmetic), and metrics accounting
// — when a Metrics is configured — is identical too, so a traced
// replay reconciles exactly with an untraced one on every counter.
//
// Like VoltageVerdict it touches no mutable state and may run
// concurrently from many goroutines; the FrameTrace must be owned by
// the calling goroutine.
func (c *Composite) VoltageVerdictTraced(frame *canbus.ExtendedFrame, tr analog.Trace, ft *tracing.FrameTrace) (core.Detection, Forensics, error) {
	// One model acquisition per frame — the same hot-swap consistency
	// boundary as VoltageVerdict, so traced and untraced replays
	// straddle a swap identically.
	model := c.models.AcquireModel()
	m := c.metrics

	// Extraction begins exactly where the preceding span (the worker's
	// decode, normally) ended, and scoring begins exactly where
	// extraction ends — sharing those boundary timestamps keeps the
	// traced path at one clock read per span instead of two.
	sp := ft.StartSpanAt("ids.extract", ft.LastEnd())
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	res, err := edgeset.Extract(tr, c.extraction)
	var t1 time.Time
	if m != nil {
		t1 = time.Now()
		m.ExtractSeconds.Observe(t1.Sub(t0).Seconds())
	}
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		if m != nil {
			m.extractFailed.Inc()
		}
		return core.Detection{}, Forensics{}, err
	}
	ts := tracing.Now()
	sp.SetAttr("sa", SALabel(uint8(res.SA)))
	sp.EndAt(ts)

	sp = ft.StartSpanAt("ids.score", ts)
	det, ex := model.DetectExplainInto(res.SA, res.Set, ft.DistBuf())
	if m != nil {
		m.ScoreSeconds.Observe(time.Since(t1).Seconds())
		if det.Predict >= 0 {
			m.Distance.Observe(det.MinDist)
		}
		if det.Anomaly {
			m.voltageAnomaly.Inc()
		} else {
			m.voltageOK.Inc()
		}
	}
	sp.SetAttr("reason", det.Reason.String())
	sp.End()

	return det, Forensics{EdgeSet: res.Set, Explain: ex}, nil
}

// SequenceState snapshots the stateful half of the stack as it will
// judge the NEXT message of the given frame id — capture it just
// before Sequence to record the state a verdict was derived from.
type SequenceState struct {
	// Seen counts messages processed so far; Warmup is the training
	// length; Finalized reports whether the period monitor enforces.
	Seen      int
	Warmup    int
	Finalized bool
	// Period is the frame id's timing stream (valid when PeriodKnown).
	Period      PeriodMonitorState
	PeriodKnown bool
}

// PeriodMonitorState aliases the monitor's stream snapshot so callers
// outside ids need only this package.
type PeriodMonitorState = StreamState

// StateFor returns the sequence-detector state relevant to one frame
// id. Call from the same goroutine that calls Sequence.
func (c *Composite) StateFor(id uint32) SequenceState {
	out := SequenceState{Seen: c.seen, Warmup: c.warmup, Finalized: c.finalized}
	out.Period, out.PeriodKnown = c.period.StreamState(id)
	return out
}
