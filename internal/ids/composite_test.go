package ids_test

import (
	"testing"

	"vprofile/internal/canbus"
	"vprofile/internal/ids"
	"vprofile/internal/vehicle"
)

func newComposite(t *testing.T, v *vehicle.Vehicle, warmup int) *ids.Composite {
	t.Helper()
	m := buildModel(t, v)
	c, err := ids.NewComposite(m, ids.CompositeConfig{Extraction: v.ExtractionConfig(), Warmup: warmup})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCompositeValidation(t *testing.T) {
	v := vehicle.NewVehicleB()
	if _, err := ids.NewComposite(nil, ids.CompositeConfig{Extraction: v.ExtractionConfig()}); err == nil {
		t.Fatal("nil model accepted")
	}
	bad := v.ExtractionConfig()
	bad.BitWidth = 0
	m := buildModel(t, v)
	if _, err := ids.NewComposite(m, ids.CompositeConfig{Extraction: bad}); err == nil {
		t.Fatal("bad extraction accepted")
	}
}

func TestCompositeCleanTraffic(t *testing.T) {
	v := vehicle.NewVehicleB()
	c := newComposite(t, v, 400)
	anomalies := 0
	transfers := 0
	err := v.Stream(vehicle.GenConfig{NumMessages: 1400, Seed: 71, DiagnosticTraffic: true}, func(m vehicle.Message) error {
		r := c.Process(m.Frame, m.Trace, m.TimeSec)
		if r.Anomalous() {
			anomalies++
		}
		if r.Transfer != nil {
			transfers++
			if r.Transfer.PGN != canbus.PGNDM1 {
				t.Fatalf("transfer PGN %#x", uint32(r.Transfer.PGN))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if anomalies > 14 { // 1% of clean traffic
		t.Fatalf("%d anomalies on clean traffic", anomalies)
	}
	if transfers == 0 {
		t.Fatal("no diagnostic transfers completed")
	}
	if silent := c.SilentStreams(); len(silent) != 0 {
		t.Fatalf("clean run has %d silent streams", silent)
	}
}

func TestCompositeCatchesHijackAndFlood(t *testing.T) {
	v := vehicle.NewVehicleB()
	c := newComposite(t, v, 400)
	// Warm up with clean traffic.
	err := v.Stream(vehicle.GenConfig{NumMessages: 800, Seed: 72}, func(m vehicle.Message) error {
		c.Process(m.Frame, m.Trace, m.TimeSec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Hijack: ECU 7's hardware under ECU 2's address (continuing the
	// timeline after the warm-up capture).
	frames := []streamFrame{{ecu: 7, sa: v.ECUs[2].SAs()[0]}}
	stream, _ := busStream(t, v, frames, 73)
	det, err := ids.New(buildModel(t, v), ids.Config{Extraction: v.ExtractionConfig()})
	if err != nil {
		t.Fatal(err)
	}
	results, err := det.Push(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("%d segmented frames", len(results))
	}
	// Feed the segmented hijack frame through the composite.
	fr, err := canbus.NewJ1939Frame(canbus.J1939ID{Priority: 6, PGN: canbus.PGNBrakes, SA: v.ECUs[2].SAs()[0]}, make([]byte, 8))
	if err != nil {
		t.Fatal(err)
	}
	// Reuse the raw stream trace as the composite's input.
	r := c.Process(fr, stream, 100.0)
	if !r.Anomalous() || !r.Voltage.Anomaly {
		t.Fatalf("hijack not flagged: %+v", r.Voltage)
	}
}

func TestCompositeSilentStreamsAfterSuspension(t *testing.T) {
	v := vehicle.NewVehicleB()
	c := newComposite(t, v, 400)
	var lastVictimID uint32
	err := v.Stream(vehicle.GenConfig{NumMessages: 900, Seed: 74}, func(m vehicle.Message) error {
		if m.ECUIndex == 0 {
			lastVictimID = m.Frame.ID
		}
		c.Process(m.Frame, m.Trace, m.TimeSec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Continue the capture with ECU 0 suspended.
	err = v.Stream(vehicle.GenConfig{NumMessages: 900, Seed: 75}, func(m vehicle.Message) error {
		if m.ECUIndex == 0 {
			return nil
		}
		c.Process(m.Frame, m.Trace, m.TimeSec+10)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	silent := c.SilentStreams()
	if len(silent) == 0 {
		t.Fatal("suspension left no silent streams")
	}
	found := false
	for _, id := range silent {
		if id == lastVictimID {
			found = true
		}
	}
	if !found {
		t.Fatalf("victim id %#x not among silent streams %v", lastVictimID, silent)
	}
}
