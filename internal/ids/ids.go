// Package ids integrates vProfile into a streaming intrusion
// detection system: it consumes a continuous digitizer sample stream,
// segments it into frames at bus-idle boundaries, runs edge-set
// preprocessing and detection on each frame, and optionally feeds
// accepted messages back into the model through the online update of
// Section 5.3.
//
// The paper positions vProfile as a component "that can integrate into
// an IDS to enable message sender identification"; this package is
// that integration layer.
package ids

import (
	"errors"
	"fmt"

	"vprofile/internal/analog"
	"vprofile/internal/canbus"
	"vprofile/internal/core"
	"vprofile/internal/edgeset"
	"vprofile/internal/linalg"
)

// Result is the verdict for one segmented frame.
type Result struct {
	// SOFIndex is the absolute sample index (since the IDS started)
	// of the frame's start-of-frame crossing.
	SOFIndex  int64
	SA        canbus.SourceAddress
	Detection core.Detection
	// ExtractErr is set when preprocessing failed (garbled frame); the
	// frame counts as an anomaly of opportunity for the wider IDS.
	ExtractErr error
}

// Anomalous reports whether the frame should raise an alarm.
func (r Result) Anomalous() bool { return r.ExtractErr != nil || r.Detection.Anomaly }

// Config parameterises the streaming detector.
type Config struct {
	Extraction edgeset.Config
	// UpdateBatch, when positive, enables the Section 5.3 online
	// model update: every UpdateBatch accepted messages are folded
	// back into the model.
	UpdateBatch int
	// MaxFrameSamples bounds a segmented frame (default: 160 bit
	// widths, comfortably above the longest stuffed frame).
	MaxFrameSamples int
}

// Stats counts what the detector has seen.
type Stats struct {
	Frames     int64
	Anomalies  int64
	Updates    int64 // online update batches applied
	ExtractErr int64
}

// IDS is the streaming detector. It is not safe for concurrent use;
// wrap it if multiple goroutines feed samples.
type IDS struct {
	model *core.Model
	cfg   Config

	buf     analog.Trace
	absBase int64 // absolute index of buf[0]
	batch   []core.Sample
	stats   Stats
	endIdle int // samples of idle that terminate a frame
}

// New builds a streaming detector around a trained model.
func New(model *core.Model, cfg Config) (*IDS, error) {
	if model == nil {
		return nil, errors.New("ids: nil model")
	}
	if err := cfg.Extraction.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxFrameSamples <= 0 {
		cfg.MaxFrameSamples = 160 * cfg.Extraction.BitWidth
	}
	return &IDS{
		model: model,
		cfg:   cfg,
		// EOF (7) + intermission (3) recessive bits mark end of frame;
		// 9 bit times of idle cannot occur inside a stuffed frame.
		endIdle: 9 * cfg.Extraction.BitWidth,
	}, nil
}

// Stats returns a copy of the running counters.
func (s *IDS) Stats() Stats { return s.stats }

// Push feeds a chunk of digitizer samples and returns the verdicts of
// every frame completed within it. Partial frames are buffered until
// more samples arrive.
func (s *IDS) Push(samples analog.Trace) ([]Result, error) {
	s.buf = append(s.buf, samples...)
	var out []Result
	for {
		res, set, consumed, complete := s.scanOne()
		if !complete {
			break
		}
		if res != nil {
			out = append(out, *res)
			if err := s.account(*res, set); err != nil {
				return out, err
			}
		}
		s.buf = s.buf[consumed:]
		s.absBase += int64(consumed)
	}
	// Bound the buffer: without a SOF in sight, idle samples can be
	// discarded except a one-bit tail.
	if len(s.buf) > s.cfg.MaxFrameSamples*2 {
		drop := len(s.buf) - s.cfg.MaxFrameSamples
		s.buf = s.buf[drop:]
		s.absBase += int64(drop)
	}
	return out, nil
}

// scanOne attempts to segment and classify one complete frame from the
// front of the buffer. It returns (nil, nil, n, true) to discard n
// idle samples, (res, set, n, true) for a completed frame of n
// samples, or (nil, nil, 0, false) when more input is needed.
func (s *IDS) scanOne() (*Result, linalg.Vector, int, bool) {
	th := s.cfg.Extraction.BitThreshold
	// Find the SOF crossing.
	sof := -1
	for i, v := range s.buf {
		if v >= th {
			sof = i
			break
		}
	}
	if sof < 0 {
		// All idle: keep one bit width of tail for edge context.
		keep := s.cfg.Extraction.BitWidth
		if len(s.buf) > keep {
			return nil, nil, len(s.buf) - keep, true
		}
		return nil, nil, 0, false
	}
	// Find the end of frame: endIdle consecutive recessive samples
	// after the SOF.
	run := 0
	end := -1
	for i := sof; i < len(s.buf); i++ {
		if s.buf[i] < th {
			run++
			if run >= s.endIdle {
				end = i + 1
				break
			}
		} else {
			run = 0
		}
		if i-sof > s.cfg.MaxFrameSamples {
			end = i + 1 // runaway frame; classify what we have
			break
		}
	}
	if end < 0 {
		return nil, nil, 0, false // frame still in flight
	}
	// The extractor wants some idle lead-in before the SOF.
	lead := sof - s.cfg.Extraction.BitWidth
	if lead < 0 {
		lead = 0
	}
	frame := s.buf[lead:end]
	res := &Result{SOFIndex: s.absBase + int64(sof)}
	var set linalg.Vector
	er, err := edgeset.Extract(frame, s.cfg.Extraction)
	if err != nil {
		res.ExtractErr = err
	} else {
		res.SA = er.SA
		res.Detection = s.model.Detect(er.SA, er.Set)
		set = er.Set
	}
	return res, set, end, true
}

// account updates counters and, for accepted messages, the online
// model (Algorithm 4) once a full batch accumulates.
func (s *IDS) account(r Result, set linalg.Vector) error {
	s.stats.Frames++
	if r.ExtractErr != nil {
		s.stats.ExtractErr++
		s.stats.Anomalies++
		return nil
	}
	if r.Detection.Anomaly {
		s.stats.Anomalies++
		return nil
	}
	if s.cfg.UpdateBatch > 0 {
		s.batch = append(s.batch, core.Sample{SA: r.SA, Set: set})
		if len(s.batch) >= s.cfg.UpdateBatch {
			if _, err := s.model.Update(s.batch); err != nil {
				return fmt.Errorf("ids: online update: %w", err)
			}
			s.stats.Updates++
			s.batch = s.batch[:0]
		}
	}
	return nil
}
