package ids

import "testing"

// White-box tests for the per-SA quarantine state machine.

func TestQuarantineWalkAndRecover(t *testing.T) {
	q := newQuarantine(QuarantineConfig{SuspectAfter: 2, DegradeAfter: 4, RecoverAfter: 3})
	at := 0.0
	step := func(suspicious bool) (SAState, SAState, bool) {
		at += 0.1
		return q.observe(0x42, suspicious, at)
	}

	// Two anomalies: Healthy → Suspect.
	if _, cur, _ := step(true); cur != SAHealthy {
		t.Fatalf("state after 1 anomaly = %v", cur)
	}
	prev, cur, sup := step(true)
	if prev != SAHealthy || cur != SASuspect || sup {
		t.Fatalf("after 2 anomalies: %v→%v sup=%v", prev, cur, sup)
	}
	// Two more: Suspect → Degraded; the transition frame itself is not
	// suppressed.
	step(true)
	prev, cur, sup = step(true)
	if prev != SASuspect || cur != SADegraded || sup {
		t.Fatalf("after 4 anomalies: %v→%v sup=%v", prev, cur, sup)
	}
	if q.degraded != 1 {
		t.Fatalf("degraded count = %d", q.degraded)
	}
	// While Degraded, anomalies are suppressed.
	if _, cur, sup := step(true); cur != SADegraded || !sup {
		t.Fatalf("degraded anomaly: state=%v sup=%v", cur, sup)
	}
	// Recovery needs RecoverAfter consecutive clean frames.
	step(false)
	step(false)
	prev, cur, _ = step(false)
	if prev != SADegraded || cur != SAHealthy {
		t.Fatalf("after clean streak: %v→%v", prev, cur)
	}
	if q.degraded != 0 {
		t.Fatalf("degraded count after recovery = %d", q.degraded)
	}
	s := q.states[0x42]
	if s.suppressed != 1 || s.transitions != 3 {
		t.Fatalf("bookkeeping: suppressed=%d transitions=%d", s.suppressed, s.transitions)
	}
}

func TestQuarantineScoreDecays(t *testing.T) {
	q := newQuarantine(QuarantineConfig{SuspectAfter: 3, DegradeAfter: 6, RecoverAfter: 8})
	// Alternating anomaly/clean never accumulates past Suspect.
	for i := 0; i < 200; i++ {
		_, cur, sup := q.observe(1, i%2 == 0, float64(i))
		if cur == SADegraded || sup {
			t.Fatalf("alternating traffic degraded at step %d", i)
		}
	}
	// A clean-streak interruption resets recovery, not the state.
	q2 := newQuarantine(QuarantineConfig{SuspectAfter: 2, DegradeAfter: 3, RecoverAfter: 4})
	for i := 0; i < 5; i++ {
		q2.observe(2, true, float64(i))
	}
	q2.observe(2, false, 10)
	q2.observe(2, false, 11)
	q2.observe(2, true, 12) // streak broken
	q2.observe(2, false, 13)
	q2.observe(2, false, 14)
	q2.observe(2, false, 15)
	if st := q2.states[2].state; st != SADegraded {
		t.Fatalf("broken streak still recovered: %v", st)
	}
}

func TestQuarantineDefaults(t *testing.T) {
	c := QuarantineConfig{}.withDefaults()
	if c.SuspectAfter != 3 || c.DegradeAfter != 8 || c.RecoverAfter != 64 {
		t.Fatalf("defaults = %+v", c)
	}
	// DegradeAfter is forced above SuspectAfter.
	c = QuarantineConfig{SuspectAfter: 9, DegradeAfter: 4}.withDefaults()
	if c.DegradeAfter <= c.SuspectAfter {
		t.Fatalf("DegradeAfter %d not above SuspectAfter %d", c.DegradeAfter, c.SuspectAfter)
	}
}

func TestSAStateString(t *testing.T) {
	if SAHealthy.String() != "healthy" || SASuspect.String() != "suspect" || SADegraded.String() != "degraded" {
		t.Fatal("state strings drifted")
	}
}
