package ids_test

import (
	"sync"
	"testing"

	"vprofile/internal/core"
	"vprofile/internal/vehicle"
)

// TestVoltageVerdictConcurrent hammers VoltageVerdict from many
// goroutines over the same Composite — the shape the replay pipeline
// produces — and checks every concurrent verdict is bit-identical to
// its sequential counterpart. Under -race this also proves the pooled
// extraction scratch buffers never cross goroutines while in use.
func TestVoltageVerdictConcurrent(t *testing.T) {
	v := vehicle.NewVehicleB()
	c := newComposite(t, v, 400)

	var msgs []vehicle.Message
	err := v.Stream(vehicle.GenConfig{NumMessages: 600, Seed: 17}, func(m vehicle.Message) error {
		msgs = append(msgs, m)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	want := make([]core.Detection, len(msgs))
	wantErr := make([]error, len(msgs))
	for i, m := range msgs {
		want[i], wantErr[i] = c.VoltageVerdict(m.Frame, m.Trace)
	}

	const workers = 8
	got := make([]core.Detection, len(msgs))
	gotErr := make([]error, len(msgs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(msgs); i += workers {
				got[i], gotErr[i] = c.VoltageVerdict(msgs[i].Frame, msgs[i].Trace)
			}
		}(w)
	}
	wg.Wait()

	for i := range msgs {
		if (wantErr[i] == nil) != (gotErr[i] == nil) {
			t.Fatalf("msg %d: sequential err %v, concurrent err %v", i, wantErr[i], gotErr[i])
		}
		if got[i] != want[i] {
			t.Fatalf("msg %d: concurrent verdict %+v, sequential %+v", i, got[i], want[i])
		}
	}
}
