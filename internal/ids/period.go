package ids

import (
	"errors"
	"math"
)

// PeriodMonitor detects anomalies in message timing — the complement
// the paper recommends for attacks vProfile cannot see: "the current
// implementation of vProfile cannot detect when a hijacked ECU sends
// messages with SAs that are within its normal operating set. For
// additional coverage, we recommend using vProfile in an IDS that can
// detect anomalies based on other message properties, such as the
// period."
//
// Training learns each (identifier)'s inter-arrival distribution;
// monitoring flags messages arriving implausibly early (injection
// floods halve the effective period) or streams falling silent
// (suspension attacks).
type PeriodMonitor struct {
	// TolSigmas is the acceptance band around the learned period in
	// standard deviations (default 8).
	TolSigmas float64
	// MinSamples is the number of training gaps required before an ID
	// is enforced (default 8).
	MinSamples int

	streams map[uint32]*periodStream
}

type periodStream struct {
	n        int
	mean     float64
	m2       float64
	last     float64
	enforced bool
}

// PeriodVerdict classifies one message's timing.
type PeriodVerdict int

// Verdicts.
const (
	PeriodOK PeriodVerdict = iota
	PeriodUnknownID
	PeriodTooEarly
	PeriodGap // arrived after a suspiciously long silence
)

// String names the verdict.
func (v PeriodVerdict) String() string {
	switch v {
	case PeriodOK:
		return "ok"
	case PeriodUnknownID:
		return "unknown-id"
	case PeriodTooEarly:
		return "too-early"
	case PeriodGap:
		return "gap"
	default:
		return "verdict?"
	}
}

// NewPeriodMonitor returns a monitor with defaults.
func NewPeriodMonitor() *PeriodMonitor {
	return &PeriodMonitor{TolSigmas: 8, MinSamples: 8, streams: make(map[uint32]*periodStream)}
}

// Learn feeds one training observation: frame identifier and arrival
// time in seconds (monotonic, per capture).
func (m *PeriodMonitor) Learn(id uint32, at float64) {
	st, ok := m.streams[id]
	if !ok {
		m.streams[id] = &periodStream{last: at}
		return
	}
	gap := at - st.last
	st.last = at
	if gap <= 0 {
		return
	}
	st.n++
	d := gap - st.mean
	st.mean += d / float64(st.n)
	st.m2 += d * (gap - st.mean)
	if st.n >= m.MinSamples {
		st.enforced = true
	}
}

// Finalize resets the per-stream arrival clocks so monitoring can
// start on a fresh capture.
func (m *PeriodMonitor) Finalize() {
	for _, st := range m.streams {
		st.last = math.NaN()
	}
}

// Check classifies a live message's arrival and updates the stream
// clock. Identifiers never seen in training report PeriodUnknownID.
func (m *PeriodMonitor) Check(id uint32, at float64) (PeriodVerdict, error) {
	if len(m.streams) == 0 {
		return PeriodOK, errors.New("ids: period monitor has no training data")
	}
	st, ok := m.streams[id]
	if !ok {
		return PeriodUnknownID, nil
	}
	if math.IsNaN(st.last) {
		st.last = at
		return PeriodOK, nil
	}
	gap := at - st.last
	st.last = at
	if !st.enforced {
		return PeriodOK, nil
	}
	sd := math.Sqrt(st.m2 / float64(st.n))
	tol := m.TolSigmas * sd
	// Scheduling jitter bounds from training; also keep an absolute
	// floor of 40% of the learned period so degenerate zero-variance
	// streams retain a usable acceptance band without swallowing a
	// flood that halves the effective period.
	if minTol := st.mean * 0.4; tol < minTol {
		tol = minTol
	}
	switch {
	case gap < st.mean-tol:
		return PeriodTooEarly, nil
	case gap > 3*st.mean+tol:
		return PeriodGap, nil
	default:
		return PeriodOK, nil
	}
}

// StreamState is the learned timing state of one identifier — the
// numbers Check judges against, exposed so the flight recorder can
// preserve them alongside a timing verdict.
type StreamState struct {
	Samples   int     // training gaps folded in
	Mean      float64 // learned mean period (seconds)
	Tolerance float64 // acceptance band Check applies (TolSigmas·σ, floored)
	Last      float64 // previous arrival time (NaN right after Finalize)
	Enforced  bool    // whether Check enforces this stream yet
}

// StreamState reports the timing state of an identifier, computing
// the same tolerance Check would apply. The second return is false
// for identifiers never seen in training.
func (m *PeriodMonitor) StreamState(id uint32) (StreamState, bool) {
	st, ok := m.streams[id]
	if !ok {
		return StreamState{}, false
	}
	out := StreamState{Samples: st.n, Mean: st.mean, Last: st.last, Enforced: st.enforced}
	if st.n > 0 {
		tol := m.TolSigmas * math.Sqrt(st.m2/float64(st.n))
		if minTol := st.mean * 0.4; tol < minTol {
			tol = minTol
		}
		out.Tolerance = tol
	}
	return out, true
}

// Period returns the learned mean period of an identifier.
func (m *PeriodMonitor) Period(id uint32) (float64, bool) {
	st, ok := m.streams[id]
	if !ok || !st.enforced {
		return 0, false
	}
	return st.mean, true
}

// SweepSilent reports identifiers that have fallen silent: enforced
// streams whose last arrival is further in the past than several
// learned periods at time asOf. This is how a suspension attack — an
// absence no per-message detector can see — surfaces.
func (m *PeriodMonitor) SweepSilent(asOf float64) []uint32 {
	var out []uint32
	for id, st := range m.streams {
		if !st.enforced {
			continue
		}
		// A stream never heard from since Finalize is silent outright.
		if math.IsNaN(st.last) || asOf-st.last > 5*st.mean {
			out = append(out, id)
		}
	}
	return out
}
