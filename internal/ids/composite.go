package ids

import (
	"errors"
	"sync"
	"time"

	"vprofile/internal/analog"
	"vprofile/internal/canbus"
	"vprofile/internal/core"
	"vprofile/internal/edgeset"
	"vprofile/internal/obs"
)

// Composite fuses the detector families into the full monitoring stack
// the paper's conclusion recommends: vProfile voltage fingerprinting
// for sender verification, the period monitor for timing anomalies the
// voltage domain cannot see, and J1939 transport reassembly so
// diagnostic traffic decodes instead of cluttering alerts. It consumes
// per-message records (frame + trace + timestamp) — the natural unit a
// capture replay or a segmenting front end produces.
type Composite struct {
	models     ModelProvider
	extraction edgeset.Config
	period     *PeriodMonitor
	reasm      *canbus.BAMReassembler

	warmup    int
	seen      int
	finalized bool
	lastAt    float64

	// quar is the per-SA quarantine machine; nil keeps quarantine off
	// and every verdict exactly as before. onQuar, when set, is told
	// about each state transition.
	quar   *quarantine
	onQuar func(QuarantineChange)

	// metrics is optional instrumentation; nil means no accounting at
	// all. The per-SA counter caches resolve each source address's
	// vector child once, so steady-state accounting from Sequence is a
	// plain array index plus an atomic add.
	metrics  *Metrics
	saFrames [256]*obs.Counter
	saAlarms [256]*obs.Counter

	// scratch pools per-goroutine extraction buffers for the concurrent
	// VoltageVerdict hot path. Safe because core.Detection retains
	// nothing from the extraction Result; the traced forensic path
	// (which does retain the edge set) keeps the allocating Extract.
	scratch sync.Pool
}

// ModelProvider hands out the model a frame's verdict is scored
// against. The trivial provider wraps one fixed model; a hot-swap
// holder (internal/engine.ModelStore) may return a newer model over
// time, letting Chapter-5-style profile updates deploy without
// restarting the monitor.
//
// Consistency boundary: the composite calls AcquireModel exactly once
// per frame, at the top of VoltageVerdict/VoltageVerdictTraced, and
// scores that entire frame against the returned model. One frame is
// therefore always judged by a single model version end to end;
// frames in flight across a swap may score against either version,
// but never a mix. AcquireModel must be safe for concurrent use and
// the returned model immutable — swap by replacing the pointer, never
// by mutating a model a verdict might be reading.
type ModelProvider interface {
	AcquireModel() *core.Model
}

// fixedModel is the no-swap provider NewComposite wraps a plain model
// in: one pointer load away from the pre-provider behaviour.
type fixedModel struct{ m *core.Model }

func (f fixedModel) AcquireModel() *core.Model { return f.m }

// CompositeConfig parameterises the stack.
type CompositeConfig struct {
	Extraction edgeset.Config
	// Models, when non-nil, overrides the fixed model passed to
	// NewComposite (which may then be nil) — the hook hot-swappable
	// model stores plug into.
	Models ModelProvider
	// Warmup is the number of leading messages that train the period
	// monitor before it enforces (default 500).
	Warmup int
	// Metrics, when non-nil, makes the stack account every verdict
	// (see NewMetrics). Instrumentation never changes a verdict.
	Metrics *Metrics
	// Quarantine, when non-nil, enables the per-SA degradation state
	// machine: senders whose voltage verdicts stay suspicious are
	// walked to Degraded and their subsequent voltage alarms coalesce
	// into that state (CompositeResult.Suppressed) instead of firing
	// per frame. Anomalous() is unaffected; alarm-routing callers
	// should switch to Alarm().
	Quarantine *QuarantineConfig
	// OnQuarantine, when non-nil, receives one structured notification
	// per quarantine state transition — the hook observability layers
	// (incident severity routing, per-bus health) use to follow the
	// machine without polling QuarantineReports. Called synchronously
	// from Sequence, so it must be cheap and must not call back into
	// the composite.
	OnQuarantine func(QuarantineChange)
}

// QuarantineChange describes one quarantine state transition, as
// delivered to CompositeConfig.OnQuarantine.
type QuarantineChange struct {
	SA   uint8
	From SAState
	To   SAState
	// AtSec is the capture time of the frame that caused the
	// transition.
	AtSec float64
	// Degraded is the machine's total degraded-SA occupancy after the
	// transition.
	Degraded int
}

// NewComposite builds the stack around a trained vProfile model (or,
// with CompositeConfig.Models set, a hot-swappable model provider).
func NewComposite(model *core.Model, cfg CompositeConfig) (*Composite, error) {
	models := cfg.Models
	if models == nil {
		if model == nil {
			return nil, errors.New("ids: nil model")
		}
		models = fixedModel{model}
	}
	if err := cfg.Extraction.Validate(); err != nil {
		return nil, err
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 500
	}
	c := &Composite{
		models:     models,
		extraction: cfg.Extraction,
		period:     NewPeriodMonitor(),
		reasm:      canbus.NewBAMReassembler(),
		warmup:     cfg.Warmup,
		metrics:    cfg.Metrics,
	}
	if cfg.Quarantine != nil {
		c.quar = newQuarantine(*cfg.Quarantine)
		c.onQuar = cfg.OnQuarantine
	}
	return c, nil
}

// CompositeResult is the fused verdict for one message.
type CompositeResult struct {
	// Voltage is the vProfile verdict; ExtractErr is set when the
	// trace would not preprocess (in which case Voltage is zero and
	// must not be interpreted).
	Voltage    core.Detection
	ExtractErr error
	// Timing is the period monitor's verdict (PeriodOK during warmup).
	// TimingErr reports a monitor fault — the monitor could not judge
	// this message at all (e.g. no training data) — not evidence
	// against the message itself.
	Timing    PeriodVerdict
	TimingErr error
	// Transfer is non-nil when this frame completed a multi-packet
	// transport session. TransferErr reports a malformed or
	// out-of-sequence transport frame, which aborts that source's
	// session.
	Transfer    *canbus.Completed
	TransferErr error

	// Quarantine bookkeeping (all zero when quarantine is disabled):
	// SAState is the sender's state after this verdict folded in,
	// PrevSAState the state before it (they differ exactly on a
	// transition), and Suppressed marks a voltage alarm coalesced
	// because the sender was already Degraded.
	SAState     SAState
	PrevSAState SAState
	Suppressed  bool
}

// Anomalous reports whether any detector family flagged the message.
// A TransferErr counts: a malformed transport frame is exactly the
// kind of protocol corruption an injected or fuzzing attacker
// produces. A TimingErr does not — it means the monitor abstained,
// not that the message misbehaved.
func (r CompositeResult) Anomalous() bool {
	return r.ExtractErr != nil || r.Voltage.Anomaly || r.Timing == PeriodTooEarly || r.TransferErr != nil
}

// voltageSuspicious is the per-SA analog evidence quarantine scores:
// a vProfile anomaly, or a trace too mangled to preprocess.
func (r CompositeResult) voltageSuspicious() bool {
	return r.ExtractErr != nil || r.Voltage.Anomaly
}

// Alarm reports whether this verdict should raise an alarm, after
// quarantine coalescing: a Suppressed result's voltage evidence is
// folded into its sender's Degraded state, but timing and transport
// anomalies (bus-level, not per-sender-analog) still fire. With
// quarantine disabled, Alarm equals Anomalous.
func (r CompositeResult) Alarm() bool {
	if r.Suppressed {
		return r.Timing == PeriodTooEarly || r.TransferErr != nil
	}
	return r.Anomalous()
}

// QuarantineChanged reports whether this verdict moved its sender's
// quarantine state.
func (r CompositeResult) QuarantineChanged() bool { return r.SAState != r.PrevSAState }

// VoltageVerdict runs the stateless half of the stack — edge-set
// extraction and vProfile classification — for one message. It
// touches no mutable state, so calls may run concurrently from many
// goroutines (the replay pipeline fans it out across a worker pool).
// The frame is accepted alongside the trace because the verdict
// conceptually belongs to the frame; the claimed source address is
// decoded from the analog trace itself.
//
// The model is acquired from the provider once, up front — the
// hot-swap consistency boundary documented on ModelProvider.
func (c *Composite) VoltageVerdict(frame *canbus.ExtendedFrame, tr analog.Trace) (core.Detection, error) {
	model := c.models.AcquireModel()
	sc, _ := c.scratch.Get().(*edgeset.Scratch)
	if sc == nil {
		sc = new(edgeset.Scratch)
	}
	defer c.scratch.Put(sc)
	m := c.metrics
	if m == nil {
		res, err := edgeset.ExtractInto(tr, c.extraction, sc)
		if err != nil {
			return core.Detection{}, err
		}
		return model.Detect(res.SA, res.Set), nil
	}

	t0 := time.Now()
	res, err := edgeset.ExtractInto(tr, c.extraction, sc)
	t1 := time.Now()
	m.ExtractSeconds.Observe(t1.Sub(t0).Seconds())
	if err != nil {
		m.extractFailed.Inc()
		return core.Detection{}, err
	}
	det := model.Detect(res.SA, res.Set)
	m.ScoreSeconds.Observe(time.Since(t1).Seconds())
	if det.Predict >= 0 {
		m.Distance.Observe(det.MinDist)
	}
	if det.Anomaly {
		m.voltageAnomaly.Inc()
	} else {
		m.voltageOK.Inc()
	}
	return det, nil
}

// Sequence runs the stateful half of the stack — period monitoring
// and transport reassembly — folding in a voltage verdict previously
// computed by VoltageVerdict. Calls must happen in message arrival
// order from a single goroutine; the replay pipeline guarantees this
// with its reordering stage, so composite verdicts are identical to
// the sequential Process path.
func (c *Composite) Sequence(frame *canbus.ExtendedFrame, at float64, voltage core.Detection, extractErr error) CompositeResult {
	out := CompositeResult{Voltage: voltage, ExtractErr: extractErr}
	c.lastAt = at

	c.seen++
	if c.seen <= c.warmup {
		c.period.Learn(frame.ID, at)
		if c.seen == c.warmup {
			c.period.Finalize()
			c.finalized = true
		}
	} else if c.finalized {
		out.Timing, out.TimingErr = c.period.Check(frame.ID, at)
		if m := c.metrics; m != nil {
			switch {
			case out.TimingErr != nil:
				m.timingFault.Inc()
			case out.Timing == PeriodTooEarly:
				m.timingEarly.Inc()
			default:
				m.timingOK.Inc()
			}
		}
	}

	out.Transfer, out.TransferErr = c.reasm.Feed(frame)

	if c.quar != nil {
		prev, cur, suppressed := c.quar.observe(uint8(frame.SA()), out.voltageSuspicious(), at)
		out.PrevSAState, out.SAState, out.Suppressed = prev, cur, suppressed
		if m := c.metrics; m != nil {
			if suppressed {
				m.alarmSuppressed.Inc()
			}
			if cur != prev {
				m.QuarantineTransitions.With(cur.String()).Inc()
				m.DegradedSAs.Set(int64(c.quar.degraded))
			}
		}
		if cur != prev && c.onQuar != nil {
			c.onQuar(QuarantineChange{
				SA: uint8(frame.SA()), From: prev, To: cur,
				AtSec: at, Degraded: c.quar.degraded,
			})
		}
	}

	if m := c.metrics; m != nil {
		if out.Transfer != nil {
			m.transportCompleted.Inc()
		}
		if out.TransferErr != nil {
			m.transportError.Inc()
		}
		sa := uint8(frame.SA())
		fc := c.saFrames[sa]
		if fc == nil {
			fc = m.SAFrames.With(SALabel(sa))
			c.saFrames[sa] = fc
		}
		fc.Inc()
		if out.Anomalous() {
			ac := c.saAlarms[sa]
			if ac == nil {
				ac = m.SAAlarms.With(SALabel(sa))
				c.saAlarms[sa] = ac
			}
			ac.Inc()
		}
	}
	return out
}

// Process classifies one message. It is VoltageVerdict followed by
// Sequence; the concurrent pipeline composes the same two halves.
func (c *Composite) Process(frame *canbus.ExtendedFrame, tr analog.Trace, at float64) CompositeResult {
	det, err := c.VoltageVerdict(frame, tr)
	return c.Sequence(frame, at, det, err)
}

// SilentStreams reports identifiers that have gone quiet — the
// suspension-attack signal. Call it periodically or at end of capture.
func (c *Composite) SilentStreams() []uint32 {
	if !c.finalized {
		return nil
	}
	return c.period.SweepSilent(c.lastAt)
}
