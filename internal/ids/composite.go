package ids

import (
	"errors"

	"vprofile/internal/analog"
	"vprofile/internal/canbus"
	"vprofile/internal/core"
	"vprofile/internal/edgeset"
)

// Composite fuses the detector families into the full monitoring stack
// the paper's conclusion recommends: vProfile voltage fingerprinting
// for sender verification, the period monitor for timing anomalies the
// voltage domain cannot see, and J1939 transport reassembly so
// diagnostic traffic decodes instead of cluttering alerts. It consumes
// per-message records (frame + trace + timestamp) — the natural unit a
// capture replay or a segmenting front end produces.
type Composite struct {
	model      *core.Model
	extraction edgeset.Config
	period     *PeriodMonitor
	reasm      *canbus.BAMReassembler

	warmup    int
	seen      int
	finalized bool
	lastAt    float64
}

// CompositeConfig parameterises the stack.
type CompositeConfig struct {
	Extraction edgeset.Config
	// Warmup is the number of leading messages that train the period
	// monitor before it enforces (default 500).
	Warmup int
}

// NewComposite builds the stack around a trained vProfile model.
func NewComposite(model *core.Model, cfg CompositeConfig) (*Composite, error) {
	if model == nil {
		return nil, errors.New("ids: nil model")
	}
	if err := cfg.Extraction.Validate(); err != nil {
		return nil, err
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 500
	}
	return &Composite{
		model:      model,
		extraction: cfg.Extraction,
		period:     NewPeriodMonitor(),
		reasm:      canbus.NewBAMReassembler(),
		warmup:     cfg.Warmup,
	}, nil
}

// CompositeResult is the fused verdict for one message.
type CompositeResult struct {
	// Voltage is the vProfile verdict; ExtractErr is set when the
	// trace would not preprocess.
	Voltage    core.Detection
	ExtractErr error
	// Timing is the period monitor's verdict (PeriodOK during warmup).
	Timing PeriodVerdict
	// Transfer is non-nil when this frame completed a multi-packet
	// transport session.
	Transfer *canbus.Completed
}

// Anomalous reports whether any detector family flagged the message.
func (r CompositeResult) Anomalous() bool {
	return r.ExtractErr != nil || r.Voltage.Anomaly || r.Timing == PeriodTooEarly
}

// Process classifies one message.
func (c *Composite) Process(frame *canbus.ExtendedFrame, tr analog.Trace, at float64) CompositeResult {
	var out CompositeResult
	c.lastAt = at

	res, err := edgeset.Extract(tr, c.extraction)
	if err != nil {
		out.ExtractErr = err
	} else {
		out.Voltage = c.model.Detect(res.SA, res.Set)
	}

	c.seen++
	if c.seen <= c.warmup {
		c.period.Learn(frame.ID, at)
		if c.seen == c.warmup {
			c.period.Finalize()
			c.finalized = true
		}
	} else if c.finalized {
		if v, err := c.period.Check(frame.ID, at); err == nil {
			out.Timing = v
		}
	}

	if done, err := c.reasm.Feed(frame); err == nil {
		out.Transfer = done
	}
	return out
}

// SilentStreams reports identifiers that have gone quiet — the
// suspension-attack signal. Call it periodically or at end of capture.
func (c *Composite) SilentStreams() []uint32 {
	if !c.finalized {
		return nil
	}
	return c.period.SweepSilent(c.lastAt)
}
