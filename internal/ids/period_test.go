package ids_test

import (
	"math/rand"
	"testing"

	"vprofile/internal/ids"
	"vprofile/internal/vehicle"
)

func trainedPeriodMonitor(t *testing.T, period, jitter float64, n int, seed int64) *ids.PeriodMonitor {
	t.Helper()
	m := ids.NewPeriodMonitor()
	rng := rand.New(rand.NewSource(seed))
	at := 0.0
	for i := 0; i < n; i++ {
		at += period + rng.NormFloat64()*jitter
		m.Learn(0x100, at)
	}
	m.Finalize()
	return m
}

func TestPeriodMonitorLearnsPeriod(t *testing.T) {
	m := trainedPeriodMonitor(t, 0.020, 0.0002, 200, 1)
	p, ok := m.Period(0x100)
	if !ok {
		t.Fatal("period not enforced after 200 samples")
	}
	if p < 0.019 || p > 0.021 {
		t.Fatalf("learned period %v", p)
	}
	if _, ok := m.Period(0x999); ok {
		t.Fatal("unknown id reported a period")
	}
}

func TestPeriodMonitorAcceptsNominalTraffic(t *testing.T) {
	m := trainedPeriodMonitor(t, 0.020, 0.0002, 200, 2)
	rng := rand.New(rand.NewSource(3))
	at := 100.0
	for i := 0; i < 500; i++ {
		at += 0.020 + rng.NormFloat64()*0.0002
		v, err := m.Check(0x100, at)
		if err != nil {
			t.Fatal(err)
		}
		if v != ids.PeriodOK {
			t.Fatalf("message %d flagged %v", i, v)
		}
	}
}

func TestPeriodMonitorFlagsInjectionFlood(t *testing.T) {
	m := trainedPeriodMonitor(t, 0.020, 0.0002, 200, 4)
	// An attacker injects between the legitimate messages: effective
	// period halves.
	at := 100.0
	if _, err := m.Check(0x100, at); err != nil {
		t.Fatal(err)
	}
	flagged := 0
	for i := 0; i < 20; i++ {
		at += 0.010
		v, err := m.Check(0x100, at)
		if err != nil {
			t.Fatal(err)
		}
		if v == ids.PeriodTooEarly {
			flagged++
		}
	}
	if flagged < 18 {
		t.Fatalf("only %d/20 injected messages flagged", flagged)
	}
}

func TestPeriodMonitorFlagsSuspension(t *testing.T) {
	m := trainedPeriodMonitor(t, 0.020, 0.0002, 200, 5)
	if _, err := m.Check(0x100, 100.0); err != nil {
		t.Fatal(err)
	}
	// The stream falls silent for half a second (suspension attack),
	// then resumes.
	v, err := m.Check(0x100, 100.5)
	if err != nil {
		t.Fatal(err)
	}
	if v != ids.PeriodGap {
		t.Fatalf("post-silence verdict %v", v)
	}
}

func TestPeriodMonitorUnknownID(t *testing.T) {
	m := trainedPeriodMonitor(t, 0.020, 0.0002, 200, 6)
	v, err := m.Check(0x777, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != ids.PeriodUnknownID {
		t.Fatalf("verdict %v", v)
	}
}

func TestPeriodMonitorUntrained(t *testing.T) {
	m := ids.NewPeriodMonitor()
	if _, err := m.Check(1, 1); err == nil {
		t.Fatal("untrained monitor accepted a check")
	}
}

func TestPeriodMonitorOnVehicleTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("needs traffic generation")
	}
	v := vehicle.NewVehicleA()
	m := ids.NewPeriodMonitor()
	err := v.Stream(vehicle.GenConfig{NumMessages: 3000, Seed: 60}, func(msg vehicle.Message) error {
		m.Learn(msg.Frame.ID, msg.TimeSec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Finalize()
	// Fast streams must be enforced with plausible periods.
	if p, ok := m.Period(v.ECUs[0].Messages[0].ID.MustEncode()); !ok || p < 0.015 || p > 0.030 {
		t.Fatalf("EEC1 period %v (enforced %v)", p, ok)
	}
	// Clean replay produces few alarms.
	alarms := 0
	total := 0
	err = v.Stream(vehicle.GenConfig{NumMessages: 3000, Seed: 61}, func(msg vehicle.Message) error {
		verdict, err := m.Check(msg.Frame.ID, msg.TimeSec)
		if err != nil {
			return err
		}
		total++
		if verdict == ids.PeriodTooEarly {
			alarms++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if alarms > total/50 {
		t.Fatalf("%d/%d early-arrival false alarms on clean traffic", alarms, total)
	}
}
