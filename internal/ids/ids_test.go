package ids_test

import (
	"math/rand"
	"testing"

	"vprofile/internal/analog"
	"vprofile/internal/canbus"
	"vprofile/internal/core"
	"vprofile/internal/experiments"
	"vprofile/internal/ids"
	"vprofile/internal/vehicle"
)

// buildModel trains a Mahalanobis model on Vehicle B traffic.
func buildModel(t *testing.T, v *vehicle.Vehicle) *core.Model {
	t.Helper()
	train, err := experiments.CollectSamples(v, 1500, 7, nil, v.ExtractionConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Train(experiments.CoreSamples(train), core.TrainConfig{
		Metric: core.Mahalanobis, SAMap: v.SAMap(),
	})
	if err != nil {
		t.Fatal(err)
	}
	val, err := experiments.CollectSamples(v, 800, 8, nil, v.ExtractionConfig())
	if err != nil {
		t.Fatal(err)
	}
	margin, _ := experiments.OptimizeMargin(experiments.FalsePositiveRecords(m, val), experiments.MaxAccuracy)
	m.Margin = margin * 1.5
	return m
}

// busStream renders full frames (with EOF and trailing idle) from the
// given senders into one continuous sample stream.
type streamFrame struct {
	ecu int
	sa  canbus.SourceAddress
}

func busStream(t *testing.T, v *vehicle.Vehicle, frames []streamFrame, seed int64) (analog.Trace, []canbus.SourceAddress) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := analog.SynthConfig{ADC: v.ADC, BitRate: v.BitRate, LeadIdleBits: 4}
	var stream analog.Trace
	var sas []canbus.SourceAddress
	for _, fr := range frames {
		ecu := v.ECUs[fr.ecu]
		spec := ecu.Messages[0]
		id := spec.ID
		id.SA = fr.sa
		data := make([]byte, spec.DataLen)
		rng.Read(data)
		frame, err := canbus.NewJ1939Frame(id, data)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := analog.SynthesizeFrame(ecu.Transceiver, frame, cfg, ecu.Transceiver.NominalEnvironment(), rng)
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, tr...)
		sas = append(sas, fr.sa)
	}
	// Trailing idle so the last frame terminates.
	idle := make(analog.Trace, 15*int(v.ADC.SamplesPerBit(v.BitRate)))
	recCode := v.ADC.VoltsToCode(0.012)
	for i := range idle {
		idle[i] = recCode
	}
	return append(stream, idle...), sas
}

func TestIDSConfigValidation(t *testing.T) {
	v := vehicle.NewVehicleB()
	m := buildModel(t, v)
	if _, err := ids.New(nil, ids.Config{Extraction: v.ExtractionConfig()}); err == nil {
		t.Error("nil model accepted")
	}
	bad := v.ExtractionConfig()
	bad.BitWidth = 0
	if _, err := ids.New(m, ids.Config{Extraction: bad}); err == nil {
		t.Error("invalid extraction config accepted")
	}
}

func TestIDSSegmentsAndAcceptsLegitimateStream(t *testing.T) {
	v := vehicle.NewVehicleB()
	m := buildModel(t, v)
	det, err := ids.New(m, ids.Config{Extraction: v.ExtractionConfig()})
	if err != nil {
		t.Fatal(err)
	}
	frames := []streamFrame{}
	for i := 0; i < 12; i++ {
		ecu := i % len(v.ECUs)
		frames = append(frames, streamFrame{ecu: ecu, sa: v.ECUs[ecu].SAs()[0]})
	}
	stream, sas := busStream(t, v, frames, 31)

	// Push in uneven chunks to exercise buffering.
	var results []ids.Result
	chunk := 777
	for off := 0; off < len(stream); off += chunk {
		end := off + chunk
		if end > len(stream) {
			end = len(stream)
		}
		rs, err := det.Push(stream[off:end])
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, rs...)
	}
	if len(results) != len(frames) {
		t.Fatalf("segmented %d frames, sent %d", len(results), len(frames))
	}
	for i, r := range results {
		if r.ExtractErr != nil {
			t.Fatalf("frame %d: %v", i, r.ExtractErr)
		}
		if r.SA != sas[i] {
			t.Fatalf("frame %d SA %#x want %#x", i, r.SA, sas[i])
		}
		if r.Anomalous() {
			t.Fatalf("frame %d flagged: %+v", i, r.Detection)
		}
	}
	st := det.Stats()
	if st.Frames != int64(len(frames)) || st.Anomalies != 0 {
		t.Fatalf("stats %+v", st)
	}
	// SOF indices must be strictly increasing.
	for i := 1; i < len(results); i++ {
		if results[i].SOFIndex <= results[i-1].SOFIndex {
			t.Fatalf("SOF indices not increasing: %d then %d", results[i-1].SOFIndex, results[i].SOFIndex)
		}
	}
}

func TestIDSFlagsHijackedFrame(t *testing.T) {
	v := vehicle.NewVehicleB()
	m := buildModel(t, v)
	det, err := ids.New(m, ids.Config{Extraction: v.ExtractionConfig()})
	if err != nil {
		t.Fatal(err)
	}
	// ECU 7 transmits under ECU 2's source address: the waveform
	// betrays it.
	frames := []streamFrame{
		{ecu: 0, sa: v.ECUs[0].SAs()[0]},
		{ecu: 7, sa: v.ECUs[2].SAs()[0]}, // hijack
		{ecu: 3, sa: v.ECUs[3].SAs()[0]},
	}
	stream, _ := busStream(t, v, frames, 32)
	results, err := det.Push(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	if results[0].Anomalous() || results[2].Anomalous() {
		t.Fatal("legitimate frames flagged")
	}
	if !results[1].Anomalous() {
		t.Fatal("hijacked frame accepted")
	}
	if results[1].Detection.Reason != core.ReasonClusterMismatch && results[1].Detection.Reason != core.ReasonOverThreshold {
		t.Fatalf("unexpected reason %v", results[1].Detection.Reason)
	}
}

func TestIDSFlagsUnknownSA(t *testing.T) {
	v := vehicle.NewVehicleB()
	m := buildModel(t, v)
	det, err := ids.New(m, ids.Config{Extraction: v.ExtractionConfig()})
	if err != nil {
		t.Fatal(err)
	}
	frames := []streamFrame{{ecu: 1, sa: 0xEE}}
	stream, _ := busStream(t, v, frames, 33)
	results, err := det.Push(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !results[0].Anomalous() {
		t.Fatalf("results %+v", results)
	}
	if results[0].Detection.Reason != core.ReasonUnknownSA {
		t.Fatalf("reason %v", results[0].Detection.Reason)
	}
}

func TestIDSOnlineUpdateBatches(t *testing.T) {
	v := vehicle.NewVehicleB()
	m := buildModel(t, v)
	det, err := ids.New(m, ids.Config{Extraction: v.ExtractionConfig(), UpdateBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	var frames []streamFrame
	for i := 0; i < 9; i++ {
		ecu := i % 3
		frames = append(frames, streamFrame{ecu: ecu, sa: v.ECUs[ecu].SAs()[0]})
	}
	stream, _ := busStream(t, v, frames, 34)
	if _, err := det.Push(stream); err != nil {
		t.Fatal(err)
	}
	st := det.Stats()
	if st.Updates != 2 { // 9 accepted → two batches of 4
		t.Fatalf("updates %d, want 2 (stats %+v)", st.Updates, st)
	}
}

func TestIDSIdleOnlyStreamProducesNothing(t *testing.T) {
	v := vehicle.NewVehicleB()
	m := buildModel(t, v)
	det, err := ids.New(m, ids.Config{Extraction: v.ExtractionConfig()})
	if err != nil {
		t.Fatal(err)
	}
	idle := make(analog.Trace, 100000)
	recCode := v.ADC.VoltsToCode(0.012)
	for i := range idle {
		idle[i] = recCode
	}
	results, err := det.Push(idle)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("%d frames from an idle bus", len(results))
	}
	if st := det.Stats(); st.Frames != 0 {
		t.Fatalf("stats %+v", st)
	}
}
