package ids_test

import (
	"testing"

	"vprofile/internal/ids"
	"vprofile/internal/obs"
	"vprofile/internal/vehicle"
)

// TestCompositeQuarantineCoalescesAlarms mangles one ECU's traces for
// a stretch of the capture and checks the full chain: its SA walks to
// Degraded, subsequent voltage alarms are suppressed (Alarm() false,
// Anomalous() still true), the sweep of clean traffic afterwards
// recovers it, and the bookkeeping (reports, metrics) agrees.
func TestCompositeQuarantineCoalescesAlarms(t *testing.T) {
	v := vehicle.NewVehicleB()
	m := buildModel(t, v)
	reg := obs.NewRegistry()
	im := ids.NewMetrics(reg)
	c, err := ids.NewComposite(m, ids.CompositeConfig{
		Extraction: v.ExtractionConfig(),
		Warmup:     300,
		Metrics:    im,
		Quarantine: &ids.QuarantineConfig{SuspectAfter: 2, DegradeAfter: 4, RecoverAfter: 20},
	})
	if err != nil {
		t.Fatal(err)
	}

	const victim = 0
	var (
		idx                  int
		mangled              int
		anomalies, alarms    int
		suppressed           int
		sawDegraded          bool
		degradeTransitions   int
		victimFinal          ids.SAState
		victimFramesAfterEnd int
	)
	err = v.Stream(vehicle.GenConfig{NumMessages: 1600, Seed: 81}, func(msg vehicle.Message) error {
		idx++
		// Mid-capture fault window: flatten the victim ECU's traces so
		// extraction fails on every one of its frames.
		inWindow := idx > 600 && idx <= 900
		if inWindow && msg.ECUIndex == victim {
			for i := range msg.Trace {
				msg.Trace[i] = 0
			}
			mangled++
		}
		r := c.Process(msg.Frame, msg.Trace, msg.TimeSec)
		if r.Anomalous() {
			anomalies++
		}
		if r.Alarm() {
			alarms++
		}
		if r.Suppressed {
			suppressed++
		}
		if msg.ECUIndex == victim {
			if r.SAState == ids.SADegraded {
				sawDegraded = true
			}
			if r.QuarantineChanged() && r.SAState == ids.SADegraded {
				degradeTransitions++
			}
			victimFinal = r.SAState
			if idx > 900 {
				victimFramesAfterEnd++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if mangled < 30 {
		t.Fatalf("fixture only mangled %d victim frames", mangled)
	}
	if !sawDegraded {
		t.Fatal("victim SA never reached Degraded under sustained extract failures")
	}
	if degradeTransitions == 0 {
		t.Fatal("no Degraded transition observed")
	}
	if suppressed == 0 {
		t.Fatal("no alarms were suppressed while Degraded")
	}
	if alarms >= anomalies {
		t.Fatalf("coalescing did not reduce alarms: %d alarms vs %d anomalies", alarms, anomalies)
	}
	if victimFramesAfterEnd > 25 && victimFinal != ids.SAHealthy {
		t.Fatalf("victim did not recover after %d clean frames (final state %v)", victimFramesAfterEnd, victimFinal)
	}

	reports := c.QuarantineReports()
	var found *ids.QuarantineReport
	for i := range reports {
		if reports[i].Suppressed > 0 {
			found = &reports[i]
		}
	}
	if found == nil {
		t.Fatalf("no report with suppressed frames in %+v", reports)
	}
	if int(found.Suppressed) != suppressed {
		t.Fatalf("report says %d suppressed, stream saw %d", found.Suppressed, suppressed)
	}
	if got := im.Verdicts.With("alarm_suppressed").Value(); got != int64(suppressed) {
		t.Fatalf("suppressed metric = %d, want %d", got, suppressed)
	}
	if im.QuarantineTransitions.With("degraded").Value() != int64(degradeTransitions) {
		t.Fatalf("degrade transition metric = %d, want %d",
			im.QuarantineTransitions.With("degraded").Value(), degradeTransitions)
	}
	if c.DegradedSAs() != 0 && victimFinal == ids.SAHealthy {
		t.Fatalf("DegradedSAs = %d after recovery", c.DegradedSAs())
	}
}

// TestCompositeQuarantineOffIsInert checks the zero-cost default: no
// Quarantine config means no state, no suppression, Alarm ≡ Anomalous.
func TestCompositeQuarantineOffIsInert(t *testing.T) {
	v := vehicle.NewVehicleB()
	c := newComposite(t, v, 200)
	err := v.Stream(vehicle.GenConfig{NumMessages: 600, Seed: 82}, func(msg vehicle.Message) error {
		if msg.ECUIndex == 1 {
			for i := range msg.Trace {
				msg.Trace[i] = 0
			}
		}
		r := c.Process(msg.Frame, msg.Trace, msg.TimeSec)
		if r.Suppressed || r.SAState != ids.SAHealthy || r.QuarantineChanged() {
			t.Fatal("quarantine state leaked with quarantine disabled")
		}
		if r.Alarm() != r.Anomalous() {
			t.Fatal("Alarm diverged from Anomalous with quarantine disabled")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.QuarantineReports() != nil || c.DegradedSAs() != 0 {
		t.Fatal("disabled quarantine produced reports")
	}
}
