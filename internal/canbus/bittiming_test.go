package canbus

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBitTimingValidate(t *testing.T) {
	good := BitTiming{ClockHz: 16e6, Prescaler: 4, PropSeg: 7, PhaseSeg1: 4, PhaseSeg2: 4, SJW: 4}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []BitTiming{
		{ClockHz: 0, Prescaler: 1, PropSeg: 7, PhaseSeg1: 4, PhaseSeg2: 4, SJW: 1},
		{ClockHz: 16e6, Prescaler: 0, PropSeg: 7, PhaseSeg1: 4, PhaseSeg2: 4, SJW: 1},
		{ClockHz: 16e6, Prescaler: 1, PropSeg: 1, PhaseSeg1: 1, PhaseSeg2: 2, SJW: 1},  // 5 quanta
		{ClockHz: 16e6, Prescaler: 1, PropSeg: 16, PhaseSeg1: 8, PhaseSeg2: 8, SJW: 1}, // 33 quanta
		{ClockHz: 16e6, Prescaler: 1, PropSeg: 8, PhaseSeg1: 4, PhaseSeg2: 1, SJW: 1},  // PS2 < 2
		{ClockHz: 16e6, Prescaler: 1, PropSeg: 7, PhaseSeg1: 2, PhaseSeg2: 4, SJW: 3},  // SJW > PS1
		{ClockHz: 16e6, Prescaler: 1, PropSeg: 5, PhaseSeg1: 5, PhaseSeg2: 5, SJW: 5},  // SJW > 4
	}
	for i, bt := range cases {
		if bt.Validate() == nil {
			t.Errorf("case %d accepted: %+v", i, bt)
		}
	}
}

func TestBitTimingRate(t *testing.T) {
	// 16 MHz / (4 × 16 quanta) = 250 kb/s, the test vehicles' rate.
	bt := BitTiming{ClockHz: 16e6, Prescaler: 4, PropSeg: 7, PhaseSeg1: 4, PhaseSeg2: 4, SJW: 4}
	if got := bt.BitRate(); math.Abs(got-250e3) > 1 {
		t.Fatalf("bit rate %v", got)
	}
	if sp := bt.SamplePoint(); sp < 0.7 || sp > 0.9 {
		t.Fatalf("sample point %v", sp)
	}
}

func TestTimingForCommonRates(t *testing.T) {
	for _, rate := range []float64{125e3, 250e3, 500e3, 1e6} {
		for _, clock := range []float64{8e6, 16e6, 24e6, 40e6} {
			bt, err := TimingFor(clock, rate)
			if err != nil {
				t.Fatalf("clock %v rate %v: %v", clock, rate, err)
			}
			if err := bt.Validate(); err != nil {
				t.Fatalf("clock %v rate %v produced invalid timing: %v", clock, rate, err)
			}
			if got := bt.BitRate(); math.Abs(got-rate)/rate > 0.005 {
				t.Fatalf("clock %v: rate %v, want %v", clock, got, rate)
			}
			if sp := bt.SamplePoint(); sp < 0.6 || sp > 0.95 {
				t.Fatalf("sample point %v", sp)
			}
		}
	}
}

func TestTimingForImpossible(t *testing.T) {
	// A 1 MHz clock cannot produce 1 Mb/s with ≥8 quanta.
	if _, err := TimingFor(1e6, 1e6); err == nil {
		t.Fatal("impossible configuration accepted")
	}
	if _, err := TimingFor(0, 250e3); err == nil {
		t.Fatal("zero clock accepted")
	}
}

func TestTimingForPropertyValid(t *testing.T) {
	f := func(clockSel, rateSel uint8) bool {
		clocks := []float64{8e6, 12e6, 16e6, 20e6, 24e6, 40e6, 80e6}
		rates := []float64{100e3, 125e3, 250e3, 500e3, 800e3, 1e6}
		clock := clocks[int(clockSel)%len(clocks)]
		rate := rates[int(rateSel)%len(rates)]
		bt, err := TimingFor(clock, rate)
		if err != nil {
			return true // some combinations legitimately have no solution
		}
		return bt.Validate() == nil && math.Abs(bt.BitRate()-rate)/rate <= 0.005
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxToleratedSkewCoversVehicleECUs(t *testing.T) {
	// The vehicles' ±122 ppm crystal skews must sit well inside what
	// the standard timing tolerates — CAN keeps communicating while
	// CIDS-style fingerprinting still sees the skew.
	bt, err := TimingFor(16e6, 250e3)
	if err != nil {
		t.Fatal(err)
	}
	tol := bt.MaxToleratedSkewPPM()
	if tol < 500 {
		t.Fatalf("tolerated skew only %.0f ppm", tol)
	}
}
