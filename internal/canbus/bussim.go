package canbus

import (
	"errors"
	"fmt"
	"math/rand"
)

// This file implements a transfer-layer bus simulator: multiple
// controllers with transmit queues contending through wired-AND
// arbitration, acknowledging each other's frames, signalling errors
// and obeying the fault-confinement state machine. The paper's
// Section 2.1 describes exactly these mechanics ("deterministic
// arbitration and its inherent error detection and retransmission
// features"); the simulator lets the wider test suite exercise them —
// e.g. what a monitoring IDS sees when a node is glitching toward
// bus-off.

// EventType classifies bus simulator log entries.
type EventType int

// Event types.
const (
	EventTransmit EventType = iota // frame delivered successfully
	EventArbitrationLoss
	EventBitError  // frame corrupted; error frames followed
	EventBusOff    // node entered bus-off
	EventRecovered // node recovered from bus-off
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case EventTransmit:
		return "transmit"
	case EventArbitrationLoss:
		return "arbitration-loss"
	case EventBitError:
		return "bit-error"
	case EventBusOff:
		return "bus-off"
	case EventRecovered:
		return "recovered"
	default:
		return fmt.Sprintf("event(%d)", int(t))
	}
}

// BusEvent is one logged bus occurrence.
type BusEvent struct {
	AtBit int64 // bus time in bit periods
	Type  EventType
	Node  string
	Frame *ExtendedFrame // nil for state events
}

// BusNode is one simulated controller.
type BusNode struct {
	Name     string
	Counters ErrorCounters

	queue []*ExtendedFrame
}

// Enqueue appends a frame to the node's transmit queue.
func (n *BusNode) Enqueue(f *ExtendedFrame) { n.queue = append(n.queue, f) }

// Pending returns the number of queued frames.
func (n *BusNode) Pending() int { return len(n.queue) }

// BusSim drives a set of nodes over a shared wired-AND bus.
type BusSim struct {
	// CorruptProb is the per-transmission probability of a bit error
	// (EMI, marginal wiring); the transmitter detects it, every node
	// signals an error frame, the counters move, and the frame is
	// retransmitted — CAN's "no information is lost" guarantee.
	CorruptProb float64
	// TargetedNode, when non-empty, confines injected corruption to
	// that node's transmissions, modelling a damaged transceiver.
	TargetedNode string

	nodes []*BusNode
	rng   *rand.Rand
	now   int64
	log   []BusEvent
}

// NewBusSim builds a simulator over the given nodes.
func NewBusSim(nodes []*BusNode, seed int64) (*BusSim, error) {
	if len(nodes) == 0 {
		return nil, errors.New("canbus: bus simulator needs at least one node")
	}
	seen := map[string]bool{}
	for _, n := range nodes {
		if n.Name == "" || seen[n.Name] {
			return nil, fmt.Errorf("canbus: duplicate or empty node name %q", n.Name)
		}
		seen[n.Name] = true
	}
	return &BusSim{nodes: nodes, rng: rand.New(rand.NewSource(seed))}, nil
}

// Node returns the node with the given name, or nil.
func (s *BusSim) Node(name string) *BusNode {
	for _, n := range s.nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// Now returns the bus time in bit periods.
func (s *BusSim) Now() int64 { return s.now }

// Log returns the event log.
func (s *BusSim) Log() []BusEvent { return s.log }

// Run drives the bus until every queue drains or maxSteps contention
// rounds pass, returning the number of successful deliveries.
func (s *BusSim) Run(maxSteps int) (delivered int, err error) {
	for step := 0; step < maxSteps; step++ {
		contenders := s.collectContenders()
		if len(contenders) == 0 {
			if !s.anyPending() {
				return delivered, nil
			}
			// Only bus-off nodes hold frames: idle time accrues and
			// feeds their recovery sequence.
			s.idleRecovery()
			continue
		}
		res := Arbitrate(contenders)
		winner := s.nodes[res.WinnerTag]
		for tag := range res.LostAtBit {
			s.logEvent(EventArbitrationLoss, s.nodes[tag].Name, s.nodes[tag].queue[0])
		}
		frame := winner.queue[0]
		wire, werr := frame.WireBits(true)
		if werr != nil {
			// Malformed frame: drop it rather than wedging the queue.
			winner.queue = winner.queue[1:]
			continue
		}
		frameBits := int64(len(wire))

		corrupted := s.rng.Float64() < s.CorruptProb &&
			(s.TargetedNode == "" || s.TargetedNode == winner.Name)
		if corrupted {
			// Error detected partway through; every active node
			// superimposes an error flag, then the delimiter and
			// intermission pass.
			errAt := 1 + s.rng.Int63n(frameBits)
			s.now += errAt + ErrorFlagLength + ErrorDelimiterLength + IntermissionLength
			before := winner.Counters.State()
			winner.Counters.OnTransmitError()
			for _, n := range s.nodes {
				if n != winner && n.Counters.State() != BusOff {
					n.Counters.OnReceiveError(false)
				}
			}
			s.logEvent(EventBitError, winner.Name, frame)
			if before != BusOff && winner.Counters.State() == BusOff {
				// The node falls silent; its queue stays, pending the
				// 128×11-recessive-bit recovery sequence.
				s.logEvent(EventBusOff, winner.Name, nil)
			}
			continue
		}

		s.now += frameBits + IntermissionLength
		winner.queue = winner.queue[1:]
		winner.Counters.OnTransmitSuccess()
		for _, n := range s.nodes {
			if n != winner && n.Counters.State() != BusOff {
				n.Counters.OnReceiveSuccess()
			}
		}
		s.logEvent(EventTransmit, winner.Name, frame)
		delivered++
	}
	return delivered, fmt.Errorf("canbus: bus simulation did not drain in %d steps", maxSteps)
}

// collectContenders gathers every transmit-capable node with traffic.
func (s *BusSim) collectContenders() []Contender {
	var out []Contender
	for i, n := range s.nodes {
		if len(n.queue) == 0 || n.Counters.State() == BusOff {
			continue
		}
		out = append(out, Contender{Tag: i, Frame: n.queue[0]})
	}
	return out
}

func (s *BusSim) anyPending() bool {
	for _, n := range s.nodes {
		if len(n.queue) > 0 {
			return true
		}
	}
	return false
}

// idleRecovery advances time by one 11-bit idle sequence and feeds
// bus-off recovery.
func (s *BusSim) idleRecovery() {
	s.now += 11
	for _, n := range s.nodes {
		if n.Counters.OnBusIdleRecovery() {
			s.logEvent(EventRecovered, n.Name, nil)
		}
	}
}

func (s *BusSim) logEvent(t EventType, node string, f *ExtendedFrame) {
	s.log = append(s.log, BusEvent{AtBit: s.now, Type: t, Node: node, Frame: f})
}
