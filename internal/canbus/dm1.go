package canbus

import (
	"errors"
	"fmt"
)

// J1939 DM1 (Active Diagnostic Trouble Codes, J1939-73): every second
// each controller broadcasts its lamp status and active DTC list.
// With more than one DTC the payload exceeds eight bytes and rides the
// TP.BAM transport — which is why a faithful traffic substrate needs
// both. The IDS side cares because diagnostic floods are a known
// nuisance source and DM1's SA is fingerprintable like any other.

// PGNDM1 is the DM1 parameter group.
const PGNDM1 PGN = 0xFECA

// LampStatus carries the four J1939 indicator lamps (two bits each in
// byte 1; byte 2 carries flash codes, not modelled).
type LampStatus struct {
	MalfunctionIndicator bool
	RedStop              bool
	AmberWarning         bool
	Protect              bool
}

// DTC is one diagnostic trouble code: a suspect parameter number, a
// failure mode identifier and an occurrence count.
type DTC struct {
	SPN             uint32 // 19 bits
	FMI             uint8  // 5 bits
	OccurrenceCount uint8  // 7 bits
}

// Errors reported by DM1 coding.
var (
	ErrDTCRange = errors.New("canbus: DTC field out of range")
	ErrDM1Short = errors.New("canbus: DM1 payload too short")
)

// EncodeDM1 builds the DM1 payload: two lamp bytes followed by four
// bytes per DTC (SPN in the J1939 version-4 packing, FMI, occurrence
// count). A DTC-free payload still carries one all-zero DTC slot, as
// the standard prescribes.
func EncodeDM1(lamps LampStatus, dtcs []DTC) ([]byte, error) {
	out := make([]byte, 2, 2+4*len(dtcs))
	if lamps.Protect {
		out[0] |= 0x01
	}
	if lamps.AmberWarning {
		out[0] |= 0x04
	}
	if lamps.RedStop {
		out[0] |= 0x10
	}
	if lamps.MalfunctionIndicator {
		out[0] |= 0x40
	}
	out[1] = 0xFF // flash codes not available
	if len(dtcs) == 0 {
		return append(out, 0, 0, 0, 0), nil
	}
	for _, d := range dtcs {
		if d.SPN >= 1<<19 || d.FMI >= 1<<5 || d.OccurrenceCount >= 1<<7 {
			return nil, fmt.Errorf("%w: %+v", ErrDTCRange, d)
		}
		out = append(out,
			byte(d.SPN),
			byte(d.SPN>>8),
			byte(d.SPN>>16&0x7)<<5|d.FMI,
			d.OccurrenceCount, // conversion-method bit 0
		)
	}
	return out, nil
}

// DecodeDM1 parses a DM1 payload back into lamps and DTCs. The
// standard's "no active codes" form (a single all-zero DTC) decodes to
// an empty list.
func DecodeDM1(payload []byte) (LampStatus, []DTC, error) {
	if len(payload) < 6 {
		return LampStatus{}, nil, ErrDM1Short
	}
	lamps := LampStatus{
		Protect:              payload[0]&0x01 != 0,
		AmberWarning:         payload[0]&0x04 != 0,
		RedStop:              payload[0]&0x10 != 0,
		MalfunctionIndicator: payload[0]&0x40 != 0,
	}
	var dtcs []DTC
	for off := 2; off+4 <= len(payload); off += 4 {
		spn := uint32(payload[off]) | uint32(payload[off+1])<<8 | uint32(payload[off+2]>>5)<<16
		fmi := payload[off+2] & 0x1F
		oc := payload[off+3] & 0x7F
		if spn == 0 && fmi == 0 && oc == 0 {
			continue // the empty-list placeholder
		}
		dtcs = append(dtcs, DTC{SPN: spn, FMI: fmi, OccurrenceCount: oc})
	}
	return lamps, dtcs, nil
}

// DM1Frames renders a controller's DM1 broadcast: a single frame when
// the payload fits, otherwise the TP.BAM sequence.
func DM1Frames(lamps LampStatus, dtcs []DTC, sa SourceAddress) ([]*ExtendedFrame, error) {
	payload, err := EncodeDM1(lamps, dtcs)
	if err != nil {
		return nil, err
	}
	if len(payload) <= 8 {
		// Pad to 8 with the not-available pattern.
		for len(payload) < 8 {
			payload = append(payload, 0xFF)
		}
		f, err := NewJ1939Frame(J1939ID{Priority: 6, PGN: PGNDM1, SA: sa}, payload)
		if err != nil {
			return nil, err
		}
		return []*ExtendedFrame{f}, nil
	}
	return BAMSplit(PGNDM1, payload, sa)
}
