package canbus

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCRC15Empty(t *testing.T) {
	if got := CRC15(nil); got != 0 {
		t.Fatalf("CRC of empty stream = %#x, want 0", got)
	}
}

func TestCRC15AllDominant(t *testing.T) {
	// All-dominant input never sets the feedback, so the register
	// stays zero.
	if got := CRC15(make(BitString, 64)); got != 0 {
		t.Fatalf("CRC of all-dominant = %#x, want 0", got)
	}
}

func TestCRC15SingleRecessive(t *testing.T) {
	// A single recessive bit at the end XORs the polynomial once.
	in := append(make(BitString, 10), Recessive)
	if got := CRC15(in); got != crcPoly {
		t.Fatalf("CRC = %#x, want %#x", got, crcPoly)
	}
}

func TestCRC15Width(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		in := make(BitString, int(n)+1)
		for i := range in {
			in[i] = Bit(rng.Intn(2))
		}
		return CRC15(in) < 1<<15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCRC15DetectsSingleBitFlips(t *testing.T) {
	// A CRC with a degree-15 generator detects every single-bit error.
	rng := rand.New(rand.NewSource(7))
	in := make(BitString, 90)
	for i := range in {
		in[i] = Bit(rng.Intn(2))
	}
	want := CRC15(in)
	for i := range in {
		flipped := make(BitString, len(in))
		copy(flipped, in)
		flipped[i] ^= 1
		if CRC15(flipped) == want {
			t.Fatalf("flip at bit %d not detected", i)
		}
	}
}

func TestCRC15DetectsBurstsUpTo15(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := make(BitString, 120)
	for i := range in {
		in[i] = Bit(rng.Intn(2))
	}
	want := CRC15(in)
	for burst := 2; burst <= 15; burst++ {
		for trial := 0; trial < 20; trial++ {
			start := rng.Intn(len(in) - burst)
			flipped := make(BitString, len(in))
			copy(flipped, in)
			// Burst with nonzero first and last bit.
			flipped[start] ^= 1
			flipped[start+burst-1] ^= 1
			for i := start + 1; i < start+burst-1; i++ {
				if rng.Intn(2) == 0 {
					flipped[i] ^= 1
				}
			}
			if CRC15(flipped) == want {
				t.Fatalf("burst of length %d at %d not detected", burst, start)
			}
		}
	}
}
