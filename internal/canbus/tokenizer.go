package canbus

// Tokenizer splits a continuous logical bit stream (as a bus receiver
// sees it after its comparator) into frames: it waits for bus idle,
// locks onto each SOF, decodes the frame with stuff-bit handling, and
// resynchronises after malformed stretches. It is the digital
// counterpart of the sample-level segmentation in internal/ids and
// completes the receive path of the transfer layer: wire bits in,
// validated frames out.
type Tokenizer struct {
	buf BitString
	// consumed counts bits dropped from the front of buf since the
	// tokenizer started, so Token positions are absolute.
	consumed int64
}

// Token is one tokenizer output: a decoded frame or a framing error.
type Token struct {
	// SOFBit is the absolute bit index of the frame's SOF.
	SOFBit int64
	Frame  *ExtendedFrame
	// Err is non-nil when the stretch after SOF did not decode (CRC
	// mismatch, stuffing violation, malformed fields); the tokenizer
	// skips to the next idle sequence, as a real controller's error
	// handling effectively does.
	Err error
}

// idleRun is the number of consecutive recessive bits that mark bus
// idle: ACK delimiter + EOF + intermission.
const idleRun = 1 + EOFLength + IntermissionLength

// Push feeds wire bits and returns the frames completed within them.
func (t *Tokenizer) Push(bits BitString) []Token {
	t.buf = append(t.buf, bits...)
	var out []Token
	for {
		tok, consumed, complete := t.scan()
		if !complete {
			break
		}
		if tok != nil {
			out = append(out, *tok)
		}
		t.buf = t.buf[consumed:]
		t.consumed += int64(consumed)
	}
	return out
}

// scan attempts to cut one frame (or discardable idle) off the front
// of the buffer.
func (t *Tokenizer) scan() (*Token, int, bool) {
	// Find SOF: the first dominant bit.
	sof := -1
	for i, b := range t.buf {
		if b == Dominant {
			sof = i
			break
		}
	}
	if sof < 0 {
		// All recessive: drop everything but a one-bit tail.
		if len(t.buf) > 1 {
			return nil, len(t.buf) - 1, true
		}
		return nil, 0, false
	}
	// Find the end: idleRun consecutive recessive bits after SOF.
	run := 0
	end := -1
	for i := sof + 1; i < len(t.buf); i++ {
		if t.buf[i] == Recessive {
			run++
			if run >= idleRun {
				end = i + 1
				break
			}
		} else {
			run = 0
		}
		if i-sof > 200 { // longest stuffed frame is ~160 bits
			end = i + 1
			break
		}
	}
	if end < 0 {
		return nil, 0, false
	}
	tok := &Token{SOFBit: t.consumed + int64(sof)}
	frame, err := DecodeFrame(t.buf[sof:end])
	if err != nil {
		tok.Err = err
	} else {
		tok.Frame = frame
	}
	return tok, end, true
}
