package canbus

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestDM1EncodeDecodeRoundTrip(t *testing.T) {
	lamps := LampStatus{MalfunctionIndicator: true, AmberWarning: true}
	dtcs := []DTC{
		{SPN: 110, FMI: 3, OccurrenceCount: 2},       // coolant temp circuit
		{SPN: 190, FMI: 8, OccurrenceCount: 1},       // engine speed
		{SPN: 520192, FMI: 31, OccurrenceCount: 126}, // proprietary range
	}
	payload, err := EncodeDM1(lamps, dtcs)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != 2+4*3 {
		t.Fatalf("payload %d bytes", len(payload))
	}
	gotLamps, gotDTCs, err := DecodeDM1(payload)
	if err != nil {
		t.Fatal(err)
	}
	if gotLamps != lamps {
		t.Fatalf("lamps %+v", gotLamps)
	}
	if len(gotDTCs) != len(dtcs) {
		t.Fatalf("%d DTCs", len(gotDTCs))
	}
	for i := range dtcs {
		if gotDTCs[i] != dtcs[i] {
			t.Fatalf("DTC %d: %+v vs %+v", i, gotDTCs[i], dtcs[i])
		}
	}
}

func TestDM1EmptyList(t *testing.T) {
	payload, err := EncodeDM1(LampStatus{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != 6 {
		t.Fatalf("empty-list payload %d bytes", len(payload))
	}
	_, dtcs, err := DecodeDM1(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(dtcs) != 0 {
		t.Fatalf("empty list decoded %d DTCs", len(dtcs))
	}
}

func TestDM1RangeChecks(t *testing.T) {
	if _, err := EncodeDM1(LampStatus{}, []DTC{{SPN: 1 << 19}}); !errors.Is(err, ErrDTCRange) {
		t.Error("20-bit SPN accepted")
	}
	if _, err := EncodeDM1(LampStatus{}, []DTC{{FMI: 32}}); !errors.Is(err, ErrDTCRange) {
		t.Error("6-bit FMI accepted")
	}
	if _, _, err := DecodeDM1([]byte{0, 0}); !errors.Is(err, ErrDM1Short) {
		t.Error("short payload accepted")
	}
}

func TestDM1RoundTripProperty(t *testing.T) {
	f := func(spnRaw uint32, fmiRaw, ocRaw uint8, mil, stop bool) bool {
		d := DTC{SPN: spnRaw % (1 << 19), FMI: fmiRaw % 32, OccurrenceCount: ocRaw % 128}
		if d.SPN == 0 && d.FMI == 0 && d.OccurrenceCount == 0 {
			return true // the empty placeholder is not a code
		}
		lamps := LampStatus{MalfunctionIndicator: mil, RedStop: stop}
		payload, err := EncodeDM1(lamps, []DTC{d})
		if err != nil {
			return false
		}
		gotLamps, got, err := DecodeDM1(payload)
		if err != nil || gotLamps != lamps || len(got) != 1 {
			return false
		}
		return got[0] == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDM1SingleFrameWhenSmall(t *testing.T) {
	frames, err := DM1Frames(LampStatus{}, []DTC{{SPN: 110, FMI: 3, OccurrenceCount: 1}}, 0x00)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 {
		t.Fatalf("%d frames for one DTC", len(frames))
	}
	if frames[0].J1939().PGN != PGNDM1 {
		t.Fatalf("PGN %#x", uint32(frames[0].J1939().PGN))
	}
}

func TestDM1UsesTransportWhenLarge(t *testing.T) {
	var dtcs []DTC
	for i := 0; i < 5; i++ { // 2 + 20 bytes > 8
		dtcs = append(dtcs, DTC{SPN: uint32(100 + i), FMI: uint8(i + 1), OccurrenceCount: 1})
	}
	frames, err := DM1Frames(LampStatus{RedStop: true}, dtcs, 0x03)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) < 4 { // BAM announce + ≥3 data frames
		t.Fatalf("%d frames for 5 DTCs", len(frames))
	}
	// Reassemble and decode end to end.
	r := NewBAMReassembler()
	var done *Completed
	for _, f := range frames {
		c, err := r.Feed(f)
		if err != nil {
			t.Fatal(err)
		}
		if c != nil {
			done = c
		}
	}
	if done == nil {
		t.Fatal("DM1 transfer never completed")
	}
	if done.PGN != PGNDM1 || done.SA != 0x03 {
		t.Fatalf("completed %#x from %#x", uint32(done.PGN), done.SA)
	}
	lamps, got, err := DecodeDM1(done.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !lamps.RedStop || len(got) != 5 {
		t.Fatalf("decoded %+v with %d DTCs", lamps, len(got))
	}
}
