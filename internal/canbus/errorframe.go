package canbus

// Error and overload frames (ISO 11898-1 §10.4.4–10.4.5). These are
// the two remaining frame types of Section 2.1.2; the data frame is
// modelled in frame.go and remote frames share its layout with RTR
// recessive. vProfile itself never classifies error frames — they
// carry no source address — but the bus simulator must produce them so
// a monitoring node sees realistic traffic under fault injection.

// ErrorFlagLength is the number of superimposed flag bits a node
// transmits to signal an error.
const ErrorFlagLength = 6

// ErrorDelimiterLength is the number of recessive bits closing an
// error or overload frame.
const ErrorDelimiterLength = 8

// ErrorFrameBits returns the wire image of an error frame as one node
// transmits it: six dominant (error-active) or six recessive
// (error-passive) flag bits followed by eight recessive delimiter
// bits. On a real bus several nodes' flags superimpose; wired-AND
// combination of the per-node images models that.
func ErrorFrameBits(passive bool) BitString {
	flag := Dominant
	if passive {
		flag = Recessive
	}
	out := make(BitString, 0, ErrorFlagLength+ErrorDelimiterLength)
	for i := 0; i < ErrorFlagLength; i++ {
		out = append(out, flag)
	}
	for i := 0; i < ErrorDelimiterLength; i++ {
		out = append(out, Recessive)
	}
	return out
}

// OverloadFrameBits returns the wire image of an overload frame, which
// shares the error frame's form (six dominant flag bits, eight
// recessive delimiter bits) but signals a delay request rather than a
// fault and does not touch the error counters.
func OverloadFrameBits() BitString { return ErrorFrameBits(false) }

// RemoteFrameBits returns the wire image of an extended remote frame
// for the identifier: identical to a data frame's arbitration and
// control fields except that RTR is recessive and no data field
// follows. Remote frames request a transmission; Section 2.1.2 lists
// them among the four frame types.
func RemoteFrameBits(id uint32, dlc int) (BitString, error) {
	if id >= 1<<29 {
		return nil, ErrIDRange
	}
	if dlc < 0 || dlc > 8 {
		return nil, ErrDataLength
	}
	bits := make(BitString, 0, 64)
	bits = append(bits, Dominant) // SOF
	bits = bits.AppendUint(id>>18, 11)
	bits = append(bits, Recessive) // SRR
	bits = append(bits, Recessive) // IDE
	bits = bits.AppendUint(id&(1<<18-1), 18)
	bits = append(bits, Recessive) // RTR: remote frame
	bits = append(bits, Dominant)  // r1
	bits = append(bits, Dominant)  // r0
	bits = bits.AppendUint(uint32(dlc), 4)
	crc := CRC15(bits)
	stuffable := bits.AppendUint(uint32(crc), 15)
	wire := Stuff(stuffable)
	wire = append(wire, Recessive) // CRC delimiter
	wire = append(wire, Dominant)  // ACK (asserted)
	wire = append(wire, Recessive) // ACK delimiter
	for i := 0; i < EOFLength; i++ {
		wire = append(wire, Recessive)
	}
	return wire, nil
}
