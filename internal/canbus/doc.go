// Package canbus implements the Controller Area Network (CAN) 2.0B
// transfer layer and the SAE J1939 identifier scheme used by the
// vehicles in the vProfile evaluation.
//
// The package produces the exact dominant/recessive bit streams that a
// transmitting electronic control unit (ECU) drives onto the two-wire
// bus, including the 15-bit BCH cyclic redundancy check and the
// bit-stuffing rule (a bit of opposing polarity after five consecutive
// equal bits). Those bit streams are the digital image whose analog
// rendering package analog synthesises and whose edge sets package
// edgeset extracts.
//
// It also models wired-AND bitwise arbitration so that multi-ECU
// contention (Figure 2.3 of the paper) can be simulated faithfully.
package canbus
