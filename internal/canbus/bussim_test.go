package canbus

import (
	"testing"
)

func TestErrorFrameBits(t *testing.T) {
	active := ErrorFrameBits(false)
	if len(active) != ErrorFlagLength+ErrorDelimiterLength {
		t.Fatalf("length %d", len(active))
	}
	for i := 0; i < ErrorFlagLength; i++ {
		if active[i] != Dominant {
			t.Fatalf("active flag bit %d recessive", i)
		}
	}
	passive := ErrorFrameBits(true)
	for i := 0; i < ErrorFlagLength; i++ {
		if passive[i] != Recessive {
			t.Fatalf("passive flag bit %d dominant", i)
		}
	}
	for i := ErrorFlagLength; i < len(active); i++ {
		if active[i] != Recessive || passive[i] != Recessive {
			t.Fatalf("delimiter bit %d not recessive", i)
		}
	}
	overload := OverloadFrameBits()
	for i := range overload {
		if overload[i] != active[i] {
			t.Fatal("overload frame differs from active error frame form")
		}
	}
}

func TestRemoteFrameBits(t *testing.T) {
	wire, err := RemoteFrameBits(0x18FEF100, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Destuff and check RTR is recessive at bit 32.
	destuffed, _, violation := UnstuffN(wire, BitRTR+1)
	if violation {
		t.Fatal("stuff violation")
	}
	if destuffed[BitRTR] != Recessive {
		t.Fatal("remote frame RTR not recessive")
	}
	if destuffed[BitSOF] != Dominant {
		t.Fatal("SOF not dominant")
	}
	if _, err := RemoteFrameBits(1<<29, 0); err == nil {
		t.Fatal("30-bit ID accepted")
	}
	if _, err := RemoteFrameBits(1, 9); err == nil {
		t.Fatal("DLC 9 accepted")
	}
}

func TestErrorCountersStateMachine(t *testing.T) {
	var c ErrorCounters
	if c.State() != ErrorActive {
		t.Fatal("fresh node not error-active")
	}
	// 16 transmit errors → TEC 128 → error-passive.
	for i := 0; i < 16; i++ {
		c.OnTransmitError()
	}
	if c.TEC != 128 || c.State() != ErrorPassive {
		t.Fatalf("TEC %d state %v", c.TEC, c.State())
	}
	// 16 more → TEC 256 → bus-off.
	for i := 0; i < 16; i++ {
		c.OnTransmitError()
	}
	if c.State() != BusOff {
		t.Fatalf("state %v after TEC %d", c.State(), c.TEC)
	}
	// Counters freeze at bus-off.
	c.OnTransmitError()
	if c.TEC != 256 {
		t.Fatalf("bus-off TEC moved to %d", c.TEC)
	}
	// Recovery needs 128 idle occurrences.
	for i := 0; i < 127; i++ {
		if c.OnBusIdleRecovery() {
			t.Fatalf("recovered after only %d occurrences", i+1)
		}
	}
	if !c.OnBusIdleRecovery() {
		t.Fatal("did not recover at the 128th occurrence")
	}
	if c.State() != ErrorActive || c.TEC != 0 || c.REC != 0 {
		t.Fatalf("post-recovery state %v TEC %d REC %d", c.State(), c.TEC, c.REC)
	}
}

func TestErrorCountersReceiveSide(t *testing.T) {
	var c ErrorCounters
	c.OnReceiveError(true)
	if c.REC != 8 {
		t.Fatalf("primary receive error REC %d", c.REC)
	}
	for i := 0; i < 120; i++ {
		c.OnReceiveError(false)
	}
	if c.State() != ErrorPassive {
		t.Fatalf("state %v at REC %d", c.State(), c.REC)
	}
	// Successful receptions walk it back down to error-active.
	for i := 0; i < 128; i++ {
		c.OnReceiveSuccess()
	}
	if c.State() != ErrorActive || c.REC != 0 {
		t.Fatalf("state %v REC %d after recovery", c.State(), c.REC)
	}
}

func TestErrorCountersTransmitSuccessFloor(t *testing.T) {
	var c ErrorCounters
	c.OnTransmitSuccess()
	if c.TEC != 0 {
		t.Fatalf("TEC went negative: %d", c.TEC)
	}
	c.OnTransmitError()
	c.OnTransmitSuccess()
	if c.TEC != 7 {
		t.Fatalf("TEC %d, want 7", c.TEC)
	}
}

func mkNode(name string, ids ...uint32) *BusNode {
	n := &BusNode{Name: name}
	for _, id := range ids {
		n.Enqueue(&ExtendedFrame{ID: id, Data: []byte{1, 2}})
	}
	return n
}

func TestBusSimValidation(t *testing.T) {
	if _, err := NewBusSim(nil, 1); err == nil {
		t.Fatal("empty bus accepted")
	}
	if _, err := NewBusSim([]*BusNode{{Name: "a"}, {Name: "a"}}, 1); err == nil {
		t.Fatal("duplicate names accepted")
	}
}

func TestBusSimDrainsInPriorityOrder(t *testing.T) {
	hi := mkNode("engine", 0x0C000000)
	lo := mkNode("body", 0x18000021)
	sim, err := NewBusSim([]*BusNode{lo, hi}, 1)
	if err != nil {
		t.Fatal(err)
	}
	delivered, err := sim.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Fatalf("delivered %d", delivered)
	}
	var order []string
	var losses int
	for _, ev := range sim.Log() {
		switch ev.Type {
		case EventTransmit:
			order = append(order, ev.Node)
		case EventArbitrationLoss:
			losses++
		}
	}
	if len(order) != 2 || order[0] != "engine" || order[1] != "body" {
		t.Fatalf("delivery order %v", order)
	}
	if losses == 0 {
		t.Fatal("no arbitration loss logged for the losing node")
	}
	if sim.Now() <= 0 {
		t.Fatal("bus time did not advance")
	}
}

func TestBusSimErrorRetransmission(t *testing.T) {
	// Always-corrupted first attempts still deliver eventually because
	// CAN retransmits; counters must move.
	n := mkNode("ecm", 0x0CF00400, 0x0CF00400)
	sim, err := NewBusSim([]*BusNode{n, {Name: "peer"}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	sim.CorruptProb = 0.5
	delivered, err := sim.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Fatalf("delivered %d", delivered)
	}
	errs := 0
	for _, ev := range sim.Log() {
		if ev.Type == EventBitError {
			errs++
		}
	}
	if errs == 0 {
		t.Fatal("no bit errors at 50% corruption")
	}
	if n.Counters.TEC == 0 && errs > 0 {
		// Successful retransmissions decrement; only require that the
		// counter has been exercised via the log.
		t.Logf("TEC settled back to %d after %d errors", n.Counters.TEC, errs)
	}
}

func TestBusSimFaultyNodeGoesBusOffAndRecovers(t *testing.T) {
	// A node whose transceiver corrupts every frame marches to
	// bus-off; the healthy node keeps the bus alive, and after the
	// faulty node's frames are its only pending traffic, idle
	// recovery brings it back.
	faulty := mkNode("faulty", 0x10000000)
	healthy := mkNode("healthy", 0x0C000000, 0x0C000001, 0x0C000002)
	sim, err := NewBusSim([]*BusNode{faulty, healthy}, 3)
	if err != nil {
		t.Fatal(err)
	}
	sim.CorruptProb = 1.0
	sim.TargetedNode = "faulty"
	// The faulty node's frame can never deliver while its transceiver
	// corrupts every attempt, so the run cannot drain; the interesting
	// behaviour is in the event log.
	delivered, _ := sim.Run(5000)
	if delivered < 3 {
		t.Fatalf("healthy traffic not delivered: %d", delivered)
	}
	var wentBusOff, recovered bool
	for _, ev := range sim.Log() {
		if ev.Type == EventBusOff && ev.Node == "faulty" {
			wentBusOff = true
		}
		if ev.Type == EventRecovered && ev.Node == "faulty" {
			recovered = true
		}
	}
	if !wentBusOff {
		t.Fatal("faulty node never reached bus-off")
	}
	if !recovered {
		t.Fatal("faulty node never recovered")
	}
}

func TestBusSimReportsNonDraining(t *testing.T) {
	n := mkNode("stuck", 0x1)
	sim, err := NewBusSim([]*BusNode{n}, 9)
	if err != nil {
		t.Fatal(err)
	}
	sim.CorruptProb = 1.0
	if _, err := sim.Run(10); err == nil {
		t.Fatal("permanently corrupted bus reported success")
	}
}
