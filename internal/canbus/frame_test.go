package canbus

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestJ1939IDRoundTrip(t *testing.T) {
	id := J1939ID{Priority: 3, PGN: PGNElectronicEngine1, SA: SAEngine}
	raw, err := id.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if got := DecodeJ1939ID(raw); got != id {
		t.Fatalf("round trip: got %+v want %+v", got, id)
	}
}

func TestJ1939IDFieldOverflow(t *testing.T) {
	if _, err := (J1939ID{Priority: 8}).Encode(); err == nil {
		t.Error("priority 8 accepted")
	}
	if _, err := (J1939ID{PGN: 1 << 18}).Encode(); err == nil {
		t.Error("19-bit PGN accepted")
	}
}

func TestJ1939IDPriorityOrdersArbitration(t *testing.T) {
	// Lower priority value → numerically smaller ID → wins wired-AND
	// arbitration.
	hi := J1939ID{Priority: 0, PGN: PGNTorqueSpeedControl, SA: SAEngine}.MustEncode()
	lo := J1939ID{Priority: 7, PGN: PGNTorqueSpeedControl, SA: SAEngine}.MustEncode()
	if hi >= lo {
		t.Fatalf("priority 0 ID %#x not below priority 7 ID %#x", hi, lo)
	}
}

func TestJ1939IDPropertyRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		raw &= 1<<29 - 1
		enc, err := DecodeJ1939ID(raw).Encode()
		return err == nil && enc == raw
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameValidate(t *testing.T) {
	f := &ExtendedFrame{ID: 1 << 29}
	if err := f.Validate(); !errors.Is(err, ErrIDRange) {
		t.Errorf("30-bit ID: got %v", err)
	}
	f = &ExtendedFrame{ID: 1, Data: make([]byte, 9)}
	if err := f.Validate(); !errors.Is(err, ErrDataLength) {
		t.Errorf("9-byte data: got %v", err)
	}
}

func TestFrameSA(t *testing.T) {
	id := J1939ID{Priority: 6, PGN: PGNCruiseControl, SA: 0x31}
	f, err := NewJ1939Frame(id, []byte{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if f.SA() != 0x31 {
		t.Fatalf("SA() = %#x", f.SA())
	}
}

func TestFrameSAOccupiesBits24To31(t *testing.T) {
	// The paper's extraction algorithm reads the SA from unstuffed
	// bits 24–31 (SOF = bit 0). Verify the layout matches.
	id := J1939ID{Priority: 6, PGN: PGNCruiseControl, SA: 0xA5}
	f, err := NewJ1939Frame(id, nil)
	if err != nil {
		t.Fatal(err)
	}
	bits, err := f.UnstuffedBits()
	if err != nil {
		t.Fatal(err)
	}
	got := SourceAddress(bits[SABitFirst : SABitLast+1].Uint())
	if got != 0xA5 {
		t.Fatalf("SA at bits 24–31 = %#x, want 0xA5", got)
	}
}

func TestFrameFixedFormBits(t *testing.T) {
	f, err := NewJ1939Frame(J1939ID{Priority: 0, PGN: 0, SA: 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	bits, err := f.UnstuffedBits()
	if err != nil {
		t.Fatal(err)
	}
	if bits[BitSOF] != Dominant {
		t.Error("SOF not dominant")
	}
	if bits[BitSRR] != Recessive || bits[BitIDE] != Recessive {
		t.Error("SRR/IDE not recessive")
	}
	if bits[BitRTR] != Dominant || bits[BitR1] != Dominant || bits[BitR0] != Dominant {
		t.Error("RTR/r1/r0 not dominant")
	}
	for i := len(bits) - EOFLength; i < len(bits); i++ {
		if bits[i] != Recessive {
			t.Fatalf("EOF bit %d not recessive", i)
		}
	}
}

func TestFrameBitLength(t *testing.T) {
	for n := 0; n <= 8; n++ {
		f := &ExtendedFrame{ID: 0x18FEF100, Data: make([]byte, n)}
		bits, err := f.UnstuffedBits()
		if err != nil {
			t.Fatal(err)
		}
		if len(bits) != FrameBitLength(n) {
			t.Fatalf("n=%d: len=%d want %d", n, len(bits), FrameBitLength(n))
		}
	}
}

func TestFrameWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(9)
		data := make([]byte, n)
		rng.Read(data)
		f := &ExtendedFrame{ID: rng.Uint32() & (1<<29 - 1), Data: data}
		wire, err := f.WireBits(true)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeFrame(wire)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if got.ID != f.ID {
			t.Fatalf("trial %d: ID %#x != %#x", trial, got.ID, f.ID)
		}
		if string(got.Data) != string(f.Data) {
			t.Fatalf("trial %d: data mismatch", trial)
		}
	}
}

func TestDecodeFrameDetectsCorruption(t *testing.T) {
	f := &ExtendedFrame{ID: 0x0CF00400, Data: []byte{0x10, 0x20, 0x30}}
	wire, err := f.WireBits(false)
	if err != nil {
		t.Fatal(err)
	}
	detected := 0
	// Flip each bit in the stuffed CRC-protected region and require
	// either a decode error or (never) a silent wrong frame.
	for i := 1; i < len(wire)-EOFLength-3; i++ {
		mut := make(BitString, len(wire))
		copy(mut, wire)
		mut[i] ^= 1
		got, err := DecodeFrame(mut)
		if err != nil {
			detected++
			continue
		}
		if got.ID == f.ID && string(got.Data) == string(f.Data) {
			t.Fatalf("flip at stuffed bit %d silently ignored", i)
		}
		t.Fatalf("flip at stuffed bit %d produced a different valid frame", i)
	}
	if detected == 0 {
		t.Fatal("no corruption detected at all")
	}
}

func TestDecodeFrameShort(t *testing.T) {
	if _, err := DecodeFrame(make(BitString, 5)); err == nil {
		t.Fatal("short stream accepted")
	}
}

func TestArbitrationLowestIDWins(t *testing.T) {
	mk := func(id uint32) *ExtendedFrame { return &ExtendedFrame{ID: id} }
	res := Arbitrate([]Contender{
		{Tag: 1, Frame: mk(0x18FEF117)}, // lower priority
		{Tag: 2, Frame: mk(0x0CF00400)}, // higher priority (smaller ID)
		{Tag: 3, Frame: mk(0x18FEF100)},
	})
	if res.WinnerTag != 2 {
		t.Fatalf("winner tag = %d, want 2", res.WinnerTag)
	}
	if len(res.LostAtBit) != 2 {
		t.Fatalf("losers = %v", res.LostAtBit)
	}
	for tag, bit := range res.LostAtBit {
		if bit < 1 || bit > 40 {
			t.Errorf("tag %d lost at implausible bit %d", tag, bit)
		}
	}
}

func TestArbitrationPropertyMinIDWins(t *testing.T) {
	f := func(a, b, c uint32) bool {
		ids := []uint32{a & (1<<29 - 1), b & (1<<29 - 1), c & (1<<29 - 1)}
		if ids[0] == ids[1] || ids[1] == ids[2] || ids[0] == ids[2] {
			return true // skip duplicate-ID contention
		}
		cs := make([]Contender, len(ids))
		minTag, minID := -1, uint32(1<<30)
		for i, id := range ids {
			cs[i] = Contender{Tag: i, Frame: &ExtendedFrame{ID: id}}
			if id < minID {
				minID, minTag = id, i
			}
		}
		return Arbitrate(cs).WinnerTag == minTag
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestArbitrationSingleAndEmpty(t *testing.T) {
	if got := Arbitrate(nil).WinnerTag; got != -1 {
		t.Fatalf("empty contention winner = %d", got)
	}
	res := Arbitrate([]Contender{{Tag: 9, Frame: &ExtendedFrame{ID: 5}}})
	if res.WinnerTag != 9 {
		t.Fatalf("single contender winner = %d", res.WinnerTag)
	}
}

func TestArbitrationIdenticalIDsDeterministic(t *testing.T) {
	res := Arbitrate([]Contender{
		{Tag: 4, Frame: &ExtendedFrame{ID: 0x100}},
		{Tag: 2, Frame: &ExtendedFrame{ID: 0x100}},
	})
	if res.WinnerTag != 2 {
		t.Fatalf("identical IDs: winner = %d, want lowest tag 2", res.WinnerTag)
	}
}
