package canbus

// Bit is a single logical CAN bus level. The bus is wired-AND: a
// dominant bit ('0') overrides a recessive bit ('1').
type Bit uint8

// Bus levels. Dominant is logical '0', recessive is logical '1'
// (wired-AND convention, as assumed throughout the paper).
const (
	Dominant  Bit = 0
	Recessive Bit = 1
)

// And resolves two simultaneously driven levels per the wired-AND bus:
// dominant wins.
func (b Bit) And(o Bit) Bit {
	if b == Dominant || o == Dominant {
		return Dominant
	}
	return Recessive
}

// String returns "0" for dominant and "1" for recessive.
func (b Bit) String() string {
	if b == Dominant {
		return "0"
	}
	return "1"
}

// BitString is a sequence of logical bus levels, most significant
// (earliest on the wire) first.
type BitString []Bit

// AppendUint appends the low n bits of v, most significant bit first.
func (s BitString) AppendUint(v uint32, n int) BitString {
	for i := n - 1; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			s = append(s, Recessive)
		} else {
			s = append(s, Dominant)
		}
	}
	return s
}

// Uint interprets s as a big-endian unsigned integer where a recessive
// bit is 1. It panics if len(s) > 32.
func (s BitString) Uint() uint32 {
	if len(s) > 32 {
		panic("canbus: BitString.Uint on more than 32 bits")
	}
	var v uint32
	for _, b := range s {
		v <<= 1
		if b == Recessive {
			v |= 1
		}
	}
	return v
}

// String renders the bit string as '0'/'1' characters.
func (s BitString) String() string {
	out := make([]byte, len(s))
	for i, b := range s {
		out[i] = '0' + byte(b)
	}
	return string(out)
}

// StuffLimit is the number of consecutive equal bits after which CAN
// inserts a stuff bit of opposing polarity.
const StuffLimit = 5

// Stuff applies the CAN bit-stuffing rule to s and returns the stuffed
// stream. Stuffing starts fresh at the beginning of s (the caller
// passes the region from SOF through the CRC sequence, which is the
// stuffed region of a CAN frame).
func Stuff(s BitString) BitString {
	out := make(BitString, 0, len(s)+len(s)/StuffLimit)
	run := 0
	var prev Bit
	for i, b := range s {
		if i > 0 && b == prev {
			run++
		} else {
			run = 1
		}
		out = append(out, b)
		prev = b
		if run == StuffLimit {
			stuffed := Recessive
			if b == Recessive {
				stuffed = Dominant
			}
			out = append(out, stuffed)
			prev = stuffed
			run = 1
		}
	}
	return out
}

// UnstuffN destuffs the prefix of s until n payload bits have been
// collected. It returns the payload (shorter than n if s is exhausted
// first), the number of wire bits consumed, and violation=true if six
// consecutive equal bits were seen. Only the region from SOF through
// the CRC sequence of a CAN frame is stuffed, so decoders must stop
// destuffing there; this bounded form makes that possible.
func UnstuffN(s BitString, n int) (payload BitString, consumed int, violation bool) {
	payload = make(BitString, 0, n)
	run := 0
	var prev Bit
	i := 0
	for len(payload) < n {
		if i >= len(s) {
			return payload, i, false
		}
		b := s[i]
		if len(payload) > 0 && b == prev {
			run++
		} else {
			run = 1
		}
		payload = append(payload, b)
		prev = b
		i++
		if run == StuffLimit && len(payload) < n {
			if i >= len(s) {
				return payload, i, false
			}
			stuffed := s[i]
			if stuffed == prev {
				return payload, i, true
			}
			prev = stuffed
			run = 1
			i++
		}
	}
	return payload, i, false
}

// Unstuff removes stuff bits from a stuffed stream. It returns the
// destuffed payload and ok=false if a stuffing violation is found
// (six consecutive equal bits), which on a real bus is an error frame
// condition.
func Unstuff(s BitString) (BitString, bool) {
	out := make(BitString, 0, len(s))
	run := 0
	var prev Bit
	i := 0
	for i < len(s) {
		b := s[i]
		if len(out) > 0 && b == prev {
			run++
		} else {
			run = 1
		}
		out = append(out, b)
		prev = b
		i++
		if run == StuffLimit {
			if i >= len(s) {
				break
			}
			stuffed := s[i]
			if stuffed == prev {
				return out, false // six equal bits: stuff violation
			}
			prev = stuffed
			run = 1
			i++
		}
	}
	return out, true
}
