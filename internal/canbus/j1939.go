package canbus

import "fmt"

// SourceAddress is the 8-bit J1939 source address occupying the last
// eight bits of the 29-bit extended identifier. Each SA maps to
// exactly one ECU; an ECU may transmit under several SAs.
type SourceAddress uint8

// Well-known J1939 source addresses (SAE J1939 Appendix B). The engine
// control module conventionally transmits from SA 0.
const (
	SAEngine          SourceAddress = 0x00
	SAEngine2         SourceAddress = 0x01
	SATransmission    SourceAddress = 0x03
	SABrakes          SourceAddress = 0x0B
	SARetarderEngine  SourceAddress = 0x0F
	SAInstrumentPanel SourceAddress = 0x17
	SABodyController  SourceAddress = 0x21
	SACabController   SourceAddress = 0x31
	SAClimateControl  SourceAddress = 0x19
	SASteering        SourceAddress = 0x13
	SADiagnosticTool  SourceAddress = 0xF9
	SANull            SourceAddress = 0xFE
	SAGlobal          SourceAddress = 0xFF
)

// PGN is the 18-bit J1939 parameter group number identifying the
// message type (e.g. engine speed).
type PGN uint32

// Well-known parameter group numbers used by the traffic generator.
const (
	PGNTorqueSpeedControl PGN = 0x0000 // TSC1
	PGNElectronicEngine1  PGN = 0xF004 // EEC1: engine speed
	PGNElectronicEngine2  PGN = 0xF003 // EEC2: accelerator pedal
	PGNCruiseControl      PGN = 0xFEF1 // CCVS: wheel speed, cruise
	PGNEngineTemperature  PGN = 0xFEEE // ET1: coolant temperature
	PGNFuelEconomy        PGN = 0xFEF2 // LFE: fuel rate
	PGNTransmission1      PGN = 0xF002 // ETC1: gear, output speed
	PGNBrakes             PGN = 0xFEBF // EBC2: wheel speeds
	PGNVehicleWeight      PGN = 0xFEEA
	PGNDashDisplay        PGN = 0xFEFC
	PGNAmbientConditions  PGN = 0xFEF5
	PGNCabMessage1        PGN = 0xE000
)

// J1939ID is the decomposed 29-bit extended identifier per Figure 2.4:
// 3 priority bits, an 18-bit parameter group number and an 8-bit
// source address.
type J1939ID struct {
	Priority uint8 // 0 (highest) … 7 (lowest)
	PGN      PGN
	SA       SourceAddress
}

// maximums for field validation.
const (
	maxPriority = 7
	maxPGN      = 1<<18 - 1
)

// Encode packs the ID into a 29-bit extended identifier value.
// It returns an error if a field overflows its width.
func (id J1939ID) Encode() (uint32, error) {
	if id.Priority > maxPriority {
		return 0, fmt.Errorf("canbus: priority %d exceeds 3 bits", id.Priority)
	}
	if id.PGN > maxPGN {
		return 0, fmt.Errorf("canbus: PGN %#x exceeds 18 bits", uint32(id.PGN))
	}
	return uint32(id.Priority)<<26 | uint32(id.PGN)<<8 | uint32(id.SA), nil
}

// MustEncode is Encode for statically known-valid IDs; it panics on a
// field overflow.
func (id J1939ID) MustEncode() uint32 {
	v, err := id.Encode()
	if err != nil {
		panic(err)
	}
	return v
}

// DecodeJ1939ID splits a 29-bit extended identifier into its J1939
// fields (Table 2.2).
func DecodeJ1939ID(raw uint32) J1939ID {
	return J1939ID{
		Priority: uint8(raw >> 26 & 0x7),
		PGN:      PGN(raw >> 8 & maxPGN),
		SA:       SourceAddress(raw & 0xFF),
	}
}

// String renders the ID as priority/PGN/SA.
func (id J1939ID) String() string {
	return fmt.Sprintf("p%d pgn=%#05x sa=%#02x", id.Priority, uint32(id.PGN), uint8(id.SA))
}
