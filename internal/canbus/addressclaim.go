package canbus

import (
	"encoding/binary"
	"fmt"
)

// PGNAddressClaimed is the parameter group a node broadcasts to claim
// a source address (J1939-81). The 8-byte payload is the node's NAME.
const PGNAddressClaimed PGN = 0xEE00

// NAME is the 64-bit J1939 device identity used to resolve source
// address contention: the numerically lower NAME keeps a contested
// address. Field widths follow J1939-81.
type NAME struct {
	ArbitraryAddressCapable bool   // 1 bit
	IndustryGroup           uint8  // 3 bits
	VehicleSystemInstance   uint8  // 4 bits
	VehicleSystem           uint8  // 7 bits
	Function                uint8  // 8 bits
	FunctionInstance        uint8  // 5 bits
	ECUInstance             uint8  // 3 bits
	ManufacturerCode        uint16 // 11 bits
	IdentityNumber          uint32 // 21 bits
}

// Encode packs the NAME into its 64-bit wire representation.
func (n NAME) Encode() (uint64, error) {
	if n.IndustryGroup > 7 || n.VehicleSystemInstance > 15 || n.VehicleSystem > 127 ||
		n.FunctionInstance > 31 || n.ECUInstance > 7 ||
		n.ManufacturerCode > 2047 || n.IdentityNumber > 1<<21-1 {
		return 0, fmt.Errorf("canbus: NAME field overflow: %+v", n)
	}
	var v uint64
	if n.ArbitraryAddressCapable {
		v |= 1 << 63
	}
	v |= uint64(n.IndustryGroup) << 60
	v |= uint64(n.VehicleSystemInstance) << 56
	v |= uint64(n.VehicleSystem) << 49 // bit 48 reserved, kept zero
	v |= uint64(n.Function) << 40
	v |= uint64(n.FunctionInstance) << 35
	v |= uint64(n.ECUInstance) << 32
	v |= uint64(n.ManufacturerCode) << 21
	v |= uint64(n.IdentityNumber)
	return v, nil
}

// DecodeNAME unpacks a 64-bit NAME.
func DecodeNAME(v uint64) NAME {
	return NAME{
		ArbitraryAddressCapable: v>>63&1 == 1,
		IndustryGroup:           uint8(v >> 60 & 0x7),
		VehicleSystemInstance:   uint8(v >> 56 & 0xF),
		VehicleSystem:           uint8(v >> 49 & 0x7F),
		Function:                uint8(v >> 40 & 0xFF),
		FunctionInstance:        uint8(v >> 35 & 0x1F),
		ECUInstance:             uint8(v >> 32 & 0x7),
		ManufacturerCode:        uint16(v >> 21 & 0x7FF),
		IdentityNumber:          uint32(v & 0x1FFFFF),
	}
}

// AddressClaimFrame builds the Address Claimed broadcast: PGN 0xEE00
// at priority 6 from the claimed source address, carrying the NAME
// little-endian in the data field.
func AddressClaimFrame(name NAME, sa SourceAddress) (*ExtendedFrame, error) {
	raw, err := name.Encode()
	if err != nil {
		return nil, err
	}
	data := make([]byte, 8)
	binary.LittleEndian.PutUint64(data, raw)
	return NewJ1939Frame(J1939ID{Priority: 6, PGN: PGNAddressClaimed, SA: sa}, data)
}

// ParseAddressClaim extracts the NAME and claimed address from an
// Address Claimed frame, or ok=false if the frame is not one.
func ParseAddressClaim(f *ExtendedFrame) (NAME, SourceAddress, bool) {
	id := f.J1939()
	if id.PGN != PGNAddressClaimed || len(f.Data) != 8 {
		return NAME{}, 0, false
	}
	return DecodeNAME(binary.LittleEndian.Uint64(f.Data)), id.SA, true
}

// ResolveAddressClaim applies the J1939-81 contention rule for two
// nodes claiming the same source address: the numerically lower NAME
// keeps it; the loser must either claim another address (if arbitrary-
// address capable) or send a Cannot Claim. It returns true when a
// wins.
func ResolveAddressClaim(a, b NAME) (aWins bool, err error) {
	av, err := a.Encode()
	if err != nil {
		return false, err
	}
	bv, err := b.Encode()
	if err != nil {
		return false, err
	}
	if av == bv {
		return false, fmt.Errorf("canbus: identical NAMEs contesting an address")
	}
	return av < bv, nil
}
