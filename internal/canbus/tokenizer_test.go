package canbus

import (
	"math/rand"
	"testing"
)

// wireOf renders frames separated by idle onto one bit stream.
func wireOf(t *testing.T, frames []*ExtendedFrame, idleBetween int) BitString {
	t.Helper()
	var out BitString
	for i := 0; i < idleBetween; i++ {
		out = append(out, Recessive)
	}
	for _, f := range frames {
		wire, err := f.WireBits(true)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, wire...)
		for i := 0; i < idleBetween; i++ {
			out = append(out, Recessive)
		}
	}
	return out
}

func TestTokenizerDecodesBackToBackFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var frames []*ExtendedFrame
	for i := 0; i < 10; i++ {
		data := make([]byte, rng.Intn(9))
		rng.Read(data)
		frames = append(frames, &ExtendedFrame{ID: rng.Uint32() & (1<<29 - 1), Data: data})
	}
	stream := wireOf(t, frames, IntermissionLength)

	var tk Tokenizer
	var got []Token
	// Feed in uneven chunks.
	for off := 0; off < len(stream); off += 37 {
		end := off + 37
		if end > len(stream) {
			end = len(stream)
		}
		got = append(got, tk.Push(stream[off:end])...)
	}
	if len(got) != len(frames) {
		t.Fatalf("tokenised %d frames, sent %d", len(got), len(frames))
	}
	for i, tok := range got {
		if tok.Err != nil {
			t.Fatalf("frame %d: %v", i, tok.Err)
		}
		if tok.Frame.ID != frames[i].ID {
			t.Fatalf("frame %d ID %#x want %#x", i, tok.Frame.ID, frames[i].ID)
		}
		if string(tok.Frame.Data) != string(frames[i].Data) {
			t.Fatalf("frame %d data mismatch", i)
		}
	}
	// SOF positions strictly increase.
	for i := 1; i < len(got); i++ {
		if got[i].SOFBit <= got[i-1].SOFBit {
			t.Fatalf("SOF positions not increasing: %d then %d", got[i-1].SOFBit, got[i].SOFBit)
		}
	}
}

func TestTokenizerReportsCorruptFrameAndRecovers(t *testing.T) {
	a := &ExtendedFrame{ID: 0x0CF00400, Data: []byte{1, 2}}
	b := &ExtendedFrame{ID: 0x18FEF117, Data: []byte{3, 4}}
	stream := wireOf(t, []*ExtendedFrame{a, b}, 5)
	// Corrupt one bit inside the first frame's CRC-protected region.
	stream[20] ^= 1

	var tk Tokenizer
	got := tk.Push(stream)
	if len(got) != 2 {
		t.Fatalf("%d tokens", len(got))
	}
	if got[0].Err == nil {
		t.Fatal("corrupt frame decoded silently")
	}
	if got[1].Err != nil || got[1].Frame.ID != b.ID {
		t.Fatalf("tokenizer did not recover: %+v", got[1])
	}
}

func TestTokenizerIdleOnly(t *testing.T) {
	idle := make(BitString, 500)
	for i := range idle {
		idle[i] = Recessive
	}
	var tk Tokenizer
	if got := tk.Push(idle); len(got) != 0 {
		t.Fatalf("%d tokens from idle", len(got))
	}
}

func TestTokenizerStuckDominantBusReportsErrors(t *testing.T) {
	// A stuck-dominant bus (all zeros) tokenises as framing errors,
	// never as silent frames or a panic.
	var tk Tokenizer
	got := tk.Push(make(BitString, 500))
	for _, tok := range got {
		if tok.Err == nil {
			t.Fatalf("stuck bus decoded a frame: %+v", tok.Frame)
		}
	}
	if len(got) == 0 {
		t.Fatal("stuck bus produced no error tokens")
	}
}

func TestTokenizerPartialFrameWaits(t *testing.T) {
	f := &ExtendedFrame{ID: 0x0CF00400, Data: []byte{9}}
	stream := wireOf(t, []*ExtendedFrame{f}, 4)
	var tk Tokenizer
	half := len(stream) / 2
	if got := tk.Push(stream[:half]); len(got) != 0 {
		t.Fatalf("half a frame produced %d tokens", len(got))
	}
	got := tk.Push(stream[half:])
	if len(got) != 1 || got[0].Err != nil {
		t.Fatalf("completion failed: %+v", got)
	}
}

func FuzzDecodeFrame(f *testing.F) {
	frame := &ExtendedFrame{ID: 0x18FEF100, Data: []byte{1, 2, 3}}
	wire, _ := frame.WireBits(true)
	seed := make([]byte, len(wire))
	for i, b := range wire {
		seed[i] = byte(b)
	}
	f.Add(seed)
	f.Add([]byte{0, 1, 0, 1, 1, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		bits := make(BitString, len(raw))
		for i, b := range raw {
			bits[i] = Bit(b & 1)
		}
		// Must never panic; errors are fine.
		fr, err := DecodeFrame(bits)
		if err == nil && fr.ID >= 1<<29 {
			t.Fatalf("decoded out-of-range ID %#x", fr.ID)
		}
	})
}

func FuzzTokenizer(f *testing.F) {
	frame := &ExtendedFrame{ID: 0x0CF00400, Data: []byte{7}}
	wire, _ := frame.WireBits(true)
	seed := make([]byte, len(wire))
	for i, b := range wire {
		seed[i] = byte(b)
	}
	f.Add(seed, uint8(13))
	f.Fuzz(func(t *testing.T, raw []byte, chunk uint8) {
		bits := make(BitString, len(raw))
		for i, b := range raw {
			bits[i] = Bit(b & 1)
		}
		step := int(chunk)%63 + 1
		var tk Tokenizer
		for off := 0; off < len(bits); off += step {
			end := off + step
			if end > len(bits) {
				end = len(bits)
			}
			tk.Push(bits[off:end]) // must never panic
		}
	})
}
