package canbus

import (
	"errors"
	"fmt"
)

// Errors returned by frame construction and decoding.
var (
	ErrDataLength     = errors.New("canbus: data length exceeds 8 octets")
	ErrIDRange        = errors.New("canbus: identifier exceeds 29 bits")
	ErrShortFrame     = errors.New("canbus: bit stream too short for a frame")
	ErrStuffViolation = errors.New("canbus: bit stuffing violation")
	ErrCRCMismatch    = errors.New("canbus: CRC mismatch")
	ErrFormViolation  = errors.New("canbus: fixed-form field has wrong value")
)

// Unstuffed bit offsets within an extended data frame, with SOF as bit
// 0 (the numbering Algorithm 1 of the paper uses).
const (
	BitSOF         = 0  // start of frame, dominant
	BitBaseID      = 1  // 11-bit base identifier
	BitSRR         = 12 // substitute remote request, recessive
	BitIDE         = 13 // identifier extension, recessive for extended
	BitExtID       = 14 // 18-bit extended identifier
	BitRTR         = 32 // remote transmission request, dominant for data
	BitR1          = 33 // reserved; first bit after the arbitration field
	BitR0          = 34 // reserved
	BitDLC         = 35 // 4-bit data length code
	BitData        = 39 // start of the data field
	SABitFirst     = 24 // first bit of the J1939 source address
	SABitLast      = 31 // last bit of the J1939 source address
	ArbitrationEnd = 32 // last bit of the arbitration field (RTR)
)

// EOFLength is the number of recessive end-of-frame bits.
const EOFLength = 7

// IntermissionLength is the number of recessive interframe-space bits
// that must pass before another frame may start.
const IntermissionLength = 3

// ExtendedFrame is a CAN 2.0B data frame with a 29-bit identifier
// (Table 2.1). Only data frames are modelled in full because they are
// the frames the intrusion detector inspects.
type ExtendedFrame struct {
	ID   uint32 // 29-bit identifier (J1939: priority | PGN | SA)
	Data []byte // 0–8 octets
}

// NewJ1939Frame builds an extended data frame from J1939 fields.
func NewJ1939Frame(id J1939ID, data []byte) (*ExtendedFrame, error) {
	raw, err := id.Encode()
	if err != nil {
		return nil, err
	}
	f := &ExtendedFrame{ID: raw, Data: data}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// Validate checks field ranges.
func (f *ExtendedFrame) Validate() error {
	if f.ID >= 1<<29 {
		return ErrIDRange
	}
	if len(f.Data) > 8 {
		return ErrDataLength
	}
	return nil
}

// J1939 returns the decomposed J1939 identifier.
func (f *ExtendedFrame) J1939() J1939ID { return DecodeJ1939ID(f.ID) }

// SA returns the J1939 source address (the low eight identifier bits).
func (f *ExtendedFrame) SA() SourceAddress { return SourceAddress(f.ID & 0xFF) }

// headerAndData returns the destuffed bits from SOF through the end of
// the data field — the region the CRC covers.
func (f *ExtendedFrame) headerAndData() (BitString, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	bits := make(BitString, 0, 39+8*len(f.Data))
	bits = append(bits, Dominant) // SOF
	bits = bits.AppendUint(f.ID>>18, 11)
	bits = append(bits, Recessive) // SRR
	bits = append(bits, Recessive) // IDE
	bits = bits.AppendUint(f.ID&(1<<18-1), 18)
	bits = append(bits, Dominant) // RTR: data frame
	bits = append(bits, Dominant) // r1
	bits = append(bits, Dominant) // r0
	bits = bits.AppendUint(uint32(len(f.Data)), 4)
	for _, b := range f.Data {
		bits = bits.AppendUint(uint32(b), 8)
	}
	return bits, nil
}

// UnstuffedBits returns the destuffed logical frame from SOF through
// the last EOF bit, with the CRC sequence computed and the ACK slot
// transmitted recessive (as the sender drives it).
func (f *ExtendedFrame) UnstuffedBits() (BitString, error) {
	bits, err := f.headerAndData()
	if err != nil {
		return nil, err
	}
	crc := CRC15(bits)
	bits = bits.AppendUint(uint32(crc), 15)
	bits = append(bits, Recessive) // CRC delimiter
	bits = append(bits, Recessive) // ACK slot as transmitted
	bits = append(bits, Recessive) // ACK delimiter
	for i := 0; i < EOFLength; i++ {
		bits = append(bits, Recessive)
	}
	return bits, nil
}

// WireBits returns the frame exactly as it appears on the bus: the
// region from SOF through the CRC sequence is bit-stuffed, then the
// CRC delimiter, ACK slot, ACK delimiter and EOF follow unstuffed.
// If ackAsserted is true the ACK slot is dominant, as it is on any
// operational bus where at least one receiver acknowledges the frame.
func (f *ExtendedFrame) WireBits(ackAsserted bool) (BitString, error) {
	bits, err := f.headerAndData()
	if err != nil {
		return nil, err
	}
	crc := CRC15(bits)
	stuffable := bits.AppendUint(uint32(crc), 15)
	wire := Stuff(stuffable)
	wire = append(wire, Recessive) // CRC delimiter
	if ackAsserted {
		wire = append(wire, Dominant)
	} else {
		wire = append(wire, Recessive)
	}
	wire = append(wire, Recessive) // ACK delimiter
	for i := 0; i < EOFLength; i++ {
		wire = append(wire, Recessive)
	}
	return wire, nil
}

// DecodeFrame parses a wire-level (stuffed) bit stream beginning at
// SOF back into a frame, verifying fixed-form fields and the CRC.
func DecodeFrame(wire BitString) (*ExtendedFrame, error) {
	// Destuff only the stuffed region (SOF through CRC). First pull
	// enough bits to read the DLC, then extend to the full frame.
	destuffed, _, violation := UnstuffN(wire, BitData)
	if violation {
		return nil, ErrStuffViolation
	}
	if len(destuffed) < BitData {
		return nil, ErrShortFrame
	}
	if destuffed[BitSOF] != Dominant {
		return nil, fmt.Errorf("%w: SOF recessive", ErrFormViolation)
	}
	if destuffed[BitSRR] != Recessive || destuffed[BitIDE] != Recessive {
		return nil, fmt.Errorf("%w: SRR/IDE not recessive", ErrFormViolation)
	}
	if destuffed[BitRTR] != Dominant {
		return nil, fmt.Errorf("%w: RTR recessive (remote frames unsupported)", ErrFormViolation)
	}
	id := destuffed[BitBaseID:BitSRR].Uint()<<18 | destuffed[BitExtID:BitRTR].Uint()
	dlc := int(destuffed[BitDLC : BitDLC+4].Uint())
	if dlc > 8 {
		dlc = 8 // DLC values 9–15 mean 8 data bytes per ISO 11898-1
	}
	end := BitData + 8*dlc
	destuffed, _, violation = UnstuffN(wire, end+15)
	if violation {
		return nil, ErrStuffViolation
	}
	if len(destuffed) < end+15 {
		return nil, ErrShortFrame
	}
	data := make([]byte, dlc)
	for i := 0; i < dlc; i++ {
		data[i] = byte(destuffed[BitData+8*i : BitData+8*i+8].Uint())
	}
	wantCRC := CRC15(destuffed[:end])
	gotCRC := uint16(destuffed[end : end+15].Uint())
	if wantCRC != gotCRC {
		return nil, ErrCRCMismatch
	}
	return &ExtendedFrame{ID: id, Data: data}, nil
}

// FrameBitLength returns the unstuffed length in bits of a data frame
// carrying n data bytes, from SOF through the last EOF bit.
func FrameBitLength(n int) int {
	// SOF + 11 + SRR + IDE + 18 + RTR + r1 + r0 + DLC(4) + data +
	// CRC(15) + CRCdel + ACK + ACKdel + EOF(7)
	return 39 + 8*n + 15 + 1 + 1 + 1 + EOFLength
}
