package canbus

import (
	"errors"
	"fmt"
)

// J1939 transport protocol (J1939-21): parameter groups larger than
// eight bytes travel as multi-packet sequences. This file implements
// the broadcast variant, TP.BAM (Broadcast Announce Message): a TP.CM
// control frame announcing the transfer, followed by numbered TP.DT
// data frames. Diagnostics and configuration traffic on real trucks
// uses it constantly, so a credible traffic substrate must speak it —
// and it matters to vProfile's design: every packet of a transfer
// still carries the sender's SA, so voltage fingerprinting applies
// per frame with no reassembly needed.

// Transport-protocol parameter groups.
const (
	PGNTPCM PGN = 0xEC00 // connection management (BAM/RTS/CTS/…)
	PGNTPDT PGN = 0xEB00 // data transfer
)

// tpBAMControl is the TP.CM control byte announcing a broadcast.
const tpBAMControl = 32

// Transport-protocol limits (J1939-21).
const (
	tpMaxBytes   = 1785
	tpBytesPerDT = 7
)

// Errors reported by the transport protocol.
var (
	ErrTPSize     = errors.New("canbus: transport payload must be 9–1785 bytes")
	ErrTPSequence = errors.New("canbus: transport sequence error")
	ErrTPFormat   = errors.New("canbus: not a transport-protocol frame")
)

// BAMAnnounce builds the TP.CM BAM frame for a payload of the given
// size carrying the target PGN.
func BAMAnnounce(target PGN, size int, sa SourceAddress) (*ExtendedFrame, error) {
	if size <= 8 || size > tpMaxBytes {
		return nil, fmt.Errorf("%w: %d", ErrTPSize, size)
	}
	packets := (size + tpBytesPerDT - 1) / tpBytesPerDT
	data := []byte{
		tpBAMControl,
		byte(size), byte(size >> 8),
		byte(packets),
		0xFF, // reserved
		byte(target), byte(target >> 8), byte(target >> 16),
	}
	return NewJ1939Frame(J1939ID{Priority: 7, PGN: PGNTPCM | 0xFF, SA: sa}, data)
}

// BAMSplit fragments a payload into the full TP.BAM frame sequence:
// the announce frame followed by the TP.DT frames (7 payload bytes
// each, 0xFF padded, led by a 1-based sequence number).
func BAMSplit(target PGN, payload []byte, sa SourceAddress) ([]*ExtendedFrame, error) {
	ann, err := BAMAnnounce(target, len(payload), sa)
	if err != nil {
		return nil, err
	}
	out := []*ExtendedFrame{ann}
	seq := byte(1)
	for off := 0; off < len(payload); off += tpBytesPerDT {
		data := make([]byte, 8)
		data[0] = seq
		for i := 1; i < 8; i++ {
			data[i] = 0xFF
		}
		n := copy(data[1:], payload[off:])
		_ = n
		frame, err := NewJ1939Frame(J1939ID{Priority: 7, PGN: PGNTPDT | 0xFF, SA: sa}, data)
		if err != nil {
			return nil, err
		}
		out = append(out, frame)
		seq++
	}
	return out, nil
}

// BAMReassembler collects TP.BAM sequences per source address and
// yields completed payloads. Broadcast transfers have no flow control,
// so a dropped frame simply abandons the transfer (as on a real bus).
type BAMReassembler struct {
	sessions map[SourceAddress]*bamSession
}

type bamSession struct {
	target   PGN
	size     int
	packets  int
	received int
	buf      []byte
}

// NewBAMReassembler returns an empty reassembler.
func NewBAMReassembler() *BAMReassembler {
	return &BAMReassembler{sessions: make(map[SourceAddress]*bamSession)}
}

// Completed is a finished transfer.
type Completed struct {
	SA      SourceAddress
	PGN     PGN
	Payload []byte
}

// Feed consumes one frame. It returns a non-nil Completed when the
// frame finishes a transfer, and an error for malformed or
// out-of-sequence transport frames (which also aborts that source's
// session). Non-transport frames are ignored.
func (r *BAMReassembler) Feed(f *ExtendedFrame) (*Completed, error) {
	id := f.J1939()
	switch id.PGN &^ 0xFF {
	case PGNTPCM:
		if len(f.Data) != 8 || f.Data[0] != tpBAMControl {
			return nil, nil // RTS/CTS sessions are point-to-point; not modelled
		}
		size := int(f.Data[1]) | int(f.Data[2])<<8
		packets := int(f.Data[3])
		if size <= 8 || size > tpMaxBytes || packets != (size+tpBytesPerDT-1)/tpBytesPerDT {
			delete(r.sessions, id.SA)
			return nil, fmt.Errorf("%w: size %d packets %d", ErrTPFormat, size, packets)
		}
		target := PGN(f.Data[5]) | PGN(f.Data[6])<<8 | PGN(f.Data[7])<<16
		r.sessions[id.SA] = &bamSession{target: target, size: size, packets: packets}
		return nil, nil
	case PGNTPDT:
		sess, ok := r.sessions[id.SA]
		if !ok {
			return nil, nil // stray data frame; no announced session
		}
		want := byte(sess.received + 1) // 1-based, max 255 by construction
		if len(f.Data) != 8 || f.Data[0] != want {
			delete(r.sessions, id.SA)
			return nil, fmt.Errorf("%w: expected %d got %v", ErrTPSequence, want, f.Data[:1])
		}
		sess.buf = append(sess.buf, f.Data[1:]...)
		sess.received++
		if sess.received == sess.packets {
			payload := sess.buf[:sess.size]
			delete(r.sessions, id.SA)
			return &Completed{SA: id.SA, PGN: sess.target, Payload: payload}, nil
		}
		return nil, nil
	default:
		return nil, nil
	}
}
