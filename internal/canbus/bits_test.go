package canbus

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func bitsFromString(s string) BitString {
	out := make(BitString, 0, len(s))
	for _, c := range s {
		switch c {
		case '0':
			out = append(out, Dominant)
		case '1':
			out = append(out, Recessive)
		}
	}
	return out
}

func TestBitAnd(t *testing.T) {
	cases := []struct{ a, b, want Bit }{
		{Dominant, Dominant, Dominant},
		{Dominant, Recessive, Dominant},
		{Recessive, Dominant, Dominant},
		{Recessive, Recessive, Recessive},
	}
	for _, c := range cases {
		if got := c.a.And(c.b); got != c.want {
			t.Errorf("%v AND %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestBitString(t *testing.T) {
	s := BitString{}.AppendUint(0b1011, 4)
	if s.String() != "1011" {
		t.Fatalf("AppendUint produced %q", s.String())
	}
	if s.Uint() != 0b1011 {
		t.Fatalf("Uint round trip gave %#b", s.Uint())
	}
}

func TestBitStringUintWide(t *testing.T) {
	v := uint32(0x1BADF00D) & (1<<29 - 1)
	s := BitString{}.AppendUint(v, 29)
	if got := s.Uint(); got != v {
		t.Fatalf("29-bit round trip: got %#x want %#x", got, v)
	}
}

func TestBitStringUintPanicsOver32(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for >32-bit Uint")
		}
	}()
	make(BitString, 33).Uint()
}

func TestStuffInsertsAfterFiveEqualBits(t *testing.T) {
	in := bitsFromString("00000")
	out := Stuff(in)
	if out.String() != "000001" {
		t.Fatalf("Stuff(00000) = %s, want 000001", out)
	}
	// After the five 1s a 0 stuff bit is inserted; together with the
	// four payload 0s it forms a new five-run, forcing a second stuff
	// bit.
	in = bitsFromString("111110000")
	out = Stuff(in)
	if out.String() != "11111000001" {
		t.Fatalf("Stuff = %s, want 11111000001", out)
	}
}

func TestStuffCountsStuffBitInNextRun(t *testing.T) {
	// After 00000 the stuff bit is 1; four more 1s then make a run of
	// five and force a 0 stuff bit.
	in := bitsFromString("000001111")
	out := Stuff(in)
	if out.String() != "00000111110" {
		t.Fatalf("Stuff = %s, want 00000111110", out)
	}
}

func TestStuffNoChangeForAlternating(t *testing.T) {
	in := bitsFromString("010101010101")
	out := Stuff(in)
	if out.String() != in.String() {
		t.Fatalf("alternating stream was altered: %s", out)
	}
}

func TestUnstuffRejectsSixEqualBits(t *testing.T) {
	if _, ok := Unstuff(bitsFromString("000000")); ok {
		t.Fatal("Unstuff accepted six consecutive dominant bits")
	}
}

func TestStuffUnstuffRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(120)
		in := make(BitString, n)
		for i := range in {
			in[i] = Bit(rng.Intn(2))
		}
		out, ok := Unstuff(Stuff(in))
		if !ok {
			t.Fatalf("trial %d: round trip flagged violation for %s", trial, in)
		}
		if out.String() != in.String() {
			t.Fatalf("trial %d: round trip %s != %s", trial, out, in)
		}
	}
}

func TestStuffPropertyNoLongRuns(t *testing.T) {
	// Property: a stuffed stream never contains six consecutive equal
	// bits.
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		in := make(BitString, int(n)+1)
		for i := range in {
			in[i] = Bit(rng.Intn(2))
		}
		out := Stuff(in)
		run := 1
		for i := 1; i < len(out); i++ {
			if out[i] == out[i-1] {
				run++
				if run > StuffLimit {
					return false
				}
			} else {
				run = 1
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStuffLengthBound(t *testing.T) {
	// Property: stuffing adds at most len/4 bits (worst case is a
	// stuff bit every four payload bits after the first five).
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		in := make(BitString, int(n)+1)
		for i := range in {
			in[i] = Bit(rng.Intn(2))
		}
		out := Stuff(in)
		return len(out) <= len(in)+len(in)/4+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
