package canbus

import (
	"errors"
	"fmt"
)

// CAN bit timing (ISO 11898-1 §11): each bit divides into time quanta
// across four segments — SYNC_SEG (always one quantum), PROP_SEG,
// PHASE_SEG1 and PHASE_SEG2 — with the sample point between PHASE_SEG1
// and PHASE_SEG2 and resynchronisation bounded by SJW. Controllers
// derive the quantum from their oscillator via the baud-rate
// prescaler. This is the machinery behind the paper's Section 2.1.1
// note that CAN "uses bit transitions to maintain synchronization";
// the edge-set extractor's per-edge re-alignment is the software
// analogue of PHASE_SEG adjustment.

// BitTiming is a controller's bit timing register configuration.
type BitTiming struct {
	ClockHz   float64 // controller oscillator
	Prescaler int     // baud-rate prescaler (quantum = Prescaler/ClockHz)
	PropSeg   int     // propagation segment, quanta
	PhaseSeg1 int     // phase buffer 1, quanta
	PhaseSeg2 int     // phase buffer 2, quanta
	SJW       int     // synchronisation jump width, quanta
}

// Errors reported by bit timing validation.
var (
	ErrBitTiming = errors.New("canbus: invalid bit timing")
)

// QuantaPerBit returns the total time quanta per bit including the
// mandatory single-quantum SYNC_SEG.
func (bt BitTiming) QuantaPerBit() int { return 1 + bt.PropSeg + bt.PhaseSeg1 + bt.PhaseSeg2 }

// Validate checks the ISO constraints: 8–25 quanta per bit, PHASE_SEG2
// at least 2 (and at least the information processing time), SJW no
// larger than the smaller phase segment.
func (bt BitTiming) Validate() error {
	if bt.ClockHz <= 0 || bt.Prescaler < 1 {
		return fmt.Errorf("%w: clock %v / prescaler %d", ErrBitTiming, bt.ClockHz, bt.Prescaler)
	}
	q := bt.QuantaPerBit()
	if q < 8 || q > 25 {
		return fmt.Errorf("%w: %d quanta per bit (want 8–25)", ErrBitTiming, q)
	}
	if bt.PropSeg < 1 || bt.PhaseSeg1 < 1 || bt.PhaseSeg2 < 2 {
		return fmt.Errorf("%w: segments %d/%d/%d", ErrBitTiming, bt.PropSeg, bt.PhaseSeg1, bt.PhaseSeg2)
	}
	if bt.SJW < 1 || bt.SJW > bt.PhaseSeg1 || bt.SJW > bt.PhaseSeg2 || bt.SJW > 4 {
		return fmt.Errorf("%w: SJW %d", ErrBitTiming, bt.SJW)
	}
	return nil
}

// BitRate returns the nominal bit rate the configuration produces.
func (bt BitTiming) BitRate() float64 {
	return bt.ClockHz / (float64(bt.Prescaler) * float64(bt.QuantaPerBit()))
}

// SamplePoint returns the sample point as a fraction of the bit time
// (CiA recommends ~87.5 % for most rates).
func (bt BitTiming) SamplePoint() float64 {
	return float64(1+bt.PropSeg+bt.PhaseSeg1) / float64(bt.QuantaPerBit())
}

// MaxToleratedSkewPPM bounds the oscillator mismatch two controllers
// may have while still resynchronising within SJW over the worst-case
// ten-bit stretch between edges (the classic df ≤ SJW/(2·10·NBT)
// rule). The edge-based re-synchronisation this models is what keeps
// the paper's 100-ppm-class ECU clock skews harmless to communication
// while still visible to timing-based fingerprinting.
func (bt BitTiming) MaxToleratedSkewPPM() float64 {
	return float64(bt.SJW) / (2 * 10 * float64(bt.QuantaPerBit())) * 1e6
}

// TimingFor derives a valid configuration for a target bit rate from
// the given controller clock, preferring quanta counts that land the
// sample point near 87.5 %. It returns an error when no integer
// prescaler fits.
func TimingFor(clockHz, bitRate float64) (BitTiming, error) {
	if clockHz <= 0 || bitRate <= 0 {
		return BitTiming{}, fmt.Errorf("%w: clock %v rate %v", ErrBitTiming, clockHz, bitRate)
	}
	best := BitTiming{}
	bestErr := 1.0
	for q := 25; q >= 8; q-- {
		presc := clockHz / (bitRate * float64(q))
		p := int(presc + 0.5)
		if p < 1 {
			continue
		}
		got := clockHz / (float64(p) * float64(q))
		relErr := abs(got-bitRate) / bitRate
		if relErr > 0.005 {
			continue
		}
		// Split the non-sync quanta: PHASE_SEG2 ≈ 12.5 % of the bit,
		// minimum 2; the rest splits between PROP and PHASE_SEG1.
		ps2 := q / 8
		if ps2 < 2 {
			ps2 = 2
		}
		rest := q - 1 - ps2
		ps1 := rest / 2
		prop := rest - ps1
		if ps1 < 1 || prop < 1 {
			continue
		}
		sjw := ps1
		if sjw > ps2 {
			sjw = ps2
		}
		if sjw > 4 {
			sjw = 4
		}
		bt := BitTiming{ClockHz: clockHz, Prescaler: p, PropSeg: prop, PhaseSeg1: ps1, PhaseSeg2: ps2, SJW: sjw}
		if bt.Validate() != nil {
			continue
		}
		if relErr < bestErr {
			best, bestErr = bt, relErr
		}
	}
	if bestErr > 0.005 {
		return BitTiming{}, fmt.Errorf("%w: no configuration for %v b/s from a %v Hz clock", ErrBitTiming, bitRate, clockHz)
	}
	return best, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
