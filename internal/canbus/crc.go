package canbus

// crcPoly is the CAN 15-bit BCH generator polynomial
// x^15 + x^14 + x^10 + x^8 + x^7 + x^4 + x^3 + 1, represented without
// the leading x^15 term.
const crcPoly = 0x4599

// CRC15 computes the CAN frame check sequence over the destuffed bits
// from the start-of-frame bit through the end of the data field, per
// ISO 11898-1. A recessive bit enters the register as 1.
func CRC15(bits BitString) uint16 {
	var crc uint16
	for _, b := range bits {
		in := uint16(b) // Recessive==1, Dominant==0
		top := (crc >> 14) & 1
		crc = (crc << 1) & 0x7FFF
		if top^in != 0 {
			crc ^= crcPoly
		}
	}
	return crc & 0x7FFF
}
