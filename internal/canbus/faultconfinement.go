package canbus

import "fmt"

// NodeState is a controller's fault-confinement state per ISO 11898-1
// §12: error-active nodes signal errors with dominant flags,
// error-passive nodes with recessive flags (and obey the suspend
// transmission rule), and bus-off nodes may not touch the bus at all.
type NodeState int

// Fault-confinement states.
const (
	ErrorActive NodeState = iota
	ErrorPassive
	BusOff
)

// String names the state.
func (s NodeState) String() string {
	switch s {
	case ErrorActive:
		return "error-active"
	case ErrorPassive:
		return "error-passive"
	case BusOff:
		return "bus-off"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Fault-confinement thresholds (ISO 11898-1).
const (
	errorPassiveThreshold = 128
	busOffThreshold       = 256
	// busOffRecoveryOccurrences is the number of 11-consecutive-
	// recessive-bit occurrences required before a bus-off node may
	// rejoin as error-active.
	busOffRecoveryOccurrences = 128
)

// ErrorCounters implements the transmit/receive error counter rules of
// the CAN fault-confinement entity. The zero value is a fresh
// error-active controller.
type ErrorCounters struct {
	TEC int // transmit error counter
	REC int // receive error counter

	recoverySeen int // 11-recessive-bit occurrences while bus-off
}

// State derives the fault-confinement state from the counters.
func (c *ErrorCounters) State() NodeState {
	switch {
	case c.TEC >= busOffThreshold:
		return BusOff
	case c.TEC >= errorPassiveThreshold || c.REC >= errorPassiveThreshold:
		return ErrorPassive
	default:
		return ErrorActive
	}
}

// OnTransmitError applies rule: a transmitter detecting an error adds
// 8 to its TEC (exception conditions around arbitration-loss ACK
// errors are not modelled).
func (c *ErrorCounters) OnTransmitError() {
	if c.State() == BusOff {
		return
	}
	c.TEC += 8
}

// OnReceiveError applies rule: a receiver detecting an error adds 1 to
// its REC (8 when it was the first to signal, which callers indicate
// with primary).
func (c *ErrorCounters) OnReceiveError(primary bool) {
	if c.State() == BusOff {
		return
	}
	if primary {
		c.REC += 8
	} else {
		c.REC++
	}
}

// OnTransmitSuccess applies rule: successful transmission decrements
// TEC (floor 0).
func (c *ErrorCounters) OnTransmitSuccess() {
	if c.TEC > 0 && c.State() != BusOff {
		c.TEC--
	}
}

// OnReceiveSuccess applies rule: successful reception decrements REC;
// a REC between 119 and 127 re-enters at 119…127 band, modelled here
// with the common simplification of clamping into [0, 127].
func (c *ErrorCounters) OnReceiveSuccess() {
	if c.State() == BusOff {
		return
	}
	if c.REC > 127 {
		c.REC = 127
	}
	if c.REC > 0 {
		c.REC--
	}
}

// OnBusIdleRecovery records one observation of 11 consecutive
// recessive bits while bus-off. After 128 such occurrences the node
// resets to error-active with cleared counters and reports true.
func (c *ErrorCounters) OnBusIdleRecovery() bool {
	if c.State() != BusOff {
		return false
	}
	c.recoverySeen++
	if c.recoverySeen >= busOffRecoveryOccurrences {
		c.TEC = 0
		c.REC = 0
		c.recoverySeen = 0
		return true
	}
	return false
}
