package canbus

import "sort"

// Contender is one ECU attempting to transmit during the same bus-idle
// window. Tag is an opaque caller identifier reported back for the
// winner and losers.
type Contender struct {
	Tag   int
	Frame *ExtendedFrame
}

// ArbitrationResult describes the outcome of a simultaneous-start
// contention resolved by bitwise wired-AND arbitration.
type ArbitrationResult struct {
	WinnerTag int
	// LostAtBit maps each losing contender's tag to the stuffed bit
	// index at which it observed a dominant level while transmitting
	// recessive and backed off (Figure 2.3).
	LostAtBit map[int]int
}

// Arbitrate resolves a simultaneous transmission start among the
// contenders. Every transmitter compares the level it drives with the
// wired-AND bus level bit by bit through the arbitration field; a unit
// that sends recessive but reads dominant has lost and stops
// immediately. The contender with the lowest identifier therefore
// wins. Contenders with identical identifiers are a protocol error on
// a real bus; here the lowest tag wins deterministically so the
// simulator never deadlocks.
func Arbitrate(contenders []Contender) ArbitrationResult {
	res := ArbitrationResult{WinnerTag: -1, LostAtBit: make(map[int]int)}
	if len(contenders) == 0 {
		return res
	}
	type state struct {
		tag  int
		bits BitString
	}
	active := make([]state, 0, len(contenders))
	for _, c := range contenders {
		wire, err := c.Frame.WireBits(false)
		if err != nil {
			continue
		}
		active = append(active, state{tag: c.Tag, bits: wire})
	}
	if len(active) == 0 {
		return res
	}
	sort.Slice(active, func(i, j int) bool { return active[i].tag < active[j].tag })

	// The arbitration field spans stuffed bits; walk until one
	// contender remains. Stuffed streams of distinct IDs must diverge
	// within the stuffed image of the arbitration field.
	for bit := 0; len(active) > 1; bit++ {
		bus := Recessive
		for _, s := range active {
			if bit < len(s.bits) {
				bus = bus.And(s.bits[bit])
			}
		}
		survivors := active[:0]
		for _, s := range active {
			drives := Recessive
			if bit < len(s.bits) {
				drives = s.bits[bit]
			}
			if drives == Recessive && bus == Dominant {
				res.LostAtBit[s.tag] = bit
				continue
			}
			survivors = append(survivors, s)
		}
		active = survivors
		if bit > len(active[0].bits) {
			break // identical streams: lowest-tag survivor wins
		}
		if len(active) > 1 && bit >= 40 {
			// Past the stuffed arbitration field all survivors carry
			// the same identifier; keep the lowest tag.
			for _, s := range active[1:] {
				res.LostAtBit[s.tag] = bit
			}
			active = active[:1]
		}
	}
	res.WinnerTag = active[0].tag
	return res
}
