package canbus

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBAMAnnounceValidation(t *testing.T) {
	if _, err := BAMAnnounce(0x1000, 8, 0); !errors.Is(err, ErrTPSize) {
		t.Errorf("8-byte announce: %v", err)
	}
	if _, err := BAMAnnounce(0x1000, 1786, 0); !errors.Is(err, ErrTPSize) {
		t.Errorf("oversize announce: %v", err)
	}
	f, err := BAMAnnounce(0x1000, 20, 0x17)
	if err != nil {
		t.Fatal(err)
	}
	if f.SA() != 0x17 {
		t.Fatalf("announce SA %#x", f.SA())
	}
	if f.Data[0] != 32 {
		t.Fatalf("control byte %d", f.Data[0])
	}
	if f.Data[3] != 3 { // ceil(20/7)
		t.Fatalf("packet count %d", f.Data[3])
	}
}

func TestBAMRoundTrip(t *testing.T) {
	payload := make([]byte, 100)
	for i := range payload {
		payload[i] = byte(i)
	}
	frames, err := BAMSplit(0x1234, payload, 0x21)
	if err != nil {
		t.Fatal(err)
	}
	// 1 announce + ceil(100/7)=15 data frames.
	if len(frames) != 16 {
		t.Fatalf("%d frames", len(frames))
	}
	r := NewBAMReassembler()
	var done *Completed
	for i, f := range frames {
		c, err := r.Feed(f)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if c != nil {
			if i != len(frames)-1 {
				t.Fatalf("completed early at frame %d", i)
			}
			done = c
		}
	}
	if done == nil {
		t.Fatal("transfer never completed")
	}
	if done.SA != 0x21 || done.PGN != 0x1234 {
		t.Fatalf("completed %#x/%#x", done.SA, uint32(done.PGN))
	}
	if !bytes.Equal(done.Payload, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestBAMRoundTripProperty(t *testing.T) {
	f := func(seed int64, sizeRaw uint16) bool {
		size := 9 + int(sizeRaw)%(tpMaxBytes-9)
		rng := rand.New(rand.NewSource(seed))
		payload := make([]byte, size)
		rng.Read(payload)
		frames, err := BAMSplit(0x0F123, payload, 0x42)
		if err != nil {
			return false
		}
		r := NewBAMReassembler()
		for i, fr := range frames {
			c, err := r.Feed(fr)
			if err != nil {
				return false
			}
			if c != nil {
				return i == len(frames)-1 && bytes.Equal(c.Payload, payload)
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBAMSequenceErrorAbortsSession(t *testing.T) {
	payload := make([]byte, 50)
	frames, err := BAMSplit(0x1000, payload, 0x10)
	if err != nil {
		t.Fatal(err)
	}
	r := NewBAMReassembler()
	if _, err := r.Feed(frames[0]); err != nil {
		t.Fatal(err)
	}
	// Skip frame 1: feeding frame 2 is out of sequence.
	if _, err := r.Feed(frames[2]); !errors.Is(err, ErrTPSequence) {
		t.Fatalf("out-of-sequence: %v", err)
	}
	// The session is gone; further data frames are strays.
	if c, err := r.Feed(frames[3]); err != nil || c != nil {
		t.Fatalf("stray after abort: %v %v", c, err)
	}
}

func TestBAMStrayDataIgnored(t *testing.T) {
	payload := make([]byte, 50)
	frames, err := BAMSplit(0x1000, payload, 0x10)
	if err != nil {
		t.Fatal(err)
	}
	r := NewBAMReassembler()
	// Data frame without an announce.
	if c, err := r.Feed(frames[1]); err != nil || c != nil {
		t.Fatalf("stray: %v %v", c, err)
	}
	// Ordinary traffic passes through silently.
	eec1, err := NewJ1939Frame(J1939ID{Priority: 3, PGN: PGNElectronicEngine1, SA: 0}, make([]byte, 8))
	if err != nil {
		t.Fatal(err)
	}
	if c, err := r.Feed(eec1); err != nil || c != nil {
		t.Fatalf("non-TP frame: %v %v", c, err)
	}
}

func TestBAMInterleavedSources(t *testing.T) {
	// Two sources broadcast concurrently; reassembly is per-SA.
	pa := bytes.Repeat([]byte{0xAA}, 30)
	pb := bytes.Repeat([]byte{0xBB}, 40)
	fa, err := BAMSplit(0x1111, pa, 0x01)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := BAMSplit(0x2222, pb, 0x02)
	if err != nil {
		t.Fatal(err)
	}
	r := NewBAMReassembler()
	var got []*Completed
	maxLen := len(fa)
	if len(fb) > maxLen {
		maxLen = len(fb)
	}
	for i := 0; i < maxLen; i++ {
		for _, frames := range [][]*ExtendedFrame{fa, fb} {
			if i >= len(frames) {
				continue
			}
			c, err := r.Feed(frames[i])
			if err != nil {
				t.Fatal(err)
			}
			if c != nil {
				got = append(got, c)
			}
		}
	}
	if len(got) != 2 {
		t.Fatalf("%d completions", len(got))
	}
	for _, c := range got {
		switch c.SA {
		case 0x01:
			if !bytes.Equal(c.Payload, pa) {
				t.Fatal("SA 0x01 payload corrupted")
			}
		case 0x02:
			if !bytes.Equal(c.Payload, pb) {
				t.Fatal("SA 0x02 payload corrupted")
			}
		default:
			t.Fatalf("unexpected SA %#x", c.SA)
		}
	}
}

func TestBAMFramesStillFingerprintable(t *testing.T) {
	// Every TP frame carries the sender's SA in its identifier — the
	// property that lets vProfile classify multi-packet traffic
	// per-frame without reassembly.
	frames, err := BAMSplit(0x1A2B, make([]byte, 64), 0x31)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frames {
		if f.SA() != 0x31 {
			t.Fatalf("frame %d SA %#x", i, f.SA())
		}
	}
}
