package canbus

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSPNEncodeDecodeKnownValues(t *testing.T) {
	data := make([]byte, 8)
	// Engine speed 1800 rpm → raw 14400 → bytes 4–5 little-endian.
	if err := SPNEngineSpeed.Encode(data, 1800); err != nil {
		t.Fatal(err)
	}
	if data[3] != 0x40 || data[4] != 0x38 { // 14400 = 0x3840
		t.Fatalf("encoded bytes % x", data)
	}
	got, err := SPNEngineSpeed.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1800 {
		t.Fatalf("decoded %v", got)
	}
	// Coolant 90 °C → raw 130 with −40 offset.
	if err := SPNCoolantTemp.Encode(data, 90); err != nil {
		t.Fatal(err)
	}
	if data[0] != 130 {
		t.Fatalf("coolant byte %d", data[0])
	}
}

func TestSPNRangeChecks(t *testing.T) {
	data := make([]byte, 8)
	if err := SPNCoolantTemp.Encode(data, 500); err == nil {
		t.Error("over-range coolant accepted")
	}
	if err := SPNCoolantTemp.Encode(data, -100); err == nil {
		t.Error("under-range coolant accepted")
	}
	short := make([]byte, 2)
	if err := SPNEngineSpeed.Encode(short, 100); err == nil {
		t.Error("encode past payload end accepted")
	}
	if _, err := SPNEngineSpeed.Decode(short); err == nil {
		t.Error("decode past payload end accepted")
	}
}

func TestSPNNotAvailableDecodesNaN(t *testing.T) {
	data := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}
	v, err := SPNEngineSpeed.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(v) {
		t.Fatalf("not-available decoded to %v", v)
	}
}

func TestSPNRoundTripProperty(t *testing.T) {
	f := func(raw uint16) bool {
		data := make([]byte, 8)
		spn := SPNWheelSpeed
		r := uint32(raw)
		if r > spn.rawMax() {
			r = spn.rawMax()
		}
		value := float64(r)*spn.Resolution + spn.Offset
		if err := spn.Encode(data, value); err != nil {
			return false
		}
		got, err := spn.Decode(data)
		if err != nil {
			return false
		}
		return math.Abs(got-value) < spn.Resolution/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSPNsForPGNCatalogue(t *testing.T) {
	for _, pgn := range []PGN{
		PGNElectronicEngine1, PGNElectronicEngine2, PGNEngineTemperature,
		PGNCruiseControl, PGNFuelEconomy, PGNTransmission1, PGNBrakes,
		PGNAmbientConditions,
	} {
		spns := SPNsForPGN(pgn)
		if len(spns) == 0 {
			t.Errorf("PGN %#x has no catalogued SPNs", uint32(pgn))
		}
		for _, s := range spns {
			if s.StartByte+s.Length > 8 {
				t.Errorf("SPN %d overflows the 8-byte payload", s.Number)
			}
			if s.Resolution <= 0 {
				t.Errorf("SPN %d resolution %v", s.Number, s.Resolution)
			}
		}
	}
	if SPNsForPGN(PGNDashDisplay) != nil {
		t.Error("uncatalogued PGN returned SPNs")
	}
}

func TestNAMERoundTrip(t *testing.T) {
	n := NAME{
		ArbitraryAddressCapable: true,
		IndustryGroup:           1, // on-highway
		VehicleSystemInstance:   2,
		VehicleSystem:           3,
		Function:                0x80,
		FunctionInstance:        4,
		ECUInstance:             1,
		ManufacturerCode:        999,
		IdentityNumber:          123456,
	}
	raw, err := n.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if got := DecodeNAME(raw); got != n {
		t.Fatalf("round trip %+v != %+v", got, n)
	}
}

func TestNAMEFieldOverflow(t *testing.T) {
	if _, err := (NAME{ManufacturerCode: 2048}).Encode(); err == nil {
		t.Error("12-bit manufacturer accepted")
	}
	if _, err := (NAME{IdentityNumber: 1 << 21}).Encode(); err == nil {
		t.Error("22-bit identity accepted")
	}
}

func TestAddressClaimFrameRoundTrip(t *testing.T) {
	n := NAME{IndustryGroup: 1, Function: 0x3C, ManufacturerCode: 100, IdentityNumber: 42}
	f, err := AddressClaimFrame(n, 0x31)
	if err != nil {
		t.Fatal(err)
	}
	gotName, gotSA, ok := ParseAddressClaim(f)
	if !ok {
		t.Fatal("claim frame not recognised")
	}
	if gotSA != 0x31 || gotName != n {
		t.Fatalf("parsed %+v @ %#x", gotName, gotSA)
	}
	// A data frame with a different PGN is not a claim.
	other, err := NewJ1939Frame(J1939ID{Priority: 3, PGN: PGNElectronicEngine1, SA: 0}, make([]byte, 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := ParseAddressClaim(other); ok {
		t.Fatal("EEC1 misparsed as address claim")
	}
}

func TestResolveAddressClaim(t *testing.T) {
	lo := NAME{ManufacturerCode: 1, IdentityNumber: 1}
	hi := NAME{ManufacturerCode: 1, IdentityNumber: 2}
	aWins, err := ResolveAddressClaim(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if !aWins {
		t.Fatal("lower NAME lost the contention")
	}
	bWins, err := ResolveAddressClaim(hi, lo)
	if err != nil {
		t.Fatal(err)
	}
	if bWins {
		t.Fatal("higher NAME won the contention")
	}
	if _, err := ResolveAddressClaim(lo, lo); err == nil {
		t.Fatal("identical NAMEs not rejected")
	}
}

func TestAddressClaimRidesNormalArbitration(t *testing.T) {
	// Two nodes claiming different addresses simultaneously: normal
	// identifier arbitration applies, and the lower SA's frame (lower
	// ID, same priority/PGN) wins the bus.
	nameA := NAME{ManufacturerCode: 5, IdentityNumber: 10}
	fa, err := AddressClaimFrame(nameA, 0x10)
	if err != nil {
		t.Fatal(err)
	}
	nameB := NAME{ManufacturerCode: 5, IdentityNumber: 11}
	fb, err := AddressClaimFrame(nameB, 0x20)
	if err != nil {
		t.Fatal(err)
	}
	res := Arbitrate([]Contender{{Tag: 0, Frame: fa}, {Tag: 1, Frame: fb}})
	if res.WinnerTag != 0 {
		t.Fatalf("winner %d", res.WinnerTag)
	}
}
