package canbus

import (
	"errors"
	"fmt"
	"math"
)

// SPN describes a J1939 suspect parameter number: where a signal lives
// inside a parameter group's 8-byte payload and how raw counts map to
// engineering units (value = raw·Resolution + Offset). J1939 signals
// are little-endian ("Intel" byte order).
type SPN struct {
	Number     int
	Name       string
	StartByte  int // 0-based offset into the data field
	Length     int // 1 or 2 bytes
	Resolution float64
	Offset     float64
	Units      string
}

// Errors reported by SPN coding.
var (
	ErrSPNRange  = errors.New("canbus: value outside SPN range")
	ErrSPNLayout = errors.New("canbus: SPN does not fit the payload")
)

// rawMax returns the largest encodable raw count. J1939 reserves the
// top of the range for error/not-available indicators, so the usable
// span stops at 0xFA/0xFAFF.
func (s SPN) rawMax() uint32 {
	if s.Length == 1 {
		return 0xFA
	}
	return 0xFAFF
}

// Min and Max return the engineering-unit range.
func (s SPN) Min() float64 { return s.Offset }

// Max returns the largest encodable engineering value.
func (s SPN) Max() float64 { return float64(s.rawMax())*s.Resolution + s.Offset }

// Encode writes value into data.
func (s SPN) Encode(data []byte, value float64) error {
	if s.StartByte+s.Length > len(data) {
		return fmt.Errorf("%w: SPN %d needs bytes %d..%d of %d", ErrSPNLayout, s.Number, s.StartByte, s.StartByte+s.Length-1, len(data))
	}
	raw := math.Round((value - s.Offset) / s.Resolution)
	if raw < 0 || raw > float64(s.rawMax()) {
		return fmt.Errorf("%w: SPN %d value %g outside [%g, %g]", ErrSPNRange, s.Number, value, s.Min(), s.Max())
	}
	r := uint32(raw)
	data[s.StartByte] = byte(r)
	if s.Length == 2 {
		data[s.StartByte+1] = byte(r >> 8)
	}
	return nil
}

// Decode reads the engineering value from data. The J1939
// not-available patterns (0xFF / 0xFFFF) decode to NaN.
func (s SPN) Decode(data []byte) (float64, error) {
	if s.StartByte+s.Length > len(data) {
		return 0, fmt.Errorf("%w: SPN %d needs bytes %d..%d of %d", ErrSPNLayout, s.Number, s.StartByte, s.StartByte+s.Length-1, len(data))
	}
	raw := uint32(data[s.StartByte])
	notAvail := uint32(0xFF)
	if s.Length == 2 {
		raw |= uint32(data[s.StartByte+1]) << 8
		notAvail = 0xFFFF
	}
	if raw == notAvail {
		return math.NaN(), nil
	}
	return float64(raw)*s.Resolution + s.Offset, nil
}

// Well-known SPNs carried by the parameter groups the simulated
// vehicles broadcast (SAE J1939-71 definitions).
var (
	SPNEngineSpeed = SPN{Number: 190, Name: "Engine Speed", StartByte: 3, Length: 2,
		Resolution: 0.125, Offset: 0, Units: "rpm"} // EEC1 bytes 4–5
	SPNAccelPedal = SPN{Number: 91, Name: "Accelerator Pedal Position", StartByte: 1, Length: 1,
		Resolution: 0.4, Offset: 0, Units: "%"} // EEC2 byte 2
	SPNCoolantTemp = SPN{Number: 110, Name: "Engine Coolant Temperature", StartByte: 0, Length: 1,
		Resolution: 1, Offset: -40, Units: "°C"} // ET1 byte 1
	SPNWheelSpeed = SPN{Number: 84, Name: "Wheel-Based Vehicle Speed", StartByte: 1, Length: 2,
		Resolution: 1.0 / 256, Offset: 0, Units: "km/h"} // CCVS bytes 2–3
	SPNFuelRate = SPN{Number: 183, Name: "Fuel Rate", StartByte: 0, Length: 2,
		Resolution: 0.05, Offset: 0, Units: "L/h"} // LFE bytes 1–2
	SPNOutputShaftSpeed = SPN{Number: 191, Name: "Transmission Output Shaft Speed", StartByte: 0, Length: 2,
		Resolution: 0.125, Offset: 0, Units: "rpm"} // ETC1 bytes 1–2
	SPNBrakePedal = SPN{Number: 521, Name: "Brake Pedal Position", StartByte: 0, Length: 1,
		Resolution: 0.4, Offset: 0, Units: "%"} // EBC1-style byte 1
	SPNAmbientTemp = SPN{Number: 171, Name: "Ambient Air Temperature", StartByte: 3, Length: 2,
		Resolution: 0.03125, Offset: -273, Units: "°C"} // AMB bytes 4–5
)

// SPNsForPGN returns the catalogued signals of a parameter group.
func SPNsForPGN(pgn PGN) []SPN {
	switch pgn {
	case PGNElectronicEngine1:
		return []SPN{SPNEngineSpeed}
	case PGNElectronicEngine2:
		return []SPN{SPNAccelPedal}
	case PGNEngineTemperature:
		return []SPN{SPNCoolantTemp}
	case PGNCruiseControl:
		return []SPN{SPNWheelSpeed}
	case PGNFuelEconomy:
		return []SPN{SPNFuelRate}
	case PGNTransmission1:
		return []SPN{SPNOutputShaftSpeed}
	case PGNBrakes:
		return []SPN{SPNBrakePedal}
	case PGNAmbientConditions:
		return []SPN{SPNAmbientTemp}
	default:
		return nil
	}
}
