package analog

import (
	"fmt"
	"math"
)

// Trace is a sampled voltage record expressed in ADC code units.
// Codes are carried as float64 because every downstream consumer
// (edge-set extraction, covariance, distances) is floating point; the
// values themselves are integral after quantisation.
type Trace []float64

// ADC models an analog-to-digital converter front end: a sampling
// rate, a resolution and an input range mapped to offset-binary codes
// (0 … 2^Bits−1). The paper's Vehicle A digitizer runs at 20 MS/s and
// 16 bits, the custom board on Vehicle B at 10 MS/s and 12 bits.
type ADC struct {
	SampleRate float64 // samples per second
	Bits       int     // resolution, 1–16
	MinVolts   float64 // input mapped to code 0
	MaxVolts   float64 // input mapped to the full-scale code
}

// Validate reports configuration errors.
func (a ADC) Validate() error {
	if a.SampleRate <= 0 {
		return fmt.Errorf("analog: sample rate %v not positive", a.SampleRate)
	}
	if a.Bits < 1 || a.Bits > 16 {
		return fmt.Errorf("analog: resolution %d bits outside 1–16", a.Bits)
	}
	if a.MaxVolts <= a.MinVolts {
		return fmt.Errorf("analog: input range [%v, %v] empty", a.MinVolts, a.MaxVolts)
	}
	return nil
}

// FullScale returns the maximum code value, 2^Bits − 1.
func (a ADC) FullScale() float64 { return float64(uint32(1)<<uint(a.Bits) - 1) }

// VoltsToCode quantises one voltage to the nearest code, clamped to
// the converter range.
func (a ADC) VoltsToCode(v float64) float64 {
	fs := a.FullScale()
	c := math.Round((v - a.MinVolts) / (a.MaxVolts - a.MinVolts) * fs)
	if c < 0 {
		return 0
	}
	if c > fs {
		return fs
	}
	return c
}

// CodeToVolts maps a code back to the centre of its quantisation bin.
// Negative results for codes below the offset are the "artifact of the
// conversion from offset binary to volts" the paper mentions under
// Figure 3.1.
func (a ADC) CodeToVolts(c float64) float64 {
	return a.MinVolts + c/a.FullScale()*(a.MaxVolts-a.MinVolts)
}

// Quantize converts a voltage waveform into a code trace.
func (a ADC) Quantize(volts []float64) Trace {
	out := make(Trace, len(volts))
	for i, v := range volts {
		out[i] = a.VoltsToCode(v)
	}
	return out
}

// SamplesPerBit returns the (generally non-integral) number of samples
// per bus bit at the given bit rate; e.g. 40 samples/bit at 10 MS/s on
// a 250 kb/s bus, the figure Algorithm 1 uses.
func (a ADC) SamplesPerBit(bitRate float64) float64 { return a.SampleRate / bitRate }
