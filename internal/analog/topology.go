package analog

import (
	"errors"
	"math"
)

// Stub topology: the overshoot ringing every edge set carries comes
// from reflections on unterminated drop cables ("stubs") between each
// ECU and the main bus line. The ring frequency is set by the stub's
// electrical length — a quarter-wave resonance — which is one of the
// physical reasons two ECUs of the same part number still ring
// differently: they hang on different stubs. These helpers derive
// transceiver ring parameters from a harness description, so vehicle
// definitions can be written in installation terms.

// PropagationVelocity is the signal velocity on typical CAN cable,
// ~0.66 c in metres per second.
const PropagationVelocity = 0.66 * 299792458.0

// Stub describes one ECU's drop cable.
type Stub struct {
	LengthM float64 // stub length in metres
	// MismatchGamma is the reflection coefficient magnitude at the
	// stub end (0 = perfectly terminated, →1 = open).
	MismatchGamma float64
}

// ErrStub reports an invalid stub description.
var ErrStub = errors.New("analog: invalid stub")

// RingFrequency returns the quarter-wave resonance of the stub:
// f = v / (4·L).
func (s Stub) RingFrequency() (float64, error) {
	if s.LengthM <= 0 {
		return 0, ErrStub
	}
	return PropagationVelocity / (4 * s.LengthM), nil
}

// RingDecay estimates the ringing decay time constant: each round
// trip (2L/v) retains |Γ| of the amplitude, so the exponential
// envelope has τ = roundTrip / −ln|Γ|.
func (s Stub) RingDecay() (float64, error) {
	if s.LengthM <= 0 || s.MismatchGamma <= 0 || s.MismatchGamma >= 1 {
		return 0, ErrStub
	}
	roundTrip := 2 * s.LengthM / PropagationVelocity
	return roundTrip / -math.Log(s.MismatchGamma), nil
}

// ApplyStub overwrites a transceiver's ring parameters from the stub
// description, scaling the overshoot amplitude by the mismatch.
func ApplyStub(tx *Transceiver, s Stub, baseOvershoot float64) error {
	f, err := s.RingFrequency()
	if err != nil {
		return err
	}
	tau, err := s.RingDecay()
	if err != nil {
		return err
	}
	tx.RingFreq = f
	tx.RingTau = tau
	tx.OvershootAmp = baseOvershoot * s.MismatchGamma
	tx.UndershootAmp = tx.OvershootAmp * 0.7
	return nil
}
