package analog

import "fmt"

// Environment captures the operating conditions Section 4.4 of the
// paper varies: the ECU temperature and the battery (supply) voltage.
type Environment struct {
	TemperatureC float64
	SupplyVolts  float64
}

// Transceiver is the analog output model of one ECU's CAN driver. All
// voltages are differential (CAN_H − CAN_L): nominally ~2 V dominant
// and ~0 V recessive. Manufacturing variation makes every field
// slightly different per device; that variation is the fingerprint
// vProfile exploits.
type Transceiver struct {
	Name string

	VDom float64 // dominant differential level (V)
	VRec float64 // recessive differential level (V), near 0

	TauRise float64 // rise time constant (s), recessive→dominant
	TauFall float64 // fall time constant (s), dominant→recessive

	OvershootAmp  float64 // overshoot amplitude on rising edges (V)
	UndershootAmp float64 // undershoot amplitude on falling edges (V)
	RingFreq      float64 // ringing frequency (Hz)
	RingTau       float64 // ringing decay time constant (s)

	NoiseSigma      float64 // additive white noise per sample (V)
	EdgeJitterSigma float64 // gaussian jitter of each transition (s)

	// BurstProb and BurstScale model transient disturbances (EMI,
	// alternator load dumps): with probability BurstProb a whole
	// frame is rendered with its noise scaled by BurstScale. These
	// heavy tails are what make real captures' maximum intra-cluster
	// distance sit several times above the mean (Table 5.1's max
	// distances versus typical distances), giving the detection
	// threshold its headroom.
	BurstProb  float64
	BurstScale float64

	// Environmental sensitivities (Section 4.4). Levels shift with
	// temperature and supply; time constants stretch with temperature.
	TempCoVDom   float64 // V per °C away from NominalTempC
	TempCoTau    float64 // fractional τ change per °C
	SupplyCoVDom float64 // V per volt of supply deviation

	NominalTempC   float64
	NominalSupplyV float64
}

// Validate reports parameter errors that would make synthesis
// meaningless.
func (t *Transceiver) Validate() error {
	if t.VDom <= t.VRec {
		return fmt.Errorf("analog: %s: dominant level %v not above recessive %v", t.Name, t.VDom, t.VRec)
	}
	if t.TauRise <= 0 || t.TauFall <= 0 {
		return fmt.Errorf("analog: %s: non-positive time constant", t.Name)
	}
	if t.NoiseSigma < 0 || t.EdgeJitterSigma < 0 {
		return fmt.Errorf("analog: %s: negative noise parameter", t.Name)
	}
	return nil
}

// effectiveLevels returns the dominant/recessive levels and time
// constants after applying the environment.
func (t *Transceiver) effectiveLevels(env Environment) (vDom, vRec, tauRise, tauFall float64) {
	dT := env.TemperatureC - t.NominalTempC
	dV := env.SupplyVolts - t.NominalSupplyV
	// The transceiver runs from a regulated rail; above nominal the
	// regulator holds its output (small headroom), while sagging
	// supply passes through. This is why the paper's engine-running
	// battery rise (13.6 V) barely moves the bus voltage.
	if dV > 0.05 {
		dV = 0.05
	}
	vDom = t.VDom + t.TempCoVDom*dT + t.SupplyCoVDom*dV
	// The recessive level is set by the bus termination bias and moves
	// an order of magnitude less than the driven dominant level.
	vRec = t.VRec + 0.1*(t.TempCoVDom*dT+t.SupplyCoVDom*dV)
	scale := 1 + t.TempCoTau*dT
	if scale < 0.1 {
		scale = 0.1
	}
	tauRise = t.TauRise * scale
	tauFall = t.TauFall * scale
	return vDom, vRec, tauRise, tauFall
}

// NominalEnvironment returns the environment the transceiver was
// characterised at.
func (t *Transceiver) NominalEnvironment() Environment {
	return Environment{TemperatureC: t.NominalTempC, SupplyVolts: t.NominalSupplyV}
}
