package analog

import (
	"math"
	"math/rand"

	"vprofile/internal/canbus"
)

// SynthConfig controls frame-waveform synthesis.
type SynthConfig struct {
	ADC     ADC
	BitRate float64 // bus bit rate (b/s), 250 kb/s on both test vehicles

	// LeadIdleBits is the number of recessive bus-idle bit times
	// rendered before the SOF so that detectors can lock onto the
	// idle→dominant SOF transition. At least one is required.
	LeadIdleBits int

	// MaxSamples truncates the rendered trace (0 renders the whole
	// frame). Edge-set extraction needs only the first ~40 bits of a
	// frame, so experiments use truncation to keep synthesis cheap.
	MaxSamples int
}

// Validate reports configuration errors.
func (c SynthConfig) Validate() error {
	if err := c.ADC.Validate(); err != nil {
		return err
	}
	if c.BitRate <= 0 {
		return errBitRate
	}
	return nil
}

var errBitRate = errString("analog: bit rate must be positive")

type errString string

func (e errString) Error() string { return string(e) }

// Synthesize renders the wire-level bits of one frame, as transmitted
// by tx under env, into the ADC code trace a digitizer on the bus
// would record. The returned trace starts with LeadIdleBits of
// recessive idle, includes per-edge timing jitter, first-order
// rise/fall dynamics, damped-sinusoid overshoot ringing, additive
// noise and a random sub-sample phase — everything Figure 2.5 of the
// paper shows in the real captures.
func Synthesize(tx *Transceiver, wire canbus.BitString, cfg SynthConfig, env Environment, rng *rand.Rand) Trace {
	vDom, vRec, tauRise, tauFall := tx.effectiveLevels(env)
	level := func(b canbus.Bit) float64 {
		if b == canbus.Dominant {
			return vDom
		}
		return vRec
	}

	noiseSigma := tx.NoiseSigma
	if tx.BurstProb > 0 && rng.Float64() < tx.BurstProb {
		noiseSigma *= tx.BurstScale
	}

	lead := cfg.LeadIdleBits
	if lead < 1 {
		lead = 1
	}
	bitTime := 1 / cfg.BitRate
	dt := 1 / cfg.ADC.SampleRate

	// Transition list: one segment per run of equal bits, preceded by
	// the idle (recessive) lead-in.
	type segment struct {
		start  float64 // transition time (jittered)
		target float64 // asymptotic level
		vFrom  float64 // waveform value at the transition instant
		rising bool
		tau    float64
		ringA  float64
	}
	segs := make([]segment, 0, len(wire)/2+2)
	segs = append(segs, segment{start: 0, target: level(canbus.Recessive), vFrom: level(canbus.Recessive), tau: tauFall})
	prev := canbus.Recessive
	tBit := float64(lead) * bitTime
	for i, b := range wire {
		if b != prev {
			jitter := rng.NormFloat64() * tx.EdgeJitterSigma
			start := tBit + float64(i)*bitTime + jitter
			rising := b == canbus.Dominant
			tau := tauFall
			ringA := -tx.UndershootAmp
			if rising {
				tau = tauRise
				ringA = tx.OvershootAmp
			}
			segs = append(segs, segment{start: start, target: level(b), rising: rising, tau: tau, ringA: ringA})
			prev = b
		}
	}

	// Evaluate each segment's starting value from its predecessor.
	evalAt := func(s *segment, t float64) float64 {
		d := t - s.start
		if d < 0 {
			d = 0
		}
		v := s.target + (s.vFrom-s.target)*math.Exp(-d/s.tau)
		if s.ringA != 0 {
			v += s.ringA * math.Exp(-d/tx.RingTau) * math.Sin(2*math.Pi*tx.RingFreq*d)
		}
		return v
	}
	for i := 1; i < len(segs); i++ {
		segs[i].vFrom = evalAt(&segs[i-1], segs[i].start)
	}

	total := int(math.Ceil((float64(lead+len(wire)) * bitTime) / dt))
	if cfg.MaxSamples > 0 && cfg.MaxSamples < total {
		total = cfg.MaxSamples
	}
	phase := rng.Float64() * dt // sub-sample phase of the digitizer clock
	volts := make([]float64, total)
	seg := 0
	for i := range volts {
		t := float64(i)*dt + phase
		for seg+1 < len(segs) && t >= segs[seg+1].start {
			seg++
		}
		volts[i] = evalAt(&segs[seg], t) + rng.NormFloat64()*noiseSigma
	}
	return cfg.ADC.Quantize(volts)
}

// SynthesizeFrame is a convenience wrapper that stuffs and renders a
// frame in one step. ACK assertion is enabled because on a live bus a
// receiver always asserts the slot; the paper notes the ACK voltage
// can deviate from the rest of the message, which is why extraction
// stays in the first half of the frame.
func SynthesizeFrame(tx *Transceiver, f *canbus.ExtendedFrame, cfg SynthConfig, env Environment, rng *rand.Rand) (Trace, error) {
	wire, err := f.WireBits(true)
	if err != nil {
		return nil, err
	}
	return Synthesize(tx, wire, cfg, env, rng), nil
}
