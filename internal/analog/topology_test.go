package analog

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStubRingFrequency(t *testing.T) {
	// A 20 m stub rings at v/(4·20) ≈ 2.47 MHz — the MHz-scale rings
	// the vehicle calibration uses.
	s := Stub{LengthM: 20, MismatchGamma: 0.5}
	f, err := s.RingFrequency()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-2.47e6)/2.47e6 > 0.01 {
		t.Fatalf("ring frequency %v", f)
	}
	if _, err := (Stub{LengthM: 0}).RingFrequency(); err == nil {
		t.Fatal("zero-length stub accepted")
	}
}

func TestStubRingDecay(t *testing.T) {
	s := Stub{LengthM: 20, MismatchGamma: 0.5}
	tau, err := s.RingDecay()
	if err != nil {
		t.Fatal(err)
	}
	// Round trip ≈ 202 ns; τ = 202ns/ln2 ≈ 292 ns.
	if tau < 200e-9 || tau > 400e-9 {
		t.Fatalf("decay %v", tau)
	}
	for _, bad := range []Stub{{LengthM: 20, MismatchGamma: 0}, {LengthM: 20, MismatchGamma: 1}, {LengthM: -1, MismatchGamma: 0.5}} {
		if _, err := bad.RingDecay(); err == nil {
			t.Fatalf("stub %+v accepted", bad)
		}
	}
}

func TestStubProperties(t *testing.T) {
	// Longer stubs ring lower and (at fixed Γ) decay slower.
	f := func(l1Raw, l2Raw uint8) bool {
		l1 := 1 + float64(l1Raw%40)
		l2 := l1 + 1 + float64(l2Raw%40)
		s1 := Stub{LengthM: l1, MismatchGamma: 0.5}
		s2 := Stub{LengthM: l2, MismatchGamma: 0.5}
		f1, err1 := s1.RingFrequency()
		f2, err2 := s2.RingFrequency()
		t1, err3 := s1.RingDecay()
		t2, err4 := s2.RingDecay()
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		return f2 < f1 && t2 > t1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestApplyStub(t *testing.T) {
	tx := testTransceiver()
	if err := ApplyStub(tx, Stub{LengthM: 25, MismatchGamma: 0.6}, 0.4); err != nil {
		t.Fatal(err)
	}
	if tx.RingFreq < 1.5e6 || tx.RingFreq > 2.5e6 {
		t.Fatalf("applied ring frequency %v", tx.RingFreq)
	}
	if math.Abs(tx.OvershootAmp-0.24) > 1e-12 {
		t.Fatalf("overshoot %v", tx.OvershootAmp)
	}
	if tx.UndershootAmp >= tx.OvershootAmp {
		t.Fatalf("undershoot %v not below overshoot", tx.UndershootAmp)
	}
	if err := tx.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ApplyStub(tx, Stub{LengthM: 0, MismatchGamma: 0.5}, 0.3); err == nil {
		t.Fatal("invalid stub applied")
	}
}
