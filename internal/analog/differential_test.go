package analog

import (
	"math"
	"math/rand"
	"testing"
)

func TestSynthesizeDifferentialLevels(t *testing.T) {
	tx := testTransceiver()
	tx.NoiseSigma = 0
	tx.EdgeJitterSigma = 0
	f := mustFrame(t)
	wire, err := f.WireBits(true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := synthCfg()
	d := SynthesizeDifferential(tx, wire, cfg, tx.NominalEnvironment(), 0, rand.New(rand.NewSource(1)))
	adc := cfg.ADC
	// Idle: both wires rest at the 2.5 V bias (Figure 2.1).
	for i := 0; i < 40; i++ {
		hv := adc.CodeToVolts(d.CANH[i])
		lv := adc.CodeToVolts(d.CANL[i])
		if math.Abs(hv-2.5) > 0.05 || math.Abs(lv-2.5) > 0.05 {
			t.Fatalf("idle sample %d: H=%.3f L=%.3f", i, hv, lv)
		}
	}
	// Settled dominant (inside SOF): H ≈ 3.5 V, L ≈ 1.5 V.
	hv := adc.CodeToVolts(d.CANH[115])
	lv := adc.CodeToVolts(d.CANL[115])
	if math.Abs(hv-3.5) > 0.1 || math.Abs(lv-1.5) > 0.1 {
		t.Fatalf("dominant: H=%.3f L=%.3f", hv, lv)
	}
}

func TestDifferentialRecoversSingleEndedSynthesis(t *testing.T) {
	// Differential(H, L) must match the single-ended synthesis of the
	// same seed to within quantisation error.
	tx := testTransceiver()
	f := mustFrame(t)
	wire, err := f.WireBits(true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := synthCfg()
	env := tx.NominalEnvironment()
	want := Synthesize(tx, wire, cfg, env, rand.New(rand.NewSource(9)))
	d := SynthesizeDifferential(tx, wire, cfg, env, 0, rand.New(rand.NewSource(9)))
	got := d.Differential(cfg.ADC)
	if len(got) != len(want) {
		t.Fatalf("length %d vs %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 3 { // two quantisation steps of slack
			t.Fatalf("sample %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestDifferentialRejectsCommonMode(t *testing.T) {
	// Strong common-mode noise lands on both wires but cancels in the
	// differential — the reason the bus is differential at all.
	tx := testTransceiver()
	tx.NoiseSigma = 0
	tx.EdgeJitterSigma = 0
	f := mustFrame(t)
	wire, err := f.WireBits(true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := synthCfg()
	env := tx.NominalEnvironment()
	clean := Synthesize(tx, wire, cfg, env, rand.New(rand.NewSource(4)))
	noisy := SynthesizeDifferential(tx, wire, cfg, env, 0.3, rand.New(rand.NewSource(4)))
	// Each wire individually is badly disturbed…
	var wireDev float64
	for i := range clean {
		hv := cfg.ADC.CodeToVolts(noisy.CANH[i])
		want := 2.5 + cfg.ADC.CodeToVolts(clean[i])/2
		wireDev += math.Abs(hv - want)
	}
	wireDev /= float64(len(clean))
	if wireDev < 0.1 {
		t.Fatalf("common-mode injection too weak to test: %.4f V", wireDev)
	}
	// …but the differential stays clean.
	got := noisy.Differential(cfg.ADC)
	var diffDev float64
	for i := range clean {
		diffDev += math.Abs(cfg.ADC.CodeToVolts(got[i]) - cfg.ADC.CodeToVolts(clean[i]))
	}
	diffDev /= float64(len(clean))
	if diffDev > 0.01 {
		t.Fatalf("differential deviates %.4f V under common-mode noise", diffDev)
	}
}

func TestDifferentialUnequalLengths(t *testing.T) {
	d := DifferentialTrace{CANH: Trace{1, 2, 3}, CANL: Trace{1, 2}}
	adc := testADC16()
	if got := d.Differential(adc); len(got) != 2 {
		t.Fatalf("length %d, want the shorter wire's 2", len(got))
	}
}
