package analog

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vprofile/internal/canbus"
)

func testADC16() ADC {
	return ADC{SampleRate: 10e6, Bits: 16, MinVolts: -5, MaxVolts: 5}
}

func testTransceiver() *Transceiver {
	return &Transceiver{
		Name: "test", VDom: 2.0, VRec: 0.02,
		TauRise: 60e-9, TauFall: 80e-9,
		OvershootAmp: 0.18, UndershootAmp: 0.12,
		RingFreq: 2.5e6, RingTau: 250e-9,
		NoiseSigma: 0.004, EdgeJitterSigma: 2e-9,
		TempCoVDom: -0.002, TempCoTau: 0.002, SupplyCoVDom: 0.01,
		NominalTempC: 25, NominalSupplyV: 12.6,
	}
}

func TestADCValidate(t *testing.T) {
	good := testADC16()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Bits = 0
	if bad.Validate() == nil {
		t.Error("0-bit ADC accepted")
	}
	bad = good
	bad.SampleRate = 0
	if bad.Validate() == nil {
		t.Error("zero sample rate accepted")
	}
	bad = good
	bad.MaxVolts = bad.MinVolts
	if bad.Validate() == nil {
		t.Error("empty range accepted")
	}
}

func TestADCCodeRoundTrip(t *testing.T) {
	a := testADC16()
	f := func(raw uint16) bool {
		c := float64(raw)
		v := a.CodeToVolts(c)
		return a.VoltsToCode(v) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestADCClamping(t *testing.T) {
	a := testADC16()
	if got := a.VoltsToCode(100); got != a.FullScale() {
		t.Errorf("over-range code %v", got)
	}
	if got := a.VoltsToCode(-100); got != 0 {
		t.Errorf("under-range code %v", got)
	}
}

func TestADCKnownCodes(t *testing.T) {
	a := testADC16()
	// 0 V sits mid-range on a ±5 V converter.
	if got := a.VoltsToCode(0); math.Abs(got-32768) > 1 {
		t.Errorf("0 V → code %v, want ≈32768", got)
	}
	// 2 V dominant lands near the paper's ~38,000–46,000 region.
	if got := a.VoltsToCode(2.0); math.Abs(got-45875) > 2 {
		t.Errorf("2 V → code %v, want ≈45875", got)
	}
}

func TestADCSamplesPerBit(t *testing.T) {
	a := testADC16()
	// The paper: 10 MS/s on a 250 kb/s bus is ~40 samples/bit.
	if got := a.SamplesPerBit(250e3); got != 40 {
		t.Fatalf("SamplesPerBit = %v, want 40", got)
	}
}

func TestTransceiverValidate(t *testing.T) {
	tx := testTransceiver()
	if err := tx.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *tx
	bad.VDom = bad.VRec
	if bad.Validate() == nil {
		t.Error("flat levels accepted")
	}
	bad = *tx
	bad.TauRise = 0
	if bad.Validate() == nil {
		t.Error("zero tau accepted")
	}
	bad = *tx
	bad.NoiseSigma = -1
	if bad.Validate() == nil {
		t.Error("negative noise accepted")
	}
}

func TestEffectiveLevelsShiftWithEnvironment(t *testing.T) {
	tx := testTransceiver()
	nom := tx.NominalEnvironment()
	vd0, vr0, tr0, _ := tx.effectiveLevels(nom)
	if vd0 != tx.VDom || vr0 != tx.VRec || tr0 != tx.TauRise {
		t.Fatal("nominal environment changed parameters")
	}
	hot := Environment{TemperatureC: nom.TemperatureC + 30, SupplyVolts: nom.SupplyVolts}
	vd1, _, tr1, _ := tx.effectiveLevels(hot)
	if vd1 >= vd0 {
		t.Errorf("negative temp coefficient did not lower VDom: %v -> %v", vd0, vd1)
	}
	if tr1 <= tr0 {
		t.Errorf("tau did not stretch with temperature: %v -> %v", tr0, tr1)
	}
	highSupply := Environment{TemperatureC: nom.TemperatureC, SupplyVolts: nom.SupplyVolts + 1}
	vd2, _, _, _ := tx.effectiveLevels(highSupply)
	if vd2 <= vd0 {
		t.Errorf("supply coefficient did not raise VDom: %v -> %v", vd0, vd2)
	}
}

func synthCfg() SynthConfig {
	return SynthConfig{ADC: testADC16(), BitRate: 250e3, LeadIdleBits: 2}
}

func mustFrame(t *testing.T) *canbus.ExtendedFrame {
	t.Helper()
	f, err := canbus.NewJ1939Frame(canbus.J1939ID{Priority: 3, PGN: canbus.PGNElectronicEngine1, SA: 0}, []byte{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSynthesizeStartsAtRecessiveIdle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr, err := SynthesizeFrame(testTransceiver(), mustFrame(t), synthCfg(), testTransceiver().NominalEnvironment(), rng)
	if err != nil {
		t.Fatal(err)
	}
	adc := testADC16()
	recCode := adc.VoltsToCode(0.02)
	// First ~1.5 bit times of idle must sit near the recessive level.
	for i := 0; i < 60; i++ {
		if math.Abs(tr[i]-recCode) > 200 {
			t.Fatalf("idle sample %d = %v, expected ≈%v", i, tr[i], recCode)
		}
	}
}

func TestSynthesizeDominantReachesLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tx := testTransceiver()
	tr, err := SynthesizeFrame(tx, mustFrame(t), synthCfg(), tx.NominalEnvironment(), rng)
	if err != nil {
		t.Fatal(err)
	}
	adc := testADC16()
	domCode := adc.VoltsToCode(tx.VDom)
	// SOF occupies samples ~80–120 (after 2 idle bits at 40 samples
	// each); its tail should settle at the dominant level.
	settled := tr[110:118]
	for i, v := range settled {
		if math.Abs(v-domCode) > 200 {
			t.Fatalf("SOF settle sample %d = %v, want ≈%v", i, v, domCode)
		}
	}
}

func TestSynthesizeMaxSamplesTruncates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := synthCfg()
	cfg.MaxSamples = 500
	tr, err := SynthesizeFrame(testTransceiver(), mustFrame(t), cfg, testTransceiver().NominalEnvironment(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 500 {
		t.Fatalf("len = %d, want 500", len(tr))
	}
}

func TestSynthesizeFullFrameLength(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := mustFrame(t)
	cfg := synthCfg()
	tr, err := SynthesizeFrame(testTransceiver(), f, cfg, testTransceiver().NominalEnvironment(), rng)
	if err != nil {
		t.Fatal(err)
	}
	wire, _ := f.WireBits(true)
	wantBits := cfg.LeadIdleBits + len(wire)
	want := int(math.Ceil(float64(wantBits) * 40))
	if len(tr) != want {
		t.Fatalf("len = %d, want %d", len(tr), want)
	}
}

func TestSynthesizeDistinctECUsProduceDistinctTraces(t *testing.T) {
	// Two transceivers with different levels must produce separable
	// steady-state codes; the same transceiver twice must produce
	// near-identical ones (Figure 2.5's observation).
	rngA := rand.New(rand.NewSource(5))
	rngB := rand.New(rand.NewSource(6))
	rngC := rand.New(rand.NewSource(7))
	txA := testTransceiver()
	txB := testTransceiver()
	txB.VDom = 2.2
	f := mustFrame(t)
	cfg := synthCfg()
	env := txA.NominalEnvironment()
	trA, _ := SynthesizeFrame(txA, f, cfg, env, rngA)
	trA2, _ := SynthesizeFrame(txA, f, cfg, env, rngB)
	trB, _ := SynthesizeFrame(txB, f, cfg, env, rngC)
	at := 115 // settled inside SOF
	if math.Abs(trA[at]-trA2[at]) > 300 {
		t.Fatalf("same ECU diverges: %v vs %v", trA[at], trA2[at])
	}
	if math.Abs(trA[at]-trB[at]) < 500 {
		t.Fatalf("different ECUs indistinguishable: %v vs %v", trA[at], trB[at])
	}
}

func TestSynthesizeDeterministicForSeed(t *testing.T) {
	f := mustFrame(t)
	cfg := synthCfg()
	tx := testTransceiver()
	env := tx.NominalEnvironment()
	a, _ := SynthesizeFrame(tx, f, cfg, env, rand.New(rand.NewSource(99)))
	b, _ := SynthesizeFrame(tx, f, cfg, env, rand.New(rand.NewSource(99)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs across identical seeds", i)
		}
	}
}

func TestSynthesizeOvershootVisible(t *testing.T) {
	// A rising edge with overshoot must exceed the settled dominant
	// level shortly after the transition.
	tx := testTransceiver()
	tx.NoiseSigma = 0 // isolate the deterministic shape
	tx.EdgeJitterSigma = 0
	rng := rand.New(rand.NewSource(8))
	tr, err := SynthesizeFrame(tx, mustFrame(t), synthCfg(), tx.NominalEnvironment(), rng)
	if err != nil {
		t.Fatal(err)
	}
	adc := testADC16()
	domCode := adc.VoltsToCode(tx.VDom)
	maxEarly := 0.0
	for _, v := range tr[80:95] { // rising edge + overshoot window of SOF
		if v > maxEarly {
			maxEarly = v
		}
	}
	if maxEarly <= domCode+100 {
		t.Fatalf("no overshoot: max %v vs settled %v", maxEarly, domCode)
	}
}

func TestSynthConfigValidate(t *testing.T) {
	cfg := synthCfg()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg.BitRate = 0
	if cfg.Validate() == nil {
		t.Error("zero bit rate accepted")
	}
}
