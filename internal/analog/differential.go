package analog

import (
	"math/rand"

	"vprofile/internal/canbus"
)

// DifferentialTrace carries the two physical wires separately: CAN_H
// is driven toward 3.5 V and CAN_L toward 1.5 V for dominant, both
// resting at the 2.5 V recessive bias (Figure 2.1 of the paper). The
// sampling board of Figure 4.3 measures the pair and the detection
// pipeline consumes their difference.
type DifferentialTrace struct {
	CANH Trace
	CANL Trace
}

// Differential returns CAN_H − CAN_L re-quantised onto the ADC's code
// scale (the signal every other package operates on). Both traces must
// have the same length.
func (d DifferentialTrace) Differential(adc ADC) Trace {
	n := len(d.CANH)
	if len(d.CANL) < n {
		n = len(d.CANL)
	}
	out := make(Trace, n)
	for i := 0; i < n; i++ {
		hv := adc.CodeToVolts(d.CANH[i])
		lv := adc.CodeToVolts(d.CANL[i])
		out[i] = adc.VoltsToCode(hv - lv)
	}
	return out
}

// recessiveBias is the common recessive level of both wires.
const recessiveBias = 2.5

// SynthesizeDifferential renders a frame as the physical wire pair:
// the differential content splits symmetrically around the 2.5 V
// recessive bias, and common-mode disturbances — ground shift, coupled
// EMI — land on both wires equally. This is the property that makes
// two-wire CAN robust and makes the differential measurement the right
// fingerprinting signal: the common-mode term cancels in Differential
// while single-ended measurements would drown in it.
//
// CommonModeSigma sets the per-sample common-mode disturbance in
// volts (0 disables it).
func SynthesizeDifferential(tx *Transceiver, wire canbus.BitString, cfg SynthConfig, env Environment, commonModeSigma float64, rng *rand.Rand) DifferentialTrace {
	diff := Synthesize(tx, wire, cfg, env, rng)
	h := make(Trace, len(diff))
	l := make(Trace, len(diff))
	for i, c := range diff {
		v := cfg.ADC.CodeToVolts(c)
		cm := recessiveBias
		if commonModeSigma > 0 {
			cm += rng.NormFloat64() * commonModeSigma
		}
		h[i] = cfg.ADC.VoltsToCode(cm + v/2)
		l[i] = cfg.ADC.VoltsToCode(cm - v/2)
	}
	return DifferentialTrace{CANH: h, CANL: l}
}
