// Package analog models the CAN physical layer that the vProfile
// paper samples on its two test vehicles: per-ECU transmitter
// electronics, the differential bus voltage, environmental effects and
// the analog-to-digital converter.
//
// The paper's premise (Section 2.2.1) is that manufacturing variation
// gives every ECU a unique, practically inimitable output waveform.
// The Transceiver type encodes that variation explicitly: dominant and
// recessive differential levels, rise/fall time constants, overshoot
// ringing, per-sample noise and per-edge timing jitter, plus the
// temperature and supply-voltage sensitivities the paper investigates
// in Section 4.4. Synthesize renders the wire-level bit stream of a
// frame into the voltage trace a digitizer attached to the OBD-II port
// would capture, and ADC quantises it into the offset-binary codes the
// detection pipeline consumes (e.g. the "38,000" threshold of the
// paper is a 16-bit code on a ±5 V range).
package analog
