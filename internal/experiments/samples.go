package experiments

import (
	"math/rand"

	"fmt"

	"vprofile/internal/canbus"
	"vprofile/internal/core"
	"vprofile/internal/edgeset"
	"vprofile/internal/vehicle"
)

// LabeledSample is a preprocessed message with its ground-truth
// sender attached (−1 for a foreign device).
type LabeledSample struct {
	core.Sample
	ECU int
}

// Scale sets experiment sizes. The paper's captures run to hundreds of
// thousands of frames; these counts are chosen so the statistics of
// interest converge while the whole suite stays laptop-friendly.
type Scale struct {
	TrainMessages int
	TestMessages  int
	Seed          int64
}

// Preset scales.
var (
	Quick = Scale{TrainMessages: 2500, TestMessages: 5000, Seed: 1}
	Full  = Scale{TrainMessages: 10000, TestMessages: 25000, Seed: 1}
)

// CollectSamples streams n messages from the vehicle and preprocesses
// each into a labelled sample. Extraction failures are returned as an
// error: on a clean simulated bus every frame must preprocess.
func CollectSamples(v *vehicle.Vehicle, n int, seed int64, env vehicle.EnvFunc, cfg edgeset.Config) ([]LabeledSample, error) {
	out := make([]LabeledSample, 0, n)
	err := v.Stream(vehicle.GenConfig{NumMessages: n, Seed: seed, Env: env}, func(m vehicle.Message) error {
		res, err := edgeset.Extract(m.Trace, cfg)
		if err != nil {
			return fmt.Errorf("experiments: message %d from %s: %w", len(out), v.ECUs[m.ECUIndex].Name, err)
		}
		out = append(out, LabeledSample{
			Sample: core.Sample{SA: res.SA, Set: res.Set},
			ECU:    m.ECUIndex,
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CoreSamples strips labels for training.
func CoreSamples(in []LabeledSample) []core.Sample {
	out := make([]core.Sample, len(in))
	for i := range in {
		out[i] = in[i].Sample
	}
	return out
}

// WithoutECU filters out samples whose ground-truth sender is ecu.
func WithoutECU(in []LabeledSample, ecu int) []LabeledSample {
	out := make([]LabeledSample, 0, len(in))
	for _, s := range in {
		if s.ECU != ecu {
			out = append(out, s)
		}
	}
	return out
}

// newHijackRNG builds the deterministic RNG the hijack relabelling
// uses, kept in one place so ablations and the main tables share it.
func newHijackRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed + 100)) }

// canbusSA aliases the source-address type for the coverage matrix.
type canbusSA = canbus.SourceAddress
