package experiments

import (
	"testing"

	"vprofile/internal/core"
	"vprofile/internal/vehicle"
)

// TestDiagEuclideanErrors is a calibration diagnostic: it reports,
// per ECU, how unmodified Vehicle A traffic misbehaves under the
// Euclidean metric (cluster mismatches and threshold exceedances).
func TestDiagEuclideanErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	v := vehicle.NewVehicleA()
	cfg := v.ExtractionConfig()
	train, err := CollectSamples(v, 1500, 1, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	test, err := CollectSamples(v, 3000, 2, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Train(CoreSamples(train), core.TrainConfig{Metric: core.Euclidean, SAMap: v.SAMap()})
	if err != nil {
		t.Fatal(err)
	}
	mismatch := map[[2]int]int{}
	count := map[int]int{}
	var slackMax [8]float64
	for _, s := range test {
		count[s.ECU]++
		d := m.Detect(s.SA, s.Set)
		if d.Reason == core.ReasonClusterMismatch {
			mismatch[[2]int{s.ECU, int(d.Predict)}]++
		} else if d.Expected >= 0 {
			slack := d.MinDist - m.Clusters[d.Expected].MaxDist
			if slack > slackMax[int(d.Expected)] {
				slackMax[int(d.Expected)] = slack
			}
		}
	}
	t.Logf("per-ECU counts: %v", count)
	t.Logf("mismatches (ecu→predicted): %v", mismatch)
	t.Logf("max slack per cluster: %v", slackMax[:len(m.Clusters)])
	for id, c := range m.Clusters {
		t.Logf("cluster %d: N=%d MaxDist=%.1f", id, c.N, c.MaxDist)
	}
}
