package experiments

import (
	"fmt"

	"vprofile/internal/attack"
	"vprofile/internal/baseline"
	"vprofile/internal/core"
	"vprofile/internal/edgeset"
	"vprofile/internal/ids"
	"vprofile/internal/vehicle"
)

// CoverageCell is one (attack, detector) entry of the coverage matrix.
type CoverageCell struct {
	AlarmRate float64 // alarms per message (or per batch for CIDS)
	Alarms    int
	Total     int
}

// CoverageRow is one attack scenario's outcome across the detector
// families.
type CoverageRow struct {
	Attack   attack.Kind
	VProfile CoverageCell
	Period   CoverageCell
	CIDS     CoverageCell
	// SilentIDs counts identifiers the period monitor's end-of-capture
	// sweep found missing — the only signal a suspension leaves.
	SilentIDs int
}

// RunCoverageMatrix trains the three detector families — vProfile
// (voltage), the period monitor (timing) and CIDS (clock skew) — on
// the same clean capture and confronts each with every attack
// scenario. It operationalises the paper's closing recommendation to
// pair vProfile with message-property detectors: each family covers
// attacks the others cannot see.
func RunCoverageMatrix(v *vehicle.Vehicle, scale Scale) ([]CoverageRow, error) {
	cfg := v.ExtractionConfig()

	// --- shared training capture ---
	type trainMsg struct {
		id  uint32
		sa  uint8
		at  float64
		smp core.Sample
	}
	var train []trainMsg
	err := v.Stream(vehicle.GenConfig{NumMessages: scale.TrainMessages * 2, Seed: scale.Seed}, func(m vehicle.Message) error {
		res, err := edgeset.Extract(m.Trace, cfg)
		if err != nil {
			return err
		}
		train = append(train, trainMsg{
			id: m.Frame.ID, sa: uint8(res.SA), at: m.TimeSec,
			smp: core.Sample{SA: res.SA, Set: res.Set},
		})
		return nil
	})
	if err != nil {
		return nil, err
	}

	// vProfile.
	samples := make([]core.Sample, len(train))
	for i := range train {
		samples[i] = train[i].smp
	}
	model, err := core.Train(samples, core.TrainConfig{Metric: core.Mahalanobis, SAMap: v.SAMap()})
	if err != nil {
		return nil, err
	}
	val, err := CollectSamples(v, scale.TrainMessages/2, scale.Seed+50, nil, cfg)
	if err != nil {
		return nil, err
	}
	margin, _ := OptimizeMargin(FalsePositiveRecords(model, val), MaxAccuracy)
	model.Margin = margin

	// Timing detectors.
	mkPeriod := func() (*ids.PeriodMonitor, error) {
		pm := ids.NewPeriodMonitor()
		for _, t := range train {
			pm.Learn(t.id, t.at)
		}
		pm.Finalize()
		return pm, nil
	}
	mkCIDS := func() (*baseline.CIDS, error) {
		c := baseline.NewCIDS()
		sas := make([]canbusSA, len(train))
		times := make([]float64, len(train))
		for i, t := range train {
			sas[i] = canbusSA(t.sa)
			times[i] = t.at
		}
		if err := c.TrainArrivals(sas, times); err != nil {
			return nil, err
		}
		return c, nil
	}

	// The foreign pair drives the hijack/foreign victim choice.
	a, b, _, err := model.ClosestClusterPair()
	if err != nil {
		return nil, err
	}
	attackerECU, imitatedSA, err := foreignRoles(v, model, a, b)
	if err != nil {
		return nil, err
	}
	victimECU := v.ECUForSA(imitatedSA)

	scenarios := []attack.Scenario{
		{Kind: attack.None, NumMessages: scale.TestMessages, Seed: scale.Seed + 1},
		{Kind: attack.Hijack, AttackerECU: attackerECU, VictimECU: victimECU, NumMessages: scale.TestMessages, Seed: scale.Seed + 2},
		{Kind: attack.Foreign, AttackerECU: attackerECU, VictimECU: victimECU, NumMessages: scale.TestMessages, Seed: scale.Seed + 3},
		{Kind: attack.Flood, AttackerECU: attackerECU, VictimECU: 0, Rate: 4, NumMessages: scale.TestMessages, Seed: scale.Seed + 4},
		{Kind: attack.Suspension, VictimECU: 0, NumMessages: scale.TestMessages, Seed: scale.Seed + 5},
	}

	var rows []CoverageRow
	for _, sc := range scenarios {
		msgs, err := attack.Run(v, sc)
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %s: %w", sc.Kind, err)
		}
		pm, err := mkPeriod()
		if err != nil {
			return nil, err
		}
		cids, err := mkCIDS()
		if err != nil {
			return nil, err
		}
		row := CoverageRow{Attack: sc.Kind}
		lastAt := 0.0
		for _, m := range msgs {
			lastAt = m.TimeSec
			// vProfile.
			res, err := edgeset.Extract(m.Trace, cfg)
			if err == nil {
				row.VProfile.Total++
				if model.Detect(res.SA, res.Set).Anomaly {
					row.VProfile.Alarms++
				}
			}
			// Period monitor.
			verdict, err := pm.Check(m.Frame.ID, m.TimeSec)
			if err == nil {
				row.Period.Total++
				if verdict == ids.PeriodTooEarly {
					row.Period.Alarms++
				}
			}
			// CIDS.
			ev, err := cids.Monitor(canbusSA(m.Frame.SA()), m.TimeSec)
			if err == nil && ev != nil {
				row.CIDS.Total++
				if ev.Alarm {
					row.CIDS.Alarms++
				}
			}
		}
		row.SilentIDs = len(pm.SweepSilent(lastAt))
		finalize(&row.VProfile)
		finalize(&row.Period)
		finalize(&row.CIDS)
		rows = append(rows, row)
	}
	return rows, nil
}

func finalize(c *CoverageCell) {
	if c.Total > 0 {
		c.AlarmRate = float64(c.Alarms) / float64(c.Total)
	}
}
