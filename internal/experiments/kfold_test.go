package experiments

import (
	"testing"

	"vprofile/internal/core"
	"vprofile/internal/vehicle"
)

func TestKFoldMahalanobisStable(t *testing.T) {
	if testing.Short() {
		t.Skip("k-fold needs traffic")
	}
	res, err := RunKFold(vehicle.NewVehicleB(), core.Mahalanobis, 4000, 4, 15)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("folds: %v (mean %.5f ± %.5f, worst %.5f)",
		res.Accuracies, res.MeanAccuracy, res.StdDevAccuracy, res.WorstAccuracy)
	if len(res.Accuracies) != 4 {
		t.Fatalf("%d folds", len(res.Accuracies))
	}
	// Every fold must hold the near-perfect Table 4.4 behaviour.
	if res.WorstAccuracy < 0.995 {
		t.Errorf("worst fold accuracy %.5f", res.WorstAccuracy)
	}
	if res.StdDevAccuracy > 0.01 {
		t.Errorf("fold accuracy unstable: ±%.5f", res.StdDevAccuracy)
	}
}

func TestKFoldValidation(t *testing.T) {
	if _, err := RunKFold(vehicle.NewVehicleB(), core.Mahalanobis, 100, 1, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := RunKFold(vehicle.NewVehicleB(), core.Mahalanobis, 30, 5, 1); err == nil {
		t.Fatal("thin folds accepted")
	}
}
