package experiments

import (
	"testing"

	"vprofile/internal/vehicle"
)

func TestLatencyWithinFrameBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("latency measurement needs traffic")
	}
	res, err := RunLatency(vehicle.NewVehicleB(), 2000, 14)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("extract p50/p95/p99: %v / %v / %v", res.ExtractP50, res.ExtractP95, res.ExtractP99)
	t.Logf("detect  p50/p95/p99: %v / %v / %v", res.DetectP50, res.DetectP95, res.DetectP99)
	t.Logf("total   p50/p95/p99: %v / %v / %v (frame %v)", res.TotalP50, res.TotalP95, res.TotalP99, res.FrameDuration)
	if res.Messages != 2000 {
		t.Fatalf("measured %d messages", res.Messages)
	}
	if res.TotalP50 <= 0 {
		t.Fatal("zero latency measured")
	}
	// The Section 1.3 claim: the pipeline keeps up with the bus.
	if !res.RealTime {
		t.Errorf("p99 %v exceeds the %v frame budget", res.TotalP99, res.FrameDuration)
	}
}
