package experiments

import (
	"fmt"

	"vprofile/internal/core"
	"vprofile/internal/stats"
	"vprofile/internal/vehicle"
)

// KFoldResult summarises a k-fold cross-validated false-positive
// evaluation: the paper reports single-split confusion matrices; this
// harness adds the statistical hygiene of rotating the held-out fold,
// reporting the mean accuracy and its spread across folds.
type KFoldResult struct {
	Folds          int
	Accuracies     []float64
	MeanAccuracy   float64
	StdDevAccuracy float64
	WorstAccuracy  float64
}

// RunKFold runs k-fold cross-validation of the false positive test on
// one capture: train on k−1 folds, optimise the margin on the training
// folds' tail, score the held-out fold.
func RunKFold(v *vehicle.Vehicle, metric core.Metric, n, k int, seed int64) (*KFoldResult, error) {
	if k < 2 {
		return nil, fmt.Errorf("experiments: k-fold needs k ≥ 2, got %d", k)
	}
	cfg := v.ExtractionConfig()
	all, err := CollectSamples(v, n, seed, nil, cfg)
	if err != nil {
		return nil, err
	}
	foldSize := len(all) / k
	if foldSize < 10 {
		return nil, fmt.Errorf("experiments: %d messages over %d folds is too thin", n, k)
	}

	res := &KFoldResult{Folds: k, WorstAccuracy: 1}
	for fold := 0; fold < k; fold++ {
		lo := fold * foldSize
		hi := lo + foldSize
		test := all[lo:hi]
		train := make([]LabeledSample, 0, len(all)-foldSize)
		train = append(train, all[:lo]...)
		train = append(train, all[hi:]...)

		// The last tenth of the training folds doubles as the margin
		// validation set; the model itself trains on the rest.
		split := len(train) - len(train)/10
		model, err := core.Train(CoreSamples(train[:split]), core.TrainConfig{Metric: metric, SAMap: v.SAMap()})
		if err != nil {
			return nil, fmt.Errorf("experiments: fold %d: %w", fold, err)
		}
		margin, _ := OptimizeMargin(FalsePositiveRecords(model, train[split:]), MaxAccuracy)
		model.Margin = margin * 1.25

		var cm stats.ConfusionMatrix
		for _, s := range test {
			cm.Add(false, model.Detect(s.SA, s.Set).Anomaly)
		}
		acc := cm.Accuracy()
		res.Accuracies = append(res.Accuracies, acc)
		if acc < res.WorstAccuracy {
			res.WorstAccuracy = acc
		}
	}
	res.MeanAccuracy = stats.Mean(res.Accuracies)
	res.StdDevAccuracy = stats.StdDev(res.Accuracies)
	return res, nil
}
