package experiments

import (
	"math"
	"testing"

	"vprofile/internal/linalg"
	"vprofile/internal/stats"
	"vprofile/internal/vehicle"
)

func TestCollectEdgeSetsFigure25(t *testing.T) {
	if testing.Short() {
		t.Skip("figure experiments need traffic")
	}
	// Figure 2.5: 200 traces from the two Sterling ECUs form two
	// visibly distinct bundles.
	b, err := CollectEdgeSets(vehicle.NewSterlingActerra(), 200, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Sets) != 2 || len(b.Sets[0]) == 0 || len(b.Sets[1]) == 0 {
		t.Fatalf("bundle sizes: %d/%d", len(b.Sets[0]), len(b.Sets[1]))
	}
	// Intra-bundle spread must be well below the inter-bundle
	// separation ("two distinct waveforms, one for each ECU").
	sep := linalg.Euclidean(b.Means[0], b.Means[1])
	var spread0 float64
	for _, s := range b.Sets[0] {
		spread0 += linalg.Euclidean(s, b.Means[0]) / float64(len(b.Sets[0]))
	}
	if sep < 2*spread0 {
		t.Fatalf("bundles overlap: separation %.1f vs spread %.1f", sep, spread0)
	}
}

func TestCollectEdgeSetsFigure42(t *testing.T) {
	if testing.Short() {
		t.Skip("figure experiments need traffic")
	}
	// Figure 4.2: all five Vehicle A profiles are pairwise distinct,
	// with ECUs 1 and 4 the most similar.
	b, err := CollectEdgeSets(vehicle.NewVehicleA(), 600, 22)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Means) != 5 {
		t.Fatalf("%d profiles", len(b.Means))
	}
	closest := [2]int{-1, -1}
	best := math.Inf(1)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if d := linalg.Euclidean(b.Means[i], b.Means[j]); d < best {
				best = d
				closest = [2]int{i, j}
			}
		}
	}
	if closest != [2]int{1, 4} {
		t.Fatalf("closest profiles %v, want {1,4}", closest)
	}
}

func TestReductionSeriesFigure31(t *testing.T) {
	if testing.Short() {
		t.Skip("figure experiments need traffic")
	}
	res, err := RunReductionSeries(23)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ByRate) != len(res.RateFactors) || len(res.ByBits) != len(res.Bits) {
		t.Fatal("series shape wrong")
	}
	// Deviation from the original must grow monotonically as the rate
	// drops and as bits are removed (Figure 3.1's visual message).
	rms := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s / float64(len(a)))
	}
	prev := 0.0
	for i, tr := range res.ByRate {
		d := rms(res.Original, tr)
		if d < prev {
			t.Errorf("rate factor %d deviation %.1f below previous %.1f", res.RateFactors[i], d, prev)
		}
		prev = d
	}
	prev = 0.0
	for i, tr := range res.ByBits {
		d := rms(res.Original, tr)
		if d < prev {
			t.Errorf("%d-bit deviation %.1f below previous %.1f", res.Bits[i], d, prev)
		}
		prev = d
	}
}

func TestIndexDeviationFigure44(t *testing.T) {
	if testing.Short() {
		t.Skip("figure experiments need traffic")
	}
	v := vehicle.NewSterlingActerra()
	res, err := RunIndexDeviation(v, 0, 400, 24)
	if err != nil {
		t.Fatal(err)
	}
	cfg := v.ExtractionConfig()
	// The crossing samples sit at the start of each suffix window.
	rising := cfg.PrefixLen
	falling := cfg.PrefixLen + cfg.SuffixLen + cfg.PrefixLen
	// Steady-state reference: the last samples of the falling suffix
	// (recessive, fully settled).
	steady := stats.Mean(res.StdDev[len(res.StdDev)-3:])
	if res.StdDev[rising] < 4*steady {
		t.Errorf("rising-edge stddev %.1f not ≫ steady %.1f", res.StdDev[rising], steady)
	}
	if res.StdDev[falling] < 4*steady {
		t.Errorf("falling-edge stddev %.1f not ≫ steady %.1f", res.StdDev[falling], steady)
	}
}

func TestIndexDeviationBadECU(t *testing.T) {
	if _, err := RunIndexDeviation(vehicle.NewSterlingActerra(), 7, 30, 1); err == nil {
		t.Fatal("bad ECU index accepted")
	}
}

func TestQuotientTable45(t *testing.T) {
	if testing.Short() {
		t.Skip("figure experiments need traffic")
	}
	res, err := RunQuotient(900, 25)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Euclidean   %8.2f / %8.2f  quotient %.2f", res.EuclideanTo0, res.EuclideanTo1, res.EuclideanQuotient)
	t.Logf("Mahalanobis %8.2f / %8.2f  quotient %.2f", res.MahalanobisTo0, res.MahalanobisTo1, res.MahalanobisQuotient)
	// Both metrics identify ECU 0 as nearer.
	if res.EuclideanTo0 >= res.EuclideanTo1 {
		t.Error("Euclidean misattributes the test edge set")
	}
	if res.MahalanobisTo0 >= res.MahalanobisTo1 {
		t.Error("Mahalanobis misattributes the test edge set")
	}
	// The paper's point: the Mahalanobis quotient is far larger (18.48
	// versus 2.21 — about an order of magnitude).
	if res.MahalanobisQuotient < 3*res.EuclideanQuotient {
		t.Errorf("Mahalanobis quotient %.2f not ≫ Euclidean %.2f", res.MahalanobisQuotient, res.EuclideanQuotient)
	}
}

func TestClusterThresholdsTable51(t *testing.T) {
	if testing.Short() {
		t.Skip("enhancement experiments need traffic")
	}
	res, err := RunClusterThresholds(vehicle.NewVehicleA(), 2000, 26)
	if err != nil {
		t.Fatal(err)
	}
	for ecu := range res.Baseline {
		t.Logf("ECU %d: stddev %7.3f -> %7.3f | maxdist %6.3f -> %6.3f",
			ecu, res.Baseline[ecu].StdDev, res.Enhanced[ecu].StdDev,
			res.Baseline[ecu].MaxDist, res.Enhanced[ecu].MaxDist)
	}
	// Table 5.1: the cluster thresholds change the statistics only
	// slightly (fractions of a percent on stddev), in mixed directions.
	for ecu := range res.Baseline {
		rel := math.Abs(res.Enhanced[ecu].StdDev-res.Baseline[ecu].StdDev) / res.Baseline[ecu].StdDev
		if rel > 0.10 {
			t.Errorf("ECU %d stddev moved %.1f%%, expected a small shift", ecu, 100*rel)
		}
	}
}

func TestMultiEdgeSetsTable52(t *testing.T) {
	if testing.Short() {
		t.Skip("enhancement experiments need traffic")
	}
	res, err := RunMultiEdgeSets(vehicle.NewVehicleA(), 2000, 27)
	if err != nil {
		t.Fatal(err)
	}
	lowerSD := 0
	for ecu := range res.Baseline {
		t.Logf("ECU %d: stddev %7.3f -> %7.3f | maxdist %6.3f -> %6.3f",
			ecu, res.Baseline[ecu].StdDev, res.Enhanced[ecu].StdDev,
			res.Baseline[ecu].MaxDist, res.Enhanced[ecu].MaxDist)
		if res.Enhanced[ecu].StdDev < res.Baseline[ecu].StdDev {
			lowerSD++
		}
	}
	// Table 5.2: averaging three edge sets lowers the standard
	// deviation for every cluster.
	if lowerSD != len(res.Baseline) {
		t.Errorf("stddev dropped for only %d/%d ECUs", lowerSD, len(res.Baseline))
	}
}

func TestOnlineUpdateAdapts(t *testing.T) {
	if testing.Short() {
		t.Skip("enhancement experiments need traffic")
	}
	res, err := RunOnlineUpdate(vehicle.NewVehicleA(), 2500, 35, 28)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("static FP rate %.4f, updated FP rate %.4f", res.StaticFPRate, res.UpdatedFPRate)
	// Section 5.3: under drift the static model deteriorates while
	// the online-updated model keeps its false positive rate down.
	if res.StaticFPRate < 0.02 {
		t.Errorf("drift too benign to demonstrate the update: static FP %.4f", res.StaticFPRate)
	}
	if res.UpdatedFPRate > res.StaticFPRate/2 {
		t.Errorf("online update ineffective: %.4f vs %.4f", res.UpdatedFPRate, res.StaticFPRate)
	}
}
