package experiments

import (
	"errors"
	"fmt"

	"vprofile/internal/core"
	"vprofile/internal/edgeset"
	"vprofile/internal/vehicle"
)

// AblationPoint is one configuration's scores in an ablation study.
type AblationPoint struct {
	Label      string
	Dim        int
	FPAccuracy float64
	HijackF    float64
	ForeignF   float64
	Err        string
}

// runExtractionVariants evaluates the three tests for several
// extraction configurations over one shared capture (parallel to the
// sampling-rate sweep, but varying preprocessing choices instead).
func runExtractionVariants(v *vehicle.Vehicle, labels []string, cfgs []edgeset.Config, scale Scale) ([]AblationPoint, error) {
	if len(labels) != len(cfgs) {
		return nil, errors.New("experiments: labels/configs mismatch")
	}
	trainSets, err := collectVariantSamples(v, scale.TrainMessages, scale.Seed, cfgs)
	if err != nil {
		return nil, err
	}
	testSets, err := collectVariantSamples(v, scale.TestMessages, scale.Seed+1, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]AblationPoint, len(cfgs))
	for i := range cfgs {
		out[i] = AblationPoint{Label: labels[i], Dim: cfgs[i].Dim()}
		mr, err := RunMetricOnSamples(v, core.Mahalanobis, trainSets[i], testSets[i], scale.Seed)
		if errors.Is(err, core.ErrSingularCov) {
			out[i].Err = "singular covariance"
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %q: %w", labels[i], err)
		}
		out[i].FPAccuracy = mr.FalsePositive.Matrix.Accuracy()
		out[i].HijackF = mr.Hijack.Matrix.FScore()
		out[i].ForeignF = mr.Foreign.Matrix.FScore()
	}
	return out, nil
}

// collectVariantSamples extracts every message of one capture under
// every configuration.
func collectVariantSamples(v *vehicle.Vehicle, n int, seed int64, cfgs []edgeset.Config) ([][]LabeledSample, error) {
	out := make([][]LabeledSample, len(cfgs))
	for i := range out {
		out[i] = make([]LabeledSample, 0, n)
	}
	err := v.Stream(vehicle.GenConfig{NumMessages: n, Seed: seed}, func(m vehicle.Message) error {
		for i := range cfgs {
			res, err := edgeset.Extract(m.Trace, cfgs[i])
			if err != nil {
				return fmt.Errorf("experiments: variant %d: %w", i, err)
			}
			out[i] = append(out[i], LabeledSample{
				Sample: core.Sample{SA: res.SA, Set: res.Set},
				ECU:    m.ECUIndex,
			})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunWindowAblation sweeps the edge-set window (suffix length) around
// the paper's reference choice: too short loses the overshoot and
// steady-state information, longer windows raise the dimensionality
// (and with it the sample count the covariance needs) without adding
// detection power.
func RunWindowAblation(v *vehicle.Vehicle, scale Scale) ([]AblationPoint, error) {
	base := v.ExtractionConfig()
	scaleUp := base.BitWidth / 40
	if scaleUp < 1 {
		scaleUp = 1
	}
	var labels []string
	var cfgs []edgeset.Config
	for _, suffix := range []int{4, 8, 14, 20} {
		cfg := base
		cfg.SuffixLen = suffix * scaleUp
		labels = append(labels, fmt.Sprintf("suffix=%d", suffix*scaleUp))
		cfgs = append(cfgs, cfg)
	}
	return runExtractionVariants(v, labels, cfgs, scale)
}

// RunEdgeAblation compares the paper's rising+falling edge set against
// single-edge variants: the falling edge alone carries most of the
// discriminative power on these vehicles, but the pair is what the
// paper standardises on.
func RunEdgeAblation(v *vehicle.Vehicle, scale Scale) ([]AblationPoint, error) {
	base := v.ExtractionConfig()
	labels := []string{"both-edges", "rising-only", "falling-only"}
	cfgs := []edgeset.Config{base, base, base}
	cfgs[1].Edges = edgeset.EdgesRising
	cfgs[2].Edges = edgeset.EdgesFalling
	return runExtractionVariants(v, labels, cfgs, scale)
}

// MarginCurvePoint is one margin value's outcome in the sensitivity
// study of the Section 3.2.3 trade-off.
type MarginCurvePoint struct {
	Margin        float64
	FPAccuracy    float64
	ForeignF      float64
	ForeignRecall float64
}

// RunMarginCurve traces the false-positive/false-negative trade-off as
// the margin grows: small margins flag legitimate tail messages, large
// margins absorb the foreign device.
func RunMarginCurve(v *vehicle.Vehicle, margins []float64, scale Scale) ([]MarginCurvePoint, error) {
	cfg := v.ExtractionConfig()
	train, err := CollectSamples(v, scale.TrainMessages, scale.Seed, nil, cfg)
	if err != nil {
		return nil, err
	}
	test, err := CollectSamples(v, scale.TestMessages, scale.Seed+1, nil, cfg)
	if err != nil {
		return nil, err
	}
	model, err := core.Train(CoreSamples(train), core.TrainConfig{Metric: core.Mahalanobis, SAMap: v.SAMap()})
	if err != nil {
		return nil, err
	}
	// Foreign setup mirrors RunMetric: remove the lower-indexed member
	// of the closest pair, relabel its traffic as the other.
	a, b, _, err := model.ClosestClusterPair()
	if err != nil {
		return nil, err
	}
	removedECU, imitatedSA, err := foreignRoles(v, model, a, b)
	if err != nil {
		return nil, err
	}
	foreignModel, err := core.Train(CoreSamples(WithoutECU(train, removedECU)), core.TrainConfig{Metric: core.Mahalanobis, SAMap: v.SAMap()})
	if err != nil {
		return nil, err
	}
	fpRecs := FalsePositiveRecords(model, test)
	fgRecs := ForeignRecords(foreignModel, test, removedECU, imitatedSA)
	out := make([]MarginCurvePoint, 0, len(margins))
	for _, m := range margins {
		fg := EvaluateAtMargin(fgRecs, m)
		out = append(out, MarginCurvePoint{
			Margin:        m,
			FPAccuracy:    EvaluateAtMargin(fpRecs, m).Accuracy(),
			ForeignF:      fg.FScore(),
			ForeignRecall: fg.Recall(),
		})
	}
	return out, nil
}

// TrainingSizePoint is one training-capture size's outcome.
type TrainingSizePoint struct {
	TrainMessages int
	FPAccuracy    float64
	HijackF       float64
	Err           string
}

// RunTrainingSizeAblation shows how much training data the Mahalanobis
// model needs: below roughly 2× the edge-set dimensionality per
// cluster the covariance goes singular; near it, inflated thresholds
// cost accuracy; well above it the scores saturate.
func RunTrainingSizeAblation(v *vehicle.Vehicle, sizes []int, scale Scale) ([]TrainingSizePoint, error) {
	cfg := v.ExtractionConfig()
	biggest := 0
	for _, s := range sizes {
		if s > biggest {
			biggest = s
		}
	}
	allTrain, err := CollectSamples(v, biggest, scale.Seed, nil, cfg)
	if err != nil {
		return nil, err
	}
	test, err := CollectSamples(v, scale.TestMessages, scale.Seed+1, nil, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]TrainingSizePoint, 0, len(sizes))
	for _, size := range sizes {
		pt := TrainingSizePoint{TrainMessages: size}
		model, err := core.Train(CoreSamples(allTrain[:size]), core.TrainConfig{Metric: core.Mahalanobis, SAMap: v.SAMap()})
		if errors.Is(err, core.ErrSingularCov) {
			pt.Err = "singular covariance"
			out = append(out, pt)
			continue
		}
		if err != nil {
			return nil, err
		}
		_, fpCM := OptimizeMargin(FalsePositiveRecords(model, test), MaxAccuracy)
		pt.FPAccuracy = fpCM.Accuracy()
		rng := newHijackRNG(scale.Seed)
		_, hjCM := OptimizeMargin(HijackRecords(model, test, rng), MaxFScore)
		pt.HijackF = hjCM.FScore()
		out = append(out, pt)
	}
	return out, nil
}
