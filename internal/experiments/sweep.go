package experiments

import (
	"errors"
	"fmt"

	"vprofile/internal/core"
	"vprofile/internal/dsp"
	"vprofile/internal/edgeset"
	"vprofile/internal/vehicle"
)

// SweepCell is one sampling-rate/resolution combination's scores.
type SweepCell struct {
	RateMSs    float64 // effective sampling rate in MS/s
	Bits       int
	FPAccuracy float64
	HijackF    float64
	ForeignF   float64
	// Err is non-empty when the combination could not be evaluated —
	// the paper hits this below 10 bits where covariance matrices go
	// singular.
	Err string
}

// SweepResult reproduces Table 4.6 (Vehicle A) or Table 4.7
// (Vehicle B): the three tests at every rate/resolution combination,
// evaluated by software decimation and LSB dropping of one capture,
// exactly as Section 4.3 does.
type SweepResult struct {
	Vehicle string
	Cells   []SweepCell
}

// Cell returns the cell at (rateMSs, bits), or nil.
func (r *SweepResult) Cell(rateMSs float64, bits int) *SweepCell {
	for i := range r.Cells {
		if r.Cells[i].RateMSs == rateMSs && r.Cells[i].Bits == bits {
			return &r.Cells[i]
		}
	}
	return nil
}

// sweepCombo identifies one decimation/requantisation configuration.
type sweepCombo struct {
	factor int // decimation factor relative to the native rate
	bits   int
}

// RunSweep evaluates the vehicle at every decimation factor and
// resolution. Native Vehicle A (20 MS/s, 16-bit) with factors
// {1,2,4,8} and bits {16,14,12,10} covers Table 4.6; Vehicle B
// (10 MS/s, 12-bit) with factors {1,2,4} at 12 bits covers Table 4.7.
func RunSweep(v *vehicle.Vehicle, factors []int, bitsList []int, scale Scale) (*SweepResult, error) {
	var combos []sweepCombo
	for _, b := range bitsList {
		for _, f := range factors {
			combos = append(combos, sweepCombo{factor: f, bits: b})
		}
	}

	trainSets, err := collectSweepSamples(v, scale.TrainMessages, scale.Seed, combos)
	if err != nil {
		return nil, err
	}
	testSets, err := collectSweepSamples(v, scale.TestMessages, scale.Seed+1, combos)
	if err != nil {
		return nil, err
	}

	res := &SweepResult{Vehicle: v.Name}
	nativeRate := v.ADC.SampleRate / 1e6
	for i, combo := range combos {
		cell := SweepCell{RateMSs: nativeRate / float64(combo.factor), Bits: combo.bits}
		mr, err := RunMetricOnSamples(v, core.Mahalanobis, trainSets[i], testSets[i], scale.Seed)
		switch {
		case errors.Is(err, core.ErrSingularCov):
			cell.Err = "singular covariance"
		case err != nil:
			return nil, fmt.Errorf("experiments: sweep %vMS/s %d-bit: %w", cell.RateMSs, cell.Bits, err)
		default:
			cell.FPAccuracy = mr.FalsePositive.Matrix.Accuracy()
			cell.HijackF = mr.Hijack.Matrix.FScore()
			cell.ForeignF = mr.Foreign.Matrix.FScore()
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// collectSweepSamples streams one capture and preprocesses every
// message under every combination, reusing the same recorded traces
// the way the paper downsamples its captures in software.
func collectSweepSamples(v *vehicle.Vehicle, n int, seed int64, combos []sweepCombo) ([][]LabeledSample, error) {
	out := make([][]LabeledSample, len(combos))
	for i := range out {
		out[i] = make([]LabeledSample, 0, n)
	}
	cfgs := make([]edgeset.Config, len(combos))
	for i, c := range combos {
		cfgs[i] = sweepExtractionConfig(v, c.factor)
	}
	nativeBits := v.ADC.Bits
	err := v.Stream(vehicle.GenConfig{NumMessages: n, Seed: seed}, func(m vehicle.Message) error {
		for i, combo := range combos {
			tr := []float64(m.Trace)
			var err error
			if combo.factor > 1 {
				tr, err = dsp.Downsample(tr, combo.factor)
				if err != nil {
					return err
				}
			}
			if combo.bits < nativeBits {
				tr, err = dsp.ReduceResolution(tr, nativeBits, combo.bits)
				if err != nil {
					return err
				}
			}
			res, err := edgeset.Extract(tr, cfgs[i])
			if err != nil {
				return fmt.Errorf("experiments: combo %d/%d-bit: %w", combo.factor, combo.bits, err)
			}
			out[i] = append(out[i], LabeledSample{
				Sample: core.Sample{SA: res.SA, Set: res.Set},
				ECU:    m.ECUIndex,
			})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// sweepExtractionConfig scales the vehicle's native extraction
// parameters to a decimated rate.
func sweepExtractionConfig(v *vehicle.Vehicle, factor int) edgeset.Config {
	cfg := v.ExtractionConfig()
	perBit := cfg.BitWidth / factor
	scale := float64(perBit) / 40.0
	prefix := int(2 * scale)
	if prefix < 1 {
		prefix = 1
	}
	suffix := int(14 * scale)
	if suffix < 3 {
		suffix = 3
	}
	cfg.BitWidth = perBit
	cfg.PrefixLen = prefix
	cfg.SuffixLen = suffix
	return cfg
}
