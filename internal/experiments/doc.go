// Package experiments reproduces every table and figure of the
// vProfile evaluation (Chapters 4 and 5 of the paper) on the simulated
// vehicles of package vehicle.
//
// Each experiment follows the paper's protocol: generate (in the
// paper: record) a capture, preprocess it into (SA, edge set) pairs,
// train a model, replay test traffic — unmodified for the false
// positive test, with 20 % of source addresses forged for the hijack
// test, and with one ECU removed from training and relabelled as its
// closest peer for the foreign-device test — and report confusion
// matrices with the margin chosen to maximise accuracy (false positive
// test) or F-score (attack tests), exactly as Section 4.2 describes.
//
// Message counts are scaled down from the paper's multi-hundred-
// thousand-frame captures; EXPERIMENTS.md records the scaling and the
// paper-versus-measured comparison for every experiment.
package experiments
