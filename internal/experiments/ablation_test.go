package experiments

import (
	"testing"

	"vprofile/internal/vehicle"
)

var ablationScale = Scale{TrainMessages: 1200, TestMessages: 2000, Seed: 7}

func TestWindowAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations need traffic")
	}
	pts, err := RunWindowAblation(vehicle.NewVehicleA(), ablationScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		t.Logf("%-12s dim=%2d FP=%.5f hijack=%.5f foreign=%.5f %s", p.Label, p.Dim, p.FPAccuracy, p.HijackF, p.ForeignF, p.Err)
	}
	// The reference window (suffix 14×scale) must be evaluable and
	// effectively perfect on Vehicle A.
	ref := pts[2]
	if ref.Err != "" || ref.FPAccuracy < 0.999 || ref.HijackF < 0.999 {
		t.Fatalf("reference window degraded: %+v", ref)
	}
	// Dimensionality must grow with the suffix.
	for i := 1; i < len(pts); i++ {
		if pts[i].Dim <= pts[i-1].Dim {
			t.Fatalf("dims not increasing: %+v", pts)
		}
	}
}

func TestEdgeAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations need traffic")
	}
	pts, err := RunEdgeAblation(vehicle.NewVehicleA(), ablationScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		t.Logf("%-14s dim=%2d FP=%.5f hijack=%.5f foreign=%.5f %s", p.Label, p.Dim, p.FPAccuracy, p.HijackF, p.ForeignF, p.Err)
	}
	both := pts[0]
	if both.Err != "" || both.HijackF < 0.999 {
		t.Fatalf("both-edges variant degraded: %+v", both)
	}
	// Single-edge variants halve the dimensionality.
	if pts[1].Dim*2 != both.Dim || pts[2].Dim*2 != both.Dim {
		t.Fatalf("dims %d/%d/%d", both.Dim, pts[1].Dim, pts[2].Dim)
	}
	// Each single-edge variant must still be a usable detector on this
	// easy vehicle (the ablation's point is that the pair adds margin,
	// not that single edges fail outright).
	for _, p := range pts[1:] {
		if p.Err == "" && p.HijackF < 0.98 {
			t.Errorf("%s collapsed: %+v", p.Label, p)
		}
	}
}

func TestMarginCurve(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations need traffic")
	}
	margins := []float64{0, 5, 15, 40, 100, 400}
	pts, err := RunMarginCurve(vehicle.NewVehicleA(), margins, ablationScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		t.Logf("margin %6.1f: FP acc=%.5f foreign F=%.5f recall=%.5f", p.Margin, p.FPAccuracy, p.ForeignF, p.ForeignRecall)
	}
	// FP accuracy is monotonically non-decreasing in the margin
	// (larger margins only remove false positives).
	for i := 1; i < len(pts); i++ {
		if pts[i].FPAccuracy < pts[i-1].FPAccuracy {
			t.Fatalf("FP accuracy fell with a larger margin: %+v", pts)
		}
	}
	// Foreign recall is monotonically non-increasing (larger margins
	// only add false negatives); the F-score itself peaks in the
	// middle where precision has recovered but recall has not yet
	// collapsed — exactly the Section 3.2.3 trade-off.
	for i := 1; i < len(pts); i++ {
		if pts[i].ForeignRecall > pts[i-1].ForeignRecall+1e-12 {
			t.Fatalf("foreign recall rose with a larger margin: %+v", pts)
		}
	}
	if pts[len(pts)-1].ForeignRecall >= 0.5 {
		t.Fatal("huge margin did not suppress foreign detection")
	}
	if pts[0].ForeignRecall < 0.99 {
		t.Fatal("zero margin did not detect the foreign device")
	}
}

func TestTrainingSizeAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations need traffic")
	}
	// Vehicle B: dim 32. ~90 messages spread over 10 ECUs leaves some
	// cluster under its dimensionality → singular.
	sizes := []int{90, 700, 2400}
	pts, err := RunTrainingSizeAblation(vehicle.NewVehicleB(), sizes, ablationScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		t.Logf("n=%5d FP=%.5f hijack=%.5f %s", p.TrainMessages, p.FPAccuracy, p.HijackF, p.Err)
	}
	if pts[0].Err == "" {
		t.Error("tiny training set did not go singular")
	}
	last := pts[len(pts)-1]
	if last.Err != "" || last.FPAccuracy < 0.999 || last.HijackF < 0.999 {
		t.Errorf("full-size training degraded: %+v", last)
	}
}
