package experiments

import (
	"testing"

	"vprofile/internal/attack"
	"vprofile/internal/vehicle"
)

func TestCoverageMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("coverage matrix needs traffic")
	}
	rows, err := RunCoverageMatrix(vehicle.NewVehicleA(), Scale{TrainMessages: 1500, TestMessages: 2500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[attack.Kind]CoverageRow{}
	for _, r := range rows {
		byKind[r.Attack] = r
		t.Logf("%-10s vProfile=%.4f (%d/%d) period=%.4f (%d/%d) cids=%.4f (%d/%d) silent=%d",
			r.Attack,
			r.VProfile.AlarmRate, r.VProfile.Alarms, r.VProfile.Total,
			r.Period.AlarmRate, r.Period.Alarms, r.Period.Total,
			r.CIDS.AlarmRate, r.CIDS.Alarms, r.CIDS.Total,
			r.SilentIDs)
	}

	clean := byKind[attack.None]
	if clean.VProfile.AlarmRate > 0.005 {
		t.Errorf("vProfile false alarms on clean traffic: %.4f", clean.VProfile.AlarmRate)
	}
	if clean.Period.AlarmRate > 0.03 {
		t.Errorf("period monitor false alarms on clean traffic: %.4f", clean.Period.AlarmRate)
	}
	if clean.SilentIDs != 0 {
		t.Errorf("clean run reported %d silent ids", clean.SilentIDs)
	}

	// vProfile owns the waveform attacks…
	for _, k := range []attack.Kind{attack.Hijack, attack.Foreign, attack.Flood} {
		r := byKind[k]
		// Injection rate 0.2 → ~17% of messages are attacks; the
		// voltage detector must flag a comparable share.
		if r.VProfile.AlarmRate < 0.08 {
			t.Errorf("vProfile blind to %s: rate %.4f", k, r.VProfile.AlarmRate)
		}
	}
	// …but cannot see an absence.
	susp := byKind[attack.Suspension]
	if susp.VProfile.AlarmRate > 0.005 {
		t.Errorf("vProfile 'detected' a suspension (%.4f) — it has no message to inspect", susp.VProfile.AlarmRate)
	}
	// The period monitor owns the timing attacks.
	flood := byKind[attack.Flood]
	if flood.Period.AlarmRate < 0.2 {
		t.Errorf("period monitor blind to the flood: %.4f", flood.Period.AlarmRate)
	}
	if susp.SilentIDs == 0 {
		t.Error("suspension left no silent ids in the sweep")
	}
}
