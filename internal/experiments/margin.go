package experiments

import (
	"math"
	"sort"

	"vprofile/internal/core"
	"vprofile/internal/stats"
)

// MarginRecord captures how one test message's verdict depends on the
// detection margin: if Forced, the message is flagged regardless of
// margin (unknown SA or cluster mismatch); otherwise it is flagged
// exactly when margin < Slack, where Slack = minDist − MaxDist of the
// expected cluster.
type MarginRecord struct {
	Forced        bool
	Slack         float64
	ActualAnomaly bool
}

// RecordFor classifies one sample against the model and returns its
// margin-dependence record plus the full detection at the model's
// current margin.
func RecordFor(m *core.Model, s core.Sample, actualAnomaly bool) MarginRecord {
	d := m.Detect(s.SA, s.Set)
	switch d.Reason {
	case core.ReasonUnknownSA, core.ReasonClusterMismatch:
		return MarginRecord{Forced: true, ActualAnomaly: actualAnomaly}
	}
	c := m.Clusters[d.Expected]
	return MarginRecord{Slack: d.MinDist - c.MaxDist, ActualAnomaly: actualAnomaly}
}

// Objective scores a confusion matrix during margin selection.
type Objective func(stats.ConfusionMatrix) float64

// Objectives used by the paper: accuracy for the false positive test,
// F-score for the hijack and foreign-device tests.
var (
	MaxAccuracy Objective = func(c stats.ConfusionMatrix) float64 { return c.Accuracy() }
	MaxFScore   Objective = func(c stats.ConfusionMatrix) float64 { return c.FScore() }
)

// OptimizeMargin finds the non-negative margin that maximises the
// objective over the records, exactly (every distinct verdict pattern
// corresponds to an interval between consecutive slack values, and all
// intervals are evaluated). Ties prefer the smaller margin, matching
// the paper's practice of not inflating the margin needlessly.
func OptimizeMargin(records []MarginRecord, obj Objective) (margin float64, cm stats.ConfusionMatrix) {
	// Candidate margins: 0 and the midpoint above each positive slack.
	slacks := make([]float64, 0, len(records))
	for _, r := range records {
		if !r.Forced && r.Slack > 0 {
			slacks = append(slacks, r.Slack)
		}
	}
	sort.Float64s(slacks)
	candidates := make([]float64, 0, len(slacks)+1)
	candidates = append(candidates, 0)
	for i, s := range slacks {
		var c float64
		if i+1 < len(slacks) {
			c = (s + slacks[i+1]) / 2
		} else {
			c = s * 1.01
		}
		if c > s { // guard against duplicates collapsing the midpoint
			candidates = append(candidates, c)
		}
	}

	bestScore := math.Inf(-1)
	for _, cand := range candidates {
		m := EvaluateAtMargin(records, cand)
		if score := obj(m); score > bestScore {
			bestScore = score
			margin = cand
			cm = m
		}
	}
	return margin, cm
}

// EvaluateAtMargin builds the confusion matrix the records produce at
// a fixed margin.
func EvaluateAtMargin(records []MarginRecord, margin float64) stats.ConfusionMatrix {
	var cm stats.ConfusionMatrix
	for _, r := range records {
		flagged := r.Forced || r.Slack > margin
		cm.Add(r.ActualAnomaly, flagged)
	}
	return cm
}
