package experiments

import (
	"fmt"

	"vprofile/internal/core"
	"vprofile/internal/dsp"
	"vprofile/internal/linalg"
	"vprofile/internal/stats"
	"vprofile/internal/vehicle"
)

// EdgeSetBundle is the data behind Figure 2.5 / Figure 4.2: a set of
// raw edge-set traces grouped by ground-truth ECU.
type EdgeSetBundle struct {
	Vehicle string
	// Sets[ecu] holds the edge-set vectors of that ECU's messages.
	Sets [][]linalg.Vector
	// Means[ecu] is the per-ECU mean waveform (Figure 4.2's profile).
	Means []linalg.Vector
}

// CollectEdgeSets gathers n messages' edge sets grouped by ECU — the
// raw material of Figures 2.5 and 4.2.
func CollectEdgeSets(v *vehicle.Vehicle, n int, seed int64) (*EdgeSetBundle, error) {
	cfg := v.ExtractionConfig()
	samples, err := CollectSamples(v, n, seed, nil, cfg)
	if err != nil {
		return nil, err
	}
	b := &EdgeSetBundle{Vehicle: v.Name, Sets: make([][]linalg.Vector, len(v.ECUs))}
	for _, s := range samples {
		if s.ECU >= 0 {
			b.Sets[s.ECU] = append(b.Sets[s.ECU], s.Set)
		}
	}
	b.Means = make([]linalg.Vector, len(v.ECUs))
	for ecu, sets := range b.Sets {
		if len(sets) > 0 {
			b.Means[ecu] = linalg.Mean(sets)
		}
	}
	return b, nil
}

// ReductionSeries is Figure 3.1: one edge set rendered at reduced
// sampling rates (laterally rescaled for comparison) and reduced
// resolutions.
type ReductionSeries struct {
	Original []float64
	// ByRate[i] is the edge set decimated by RateFactors[i] and
	// rescaled back to the original length.
	RateFactors []int
	ByRate      [][]float64
	// ByBits[i] is the edge set requantised to Bits[i] of resolution.
	Bits   []int
	ByBits [][]float64
}

// RunReductionSeries reproduces Figure 3.1 on one edge set from the
// Sterling Acterra stand-in.
func RunReductionSeries(seed int64) (*ReductionSeries, error) {
	v := vehicle.NewSterlingActerra()
	cfg := v.ExtractionConfig()
	samples, err := CollectSamples(v, 1, seed, nil, cfg)
	if err != nil {
		return nil, err
	}
	set := []float64(samples[0].Set)
	out := &ReductionSeries{
		Original:    set,
		RateFactors: []int{2, 4, 8},
		Bits:        []int{12, 10, 8, 6},
	}
	for _, f := range out.RateFactors {
		down, err := dsp.Downsample(set, f)
		if err != nil {
			return nil, err
		}
		up, err := dsp.ResampleTo(down, len(set))
		if err != nil {
			return nil, err
		}
		out.ByRate = append(out.ByRate, up)
	}
	for _, b := range out.Bits {
		red, err := dsp.ReduceResolution(set, v.ADC.Bits, b)
		if err != nil {
			return nil, err
		}
		out.ByBits = append(out.ByBits, red)
	}
	return out, nil
}

// IndexDeviation is Figure 4.4: the per-sample-index standard
// deviation of one ECU's edge sets, showing the edges' far larger
// variance compared to overshoot and steady state.
type IndexDeviation struct {
	StdDev []float64
	// EdgeIndices are the sample indices at the two threshold
	// crossings (start of the rising and falling windows).
	EdgeIndices [2]int
}

// RunIndexDeviation computes Figure 4.4 for one ECU of the vehicle.
func RunIndexDeviation(v *vehicle.Vehicle, ecu, n int, seed int64) (*IndexDeviation, error) {
	bundle, err := CollectEdgeSets(v, n, seed)
	if err != nil {
		return nil, err
	}
	if ecu < 0 || ecu >= len(bundle.Sets) || len(bundle.Sets[ecu]) < 2 {
		return nil, fmt.Errorf("experiments: no edge sets for ECU %d", ecu)
	}
	sets := bundle.Sets[ecu]
	dim := len(sets[0])
	out := &IndexDeviation{StdDev: make([]float64, dim)}
	col := make([]float64, len(sets))
	for i := 0; i < dim; i++ {
		for j, s := range sets {
			col[j] = s[i]
		}
		out.StdDev[i] = stats.StdDev(col)
	}
	cfg := v.ExtractionConfig()
	out.EdgeIndices = [2]int{cfg.PrefixLen, cfg.PrefixLen + cfg.SuffixLen + cfg.PrefixLen}
	return out, nil
}

// QuotientResult is Table 4.5 / Figure 4.5: the Euclidean and
// Mahalanobis distances from a held-out ECU-0 edge set to the means of
// ECUs 0 and 1, and their quotients. The Mahalanobis quotient being an
// order of magnitude larger is the paper's motivation for the metric.
type QuotientResult struct {
	EuclideanTo0, EuclideanTo1     float64
	MahalanobisTo0, MahalanobisTo1 float64
	EuclideanQuotient              float64
	MahalanobisQuotient            float64
	// Means and TestSet back Figure 4.5's plot.
	Means   []linalg.Vector
	TestSet linalg.Vector
}

// RunQuotient reproduces Table 4.5 on the Sterling Acterra stand-in.
func RunQuotient(n int, seed int64) (*QuotientResult, error) {
	v := vehicle.NewSterlingActerra()
	cfg := v.ExtractionConfig()
	samples, err := CollectSamples(v, n, seed, nil, cfg)
	if err != nil {
		return nil, err
	}
	// Hold out the last ECU-0 edge set as E_test.
	testIdx := -1
	for i := len(samples) - 1; i >= 0; i-- {
		if samples[i].ECU == 0 {
			testIdx = i
			break
		}
	}
	if testIdx < 0 {
		return nil, fmt.Errorf("experiments: no ECU-0 message in %d samples", n)
	}
	test := samples[testIdx]
	train := append(append([]LabeledSample{}, samples[:testIdx]...), samples[testIdx+1:]...)

	model, err := core.Train(CoreSamples(train), core.TrainConfig{Metric: core.Mahalanobis, SAMap: v.SAMap()})
	if err != nil {
		return nil, err
	}
	if len(model.Clusters) != 2 {
		return nil, fmt.Errorf("experiments: expected 2 clusters, got %d", len(model.Clusters))
	}
	c0, err := model.ClusterForSA(v.ECUs[0].SAs()[0])
	if err != nil {
		return nil, err
	}
	c1, err := model.ClusterForSA(v.ECUs[1].SAs()[0])
	if err != nil {
		return nil, err
	}
	res := &QuotientResult{
		EuclideanTo0:   linalg.Euclidean(test.Set, c0.Mean),
		EuclideanTo1:   linalg.Euclidean(test.Set, c1.Mean),
		MahalanobisTo0: linalg.Mahalanobis(test.Set, c0.Mean, c0.InvCov),
		MahalanobisTo1: linalg.Mahalanobis(test.Set, c1.Mean, c1.InvCov),
		Means:          []linalg.Vector{c0.Mean, c1.Mean},
		TestSet:        test.Set,
	}
	res.EuclideanQuotient = res.EuclideanTo1 / res.EuclideanTo0
	res.MahalanobisQuotient = res.MahalanobisTo1 / res.MahalanobisTo0
	return res, nil
}
