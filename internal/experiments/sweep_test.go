package experiments

import (
	"testing"

	"vprofile/internal/vehicle"
)

func TestSweepVehicleAShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is expensive")
	}
	scale := Scale{TrainMessages: 1200, TestMessages: 2400, Seed: 3}
	res, err := RunSweep(vehicle.NewVehicleA(), []int{1, 2, 4, 8}, []int{16, 12, 10}, scale)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		t.Logf("%5.1f MS/s %2d-bit: FP=%.5f hijack=%.5f foreign=%.5f %s",
			c.RateMSs, c.Bits, c.FPAccuracy, c.HijackF, c.ForeignF, c.Err)
	}
	// The paper's Table 4.6: all evaluable combinations stay ≥ 0.999,
	// with only slight degradation at the lowest rates.
	for _, c := range res.Cells {
		if c.Err != "" {
			continue
		}
		if c.FPAccuracy < 0.995 || c.HijackF < 0.995 || c.ForeignF < 0.995 {
			t.Errorf("%.1f MS/s %d-bit degraded: %.5f/%.5f/%.5f", c.RateMSs, c.Bits, c.FPAccuracy, c.HijackF, c.ForeignF)
		}
	}
	// The native combination must evaluate.
	if c := res.Cell(20, 16); c == nil || c.Err != "" {
		t.Errorf("native combination failed: %+v", c)
	}
}

func TestSweepVehicleBShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is expensive")
	}
	scale := Scale{TrainMessages: 1200, TestMessages: 2400, Seed: 4}
	res, err := RunSweep(vehicle.NewVehicleB(), []int{1, 2, 4}, []int{12}, scale)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		t.Logf("%5.1f MS/s %2d-bit: FP=%.5f hijack=%.5f foreign=%.5f %s",
			c.RateMSs, c.Bits, c.FPAccuracy, c.HijackF, c.ForeignF, c.Err)
	}
	// Table 4.7: everything stays above 0.999 even at 2.5 MS/s.
	for _, c := range res.Cells {
		if c.Err != "" {
			t.Errorf("%.1f MS/s %d-bit: %s", c.RateMSs, c.Bits, c.Err)
			continue
		}
		if c.FPAccuracy < 0.99 || c.HijackF < 0.99 || c.ForeignF < 0.99 {
			t.Errorf("%.1f MS/s degraded: %.5f/%.5f/%.5f", c.RateMSs, c.FPAccuracy, c.HijackF, c.ForeignF)
		}
	}
}

func TestSweepResolutionFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is expensive")
	}
	// Below 10 bits the quantisation step dwarfs the noise floor and
	// covariance matrices go singular — the failure mode the paper
	// reports when reducing resolution past 10 bits.
	scale := Scale{TrainMessages: 800, TestMessages: 800, Seed: 5}
	res, err := RunSweep(vehicle.NewVehicleA(), []int{1}, []int{8}, scale)
	if err != nil {
		t.Fatal(err)
	}
	if c := res.Cell(20, 8); c == nil || c.Err == "" {
		t.Errorf("8-bit combination unexpectedly evaluable: %+v", c)
	}
}
