package experiments

import (
	"sort"
	"time"

	"vprofile/internal/core"
	"vprofile/internal/edgeset"
	"vprofile/internal/vehicle"
)

// LatencyResult quantifies the Section 1.3 claim that vProfile
// "minimizes latency": wall-clock per-message cost of preprocessing
// (Algorithm 1) and detection (Algorithm 3), against the duration of
// one frame on the bus — the budget a real-time monitor must meet.
type LatencyResult struct {
	Messages int

	ExtractP50, ExtractP95, ExtractP99 time.Duration
	DetectP50, DetectP95, DetectP99    time.Duration
	TotalP50, TotalP95, TotalP99       time.Duration

	// FrameDuration is the on-wire time of a typical 8-byte extended
	// frame at the vehicle's bit rate (~515 µs at 250 kb/s), the
	// real-time deadline.
	FrameDuration time.Duration
	// RealTime reports whether the 99th percentile of the full
	// pipeline stays inside one frame duration.
	RealTime bool
}

// RunLatency measures the detection pipeline's wall-clock latency over
// n live messages.
func RunLatency(v *vehicle.Vehicle, n int, seed int64) (*LatencyResult, error) {
	cfg := v.ExtractionConfig()
	train, err := CollectSamples(v, 1500, seed, nil, cfg)
	if err != nil {
		return nil, err
	}
	model, err := core.Train(CoreSamples(train), core.TrainConfig{Metric: core.Mahalanobis, SAMap: v.SAMap(), Margin: 10})
	if err != nil {
		return nil, err
	}

	extract := make([]time.Duration, 0, n)
	detect := make([]time.Duration, 0, n)
	total := make([]time.Duration, 0, n)
	err = v.Stream(vehicle.GenConfig{NumMessages: n, Seed: seed + 1}, func(m vehicle.Message) error {
		t0 := time.Now()
		res, err := edgeset.Extract(m.Trace, cfg)
		t1 := time.Now()
		if err != nil {
			return err
		}
		model.Detect(res.SA, res.Set)
		t2 := time.Now()
		extract = append(extract, t1.Sub(t0))
		detect = append(detect, t2.Sub(t1))
		total = append(total, t2.Sub(t0))
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := &LatencyResult{Messages: n}
	out.ExtractP50, out.ExtractP95, out.ExtractP99 = percentiles(extract)
	out.DetectP50, out.DetectP95, out.DetectP99 = percentiles(detect)
	out.TotalP50, out.TotalP95, out.TotalP99 = percentiles(total)
	// SOF..EOF of an 8-byte extended frame plus intermission, with
	// average stuffing overhead ~5 %.
	bits := 1.05 * float64(131+3)
	out.FrameDuration = time.Duration(bits / v.BitRate * float64(time.Second))
	out.RealTime = out.TotalP99 < out.FrameDuration
	return out, nil
}

func percentiles(ds []time.Duration) (p50, p95, p99 time.Duration) {
	if len(ds) == 0 {
		return 0, 0, 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(p float64) time.Duration {
		idx := int(p * float64(len(sorted)-1))
		return sorted[idx]
	}
	return at(0.50), at(0.95), at(0.99)
}
