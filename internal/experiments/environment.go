package experiments

import (
	"fmt"

	"vprofile/internal/analog"
	"vprofile/internal/core"
	"vprofile/internal/stats"
	"vprofile/internal/vehicle"
)

// BinDelta is one point of Figures 4.6–4.8: the percent change of the
// mean Mahalanobis distance relative to the training condition, with
// its 99 % confidence interval half-width.
type BinDelta struct {
	MeanPct float64
	CI99Pct float64
}

// TemperatureResult reproduces Table 4.8 and Figure 4.6.
type TemperatureResult struct {
	// Matrix is the confusion matrix over all test bins (0–25 °C) for
	// a model trained at −5–0 °C.
	Matrix stats.ConfusionMatrix
	// FPsByBin counts false positives per 5 °C test bin; index 0 is
	// (0,5] up to index 4 for (20,25]. The paper sees all four of its
	// false positives in the hottest bin.
	FPsByBin []int
	// AugmentedMatrix re-runs the test with 20–25 °C data added to
	// training, which removes the false positives in the paper.
	AugmentedMatrix stats.ConfusionMatrix
	// Delta[ecu][bin] is Figure 4.6's percent change of the mean
	// Mahalanobis distance per ECU per 5 °C bin.
	Delta [][]BinDelta
}

// temperatureEnv returns an EnvFunc sweeping every ECU's temperature
// linearly from lo to hi over the expected capture duration, with the
// engine running (alternator at 13.6 V).
func temperatureEnv(v *vehicle.Vehicle, lo, hi, expectedDuration float64) vehicle.EnvFunc {
	return func(t float64, ecu int) analog.Environment {
		frac := t / expectedDuration
		if frac > 1 {
			frac = 1
		}
		return analog.Environment{
			TemperatureC: lo + (hi-lo)*frac,
			SupplyVolts:  13.6,
		}
	}
}

// captureDuration estimates how long n messages take on the vehicle's
// schedule, so temperature ramps can be paced.
func captureDuration(v *vehicle.Vehicle, n int) float64 {
	var perSec float64
	for _, e := range v.ECUs {
		for _, m := range e.Messages {
			perSec += 1000 / m.PeriodMS
		}
	}
	return float64(n) / perSec
}

// RunTemperature executes the Section 4.4.1 experiment on the vehicle:
// train on −5–0 °C data, replay 0–25 °C data, report false positives
// per bin and the per-ECU distance drift. perBin sets the number of
// messages per 5 °C bin.
func RunTemperature(v *vehicle.Vehicle, perBin int, seed int64) (*TemperatureResult, error) {
	cfg := v.ExtractionConfig()
	const nBins = 5 // (0,5] … (20,25]

	collectBin := func(lo, hi float64, n int, seed int64) ([]LabeledSample, error) {
		dur := captureDuration(v, n)
		return CollectSamples(v, n, seed, temperatureEnv(v, lo, hi, dur), cfg)
	}

	// Training uses a larger capture so each cluster's covariance is
	// well conditioned (N well above the edge-set dimensionality).
	train, err := collectBin(-5, 0, 6*perBin, seed)
	if err != nil {
		return nil, err
	}
	// Margin selection and the delta baseline use a held-out capture
	// from the training temperature range, as the detector would be
	// commissioned; an out-of-sample baseline avoids the in-sample
	// Mahalanobis bias that would otherwise inflate every delta.
	val, err := collectBin(-5, 0, perBin, seed+50)
	if err != nil {
		return nil, err
	}
	model, err := core.Train(CoreSamples(train), core.TrainConfig{Metric: core.Mahalanobis, SAMap: v.SAMap()})
	if err != nil {
		return nil, err
	}
	margin, _ := OptimizeMargin(FalsePositiveRecords(model, val), MaxAccuracy)
	// The Section 3.2.3 "configurable margin": commission with
	// headroom over the tightest validation margin so rare noise
	// bursts beyond the validation capture stay below threshold.
	model.Margin = margin * 1.5

	res := &TemperatureResult{FPsByBin: make([]int, nBins)}
	bins := make([][]LabeledSample, nBins)
	for b := 0; b < nBins; b++ {
		lo := float64(b * 5)
		samples, err := collectBin(lo, lo+5, perBin, seed+int64(b)+1)
		if err != nil {
			return nil, err
		}
		bins[b] = samples
		for _, s := range samples {
			d := model.Detect(s.SA, s.Set)
			res.Matrix.Add(false, d.Anomaly)
			if d.Anomaly {
				res.FPsByBin[b]++
			}
		}
	}

	// Figure 4.6: per-ECU percent delta of the mean Mahalanobis
	// distance per bin, against the training-range distances.
	res.Delta = distanceDeltas(model, v, val, bins)

	// Table 4.8 follow-up: fold a trial from the hottest bin into
	// training; the false positives disappear.
	hot, err := collectBin(20, 25, 2*perBin, seed+99)
	if err != nil {
		return nil, err
	}
	augTrain := append(append([]LabeledSample{}, train...), hot...)
	augModel, err := core.Train(CoreSamples(augTrain), core.TrainConfig{Metric: core.Mahalanobis, SAMap: v.SAMap()})
	if err != nil {
		return nil, err
	}
	augMargin, _ := OptimizeMargin(FalsePositiveRecords(augModel, val), MaxAccuracy)
	augModel.Margin = augMargin * 1.5
	for _, samples := range bins {
		for _, s := range samples {
			d := augModel.Detect(s.SA, s.Set)
			res.AugmentedMatrix.Add(false, d.Anomaly)
		}
	}
	return res, nil
}

// distanceDeltas computes the Figure 4.6/4.7/4.8 statistic: for each
// ECU, the percent change of the mean distance to its own cluster in
// every test group relative to the training group, with 99 % CIs.
func distanceDeltas(model *core.Model, v *vehicle.Vehicle, train []LabeledSample, groups [][]LabeledSample) [][]BinDelta {
	nECU := len(v.ECUs)
	baseMean := make([]float64, nECU)
	for ecu := 0; ecu < nECU; ecu++ {
		ds := ecuDistances(model, train, ecu)
		baseMean[ecu] = stats.Mean(ds)
	}
	out := make([][]BinDelta, nECU)
	for ecu := 0; ecu < nECU; ecu++ {
		out[ecu] = make([]BinDelta, len(groups))
		for b, g := range groups {
			ds := ecuDistances(model, g, ecu)
			mean := stats.Mean(ds)
			ci := stats.ConfidenceInterval99(ds)
			out[ecu][b] = BinDelta{
				MeanPct: stats.PercentDelta(baseMean[ecu], mean),
				CI99Pct: 100 * ci / baseMean[ecu],
			}
		}
	}
	return out
}

// ecuDistances returns each sample's distance to its own cluster for
// one ground-truth ECU.
func ecuDistances(model *core.Model, samples []LabeledSample, ecu int) []float64 {
	var out []float64
	for _, s := range samples {
		if s.ECU != ecu {
			continue
		}
		c, err := model.ClusterForSA(s.SA)
		if err != nil {
			continue
		}
		out = append(out, model.Distance(c, s.Set))
	}
	return out
}

// LoadEvent is one high-power vehicle function of Section 4.4.2.
type LoadEvent struct {
	Name        string
	SupplyVolts float64
}

// AccessoryModeEvents reproduces the Section 4.4.2 event list: the
// battery sags as interior/exterior lights and the A/C blower load it,
// and rises to alternator voltage once the engine runs.
func AccessoryModeEvents() []LoadEvent {
	return []LoadEvent{
		{Name: "accessory", SupplyVolts: 12.61},
		{Name: "lights", SupplyVolts: 12.55},
		{Name: "a/c", SupplyVolts: 12.52},
		{Name: "lights+a/c", SupplyVolts: 12.45},
		{Name: "engine", SupplyVolts: 13.60},
	}
}

// VoltageResult reproduces Table 4.9 and Figure 4.7.
type VoltageResult struct {
	Matrix stats.ConfusionMatrix
	Events []string
	// Delta[ecu][event] is Figure 4.7's percent distance change per
	// high-power event (events exclude the baseline accessory mode).
	Delta [][]BinDelta
}

// RunVoltage executes the Section 4.4.2 experiment: train in accessory
// mode, replay the high-power-function events, expect a perfect
// detection rate (Table 4.9) and only small distance deltas, largest
// under the heaviest load (Figure 4.7).
func RunVoltage(v *vehicle.Vehicle, perEvent int, seed int64) (*VoltageResult, error) {
	cfg := v.ExtractionConfig()
	const temp = 28.4 // the paper's shaded-lot ambient

	collect := func(supply float64, n int, seed int64) ([]LabeledSample, error) {
		env := func(t float64, ecu int) analog.Environment {
			return analog.Environment{TemperatureC: temp, SupplyVolts: supply}
		}
		return CollectSamples(v, n, seed, env, cfg)
	}

	events := AccessoryModeEvents()
	train, err := collect(events[0].SupplyVolts, 6*perEvent, seed)
	if err != nil {
		return nil, err
	}
	val, err := collect(events[0].SupplyVolts, 3*perEvent, seed+50)
	if err != nil {
		return nil, err
	}
	model, err := core.Train(CoreSamples(train), core.TrainConfig{Metric: core.Mahalanobis, SAMap: v.SAMap()})
	if err != nil {
		return nil, err
	}
	margin, _ := OptimizeMargin(FalsePositiveRecords(model, val), MaxAccuracy)
	model.Margin = margin * 1.5 // commissioning headroom, as above

	res := &VoltageResult{}
	groups := make([][]LabeledSample, 0, len(events)-1)
	for i, ev := range events[1:] {
		samples, err := collect(ev.SupplyVolts, perEvent, seed+int64(i)+1)
		if err != nil {
			return nil, err
		}
		groups = append(groups, samples)
		res.Events = append(res.Events, ev.Name)
		for _, s := range samples {
			d := model.Detect(s.SA, s.Set)
			res.Matrix.Add(false, d.Anomaly)
		}
	}
	res.Delta = distanceDeltas(model, v, val, groups)
	return res, nil
}

// DriftResult reproduces Figure 4.8: repeated accessory-mode trials
// drift away from a model trained on the first trial, which the paper
// attributes to unmeasured bus/wiring temperature rise.
type DriftResult struct {
	// Delta[ecu][trial] for trials 2…n.
	Delta [][]BinDelta
}

// RunDrift runs n accessory-mode trials with a hidden per-trial
// temperature creep, trains on the first and measures the distance
// drift of the rest.
func RunDrift(v *vehicle.Vehicle, trials, perTrial int, seed int64) (*DriftResult, error) {
	if trials < 2 {
		return nil, fmt.Errorf("experiments: need at least two trials, got %d", trials)
	}
	cfg := v.ExtractionConfig()
	collectN := func(trial, n int, seed int64) ([]LabeledSample, error) {
		// ~0.8 °C of unnoticed bus warming per trial.
		temp := 28.4 + 0.8*float64(trial)
		env := func(t float64, ecu int) analog.Environment {
			return analog.Environment{TemperatureC: temp, SupplyVolts: 12.61}
		}
		return CollectSamples(v, n, seed, env, cfg)
	}
	collect := func(trial int, seed int64) ([]LabeledSample, error) {
		return collectN(trial, perTrial, seed)
	}
	train, err := collectN(0, 6*perTrial, seed)
	if err != nil {
		return nil, err
	}
	baseline, err := collect(0, seed+500)
	if err != nil {
		return nil, err
	}
	model, err := core.Train(CoreSamples(train), core.TrainConfig{Metric: core.Mahalanobis, SAMap: v.SAMap()})
	if err != nil {
		return nil, err
	}
	groups := make([][]LabeledSample, 0, trials-1)
	for trial := 1; trial < trials; trial++ {
		samples, err := collect(trial, seed+int64(trial))
		if err != nil {
			return nil, err
		}
		groups = append(groups, samples)
	}
	return &DriftResult{Delta: distanceDeltas(model, v, baseline, groups)}, nil
}
