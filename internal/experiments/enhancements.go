package experiments

import (
	"fmt"

	"vprofile/internal/analog"
	"vprofile/internal/core"
	"vprofile/internal/edgeset"
	"vprofile/internal/linalg"
	"vprofile/internal/stats"
	"vprofile/internal/vehicle"
)

// ECUStats is one row of Tables 5.1/5.2: an ECU's intra-cluster
// statistics under one preprocessing variant.
type ECUStats struct {
	// StdDev is the per-sample standard deviation averaged over the
	// edge-set dimensions (the paper's ~170-code figures).
	StdDev float64
	// MaxDist is the maximum Mahalanobis distance from a trace to its
	// ECU's mean (the paper's ~10–21 figures).
	MaxDist float64
}

// EnhancementResult compares a baseline preprocessing variant against
// an enhanced one, per ECU.
type EnhancementResult struct {
	Baseline []ECUStats
	Enhanced []ECUStats
}

// RunClusterThresholds reproduces Table 5.1: train-time statistics
// with the fixed extraction threshold versus a per-cluster threshold
// computed as the midpoint of each ECU's trace extremes over the first
// half of a message (Section 5.1).
func RunClusterThresholds(v *vehicle.Vehicle, n int, seed int64) (*EnhancementResult, error) {
	fixed := v.ExtractionConfig()

	// Pass 1: derive each ECU's threshold from its first message.
	thresholds := make([]float64, len(v.ECUs))
	found := 0
	err := v.Stream(vehicle.GenConfig{NumMessages: n, Seed: seed}, func(m vehicle.Message) error {
		if thresholds[m.ECUIndex] == 0 {
			thresholds[m.ECUIndex] = edgeset.ClusterThreshold(m.Trace)
			found++
			if found == len(v.ECUs) {
				return errStopStream
			}
		}
		return nil
	})
	if err != nil && err != errStopStream {
		return nil, err
	}
	if found < len(v.ECUs) {
		return nil, fmt.Errorf("experiments: only %d of %d ECUs seen while deriving thresholds", found, len(v.ECUs))
	}

	// Pass 2 (same seed → same traffic): extract each message twice.
	baseSets := make([][]linalg.Vector, len(v.ECUs))
	enhSets := make([][]linalg.Vector, len(v.ECUs))
	err = v.Stream(vehicle.GenConfig{NumMessages: n, Seed: seed}, func(m vehicle.Message) error {
		rb, err := edgeset.Extract(m.Trace, fixed)
		if err != nil {
			return err
		}
		baseSets[m.ECUIndex] = append(baseSets[m.ECUIndex], rb.Set)
		clustCfg := fixed
		clustCfg.BitThreshold = thresholds[m.ECUIndex]
		re, err := edgeset.Extract(m.Trace, clustCfg)
		if err != nil {
			return err
		}
		enhSets[m.ECUIndex] = append(enhSets[m.ECUIndex], re.Set)
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &EnhancementResult{}
	res.Baseline, err = perECUStats(baseSets)
	if err != nil {
		return nil, err
	}
	res.Enhanced, err = perECUStats(enhSets)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// errStopStream terminates a Stream early without reporting failure.
var errStopStream = fmt.Errorf("experiments: stop stream")

// RunMultiEdgeSets reproduces Table 5.2: statistics with one edge set
// per message versus the mean of three edge sets spaced 250 samples
// apart at the reference rate (Section 5.2).
func RunMultiEdgeSets(v *vehicle.Vehicle, n int, seed int64) (*EnhancementResult, error) {
	oneCfg := v.ExtractionConfig()
	threeCfg := oneCfg
	threeCfg.NumEdgeSets = 3
	threeCfg.EdgeSetGap = 250 * oneCfg.BitWidth / 40 // the paper's spacing, rate-scaled

	oneSets := make([][]linalg.Vector, len(v.ECUs))
	threeSets := make([][]linalg.Vector, len(v.ECUs))
	err := v.Stream(vehicle.GenConfig{NumMessages: n, Seed: seed}, func(m vehicle.Message) error {
		r1, err := edgeset.Extract(m.Trace, oneCfg)
		if err != nil {
			return err
		}
		oneSets[m.ECUIndex] = append(oneSets[m.ECUIndex], r1.Set)
		r3, err := edgeset.Extract(m.Trace, threeCfg)
		if err != nil {
			return err
		}
		threeSets[m.ECUIndex] = append(threeSets[m.ECUIndex], r3.Set)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &EnhancementResult{}
	res.Baseline, err = perECUStats(oneSets)
	if err != nil {
		return nil, err
	}
	res.Enhanced, err = perECUStats(threeSets)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// perECUStats derives the Table 5.1/5.2 row for each ECU's edge sets.
func perECUStats(byECU [][]linalg.Vector) ([]ECUStats, error) {
	out := make([]ECUStats, len(byECU))
	for ecu, sets := range byECU {
		if len(sets) < 2 {
			return nil, fmt.Errorf("experiments: ECU %d has only %d edge sets", ecu, len(sets))
		}
		mean := linalg.Mean(sets)
		dim := len(mean)
		// Average per-dimension standard deviation.
		col := make([]float64, len(sets))
		var sdSum float64
		for i := 0; i < dim; i++ {
			for j, s := range sets {
				col[j] = s[i]
			}
			sdSum += stats.StdDev(col)
		}
		cov := linalg.Covariance(sets)
		inv, err := cov.Inverse()
		if err != nil {
			return nil, fmt.Errorf("experiments: ECU %d covariance: %w", ecu, err)
		}
		var maxDist float64
		for _, s := range sets {
			if d := linalg.Mahalanobis(s, mean, inv); d > maxDist {
				maxDist = d
			}
		}
		out[ecu] = ECUStats{StdDev: sdSum / float64(dim), MaxDist: maxDist}
	}
	return out, nil
}

// OnlineUpdateResult quantifies the Section 5.3 enhancement: false
// positive rates under environmental drift with a static model versus
// one updated online with accepted messages (Algorithm 4).
type OnlineUpdateResult struct {
	StaticFPRate  float64
	UpdatedFPRate float64
	// RetrainRecommended reports whether any cluster crossed the
	// model's update bound during the run.
	RetrainRecommended bool
}

// RunOnlineUpdate trains at nominal temperature, then replays traffic
// while the vehicle warms by warmBy °C. The static model's false
// positive rate climbs as the waveforms drift; the updated model folds
// every accepted message back in (batched) and tracks the drift.
func RunOnlineUpdate(v *vehicle.Vehicle, n int, warmBy float64, seed int64) (*OnlineUpdateResult, error) {
	cfg := v.ExtractionConfig()
	nominal := v.ECUs[0].Transceiver.NominalEnvironment()

	train, err := CollectSamples(v, 4*n, seed, nil, cfg)
	if err != nil {
		return nil, err
	}
	val, err := CollectSamples(v, n, seed+50, nil, cfg)
	if err != nil {
		return nil, err
	}
	mkModel := func() (*core.Model, error) {
		m, err := core.Train(CoreSamples(train), core.TrainConfig{
			Metric: core.Mahalanobis, SAMap: v.SAMap(), UpdateBound: 100 * len(train),
		})
		if err != nil {
			return nil, err
		}
		margin, _ := OptimizeMargin(FalsePositiveRecords(m, val), MaxAccuracy)
		m.Margin = margin * 1.25 // commissioning headroom
		return m, nil
	}
	static, err := mkModel()
	if err != nil {
		return nil, err
	}
	updated, err := mkModel()
	if err != nil {
		return nil, err
	}

	dur := captureDuration(v, n)
	env := func(t float64, ecu int) analog.Environment {
		frac := t / dur
		if frac > 1 {
			frac = 1
		}
		e := nominal
		e.TemperatureC += warmBy * frac
		return e
	}

	res := &OnlineUpdateResult{}
	staticFPs, updatedFPs, total := 0, 0, 0
	var batch []core.Sample
	err = v.Stream(vehicle.GenConfig{NumMessages: n, Seed: seed + 99, Env: env}, func(m vehicle.Message) error {
		r, err := edgeset.Extract(m.Trace, cfg)
		if err != nil {
			return err
		}
		total++
		if static.Detect(r.SA, r.Set).Anomaly {
			staticFPs++
		}
		if updated.Detect(r.SA, r.Set).Anomaly {
			updatedFPs++
		} else {
			// Only accepted messages feed the online update, batched
			// to amortise the covariance maintenance.
			batch = append(batch, core.Sample{SA: r.SA, Set: r.Set})
			if len(batch) >= 64 {
				ur, err := updated.Update(batch)
				if err != nil {
					return err
				}
				if len(ur.RetrainRecommended) > 0 {
					res.RetrainRecommended = true
				}
				batch = batch[:0]
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.StaticFPRate = float64(staticFPs) / float64(total)
	res.UpdatedFPRate = float64(updatedFPs) / float64(total)
	return res, nil
}
