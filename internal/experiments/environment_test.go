package experiments

import (
	"testing"

	"vprofile/internal/vehicle"
)

func TestTemperatureExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("environment experiments are expensive")
	}
	res, err := RunTemperature(vehicle.NewVehicleA(), 900, 11)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("FPs by bin: %v, total %d/%d", res.FPsByBin, res.Matrix.FP, res.Matrix.Total())
	t.Logf("augmented FPs: %d/%d", res.AugmentedMatrix.FP, res.AugmentedMatrix.Total())
	for ecu := range res.Delta {
		row := make([]float64, len(res.Delta[ecu]))
		for b := range row {
			row[b] = res.Delta[ecu][b].MeanPct
		}
		t.Logf("ECU %d distance delta %%: %.1f", ecu, row)
	}

	// Table 4.8 shape: few false positives, concentrated in the
	// hottest bins, removed by augmenting training with hot data.
	total := res.Matrix.Total()
	if res.Matrix.FP == 0 {
		t.Log("note: zero FPs before augmentation (paper saw 4)")
	}
	if res.Matrix.FP > total/20 {
		t.Errorf("too many temperature FPs: %d/%d", res.Matrix.FP, total)
	}
	coolFPs := res.FPsByBin[0] + res.FPsByBin[1]
	hotFPs := res.FPsByBin[3] + res.FPsByBin[4]
	if coolFPs > hotFPs {
		t.Errorf("FPs not concentrated in hot bins: %v", res.FPsByBin)
	}
	if res.AugmentedMatrix.FP > res.Matrix.FP {
		t.Errorf("augmentation made things worse: %d -> %d", res.Matrix.FP, res.AugmentedMatrix.FP)
	}

	// Figure 4.6 shape: distance rises with temperature for all ECUs;
	// ECUs 0 and 2 (engine-mounted) rise far more than the rest.
	last := len(res.Delta[0]) - 1
	for ecu := range res.Delta {
		if res.Delta[ecu][last].MeanPct <= 0 {
			t.Errorf("ECU %d distance did not grow with temperature: %.2f%%", ecu, res.Delta[ecu][last].MeanPct)
		}
	}
	strong := (res.Delta[0][last].MeanPct + res.Delta[2][last].MeanPct) / 2
	mild := (res.Delta[1][last].MeanPct + res.Delta[3][last].MeanPct + res.Delta[4][last].MeanPct) / 3
	if strong < 2*mild {
		t.Errorf("engine-mounted ECUs not dominant: strong %.1f%% vs mild %.1f%%", strong, mild)
	}
	// Monotone-ish growth for ECU 0 between the first and last bin.
	if res.Delta[0][0].MeanPct >= res.Delta[0][last].MeanPct {
		t.Errorf("ECU 0 delta not growing: first %.1f%% last %.1f%%", res.Delta[0][0].MeanPct, res.Delta[0][last].MeanPct)
	}
}

func TestVoltageExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("environment experiments are expensive")
	}
	res, err := RunVoltage(vehicle.NewVehicleA(), 900, 12)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("events: %v", res.Events)
	for ecu := range res.Delta {
		row := make([]float64, len(res.Delta[ecu]))
		for b := range row {
			row[b] = res.Delta[ecu][b].MeanPct
		}
		t.Logf("ECU %d delta %%: %.2f", ecu, row)
	}
	// Table 4.9: perfect detection rate under high-power functions.
	if res.Matrix.FP != 0 {
		t.Errorf("%d false positives under load events (paper: 0)", res.Matrix.FP)
	}
	// Figure 4.7: deltas stay small — an order of magnitude below the
	// temperature experiment's engine-mounted drift.
	for ecu := range res.Delta {
		for b := range res.Delta[ecu] {
			if d := res.Delta[ecu][b].MeanPct; d > 25 || d < -25 {
				t.Errorf("ECU %d event %s delta %.1f%% implausibly large", ecu, res.Events[b], d)
			}
		}
	}
}

func TestDriftExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("environment experiments are expensive")
	}
	res, err := RunDrift(vehicle.NewVehicleA(), 5, 700, 13)
	if err != nil {
		t.Fatal(err)
	}
	for ecu := range res.Delta {
		row := make([]float64, len(res.Delta[ecu]))
		for b := range row {
			row[b] = res.Delta[ecu][b].MeanPct
		}
		t.Logf("ECU %d trial deltas %%: %.2f", ecu, row)
	}
	// Figure 4.8: overall increase in distance across trials. Average
	// across ECUs: the last trial must exceed the first.
	first, last := 0.0, 0.0
	for ecu := range res.Delta {
		first += res.Delta[ecu][0].MeanPct
		last += res.Delta[ecu][len(res.Delta[ecu])-1].MeanPct
	}
	if last <= first {
		t.Errorf("no drift across trials: first %.2f%% last %.2f%%", first, last)
	}
}

func TestDriftRejectsTooFewTrials(t *testing.T) {
	if _, err := RunDrift(vehicle.NewVehicleA(), 1, 10, 1); err == nil {
		t.Fatal("single trial accepted")
	}
}
