package experiments

import (
	"testing"

	"vprofile/internal/core"
	"vprofile/internal/vehicle"
)

// TestCalibrationShape verifies that the simulated vehicles carry the
// paper's qualitative results (the "shape" of Tables 4.1–4.4):
//
//   - Vehicle A, Euclidean: near-perfect FP and hijack scores, foreign
//     F-score near zero (the closest pair slips under the threshold).
//   - Vehicle A, Mahalanobis: ≥ 0.999 across all three tests.
//   - Vehicle B, Euclidean: visibly degraded (FP accuracy and hijack
//     F-score well below Vehicle A's, foreign F-score intermediate).
//   - Vehicle B, Mahalanobis: ≥ 0.999 across all three tests.
func TestCalibrationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration needs thousands of messages")
	}
	scale := Scale{TrainMessages: 1500, TestMessages: 3000, Seed: 1}

	aEuc, err := RunMetric(vehicle.NewVehicleA(), core.Euclidean, scale)
	if err != nil {
		t.Fatal(err)
	}
	report(t, aEuc)
	aMah, err := RunMetric(vehicle.NewVehicleA(), core.Mahalanobis, scale)
	if err != nil {
		t.Fatal(err)
	}
	report(t, aMah)
	bEuc, err := RunMetric(vehicle.NewVehicleB(), core.Euclidean, scale)
	if err != nil {
		t.Fatal(err)
	}
	report(t, bEuc)
	bMah, err := RunMetric(vehicle.NewVehicleB(), core.Mahalanobis, scale)
	if err != nil {
		t.Fatal(err)
	}
	report(t, bMah)

	// Vehicle A, Euclidean (Table 4.1 shape).
	if acc := aEuc.FalsePositive.Matrix.Accuracy(); acc < 0.999 {
		t.Errorf("A/Euclidean FP accuracy %.5f, want ≥ 0.999", acc)
	}
	if f := aEuc.Hijack.Matrix.FScore(); f < 0.995 {
		t.Errorf("A/Euclidean hijack F %.5f, want ≥ 0.995", f)
	}
	if f := aEuc.Foreign.Matrix.FScore(); f > 0.30 {
		t.Errorf("A/Euclidean foreign F %.5f, want ≤ 0.30 (paper: 0.00065)", f)
	}
	// Vehicle A's closest pair must be ECUs 1 and 4 (clusters by SA map
	// order equal ECU indices).
	if !pairIs(aEuc.ForeignPair, 1, 4) {
		t.Errorf("A/Euclidean closest pair %v, want {1,4}", aEuc.ForeignPair)
	}
	if !pairIs(aMah.ForeignPair, 1, 4) {
		t.Errorf("A/Mahalanobis closest pair %v, want {1,4}", aMah.ForeignPair)
	}

	// Vehicle A, Mahalanobis (Table 4.3 shape).
	if acc := aMah.FalsePositive.Matrix.Accuracy(); acc < 0.999 {
		t.Errorf("A/Mahalanobis FP accuracy %.5f, want ≥ 0.999", acc)
	}
	if f := aMah.Hijack.Matrix.FScore(); f < 0.999 {
		t.Errorf("A/Mahalanobis hijack F %.5f, want ≥ 0.999", f)
	}
	if f := aMah.Foreign.Matrix.FScore(); f < 0.999 {
		t.Errorf("A/Mahalanobis foreign F %.5f, want ≥ 0.999", f)
	}

	// Vehicle B, Euclidean (Table 4.2 shape: acc 0.886, F 0.806/0.422).
	if acc := bEuc.FalsePositive.Matrix.Accuracy(); acc > 0.98 || acc < 0.70 {
		t.Errorf("B/Euclidean FP accuracy %.5f, want degraded (paper 0.886)", acc)
	}
	if f := bEuc.Hijack.Matrix.FScore(); f > 0.95 || f < 0.55 {
		t.Errorf("B/Euclidean hijack F %.5f, want degraded (paper 0.806)", f)
	}
	if f := bEuc.Foreign.Matrix.FScore(); f > 0.80 {
		t.Errorf("B/Euclidean foreign F %.5f, want low-intermediate (paper 0.422)", f)
	}

	// Vehicle B, Mahalanobis (Table 4.4 shape).
	if acc := bMah.FalsePositive.Matrix.Accuracy(); acc < 0.999 {
		t.Errorf("B/Mahalanobis FP accuracy %.5f, want ≥ 0.999", acc)
	}
	if f := bMah.Hijack.Matrix.FScore(); f < 0.999 {
		t.Errorf("B/Mahalanobis hijack F %.5f, want ≥ 0.999", f)
	}
	if f := bMah.Foreign.Matrix.FScore(); f < 0.999 {
		t.Errorf("B/Mahalanobis foreign F %.5f, want ≥ 0.999", f)
	}
}

func pairIs(p [2]core.ClusterID, a, b core.ClusterID) bool {
	return (p[0] == a && p[1] == b) || (p[0] == b && p[1] == a)
}

func report(t *testing.T, r *MetricResults) {
	t.Helper()
	t.Logf("%s/%s: FP acc=%.5f (margin %.3g) | hijack F=%.5f (margin %.3g) | foreign F=%.5f (margin %.3g) | pair=%v d=%.2f next=%v d=%.2f",
		r.Vehicle, r.Metric,
		r.FalsePositive.Matrix.Accuracy(), r.FalsePositive.Margin,
		r.Hijack.Matrix.FScore(), r.Hijack.Margin,
		r.Foreign.Matrix.FScore(), r.Foreign.Margin,
		r.ForeignPair, r.ForeignPairDist, r.NextPair, r.NextPairDist)
}
