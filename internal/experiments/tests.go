package experiments

import (
	"fmt"
	"math/rand"

	"vprofile/internal/canbus"
	"vprofile/internal/core"
	"vprofile/internal/stats"
	"vprofile/internal/vehicle"
)

// TestOutcome is one test's confusion matrix with the margin the
// optimiser chose.
type TestOutcome struct {
	Matrix stats.ConfusionMatrix
	Margin float64
}

// MetricResults reproduces one of Tables 4.1–4.4: the three experiment
// types run on one vehicle under one distance metric.
type MetricResults struct {
	Vehicle string
	Metric  core.Metric

	FalsePositive TestOutcome
	Hijack        TestOutcome
	Foreign       TestOutcome

	// ForeignPair is the closest cluster pair under the metric; the
	// first element is the ECU removed from training and relabelled as
	// the second during the foreign test.
	ForeignPair     [2]core.ClusterID
	ForeignPairDist float64
	// NextPair is the second-closest pair, reported alongside in
	// Section 4.2 ("the next smallest distance is …").
	NextPair     [2]core.ClusterID
	NextPairDist float64
}

// FalsePositiveRecords replays unmodified traffic: every message is
// legitimate, every alarm a false positive.
func FalsePositiveRecords(m *core.Model, test []LabeledSample) []MarginRecord {
	out := make([]MarginRecord, 0, len(test))
	for _, s := range test {
		out = append(out, RecordFor(m, s.Sample, false))
	}
	return out
}

// HijackRecords replays traffic where each message's SA is rewritten,
// with 20 % probability, to an SA belonging to a different cluster —
// the software simulation of every ECU imitating every other
// (Section 4.1).
func HijackRecords(m *core.Model, test []LabeledSample, rng *rand.Rand) []MarginRecord {
	// SA pool grouped by cluster for forging.
	saByCluster := make(map[core.ClusterID][]canbus.SourceAddress)
	var allSAs []canbus.SourceAddress
	for sa, id := range m.SALUT {
		saByCluster[id] = append(saByCluster[id], sa)
		allSAs = append(allSAs, sa)
	}
	out := make([]MarginRecord, 0, len(test))
	for _, s := range test {
		sample := s.Sample
		actual := false
		if rng.Float64() < 0.20 {
			if forged, ok := forgeSA(m, sample.SA, allSAs, rng); ok {
				sample.SA = forged
				actual = true
			}
		}
		out = append(out, RecordFor(m, sample, actual))
	}
	return out
}

// forgeSA picks a random SA whose cluster differs from the one the
// original SA belongs to.
func forgeSA(m *core.Model, original canbus.SourceAddress, pool []canbus.SourceAddress, rng *rand.Rand) (canbus.SourceAddress, bool) {
	origCluster, ok := m.SALUT[original]
	if !ok {
		return 0, false
	}
	// Collect candidates once per call; pools are tiny (≤ ~16 SAs).
	var candidates []canbus.SourceAddress
	for _, sa := range pool {
		if m.SALUT[sa] != origCluster {
			candidates = append(candidates, sa)
		}
	}
	if len(candidates) == 0 {
		return 0, false
	}
	return candidates[rng.Intn(len(candidates))], true
}

// ForeignRecords implements the foreign-device imitation test: the
// removed ECU's messages are relabelled with an SA of the imitated
// ECU (actual anomalies); all other traffic replays unmodified.
// The model must have been trained without the removed ECU.
func ForeignRecords(m *core.Model, test []LabeledSample, removedECU int, imitatedSA canbus.SourceAddress) []MarginRecord {
	out := make([]MarginRecord, 0, len(test))
	for _, s := range test {
		sample := s.Sample
		actual := false
		if s.ECU == removedECU {
			sample.SA = imitatedSA
			actual = true
		}
		out = append(out, RecordFor(m, sample, actual))
	}
	return out
}

// RunMetric executes the three test types of Section 4.2 for one
// vehicle and metric and returns the confusion matrices with their
// optimised margins (Tables 4.1–4.4).
func RunMetric(v *vehicle.Vehicle, metric core.Metric, scale Scale) (*MetricResults, error) {
	cfg := v.ExtractionConfig()
	train, err := CollectSamples(v, scale.TrainMessages, scale.Seed, nil, cfg)
	if err != nil {
		return nil, err
	}
	test, err := CollectSamples(v, scale.TestMessages, scale.Seed+1, nil, cfg)
	if err != nil {
		return nil, err
	}
	return RunMetricOnSamples(v, metric, train, test, scale.Seed)
}

// RunMetricOnSamples is RunMetric on pre-extracted samples, allowing
// the sampling-rate sweep to reuse one capture across configurations.
func RunMetricOnSamples(v *vehicle.Vehicle, metric core.Metric, train, test []LabeledSample, seed int64) (*MetricResults, error) {
	trainCfg := core.TrainConfig{Metric: metric, SAMap: v.SAMap()}
	model, err := core.Train(CoreSamples(train), trainCfg)
	if err != nil {
		return nil, err
	}

	res := &MetricResults{Vehicle: v.Name, Metric: metric}

	// False positive test.
	fpRecs := FalsePositiveRecords(model, test)
	res.FalsePositive.Margin, res.FalsePositive.Matrix = OptimizeMargin(fpRecs, MaxAccuracy)

	// Hijack imitation test.
	rng := rand.New(rand.NewSource(seed + 100))
	hjRecs := HijackRecords(model, test, rng)
	res.Hijack.Margin, res.Hijack.Matrix = OptimizeMargin(hjRecs, MaxFScore)

	// Foreign device imitation test: find the two most similar ECUs
	// under this metric, retrain without the first, relabel its
	// traffic as the second.
	a, b, dist, err := model.ClosestClusterPair()
	if err != nil {
		return nil, err
	}
	res.ForeignPair = [2]core.ClusterID{a, b}
	res.ForeignPairDist = dist
	res.NextPair, res.NextPairDist = secondClosestPair(model, a, b)

	removedECU, imitatedSA, err := foreignRoles(v, model, a, b)
	if err != nil {
		return nil, err
	}
	reduced := WithoutECU(train, removedECU)
	foreignModel, err := core.Train(CoreSamples(reduced), core.TrainConfig{Metric: metric, SAMap: v.SAMap()})
	if err != nil {
		return nil, err
	}
	fgRecs := ForeignRecords(foreignModel, test, removedECU, imitatedSA)
	res.Foreign.Margin, res.Foreign.Matrix = OptimizeMargin(fgRecs, MaxFScore)
	return res, nil
}

// foreignRoles maps the closest cluster pair back to vehicle ECUs:
// the lower-indexed ECU is removed ("the former") and imitates the
// other ("the latter"), as in Section 4.2.1.
func foreignRoles(v *vehicle.Vehicle, m *core.Model, a, b core.ClusterID) (removedECU int, imitatedSA canbus.SourceAddress, err error) {
	ca, err := m.Cluster(a)
	if err != nil {
		return 0, 0, err
	}
	cb, err := m.Cluster(b)
	if err != nil {
		return 0, 0, err
	}
	ecuA := v.ECUForSA(ca.SAs[0])
	ecuB := v.ECUForSA(cb.SAs[0])
	if ecuA < 0 || ecuB < 0 {
		return 0, 0, fmt.Errorf("experiments: cluster SAs not on vehicle %s", v.Name)
	}
	if ecuA < ecuB {
		return ecuA, cb.SAs[0], nil
	}
	return ecuB, ca.SAs[0], nil
}

// secondClosestPair returns the closest pair excluding {skipA, skipB}.
func secondClosestPair(m *core.Model, skipA, skipB core.ClusterID) ([2]core.ClusterID, float64) {
	best := -1.0
	var pair [2]core.ClusterID
	n := len(m.Clusters)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := core.ClusterID(i), core.ClusterID(j)
			if (a == skipA && b == skipB) || (a == skipB && b == skipA) {
				continue
			}
			dij, err := m.InterClusterDistance(a, b)
			if err != nil {
				continue
			}
			dji, err := m.InterClusterDistance(b, a)
			if err != nil {
				continue
			}
			d := dij
			if dji < d {
				d = dji
			}
			if best < 0 || d < best {
				best = d
				pair = [2]core.ClusterID{a, b}
			}
		}
	}
	return pair, best
}
