package linalg

import "math"

// CholFactor is a lower-triangular Cholesky factor L (with Σ = L·Lᵀ)
// stored packed in one flat row-major []float64: row j occupies
// Data[j(j+1)/2 : j(j+1)/2+j+1]. The packed layout halves the memory
// of the square factor and keeps the forward-substitution walk a
// single linear scan, which is what makes the Mahalanobis hot path
// cache friendly.
type CholFactor struct {
	N    int
	Data []float64 // len N(N+1)/2
}

// PackCholesky factors a symmetric positive-definite matrix via
// Matrix.Cholesky and packs the lower triangle. It returns ErrSingular
// when the matrix is not positive definite within tolerance.
func PackCholesky(m *Matrix) (*CholFactor, error) {
	l, err := m.Cholesky()
	if err != nil {
		return nil, err
	}
	n := l.Rows
	f := &CholFactor{N: n, Data: make([]float64, n*(n+1)/2)}
	k := 0
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			f.Data[k] = l.At(j, i)
			k++
		}
	}
	return f, nil
}

// cholStackDim bounds the solve buffer kept on the stack. Edge-set
// vectors are 2×(prefix+suffix) samples — 32 for the paper's reference
// configuration — so the heap fallback only triggers for unusually
// wide models.
const cholStackDim = 64

// MahalanobisSqChol returns the squared Mahalanobis distance of x from
// a distribution with the given mean and covariance factor: it solves
// L·y = (x − mean) by forward substitution and returns Σ y², which
// equals (x−mean)ᵀ·Σ⁻¹·(x−mean) without ever forming the inverse. As
// a sum of squares the result is non-negative by construction, so no
// clamping is needed.
func MahalanobisSqChol(x, mean Vector, f *CholFactor) float64 {
	n := f.N
	mustSameLen(len(x), n)
	mustSameLen(len(mean), n)
	var stack [cholStackDim]float64
	y := stack[:]
	if n > cholStackDim {
		y = make([]float64, n)
	}
	var q float64
	row := 0 // offset of packed row j = j(j+1)/2, maintained incrementally
	for j := 0; j < n; j++ {
		s := x[j] - mean[j]
		for k := 0; k < j; k++ {
			s -= f.Data[row+k] * y[k]
		}
		yj := s / f.Data[row+j]
		y[j] = yj
		q += yj * yj
		row += j + 1
	}
	return q
}

// MahalanobisChol is the Mahalanobis distance via the Cholesky factor.
func MahalanobisChol(x, mean Vector, f *CholFactor) float64 {
	return math.Sqrt(MahalanobisSqChol(x, mean, f))
}
