package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randomSPD builds a random symmetric positive-definite matrix
// A = BᵀB + εI.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := b.Transpose().Mul(b).AddScaledIdentity(0.5)
	return a
}

func maxAbsDiff(a, b *Matrix) float64 {
	var mx float64
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > mx {
			mx = d
		}
	}
	return mx
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity(3)[%d,%d] = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	m := &Matrix{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	got := m.MulVec(Vector{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestMulAssociatesWithIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomSPD(rng, 4)
	if d := maxAbsDiff(m.Mul(Identity(4)), m); d > 1e-12 {
		t.Fatalf("M·I != M (diff %g)", d)
	}
	if d := maxAbsDiff(Identity(4).Mul(m), m); d > 1e-12 {
		t.Fatalf("I·M != M (diff %g)", d)
	}
}

func TestTranspose(t *testing.T) {
	m := &Matrix{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	mt := m.Transpose()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("shape %dx%d", mt.Rows, mt.Cols)
	}
	if mt.At(0, 1) != 4 || mt.At(2, 0) != 3 {
		t.Fatalf("Transpose wrong: %v", mt)
	}
}

func TestCholeskyReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(12)
		a := randomSPD(rng, n)
		l, err := a.Cholesky()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := maxAbsDiff(l.Mul(l.Transpose()), a); d > 1e-8 {
			t.Fatalf("trial %d: LLᵀ differs from A by %g", trial, d)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := &Matrix{Rows: 2, Cols: 2, Data: []float64{1, 2, 2, 1}} // eigenvalues 3, −1
	if _, err := a.Cholesky(); !errors.Is(err, ErrSingular) {
		t.Fatalf("indefinite matrix: err = %v", err)
	}
}

func TestInverseSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(16)
		a := randomSPD(rng, n)
		inv, err := a.Inverse()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := maxAbsDiff(a.Mul(inv), Identity(n)); d > 1e-6 {
			t.Fatalf("trial %d: A·A⁻¹ differs from I by %g", trial, d)
		}
	}
}

func TestInverseNonSymmetric(t *testing.T) {
	a := &Matrix{Rows: 2, Cols: 2, Data: []float64{1, 2, 3, 4}}
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	want := &Matrix{Rows: 2, Cols: 2, Data: []float64{-2, 1, 1.5, -0.5}}
	if d := maxAbsDiff(inv, want); d > 1e-12 {
		t.Fatalf("inverse = %v", inv)
	}
}

func TestInverseSingular(t *testing.T) {
	a := &Matrix{Rows: 2, Cols: 2, Data: []float64{1, 2, 2, 4}}
	if _, err := a.Inverse(); !errors.Is(err, ErrSingular) {
		t.Fatalf("singular matrix: err = %v", err)
	}
	zero := NewMatrix(3, 3)
	if _, err := zero.Inverse(); !errors.Is(err, ErrSingular) {
		t.Fatalf("zero matrix: err = %v", err)
	}
}

func TestInverseRequiresPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := &Matrix{Rows: 2, Cols: 2, Data: []float64{0, 1, 1, 0}}
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(a.Mul(inv), Identity(2)); d > 1e-12 {
		t.Fatalf("permutation inverse wrong by %g", d)
	}
}

func TestShermanMorrisonMatchesDirectInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(8)
		a := randomSPD(rng, n)
		u := make(Vector, n)
		v := make(Vector, n)
		for i := 0; i < n; i++ {
			u[i] = rng.NormFloat64()
			v[i] = rng.NormFloat64()
		}
		inv, err := a.Inverse()
		if err != nil {
			t.Fatal(err)
		}
		if err := ShermanMorrisonUpdate(inv, u, v); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Direct: (A + u·vᵀ)⁻¹.
		upd := a.Clone()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				upd.Data[i*n+j] += u[i] * v[j]
			}
		}
		direct, err := upd.Inverse()
		if err != nil {
			t.Fatalf("trial %d: direct inverse: %v", trial, err)
		}
		if d := maxAbsDiff(inv, direct); d > 1e-6 {
			t.Fatalf("trial %d: Sherman-Morrison differs from direct by %g", trial, d)
		}
	}
}

func TestShermanMorrisonSingularUpdate(t *testing.T) {
	inv := Identity(1) // A = I (1×1)
	// u·vᵀ = −1 makes A + u·vᵀ = 0: denominator 1 + vᵀA⁻¹u = 0.
	err := ShermanMorrisonUpdate(inv, Vector{1}, Vector{-1})
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v", err)
	}
}
