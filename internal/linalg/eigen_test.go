package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestSymmetricEigenDiagonal(t *testing.T) {
	m := NewMatrix(3, 3)
	m.Set(0, 0, 2)
	m.Set(1, 1, 5)
	m.Set(2, 2, 1)
	vals, vecs, err := SymmetricEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 2, 1}
	for i, w := range want {
		if !almostEqual(vals[i], w, 1e-10) {
			t.Fatalf("vals = %v", vals)
		}
	}
	// Eigenvectors of a diagonal matrix are the (permuted) axes.
	for j := 0; j < 3; j++ {
		col := Vector{vecs.At(0, j), vecs.At(1, j), vecs.At(2, j)}
		if !almostEqual(col.Norm(), 1, 1e-10) {
			t.Fatalf("column %d not unit: %v", j, col)
		}
	}
}

func TestSymmetricEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m := &Matrix{Rows: 2, Cols: 2, Data: []float64{2, 1, 1, 2}}
	vals, vecs, err := SymmetricEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(vals[0], 3, 1e-10) || !almostEqual(vals[1], 1, 1e-10) {
		t.Fatalf("vals = %v", vals)
	}
	// First eigenvector ∝ (1,1)/√2.
	if !almostEqual(math.Abs(vecs.At(0, 0)), 1/math.Sqrt2, 1e-9) {
		t.Fatalf("vecs = %v", vecs)
	}
}

func TestSymmetricEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(16)
		m := randomSPD(rng, n)
		vals, vecs, err := SymmetricEigen(m)
		if err != nil {
			t.Fatal(err)
		}
		// V·Λ·Vᵀ must reconstruct m.
		lam := NewMatrix(n, n)
		for i, v := range vals {
			lam.Set(i, i, v)
		}
		recon := vecs.Mul(lam).Mul(vecs.Transpose())
		if d := maxAbsDiff(recon, m); d > 1e-8*math.Max(1, m.SymmetricMaxAbs()) {
			t.Fatalf("trial %d: reconstruction off by %g", trial, d)
		}
		// Orthonormality: VᵀV = I.
		if d := maxAbsDiff(vecs.Transpose().Mul(vecs), Identity(n)); d > 1e-9 {
			t.Fatalf("trial %d: V not orthonormal (%g)", trial, d)
		}
		// Eigenvalues sorted descending and positive for SPD.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				t.Fatalf("trial %d: eigenvalues unsorted %v", trial, vals)
			}
		}
		if vals[n-1] <= 0 {
			t.Fatalf("trial %d: SPD with non-positive eigenvalue %v", trial, vals[n-1])
		}
	}
}

func TestSymmetricEigenTraceInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randomSPD(rng, 10)
	vals, _, err := SymmetricEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	var trace, sum float64
	for i := 0; i < 10; i++ {
		trace += m.At(i, i)
	}
	for _, v := range vals {
		sum += v
	}
	if !almostEqual(trace, sum, 1e-8*math.Max(1, trace)) {
		t.Fatalf("trace %v != eigenvalue sum %v", trace, sum)
	}
}

func TestSymmetricEigenRejectsRectangular(t *testing.T) {
	if _, _, err := SymmetricEigen(NewMatrix(2, 3)); err == nil {
		t.Fatal("rectangular matrix accepted")
	}
}

func TestPrincipalComponentsFindDominantDirection(t *testing.T) {
	// Samples spread along (1,1)/√2 with tiny orthogonal noise.
	rng := rand.New(rand.NewSource(10))
	samples := make([]Vector, 300)
	for i := range samples {
		a := rng.NormFloat64() * 10
		b := rng.NormFloat64() * 0.1
		samples[i] = Vector{a + b, a - b}
	}
	vals, vecs, err := PrincipalComponents(samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vecs.Cols != 1 {
		t.Fatalf("shape %d/%d", len(vals), vecs.Cols)
	}
	dir := Vector{vecs.At(0, 0), vecs.At(1, 0)}
	if math.Abs(math.Abs(dir[0])-1/math.Sqrt2) > 0.02 || math.Abs(math.Abs(dir[1])-1/math.Sqrt2) > 0.02 {
		t.Fatalf("principal direction %v, want ±(1,1)/√2", dir)
	}
	if vals[0] < 50 {
		t.Fatalf("principal variance %v", vals[0])
	}
}
