package linalg

import "math"

// Covariance computes the sample covariance matrix of the samples
// (normalised by N, matching the incremental form of Equation 5.1).
// It panics if samples is empty or lengths differ.
func Covariance(samples []Vector) *Matrix {
	mean := Mean(samples)
	n := len(mean)
	cov := NewMatrix(n, n)
	d := make(Vector, n)
	for _, s := range samples {
		for i := range d {
			d[i] = s[i] - mean[i]
		}
		for i := 0; i < n; i++ {
			di := d[i]
			if di == 0 {
				continue
			}
			row := cov.Data[i*n:]
			for j := i; j < n; j++ {
				row[j] += di * d[j]
			}
		}
	}
	inv := 1 / float64(len(samples))
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := cov.At(i, j) * inv
			cov.Set(i, j, v)
			cov.Set(j, i, v)
		}
	}
	return cov
}

// RunningStats accumulates a mean and covariance online using the
// Welford/Youngs-Cramer update, the batch counterpart of the
// per-edge-set update in Equation 5.1 of the paper.
type RunningStats struct {
	n    int
	mean Vector
	m2   *Matrix // Σ (x−mean_k)(x−mean_{k})ᵀ accumulated co-moments
}

// NewRunningStats returns an accumulator for dim-dimensional samples.
func NewRunningStats(dim int) *RunningStats {
	return &RunningStats{mean: make(Vector, dim), m2: NewMatrix(dim, dim)}
}

// N returns the number of samples seen.
func (r *RunningStats) N() int { return r.n }

// Dim returns the sample dimensionality.
func (r *RunningStats) Dim() int { return len(r.mean) }

// Push folds one sample into the running statistics. This implements
// Equation 5.1: the co-moment accumulates (x−mean_{n−1})·(x−mean_n)ᵀ,
// using the pre-update mean on one side and the post-update mean on
// the other.
func (r *RunningStats) Push(x Vector) {
	mustSameLen(len(x), len(r.mean))
	r.n++
	dim := len(r.mean)
	dPre := make(Vector, dim) // x − mean_{n−1}
	for i := range dPre {
		dPre[i] = x[i] - r.mean[i]
	}
	inv := 1 / float64(r.n)
	for i := range r.mean {
		r.mean[i] += dPre[i] * inv
	}
	dPost := make(Vector, dim) // x − mean_n
	for i := range dPost {
		dPost[i] = x[i] - r.mean[i]
	}
	for i := 0; i < dim; i++ {
		row := r.m2.Data[i*dim:]
		for j := 0; j < dim; j++ {
			row[j] += dPre[i] * dPost[j]
		}
	}
}

// Mean returns a copy of the current mean vector.
func (r *RunningStats) Mean() Vector { return r.mean.Clone() }

// Covariance returns the covariance matrix normalised by N. It panics
// if no samples have been pushed.
func (r *RunningStats) Covariance() *Matrix {
	if r.n == 0 {
		panic("linalg: Covariance with no samples")
	}
	cov := r.m2.Clone()
	cov.ScaleInPlace(1 / float64(r.n))
	// The asymmetric pre/post products leave tiny asymmetries;
	// symmetrise so Cholesky sees an exactly symmetric matrix.
	dim := cov.Rows
	for i := 0; i < dim; i++ {
		for j := i + 1; j < dim; j++ {
			v := (cov.At(i, j) + cov.At(j, i)) / 2
			cov.Set(i, j, v)
			cov.Set(j, i, v)
		}
	}
	return cov
}

// Mahalanobis returns the Mahalanobis distance (Equation 2.2) between
// observation x and a distribution with the given mean and inverse
// covariance matrix. Numerical noise can make the quadratic form
// infinitesimally negative for points at the mean; it is clamped to 0.
func Mahalanobis(x, mean Vector, invCov *Matrix) float64 {
	d := x.Sub(mean)
	q := d.Dot(invCov.MulVec(d))
	if q < 0 {
		q = 0
	}
	return math.Sqrt(q)
}

// MahalanobisSq returns the squared Mahalanobis distance, clamped at 0.
func MahalanobisSq(x, mean Vector, invCov *Matrix) float64 {
	d := x.Sub(mean)
	q := d.Dot(invCov.MulVec(d))
	if q < 0 {
		q = 0
	}
	return q
}
