package linalg

import (
	"math"
	"sort"
)

// SymmetricEigen computes the full eigendecomposition of a symmetric
// matrix using the cyclic Jacobi method: m = V·diag(values)·Vᵀ with
// eigenvalues sorted descending and V's columns the corresponding
// eigenvectors. It returns ErrDimension for non-square input; the
// caller is responsible for symmetry (the strictly lower triangle is
// ignored).
//
// Jacobi is quadratic-per-sweep but unconditionally stable, which is
// the right trade for vProfile's ≤ 64-dimensional edge-set statistics
// (principal-component views of clusters, whitening transforms).
func SymmetricEigen(m *Matrix) (values Vector, vectors *Matrix, err error) {
	if m.Rows != m.Cols {
		return nil, nil, ErrDimension
	}
	n := m.Rows
	a := m.Clone()
	v := Identity(n)

	offDiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += a.At(i, j) * a.At(i, j)
			}
		}
		return s
	}
	scale := math.Max(m.SymmetricMaxAbs(), 1)
	tol := 1e-22 * scale * scale * float64(n*n)

	for sweep := 0; sweep < 100 && offDiag() > tol; sweep++ {
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) <= 1e-300 {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c

				// Apply the rotation to rows/columns p and q.
				for k := 0; k < n; k++ {
					akp, akq := a.At(k, p), a.At(k, q)
					a.Set(k, p, c*akp-s*akq)
					a.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := a.At(p, k), a.At(q, k)
					a.Set(p, k, c*apk-s*aqk)
					a.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	// Extract and sort descending.
	type pair struct {
		val float64
		col int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{a.At(i, i), i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].val > pairs[j].val })
	values = make(Vector, n)
	vectors = NewMatrix(n, n)
	for newCol, p := range pairs {
		values[newCol] = p.val
		for k := 0; k < n; k++ {
			vectors.Set(k, newCol, v.At(k, p.col))
		}
	}
	return values, vectors, nil
}

// PrincipalComponents returns the top-k eigenpairs of the covariance
// of the samples — the PCA view used by the profile-inspection tools.
func PrincipalComponents(samples []Vector, k int) (values Vector, vectors *Matrix, err error) {
	cov := Covariance(samples)
	vals, vecs, err := SymmetricEigen(cov)
	if err != nil {
		return nil, nil, err
	}
	if k <= 0 || k > len(vals) {
		k = len(vals)
	}
	out := NewMatrix(vecs.Rows, k)
	for i := 0; i < vecs.Rows; i++ {
		for j := 0; j < k; j++ {
			out.Set(i, j, vecs.At(i, j))
		}
	}
	return vals[:k], out, nil
}
