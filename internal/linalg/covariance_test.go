package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func gaussianSamples(rng *rand.Rand, n, dim int) []Vector {
	out := make([]Vector, n)
	for i := range out {
		v := make(Vector, dim)
		for j := range v {
			v[j] = rng.NormFloat64() * float64(j+1)
		}
		out[i] = v
	}
	return out
}

func TestCovarianceKnownValues(t *testing.T) {
	samples := []Vector{{1, 2}, {3, 6}, {5, 10}}
	// x: mean 3, var (4+0+4)/3 = 8/3. y = 2x, var 32/3, cov 16/3.
	cov := Covariance(samples)
	if !almostEqual(cov.At(0, 0), 8.0/3, 1e-12) {
		t.Errorf("var(x) = %v", cov.At(0, 0))
	}
	if !almostEqual(cov.At(1, 1), 32.0/3, 1e-12) {
		t.Errorf("var(y) = %v", cov.At(1, 1))
	}
	if !almostEqual(cov.At(0, 1), 16.0/3, 1e-12) || cov.At(0, 1) != cov.At(1, 0) {
		t.Errorf("cov(x,y) = %v / %v", cov.At(0, 1), cov.At(1, 0))
	}
}

func TestCovarianceSingleSampleIsZero(t *testing.T) {
	cov := Covariance([]Vector{{5, 7}})
	for _, v := range cov.Data {
		if v != 0 {
			t.Fatalf("single-sample covariance nonzero: %v", cov.Data)
		}
	}
}

func TestRunningStatsMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		dim := 1 + rng.Intn(8)
		n := 2 + rng.Intn(200)
		samples := gaussianSamples(rng, n, dim)
		rs := NewRunningStats(dim)
		for _, s := range samples {
			rs.Push(s)
		}
		if rs.N() != n {
			t.Fatalf("N = %d want %d", rs.N(), n)
		}
		wantMean := Mean(samples)
		gotMean := rs.Mean()
		for i := range wantMean {
			if !almostEqual(gotMean[i], wantMean[i], 1e-9*math.Max(1, math.Abs(wantMean[i]))) {
				t.Fatalf("mean[%d] = %v want %v", i, gotMean[i], wantMean[i])
			}
		}
		wantCov := Covariance(samples)
		gotCov := rs.Covariance()
		if d := maxAbsDiff(gotCov, wantCov); d > 1e-8*math.Max(1, wantCov.SymmetricMaxAbs()) {
			t.Fatalf("trial %d: covariance differs by %g", trial, d)
		}
	}
}

func TestRunningStatsCovarianceSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	rs := NewRunningStats(5)
	for i := 0; i < 50; i++ {
		v := make(Vector, 5)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		rs.Push(v)
	}
	cov := rs.Covariance()
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if cov.At(i, j) != cov.At(j, i) {
				t.Fatalf("asymmetry at (%d,%d)", i, j)
			}
		}
	}
}

func TestMahalanobisIdentityReducesToEuclidean(t *testing.T) {
	// With Σ = I, Equation 2.2 reduces to Equation 2.1 (stated in the
	// paper after the definition).
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		dim := 1 + rng.Intn(10)
		x := make(Vector, dim)
		mu := make(Vector, dim)
		for i := 0; i < dim; i++ {
			x[i] = rng.NormFloat64() * 10
			mu[i] = rng.NormFloat64() * 10
		}
		dm := Mahalanobis(x, mu, Identity(dim))
		de := Euclidean(x, mu)
		if !almostEqual(dm, de, 1e-9*math.Max(1, de)) {
			t.Fatalf("trial %d: Mahalanobis %v != Euclidean %v", trial, dm, de)
		}
	}
}

func TestMahalanobisAtMeanIsZero(t *testing.T) {
	mu := Vector{3, 4, 5}
	if got := Mahalanobis(mu.Clone(), mu, Identity(3)); got != 0 {
		t.Fatalf("distance at mean = %v", got)
	}
}

func TestMahalanobisWhitensVariance(t *testing.T) {
	// A point k standard deviations away along an axis has Mahalanobis
	// distance k regardless of that axis's variance.
	cov := &Matrix{Rows: 2, Cols: 2, Data: []float64{4, 0, 0, 0.25}}
	inv, err := cov.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	mu := Vector{0, 0}
	if d := Mahalanobis(Vector{2, 0}, mu, inv); !almostEqual(d, 1, 1e-12) {
		t.Fatalf("2σ axis-0 point: d = %v, want 1", d)
	}
	if d := Mahalanobis(Vector{0, 0.5}, mu, inv); !almostEqual(d, 1, 1e-12) {
		t.Fatalf("0.5σ axis-1 point: d = %v, want 1", d)
	}
}

func TestMahalanobisSq(t *testing.T) {
	mu := Vector{0, 0}
	d := Mahalanobis(Vector{3, 4}, mu, Identity(2))
	dsq := MahalanobisSq(Vector{3, 4}, mu, Identity(2))
	if !almostEqual(d*d, dsq, 1e-9) {
		t.Fatalf("d²=%v, sq=%v", d*d, dsq)
	}
}

func TestCovarianceOfConstantSamplesIsSingular(t *testing.T) {
	// Reproduces the paper's low-resolution failure: quantisation
	// collapses the variance, covariance goes singular.
	samples := make([]Vector, 40)
	for i := range samples {
		samples[i] = Vector{1, 2, 3}
	}
	cov := Covariance(samples)
	if _, err := cov.Inverse(); err == nil {
		t.Fatal("zero-variance covariance inverted without error")
	}
}
