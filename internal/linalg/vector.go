package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Errors reported by the package.
var (
	ErrSingular  = errors.New("linalg: matrix is singular or not positive definite")
	ErrDimension = errors.New("linalg: dimension mismatch")
)

// Vector is a dense column vector.
type Vector []float64

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Add returns v + o.
func (v Vector) Add(o Vector) Vector {
	mustSameLen(len(v), len(o))
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + o[i]
	}
	return out
}

// Sub returns v − o.
func (v Vector) Sub(o Vector) Vector {
	mustSameLen(len(v), len(o))
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - o[i]
	}
	return out
}

// Scale returns v scaled by s.
func (v Vector) Scale(s float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] * s
	}
	return out
}

// Dot returns the inner product of v and o.
func (v Vector) Dot(o Vector) float64 {
	mustSameLen(len(v), len(o))
	var s float64
	for i := range v {
		s += v[i] * o[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Mean returns the element-wise mean of the sample vectors. It panics
// if samples is empty or the lengths differ.
func Mean(samples []Vector) Vector {
	if len(samples) == 0 {
		panic("linalg: Mean of no samples")
	}
	n := len(samples[0])
	out := make(Vector, n)
	for _, s := range samples {
		mustSameLen(len(s), n)
		for i, x := range s {
			out[i] += x
		}
	}
	return out.Scale(1 / float64(len(samples)))
}

// Euclidean returns the Euclidean distance between x and y
// (Equation 2.1 of the paper).
func Euclidean(x, y Vector) float64 {
	mustSameLen(len(x), len(y))
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func mustSameLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("linalg: length mismatch %d != %d", a, b))
	}
}
