package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorOps(t *testing.T) {
	v := Vector{1, 2, 3}
	o := Vector{4, 5, 6}
	if got := v.Add(o); got[0] != 5 || got[1] != 7 || got[2] != 9 {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(o); got[0] != -3 || got[1] != -3 || got[2] != -3 {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got[0] != 2 || got[1] != 4 || got[2] != 6 {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(o); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := (Vector{3, 4}).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
}

func TestVectorCloneIndependent(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
}

func TestVectorDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestMean(t *testing.T) {
	m := Mean([]Vector{{1, 2}, {3, 4}, {5, 6}})
	if m[0] != 3 || m[1] != 4 {
		t.Fatalf("Mean = %v", m)
	}
}

func TestEuclidean(t *testing.T) {
	if got := Euclidean(Vector{0, 0}, Vector{3, 4}); got != 5 {
		t.Fatalf("Euclidean = %v", got)
	}
	if got := Euclidean(Vector{1, 1}, Vector{1, 1}); got != 0 {
		t.Fatalf("self distance = %v", got)
	}
}

func TestEuclideanProperties(t *testing.T) {
	clamp := func(v Vector) Vector {
		out := make(Vector, 4)
		for i := range out {
			if i < len(v) && !math.IsNaN(v[i]) && !math.IsInf(v[i], 0) {
				out[i] = math.Mod(v[i], 1e6)
			}
		}
		return out
	}
	// Symmetry and non-negativity.
	sym := func(a, b []float64) bool {
		x, y := clamp(a), clamp(b)
		d1, d2 := Euclidean(x, y), Euclidean(y, x)
		return d1 == d2 && d1 >= 0
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Error(err)
	}
	// Triangle inequality.
	tri := func(a, b, c []float64) bool {
		x, y, z := clamp(a), clamp(b), clamp(c)
		return Euclidean(x, z) <= Euclidean(x, y)+Euclidean(y, z)+1e-6
	}
	if err := quick.Check(tri, nil); err != nil {
		t.Error(err)
	}
}
