// Package linalg provides the dense linear algebra vProfile needs:
// vectors, symmetric matrices, sample covariance (batch and online
// Welford form), matrix inversion via Cholesky factorisation with a
// Gauss-Jordan fallback, a Sherman-Morrison rank-1 inverse update for
// the online model-update algorithm, and the Euclidean and Mahalanobis
// distance metrics of Section 2.2.2.
//
// Singular covariance matrices are reported with ErrSingular; the
// paper encounters them when quantisation below 12 bits collapses the
// per-sample variance (Section 4.3), and callers are expected to treat
// that as a configuration error rather than a crash.
package linalg
