package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// TestMahalanobisCholMatchesInverse pins the Cholesky scoring path
// against the inverse-covariance path across random SPD covariances:
// the two must agree to tight relative tolerance, in both the squared
// and plain distances, on points near and far from the mean.
func TestMahalanobisCholMatchesInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 5, 16, 32, 80} { // 80 exercises the heap-scratch fallback
		cov := randomSPD(rng, n)
		inv, err := cov.Inverse()
		if err != nil {
			t.Fatalf("n=%d: inverse: %v", n, err)
		}
		fac, err := PackCholesky(cov)
		if err != nil {
			t.Fatalf("n=%d: factor: %v", n, err)
		}
		mean := make(Vector, n)
		for i := range mean {
			mean[i] = 10 * rng.NormFloat64()
		}
		for trial := 0; trial < 25; trial++ {
			x := make(Vector, n)
			scale := math.Pow(10, float64(trial%5)-2) // 1e-2 .. 1e2 offsets
			for i := range x {
				x[i] = mean[i] + scale*rng.NormFloat64()
			}
			want := MahalanobisSq(x, mean, inv)
			got := MahalanobisSqChol(x, mean, fac)
			tol := 1e-8 * math.Max(1, want)
			if math.Abs(got-want) > tol {
				t.Fatalf("n=%d trial %d: squared distance %v via Cholesky, %v via inverse (diff %g)",
					n, trial, got, want, got-want)
			}
			if d := math.Abs(MahalanobisChol(x, mean, fac) - Mahalanobis(x, mean, inv)); d > 1e-8*math.Max(1, math.Sqrt(want)) {
				t.Fatalf("n=%d trial %d: distance diff %g", n, trial, d)
			}
		}
		// At the mean both paths must agree on (near) zero.
		if d := MahalanobisSqChol(mean, mean, fac); d != 0 {
			t.Fatalf("n=%d: distance at the mean = %v, want 0", n, d)
		}
	}
}

// TestPackCholeskyLayout pins the packed layout: row j of the lower
// factor starts at offset j(j+1)/2 and carries j+1 entries.
func TestPackCholeskyLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cov := randomSPD(rng, 6)
	l, err := cov.Cholesky()
	if err != nil {
		t.Fatal(err)
	}
	fac, err := PackCholesky(cov)
	if err != nil {
		t.Fatal(err)
	}
	if fac.N != 6 || len(fac.Data) != 21 {
		t.Fatalf("packed factor N=%d len=%d, want 6/21", fac.N, len(fac.Data))
	}
	for j := 0; j < 6; j++ {
		row := j * (j + 1) / 2
		for i := 0; i <= j; i++ {
			if fac.Data[row+i] != l.At(j, i) {
				t.Fatalf("packed[%d] = %v, want L(%d,%d) = %v", row+i, fac.Data[row+i], j, i, l.At(j, i))
			}
		}
	}
}

// TestPackCholeskySingular verifies the singular covariance surfaces
// ErrSingular instead of a garbage factor.
func TestPackCholeskySingular(t *testing.T) {
	sing := NewMatrix(3, 3) // all-zero: not positive definite
	if _, err := PackCholesky(sing); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}
