package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major square or rectangular matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec returns m·v.
func (m *Matrix) MulVec(v Vector) Vector {
	mustSameLen(m.Cols, len(v))
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out
}

// Mul returns m·o.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	mustSameLen(m.Cols, o.Rows)
	out := NewMatrix(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < o.Cols; j++ {
				out.Data[i*out.Cols+j] += a * o.At(k, j)
			}
		}
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// AddScaledIdentity returns m + s·I (m must be square). Used to
// regularise near-singular covariance matrices.
func (m *Matrix) AddScaledIdentity(s float64) *Matrix {
	mustSameLen(m.Rows, m.Cols)
	out := m.Clone()
	for i := 0; i < m.Rows; i++ {
		out.Data[i*m.Cols+i] += s
	}
	return out
}

// SymmetricMaxAbs returns the largest absolute element, used for
// scale-aware singularity tolerances.
func (m *Matrix) SymmetricMaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&b, "% .4g ", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Cholesky computes the lower-triangular factor L with m = L·Lᵀ for a
// symmetric positive-definite matrix. It returns ErrSingular if m is
// not positive definite (within a scale-aware tolerance).
func (m *Matrix) Cholesky() (*Matrix, error) {
	mustSameLen(m.Rows, m.Cols)
	n := m.Rows
	tol := 1e-12 * math.Max(m.SymmetricMaxAbs(), 1)
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		var d float64
		for k := 0; k < j; k++ {
			d += l.At(j, k) * l.At(j, k)
		}
		d = m.At(j, j) - d
		if d <= tol {
			return nil, ErrSingular
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			var s float64
			for k := 0; k < j; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, (m.At(i, j)-s)/ljj)
		}
	}
	return l, nil
}

// Inverse returns m⁻¹. For symmetric positive-definite matrices it
// uses the Cholesky factorisation; otherwise it falls back to
// Gauss-Jordan elimination with partial pivoting. ErrSingular is
// returned when no inverse exists within tolerance.
func (m *Matrix) Inverse() (*Matrix, error) {
	mustSameLen(m.Rows, m.Cols)
	if m.isSymmetric() {
		if l, err := m.Cholesky(); err == nil {
			return choleskyInverse(l), nil
		}
	}
	return m.gaussJordanInverse()
}

func (m *Matrix) isSymmetric() bool {
	scale := math.Max(m.SymmetricMaxAbs(), 1)
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > 1e-9*scale {
				return false
			}
		}
	}
	return true
}

// choleskyInverse computes (L·Lᵀ)⁻¹ from the lower factor L by
// inverting L and forming L⁻ᵀ·L⁻¹.
func choleskyInverse(l *Matrix) *Matrix {
	n := l.Rows
	// Invert the lower-triangular L by forward substitution.
	inv := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		inv.Set(j, j, 1/l.At(j, j))
		for i := j + 1; i < n; i++ {
			var s float64
			for k := j; k < i; k++ {
				s += l.At(i, k) * inv.At(k, j)
			}
			inv.Set(i, j, -s/l.At(i, i))
		}
	}
	// m⁻¹ = L⁻ᵀ · L⁻¹; exploit that inv is lower triangular.
	out := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var s float64
			for k := j; k < n; k++ {
				s += inv.At(k, i) * inv.At(k, j)
			}
			out.Set(i, j, s)
			out.Set(j, i, s)
		}
	}
	return out
}

func (m *Matrix) gaussJordanInverse() (*Matrix, error) {
	n := m.Rows
	a := m.Clone()
	inv := Identity(n)
	tol := 1e-12 * math.Max(m.SymmetricMaxAbs(), 1)
	for col := 0; col < n; col++ {
		// Partial pivoting.
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best <= tol {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		p := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/p)
			inv.Set(col, j, inv.At(col, j)/p)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
				inv.Set(r, j, inv.At(r, j)-f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

func swapRows(m *Matrix, i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// ShermanMorrisonUpdate applies the rank-1 inverse update
//
//	(A + u·vᵀ)⁻¹ = A⁻¹ − (A⁻¹·u·vᵀ·A⁻¹) / (1 + vᵀ·A⁻¹·u)
//
// in place to inv = A⁻¹. It returns ErrSingular when the update would
// make the matrix singular (denominator near zero). This is what lets
// the online model update (Algorithm 4) maintain the inverse
// covariance without a full re-inversion.
func ShermanMorrisonUpdate(inv *Matrix, u, v Vector) error {
	mustSameLen(inv.Rows, inv.Cols)
	mustSameLen(inv.Rows, len(u))
	mustSameLen(inv.Rows, len(v))
	au := inv.MulVec(u)             // A⁻¹·u
	va := inv.Transpose().MulVec(v) // (vᵀ·A⁻¹)ᵀ
	den := 1 + v.Dot(au)
	if math.Abs(den) < 1e-12 {
		return ErrSingular
	}
	n := inv.Rows
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			inv.Data[i*n+j] -= au[i] * va[j] / den
		}
	}
	return nil
}

// ScaleInPlace multiplies every element by s.
func (m *Matrix) ScaleInPlace(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}
