package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Group composes several registries into one exposition, tagging
// every sample of each member with a shared label — this is how fleet
// mode serves N buses' metrics from one /metrics endpoint
// (bus="a", bus="b", ...) without the registries coordinating on
// metric names. Each member keeps its own lock-free instruments; the
// group only exists at scrape time.
//
// Members render in Add order, and each metric's HELP/TYPE metadata
// is emitted once (on its first appearance) so a strict Prometheus
// parser accepts the combined output.
type Group struct {
	label string

	mu      sync.RWMutex
	values  []string
	members map[string]*Registry
}

// NewGroup returns an empty group whose members are distinguished by
// the given label name.
func NewGroup(label string) *Group {
	if !validName(label) {
		panic("obs: invalid group label name " + label)
	}
	return &Group{label: label, members: make(map[string]*Registry)}
}

// Add registers a member registry under a label value, creating a
// fresh registry if reg is nil, and returns it. Adding an existing
// value returns the already-registered member (reg is then ignored),
// so sessions joining a fleet cannot clobber each other.
func (g *Group) Add(value string, reg *Registry) *Registry {
	g.mu.Lock()
	defer g.mu.Unlock()
	if existing, ok := g.members[value]; ok {
		return existing
	}
	if reg == nil {
		reg = NewRegistry()
	}
	g.values = append(g.values, value)
	g.members[value] = reg
	return reg
}

// snapshotMembers returns the member (value, registry) pairs in Add
// order.
func (g *Group) snapshotMembers() ([]string, []*Registry) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	values := make([]string, len(g.values))
	copy(values, g.values)
	regs := make([]*Registry, len(values))
	for i, v := range values {
		regs[i] = g.members[v]
	}
	return values, regs
}

// WritePrometheus renders every member with its label attached,
// emitting each metric's metadata exactly once across the group.
func (g *Group) WritePrometheus(w io.Writer) error {
	values, regs := g.snapshotMembers()
	seen := make(map[string]bool)
	for i, reg := range regs {
		extra := g.label + "=" + escapeLabel(values[i])
		for _, e := range reg.snapshotEntries() {
			if err := writeEntry(w, e, extra, !seen[e.name]); err != nil {
				return err
			}
			seen[e.name] = true
		}
	}
	return nil
}

// Snapshot returns the members' snapshots keyed by label value.
func (g *Group) Snapshot() map[string]any {
	values, regs := g.snapshotMembers()
	out := make(map[string]any, len(values))
	for i, reg := range regs {
		out[values[i]] = reg.Snapshot()
	}
	return out
}

// WriteJSON writes the Snapshot as indented JSON — one object per
// member, keyed by label value.
func (g *Group) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g.Snapshot())
}
