package obs

import (
	"io"
	"runtime"
)

// RuntimeStats is the harness's self-telemetry: gauges describing the
// Go runtime the replay is running on — goroutine count, heap size
// and GC activity — registered under a runtime_ prefix so a /metrics
// scrape shows harness health next to the domain counters. The
// instruments are ordinary registry gauges; Collect refreshes them
// from the runtime, and CollectedExporter arranges for that to happen
// on every scrape rather than on the hot path.
type RuntimeStats struct {
	Goroutines  *Gauge
	HeapAlloc   *Gauge
	HeapObjects *Gauge
	GCPauses    *Gauge
	GCPauseNs   *Gauge
}

// NewRuntimeStats registers the runtime gauges on reg.
func NewRuntimeStats(reg *Registry) *RuntimeStats {
	return &RuntimeStats{
		Goroutines: reg.Gauge("runtime_goroutines",
			"Live goroutines at the last scrape."),
		HeapAlloc: reg.Gauge("runtime_heap_alloc_bytes",
			"Bytes of allocated heap objects at the last scrape."),
		HeapObjects: reg.Gauge("runtime_heap_objects",
			"Live heap objects at the last scrape."),
		GCPauses: reg.Gauge("runtime_gc_pauses_total",
			"Completed GC cycles since process start."),
		GCPauseNs: reg.Gauge("runtime_gc_pause_ns_total",
			"Cumulative stop-the-world GC pause nanoseconds since process start."),
	}
}

// Collect refreshes the gauges from the runtime. ReadMemStats is a
// stop-the-world read, so call this at scrape frequency (the
// CollectedExporter wrapper does), never per frame.
func (r *RuntimeStats) Collect() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Goroutines.Set(int64(runtime.NumGoroutine()))
	r.HeapAlloc.Set(int64(ms.HeapAlloc))
	r.HeapObjects.Set(int64(ms.HeapObjects))
	r.GCPauses.Set(int64(ms.NumGC))
	r.GCPauseNs.Set(int64(ms.PauseTotalNs))
}

// CollectedExporter wraps an Exporter so that collect runs before
// every rendering — how scrape-time telemetry (RuntimeStats.Collect)
// stays current without a background poller or hot-path cost.
func CollectedExporter(exp Exporter, collect func()) Exporter {
	return collectedExporter{exp: exp, collect: collect}
}

type collectedExporter struct {
	exp     Exporter
	collect func()
}

func (c collectedExporter) WritePrometheus(w io.Writer) error {
	c.collect()
	return c.exp.WritePrometheus(w)
}

func (c collectedExporter) WriteJSON(w io.Writer) error {
	c.collect()
	return c.exp.WriteJSON(w)
}
