package tracing

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// flightSummary is the /debug/flight index document.
type flightSummary struct {
	Window  int       `json:"window"`
	Depth   int       `json:"depth"`
	Frames  int64     `json:"frames"`
	Alarms  int64     `json:"alarms"`
	Pending int       `json:"pending_windows"`
	Bundles []*Bundle `json:"bundles"` // metadata only; fetch ?bundle=<seq> for decisions
}

// ServeHTTP makes the recorder mountable on the obs HTTP server (via
// obs.Route) as /debug/flight:
//
//	GET /debug/flight            recorder state + finished bundles (metadata)
//	GET /debug/flight?bundle=N   one bundle with its full decision records
//
// Live retrieval works whether or not a bundle directory is
// configured — the in-memory copies are served either way.
func (r *Recorder) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")

	if q := req.URL.Query().Get("bundle"); q != "" {
		seq, err := strconv.Atoi(q)
		if err != nil {
			http.Error(w, "bad bundle sequence number", http.StatusBadRequest)
			return
		}
		b, ok := r.Bundle(seq)
		if !ok {
			http.Error(w, "no such bundle (evicted or never finished)", http.StatusNotFound)
			return
		}
		_ = enc.Encode(b)
		return
	}

	r.mu.Lock()
	sum := flightSummary{
		Window:  r.cfg.Window,
		Depth:   len(r.ring),
		Frames:  r.stats.Frames,
		Alarms:  r.stats.Alarms,
		Pending: len(r.pending),
		Bundles: make([]*Bundle, 0, len(r.bundles)),
	}
	for _, b := range r.bundles {
		meta := *b
		meta.Decisions = nil
		sum.Bundles = append(sum.Bundles, &meta)
	}
	r.mu.Unlock()
	_ = enc.Encode(sum)
}
