package tracing

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"vprofile/internal/analog"
	"vprofile/internal/trace"
)

// Bundle is one frozen alarm: the alarm frame's decision record plus
// up to Window frames of context on each side. On disk a bundle is a
// directory of three files:
//
//	bundle.json      this struct, without the decisions
//	decisions.jsonl  one Decision per line, in record order
//	waveform.vptr    the frames' raw voltage traces as a standard
//	                 capture file — openable by trace.OpenReader,
//	                 plottable by vplot -bundle, even replayable
//	                 straight back through busmon
type Bundle struct {
	Seq        int     `json:"seq"`
	Trace      TraceID `json:"trace"`
	AlarmIndex int     `json:"alarm_index"`
	TimeSec    float64 `json:"t"`
	SA         uint8   `json:"sa"`
	FrameID    uint32  `json:"frame_id"`
	// Alarms and Severity mirror the alarm decision's tags.
	Alarms   []string `json:"alarms"`
	Severity string   `json:"severity"`
	// Window is the configured context size; Truncated marks a bundle
	// whose post-alarm context was cut short by the end of the run.
	Window    int  `json:"window"`
	Truncated bool `json:"truncated,omitempty"`
	// Incident is the id of the incident that was open for this
	// bundle's (bus, SA) when the bundle finished ("" when no incident
	// layer is running or no incident covered the alarm) — the join key
	// between a forensic bundle and the fleet incident stream.
	Incident string `json:"incident,omitempty"`
	// Path is the on-disk directory ("" for an in-memory bundle).
	Path string `json:"path,omitempty"`

	Decisions []*Decision `json:"decisions,omitempty"`
}

// DirName is the bundle's on-disk directory name (the base name of
// Path when written) — the stable reference incident evidence and
// event logs carry.
func (b *Bundle) DirName() string {
	return fmt.Sprintf("bundle-%04d-%s", b.Seq, b.Trace)
}

// Alarm returns the bundle's alarm decision (nil if the bundle is
// somehow empty).
func (b *Bundle) Alarm() *Decision {
	for _, d := range b.Decisions {
		if d.Index == b.AlarmIndex {
			return d
		}
	}
	return nil
}

const (
	bundleMetaFile      = "bundle.json"
	bundleDecisionsFile = "decisions.jsonl"
	bundleWaveformFile  = "waveform.vptr"
)

// writeBundle persists a bundle under dir and returns the bundle's
// own directory path.
func writeBundle(dir string, b *Bundle, h trace.Header) (string, error) {
	path := filepath.Join(dir, b.DirName())
	if err := os.MkdirAll(path, 0o755); err != nil {
		return "", err
	}
	meta := *b
	meta.Decisions = nil
	meta.Path = path
	if err := writeJSONFile(filepath.Join(path, bundleMetaFile), &meta); err != nil {
		return "", err
	}
	if err := writeDecisions(filepath.Join(path, bundleDecisionsFile), b.Decisions); err != nil {
		return "", err
	}
	if err := writeWaveforms(filepath.Join(path, bundleWaveformFile), h, b.Decisions); err != nil {
		return "", err
	}
	return path, nil
}

func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func writeDecisions(path string, ds []*Decision) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	enc := json.NewEncoder(bw)
	for _, d := range ds {
		if err := enc.Encode(d); err != nil {
			_ = f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// writeWaveforms emits the frames' raw traces as a capture file, one
// record per decision in bundle order, carrying the original
// ground-truth sender, timestamp, frame id and payload.
func writeWaveforms(path string, h trace.Header, ds []*Decision) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w, err := trace.NewWriter(f, h)
	if err != nil {
		_ = f.Close()
		return err
	}
	for _, d := range ds {
		rec := &trace.Record{
			ECUIndex: d.ECUIndex,
			TimeSec:  d.TimeSec,
			FrameID:  d.FrameID,
			Data:     d.Data,
			Trace:    analog.Trace(d.Samples),
		}
		if err := w.Write(rec); err != nil {
			_ = f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// ReadBundle loads a bundle directory written by the recorder: the
// metadata, every decision record, and — when the waveform sidecar is
// present — each decision's raw samples reattached in record order.
func ReadBundle(dir string) (*Bundle, error) {
	mf, err := os.Open(filepath.Join(dir, bundleMetaFile))
	if err != nil {
		return nil, err
	}
	var b Bundle
	err = json.NewDecoder(mf).Decode(&b)
	_ = mf.Close()
	if err != nil {
		return nil, fmt.Errorf("tracing: %s: %w", bundleMetaFile, err)
	}

	df, err := os.Open(filepath.Join(dir, bundleDecisionsFile))
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bufio.NewReader(df))
	for {
		var d Decision
		if err := dec.Decode(&d); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			_ = df.Close()
			return nil, fmt.Errorf("tracing: %s: %w", bundleDecisionsFile, err)
		}
		b.Decisions = append(b.Decisions, &d)
	}
	_ = df.Close()

	wf, err := os.Open(filepath.Join(dir, bundleWaveformFile))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return &b, nil
		}
		return nil, err
	}
	defer wf.Close()
	rd, err := trace.OpenReader(wf)
	if err != nil {
		return nil, fmt.Errorf("tracing: %s: %w", bundleWaveformFile, err)
	}
	for i := 0; ; i++ {
		rec, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("tracing: %s: %w", bundleWaveformFile, err)
		}
		if i < len(b.Decisions) {
			b.Decisions[i].Samples = rec.Trace
		}
	}
	return &b, nil
}
