package tracing

import (
	"fmt"
	"sync"

	"vprofile/internal/obs"
	"vprofile/internal/trace"
)

// RecorderConfig parameterises a flight recorder.
type RecorderConfig struct {
	// Window is the number of frames of context captured on each side
	// of an alarm: a bundle holds up to Window pre-alarm frames, the
	// alarm frame, and Window post-alarm frames (default 8).
	Window int
	// Depth is the ring capacity — how many recent frames stay
	// replayable at any moment. It is clamped up to hold a full
	// pre-window (default 4×Window).
	Depth int
	// Dir, when non-empty, is where forensic bundles are written (one
	// directory per bundle). Empty keeps bundles in memory only, still
	// retrievable over /debug/flight.
	Dir string
	// Keep bounds the finished bundles retained in memory for
	// /debug/flight (default 16; oldest evicted first).
	Keep int
	// Header describes the capture being replayed; it becomes the
	// header of each bundle's waveform sidecar so the sidecar is
	// itself a valid capture file.
	Header trace.Header
	// Events, when non-nil, receives one severity-tagged EventFlight
	// record per finished bundle.
	Events *obs.EventLog
	// Tag, when non-nil, is called on each bundle just before it is
	// written — after the post-context closed, so the bundle is final
	// except for Path/Truncated. The incident layer uses it to stamp
	// Bundle.Incident (and register the bundle with the incident's
	// evidence); any field it sets lands in bundle.json. Called with
	// the recorder lock held: keep it cheap, never call back into the
	// recorder.
	Tag func(*Bundle)
}

// Stats counts what the recorder has seen.
type Stats struct {
	Frames  int64 // decisions recorded
	Alarms  int64 // decisions that opened a capture window
	Bundles int64 // bundles finished (written when Dir is set)
}

// Recorder is the flight recorder: a lock-light ring buffer of the
// last Depth frames' decision records, plus the capture-window logic
// that freezes pre/post context around every alarm into a Bundle.
//
// Record is called once per frame from the pipeline's reordering
// goroutine; the mutex exists only so /debug/flight scrapes (and
// tests) can read a consistent view mid-replay, so the hot path is
// one uncontended lock, a ring store and an integer of bookkeeping
// per frame.
type Recorder struct {
	cfg RecorderConfig

	mu      sync.Mutex
	ring    []*Decision // circular, nil until warm
	head    int         // next slot to write
	count   int         // filled slots (≤ len(ring))
	pending []*window   // open capture windows awaiting post-context
	bundles []*Bundle   // finished, oldest first, ≤ cfg.Keep
	stats   Stats
	seq     int
	err     error // first bundle-write error, surfaced by Close
}

// window is one in-flight capture: a bundle that has its pre-context
// and alarm frame and is waiting for post-alarm frames.
type window struct {
	b    *Bundle
	want int // post-alarm frames still to collect
}

// NewRecorder validates the configuration and builds a recorder.
func NewRecorder(cfg RecorderConfig) (*Recorder, error) {
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 4 * cfg.Window
	}
	if cfg.Depth < cfg.Window+1 {
		cfg.Depth = cfg.Window + 1
	}
	if cfg.Keep <= 0 {
		cfg.Keep = 16
	}
	return &Recorder{cfg: cfg, ring: make([]*Decision, cfg.Depth)}, nil
}

// Window returns the configured pre/post context size.
func (r *Recorder) Window() int { return r.cfg.Window }

// Record ingests one frame's decision. The decision and every slice
// it references must not be mutated afterwards. Alarm decisions open
// a capture window; the window closes (and its bundle is written)
// once Window further frames arrive, or at Close.
func (r *Recorder) Record(d *Decision) {
	d.seal()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Frames++

	// Feed open windows first: this frame is post-context for every
	// alarm before it, including alarms earlier in the same window.
	remaining := r.pending[:0]
	for _, w := range r.pending {
		w.b.Decisions = append(w.b.Decisions, d)
		w.want--
		if w.want <= 0 {
			r.finishLocked(w.b, false)
		} else {
			remaining = append(remaining, w)
		}
	}
	r.pending = remaining

	r.ring[r.head] = d
	r.head = (r.head + 1) % len(r.ring)
	if r.count < len(r.ring) {
		r.count++
	}

	if d.Anomaly {
		r.stats.Alarms++
		r.pending = append(r.pending, &window{b: r.openLocked(d), want: r.cfg.Window})
	}
}

// openLocked snapshots the pre-window plus the alarm frame into a new
// bundle. The ring holds pointers to immutable decisions, so the
// snapshot copies the pointer slice, never the records.
func (r *Recorder) openLocked(alarm *Decision) *Bundle {
	pre := r.cfg.Window
	if pre > r.count-1 {
		pre = r.count - 1 // ring includes the alarm frame itself
	}
	ds := make([]*Decision, 0, pre+1+r.cfg.Window)
	for i := pre; i >= 0; i-- {
		ds = append(ds, r.ring[((r.head-1-i)%len(r.ring)+len(r.ring))%len(r.ring)])
	}
	r.seq++
	return &Bundle{
		Seq:        r.seq,
		Trace:      alarm.Trace,
		AlarmIndex: alarm.Index,
		TimeSec:    alarm.TimeSec,
		SA:         alarm.SA,
		FrameID:    alarm.FrameID,
		Alarms:     alarm.Alarms,
		Severity:   alarm.Severity,
		Window:     r.cfg.Window,
		Decisions:  ds,
	}
}

// finishLocked completes a bundle: writes it to disk when a directory
// is configured, emits its flight event, and retains it in memory.
func (r *Recorder) finishLocked(b *Bundle, truncated bool) {
	b.Truncated = truncated
	if r.cfg.Tag != nil {
		r.cfg.Tag(b)
	}
	if r.cfg.Dir != "" {
		path, err := writeBundle(r.cfg.Dir, b, r.cfg.Header)
		if err != nil {
			if r.err == nil {
				r.err = err
			}
		} else {
			b.Path = path
		}
	}
	r.stats.Bundles++
	r.bundles = append(r.bundles, b)
	if len(r.bundles) > r.cfg.Keep {
		r.bundles = r.bundles[len(r.bundles)-r.cfg.Keep:]
	}
	if ev := r.cfg.Events; ev != nil {
		detail := b.Path
		if detail == "" {
			detail = fmt.Sprintf("in-memory bundle %d", b.Seq)
		}
		// Best-effort: a poisoned or already-closed event log must not
		// take the forensic bundle down with it.
		_ = ev.Emit(obs.Event{
			TimeSec: b.TimeSec, Kind: obs.EventFlight,
			Severity: b.Severity, Trace: b.Trace.String(),
			SA: obs.U8(b.SA), FrameID: obs.U32(b.FrameID),
			Incident: b.Incident,
			Detail:   detail,
		})
	}
}

// Close flushes capture windows still waiting on post-context (their
// bundles are marked Truncated) and returns the first bundle-write
// error encountered over the recorder's lifetime.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, w := range r.pending {
		r.finishLocked(w.b, true)
	}
	r.pending = nil
	return r.err
}

// Err returns the first bundle-write error so far without closing.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Stats returns a snapshot of the recorder's counters.
func (r *Recorder) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Bundles returns the retained bundles, oldest first. The slice is
// fresh; the bundles (and their decisions) are shared and immutable.
func (r *Recorder) Bundles() []*Bundle {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Bundle, len(r.bundles))
	copy(out, r.bundles)
	return out
}

// Bundle returns the retained bundle with the given sequence number.
func (r *Recorder) Bundle(seq int) (*Bundle, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, b := range r.bundles {
		if b.Seq == seq {
			return b, true
		}
	}
	return nil, false
}
