package tracing

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"vprofile/internal/obs"
	"vprofile/internal/trace"
)

// testHeader is a minimal capture header for bundle sidecars.
func testHeader() trace.Header {
	h := trace.Header{Vehicle: "test", BitRate: 250e3}
	h.ADC.SampleRate = 10e6
	h.ADC.Bits = 12
	h.ADC.MinVolts = -1
	h.ADC.MaxVolts = 4
	return h
}

// dec builds a decision record for frame idx; alarm marks it as a
// voltage anomaly. Distances and samples are index-derived so any
// cross-frame mixup is visible.
func dec(idx int, alarm bool) *Decision {
	d := &Decision{
		Trace:    TraceID(idx + 1),
		Index:    idx,
		TimeSec:  float64(idx) * 0.01,
		FrameID:  0x18FEF121,
		SA:       0x21,
		Data:     HexBytes{1, 2, 3, 4, 5, 6, 7, 8},
		ECUIndex: 2,
		Expected: 1, Predicted: 1,
		MinDist:   float64(idx) + 0.125,
		Threshold: 50.5,
		Margin:    3.25,
		Distances: []ClusterDistance{{ID: 1, Dist: float64(idx) + 0.125}, {ID: 2, Dist: 99}},
		EdgeSet:   []float64{float64(idx), float64(idx) + 0.5},
		Samples:   []float64{float64(idx), float64(idx + 1), 42},
	}
	if alarm {
		d.Alarms = []string{AlarmVoltage}
		d.Predicted = 2
	}
	return d
}

// bundleIndices flattens a bundle's decision indices.
func bundleIndices(b *Bundle) []int {
	out := make([]int, len(b.Decisions))
	for i, d := range b.Decisions {
		out[i] = d.Index
	}
	return out
}

func rangeInts(lo, hi int) []int {
	out := make([]int, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out
}

// TestRecorderBundleRoundTrip drives one alarm through a recorder
// with a bundle directory and checks the persisted bundle reproduces
// the decision exactly — including the Mahalanobis distances, which
// must survive the JSON round trip bit for bit.
func TestRecorderBundleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRecorder(RecorderConfig{Window: 3, Dir: dir, Header: testHeader()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		r.Record(dec(i, i == 10))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Frames != 20 || st.Alarms != 1 || st.Bundles != 1 {
		t.Fatalf("stats = %+v, want 20 frames / 1 alarm / 1 bundle", st)
	}
	bs := r.Bundles()
	if len(bs) != 1 {
		t.Fatalf("retained %d bundles, want 1", len(bs))
	}
	b := bs[0]
	if b.Truncated {
		t.Fatal("complete window marked truncated")
	}
	if got, want := bundleIndices(b), rangeInts(7, 13); !reflect.DeepEqual(got, want) {
		t.Fatalf("bundle covers %v, want %v", got, want)
	}
	if b.AlarmIndex != 10 || b.Severity != obs.SeverityCritical {
		t.Fatalf("bundle alarm meta %d/%q", b.AlarmIndex, b.Severity)
	}
	if b.Path == "" {
		t.Fatal("bundle has no on-disk path")
	}

	got, err := ReadBundle(b.Path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bundleIndices(got), bundleIndices(b)) {
		t.Fatalf("reloaded bundle covers %v, want %v", bundleIndices(got), bundleIndices(b))
	}
	alarm := got.Alarm()
	if alarm == nil {
		t.Fatal("reloaded bundle has no alarm decision")
	}
	want := b.Alarm()
	// The decision record must reproduce the alarm's distances exactly:
	// encoding/json emits the shortest float representation that parses
	// back to the identical float64, so == is the right comparison.
	if alarm.MinDist != want.MinDist || alarm.Threshold != want.Threshold || alarm.Margin != want.Margin {
		t.Fatalf("reloaded alarm dist/threshold/margin %v/%v/%v, want %v/%v/%v",
			alarm.MinDist, alarm.Threshold, alarm.Margin, want.MinDist, want.Threshold, want.Margin)
	}
	if !reflect.DeepEqual(alarm.Distances, want.Distances) {
		t.Fatalf("reloaded distances %v, want %v", alarm.Distances, want.Distances)
	}
	if !reflect.DeepEqual(alarm.EdgeSet, want.EdgeSet) {
		t.Fatalf("reloaded edge set %v, want %v", alarm.EdgeSet, want.EdgeSet)
	}
	// The waveform sidecar must reattach every frame's raw samples.
	for i, d := range got.Decisions {
		if !reflect.DeepEqual(d.Samples, b.Decisions[i].Samples) {
			t.Fatalf("decision %d samples %v, want %v", d.Index, d.Samples, b.Decisions[i].Samples)
		}
	}
	// The sidecar is a standard capture file in its own right.
	f, err := os.Open(filepath.Join(b.Path, bundleWaveformFile))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd, err := trace.OpenReader(f)
	if err != nil {
		t.Fatalf("waveform sidecar is not a readable capture: %v", err)
	}
	if rd.Header().Vehicle != "test" {
		t.Fatalf("sidecar header vehicle %q", rd.Header().Vehicle)
	}
}

// TestRecorderConcurrentAlarms is the overlapping-window guarantee:
// two alarms inside one window produce two complete, well-formed
// bundles, and the bundles share decision records without sharing
// slice storage. Concurrent /debug/flight scrapes run throughout so
// the race detector sees reader/writer interleavings.
func TestRecorderConcurrentAlarms(t *testing.T) {
	r, err := NewRecorder(RecorderConfig{Window: 4})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec := httptest.NewRecorder()
			r.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight", nil))
			r.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight?bundle=1", nil))
		}
	}()

	// Alarms at 10 and 12: frame 12 lands inside frame 10's post-alarm
	// window, so the windows overlap and frames 12..14 belong to both.
	for i := 0; i < 20; i++ {
		r.Record(dec(i, i == 10 || i == 12))
	}
	close(stop)
	wg.Wait()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	bs := r.Bundles()
	if len(bs) != 2 {
		t.Fatalf("got %d bundles, want 2", len(bs))
	}
	wantRanges := [][]int{rangeInts(6, 14), rangeInts(8, 16)}
	for i, b := range bs {
		if b.Truncated {
			t.Fatalf("bundle %d truncated", b.Seq)
		}
		if got := bundleIndices(b); !reflect.DeepEqual(got, wantRanges[i]) {
			t.Fatalf("bundle %d covers %v, want %v", b.Seq, got, wantRanges[i])
		}
		if b.Alarm() == nil {
			t.Fatalf("bundle %d lost its alarm decision", b.Seq)
		}
	}
	// The overlap must be pointer-shared records (immutability contract,
	// not copies)...
	if bs[0].Decisions[len(bs[0].Decisions)-1] != bs[1].Decisions[6] {
		t.Fatal("overlapping context is not sharing decision records")
	}
	// ...but the Decisions slices themselves must not alias: clobbering
	// one bundle's slice may not disturb the other.
	for i := range bs[0].Decisions {
		bs[0].Decisions[i] = nil
	}
	if got := bundleIndices(bs[1]); !reflect.DeepEqual(got, wantRanges[1]) {
		t.Fatalf("bundle 2 changed when bundle 1's slice was clobbered: %v", got)
	}
}

// TestRecorderTruncatedWindow closes the recorder while a capture
// window still awaits post-context: the bundle must be flushed,
// marked truncated, and announced in the event log with its severity
// and trace id.
func TestRecorderTruncatedWindow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	events, err := obs.CreateEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRecorder(RecorderConfig{Window: 5, Events: events})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		r.Record(dec(i, i == 10)) // only 1 post-alarm frame arrives
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := events.Close(nil); err != nil {
		t.Fatal(err)
	}

	bs := r.Bundles()
	if len(bs) != 1 || !bs[0].Truncated {
		t.Fatalf("bundles = %+v, want one truncated bundle", bs)
	}
	if got, want := bundleIndices(bs[0]), rangeInts(5, 11); !reflect.DeepEqual(got, want) {
		t.Fatalf("truncated bundle covers %v, want %v", got, want)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var flight *obs.Event
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var e obs.Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		if e.Kind == obs.EventFlight {
			flight = &e
			break
		}
	}
	if flight == nil {
		t.Fatal("no flight event in the log")
	}
	if flight.Severity != obs.SeverityCritical {
		t.Fatalf("flight event severity %q", flight.Severity)
	}
	if flight.Trace != TraceID(11).String() {
		t.Fatalf("flight event trace %q, want %q", flight.Trace, TraceID(11).String())
	}
}

// TestFlightHandler exercises /debug/flight's summary and per-bundle
// views.
func TestFlightHandler(t *testing.T) {
	r, err := NewRecorder(RecorderConfig{Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		r.Record(dec(i, i == 5))
	}

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight", nil))
	if rec.Code != 200 {
		t.Fatalf("summary status %d", rec.Code)
	}
	var sum struct {
		Window  int       `json:"window"`
		Frames  int64     `json:"frames"`
		Alarms  int64     `json:"alarms"`
		Bundles []*Bundle `json:"bundles"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Window != 2 || sum.Frames != 10 || sum.Alarms != 1 || len(sum.Bundles) != 1 {
		t.Fatalf("summary %+v", sum)
	}
	if len(sum.Bundles[0].Decisions) != 0 {
		t.Fatal("summary leaked full decision records")
	}

	rec = httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight?bundle=1", nil))
	if rec.Code != 200 {
		t.Fatalf("bundle status %d", rec.Code)
	}
	var b Bundle
	if err := json.Unmarshal(rec.Body.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	if got, want := bundleIndices(&b), rangeInts(3, 7); !reflect.DeepEqual(got, want) {
		t.Fatalf("served bundle covers %v, want %v", got, want)
	}

	for q, code := range map[string]int{"?bundle=99": 404, "?bundle=x": 400} {
		rec = httptest.NewRecorder()
		r.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight"+q, nil))
		if rec.Code != code {
			t.Fatalf("%s status %d, want %d", q, rec.Code, code)
		}
	}
}

// TestSpansNilSafe verifies the zero-cost path: span calls on an
// untraced frame are no-ops, and traced spans record their attrs and
// timing.
func TestSpansNilSafe(t *testing.T) {
	var ft *FrameTrace
	sp := ft.StartSpan("anything")
	sp.SetAttr("k", "v") // must not panic
	sp.End()
	if sp != nil {
		t.Fatal("nil trace produced a span")
	}

	ft = NewFrameTrace(7)
	if ft.ID.String() != "0000000000000007" {
		t.Fatalf("trace id renders as %q", ft.ID.String())
	}
	sp = ft.StartSpan("stage")
	sp.SetAttr("reason", "ok")
	sp.End()
	if len(ft.Spans) != 1 {
		t.Fatalf("trace has %d spans", len(ft.Spans))
	}
	got := ft.Spans[0]
	if got.Name != "stage" || got.EndNS < got.StartNS {
		t.Fatalf("span %+v", got)
	}
	if len(got.Attrs) != 1 || got.Attrs[0] != (Attr{Key: "reason", Value: "ok"}) {
		t.Fatalf("span attrs %+v", got.Attrs)
	}
	if got.Duration() < 0 {
		t.Fatalf("negative duration %v", got.Duration())
	}
	if fmt.Sprint(SeverityFor(AlarmVoltage)) != obs.SeverityCritical {
		t.Fatal("voltage severity mapping broken")
	}
}
