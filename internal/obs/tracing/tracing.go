// Package tracing is the forensic half of the observability layer: a
// dependency-free per-frame span layer plus a ring-buffer flight
// recorder that keeps the full decision context of the last N frames
// and freezes it into a bundle whenever a detector raises an alarm.
//
// PR 2's metrics answer "how many frames alarmed"; this package
// answers "show me exactly why this frame alarmed" — the raw voltage
// samples, the extracted edge set, every cluster's Mahalanobis
// distance, the threshold and margin the verdict was judged against,
// and the sequence-detector state at the moment of the check, all
// annotated with timed spans for each pipeline stage the frame
// crossed.
//
// Everything here rides the instrumented path only: a replay without
// a Recorder allocates no FrameTrace, takes no clock readings and
// runs the exact fast path it always did.
package tracing

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"time"
	_ "unsafe" // for go:linkname
)

// nanotime is the runtime's monotonic clock. Spans stamp it directly
// rather than going through time.Now, which reads the wall clock too
// — at several clock reads per frame the difference is measurable on
// the replay hot path, and spans only ever subtract timestamps.
//
//go:linkname nanotime runtime.nanotime
func nanotime() int64

// TraceID identifies one frame's journey through the pipeline. IDs
// are deterministic — derived from the record's stream index — so two
// replays of the same capture produce identical IDs and forensic
// output diffs clean.
type TraceID uint64

// String renders the id the way bundles and event logs carry it.
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// MarshalJSON/UnmarshalJSON carry the id in its string form, so
// decision records hold the raw uint64 (no per-frame formatting on
// the hot path) while the JSONL output stays greppable hex.
func (id TraceID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + id.String() + `"`), nil
}

func (id *TraceID) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return fmt.Errorf("tracing: bad trace id %q: %w", s, err)
	}
	*id = TraceID(v)
	return nil
}

// HexBytes is a byte slice that marshals as a lowercase hex string,
// so decision records can alias a frame's payload directly instead of
// hex-encoding it per frame on the hot path.
type HexBytes []byte

func (h HexBytes) MarshalJSON() ([]byte, error) {
	out := make([]byte, hex.EncodedLen(len(h))+2)
	out[0] = '"'
	hex.Encode(out[1:], h)
	out[len(out)-1] = '"'
	return out, nil
}

func (h *HexBytes) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := hex.DecodeString(s)
	if err != nil {
		return fmt.Errorf("tracing: bad hex payload %q: %w", s, err)
	}
	*h = v
	return nil
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Span is one named, timed step of a frame's processing. Timestamps
// are nanoseconds on the runtime's monotonic clock; durations between
// StartNS and EndNS are what matter, not the absolute values.
type Span struct {
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`

	// attrStore backs Attrs for the first annotation so the per-frame
	// hot path stays allocation-free (the pipeline's spans each set at
	// most one); SetAttr spills to the heap only past its capacity.
	attrStore [1]Attr
}

// Duration is the span's elapsed time.
func (s *Span) Duration() time.Duration {
	return time.Duration(s.EndNS - s.StartNS)
}

// SetAttr annotates the span. Safe on a nil span (no-op), so call
// sites need no tracing-enabled branch.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// End stamps the span's finish time. Safe on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndNS = nanotime()
}

// EndAt stamps the span's finish with a caller-supplied timestamp
// (from Now or an adjacent span's boundary). Safe on a nil span.
func (s *Span) EndAt(ns int64) {
	if s == nil {
		return
	}
	s.EndNS = ns
}

// Now returns the monotonic timestamp spans are stamped with. A call
// site that closes one span exactly where the next opens can take a
// single reading and hand it to EndAt and StartSpanAt — at several
// spans per frame the saved clock reads are a measurable slice of the
// replay budget.
func Now() int64 { return nanotime() }

// FrameTrace collects the spans of one frame. It is handed from
// stage to stage along with the frame itself — reader to worker to
// reordering stage — and only ever touched by the goroutine currently
// holding the frame, so it needs no locking. A nil *FrameTrace is the
// uninstrumented case: StartSpan returns nil and every span method
// no-ops.
type FrameTrace struct {
	ID    TraceID `json:"trace"`
	Spans []*Span `json:"spans"`

	// Inline storage: the pipeline opens five spans per frame, so the
	// span records, the Spans slice, the per-cluster distance buffer
	// and the frame's decision record all live inside the FrameTrace
	// itself — one allocation per frame, not one per span. StartSpan
	// and DistBuf spill to the heap only past the arena's capacity.
	arena     [5]Span
	spanStore [5]*Span
	distStore [12]ClusterDistance
	dec       Decision
}

// NewFrameTrace starts the trace for one frame.
func NewFrameTrace(id TraceID) *FrameTrace {
	ft := &FrameTrace{ID: id}
	ft.Spans = ft.spanStore[:0:len(ft.spanStore)]
	return ft
}

// DecisionSlot returns the trace's embedded decision record, so the
// flight recorder's per-frame record shares the frame's one tracing
// allocation. The slot is zero-valued until the pipeline fills it and
// then follows the same immutability contract as any recorded
// Decision.
func (ft *FrameTrace) DecisionSlot() *Decision { return &ft.dec }

// DistBuf returns the trace's inline per-cluster distance buffer
// (length zero), for DetectExplainInto to append into. Safe on a nil
// trace: returns nil, and append falls back to the heap.
func (ft *FrameTrace) DistBuf() []ClusterDistance {
	if ft == nil {
		return nil
	}
	return ft.distStore[:0:len(ft.distStore)]
}

// StartSpan opens a named span; the caller ends it with End. Safe on
// a nil trace (returns a nil span whose methods no-op).
func (ft *FrameTrace) StartSpan(name string) *Span {
	if ft == nil {
		return nil
	}
	return ft.StartSpanAt(name, nanotime())
}

// StartSpanAt is StartSpan with a caller-supplied start timestamp —
// typically the adjacent span's boundary, shared to avoid a second
// clock read. Safe on a nil trace.
func (ft *FrameTrace) StartSpanAt(name string, ns int64) *Span {
	if ft == nil {
		return nil
	}
	var s *Span
	if n := len(ft.Spans); n < len(ft.arena) {
		s = &ft.arena[n]
	} else {
		s = new(Span)
	}
	s.Name = name
	s.StartNS = ns
	s.Attrs = s.attrStore[:0:len(s.attrStore)]
	ft.Spans = append(ft.Spans, s)
	return s
}

// LastStart returns the start timestamp of the most recently opened
// span — for a sub-span that begins exactly where its parent did — or
// a fresh clock reading on an empty or nil trace.
func (ft *FrameTrace) LastStart() int64 {
	if ft == nil || len(ft.Spans) == 0 {
		return nanotime()
	}
	return ft.Spans[len(ft.Spans)-1].StartNS
}

// LastEnd returns the end timestamp of the most recently opened span
// — for a parent span that ends exactly where its last sub-span did —
// or a fresh clock reading when no span has ended yet.
func (ft *FrameTrace) LastEnd() int64 {
	if ft != nil && len(ft.Spans) > 0 {
		if ns := ft.Spans[len(ft.Spans)-1].EndNS; ns != 0 {
			return ns
		}
	}
	return nanotime()
}
